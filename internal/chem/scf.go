package chem

import (
	"errors"
	"fmt"
	"math"

	"execmodels/internal/linalg"
)

// SCFOptions configures the restricted Hartree–Fock driver.
type SCFOptions struct {
	MaxIter     int     // maximum SCF iterations (default 50)
	ConvDensity float64 // RMS density change threshold (default 1e-8)
	ConvEnergy  float64 // energy change threshold (default 1e-9)
	Screening   float64 // Schwarz screening threshold (default 1e-10)
	BlockSize   int     // bra-pair block size for the Fock workload (default 4)
	Damping     float64 // density damping factor in [0,1); 0 disables (default 0)

	// UseDIIS enables Pulay DIIS convergence acceleration: the Fock
	// matrix diagonalized each iteration is the error-minimizing linear
	// combination of the last DIISVectors Fock matrices.
	UseDIIS     bool
	DIISVectors int // subspace size (default 6)

	// Guess selects the starting density: "core" (diagonalize the core
	// Hamiltonian, the default) or "sad" (superposition of atomic
	// densities — each atom's electrons spread evenly over its own
	// functions, usually fewer iterations on clusters).
	Guess string

	// OnIteration, if non-nil, is invoked after every completed SCF
	// iteration with that iteration's state. Returning a non-nil error
	// interrupts the run: RunSCF stops immediately and returns the
	// partial result together with an error wrapping ErrSCFInterrupted
	// and the callback's error. Long-running drivers use this hook to
	// stream progress and to checkpoint resumable state.
	OnIteration func(p SCFProgress) error

	// Resume, if non-nil, restarts a run from a previously checkpointed
	// iteration instead of a fresh guess: the density and energy must be
	// the ones reported by OnIteration for Resume.Iteration. Iteration
	// numbering continues from there (MaxIter counts total iterations,
	// including the checkpointed ones). DIIS history is not part of the
	// checkpoint — the subspace is rebuilt from scratch after a resume,
	// so the post-restart trajectory may differ from the uninterrupted
	// one, but both converge to the same fixed point.
	Resume *SCFRestart
}

// SCFProgress is the state of one completed SCF iteration, as delivered
// to SCFOptions.OnIteration. D is the density that enters the next
// iteration; together with Iter and Energy it is exactly the state a
// checkpoint needs for SCFOptions.Resume.
type SCFProgress struct {
	Iter   int
	Energy float64 // total energy (electronic + nuclear) after this iteration
	DeltaE float64 // |energy change| vs the previous iteration
	RMSD   float64 // RMS density change vs the previous iteration
	D      *linalg.Matrix
}

// SCFRestart is the checkpointed state RunSCF resumes from.
type SCFRestart struct {
	Iteration int            // last completed iteration
	Energy    float64        // total energy after that iteration
	D         *linalg.Matrix // density entering iteration Iteration+1
}

// ErrSCFInterrupted is wrapped by RunSCF's error when an OnIteration
// callback aborts the run. The returned *SCFResult still holds the last
// completed iteration's state.
var ErrSCFInterrupted = errors.New("chem: SCF run interrupted")

func (o *SCFOptions) setDefaults() {
	if o.MaxIter == 0 {
		o.MaxIter = 50
	}
	if o.ConvDensity == 0 {
		o.ConvDensity = 1e-8
	}
	if o.ConvEnergy == 0 {
		o.ConvEnergy = 1e-9
	}
	if o.Screening == 0 {
		o.Screening = 1e-10
	}
	if o.BlockSize == 0 {
		o.BlockSize = 4
	}
}

// SCFResult holds the converged (or final) state of an SCF run.
type SCFResult struct {
	Energy     float64 // total energy (electronic + nuclear repulsion)
	Electronic float64
	Nuclear    float64
	Iterations int
	Converged  bool
	NOcc       int            // doubly-occupied orbital count
	OrbitalE   []float64      // orbital energies, ascending
	C          *linalg.Matrix // MO coefficients (columns)
	D          *linalg.Matrix // final density matrix
	F          *linalg.Matrix // final Fock matrix
	Workload   *FockWorkload  // the task decomposition used for Fock builds
}

// FockBuilder computes a Fock matrix from a density matrix. The default is
// the serial reference implementation; the scheduling study substitutes
// parallel executors with identical semantics.
type FockBuilder func(w *FockWorkload, h, d *linalg.Matrix) *linalg.Matrix

// RunSCF performs a restricted closed-shell Hartree–Fock calculation on
// mol in basis bs. If build is nil the serial reference Fock builder is
// used.
func RunSCF(mol *Molecule, bs *BasisSet, opts SCFOptions, build FockBuilder) (*SCFResult, error) {
	opts.setDefaults()
	ne := mol.NumElectrons()
	if ne%2 != 0 {
		return nil, fmt.Errorf("chem: RHF requires an even electron count, got %d", ne)
	}
	nocc := ne / 2
	if nocc > bs.NBF {
		return nil, fmt.Errorf("chem: %d occupied orbitals exceed %d basis functions", nocc, bs.NBF)
	}
	if build == nil {
		build = func(w *FockWorkload, h, d *linalg.Matrix) *linalg.Matrix {
			return w.BuildFock(h, d)
		}
	}

	s := Overlap(bs)
	h := CoreHamiltonian(bs, mol)
	x := linalg.InvSqrtSym(s, 1e-10)
	w := BuildFockWorkload(bs, opts.Screening, opts.BlockSize)
	enuc := mol.NuclearRepulsion()

	var d *linalg.Matrix
	startIter := 1
	var ePrev float64
	if opts.Resume != nil {
		if opts.Resume.D == nil || opts.Resume.D.Rows != bs.NBF || opts.Resume.D.Cols != bs.NBF {
			return nil, fmt.Errorf("chem: resume density shape does not match %d basis functions", bs.NBF)
		}
		if opts.Resume.Iteration < 1 {
			return nil, fmt.Errorf("chem: resume iteration %d < 1", opts.Resume.Iteration)
		}
		d = opts.Resume.D.Clone()
		ePrev = opts.Resume.Energy
		startIter = opts.Resume.Iteration + 1
	} else {
		switch opts.Guess {
		case "", "core":
			d, _, _ = densityFromFock(h, x, nocc)
		case "sad":
			d = sadGuess(bs, mol)
		default:
			return nil, fmt.Errorf("chem: unknown guess %q (core|sad)", opts.Guess)
		}
	}

	res := &SCFResult{Nuclear: enuc, Workload: w, NOcc: nocc}
	res.Iterations = startIter - 1
	var diis *diisState
	if opts.UseDIIS {
		diis = newDIIS(opts.DIISVectors)
	}
	for iter := startIter; iter <= opts.MaxIter; iter++ {
		f := build(w, h, d)
		eElec := electronicEnergy(d, h, f)

		fDiag := f
		if diis != nil {
			diis.push(f, diisError(f, d, s, x))
			if fx := diis.extrapolate(); fx != nil {
				fDiag = fx
			}
		}

		dNew, c, orbE := densityFromFock(fDiag, x, nocc)
		if opts.Damping > 0 && iter > 1 {
			dNew.Scale(1-opts.Damping).AddScaled(opts.Damping, d)
		}
		rms := rmsDiff(dNew, d)
		dE := math.Abs(eElec + enuc - ePrev)
		ePrev = eElec + enuc

		res.Energy = ePrev
		res.Electronic = eElec
		res.Iterations = iter
		res.OrbitalE = orbE
		res.C = c
		res.F = f
		res.D = dNew
		d = dNew

		if opts.OnIteration != nil {
			if err := opts.OnIteration(SCFProgress{
				Iter: iter, Energy: ePrev, DeltaE: dE, RMSD: rms, D: dNew,
			}); err != nil {
				return res, fmt.Errorf("%w after iteration %d: %w", ErrSCFInterrupted, iter, err)
			}
		}
		if iter > 1 && rms < opts.ConvDensity && dE < opts.ConvEnergy {
			res.Converged = true
			break
		}
	}
	return res, nil
}

// densityFromFock diagonalizes F in the orthogonal basis defined by X and
// returns the closed-shell density D = 2 C_occ C_occᵀ, the MO coefficient
// matrix, and the orbital energies.
func densityFromFock(f, x *linalg.Matrix, nocc int) (*linalg.Matrix, *linalg.Matrix, []float64) {
	fp := linalg.TripleProduct(x, f)
	orbE, cp := linalg.EigenSym(fp)
	c := linalg.MatMul(x, cp)
	n := c.Rows
	d := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var v float64
			for k := 0; k < nocc; k++ {
				v += c.At(i, k) * c.At(j, k)
			}
			d.Set(i, j, 2*v)
		}
	}
	return d, c, orbE
}

// electronicEnergy returns E_elec = ½ Σ_{μν} D_{μν} (H_{μν} + F_{μν}).
func electronicEnergy(d, h, f *linalg.Matrix) float64 {
	var e float64
	for i := range d.Data {
		e += d.Data[i] * (h.Data[i] + f.Data[i])
	}
	return 0.5 * e
}

// sadGuess builds a superposition-of-atomic-densities starting density:
// a diagonal matrix with each atom's electron count spread evenly over
// that atom's basis functions. Since every function has unit self-overlap
// this satisfies Tr(D·S) ≈ N up to off-diagonal overlap, and it starts
// the iteration from neutral atoms instead of the bare-nucleus core
// guess.
func sadGuess(bs *BasisSet, mol *Molecule) *linalg.Matrix {
	d := linalg.NewMatrix(bs.NBF, bs.NBF)
	funcsOfAtom := make([]int, len(mol.Atoms))
	for _, sh := range bs.Shells {
		funcsOfAtom[sh.Atom] += sh.NumFuncs()
	}
	for _, sh := range bs.Shells {
		per := float64(mol.Atoms[sh.Atom].Z) / float64(funcsOfAtom[sh.Atom])
		for f := 0; f < sh.NumFuncs(); f++ {
			i := sh.Start + f
			d.Set(i, i, per)
		}
	}
	return d
}

func rmsDiff(a, b *linalg.Matrix) float64 {
	var s float64
	for i := range a.Data {
		diff := a.Data[i] - b.Data[i]
		s += diff * diff
	}
	return math.Sqrt(s / float64(len(a.Data)))
}
