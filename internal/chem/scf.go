package chem

import (
	"fmt"
	"math"

	"execmodels/internal/linalg"
)

// SCFOptions configures the restricted Hartree–Fock driver.
type SCFOptions struct {
	MaxIter     int     // maximum SCF iterations (default 50)
	ConvDensity float64 // RMS density change threshold (default 1e-8)
	ConvEnergy  float64 // energy change threshold (default 1e-9)
	Screening   float64 // Schwarz screening threshold (default 1e-10)
	BlockSize   int     // bra-pair block size for the Fock workload (default 4)
	Damping     float64 // density damping factor in [0,1); 0 disables (default 0)

	// UseDIIS enables Pulay DIIS convergence acceleration: the Fock
	// matrix diagonalized each iteration is the error-minimizing linear
	// combination of the last DIISVectors Fock matrices.
	UseDIIS     bool
	DIISVectors int // subspace size (default 6)

	// Guess selects the starting density: "core" (diagonalize the core
	// Hamiltonian, the default) or "sad" (superposition of atomic
	// densities — each atom's electrons spread evenly over its own
	// functions, usually fewer iterations on clusters).
	Guess string
}

func (o *SCFOptions) setDefaults() {
	if o.MaxIter == 0 {
		o.MaxIter = 50
	}
	if o.ConvDensity == 0 {
		o.ConvDensity = 1e-8
	}
	if o.ConvEnergy == 0 {
		o.ConvEnergy = 1e-9
	}
	if o.Screening == 0 {
		o.Screening = 1e-10
	}
	if o.BlockSize == 0 {
		o.BlockSize = 4
	}
}

// SCFResult holds the converged (or final) state of an SCF run.
type SCFResult struct {
	Energy     float64 // total energy (electronic + nuclear repulsion)
	Electronic float64
	Nuclear    float64
	Iterations int
	Converged  bool
	NOcc       int            // doubly-occupied orbital count
	OrbitalE   []float64      // orbital energies, ascending
	C          *linalg.Matrix // MO coefficients (columns)
	D          *linalg.Matrix // final density matrix
	F          *linalg.Matrix // final Fock matrix
	Workload   *FockWorkload  // the task decomposition used for Fock builds
}

// FockBuilder computes a Fock matrix from a density matrix. The default is
// the serial reference implementation; the scheduling study substitutes
// parallel executors with identical semantics.
type FockBuilder func(w *FockWorkload, h, d *linalg.Matrix) *linalg.Matrix

// RunSCF performs a restricted closed-shell Hartree–Fock calculation on
// mol in basis bs. If build is nil the serial reference Fock builder is
// used.
func RunSCF(mol *Molecule, bs *BasisSet, opts SCFOptions, build FockBuilder) (*SCFResult, error) {
	opts.setDefaults()
	ne := mol.NumElectrons()
	if ne%2 != 0 {
		return nil, fmt.Errorf("chem: RHF requires an even electron count, got %d", ne)
	}
	nocc := ne / 2
	if nocc > bs.NBF {
		return nil, fmt.Errorf("chem: %d occupied orbitals exceed %d basis functions", nocc, bs.NBF)
	}
	if build == nil {
		build = func(w *FockWorkload, h, d *linalg.Matrix) *linalg.Matrix {
			return w.BuildFock(h, d)
		}
	}

	s := Overlap(bs)
	h := CoreHamiltonian(bs, mol)
	x := linalg.InvSqrtSym(s, 1e-10)
	w := BuildFockWorkload(bs, opts.Screening, opts.BlockSize)
	enuc := mol.NuclearRepulsion()

	var d *linalg.Matrix
	switch opts.Guess {
	case "", "core":
		d, _, _ = densityFromFock(h, x, nocc)
	case "sad":
		d = sadGuess(bs, mol)
	default:
		return nil, fmt.Errorf("chem: unknown guess %q (core|sad)", opts.Guess)
	}

	res := &SCFResult{Nuclear: enuc, Workload: w, NOcc: nocc}
	var diis *diisState
	if opts.UseDIIS {
		diis = newDIIS(opts.DIISVectors)
	}
	var ePrev float64
	for iter := 1; iter <= opts.MaxIter; iter++ {
		f := build(w, h, d)
		eElec := electronicEnergy(d, h, f)

		fDiag := f
		if diis != nil {
			diis.push(f, diisError(f, d, s, x))
			if fx := diis.extrapolate(); fx != nil {
				fDiag = fx
			}
		}

		dNew, c, orbE := densityFromFock(fDiag, x, nocc)
		if opts.Damping > 0 && iter > 1 {
			dNew.Scale(1-opts.Damping).AddScaled(opts.Damping, d)
		}
		rms := rmsDiff(dNew, d)
		dE := math.Abs(eElec + enuc - ePrev)
		ePrev = eElec + enuc

		res.Energy = ePrev
		res.Electronic = eElec
		res.Iterations = iter
		res.OrbitalE = orbE
		res.C = c
		res.F = f
		res.D = dNew
		d = dNew

		if iter > 1 && rms < opts.ConvDensity && dE < opts.ConvEnergy {
			res.Converged = true
			break
		}
	}
	return res, nil
}

// densityFromFock diagonalizes F in the orthogonal basis defined by X and
// returns the closed-shell density D = 2 C_occ C_occᵀ, the MO coefficient
// matrix, and the orbital energies.
func densityFromFock(f, x *linalg.Matrix, nocc int) (*linalg.Matrix, *linalg.Matrix, []float64) {
	fp := linalg.TripleProduct(x, f)
	orbE, cp := linalg.EigenSym(fp)
	c := linalg.MatMul(x, cp)
	n := c.Rows
	d := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var v float64
			for k := 0; k < nocc; k++ {
				v += c.At(i, k) * c.At(j, k)
			}
			d.Set(i, j, 2*v)
		}
	}
	return d, c, orbE
}

// electronicEnergy returns E_elec = ½ Σ_{μν} D_{μν} (H_{μν} + F_{μν}).
func electronicEnergy(d, h, f *linalg.Matrix) float64 {
	var e float64
	for i := range d.Data {
		e += d.Data[i] * (h.Data[i] + f.Data[i])
	}
	return 0.5 * e
}

// sadGuess builds a superposition-of-atomic-densities starting density:
// a diagonal matrix with each atom's electron count spread evenly over
// that atom's basis functions. Since every function has unit self-overlap
// this satisfies Tr(D·S) ≈ N up to off-diagonal overlap, and it starts
// the iteration from neutral atoms instead of the bare-nucleus core
// guess.
func sadGuess(bs *BasisSet, mol *Molecule) *linalg.Matrix {
	d := linalg.NewMatrix(bs.NBF, bs.NBF)
	funcsOfAtom := make([]int, len(mol.Atoms))
	for _, sh := range bs.Shells {
		funcsOfAtom[sh.Atom] += sh.NumFuncs()
	}
	for _, sh := range bs.Shells {
		per := float64(mol.Atoms[sh.Atom].Z) / float64(funcsOfAtom[sh.Atom])
		for f := 0; f < sh.NumFuncs(); f++ {
			i := sh.Start + f
			d.Set(i, i, per)
		}
	}
	return d
}

func rmsDiff(a, b *linalg.Matrix) float64 {
	var s float64
	for i := range a.Data {
		diff := a.Data[i] - b.Data[i]
		s += diff * diff
	}
	return math.Sqrt(s / float64(len(a.Data)))
}
