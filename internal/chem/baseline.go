package chem

import "math"

// This file preserves the pre-arena ERI hot path verbatim. It is not
// called by any executor: ExecuteTaskBaseline uses it as the "before"
// point of the repo's perf trajectory (BENCH_wall.json, the
// BenchmarkExecuteTask* pair) and tests pin its output bitwise against
// the arena path. Its per-quartet costs are the point: a fresh result
// block, fresh Hermite R tables per primitive pair, per-call Cartesian
// component tables and a π^{5/2} power in the primitive loop.

// eriBlockPairBaseline is the original ERIBlockPair. The result layout
// matches ERIBlock(bra.A, bra.B, ket.A, ket.B).
func eriBlockPairBaseline(bra, ket *PairData) []float64 {
	a, b, c, d := bra.A, bra.B, ket.A, ket.B
	na, nb, nc, nd := a.NumFuncs(), b.NumFuncs(), c.NumFuncs(), d.NumFuncs()
	blk := make([]float64, na*nb*nc*nd)
	ca, cb, cc, cd := makeComponents(a.L), makeComponents(b.L), makeComponents(c.L), makeComponents(d.L)
	ltot := a.L + b.L + c.L + d.L

	for _, pp := range bra.prims {
		e1x, e1y, e1z := pp.ex, pp.ey, pp.ez
		for _, qq := range ket.prims {
			e2x, e2y, e2z := qq.ex, qq.ey, qq.ez
			alpha := pp.p * qq.p / (pp.p + qq.p)
			r := newHermiteR(ltot, alpha, pp.P.Sub(qq.P))
			pref := pp.cab * qq.cab * 2 * math.Pow(math.Pi, 2.5) /
				(pp.p * qq.p * math.Sqrt(pp.p+qq.p))

			idx := 0
			for _, A := range ca {
				for _, B := range cb {
					lx1, ly1, lz1 := A.Lx+B.Lx, A.Ly+B.Ly, A.Lz+B.Lz
					for _, C := range cc {
						for _, D := range cd {
							lx2, ly2, lz2 := C.Lx+D.Lx, C.Ly+D.Ly, C.Lz+D.Lz
							var sum float64
							for t := 0; t <= lx1; t++ {
								et1 := e1x.at(A.Lx, B.Lx, t)
								if et1 == 0 {
									continue
								}
								for u := 0; u <= ly1; u++ {
									eu1 := e1y.at(A.Ly, B.Ly, u)
									if eu1 == 0 {
										continue
									}
									for v := 0; v <= lz1; v++ {
										ev1 := e1z.at(A.Lz, B.Lz, v)
										if ev1 == 0 {
											continue
										}
										e1 := et1 * eu1 * ev1
										for tau := 0; tau <= lx2; tau++ {
											et2 := e2x.at(C.Lx, D.Lx, tau)
											if et2 == 0 {
												continue
											}
											for nu := 0; nu <= ly2; nu++ {
												eu2 := e2y.at(C.Ly, D.Ly, nu)
												if eu2 == 0 {
													continue
												}
												for phi := 0; phi <= lz2; phi++ {
													ev2 := e2z.at(C.Lz, D.Lz, phi)
													if ev2 == 0 {
														continue
													}
													sign := 1.0
													if (tau+nu+phi)&1 == 1 {
														sign = -1
													}
													sum += e1 * sign * et2 * eu2 * ev2 *
														r.at(t+tau, u+nu, v+phi)
												}
											}
										}
									}
								}
							}
							blk[idx] += pref * sum
							idx++
						}
					}
				}
			}
		}
	}
	if a.L >= 2 || b.L >= 2 || c.L >= 2 || d.L >= 2 {
		normA, normB := makeComponentNorms(a.L), makeComponentNorms(b.L)
		normC, normD := makeComponentNorms(c.L), makeComponentNorms(d.L)
		idx := 0
		for _, va := range normA {
			for _, vb := range normB {
				for _, vc := range normC {
					for _, vd := range normD {
						blk[idx] *= va * vb * vc * vd
						idx++
					}
				}
			}
		}
	}
	return blk
}
