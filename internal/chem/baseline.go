package chem

import (
	"math"

	"execmodels/internal/linalg"
)

// This file preserves the pre-arena ERI hot path verbatim, and hosts the
// two reference implementations the differential test harness pins the
// fast path against:
//
//   - ExecuteTaskBaseline / ExecuteTaskSpinBaseline: the pre-arena task
//     executor, still screening inside the worker loop. It is the "before"
//     point of the perf trajectory (BENCH_wall.json, the
//     BenchmarkExecuteTask* pair) and the foil proving that generation-time
//     screening (FockTask.Kets) selects exactly the quartets the in-loop
//     bound test did.
//   - BuildFockNaive / NaiveSpinJK: the symmetry-free, unscreened
//     quadruple shell loop — every ordered quartet computed independently,
//     no 8-fold folding, no Schwarz bound. It is the ground truth the
//     canonical-quartet enumeration and symmetric digest are validated
//     against (and the cmd/hfscf -nosym escape hatch).
//
// The baseline executor's per-quartet costs are the point: a fresh result
// block, fresh Hermite R tables per primitive pair, per-call Cartesian
// component tables and a π^{5/2} power in the primitive loop.

// eriBlockPairBaseline is the original ERIBlockPair. The result layout
// matches ERIBlock(bra.A, bra.B, ket.A, ket.B).
func eriBlockPairBaseline(bra, ket *PairData) []float64 {
	a, b, c, d := bra.A, bra.B, ket.A, ket.B
	na, nb, nc, nd := a.NumFuncs(), b.NumFuncs(), c.NumFuncs(), d.NumFuncs()
	blk := make([]float64, na*nb*nc*nd)
	ca, cb, cc, cd := makeComponents(a.L), makeComponents(b.L), makeComponents(c.L), makeComponents(d.L)
	ltot := a.L + b.L + c.L + d.L

	for _, pp := range bra.prims {
		e1x, e1y, e1z := pp.ex, pp.ey, pp.ez
		for _, qq := range ket.prims {
			e2x, e2y, e2z := qq.ex, qq.ey, qq.ez
			alpha := pp.p * qq.p / (pp.p + qq.p)
			r := newHermiteR(ltot, alpha, pp.P.Sub(qq.P))
			pref := pp.cab * qq.cab * 2 * math.Pow(math.Pi, 2.5) /
				(pp.p * qq.p * math.Sqrt(pp.p+qq.p))

			idx := 0
			for _, A := range ca {
				for _, B := range cb {
					lx1, ly1, lz1 := A.Lx+B.Lx, A.Ly+B.Ly, A.Lz+B.Lz
					for _, C := range cc {
						for _, D := range cd {
							lx2, ly2, lz2 := C.Lx+D.Lx, C.Ly+D.Ly, C.Lz+D.Lz
							var sum float64
							for t := 0; t <= lx1; t++ {
								et1 := e1x.at(A.Lx, B.Lx, t)
								if et1 == 0 {
									continue
								}
								for u := 0; u <= ly1; u++ {
									eu1 := e1y.at(A.Ly, B.Ly, u)
									if eu1 == 0 {
										continue
									}
									for v := 0; v <= lz1; v++ {
										ev1 := e1z.at(A.Lz, B.Lz, v)
										if ev1 == 0 {
											continue
										}
										e1 := et1 * eu1 * ev1
										for tau := 0; tau <= lx2; tau++ {
											et2 := e2x.at(C.Lx, D.Lx, tau)
											if et2 == 0 {
												continue
											}
											for nu := 0; nu <= ly2; nu++ {
												eu2 := e2y.at(C.Ly, D.Ly, nu)
												if eu2 == 0 {
													continue
												}
												for phi := 0; phi <= lz2; phi++ {
													ev2 := e2z.at(C.Lz, D.Lz, phi)
													if ev2 == 0 {
														continue
													}
													sign := 1.0
													if (tau+nu+phi)&1 == 1 {
														sign = -1
													}
													sum += e1 * sign * et2 * eu2 * ev2 *
														r.at(t+tau, u+nu, v+phi)
												}
											}
										}
									}
								}
							}
							blk[idx] += pref * sum
							idx++
						}
					}
				}
			}
		}
	}
	if a.L >= 2 || b.L >= 2 || c.L >= 2 || d.L >= 2 {
		normA, normB := makeComponentNorms(a.L), makeComponentNorms(b.L)
		normC, normD := makeComponentNorms(c.L), makeComponentNorms(d.L)
		idx := 0
		for _, va := range normA {
			for _, vb := range normB {
				for _, vc := range normC {
					for _, vd := range normD {
						blk[idx] *= va * vb * vc * vd
						idx++
					}
				}
			}
		}
	}
	return blk
}

// ExecuteTaskSpinBaseline is the unrestricted counterpart of
// ExecuteTaskBaseline: the same pre-arena quartet loop with the Schwarz
// bound still tested inside the worker, digesting J against the total
// density and separate exchange matrices against the α/β densities. The
// differential harness pins ExecuteTaskSpinScratch bitwise against it.
func (w *FockWorkload) ExecuteTaskSpinBaseline(t *FockTask, dTot, dA, dB, j, kA, kB *linalg.Matrix) int {
	shells := w.Basis.Shells
	ks, dks := []*linalg.Matrix{kA, kB}, []*linalg.Matrix{dA, dB}
	var done int
	for bi, bra := range t.BraPairs {
		braPD := w.pairData[t.PairOffset+bi]
		for ki, ket := range w.Pairs {
			if t.PairOffset+bi < ki {
				break
			}
			if bra.Bound*ket.Bound < w.Threshold {
				continue
			}
			blk := eriBlockPairBaseline(braPD, w.pairData[ki])
			digestUniqueQuartet(j, dTot, ks, dks, shells, bra.I, bra.J, ket.I, ket.J, blk)
			done++
		}
	}
	return done
}

// BuildFockBaseline is BuildFock through ExecuteTaskBaseline: the serial
// pre-arena reference Fock matrix the differential equivalence matrix
// compares every executor × worker-count × block-size cell against.
func (w *FockWorkload) BuildFockBaseline(h, d *linalg.Matrix) *linalg.Matrix {
	n := w.Basis.NBF
	j := linalg.NewMatrix(n, n)
	k := linalg.NewMatrix(n, n)
	for i := range w.Tasks {
		w.ExecuteTaskBaseline(&w.Tasks[i], d, j, k)
	}
	f := h.Clone()
	f.AddScaled(1, j)
	f.AddScaled(-0.5, k)
	f.Symmetrize()
	return f
}

// naiveJK accumulates J and the given exchange matrices over every
// ordered shell quartet of the basis — the quadruple loop with no
// permutational symmetry and no screening. Each ordered quartet's block
// is computed independently by ERIBlock and digested once with the
// identity permutation, so the 8-fold folding never enters.
func naiveJK(bs *BasisSet, dj *linalg.Matrix, dks []*linalg.Matrix, j *linalg.Matrix, ks []*linalg.Matrix) {
	sh := bs.Shells
	for ia := range sh {
		for ib := range sh {
			for ic := range sh {
				for id := range sh {
					a, b, c, d := &sh[ia], &sh[ib], &sh[ic], &sh[id]
					blk := ERIBlock(a, b, c, d)
					nb, nc, nd := b.NumFuncs(), c.NumFuncs(), d.NumFuncs()
					digestJK(j, dj, ks, dks, a, b, c, d, func(fa, fb, fc, fd int) float64 {
						return blk[((fa*nb+fb)*nc+fc)*nd+fd]
					})
				}
			}
		}
	}
}

// BuildFockNaive computes F = H + J − K/2 by the naive quadruple shell
// loop: every ordered quartet (N⁴ of them) computed once, no symmetry
// folding, no Schwarz screening. It is the semantic ground truth for the
// symmetric screened build (equal to a threshold-0 BuildFock up to
// floating-point accumulation order) and the cmd/hfscf -nosym path. Cost
// is ~8× the symmetric build before screening even starts — small
// systems only.
func BuildFockNaive(bs *BasisSet, h, d *linalg.Matrix) *linalg.Matrix {
	n := bs.NBF
	j := linalg.NewMatrix(n, n)
	k := linalg.NewMatrix(n, n)
	naiveJK(bs, d, []*linalg.Matrix{d}, j, []*linalg.Matrix{k})
	f := h.Clone()
	f.AddScaled(1, j)
	f.AddScaled(-0.5, k)
	f.Symmetrize()
	return f
}

// NaiveSpinJK is the unrestricted naive reference: J contracted against
// the total density and per-spin exchange matrices against dA/dB, over
// every ordered quartet with no symmetry or screening.
func NaiveSpinJK(bs *BasisSet, dTot, dA, dB *linalg.Matrix) (j, kA, kB *linalg.Matrix) {
	n := bs.NBF
	j = linalg.NewMatrix(n, n)
	kA = linalg.NewMatrix(n, n)
	kB = linalg.NewMatrix(n, n)
	naiveJK(bs, dTot, []*linalg.Matrix{dA, dB}, j, []*linalg.Matrix{kA, kB})
	return j, kA, kB
}
