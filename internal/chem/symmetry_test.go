package chem

import (
	"testing"

	"execmodels/internal/linalg"
)

// canonicalQuartet maps an ordered shell quartet to the canonical
// representative its 8-fold symmetry orbit is enumerated under: each
// pair sorted ascending, the pair with the larger triangular index in
// bra position. This is the test's independent re-derivation of the
// ordering BuildFockWorkload uses (bra pair position >= ket pair
// position over pairs sorted by pairIndex).
func canonicalQuartet(a, b, c, d int) [4]int {
	if a > b {
		a, b = b, a
	}
	if c > d {
		c, d = d, c
	}
	if pairIndex(a, b) < pairIndex(c, d) {
		a, b, c, d = c, d, a, b
	}
	return [4]int{a, b, c, d}
}

// The unique-quartet enumerator must emit each canonical quartet exactly
// once across all tasks, and the degeneracy weights (distinct
// permutations per canonical quartet) must sum to N^4 — the count
// identity proving the 8-fold folding covers every ordered quartet
// exactly once. Screening is disabled (threshold 0) so the identity is
// exact.
func TestUniqueQuartetEnumeration(t *testing.T) {
	for _, tc := range []struct {
		name  string
		mol   *Molecule
		basis string
	}{
		{"h2/sto-3g", H2(1.4), "sto-3g"},
		{"water/sto-3g", Water(), "sto-3g"},
		{"water/6-31g", Water(), "6-31g"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			bs, err := NewBasis(tc.basis, tc.mol)
			if err != nil {
				t.Fatal(err)
			}
			w := BuildFockWorkload(bs, 0, 3)
			n := len(bs.Shells)

			// Collect the enumerated quartets from the generation-time
			// Kets lists; every canonical quartet must appear exactly once.
			seen := map[[4]int]bool{}
			var degeneracySum int
			for _, task := range w.Tasks {
				for bi, bra := range task.BraPairs {
					for _, ki := range task.Kets[bi] {
						ket := w.Pairs[ki]
						q := [4]int{bra.I, bra.J, ket.I, ket.J}
						if q != canonicalQuartet(q[0], q[1], q[2], q[3]) {
							t.Fatalf("task %d emits non-canonical quartet %v", task.ID, q)
						}
						if seen[q] {
							t.Fatalf("quartet %v enumerated twice", q)
						}
						seen[q] = true
						degeneracySum += len(quartetPermutations(q[0], q[1], q[2], q[3]))
					}
				}
			}

			// Brute force: every ordered quartet's canonical form must have
			// been enumerated, and nothing else.
			want := map[[4]int]bool{}
			for a := 0; a < n; a++ {
				for b := 0; b < n; b++ {
					for c := 0; c < n; c++ {
						for d := 0; d < n; d++ {
							want[canonicalQuartet(a, b, c, d)] = true
						}
					}
				}
			}
			if len(seen) != len(want) {
				t.Errorf("enumerated %d unique quartets, brute force finds %d", len(seen), len(want))
			}
			for q := range want {
				if !seen[q] {
					t.Errorf("canonical quartet %v never enumerated", q)
				}
			}
			if n4 := n * n * n * n; degeneracySum != n4 {
				t.Errorf("degeneracy weights sum to %d, want N^4 = %d", degeneracySum, n4)
			}
			if st := w.Stats(); st.Surviving != int64(len(seen)) || st.UniqueQuartets != int64(len(want)) {
				t.Errorf("Stats() = %+v, want Surviving=%d UniqueQuartets=%d", st, len(seen), len(want))
			}
		})
	}
}

// The symmetric screened build must agree with the symmetry-free,
// unscreened quadruple loop. Threshold 0 removes screening from the
// comparison, so the only difference is the 8-fold folding — the classic
// source of J/K digestion bugs this pins down.
func TestSymmetricFockMatchesNaive(t *testing.T) {
	for _, tc := range []struct {
		name string
		mol  *Molecule
	}{
		{"h2", H2(1.4)},
		{"water", Water()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			bs, err := NewBasis("sto-3g", tc.mol)
			if err != nil {
				t.Fatal(err)
			}
			h := CoreHamiltonian(bs, tc.mol)
			d := testDensity(bs, tc.mol, h)
			w := BuildFockWorkload(bs, 0, 2)
			fast := w.BuildFock(h, d)
			naive := BuildFockNaive(bs, h, d)
			if diff := fast.MaxAbsDiff(naive); diff > 1e-11 {
				t.Errorf("symmetric Fock differs from naive quadruple loop by %g", diff)
			}
		})
	}
}

// Unrestricted variant of the naive cross-check: the spin digest must
// scatter both exchange matrices into all symmetric slots correctly.
func TestSymmetricSpinJKMatchesNaive(t *testing.T) {
	mol := Water()
	bs, err := NewBasis("sto-3g", mol)
	if err != nil {
		t.Fatal(err)
	}
	h := CoreHamiltonian(bs, mol)
	dA := testDensity(bs, mol, h)
	dA.Scale(0.5)
	dB := dA.Clone()
	dB.Scale(0.8) // asymmetric spins so Kα and Kβ genuinely differ
	dTot := dA.Clone()
	dTot.AddScaled(1, dB)

	w := BuildFockWorkload(bs, 0, 3)
	n := bs.NBF
	j := linalg.NewMatrix(n, n)
	kA := linalg.NewMatrix(n, n)
	kB := linalg.NewMatrix(n, n)
	s := w.NewScratch()
	for i := range w.Tasks {
		w.ExecuteTaskSpinScratch(&w.Tasks[i], dTot, dA, dB, j, kA, kB, s)
	}
	jN, kAN, kBN := NaiveSpinJK(bs, dTot, dA, dB)
	if diff := j.MaxAbsDiff(jN); diff > 1e-11 {
		t.Errorf("J differs from naive by %g", diff)
	}
	if diff := kA.MaxAbsDiff(kAN); diff > 1e-11 {
		t.Errorf("Kα differs from naive by %g", diff)
	}
	if diff := kB.MaxAbsDiff(kBN); diff > 1e-11 {
		t.Errorf("Kβ differs from naive by %g", diff)
	}
	if same := kA.MaxAbsDiff(kB); same < 1e-14 {
		t.Fatalf("test is vacuous: Kα == Kβ (diff %g)", same)
	}
}

// The spin baseline executor (in-worker screening, closure digest) and
// the arena spin path (generation-time screening, stride digest) share
// loop structure, so they must agree bitwise.
func TestExecuteTaskSpinBaselineMatchesScratch(t *testing.T) {
	w, d := arenaWorkload(t)
	n := w.Basis.NBF
	dB := d.Clone()
	dB.Scale(0.7)
	dTot := d.Clone()
	dTot.AddScaled(1, dB)
	s := w.NewScratch()
	for i := range w.Tasks {
		jF := linalg.NewMatrix(n, n)
		kAF := linalg.NewMatrix(n, n)
		kBF := linalg.NewMatrix(n, n)
		jB := linalg.NewMatrix(n, n)
		kAB := linalg.NewMatrix(n, n)
		kBB := linalg.NewMatrix(n, n)
		doneF := w.ExecuteTaskSpinScratch(&w.Tasks[i], dTot, d, dB, jF, kAF, kBF, s)
		doneB := w.ExecuteTaskSpinBaseline(&w.Tasks[i], dTot, d, dB, jB, kAB, kBB)
		if doneF != doneB {
			t.Fatalf("task %d: %d quartets (scratch) vs %d (baseline)", i, doneF, doneB)
		}
		if diff := jF.MaxAbsDiff(jB); diff != 0 {
			t.Errorf("task %d: J differs from spin baseline by %g", i, diff)
		}
		if diff := kAF.MaxAbsDiff(kAB); diff != 0 {
			t.Errorf("task %d: Kα differs from spin baseline by %g", i, diff)
		}
		if diff := kBF.MaxAbsDiff(kBB); diff != 0 {
			t.Errorf("task %d: Kβ differs from spin baseline by %g", i, diff)
		}
	}
}

// Reblocking regroups bra pairs into different task shapes but must not
// change the quartet multiset or the serial digestion order — the same
// global bra-major sweep, so serial results are bit-identical and the
// surviving-quartet count is invariant.
func TestReblockEquivalence(t *testing.T) {
	w, d := arenaWorkload(t)
	n := w.Basis.NBF
	h := linalg.NewMatrix(n, n)
	want := w.BuildFock(h, d)
	wantQuarts := w.Stats().Surviving
	for _, block := range []int{1, 2, 7, 1 << 20} {
		rw := w.Reblock(block)
		if got := rw.Stats().Surviving; got != wantQuarts {
			t.Errorf("block %d: %d surviving quartets, want %d", block, got, wantQuarts)
		}
		if got := rw.BuildFock(h, d); got.MaxAbsDiff(want) != 0 {
			t.Errorf("block %d: reblocked serial Fock differs by %g", block, got.MaxAbsDiff(want))
		}
		wantTasks := (len(w.Pairs) + block - 1) / block
		if len(rw.Tasks) != wantTasks {
			t.Errorf("block %d: %d tasks, want %d", block, len(rw.Tasks), wantTasks)
		}
	}
}

// The generation-time Kets lists must select exactly the quartets the
// retained baseline's in-worker bound test selects — screening moved,
// not changed.
func TestKetsMatchInWorkerScreening(t *testing.T) {
	w, _ := arenaWorkload(t)
	for _, task := range w.Tasks {
		for bi, bra := range task.BraPairs {
			var want []int32
			for ki := 0; ki <= task.PairOffset+bi; ki++ {
				if bra.Bound*w.Pairs[ki].Bound >= w.Threshold {
					want = append(want, int32(ki))
				}
			}
			got := task.Kets[bi]
			if len(got) != len(want) {
				t.Fatalf("task %d bra %d: %d kets, want %d", task.ID, bi, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("task %d bra %d ket %d: pair %d, want %d", task.ID, bi, i, got[i], want[i])
				}
			}
		}
	}
}

// Workload statistics must reflect the ~8-fold symmetry reduction: the
// canonical quartet count is M(M+1)/2 for M = N(N+1)/2 pairs, and
// screening can only shrink it further.
func TestWorkloadStats(t *testing.T) {
	mol := WaterCluster(2, 11)
	bs, err := NewBasis("sto-3g", mol)
	if err != nil {
		t.Fatal(err)
	}
	w := BuildFockWorkload(bs, 1e-10, 4)
	st := w.Stats()
	n := int64(len(bs.Shells))
	m := n * (n + 1) / 2
	if st.NaiveQuartets != n*n*n*n {
		t.Errorf("NaiveQuartets = %d, want %d", st.NaiveQuartets, n*n*n*n)
	}
	if st.UniqueQuartets != m*(m+1)/2 {
		t.Errorf("UniqueQuartets = %d, want %d", st.UniqueQuartets, m*(m+1)/2)
	}
	// 8-fold symmetry: unique is slightly more than naive/8 because of
	// diagonal (degeneracy < 8) quartets, but always within [n4/8, n4].
	if st.UniqueQuartets < st.NaiveQuartets/8 || st.UniqueQuartets > st.NaiveQuartets {
		t.Errorf("UniqueQuartets %d outside [naive/8, naive] = [%d, %d]",
			st.UniqueQuartets, st.NaiveQuartets/8, st.NaiveQuartets)
	}
	if st.Surviving > st.UniqueQuartets || st.Surviving <= 0 {
		t.Errorf("Surviving = %d outside (0, %d]", st.Surviving, st.UniqueQuartets)
	}
	var sum int64
	for i := range w.Tasks {
		sum += int64(w.Tasks[i].NumQuarts)
	}
	if st.Surviving != sum {
		t.Errorf("Surviving = %d, task NumQuarts sum to %d", st.Surviving, sum)
	}
}

// The accumulator path must match the plain scratch path bitwise for
// both spin shapes, and merging per-worker accumulators must reproduce
// direct accumulation exactly when there is a single accumulator.
func TestExecuteTaskAccumMatchesScratch(t *testing.T) {
	w, d := arenaWorkload(t)
	n := w.Basis.NBF

	// Restricted shape.
	acc := w.NewJKAccum(false)
	jRef, kRef := linalg.NewMatrix(n, n), linalg.NewMatrix(n, n)
	s := w.NewScratch()
	for i := range w.Tasks {
		w.ExecuteTaskAccum(&w.Tasks[i], d, d, nil, acc)
		w.ExecuteTaskScratch(&w.Tasks[i], d, jRef, kRef, s)
	}
	j, k := linalg.NewMatrix(n, n), linalg.NewMatrix(n, n)
	acc.MergeInto(j, k, nil)
	if diff := j.MaxAbsDiff(jRef); diff != 0 {
		t.Errorf("accum J differs by %g", diff)
	}
	if diff := k.MaxAbsDiff(kRef); diff != 0 {
		t.Errorf("accum K differs by %g", diff)
	}

	// Unrestricted shape.
	dB := d.Clone()
	dB.Scale(0.6)
	dTot := d.Clone()
	dTot.AddScaled(1, dB)
	accU := w.NewJKAccum(true)
	jU, kAU, kBU := linalg.NewMatrix(n, n), linalg.NewMatrix(n, n), linalg.NewMatrix(n, n)
	for i := range w.Tasks {
		w.ExecuteTaskAccum(&w.Tasks[i], dTot, d, dB, accU)
		w.ExecuteTaskSpinScratch(&w.Tasks[i], dTot, d, dB, jU, kAU, kBU, s)
	}
	jM, kAM, kBM := linalg.NewMatrix(n, n), linalg.NewMatrix(n, n), linalg.NewMatrix(n, n)
	accU.MergeInto(jM, kAM, kBM)
	if diff := jM.MaxAbsDiff(jU); diff != 0 {
		t.Errorf("spin accum J differs by %g", diff)
	}
	if diff := kAM.MaxAbsDiff(kAU); diff != 0 {
		t.Errorf("spin accum Kα differs by %g", diff)
	}
	if diff := kBM.MaxAbsDiff(kBU); diff != 0 {
		t.Errorf("spin accum Kβ differs by %g", diff)
	}
}

// The accumulator digest path — the wall-clock workers' steady state —
// must preserve the zero-allocation invariant for both spin shapes, and
// on a reblocked workload (pair-block task structs share the screened
// pair data, so no lazily-grown state may hide there).
func TestExecuteTaskAccumZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; gate runs in the non-race pass")
	}
	w, d := arenaWorkload(t)
	dB := d.Clone()
	dB.Scale(0.6)
	dTot := d.Clone()
	dTot.AddScaled(1, dB)
	for _, tc := range []struct {
		name string
		w    *FockWorkload
	}{
		{"as-built", w},
		{"reblocked/b1", w.Reblock(1)},
		{"reblocked/b7", w.Reblock(7)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rhf := tc.w.NewJKAccum(false)
			uhf := tc.w.NewJKAccum(true)
			for i := range tc.w.Tasks {
				tc.w.ExecuteTaskAccum(&tc.w.Tasks[i], d, d, nil, rhf)
				tc.w.ExecuteTaskAccum(&tc.w.Tasks[i], dTot, d, dB, uhf)
			}
			avg := testing.AllocsPerRun(5, func() {
				for i := range tc.w.Tasks {
					tc.w.ExecuteTaskAccum(&tc.w.Tasks[i], d, d, nil, rhf)
					tc.w.ExecuteTaskAccum(&tc.w.Tasks[i], dTot, d, dB, uhf)
				}
			})
			if avg != 0 {
				t.Errorf("ExecuteTaskAccum allocates %.1f times per sweep, want 0", avg)
			}
		})
	}
}

// The UHF builder hook must be invoked and produce the same fixed point
// as the in-loop serial sweep when it wraps the identical computation.
func TestUHFBuilderHook(t *testing.T) {
	mol := Water()
	mol.Charge = 1 // doublet: genuinely unrestricted
	bs, err := NewBasis("sto-3g", mol)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := RunUHF(mol, bs, UHFOptions{})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	builder := func(w *FockWorkload, dTot, dA, dB *linalg.Matrix) (j, kA, kB *linalg.Matrix) {
		calls++
		n := w.Basis.NBF
		j = linalg.NewMatrix(n, n)
		kA = linalg.NewMatrix(n, n)
		kB = linalg.NewMatrix(n, n)
		s := w.NewScratch()
		for i := range w.Tasks {
			w.ExecuteTaskSpinScratch(&w.Tasks[i], dTot, dA, dB, j, kA, kB, s)
		}
		return j, kA, kB
	}
	res, err := RunUHF(mol, bs, UHFOptions{Builder: builder})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("Builder never invoked")
	}
	if !res.Converged || !ref.Converged {
		t.Fatalf("convergence: builder %v, serial %v", res.Converged, ref.Converged)
	}
	if diff := res.Energy - ref.Energy; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("builder UHF energy %v differs from serial %v", res.Energy, ref.Energy)
	}
}

// testDensity builds a core-guess closed-shell density, mirroring the
// helper the core wall-clock tests use, so differential comparisons see
// realistically structured J/K contractions.
func testDensity(bs *BasisSet, mol *Molecule, h *linalg.Matrix) *linalg.Matrix {
	s := Overlap(bs)
	x := linalg.InvSqrtSym(s, 1e-10)
	d, _, _ := densityFromFock(h, x, mol.NumElectrons()/2)
	return d
}
