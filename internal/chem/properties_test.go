package chem

import (
	"math"
	"testing"

	"execmodels/internal/linalg"
)

func scfWater(t *testing.T, basis string) (*Molecule, *BasisSet, *SCFResult) {
	t.Helper()
	mol := Water()
	bs := mustBasis(t, basis, mol)
	res, err := RunSCF(mol, bs, SCFOptions{UseDIIS: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("SCF did not converge")
	}
	return mol, bs, res
}

// RHF/STO-3G water dipole moment is ≈ 0.68 a.u. (1.73 D), along the C2v
// symmetry axis.
func TestWaterDipole(t *testing.T) {
	mol, bs, res := scfWater(t, "sto-3g")
	mu := DipoleMoment(mol, bs, res.D)
	// Geometry places the symmetry axis along +z with H on the +z side.
	if math.Abs(mu.X) > 1e-6 || math.Abs(mu.Y) > 1e-6 {
		t.Errorf("dipole off axis: %+v", mu)
	}
	if mu.Z < 0.4 || mu.Z > 0.9 {
		t.Errorf("dipole magnitude %v a.u., want ≈ 0.68", mu.Z)
	}
}

// The dipole matrices must be symmetric and consistent with translating
// the operator: shifting the origin by T changes ⟨μ|r|ν⟩ by T·S.
func TestDipoleMatrixTranslationIdentity(t *testing.T) {
	mol := Water()
	bs := mustBasis(t, "sto-3g", mol)
	mx, my, mz := DipoleMatrices(bs)
	s := Overlap(bs)
	if !mx.IsSymmetric(1e-10) || !my.IsSymmetric(1e-10) || !mz.IsSymmetric(1e-10) {
		t.Fatal("dipole matrices not symmetric")
	}
	// Shift all atoms (and hence shells) by T and recompute: M' = M + T·S.
	const T = 1.7
	shifted := &Molecule{Name: "shifted"}
	for _, a := range mol.Atoms {
		shifted.Atoms = append(shifted.Atoms, Atom{Z: a.Z, Pos: a.Pos.Add(Vec3{T, 0, 0})})
	}
	bs2 := mustBasis(t, "sto-3g", shifted)
	mx2, _, _ := DipoleMatrices(bs2)
	want := mx.Clone()
	want.AddScaled(T, s)
	if diff := mx2.MaxAbsDiff(want); diff > 1e-9 {
		t.Errorf("translation identity violated by %v", diff)
	}
}

// Mulliken charges must sum to the total molecular charge (zero) and put
// negative charge on oxygen.
func TestMullikenCharges(t *testing.T) {
	mol, bs, res := scfWater(t, "sto-3g")
	s := Overlap(bs)
	q := MullikenCharges(mol, bs, res.D, s)
	var total float64
	for _, v := range q {
		total += v
	}
	if math.Abs(total) > 1e-8 {
		t.Errorf("charges sum to %v, want 0", total)
	}
	if q[0] >= 0 {
		t.Errorf("oxygen charge %v, want negative", q[0])
	}
	if q[1] <= 0 || q[2] <= 0 {
		t.Errorf("hydrogen charges %v %v, want positive", q[1], q[2])
	}
}

// MP2 correlation energy for water/STO-3G is ≈ -0.049 hartree; it must be
// strictly negative and small.
func TestMP2Water(t *testing.T) {
	_, bs, res := scfWater(t, "sto-3g")
	e2, err := MP2Energy(bs, res)
	if err != nil {
		t.Fatal(err)
	}
	if e2 > -0.03 || e2 < -0.07 {
		t.Errorf("E(MP2) = %v, want ≈ -0.049", e2)
	}
}

// MP2 on H2/STO-3G: the minimal two-orbital case, E(2) ≈ -0.013 hartree.
func TestMP2H2(t *testing.T) {
	mol := H2(1.4)
	bs := mustBasis(t, "sto-3g", mol)
	res, err := RunSCF(mol, bs, SCFOptions{UseDIIS: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := MP2Energy(bs, res)
	if err != nil {
		t.Fatal(err)
	}
	if e2 > -0.005 || e2 < -0.03 {
		t.Errorf("E(MP2) = %v, want ≈ -0.013", e2)
	}
}

// Freezing the oxygen 1s core removes only a small part of the water
// correlation energy: |E_fc| < |E_full|, both negative, difference small.
func TestMP2FrozenCore(t *testing.T) {
	_, bs, res := scfWater(t, "sto-3g")
	full, err := MP2Energy(bs, res)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := MP2EnergyFrozen(bs, res, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fc >= 0 || fc <= full {
		t.Errorf("frozen-core %v not in (full %v, 0)", fc, full)
	}
	if full-fc < -0.01 || full-fc > 0 {
		t.Errorf("core correlation %v implausibly large", full-fc)
	}
	// Bad frozen counts are rejected.
	if _, err := MP2EnergyFrozen(bs, res, -1); err == nil {
		t.Error("negative frozen count accepted")
	}
	if _, err := MP2EnergyFrozen(bs, res, res.NOcc); err == nil {
		t.Error("freezing everything accepted")
	}
}

func TestMP2RequiresConvergence(t *testing.T) {
	mol := Water()
	bs := mustBasis(t, "sto-3g", mol)
	res := &SCFResult{Converged: false}
	if _, err := MP2Energy(bs, res); err == nil {
		t.Fatal("expected error on unconverged reference")
	}
}

func TestMP2RequiresVirtuals(t *testing.T) {
	// H2 in a minimal basis where nocc = 1 < nbf = 2 works; fake a filled
	// basis to trigger the guard.
	bs := mustBasis(t, "sto-3g", H2(1.4))
	res := &SCFResult{Converged: true, NOcc: bs.NBF}
	if _, err := MP2Energy(bs, res); err == nil {
		t.Fatal("expected error with no virtual orbitals")
	}
}

// DIIS must reach the same fixed point as plain iteration, in no more
// iterations.
func TestDIISMatchesPlainSCF(t *testing.T) {
	mol := Water()
	bs := mustBasis(t, "sto-3g", mol)
	plain, err := RunSCF(mol, bs, SCFOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	diis, err := RunSCF(mol, bs, SCFOptions{UseDIIS: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Converged || !diis.Converged {
		t.Fatal("convergence failure")
	}
	if math.Abs(plain.Energy-diis.Energy) > 1e-7 {
		t.Errorf("DIIS energy %v vs plain %v", diis.Energy, plain.Energy)
	}
	if diis.Iterations > plain.Iterations {
		t.Errorf("DIIS took %d iterations vs plain %d", diis.Iterations, plain.Iterations)
	}
}

// The polarized 6-31G* basis must build, include d shells, and lower the
// water energy below 6-31G (variational principle with a larger basis).
func TestSixThreeOneStar(t *testing.T) {
	mol := Water()
	bsPlain := mustBasis(t, "6-31g", mol)
	bsStar := mustBasis(t, "6-31g*", mol)
	if bsStar.NBF != bsPlain.NBF+6 {
		t.Fatalf("6-31g* NBF = %d, want %d+6", bsStar.NBF, bsPlain.NBF)
	}
	var hasD bool
	for _, sh := range bsStar.Shells {
		if sh.L == 2 {
			hasD = true
		}
	}
	if !hasD {
		t.Fatal("no d shell in 6-31g*")
	}
	plain, err := RunSCF(mol, bsPlain, SCFOptions{UseDIIS: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	star, err := RunSCF(mol, bsStar, SCFOptions{UseDIIS: true, MaxIter: 80}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Converged || !star.Converged {
		t.Fatalf("convergence: 6-31g %v, 6-31g* %v", plain.Converged, star.Converged)
	}
	if star.Energy >= plain.Energy {
		t.Errorf("6-31g* energy %v not below 6-31g %v", star.Energy, plain.Energy)
	}
	// 6-31G water ≈ -75.98; 6-31G* ≈ -76.01 hartree.
	if plain.Energy > -75.8 || plain.Energy < -76.2 {
		t.Errorf("E(6-31g) = %v implausible", plain.Energy)
	}
	if star.Energy > -75.9 || star.Energy < -76.2 {
		t.Errorf("E(6-31g*) = %v implausible", star.Energy)
	}
}

// d-shell integrals must satisfy the same Fock-build oracle as s/p.
func TestFockOracleWithDShells(t *testing.T) {
	// A single oxygen atom in 6-31g*: small enough for the O(N⁴) oracle.
	mol := &Molecule{Name: "O", Atoms: []Atom{{Z: 8}}}
	bs := mustBasis(t, "6-31g*", mol)
	eri := FullERITensor(bs)
	h := CoreHamiltonian(bs, mol)
	s := Overlap(bs)
	x := linalg.InvSqrtSym(s, 1e-10)
	d, _, _ := densityFromFock(h, x, 4)
	w := BuildFockWorkload(bs, 1e-14, 3)
	got := w.BuildFock(h, d)
	want := referenceFock(bs, eri, h, d)
	if diff := got.MaxAbsDiff(want); diff > 1e-8 {
		t.Errorf("d-shell Fock mismatch %v", diff)
	}
}
