package chem

import (
	"math"

	"execmodels/internal/linalg"
)

// DipoleMatrices returns the electric-dipole integral matrices
// ⟨μ| x |ν⟩, ⟨μ| y |ν⟩, ⟨μ| z |ν⟩ relative to the coordinate origin.
//
// Each 1-D moment integral uses the angular-momentum raising identity
// x·φ_A(lx) = φ_A(lx+1) + Ax·φ_A(lx), so only overlap tables with one
// extra unit of bra angular momentum are needed.
func DipoleMatrices(bs *BasisSet) (mx, my, mz *linalg.Matrix) {
	mx = linalg.NewMatrix(bs.NBF, bs.NBF)
	my = linalg.NewMatrix(bs.NBF, bs.NBF)
	mz = linalg.NewMatrix(bs.NBF, bs.NBF)
	forShellPairs(bs, func(a, b *Shell) {
		bx, by, bz := dipoleBlock(a, b)
		scatterBlock(mx, a, b, bx)
		scatterBlock(my, a, b, by)
		scatterBlock(mz, a, b, bz)
	})
	return mx, my, mz
}

func dipoleBlock(a, b *Shell) (bx, by, bz []float64) {
	na, nb := a.NumFuncs(), b.NumFuncs()
	bx = make([]float64, na*nb)
	by = make([]float64, na*nb)
	bz = make([]float64, na*nb)
	ca, cb := Components(a.L), Components(b.L)
	ab := a.Center.Sub(b.Center)
	for pi, ea := range a.Exps {
		for pj, eb := range b.Exps {
			coef := a.Coefs[pi] * b.Coefs[pj]
			p := ea + eb
			pref := coef * math.Pow(math.Pi/p, 1.5)
			ex := newHermiteE(a.L+1, b.L, ea, eb, ab.X)
			ey := newHermiteE(a.L+1, b.L, ea, eb, ab.Y)
			ez := newHermiteE(a.L+1, b.L, ea, eb, ab.Z)
			s := func(e *hermiteE, i, j int) float64 { return e.at(i, j, 0) }
			// ⟨i| q |j⟩ = S(i+1, j) + A_q·S(i, j) in dimension q.
			m := func(e *hermiteE, i, j int, origin float64) float64 {
				return s(e, i+1, j) + origin*s(e, i, j)
			}
			for fa, A := range ca {
				for fb, B := range cb {
					sx, sy, sz := s(ex, A.Lx, B.Lx), s(ey, A.Ly, B.Ly), s(ez, A.Lz, B.Lz)
					idx := fa*nb + fb
					bx[idx] += pref * m(ex, A.Lx, B.Lx, a.Center.X) * sy * sz
					by[idx] += pref * sx * m(ey, A.Ly, B.Ly, a.Center.Y) * sz
					bz[idx] += pref * sx * sy * m(ez, A.Lz, B.Lz, a.Center.Z)
				}
			}
		}
	}
	applyComponentNorms2(bx, a, b)
	applyComponentNorms2(by, a, b)
	applyComponentNorms2(bz, a, b)
	return bx, by, bz
}

// DipoleMoment returns the molecular electric dipole moment in atomic
// units (1 a.u. = 2.5417 Debye): nuclear part minus electronic
// expectation Σ D_{μν}⟨μ|r|ν⟩.
func DipoleMoment(mol *Molecule, bs *BasisSet, d *linalg.Matrix) Vec3 {
	var mu Vec3
	for _, at := range mol.Atoms {
		mu = mu.Add(at.Pos.Scale(float64(at.Z)))
	}
	mx, my, mz := DipoleMatrices(bs)
	for i := range d.Data {
		mu.X -= d.Data[i] * mx.Data[i]
		mu.Y -= d.Data[i] * my.Data[i]
		mu.Z -= d.Data[i] * mz.Data[i]
	}
	return mu
}

// MullikenCharges returns per-atom Mulliken population charges
// q_A = Z_A − Σ_{μ∈A} (D·S)_{μμ}.
func MullikenCharges(mol *Molecule, bs *BasisSet, d, s *linalg.Matrix) []float64 {
	ds := linalg.MatMul(d, s)
	q := make([]float64, len(mol.Atoms))
	for i, at := range mol.Atoms {
		q[i] = float64(at.Z)
	}
	for _, sh := range bs.Shells {
		for fc := 0; fc < sh.NumFuncs(); fc++ {
			i := sh.Start + fc
			q[sh.Atom] -= ds.At(i, i)
		}
	}
	return q
}
