package chem_test

import (
	"fmt"

	"execmodels/internal/chem"
)

// A complete restricted Hartree–Fock calculation in a few lines: build a
// molecule, pick a basis, run SCF.
func ExampleRunSCF() {
	mol := chem.H2(1.4) // bond length in bohr
	bs, err := chem.NewBasis("sto-3g", mol)
	if err != nil {
		panic(err)
	}
	res, err := chem.RunSCF(mol, bs, chem.SCFOptions{UseDIIS: true}, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("converged: %v\n", res.Converged)
	fmt.Printf("E = %.4f hartree\n", res.Energy)
	// Output:
	// converged: true
	// E = -1.1167 hartree
}

// The scheduling study's workload: screened, blocked shell-pair tasks
// whose costs vary by orders of magnitude.
func ExampleBuildFockWorkload() {
	mol := chem.Water()
	bs, err := chem.NewBasis("sto-3g", mol)
	if err != nil {
		panic(err)
	}
	w := chem.BuildFockWorkload(bs, 1e-10, 2)
	fmt.Println("tasks:", len(w.Tasks))
	fmt.Println("irregular:", w.CostImbalance() > 1.5)
	// Output:
	// tasks: 8
	// irregular: true
}
