// Package chem implements the computational-chemistry kernel that serves
// as the case-study workload: Gaussian basis sets, one- and two-electron
// integrals (McMurchie–Davidson scheme), Schwarz screening, a restricted
// Hartree–Fock SCF driver, and the blocked task decomposition of the Fock
// build whose highly irregular per-task costs drive the execution-model
// study.
//
// All quantities are in atomic units (bohr, hartree) unless noted.
package chem

import (
	"fmt"
	"math"
	"math/rand"
)

// Vec3 is a point or displacement in 3-D space (bohr).
type Vec3 struct{ X, Y, Z float64 }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Scale returns s*v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Norm2 returns |v|².
func (v Vec3) Norm2() float64 { return v.X*v.X + v.Y*v.Y + v.Z*v.Z }

// Norm returns |v|.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Norm2()) }

// Atom is a nucleus with an atomic number and a position.
type Atom struct {
	Z   int // atomic number
	Pos Vec3
}

// Symbol returns the element symbol for the atom, or "X<Z>" if unknown.
func (a Atom) Symbol() string {
	if s, ok := symbols[a.Z]; ok {
		return s
	}
	return fmt.Sprintf("X%d", a.Z)
}

var symbols = map[int]string{1: "H", 2: "He", 6: "C", 7: "N", 8: "O", 9: "F"}

// AtomicNumber returns the atomic number for an element symbol, or 0 if
// the element is not supported.
func AtomicNumber(symbol string) int {
	for z, s := range symbols {
		if s == symbol {
			return z
		}
	}
	return 0
}

// Molecule is a collection of atoms with an optional net charge.
type Molecule struct {
	Name   string
	Atoms  []Atom
	Charge int // net charge: +1 for a cation, -1 for an anion
}

// NumElectrons returns the total electron count, accounting for the net
// charge.
func (m *Molecule) NumElectrons() int {
	var n int
	for _, a := range m.Atoms {
		n += a.Z
	}
	return n - m.Charge
}

// NuclearRepulsion returns the Coulomb repulsion energy between nuclei.
func (m *Molecule) NuclearRepulsion() float64 {
	var e float64
	for i := 0; i < len(m.Atoms); i++ {
		for j := i + 1; j < len(m.Atoms); j++ {
			r := m.Atoms[i].Pos.Sub(m.Atoms[j].Pos).Norm()
			e += float64(m.Atoms[i].Z*m.Atoms[j].Z) / r
		}
	}
	return e
}

const angstrom = 1.8897259886 // bohr per ångström

// H2 returns a hydrogen molecule with the given bond length in bohr.
func H2(r float64) *Molecule {
	return &Molecule{
		Name: "H2",
		Atoms: []Atom{
			{Z: 1, Pos: Vec3{0, 0, 0}},
			{Z: 1, Pos: Vec3{0, 0, r}},
		},
	}
}

// Water returns a single water molecule at its experimental geometry
// (O-H 0.9578 Å, H-O-H 104.478°), centered on the oxygen.
func Water() *Molecule {
	const (
		roh   = 0.9578 * angstrom
		theta = 104.478 * math.Pi / 180
	)
	half := theta / 2
	return &Molecule{
		Name: "H2O",
		Atoms: []Atom{
			{Z: 8, Pos: Vec3{0, 0, 0}},
			{Z: 1, Pos: Vec3{roh * math.Sin(half), 0, roh * math.Cos(half)}},
			{Z: 1, Pos: Vec3{-roh * math.Sin(half), 0, roh * math.Cos(half)}},
		},
	}
}

// WaterCluster returns n water molecules placed on a jittered cubic
// lattice with roughly liquid-water density. The deterministic seed makes
// workloads reproducible; different seeds give different (but statistically
// similar) task-cost distributions.
func WaterCluster(n int, seed int64) *Molecule {
	if n < 1 {
		panic("chem: WaterCluster needs n >= 1")
	}
	rng := rand.New(rand.NewSource(seed))
	// ~3.1 Å nearest-neighbour O-O spacing, as in liquid water.
	const spacing = 3.1 * angstrom
	side := int(math.Ceil(math.Cbrt(float64(n))))
	mol := &Molecule{Name: fmt.Sprintf("(H2O)%d", n)}
	count := 0
placement:
	for ix := 0; ix < side; ix++ {
		for iy := 0; iy < side; iy++ {
			for iz := 0; iz < side; iz++ {
				if count == n {
					break placement
				}
				origin := Vec3{
					X: float64(ix)*spacing + 0.25*spacing*rng.Float64(),
					Y: float64(iy)*spacing + 0.25*spacing*rng.Float64(),
					Z: float64(iz)*spacing + 0.25*spacing*rng.Float64(),
				}
				w := Water()
				rotateInPlace(w, rng)
				for _, a := range w.Atoms {
					mol.Atoms = append(mol.Atoms, Atom{Z: a.Z, Pos: a.Pos.Add(origin)})
				}
				count++
			}
		}
	}
	return mol
}

// Alkane returns the linear alkane CnH(2n+2) in an idealized all-trans
// zig-zag geometry. Alkanes give long, thin molecules whose shell-pair
// sparsity pattern differs qualitatively from compact clusters.
func Alkane(n int) *Molecule {
	if n < 1 {
		panic("chem: Alkane needs n >= 1")
	}
	const (
		rcc   = 1.54 * angstrom
		rch   = 1.09 * angstrom
		theta = 111.0 * math.Pi / 180 // C-C-C angle
	)
	mol := &Molecule{Name: fmt.Sprintf("C%dH%d", n, 2*n+2)}
	dx := rcc * math.Sin(theta/2)
	dz := rcc * math.Cos(theta/2)
	for i := 0; i < n; i++ {
		c := Vec3{float64(i) * dx, 0, float64(i%2) * dz}
		mol.Atoms = append(mol.Atoms, Atom{Z: 6, Pos: c})
		// Two out-of-plane hydrogens per carbon.
		up := 1.0
		if i%2 == 1 {
			up = -1.0
		}
		hy := rch * math.Sin(theta/2)
		hz := up * rch * math.Cos(theta/2)
		mol.Atoms = append(mol.Atoms,
			Atom{Z: 1, Pos: c.Add(Vec3{0, hy, hz})},
			Atom{Z: 1, Pos: c.Add(Vec3{0, -hy, hz})},
		)
	}
	// Terminal hydrogens along the chain axis.
	first := mol.Atoms[0].Pos
	last := mol.Atoms[3*(n-1)].Pos
	mol.Atoms = append(mol.Atoms,
		Atom{Z: 1, Pos: first.Add(Vec3{-rch, 0, 0})},
		Atom{Z: 1, Pos: last.Add(Vec3{rch, 0, 0})},
	)
	return mol
}

// RandomCluster returns nAtoms atoms drawn from the given elements,
// uniformly placed in a sphere sized for roughly uniform density with a
// minimum inter-atomic distance of 1.2 bohr. It is the "unstructured"
// workload generator.
func RandomCluster(nAtoms int, elements []int, seed int64) *Molecule {
	if nAtoms < 1 {
		panic("chem: RandomCluster needs nAtoms >= 1")
	}
	if len(elements) == 0 {
		elements = []int{1, 8}
	}
	rng := rand.New(rand.NewSource(seed))
	// Sphere radius for ~ 9 bohr³ per atom.
	radius := math.Cbrt(float64(nAtoms) * 9.0 * 3.0 / (4.0 * math.Pi))
	mol := &Molecule{Name: fmt.Sprintf("rand%d", nAtoms)}
	const minDist = 1.2
	for len(mol.Atoms) < nAtoms {
		p := Vec3{
			X: (2*rng.Float64() - 1) * radius,
			Y: (2*rng.Float64() - 1) * radius,
			Z: (2*rng.Float64() - 1) * radius,
		}
		if p.Norm() > radius {
			continue
		}
		ok := true
		for _, a := range mol.Atoms {
			if a.Pos.Sub(p).Norm() < minDist {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		z := elements[rng.Intn(len(elements))]
		mol.Atoms = append(mol.Atoms, Atom{Z: z, Pos: p})
	}
	return mol
}

// rotateInPlace applies a random proper rotation about the molecule's
// first atom.
func rotateInPlace(m *Molecule, rng *rand.Rand) {
	// Random rotation from three Euler angles; distribution uniformity is
	// irrelevant here, variety is all that matters.
	a, b, c := 2*math.Pi*rng.Float64(), math.Pi*rng.Float64(), 2*math.Pi*rng.Float64()
	ca, sa := math.Cos(a), math.Sin(a)
	cb, sb := math.Cos(b), math.Sin(b)
	cc, sc := math.Cos(c), math.Sin(c)
	// ZYZ rotation matrix.
	r := [3][3]float64{
		{ca*cb*cc - sa*sc, -ca*cb*sc - sa*cc, ca * sb},
		{sa*cb*cc + ca*sc, -sa*cb*sc + ca*cc, sa * sb},
		{-sb * cc, sb * sc, cb},
	}
	origin := m.Atoms[0].Pos
	for i := range m.Atoms {
		d := m.Atoms[i].Pos.Sub(origin)
		m.Atoms[i].Pos = origin.Add(Vec3{
			X: r[0][0]*d.X + r[0][1]*d.Y + r[0][2]*d.Z,
			Y: r[1][0]*d.X + r[1][1]*d.Y + r[1][2]*d.Z,
			Z: r[2][0]*d.X + r[2][1]*d.Y + r[2][2]*d.Z,
		})
	}
}
