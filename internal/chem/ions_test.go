package chem

import (
	"math"
	"testing"
)

// H3O⁺ (hydronium): a closed-shell cation, 10 electrons. The RHF energy
// is ≈ -75.3 hartree in STO-3G at a reasonable geometry.
func TestSCFHydronium(t *testing.T) {
	const (
		roh   = 0.98 * angstrom
		theta = 113.0 * math.Pi / 180
	)
	// Trigonal-pyramidal-ish: three H around O.
	mol := &Molecule{Name: "H3O+", Charge: 1}
	mol.Atoms = append(mol.Atoms, Atom{Z: 8})
	for k := 0; k < 3; k++ {
		phi := 2 * math.Pi * float64(k) / 3
		mol.Atoms = append(mol.Atoms, Atom{Z: 1, Pos: Vec3{
			X: roh * math.Sin(theta/2) * math.Cos(phi),
			Y: roh * math.Sin(theta/2) * math.Sin(phi),
			Z: roh * math.Cos(theta/2),
		}})
	}
	if mol.NumElectrons() != 10 {
		t.Fatalf("%d electrons", mol.NumElectrons())
	}
	bs := mustBasis(t, "sto-3g", mol)
	res, err := RunSCF(mol, bs, SCFOptions{UseDIIS: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("not converged")
	}
	if res.Energy > -75.0 || res.Energy < -75.6 {
		t.Errorf("E(H3O+) = %v, want ≈ -75.3", res.Energy)
	}
}

// OH⁻ (hydroxide): a closed-shell anion.
func TestSCFHydroxide(t *testing.T) {
	mol := &Molecule{
		Name:   "OH-",
		Charge: -1,
		Atoms: []Atom{
			{Z: 8},
			{Z: 1, Pos: Vec3{Z: 0.97 * angstrom}},
		},
	}
	if mol.NumElectrons() != 10 {
		t.Fatalf("%d electrons", mol.NumElectrons())
	}
	bs := mustBasis(t, "sto-3g", mol)
	res, err := RunSCF(mol, bs, SCFOptions{UseDIIS: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("not converged")
	}
	// STO-3G OH⁻ sits around -74.05..-74.5 hartree.
	if res.Energy > -73.8 || res.Energy < -74.8 {
		t.Errorf("E(OH-) = %v", res.Energy)
	}
}

// A doublet cation through UHF: H2O⁺.
func TestUHFWaterCation(t *testing.T) {
	mol := Water()
	mol.Charge = 1 // 9 electrons, doublet
	bs := mustBasis(t, "sto-3g", mol)
	res, err := RunUHF(mol, bs, UHFOptions{MaxIter: 150})
	if err != nil {
		t.Fatal(err)
	}
	if res.NAlpha != 5 || res.NBeta != 4 {
		t.Fatalf("occupation %dα/%dβ", res.NAlpha, res.NBeta)
	}
	if !res.Converged {
		t.Fatal("not converged")
	}
	// Ionization: E(H2O+) must lie above E(H2O) by roughly the first IP
	// (~0.3-0.5 hartree at this level).
	neutral, err := RunSCF(Water(), bs, SCFOptions{UseDIIS: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ip := res.Energy - neutral.Energy
	if ip < 0.1 || ip > 0.8 {
		t.Errorf("vertical IP = %v hartree, implausible", ip)
	}
}
