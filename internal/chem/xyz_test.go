package chem

import (
	"math"
	"strings"
	"testing"
)

const waterXYZ = `3
water molecule
O  0.000000  0.000000  0.000000
H  0.757000  0.000000  0.587000
H -0.757000  0.000000  0.587000
`

func TestParseXYZ(t *testing.T) {
	mol, err := ParseXYZ(strings.NewReader(waterXYZ))
	if err != nil {
		t.Fatal(err)
	}
	if mol.Name != "water molecule" {
		t.Errorf("name %q", mol.Name)
	}
	if len(mol.Atoms) != 3 || mol.Atoms[0].Z != 8 || mol.Atoms[1].Z != 1 {
		t.Fatalf("atoms %+v", mol.Atoms)
	}
	// 0.757 Å in bohr.
	want := 0.757 * angstrom
	if math.Abs(mol.Atoms[1].Pos.X-want) > 1e-10 {
		t.Errorf("x = %v, want %v", mol.Atoms[1].Pos.X, want)
	}
}

func TestParseXYZNumericElement(t *testing.T) {
	mol, err := ParseXYZ(strings.NewReader("1\n\n8 0 0 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if mol.Atoms[0].Z != 8 {
		t.Fatalf("Z = %d", mol.Atoms[0].Z)
	}
	if mol.Name != "xyz" {
		t.Fatalf("empty comment should default name, got %q", mol.Name)
	}
}

func TestParseXYZErrors(t *testing.T) {
	cases := []string{
		"",                       // empty
		"x\ncomment\n",           // bad count
		"2\ncomment\nH 0 0 0\n",  // truncated
		"1\ncomment\nH 0 0\n",    // short line
		"1\ncomment\nQq 0 0 0\n", // unknown element
		"1\ncomment\nH a b c\n",  // bad coordinate
	}
	for i, c := range cases {
		if _, err := ParseXYZ(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestXYZRoundTrip(t *testing.T) {
	orig := WaterCluster(3, 5)
	var sb strings.Builder
	if err := WriteXYZ(&sb, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ParseXYZ(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Atoms) != len(orig.Atoms) {
		t.Fatalf("%d atoms after round trip", len(back.Atoms))
	}
	for i := range orig.Atoms {
		if back.Atoms[i].Z != orig.Atoms[i].Z {
			t.Fatalf("atom %d element changed", i)
		}
		if back.Atoms[i].Pos.Sub(orig.Atoms[i].Pos).Norm() > 1e-7 {
			t.Fatalf("atom %d moved %v", i, back.Atoms[i].Pos.Sub(orig.Atoms[i].Pos).Norm())
		}
	}
}

// A parsed geometry must be usable end to end.
func TestParseXYZThenSCF(t *testing.T) {
	mol, err := ParseXYZ(strings.NewReader(waterXYZ))
	if err != nil {
		t.Fatal(err)
	}
	bs := mustBasis(t, "sto-3g", mol)
	res, err := RunSCF(mol, bs, SCFOptions{UseDIIS: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Energy > -74.8 || res.Energy < -75.1 {
		t.Fatalf("E = %v converged=%v", res.Energy, res.Converged)
	}
}
