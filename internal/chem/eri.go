package chem

import "math"

// ERIBlock computes the block of two-electron repulsion integrals
// (ab|cd) over all Cartesian components of the four shells, in chemists'
// notation:
//
//	(ab|cd) = ∫∫ a(r1) b(r1) (1/r12) c(r2) d(r2) dr1 dr2
//
// The result is laid out as blk[((fa*nb+fb)*nc+fc)*nd+fd].
//
// The implementation follows the McMurchie–Davidson scheme: both charge
// distributions are expanded in Hermite Gaussians, and the interaction
// reduces to Hermite Coulomb integrals R_{tuv} of combined order.
func ERIBlock(a, b, c, d *Shell) []float64 {
	na, nb, nc, nd := a.NumFuncs(), b.NumFuncs(), c.NumFuncs(), d.NumFuncs()
	blk := make([]float64, na*nb*nc*nd)
	ca, cb, cc, cd := Components(a.L), Components(b.L), Components(c.L), Components(d.L)
	ab := a.Center.Sub(b.Center)
	cdv := c.Center.Sub(d.Center)
	ltot := a.L + b.L + c.L + d.L

	for pi, ea := range a.Exps {
		for pj, eb := range b.Exps {
			p := ea + eb
			P := a.Center.Scale(ea / p).Add(b.Center.Scale(eb / p))
			cab := a.Coefs[pi] * b.Coefs[pj]
			e1x := newHermiteE(a.L, b.L, ea, eb, ab.X)
			e1y := newHermiteE(a.L, b.L, ea, eb, ab.Y)
			e1z := newHermiteE(a.L, b.L, ea, eb, ab.Z)
			for pk, ec := range c.Exps {
				for pl, ed := range d.Exps {
					q := ec + ed
					Q := c.Center.Scale(ec / q).Add(d.Center.Scale(ed / q))
					ccd := c.Coefs[pk] * d.Coefs[pl]
					e2x := newHermiteE(c.L, d.L, ec, ed, cdv.X)
					e2y := newHermiteE(c.L, d.L, ec, ed, cdv.Y)
					e2z := newHermiteE(c.L, d.L, ec, ed, cdv.Z)

					alpha := p * q / (p + q)
					r := newHermiteR(ltot, alpha, P.Sub(Q))
					pref := cab * ccd * 2 * piPow25 /
						(p * q * math.Sqrt(p+q))

					idx := 0
					for _, A := range ca {
						for _, B := range cb {
							lx1, ly1, lz1 := A.Lx+B.Lx, A.Ly+B.Ly, A.Lz+B.Lz
							for _, C := range cc {
								for _, D := range cd {
									lx2, ly2, lz2 := C.Lx+D.Lx, C.Ly+D.Ly, C.Lz+D.Lz
									var sum float64
									for t := 0; t <= lx1; t++ {
										et1 := e1x.at(A.Lx, B.Lx, t)
										if et1 == 0 {
											continue
										}
										for u := 0; u <= ly1; u++ {
											eu1 := e1y.at(A.Ly, B.Ly, u)
											if eu1 == 0 {
												continue
											}
											for v := 0; v <= lz1; v++ {
												ev1 := e1z.at(A.Lz, B.Lz, v)
												if ev1 == 0 {
													continue
												}
												e1 := et1 * eu1 * ev1
												for tau := 0; tau <= lx2; tau++ {
													et2 := e2x.at(C.Lx, D.Lx, tau)
													if et2 == 0 {
														continue
													}
													for nu := 0; nu <= ly2; nu++ {
														eu2 := e2y.at(C.Ly, D.Ly, nu)
														if eu2 == 0 {
															continue
														}
														for phi := 0; phi <= lz2; phi++ {
															ev2 := e2z.at(C.Lz, D.Lz, phi)
															if ev2 == 0 {
																continue
															}
															sign := 1.0
															if (tau+nu+phi)&1 == 1 {
																sign = -1
															}
															sum += e1 * sign * et2 * eu2 * ev2 *
																r.at(t+tau, u+nu, v+phi)
														}
													}
												}
											}
										}
									}
									blk[idx] += pref * sum
									idx++
								}
							}
						}
					}
				}
			}
		}
	}
	if a.L >= 2 || b.L >= 2 || c.L >= 2 || d.L >= 2 {
		normA, normB := ComponentNorms(a.L), ComponentNorms(b.L)
		normC, normD := ComponentNorms(c.L), ComponentNorms(d.L)
		idx := 0
		for _, va := range normA {
			for _, vb := range normB {
				for _, vc := range normC {
					for _, vd := range normD {
						blk[idx] *= va * vb * vc * vd
						idx++
					}
				}
			}
		}
	}
	return blk
}

// ERIBlockFlops returns a deterministic flop-count estimate for computing
// ERIBlock(a, b, c, d). It is the task cost model used by the scheduling
// study: the dominant term is (primitive quartets) × (Hermite summation
// volume) × (Cartesian component products).
func ERIBlockFlops(a, b, c, d *Shell) float64 {
	prims := float64(len(a.Exps) * len(b.Exps) * len(c.Exps) * len(d.Exps))
	comps := float64(a.NumFuncs() * b.NumFuncs() * c.NumFuncs() * d.NumFuncs())
	braVol := float64((a.L + b.L + 1) * (a.L + b.L + 1) * (a.L + b.L + 1))
	ketVol := float64((c.L + d.L + 1) * (c.L + d.L + 1) * (c.L + d.L + 1))
	ltot := float64(a.L + b.L + c.L + d.L + 1)
	// ~8 flops per innermost Hermite term, plus R-tensor construction
	// (~ltot^4) and E-table construction per primitive quartet.
	return prims * (comps*braVol*ketVol*8 + ltot*ltot*ltot*ltot*4 + 60)
}
