package chem

import (
	"math"

	"execmodels/internal/linalg"
)

// Overlap returns the overlap matrix S over all basis functions.
func Overlap(bs *BasisSet) *linalg.Matrix {
	s := linalg.NewMatrix(bs.NBF, bs.NBF)
	forShellPairs(bs, func(a, b *Shell) {
		blk := overlapBlock(a, b)
		scatterBlock(s, a, b, blk)
	})
	return s
}

// Kinetic returns the kinetic-energy matrix T.
func Kinetic(bs *BasisSet) *linalg.Matrix {
	t := linalg.NewMatrix(bs.NBF, bs.NBF)
	forShellPairs(bs, func(a, b *Shell) {
		blk := kineticBlock(a, b)
		scatterBlock(t, a, b, blk)
	})
	return t
}

// NuclearAttraction returns the nuclear-attraction matrix V for molecule
// mol (already negative: V_{μν} = -Σ_C Z_C ⟨μ| 1/r_C |ν⟩).
func NuclearAttraction(bs *BasisSet, mol *Molecule) *linalg.Matrix {
	v := linalg.NewMatrix(bs.NBF, bs.NBF)
	forShellPairs(bs, func(a, b *Shell) {
		blk := nuclearBlock(a, b, mol)
		scatterBlock(v, a, b, blk)
	})
	return v
}

// CoreHamiltonian returns H = T + V.
func CoreHamiltonian(bs *BasisSet, mol *Molecule) *linalg.Matrix {
	h := Kinetic(bs)
	h.AddScaled(1, NuclearAttraction(bs, mol))
	return h
}

// forShellPairs invokes f on each ordered shell pair (a, b) with a <= b;
// scatterBlock mirrors the block to keep the matrix symmetric.
func forShellPairs(bs *BasisSet, f func(a, b *Shell)) {
	for i := range bs.Shells {
		for j := i; j < len(bs.Shells); j++ {
			f(&bs.Shells[i], &bs.Shells[j])
		}
	}
}

// applyComponentNorms2 scales a bra×ket block by the per-component
// normalization factors of both shells (a no-op for pure s/p shells).
func applyComponentNorms2(blk []float64, a, b *Shell) {
	if a.L < 2 && b.L < 2 {
		return
	}
	na := ComponentNorms(a.L)
	nb := ComponentNorms(b.L)
	for fa, va := range na {
		for fb, vb := range nb {
			blk[fa*len(nb)+fb] *= va * vb
		}
	}
}

// scatterBlock writes the na×nb shell block into the full matrix at the
// shells' offsets, mirroring into the lower triangle.
func scatterBlock(m *linalg.Matrix, a, b *Shell, blk []float64) {
	na, nb := a.NumFuncs(), b.NumFuncs()
	for fa := 0; fa < na; fa++ {
		for fb := 0; fb < nb; fb++ {
			v := blk[fa*nb+fb]
			m.Set(a.Start+fa, b.Start+fb, v)
			m.Set(b.Start+fb, a.Start+fa, v)
		}
	}
}

// overlapBlock computes the contracted overlap block ⟨a|b⟩.
func overlapBlock(a, b *Shell) []float64 {
	na, nb := a.NumFuncs(), b.NumFuncs()
	blk := make([]float64, na*nb)
	ca, cb := Components(a.L), Components(b.L)
	ab := a.Center.Sub(b.Center)
	for pi, ea := range a.Exps {
		for pj, eb := range b.Exps {
			coef := a.Coefs[pi] * b.Coefs[pj]
			p := ea + eb
			pref := coef * math.Pow(math.Pi/p, 1.5)
			ex := newHermiteE(a.L, b.L, ea, eb, ab.X)
			ey := newHermiteE(a.L, b.L, ea, eb, ab.Y)
			ez := newHermiteE(a.L, b.L, ea, eb, ab.Z)
			for fa, compA := range ca {
				for fb, compB := range cb {
					blk[fa*nb+fb] += pref *
						ex.at(compA.Lx, compB.Lx, 0) *
						ey.at(compA.Ly, compB.Ly, 0) *
						ez.at(compA.Lz, compB.Lz, 0)
				}
			}
		}
	}
	applyComponentNorms2(blk, a, b)
	return blk
}

// kineticBlock computes the contracted kinetic-energy block ⟨a| -∇²/2 |b⟩
// via the 1-D relation
//
//	T_ij = -2b² S_{i,j+2} + b(2j+1) S_{ij} - j(j-1)/2 · S_{i,j-2}
//
// combined as T = T_x S_y S_z + S_x T_y S_z + S_x S_y T_z.
func kineticBlock(a, b *Shell) []float64 {
	na, nb := a.NumFuncs(), b.NumFuncs()
	blk := make([]float64, na*nb)
	ca, cb := Components(a.L), Components(b.L)
	ab := a.Center.Sub(b.Center)
	for pi, ea := range a.Exps {
		for pj, eb := range b.Exps {
			coef := a.Coefs[pi] * b.Coefs[pj]
			p := ea + eb
			pref := coef * math.Pow(math.Pi/p, 1.5)
			// Need j up to b.L+2 in each dimension.
			ex := newHermiteE(a.L, b.L+2, ea, eb, ab.X)
			ey := newHermiteE(a.L, b.L+2, ea, eb, ab.Y)
			ez := newHermiteE(a.L, b.L+2, ea, eb, ab.Z)
			s1d := func(e *hermiteE, i, j int) float64 {
				if j < 0 {
					return 0
				}
				return e.at(i, j, 0)
			}
			t1d := func(e *hermiteE, i, j int) float64 {
				v := -2 * eb * eb * s1d(e, i, j+2)
				v += eb * float64(2*j+1) * s1d(e, i, j)
				v -= 0.5 * float64(j*(j-1)) * s1d(e, i, j-2)
				return v
			}
			for fa, A := range ca {
				for fb, B := range cb {
					sx, sy, sz := s1d(ex, A.Lx, B.Lx), s1d(ey, A.Ly, B.Ly), s1d(ez, A.Lz, B.Lz)
					tx, ty, tz := t1d(ex, A.Lx, B.Lx), t1d(ey, A.Ly, B.Ly), t1d(ez, A.Lz, B.Lz)
					blk[fa*nb+fb] += pref * (tx*sy*sz + sx*ty*sz + sx*sy*tz)
				}
			}
		}
	}
	applyComponentNorms2(blk, a, b)
	return blk
}

// nuclearBlock computes the contracted nuclear-attraction block
// -Σ_C Z_C ⟨a| 1/r_C |b⟩ using Hermite Coulomb integrals.
func nuclearBlock(a, b *Shell, mol *Molecule) []float64 {
	na, nb := a.NumFuncs(), b.NumFuncs()
	blk := make([]float64, na*nb)
	ca, cb := Components(a.L), Components(b.L)
	ab := a.Center.Sub(b.Center)
	ltot := a.L + b.L
	for pi, ea := range a.Exps {
		for pj, eb := range b.Exps {
			coef := a.Coefs[pi] * b.Coefs[pj]
			p := ea + eb
			P := a.Center.Scale(ea / p).Add(b.Center.Scale(eb / p))
			pref := coef * 2 * math.Pi / p
			ex := newHermiteE(a.L, b.L, ea, eb, ab.X)
			ey := newHermiteE(a.L, b.L, ea, eb, ab.Y)
			ez := newHermiteE(a.L, b.L, ea, eb, ab.Z)
			for _, atom := range mol.Atoms {
				r := newHermiteR(ltot, p, P.Sub(atom.Pos))
				z := -float64(atom.Z)
				for fa, A := range ca {
					for fb, B := range cb {
						var sum float64
						for t := 0; t <= A.Lx+B.Lx; t++ {
							extv := ex.at(A.Lx, B.Lx, t)
							if extv == 0 {
								continue
							}
							for u := 0; u <= A.Ly+B.Ly; u++ {
								eytv := ey.at(A.Ly, B.Ly, u)
								if eytv == 0 {
									continue
								}
								for v := 0; v <= A.Lz+B.Lz; v++ {
									eztv := ez.at(A.Lz, B.Lz, v)
									if eztv == 0 {
										continue
									}
									sum += extv * eytv * eztv * r.at(t, u, v)
								}
							}
						}
						blk[fa*nb+fb] += z * pref * sum
					}
				}
			}
		}
	}
	applyComponentNorms2(blk, a, b)
	return blk
}
