package chem

import (
	"math"
	"testing"

	"execmodels/internal/linalg"
)

func linalg2(s *linalg.Matrix) *linalg.Matrix { return linalg.InvSqrtSym(s, 1e-10) }

func newMat(n int) *linalg.Matrix { return linalg.NewMatrix(n, n) }

// A single hydrogen atom (doublet): UHF/STO-3G energy is the STO-3G 1s
// expectation value, -0.46658 hartree.
func TestUHFHydrogenAtom(t *testing.T) {
	mol := &Molecule{Name: "H", Atoms: []Atom{{Z: 1}}}
	bs := mustBasis(t, "sto-3g", mol)
	res, err := RunUHF(mol, bs, UHFOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged after %d iterations", res.Iterations)
	}
	if math.Abs(res.Energy-(-0.46658)) > 1e-4 {
		t.Errorf("E(H) = %.6f, want -0.46658", res.Energy)
	}
	if res.NAlpha != 1 || res.NBeta != 0 {
		t.Errorf("occupation %dα/%dβ", res.NAlpha, res.NBeta)
	}
	// A single electron cannot be spin-contaminated: ⟨S²⟩ = 0.75.
	if math.Abs(res.S2-0.75) > 1e-8 {
		t.Errorf("⟨S²⟩ = %v, want 0.75", res.S2)
	}
}

// For a closed-shell molecule, UHF must reproduce the RHF energy.
func TestUHFMatchesRHFClosedShell(t *testing.T) {
	mol := Water()
	bs := mustBasis(t, "sto-3g", mol)
	rhf, err := RunSCF(mol, bs, SCFOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	uhf, err := RunUHF(mol, bs, UHFOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !uhf.Converged {
		t.Fatalf("UHF not converged in %d iterations", uhf.Iterations)
	}
	if math.Abs(uhf.Energy-rhf.Energy) > 1e-6 {
		t.Errorf("UHF %v vs RHF %v", uhf.Energy, rhf.Energy)
	}
	// Closed shell: no contamination.
	if math.Abs(uhf.S2) > 1e-6 {
		t.Errorf("⟨S²⟩ = %v, want 0", uhf.S2)
	}
}

// Triplet O2: a classic UHF case. The energy must sit in the right
// ballpark (-147.6 ± 0.3 hartree for UHF/STO-3G) and the α/β split must
// be 9/7.
func TestUHFTripletO2(t *testing.T) {
	const r = 1.2074 * angstrom
	mol := &Molecule{
		Name:  "O2",
		Atoms: []Atom{{Z: 8}, {Z: 8, Pos: Vec3{0, 0, r}}},
	}
	bs := mustBasis(t, "sto-3g", mol)
	res, err := RunUHF(mol, bs, UHFOptions{Multiplicity: 3, MaxIter: 200})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged in %d iterations", res.Iterations)
	}
	if res.NAlpha != 9 || res.NBeta != 7 {
		t.Fatalf("occupation %dα/%dβ, want 9/7", res.NAlpha, res.NBeta)
	}
	if res.Energy > -147.3 || res.Energy < -147.9 {
		t.Errorf("E(O2,triplet) = %.5f, want ≈ -147.6", res.Energy)
	}
	// Triplet: ⟨S²⟩ ≈ 2 (slight contamination allowed).
	if res.S2 < 1.99 || res.S2 > 2.2 {
		t.Errorf("⟨S²⟩ = %v, want ≈ 2.0", res.S2)
	}
}

// The triplet must lie below the singlet for O2 (Hund's rule at the UHF
// level).
func TestUHFO2HundsRule(t *testing.T) {
	const r = 1.2074 * angstrom
	mol := &Molecule{
		Name:  "O2",
		Atoms: []Atom{{Z: 8}, {Z: 8, Pos: Vec3{0, 0, r}}},
	}
	bs := mustBasis(t, "sto-3g", mol)
	trip, err := RunUHF(mol, bs, UHFOptions{Multiplicity: 3, MaxIter: 200})
	if err != nil {
		t.Fatal(err)
	}
	sing, err := RunUHF(mol, bs, UHFOptions{Multiplicity: 1, MaxIter: 200})
	if err != nil {
		t.Fatal(err)
	}
	if !trip.Converged || !sing.Converged {
		t.Skip("one of the states did not converge; Hund comparison skipped")
	}
	if trip.Energy >= sing.Energy {
		t.Errorf("triplet %v not below singlet %v", trip.Energy, sing.Energy)
	}
}

// UHF-DIIS must reach the same fixed point as damped UHF, in no more
// iterations.
func TestUHFDIIS(t *testing.T) {
	const r = 1.2074 * angstrom
	mol := &Molecule{
		Name:  "O2",
		Atoms: []Atom{{Z: 8}, {Z: 8, Pos: Vec3{0, 0, r}}},
	}
	bs := mustBasis(t, "sto-3g", mol)
	damped, err := RunUHF(mol, bs, UHFOptions{Multiplicity: 3, MaxIter: 200})
	if err != nil {
		t.Fatal(err)
	}
	diis, err := RunUHF(mol, bs, UHFOptions{Multiplicity: 3, MaxIter: 200, UseDIIS: true})
	if err != nil {
		t.Fatal(err)
	}
	if !damped.Converged || !diis.Converged {
		t.Fatalf("convergence: damped=%v diis=%v (%d/%d iters)",
			damped.Converged, diis.Converged, damped.Iterations, diis.Iterations)
	}
	if math.Abs(damped.Energy-diis.Energy) > 1e-6 {
		t.Errorf("energies differ: %v vs %v", damped.Energy, diis.Energy)
	}
	if diis.Iterations > damped.Iterations {
		t.Errorf("DIIS took %d iterations vs damped %d", diis.Iterations, damped.Iterations)
	}
}

func TestUHFBadMultiplicity(t *testing.T) {
	mol := Water() // 10 electrons: even
	bs := mustBasis(t, "sto-3g", mol)
	if _, err := RunUHF(mol, bs, UHFOptions{Multiplicity: 2}); err == nil {
		t.Fatal("expected parity error")
	}
	if _, err := RunUHF(mol, bs, UHFOptions{Multiplicity: -3}); err == nil {
		t.Fatal("expected negative-multiplicity error")
	}
}

func TestUHFDefaultMultiplicity(t *testing.T) {
	mol := &Molecule{Name: "OH", Atoms: []Atom{
		{Z: 8}, {Z: 1, Pos: Vec3{0, 0, 0.97 * angstrom}},
	}} // 9 electrons → doublet
	bs := mustBasis(t, "sto-3g", mol)
	res, err := RunUHF(mol, bs, UHFOptions{MaxIter: 150})
	if err != nil {
		t.Fatal(err)
	}
	if res.NAlpha-res.NBeta != 1 {
		t.Fatalf("default multiplicity gave %dα/%dβ", res.NAlpha, res.NBeta)
	}
}

// The spin-resolved task execution must agree with the restricted path
// when both spins share a density.
func TestExecuteTaskSpinConsistency(t *testing.T) {
	mol := Water()
	bs := mustBasis(t, "sto-3g", mol)
	w := BuildFockWorkload(bs, 1e-12, 3)
	n := bs.NBF
	s := Overlap(bs)
	h := CoreHamiltonian(bs, mol)
	x := linalg2(s)
	dHalf, _, _ := uhfDensity(h, x, mol.NumElectrons()/2)
	dTot := dHalf.Clone()
	dTot.AddScaled(1, dHalf)

	jR := newMat(n)
	kR := newMat(n)
	jU := newMat(n)
	kA := newMat(n)
	kB := newMat(n)
	for i := range w.Tasks {
		w.ExecuteTask(&w.Tasks[i], dTot, jR, kR)
		w.ExecuteTaskSpin(&w.Tasks[i], dTot, dHalf, dHalf, jU, kA, kB)
	}
	if jR.MaxAbsDiff(jU) > 1e-10 {
		t.Error("J differs between restricted and spin paths")
	}
	// K from the total density is twice K from either spin half.
	kHalf := kA.Clone().Scale(2)
	if kR.MaxAbsDiff(kHalf) > 1e-10 {
		t.Error("K[Dtot] != 2·K[Dα]")
	}
	if kA.MaxAbsDiff(kB) > 1e-12 {
		t.Error("equal densities gave different Ks")
	}
}
