package chem

import "math"

// Boys fills out[0..mmax] with the Boys function values
//
//	F_m(x) = ∫₀¹ t^{2m} exp(-x t²) dt,  m = 0..mmax,
//
// which are the radial kernels of all Coulomb-type Gaussian integrals.
//
// For small x the top order is computed by its (rapidly converging) power
// series and lower orders follow from the numerically stable downward
// recursion F_m = (2x·F_{m+1} + e^{-x}) / (2m+1). For large x the
// asymptotic form of F_0 seeds the upward recursion, which is stable there
// because e^{-x} is negligible.
func Boys(mmax int, x float64, out []float64) {
	if len(out) < mmax+1 {
		panic("chem: Boys output slice too short")
	}
	switch {
	case x < 1e-14:
		for m := 0; m <= mmax; m++ {
			out[m] = 1 / float64(2*m+1)
		}
	case x < 35:
		out[mmax] = boysSeries(mmax, x)
		ex := math.Exp(-x)
		for m := mmax - 1; m >= 0; m-- {
			out[m] = (2*x*out[m+1] + ex) / float64(2*m+1)
		}
	default:
		out[0] = 0.5 * math.Sqrt(math.Pi/x)
		ex := math.Exp(-x) // ~0 but keep for x just above the cutoff
		for m := 0; m < mmax; m++ {
			out[m+1] = (float64(2*m+1)*out[m] - ex) / (2 * x)
		}
	}
}

// boysSeries evaluates F_m(x) by the series
//
//	F_m(x) = e^{-x} Σ_{i≥0} (2m-1)!! (2x)^i / (2m+2i+1)!!
//
// which converges quickly for the x range it is used on (x < 35).
func boysSeries(m int, x float64) float64 {
	term := 1 / float64(2*m+1)
	sum := term
	for i := 1; i < 200; i++ {
		term *= 2 * x / float64(2*m+2*i+1)
		sum += term
		if term < 1e-17*sum {
			break
		}
	}
	return sum * math.Exp(-x)
}
