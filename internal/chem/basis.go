package chem

import (
	"fmt"
	"math"
	"sort"
)

// Shell is a contracted Cartesian Gaussian shell: a set of primitives
// sharing a center and total angular momentum L, expanded over all
// (L+1)(L+2)/2 Cartesian components.
type Shell struct {
	Atom   int  // index into Molecule.Atoms
	Center Vec3 // copy of the atom position
	L      int  // total angular momentum: 0=s, 1=p, 2=d, ...
	Exps   []float64
	Coefs  []float64 // contraction coefficients including primitive norms
	Start  int       // first basis-function index of this shell
}

// NumFuncs returns the number of Cartesian components of the shell.
func (s *Shell) NumFuncs() int { return (s.L + 1) * (s.L + 2) / 2 }

// MinExp returns the smallest primitive exponent, which controls the
// shell's spatial extent and hence its screening behaviour.
func (s *Shell) MinExp() float64 {
	m := s.Exps[0]
	for _, e := range s.Exps[1:] {
		if e < m {
			m = e
		}
	}
	return m
}

// CartComponent is one Cartesian angular momentum triple (lx, ly, lz).
type CartComponent struct{ Lx, Ly, Lz int }

// Components returns the Cartesian components of angular momentum L in
// canonical (lexicographic-descending in lx, then ly) order. The returned
// slice is shared and must not be mutated: the ERI hot path calls this
// once per quartet, so the common angular momenta are served from a
// precomputed table instead of allocating.
func Components(L int) []CartComponent {
	if L < len(componentsTab) {
		return componentsTab[L]
	}
	return makeComponents(L)
}

func makeComponents(L int) []CartComponent {
	var out []CartComponent
	for lx := L; lx >= 0; lx-- {
		for ly := L - lx; ly >= 0; ly-- {
			//lint:ignore allocfree cold fallback: only reachable for L > maxCachedL, beyond any basis set shipped here
			out = append(out, CartComponent{lx, ly, L - lx - ly})
		}
	}
	return out
}

// maxCachedL bounds the Components/ComponentNorms tables; real basis sets
// here stop at d shells (L=2), so 8 leaves generous headroom.
const maxCachedL = 8

var componentsTab = func() [][]CartComponent {
	tab := make([][]CartComponent, maxCachedL+1)
	for l := range tab {
		tab[l] = makeComponents(l)
	}
	return tab
}()

// ComponentNorms returns, for each Cartesian component of angular
// momentum L, the extra normalization factor relative to the (L,0,0)
// reference component whose norm the contraction coefficients carry:
//
//	N(lx,ly,lz) = sqrt( (2L-1)!! / ((2lx-1)!!(2ly-1)!!(2lz-1)!!) )
//
// With this factor applied in every integral, every Cartesian basis
// function has exactly unit self-overlap (e.g. dxy, whose raw norm under
// the shared shell coefficients would be 1/√3, is scaled by √3).
//
// Like Components, the returned slice is shared (precomputed per L) and
// must not be mutated.
func ComponentNorms(L int) []float64 {
	if L < len(componentNormsTab) {
		return componentNormsTab[L]
	}
	return makeComponentNorms(L)
}

func makeComponentNorms(L int) []float64 {
	comps := Components(L)
	out := make([]float64, len(comps)) //lint:ignore allocfree cold fallback: only reachable for L > maxCachedL, beyond any basis set shipped here
	for i, c := range comps {
		out[i] = math.Sqrt(doubleFactorial(2*L-1) /
			(doubleFactorial(2*c.Lx-1) * doubleFactorial(2*c.Ly-1) * doubleFactorial(2*c.Lz-1)))
	}
	return out
}

var componentNormsTab = func() [][]float64 {
	tab := make([][]float64, maxCachedL+1)
	for l := range tab {
		tab[l] = makeComponentNorms(l)
	}
	return tab
}()

// BasisSet is a molecule-specific list of shells plus bookkeeping.
type BasisSet struct {
	Name   string
	Shells []Shell
	NBF    int // total number of basis functions
}

// shellSpec is one shell of a per-element basis definition.
type shellSpec struct {
	l     int
	exps  []float64
	coefs []float64
}

// basisLibrary maps basis-set name -> atomic number -> shells.
// Exponents and coefficients are the published STO-3G and 6-31G values
// (EMSL basis-set exchange).
var basisLibrary = map[string]map[int][]shellSpec{
	"sto-3g": {
		1: {
			{0, []float64{3.425250914, 0.6239137298, 0.1688554040},
				[]float64{0.1543289673, 0.5353281423, 0.4446345422}},
		},
		2: {
			{0, []float64{6.362421394, 1.158922999, 0.3136497915},
				[]float64{0.1543289673, 0.5353281423, 0.4446345422}},
		},
		9: {
			{0, []float64{166.6791340, 30.36081233, 8.216820672},
				[]float64{0.1543289673, 0.5353281423, 0.4446345422}},
			{0, []float64{6.464803249, 1.502281245, 0.4885884864},
				[]float64{-0.09996722919, 0.3995128261, 0.7001154689}},
			{1, []float64{6.464803249, 1.502281245, 0.4885884864},
				[]float64{0.1559162750, 0.6076837186, 0.3919573931}},
		},
		6: {
			{0, []float64{71.61683735, 13.04509632, 3.530512160},
				[]float64{0.1543289673, 0.5353281423, 0.4446345422}},
			{0, []float64{2.941249355, 0.6834830964, 0.2222899159},
				[]float64{-0.09996722919, 0.3995128261, 0.7001154689}},
			{1, []float64{2.941249355, 0.6834830964, 0.2222899159},
				[]float64{0.1559162750, 0.6076837186, 0.3919573931}},
		},
		7: {
			{0, []float64{99.10616896, 18.05231239, 4.885660238},
				[]float64{0.1543289673, 0.5353281423, 0.4446345422}},
			{0, []float64{3.780455879, 0.8784966449, 0.2857143744},
				[]float64{-0.09996722919, 0.3995128261, 0.7001154689}},
			{1, []float64{3.780455879, 0.8784966449, 0.2857143744},
				[]float64{0.1559162750, 0.6076837186, 0.3919573931}},
		},
		8: {
			{0, []float64{130.7093200, 23.80886605, 6.443608313},
				[]float64{0.1543289673, 0.5353281423, 0.4446345422}},
			{0, []float64{5.033151319, 1.169596125, 0.3803889600},
				[]float64{-0.09996722919, 0.3995128261, 0.7001154689}},
			{1, []float64{5.033151319, 1.169596125, 0.3803889600},
				[]float64{0.1559162750, 0.6076837186, 0.3919573931}},
		},
	},
	"6-31g": {
		1: {
			{0, []float64{18.73113696, 2.825394365, 0.6401216923},
				[]float64{0.03349460434, 0.2347269535, 0.8137573261}},
			{0, []float64{0.1612777588}, []float64{1.0}},
		},
		6: {
			{0, []float64{3047.524880, 457.3695180, 103.9486850, 29.21015530, 9.286662960, 3.163926960},
				[]float64{0.001834737132, 0.01403732281, 0.06884262226, 0.2321844432, 0.4679413484, 0.3623119853}},
			{0, []float64{7.868272350, 1.881288540, 0.5442492580},
				[]float64{-0.1193324198, -0.1608541517, 1.143456438}},
			{1, []float64{7.868272350, 1.881288540, 0.5442492580},
				[]float64{0.06899906659, 0.3164239610, 0.7443082909}},
			{0, []float64{0.1687144782}, []float64{1.0}},
			{1, []float64{0.1687144782}, []float64{1.0}},
		},
		8: {
			{0, []float64{5484.671660, 825.2349460, 188.0469580, 52.96450000, 16.89757040, 5.799635340},
				[]float64{0.001831074430, 0.01395017220, 0.06844507810, 0.2327143360, 0.4701928980, 0.3585208530}},
			{0, []float64{15.53961625, 3.599933586, 1.013761750},
				[]float64{-0.1107775495, -0.1480262627, 1.130767015}},
			{1, []float64{15.53961625, 3.599933586, 1.013761750},
				[]float64{0.07087426823, 0.3397528391, 0.7271585773}},
			{0, []float64{0.2700058226}, []float64{1.0}},
			{1, []float64{0.2700058226}, []float64{1.0}},
		},
	},
}

func init() {
	// 6-31G* = 6-31G plus a single Cartesian d polarization shell
	// (exponent 0.8) on heavy atoms. Built programmatically from the
	// 6-31G tables above.
	star := map[int][]shellSpec{}
	for z, specs := range basisLibrary["6-31g"] {
		cp := append([]shellSpec(nil), specs...)
		if z > 2 {
			cp = append(cp, shellSpec{2, []float64{0.8}, []float64{1.0}})
		}
		star[z] = cp
	}
	basisLibrary["6-31g*"] = star
}

// BasisNames returns the supported basis-set names.
func BasisNames() []string {
	names := make([]string, 0, len(basisLibrary))
	for n := range basisLibrary {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NewBasis builds the basis set named name for molecule mol. It returns an
// error if the basis set or any element is unsupported.
func NewBasis(name string, mol *Molecule) (*BasisSet, error) {
	lib, ok := basisLibrary[name]
	if !ok {
		return nil, fmt.Errorf("chem: unknown basis set %q (have %v)", name, BasisNames())
	}
	bs := &BasisSet{Name: name}
	for ai, atom := range mol.Atoms {
		specs, ok := lib[atom.Z]
		if !ok {
			return nil, fmt.Errorf("chem: basis %q has no element Z=%d", name, atom.Z)
		}
		for _, sp := range specs {
			sh := Shell{
				Atom:   ai,
				Center: atom.Pos,
				L:      sp.l,
				Exps:   append([]float64(nil), sp.exps...),
				Coefs:  append([]float64(nil), sp.coefs...),
				Start:  bs.NBF,
			}
			normalizeShell(&sh)
			bs.Shells = append(bs.Shells, sh)
			bs.NBF += sh.NumFuncs()
		}
	}
	return bs, nil
}

// normalizeShell folds primitive normalization constants into the
// contraction coefficients and then rescales the contraction so the
// self-overlap of the first Cartesian component (L,0,0) is exactly 1.
// The remaining components (for L >= 2) are brought to unit norm by the
// per-component factors of ComponentNorms, applied inside every integral
// routine.
func normalizeShell(s *Shell) {
	L := s.L
	// Primitive normalization for the (L,0,0) component:
	// N = (2a/pi)^{3/4} (4a)^{L/2} / sqrt((2L-1)!!)
	for i, a := range s.Exps {
		n := math.Pow(2*a/math.Pi, 0.75) * math.Pow(4*a, float64(L)/2) /
			math.Sqrt(doubleFactorial(2*L-1))
		s.Coefs[i] *= n
	}
	// Contracted self-overlap of the (L,0,0) component:
	// S = sum_ij c_i c_j (pi/(a_i+a_j))^{3/2} (2L-1)!! / (2(a_i+a_j))^L
	var S float64
	for i, ai := range s.Exps {
		for j, aj := range s.Exps {
			p := ai + aj
			S += s.Coefs[i] * s.Coefs[j] *
				math.Pow(math.Pi/p, 1.5) * doubleFactorial(2*L-1) / math.Pow(2*p, float64(L))
		}
	}
	scale := 1 / math.Sqrt(S)
	for i := range s.Coefs {
		s.Coefs[i] *= scale
	}
}

// doubleFactorial returns n!! with (-1)!! == 1.
func doubleFactorial(n int) float64 {
	if n <= 0 {
		return 1
	}
	f := 1.0
	for k := n; k > 1; k -= 2 {
		f *= float64(k)
	}
	return f
}
