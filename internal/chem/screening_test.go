package chem

import (
	"math"
	"testing"
)

// maxAbsBlock returns max |element| of an ERI shell-quartet block.
func maxAbsBlock(blk []float64) float64 {
	var mx float64
	for _, v := range blk {
		if v = math.Abs(v); v > mx {
			mx = v
		}
	}
	return mx
}

// schwarzViolation checks every shell quartet of bs against its claimed
// Cauchy–Schwarz bound: max |(ab|cd)| must not exceed Q_ab * Q_cd beyond
// floating-point slack. The inequality is exact in real arithmetic, so
// any real violation means screening could prune a non-negligible
// quartet — the one failure mode Schwarz screening must never have.
func schwarzViolation(t *testing.T, bs *BasisSet) {
	t.Helper()
	pairs := SchwarzBounds(bs)
	n := len(bs.Shells)
	bound := make([][]float64, n)
	for i := range bound {
		bound[i] = make([]float64, n)
	}
	for _, p := range pairs {
		bound[p.I][p.J] = p.Bound
		bound[p.J][p.I] = p.Bound
	}
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			for c := 0; c < n; c++ {
				for d := 0; d < n; d++ {
					q := bound[a][b] * bound[c][d]
					mx := maxAbsBlock(ERIBlock(&bs.Shells[a], &bs.Shells[b], &bs.Shells[c], &bs.Shells[d]))
					// Relative slack for roundoff in the bound product and
					// the block itself; absolute floor for near-zero blocks.
					if mx > q*(1+1e-9)+1e-13 {
						t.Errorf("quartet (%d %d|%d %d): |block| = %g exceeds Schwarz bound %g",
							a, b, c, d, mx, q)
					}
				}
			}
		}
	}
}

// FuzzSchwarzBound drives schwarzViolation over randomized geometries and
// both library basis sets: no quartet the bound would screen out may
// carry weight above the threshold (no false pruning), because the bound
// itself must dominate the exactly computed block.
func FuzzSchwarzBound(f *testing.F) {
	f.Add(int64(1), uint8(0))
	f.Add(int64(7), uint8(1))
	f.Add(int64(42), uint8(2))
	f.Add(int64(-3), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, shape uint8) {
		var mol *Molecule
		switch shape % 4 {
		case 0:
			mol = RandomCluster(2, []int{1, 8}, seed)
		case 1:
			mol = RandomCluster(3, []int{1, 1, 6}, seed)
		case 2:
			mol = WaterCluster(1, seed)
		default:
			// Stretched/compressed H2 exercises near-degenerate pairs.
			r := 0.5 + float64(uint64(seed)%400)/100
			mol = H2(r)
		}
		basis := "sto-3g"
		if shape&4 != 0 {
			basis = "6-31g"
		}
		bs, err := NewBasis(basis, mol)
		if err != nil {
			t.Skipf("basis %s unavailable for fuzz molecule: %v", basis, err)
		}
		if len(bs.Shells) > 12 {
			t.Skip("fuzz case too large for the N^4 sweep")
		}
		schwarzViolation(t, bs)
	})
}

// TestSchwarzNoFalsePruning is the deterministic statement of the fuzz
// property at the workload level: every unique quartet the generation-time
// screening dropped (absent from all Kets lists) must have an exactly
// computed block norm below the threshold.
func TestSchwarzNoFalsePruning(t *testing.T) {
	mol := WaterCluster(2, 11)
	bs, err := NewBasis("sto-3g", mol)
	if err != nil {
		t.Fatal(err)
	}
	const thr = 1e-6
	w := BuildFockWorkload(bs, thr, 4)

	kept := map[[2]int]bool{}
	for _, task := range w.Tasks {
		for bi := range task.BraPairs {
			for _, ki := range task.Kets[bi] {
				kept[[2]int{task.PairOffset + bi, int(ki)}] = true
			}
		}
	}
	var pruned, checked int
	for bi := range w.Pairs {
		for ki := 0; ki <= bi; ki++ {
			if kept[[2]int{bi, ki}] {
				continue
			}
			pruned++
			bra, ket := w.Pairs[bi], w.Pairs[ki]
			mx := maxAbsBlock(ERIBlock(
				&bs.Shells[bra.I], &bs.Shells[bra.J],
				&bs.Shells[ket.I], &bs.Shells[ket.J]))
			checked++
			if mx >= thr {
				t.Errorf("pruned quartet (%d%d|%d%d) has |block| = %g >= threshold %g",
					bra.I, bra.J, ket.I, ket.J, mx, thr)
			}
		}
	}
	if pruned == 0 {
		t.Fatal("test is vacuous: screening pruned nothing at threshold 1e-6")
	}
	t.Logf("verified %d pruned quartets all below %g", checked, thr)
}

// The screening predicate itself: the workload must drop exactly the
// quartets whose bound product is below threshold, and tightening the
// threshold must shrink the surviving set monotonically.
func TestScreeningMonotonic(t *testing.T) {
	mol := WaterCluster(2, 11)
	bs, err := NewBasis("sto-3g", mol)
	if err != nil {
		t.Fatal(err)
	}
	prev := int64(-1)
	for _, thr := range []float64{1e-2, 1e-4, 1e-6, 1e-8, 1e-10, 0} {
		st := BuildFockWorkload(bs, thr, 4).Stats()
		if prev >= 0 && st.Surviving < prev {
			t.Errorf("surviving quartets dropped from %d to %d as threshold loosened to %g",
				prev, st.Surviving, thr)
		}
		prev = st.Surviving
	}
	if st := BuildFockWorkload(bs, 0, 4).Stats(); st.Surviving != st.UniqueQuartets {
		t.Errorf("threshold 0 survives %d of %d unique quartets", st.Surviving, st.UniqueQuartets)
	}
}
