package chem

import (
	"math"
	"math/rand"
	"testing"

	"execmodels/internal/linalg"
)

func mustBasis(t testing.TB, name string, mol *Molecule) *BasisSet {
	t.Helper()
	bs, err := NewBasis(name, mol)
	if err != nil {
		t.Fatal(err)
	}
	return bs
}

func TestBasisUnknownName(t *testing.T) {
	if _, err := NewBasis("nope", H2(1.4)); err == nil {
		t.Fatal("expected error for unknown basis")
	}
}

func TestBasisUnknownElement(t *testing.T) {
	mol := &Molecule{Atoms: []Atom{{Z: 92}}}
	if _, err := NewBasis("sto-3g", mol); err == nil {
		t.Fatal("expected error for unsupported element")
	}
}

func TestBasisSizes(t *testing.T) {
	cases := []struct {
		basis string
		mol   *Molecule
		nbf   int
	}{
		{"sto-3g", H2(1.4), 2},
		{"sto-3g", Water(), 7}, // O: 1s+2s+2p(3) = 5, 2 H
		{"6-31g", H2(1.4), 4},  // 2 s shells per H
		{"6-31g", Water(), 13}, // O: 3s + 2*3p = 9, plus 4 H functions
	}
	for _, c := range cases {
		bs := mustBasis(t, c.basis, c.mol)
		if bs.NBF != c.nbf {
			t.Errorf("%s/%s: NBF = %d, want %d", c.basis, c.mol.Name, bs.NBF, c.nbf)
		}
	}
}

func TestComponents(t *testing.T) {
	if n := len(Components(0)); n != 1 {
		t.Fatalf("s components = %d", n)
	}
	if n := len(Components(1)); n != 3 {
		t.Fatalf("p components = %d", n)
	}
	if n := len(Components(2)); n != 6 {
		t.Fatalf("d components = %d", n)
	}
}

func TestOverlapDiagonalIsOne(t *testing.T) {
	for _, name := range BasisNames() {
		bs := mustBasis(t, name, Water())
		s := Overlap(bs)
		for i := 0; i < bs.NBF; i++ {
			if math.Abs(s.At(i, i)-1) > 1e-10 {
				t.Errorf("%s: S[%d][%d] = %v, want 1", name, i, i, s.At(i, i))
			}
		}
		if !s.IsSymmetric(1e-12) {
			t.Errorf("%s: overlap not symmetric", name)
		}
	}
}

// Szabo & Ostlund table 3.5-ish: H2/STO-3G at R = 1.4 bohr has
// S12 ≈ 0.6593, T11 ≈ 0.7600, (11|11) ≈ 0.7746, (11|22)... etc.
func TestH2STO3GKnownIntegrals(t *testing.T) {
	bs := mustBasis(t, "sto-3g", H2(1.4))
	s := Overlap(bs)
	if math.Abs(s.At(0, 1)-0.6593) > 5e-4 {
		t.Errorf("S12 = %v, want ~0.6593", s.At(0, 1))
	}
	k := Kinetic(bs)
	if math.Abs(k.At(0, 0)-0.7600) > 5e-4 {
		t.Errorf("T11 = %v, want ~0.7600", k.At(0, 0))
	}
	if math.Abs(k.At(0, 1)-0.2365) > 5e-4 {
		t.Errorf("T12 = %v, want ~0.2365", k.At(0, 1))
	}

	a, b := &bs.Shells[0], &bs.Shells[1]
	eri1111 := ERIBlock(a, a, a, a)[0]
	if math.Abs(eri1111-0.7746) > 5e-4 {
		t.Errorf("(11|11) = %v, want ~0.7746", eri1111)
	}
	eri1122 := ERIBlock(a, a, b, b)[0]
	if math.Abs(eri1122-0.5697) > 5e-4 {
		t.Errorf("(11|22) = %v, want ~0.5697", eri1122)
	}
	eri2111 := ERIBlock(b, a, a, a)[0]
	if math.Abs(eri2111-0.4441) > 5e-4 {
		t.Errorf("(21|11) = %v, want ~0.4441", eri2111)
	}
	eri2121 := ERIBlock(b, a, b, a)[0]
	if math.Abs(eri2121-0.2970) > 5e-4 {
		t.Errorf("(21|21) = %v, want ~0.2970", eri2121)
	}
}

// Hydrogen fluoride, STO-3G: E_RHF ≈ -98.57 hartree at R ≈ 0.917 Å.
func TestSCFHydrogenFluoride(t *testing.T) {
	mol := &Molecule{
		Name: "HF",
		Atoms: []Atom{
			{Z: 9},
			{Z: 1, Pos: Vec3{Z: 0.917 * angstrom}},
		},
	}
	bs := mustBasis(t, "sto-3g", mol)
	res, err := RunSCF(mol, bs, SCFOptions{UseDIIS: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("not converged")
	}
	if res.Energy > -98.4 || res.Energy < -98.8 {
		t.Errorf("E(HF) = %.5f, want ≈ -98.57", res.Energy)
	}
}

// A helium atom: two electrons in one 1s function, E ≈ -2.8078 hartree
// for STO-3G.
func TestSCFHelium(t *testing.T) {
	mol := &Molecule{Name: "He", Atoms: []Atom{{Z: 2}}}
	bs := mustBasis(t, "sto-3g", mol)
	res, err := RunSCF(mol, bs, SCFOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("not converged")
	}
	if math.Abs(res.Energy-(-2.8078)) > 5e-3 {
		t.Errorf("E(He) = %.5f, want ≈ -2.8078", res.Energy)
	}
}

// Kinetic and nuclear-attraction integrals for a single H atom, STO-3G:
// <T> = 0.7600, <V> = -1.2266 (literature values for the 1s STO-3G fit).
func TestHAtomOneElectron(t *testing.T) {
	mol := &Molecule{Name: "H", Atoms: []Atom{{Z: 1}}}
	bs := mustBasis(t, "sto-3g", mol)
	k := Kinetic(bs)
	v := NuclearAttraction(bs, mol)
	if math.Abs(k.At(0, 0)-0.76003) > 1e-4 {
		t.Errorf("T = %v", k.At(0, 0))
	}
	if math.Abs(v.At(0, 0)+1.22661) > 1e-4 {
		t.Errorf("V = %v", v.At(0, 0))
	}
}

// ERI 8-fold permutational symmetry on a molecule with p functions.
func TestERIPermutationSymmetry(t *testing.T) {
	bs := mustBasis(t, "sto-3g", Water())
	// Pick shells covering s and p angular momenta.
	quads := [][4]int{{0, 1, 2, 3}, {2, 2, 3, 4}, {0, 2, 2, 4}}
	for _, q := range quads {
		a, b, c, d := &bs.Shells[q[0]], &bs.Shells[q[1]], &bs.Shells[q[2]], &bs.Shells[q[3]]
		na, nb, nc, nd := a.NumFuncs(), b.NumFuncs(), c.NumFuncs(), d.NumFuncs()
		abcd := ERIBlock(a, b, c, d)
		bacd := ERIBlock(b, a, c, d)
		cdab := ERIBlock(c, d, a, b)
		abdc := ERIBlock(a, b, d, c)
		for fa := 0; fa < na; fa++ {
			for fb := 0; fb < nb; fb++ {
				for fc := 0; fc < nc; fc++ {
					for fd := 0; fd < nd; fd++ {
						v := abcd[((fa*nb+fb)*nc+fc)*nd+fd]
						if w := bacd[((fb*na+fa)*nc+fc)*nd+fd]; math.Abs(v-w) > 1e-10 {
							t.Fatalf("(ab|cd) != (ba|cd): %v %v", v, w)
						}
						if w := cdab[((fc*nd+fd)*na+fa)*nb+fb]; math.Abs(v-w) > 1e-10 {
							t.Fatalf("(ab|cd) != (cd|ab): %v %v", v, w)
						}
						if w := abdc[((fa*nb+fb)*nd+fd)*nc+fc]; math.Abs(v-w) > 1e-10 {
							t.Fatalf("(ab|cd) != (ab|dc): %v %v", v, w)
						}
					}
				}
			}
		}
	}
}

// (ab|ab) must be non-negative (it is a self-repulsion).
func TestERIDiagonalPositive(t *testing.T) {
	bs := mustBasis(t, "6-31g", Water())
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		i, j := rng.Intn(len(bs.Shells)), rng.Intn(len(bs.Shells))
		a, b := &bs.Shells[i], &bs.Shells[j]
		blk := ERIBlock(a, b, a, b)
		na, nb := a.NumFuncs(), b.NumFuncs()
		for fa := 0; fa < na; fa++ {
			for fb := 0; fb < nb; fb++ {
				if v := blk[((fa*nb+fb)*na+fa)*nb+fb]; v < -1e-12 {
					t.Fatalf("(ab|ab) = %v < 0 for shells %d,%d", v, i, j)
				}
			}
		}
	}
}

// Cauchy–Schwarz: |(ab|cd)| <= Q_ab * Q_cd for every element.
func TestSchwarzInequality(t *testing.T) {
	bs := mustBasis(t, "sto-3g", Water())
	pairs := SchwarzBounds(bs)
	bound := make(map[[2]int]float64)
	for _, p := range pairs {
		bound[[2]int{p.I, p.J}] = p.Bound
	}
	q := func(i, j int) float64 {
		if i > j {
			i, j = j, i
		}
		return bound[[2]int{i, j}]
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		i, j := rng.Intn(len(bs.Shells)), rng.Intn(len(bs.Shells))
		k, l := rng.Intn(len(bs.Shells)), rng.Intn(len(bs.Shells))
		blk := ERIBlock(&bs.Shells[i], &bs.Shells[j], &bs.Shells[k], &bs.Shells[l])
		var mx float64
		for _, v := range blk {
			if math.Abs(v) > mx {
				mx = math.Abs(v)
			}
		}
		if lim := q(i, j)*q(k, l) + 1e-10; mx > lim {
			t.Fatalf("quartet (%d%d|%d%d): max %v exceeds Schwarz bound %v", i, j, k, l, mx, lim)
		}
	}
}

func TestSignificantPairsFilters(t *testing.T) {
	bs := mustBasis(t, "sto-3g", WaterCluster(4, 1))
	pairs := SchwarzBounds(bs)
	all := SignificantPairs(pairs, 0)
	if len(all) != len(pairs) {
		t.Fatal("threshold 0 should keep everything")
	}
	some := SignificantPairs(pairs, 1e-8)
	if len(some) >= len(pairs) {
		t.Fatalf("threshold 1e-8 kept all %d pairs of a spread-out cluster", len(pairs))
	}
	if len(some) == 0 {
		t.Fatal("threshold 1e-8 dropped everything")
	}
}

// The nuclear attraction matrix must be strictly negative on the diagonal
// (electron-nucleus attraction).
func TestNuclearAttractionNegativeDiagonal(t *testing.T) {
	mol := Water()
	bs := mustBasis(t, "sto-3g", mol)
	v := NuclearAttraction(bs, mol)
	for i := 0; i < bs.NBF; i++ {
		if v.At(i, i) >= 0 {
			t.Fatalf("V[%d][%d] = %v", i, i, v.At(i, i))
		}
	}
	if !v.IsSymmetric(1e-10) {
		t.Fatal("V not symmetric")
	}
}

// Kinetic energy matrix must be positive definite.
func TestKineticPositiveDefinite(t *testing.T) {
	bs := mustBasis(t, "6-31g", Water())
	k := Kinetic(bs)
	vals, _ := linalg.EigenSym(k)
	if vals[0] <= 0 {
		t.Fatalf("smallest kinetic eigenvalue %v", vals[0])
	}
}

// Overlap matrix must be positive definite (basis is linearly independent).
func TestOverlapPositiveDefinite(t *testing.T) {
	bs := mustBasis(t, "6-31g", Water())
	s := Overlap(bs)
	vals, _ := linalg.EigenSym(s)
	if vals[0] <= 0 {
		t.Fatalf("smallest overlap eigenvalue %v", vals[0])
	}
}

// The pair-data-cached ERI path must agree exactly with the direct path,
// including d shells.
func TestERIBlockPairMatchesDirect(t *testing.T) {
	mol := Water()
	for _, basis := range []string{"sto-3g", "6-31g*"} {
		bs := mustBasis(t, basis, mol)
		rng := rand.New(rand.NewSource(8))
		for trial := 0; trial < 15; trial++ {
			i, j := rng.Intn(len(bs.Shells)), rng.Intn(len(bs.Shells))
			k, l := rng.Intn(len(bs.Shells)), rng.Intn(len(bs.Shells))
			a, b, c, d := &bs.Shells[i], &bs.Shells[j], &bs.Shells[k], &bs.Shells[l]
			direct := ERIBlock(a, b, c, d)
			cached := ERIBlockPair(NewPairData(a, b), NewPairData(c, d))
			if len(direct) != len(cached) {
				t.Fatalf("%s: block sizes differ", basis)
			}
			for x := range direct {
				if math.Abs(direct[x]-cached[x]) > 1e-13 {
					t.Fatalf("%s quartet (%d%d|%d%d): element %d differs: %v vs %v",
						basis, i, j, k, l, x, direct[x], cached[x])
				}
			}
		}
	}
}

func TestERIBlockFlopsPositiveAndMonotone(t *testing.T) {
	bs := mustBasis(t, "sto-3g", Water())
	var sShell, pShell *Shell
	for i := range bs.Shells {
		if bs.Shells[i].L == 0 && sShell == nil {
			sShell = &bs.Shells[i]
		}
		if bs.Shells[i].L == 1 && pShell == nil {
			pShell = &bs.Shells[i]
		}
	}
	fs := ERIBlockFlops(sShell, sShell, sShell, sShell)
	fp := ERIBlockFlops(pShell, pShell, pShell, pShell)
	if fs <= 0 || fp <= fs {
		t.Fatalf("flops model: ssss=%v pppp=%v", fs, fp)
	}
}
