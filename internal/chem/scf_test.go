package chem

import (
	"math"
	"testing"

	"execmodels/internal/linalg"
)

// referenceFock contracts the dense ERI tensor directly:
// F = H + Σ_{λσ} D_{λσ} [(μν|λσ) - ½(μλ|νσ)].
func referenceFock(bs *BasisSet, eri []float64, h, d *linalg.Matrix) *linalg.Matrix {
	n := bs.NBF
	f := h.Clone()
	for mu := 0; mu < n; mu++ {
		for nu := 0; nu < n; nu++ {
			var g float64
			for lam := 0; lam < n; lam++ {
				for sig := 0; sig < n; sig++ {
					j := eri[((mu*n+nu)*n+lam)*n+sig]
					k := eri[((mu*n+lam)*n+nu)*n+sig]
					g += d.At(lam, sig) * (j - 0.5*k)
				}
			}
			f.Add(mu, nu, g)
		}
	}
	return f
}

// The optimized, screened, permutation-symmetric Fock build must agree
// with the brute-force contraction.
func TestBuildFockMatchesReference(t *testing.T) {
	for _, mol := range []*Molecule{H2(1.4), Water()} {
		bs := mustBasis(t, "sto-3g", mol)
		eri := FullERITensor(bs)
		h := CoreHamiltonian(bs, mol)

		// A plausible density: from the core guess.
		s := Overlap(bs)
		x := linalg.InvSqrtSym(s, 1e-10)
		d, _, _ := densityFromFock(h, x, mol.NumElectrons()/2)

		w := BuildFockWorkload(bs, 1e-14, 3)
		got := w.BuildFock(h, d)
		want := referenceFock(bs, eri, h, d)
		if diff := got.MaxAbsDiff(want); diff > 1e-8 {
			t.Errorf("%s: Fock mismatch %v", mol.Name, diff)
		}
	}
}

// H2/STO-3G at R = 1.4 bohr: E_RHF ≈ -1.1167 hartree (Szabo & Ostlund).
func TestSCFH2(t *testing.T) {
	mol := H2(1.4)
	bs := mustBasis(t, "sto-3g", mol)
	res, err := RunSCF(mol, bs, SCFOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("SCF did not converge in %d iterations", res.Iterations)
	}
	if math.Abs(res.Energy-(-1.1167)) > 2e-3 {
		t.Errorf("E(H2) = %.6f, want ≈ -1.1167", res.Energy)
	}
	// Occupied orbital energy ≈ -0.578 hartree.
	if math.Abs(res.OrbitalE[0]-(-0.578)) > 5e-3 {
		t.Errorf("ε1 = %.4f, want ≈ -0.578", res.OrbitalE[0])
	}
}

// H2O/STO-3G near its experimental geometry: E_RHF ≈ -74.96 hartree.
func TestSCFWater(t *testing.T) {
	mol := Water()
	bs := mustBasis(t, "sto-3g", mol)
	res, err := RunSCF(mol, bs, SCFOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("SCF did not converge in %d iterations", res.Iterations)
	}
	if res.Energy > -74.8 || res.Energy < -75.1 {
		t.Errorf("E(H2O) = %.6f, want ≈ -74.96", res.Energy)
	}
}

func TestSCFOddElectronsRejected(t *testing.T) {
	mol := &Molecule{Name: "H", Atoms: []Atom{{Z: 1}}}
	bs := mustBasis(t, "sto-3g", mol)
	if _, err := RunSCF(mol, bs, SCFOptions{}, nil); err == nil {
		t.Fatal("expected error for odd electron count")
	}
}

// Screening must not change the energy beyond its threshold scale.
func TestSCFScreeningConsistency(t *testing.T) {
	mol := WaterCluster(2, 5)
	bs := mustBasis(t, "sto-3g", mol)
	tight, err := RunSCF(mol, bs, SCFOptions{Screening: 1e-14}, nil)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := RunSCF(mol, bs, SCFOptions{Screening: 1e-7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(tight.Energy - loose.Energy); diff > 1e-4 {
		t.Errorf("screening changed energy by %v", diff)
	}
}

// The density matrix must satisfy Tr(D·S) = number of electrons.
func TestSCFDensityTrace(t *testing.T) {
	mol := Water()
	bs := mustBasis(t, "sto-3g", mol)
	res, err := RunSCF(mol, bs, SCFOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := Overlap(bs)
	ds := linalg.MatMul(res.D, s)
	if got := ds.Trace(); math.Abs(got-float64(mol.NumElectrons())) > 1e-6 {
		t.Errorf("Tr(DS) = %v, want %d", got, mol.NumElectrons())
	}
}

// Damping must not change the converged answer.
func TestSCFDampingSameFixedPoint(t *testing.T) {
	mol := H2(1.4)
	bs := mustBasis(t, "sto-3g", mol)
	plain, _ := RunSCF(mol, bs, SCFOptions{}, nil)
	damped, _ := RunSCF(mol, bs, SCFOptions{Damping: 0.3, MaxIter: 200}, nil)
	if !plain.Converged || !damped.Converged {
		t.Fatal("one of the runs did not converge")
	}
	if math.Abs(plain.Energy-damped.Energy) > 1e-7 {
		t.Errorf("damped %.9f vs plain %.9f", damped.Energy, plain.Energy)
	}
}

// A custom FockBuilder must be invoked and its result used.
func TestSCFCustomBuilder(t *testing.T) {
	mol := H2(1.4)
	bs := mustBasis(t, "sto-3g", mol)
	calls := 0
	builder := func(w *FockWorkload, h, d *linalg.Matrix) *linalg.Matrix {
		calls++
		return w.BuildFock(h, d)
	}
	res, err := RunSCF(mol, bs, SCFOptions{}, builder)
	if err != nil {
		t.Fatal(err)
	}
	if calls != res.Iterations {
		t.Errorf("builder called %d times over %d iterations", calls, res.Iterations)
	}
}

// The SAD guess must reach the same fixed point as the core guess, and
// not be slower on a cluster.
func TestSADGuess(t *testing.T) {
	mol := WaterCluster(2, 5)
	bs := mustBasis(t, "sto-3g", mol)
	core, err := RunSCF(mol, bs, SCFOptions{UseDIIS: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sad, err := RunSCF(mol, bs, SCFOptions{UseDIIS: true, Guess: "sad"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !core.Converged || !sad.Converged {
		t.Fatal("convergence failure")
	}
	if math.Abs(core.Energy-sad.Energy) > 1e-7 {
		t.Errorf("guesses reached different energies: %v vs %v", core.Energy, sad.Energy)
	}
	if sad.Iterations > core.Iterations+2 {
		t.Errorf("SAD took %d iterations vs core %d", sad.Iterations, core.Iterations)
	}
}

func TestUnknownGuessRejected(t *testing.T) {
	mol := H2(1.4)
	bs := mustBasis(t, "sto-3g", mol)
	if _, err := RunSCF(mol, bs, SCFOptions{Guess: "magic"}, nil); err == nil {
		t.Fatal("expected error")
	}
}

func TestSADGuessElectronCount(t *testing.T) {
	mol := Water()
	bs := mustBasis(t, "sto-3g", mol)
	d := sadGuess(bs, mol)
	if got := d.Trace(); math.Abs(got-10) > 1e-12 {
		t.Fatalf("Tr(D_SAD) = %v, want 10", got)
	}
}

func TestWorkloadTaskPartition(t *testing.T) {
	bs := mustBasis(t, "sto-3g", WaterCluster(2, 1))
	w := BuildFockWorkload(bs, 1e-10, 4)
	var pairCount int
	for _, task := range w.Tasks {
		pairCount += len(task.BraPairs)
	}
	if pairCount != len(w.Pairs) {
		t.Fatalf("tasks cover %d pairs, workload has %d", pairCount, len(w.Pairs))
	}
	for i, task := range w.Tasks {
		if task.ID != i {
			t.Fatalf("task %d has ID %d", i, task.ID)
		}
		if task.EstFlops <= 0 && task.NumQuarts > 0 {
			t.Fatalf("task %d has quartets but no cost", i)
		}
	}
}

// ExecuteTask must compute exactly the quartets the cost model counted.
func TestExecuteTaskQuartetCount(t *testing.T) {
	bs := mustBasis(t, "sto-3g", WaterCluster(2, 1))
	w := BuildFockWorkload(bs, 1e-10, 4)
	n := bs.NBF
	d := linalg.Identity(n)
	for i := range w.Tasks {
		j := linalg.NewMatrix(n, n)
		k := linalg.NewMatrix(n, n)
		got := w.ExecuteTask(&w.Tasks[i], d, j, k)
		if got != w.Tasks[i].NumQuarts {
			t.Fatalf("task %d executed %d quartets, estimated %d", i, got, w.Tasks[i].NumQuarts)
		}
	}
}

// Task costs of a realistic workload must be irregular: the paper's whole
// premise is a heavy-tailed task-cost distribution.
func TestWorkloadCostIrregularity(t *testing.T) {
	bs := mustBasis(t, "6-31g", WaterCluster(2, 3))
	w := BuildFockWorkload(bs, 1e-10, 2)
	if im := w.CostImbalance(); im < 1.5 {
		t.Errorf("max/mean task cost = %v; expected an irregular workload", im)
	}
	if w.TotalFlops() <= 0 {
		t.Error("TotalFlops must be positive")
	}
}

func TestBuildFockWorkloadBadBlockSize(t *testing.T) {
	bs := mustBasis(t, "sto-3g", H2(1.4))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BuildFockWorkload(bs, 1e-10, 0)
}
