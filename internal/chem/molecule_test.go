package chem

import (
	"math"
	"testing"
)

func TestH2Geometry(t *testing.T) {
	m := H2(1.4)
	if len(m.Atoms) != 2 || m.NumElectrons() != 2 {
		t.Fatalf("bad H2: %+v", m)
	}
	if r := m.Atoms[0].Pos.Sub(m.Atoms[1].Pos).Norm(); math.Abs(r-1.4) > 1e-12 {
		t.Fatalf("bond length %v", r)
	}
	if e := m.NuclearRepulsion(); math.Abs(e-1/1.4) > 1e-12 {
		t.Fatalf("nuclear repulsion %v, want %v", e, 1/1.4)
	}
}

func TestWaterGeometry(t *testing.T) {
	w := Water()
	if len(w.Atoms) != 3 {
		t.Fatalf("water has %d atoms", len(w.Atoms))
	}
	if w.NumElectrons() != 10 {
		t.Fatalf("water has %d electrons", w.NumElectrons())
	}
	oh1 := w.Atoms[0].Pos.Sub(w.Atoms[1].Pos).Norm()
	oh2 := w.Atoms[0].Pos.Sub(w.Atoms[2].Pos).Norm()
	want := 0.9578 * angstrom
	if math.Abs(oh1-want) > 1e-9 || math.Abs(oh2-want) > 1e-9 {
		t.Fatalf("O-H lengths %v %v, want %v", oh1, oh2, want)
	}
	// H-O-H angle.
	v1 := w.Atoms[1].Pos.Sub(w.Atoms[0].Pos)
	v2 := w.Atoms[2].Pos.Sub(w.Atoms[0].Pos)
	cos := (v1.X*v2.X + v1.Y*v2.Y + v1.Z*v2.Z) / (v1.Norm() * v2.Norm())
	angle := math.Acos(cos) * 180 / math.Pi
	if math.Abs(angle-104.478) > 1e-6 {
		t.Fatalf("H-O-H angle %v", angle)
	}
}

func TestWaterClusterCounts(t *testing.T) {
	for _, n := range []int{1, 2, 8, 27} {
		m := WaterCluster(n, 42)
		if len(m.Atoms) != 3*n {
			t.Fatalf("WaterCluster(%d) has %d atoms", n, len(m.Atoms))
		}
		var o, h int
		for _, a := range m.Atoms {
			switch a.Z {
			case 8:
				o++
			case 1:
				h++
			}
		}
		if o != n || h != 2*n {
			t.Fatalf("WaterCluster(%d): %d O, %d H", n, o, h)
		}
	}
}

func TestWaterClusterDeterministic(t *testing.T) {
	a := WaterCluster(4, 7)
	b := WaterCluster(4, 7)
	for i := range a.Atoms {
		if a.Atoms[i] != b.Atoms[i] {
			t.Fatal("same seed gave different geometries")
		}
	}
	c := WaterCluster(4, 8)
	same := true
	for i := range a.Atoms {
		if a.Atoms[i] != c.Atoms[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds gave identical geometries")
	}
}

func TestWaterClusterNoOverlaps(t *testing.T) {
	m := WaterCluster(8, 3)
	for i := 0; i < len(m.Atoms); i++ {
		for j := i + 1; j < len(m.Atoms); j++ {
			if d := m.Atoms[i].Pos.Sub(m.Atoms[j].Pos).Norm(); d < 0.8 {
				t.Fatalf("atoms %d,%d only %v bohr apart", i, j, d)
			}
		}
	}
}

func TestAlkaneCounts(t *testing.T) {
	for _, n := range []int{1, 2, 5} {
		m := Alkane(n)
		var c, h int
		for _, a := range m.Atoms {
			switch a.Z {
			case 6:
				c++
			case 1:
				h++
			}
		}
		if c != n || h != 2*n+2 {
			t.Fatalf("Alkane(%d): C%dH%d", n, c, h)
		}
	}
}

func TestRandomClusterMinDistance(t *testing.T) {
	m := RandomCluster(30, []int{1, 8}, 99)
	if len(m.Atoms) != 30 {
		t.Fatalf("got %d atoms", len(m.Atoms))
	}
	for i := 0; i < len(m.Atoms); i++ {
		for j := i + 1; j < len(m.Atoms); j++ {
			if d := m.Atoms[i].Pos.Sub(m.Atoms[j].Pos).Norm(); d < 1.2 {
				t.Fatalf("atoms %d,%d too close: %v", i, j, d)
			}
		}
	}
}

func TestSymbols(t *testing.T) {
	if (Atom{Z: 8}).Symbol() != "O" {
		t.Fatal("O symbol")
	}
	if (Atom{Z: 99}).Symbol() != "X99" {
		t.Fatal("unknown symbol fallback")
	}
	if AtomicNumber("C") != 6 || AtomicNumber("Zz") != 0 {
		t.Fatal("AtomicNumber")
	}
}

func TestChargedMolecules(t *testing.T) {
	oh := &Molecule{Atoms: []Atom{{Z: 8}, {Z: 1}}, Charge: -1}
	if oh.NumElectrons() != 10 {
		t.Fatalf("OH⁻ has %d electrons", oh.NumElectrons())
	}
	h3o := &Molecule{Atoms: []Atom{{Z: 8}, {Z: 1}, {Z: 1}, {Z: 1}}, Charge: 1}
	if h3o.NumElectrons() != 10 {
		t.Fatalf("H3O⁺ has %d electrons", h3o.NumElectrons())
	}
}

func TestVec3Ops(t *testing.T) {
	v := Vec3{1, 2, 2}
	if v.Norm() != 3 {
		t.Fatalf("Norm = %v", v.Norm())
	}
	if got := v.Scale(2).Sub(v); got != (Vec3{1, 2, 2}) {
		t.Fatalf("Scale/Sub = %v", got)
	}
	if got := v.Add(Vec3{-1, -2, -2}); got != (Vec3{}) {
		t.Fatalf("Add = %v", got)
	}
}
