package chem

import (
	"fmt"

	"execmodels/internal/linalg"
)

// UMP2Energy computes the unrestricted second-order Møller–Plesset
// correlation energy on a converged UHF reference:
//
//	E(2) = E_αα + E_ββ + E_αβ
//	E_σσ = ¼ Σ_{ijab∈σ} [(ia|jb) − (ib|ja)]² / (εi + εj − εa − εb)
//	E_αβ = Σ_{i,a∈α; j,b∈β} (ia|jb)² / (εi + εj − εa − εb)
//
// with MO integrals over the respective spin orbital sets. For a
// closed-shell reference this reduces exactly to the restricted MP2
// energy.
func UMP2Energy(bs *BasisSet, uhf *UHFResult) (float64, error) {
	if !uhf.Converged {
		return 0, fmt.Errorf("chem: UMP2 on an unconverged UHF reference")
	}
	n := bs.NBF
	if uhf.NAlpha > n || uhf.NBeta > n {
		return 0, fmt.Errorf("chem: occupation exceeds basis size")
	}
	ao := FullERITensor(bs)

	eAA := sameSpinMP2(ao, uhf.CA, uhf.OrbitalEA, uhf.NAlpha, n)
	eBB := sameSpinMP2(ao, uhf.CB, uhf.OrbitalEB, uhf.NBeta, n)
	eAB := oppositeSpinMP2(ao, uhf, n)
	return eAA + eBB + eAB, nil
}

// sameSpinMP2 evaluates the σσ contribution from one spin's orbitals.
func sameSpinMP2(ao []float64, c *linalg.Matrix, eps []float64, nocc, n int) float64 {
	if nocc < 2 || nocc >= n {
		return 0 // fewer than two same-spin electrons cannot pair-correlate
	}
	mo := transformERIMixed(ao, c, c, n)
	var e float64
	for i := 0; i < nocc; i++ {
		for j := 0; j < nocc; j++ {
			for a := nocc; a < n; a++ {
				for b := nocc; b < n; b++ {
					iajb := mo[((i*n+a)*n+j)*n+b]
					ibja := mo[((i*n+b)*n+j)*n+a]
					anti := iajb - ibja
					denom := eps[i] + eps[j] - eps[a] - eps[b]
					e += 0.25 * anti * anti / denom
				}
			}
		}
	}
	return e
}

// oppositeSpinMP2 evaluates the αβ contribution; the bra pair is
// transformed with the α orbitals, the ket pair with the β orbitals.
func oppositeSpinMP2(ao []float64, uhf *UHFResult, n int) float64 {
	if uhf.NAlpha < 1 || uhf.NBeta < 1 || uhf.NAlpha >= n || uhf.NBeta >= n {
		return 0
	}
	mo := transformERIMixed(ao, uhf.CA, uhf.CB, n)
	var e float64
	for i := 0; i < uhf.NAlpha; i++ {
		for a := uhf.NAlpha; a < n; a++ {
			for j := 0; j < uhf.NBeta; j++ {
				for b := uhf.NBeta; b < n; b++ {
					iajb := mo[((i*n+a)*n+j)*n+b]
					denom := uhf.OrbitalEA[i] + uhf.OrbitalEB[j] -
						uhf.OrbitalEA[a] - uhf.OrbitalEB[b]
					e += iajb * iajb / denom
				}
			}
		}
	}
	return e
}

// transformERIMixed performs the AO→MO transform with the bra pair
// rotated by cBra and the ket pair by cKet:
// (pq|rs) = Σ CBra_μp CBra_νq CKet_λr CKet_σs (μν|λσ).
func transformERIMixed(ao []float64, cBra, cKet *linalg.Matrix, n int) []float64 {
	cs := [4]*linalg.Matrix{cBra, cBra, cKet, cKet}
	cur := ao
	n3 := n * n * n
	for pass := 0; pass < 4; pass++ {
		c := cs[pass]
		next := make([]float64, n*n*n*n)
		for x := 0; x < n; x++ {
			for y := 0; y < n; y++ {
				for z := 0; z < n; z++ {
					base := (x*n+y)*n + z
					for p := 0; p < n; p++ {
						var s float64
						for w := 0; w < n; w++ {
							s += c.At(w, p) * cur[w*n3+base]
						}
						next[base*n+p] = s
					}
				}
			}
		}
		cur = next
	}
	return cur
}
