package chem

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"execmodels/internal/linalg"
)

// tightOpts are convergence thresholds well below the 1e-10 agreement the
// resume contract promises, so both trajectories reach the same fixed
// point to the asserted precision.
func tightOpts() SCFOptions {
	return SCFOptions{
		MaxIter:     100,
		ConvDensity: 1e-10,
		ConvEnergy:  1e-12,
		UseDIIS:     true,
	}
}

// TestSCFResumeMatchesUninterrupted is the checkpoint round-trip
// regression test: interrupt a run mid-SCF via OnIteration, restart a
// fresh run from the captured (iteration, energy, density) state, and
// require the resumed run to converge to the uninterrupted run's energy
// within 1e-10 hartree.
func TestSCFResumeMatchesUninterrupted(t *testing.T) {
	for _, tc := range []struct {
		name string
		mol  *Molecule
	}{
		{"water", Water()},
		{"waters2", WaterCluster(2, 7)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			bs, err := NewBasis("sto-3g", tc.mol)
			if err != nil {
				t.Fatal(err)
			}

			full, err := RunSCF(tc.mol, bs, tightOpts(), nil)
			if err != nil {
				t.Fatal(err)
			}
			if !full.Converged {
				t.Fatalf("uninterrupted run did not converge in %d iterations", full.Iterations)
			}

			// Interrupt after the 2nd iteration, exactly the way a killed
			// server would: the last OnIteration state is the checkpoint.
			const stopAfter = 2
			var ckpt SCFProgress
			interrupted := errors.New("simulated kill")
			opts := tightOpts()
			opts.OnIteration = func(p SCFProgress) error {
				ckpt = SCFProgress{Iter: p.Iter, Energy: p.Energy, D: p.D.Clone()}
				if p.Iter >= stopAfter {
					return interrupted
				}
				return nil
			}
			partial, err := RunSCF(tc.mol, bs, opts, nil)
			if !errors.Is(err, ErrSCFInterrupted) {
				t.Fatalf("interrupted run: err = %v, want ErrSCFInterrupted", err)
			}
			if !errors.Is(err, interrupted) {
				t.Fatalf("interrupted run: err = %v does not wrap the callback error", err)
			}
			if partial == nil || partial.Iterations != stopAfter {
				t.Fatalf("partial result has %d iterations, want %d", partial.Iterations, stopAfter)
			}
			if ckpt.Iter != stopAfter {
				t.Fatalf("checkpoint captured iteration %d, want %d", ckpt.Iter, stopAfter)
			}

			resumeOpts := tightOpts()
			resumeOpts.Resume = &SCFRestart{Iteration: ckpt.Iter, Energy: ckpt.Energy, D: ckpt.D}
			resumed, err := RunSCF(tc.mol, bs, resumeOpts, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !resumed.Converged {
				t.Fatalf("resumed run did not converge in %d iterations", resumed.Iterations)
			}
			if resumed.Iterations <= stopAfter {
				t.Fatalf("resumed run reports %d iterations, want > %d (numbering continues)", resumed.Iterations, stopAfter)
			}
			if diff := math.Abs(resumed.Energy - full.Energy); diff > 1e-10 {
				t.Errorf("resumed energy %.12f vs uninterrupted %.12f: |diff| = %.3g > 1e-10",
					resumed.Energy, full.Energy, diff)
			}
		})
	}
}

// TestSCFResumeValidation rejects malformed restart states up front.
func TestSCFResumeValidation(t *testing.T) {
	mol := Water()
	bs, err := NewBasis("sto-3g", mol)
	if err != nil {
		t.Fatal(err)
	}
	run := func(r *SCFRestart) error {
		opts := tightOpts()
		opts.Resume = r
		_, err := RunSCF(mol, bs, opts, nil)
		return err
	}
	if err := run(&SCFRestart{Iteration: 1, D: nil}); err == nil {
		t.Error("nil resume density accepted")
	}
	bad := linalg.NewMatrix(bs.NBF, bs.NBF)
	if err := run(&SCFRestart{Iteration: 0, D: bad}); err == nil {
		t.Error("resume iteration 0 accepted")
	}
	if err := run(&SCFRestart{Iteration: 1, D: linalg.NewMatrix(2, 2)}); err == nil {
		t.Error("mis-shaped resume density accepted")
	}
}

// OnIteration progress must report monotonically numbered iterations and
// hand out the density that the next iteration consumes.
func TestSCFOnIterationSequence(t *testing.T) {
	mol := Water()
	bs, err := NewBasis("sto-3g", mol)
	if err != nil {
		t.Fatal(err)
	}
	var iters []int
	opts := tightOpts()
	opts.OnIteration = func(p SCFProgress) error {
		iters = append(iters, p.Iter)
		if p.D == nil {
			return fmt.Errorf("nil density at iteration %d", p.Iter)
		}
		return nil
	}
	res, err := RunSCF(mol, bs, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(iters) != res.Iterations {
		t.Fatalf("callback fired %d times for %d iterations", len(iters), res.Iterations)
	}
	for i, it := range iters {
		if it != i+1 {
			t.Fatalf("iteration sequence %v not 1..n", iters)
		}
	}
}
