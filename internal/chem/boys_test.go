package chem

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBoysAtZero(t *testing.T) {
	out := make([]float64, 6)
	Boys(5, 0, out)
	for m := 0; m <= 5; m++ {
		want := 1 / float64(2*m+1)
		if math.Abs(out[m]-want) > 1e-14 {
			t.Fatalf("F_%d(0) = %v, want %v", m, out[m], want)
		}
	}
}

// F_0(x) = sqrt(pi/x)/2 * erf(sqrt(x)) exactly.
func TestBoysF0AgainstErf(t *testing.T) {
	out := make([]float64, 1)
	for _, x := range []float64{1e-8, 0.1, 0.5, 1, 2, 5, 10, 20, 34.9, 35.1, 50, 100, 500} {
		Boys(0, x, out)
		want := 0.5 * math.Sqrt(math.Pi/x) * math.Erf(math.Sqrt(x))
		if math.Abs(out[0]-want) > 1e-12*math.Max(1, want) {
			t.Errorf("F_0(%v) = %.15g, want %.15g", x, out[0], want)
		}
	}
}

// Upward recursion identity: F_{m+1} = ((2m+1) F_m - e^{-x}) / (2x).
func TestBoysRecursionIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := rng.Float64() * 60
		if x < 1e-6 {
			x = 1e-6
		}
		out := make([]float64, 9)
		Boys(8, x, out)
		ex := math.Exp(-x)
		for m := 0; m < 8; m++ {
			want := (float64(2*m+1)*out[m] - ex) / (2 * x)
			if math.Abs(out[m+1]-want) > 1e-10*math.Max(1e-8, out[m]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// F_m is positive and decreasing in m for x > 0.
func TestBoysMonotoneInOrder(t *testing.T) {
	out := make([]float64, 11)
	for _, x := range []float64{0.01, 1, 10, 40, 200} {
		Boys(10, x, out)
		for m := 0; m <= 10; m++ {
			if out[m] <= 0 {
				t.Fatalf("F_%d(%v) = %v, want > 0", m, x, out[m])
			}
			if m > 0 && out[m] >= out[m-1] {
				t.Fatalf("F_%d(%v)=%v >= F_%d=%v", m, x, out[m], m-1, out[m-1])
			}
		}
	}
}

// Both branches must agree with the closed form near the series/asymptotic
// switch at x = 35 (F itself has slope ~-2e-3 there, so comparing the two
// branch outputs at different x directly would mostly measure that slope).
func TestBoysContinuityAtSwitch(t *testing.T) {
	out := make([]float64, 1)
	for _, x := range []float64{34.999999, 35.000001} {
		Boys(0, x, out)
		want := 0.5 * math.Sqrt(math.Pi/x) * math.Erf(math.Sqrt(x))
		if math.Abs(out[0]-want) > 1e-12*want {
			t.Fatalf("F_0(%v) = %.15g, want %.15g", x, out[0], want)
		}
	}
}

// Known literature value: F_0(1) ≈ 0.7468241328 (= sqrt(pi)/2 erf(1)).
func TestBoysKnownValue(t *testing.T) {
	out := make([]float64, 1)
	Boys(0, 1, out)
	if math.Abs(out[0]-0.7468241328124270) > 1e-12 {
		t.Fatalf("F_0(1) = %.15g", out[0])
	}
}

func TestBoysShortSlicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Boys(3, 1, make([]float64, 3))
}
