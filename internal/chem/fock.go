package chem

import (
	"hash/fnv"
	"math"
	"sort"

	"execmodels/internal/linalg"
)

// eriGetter returns the integral (ab|cd) for function offsets within a
// permuted view of a shell-quartet block.
type eriGetter func(fa, fb, fc, fd int) float64

// digestJK scatters one ordered shell-quartet block into the Coulomb (J)
// and exchange (K) accumulators:
//
//	J[μν] += DJ[λσ]·(μν|λσ)      K_i[μλ] += DK_i[νσ]·(μν|λσ)
//
// with μ∈a, ν∈b, λ∈c, σ∈d. The Coulomb and exchange terms may contract
// different densities (RHF uses the same one; UHF contracts the total
// density for J and the per-spin densities for the two Ks). Callers are
// responsible for enumerating every distinct shell-index permutation of a
// unique quartet exactly once, which together reproduces the full
// unrestricted contraction.
func digestJK(j *linalg.Matrix, dj *linalg.Matrix, ks, dks []*linalg.Matrix, a, b, c, dd *Shell, get eriGetter) {
	na, nb, nc, nd := a.NumFuncs(), b.NumFuncs(), c.NumFuncs(), dd.NumFuncs()
	kAcc := make([]float64, len(ks))
	for fa := 0; fa < na; fa++ {
		mu := a.Start + fa
		for fb := 0; fb < nb; fb++ {
			nu := b.Start + fb
			var jAcc float64
			for fc := 0; fc < nc; fc++ {
				lam := c.Start + fc
				for i := range kAcc {
					kAcc[i] = 0
				}
				for fd := 0; fd < nd; fd++ {
					sig := dd.Start + fd
					v := get(fa, fb, fc, fd)
					jAcc += dj.At(lam, sig) * v
					for i, dk := range dks {
						kAcc[i] += dk.At(nu, sig) * v
					}
				}
				for i, k := range ks {
					k.Add(mu, lam, kAcc[i])
				}
			}
			j.Add(mu, nu, jAcc)
		}
	}
}

// quartetPermutations enumerates the distinct shell-index permutations of
// the unique quartet (a,b,c,d) under the 8-fold integral symmetry
// (ab|cd) = (ba|cd) = (ab|dc) = (ba|dc) = (cd|ab) = (dc|ab) = (cd|ba) = (dc|ba).
// Each permutation is returned as the four original-block roles for the
// (bra1, bra2, ket1, ket2) positions: e.g. [1 0 2 3] means the permuted
// view is (ba|cd) and its (fa,fb,fc,fd) element reads the original block
// at (fb,fa,fc,fd).
func quartetPermutations(a, b, c, d int) [][4]int {
	all := [][4]int{
		{0, 1, 2, 3}, {1, 0, 2, 3}, {0, 1, 3, 2}, {1, 0, 3, 2},
		{2, 3, 0, 1}, {3, 2, 0, 1}, {2, 3, 1, 0}, {3, 2, 1, 0},
	}
	ids := [4]int{a, b, c, d}
	seen := make(map[[4]int]bool, 8)
	var out [][4]int
	for _, p := range all {
		key := [4]int{ids[p[0]], ids[p[1]], ids[p[2]], ids[p[3]]}
		if !seen[key] {
			seen[key] = true
			out = append(out, p)
		}
	}
	return out
}

// digestUniqueQuartet digests the precomputed ERI block of the unique
// quartet, scattering every distinct permutation into J and the K
// accumulators. shells is the full shell list; ia..id index into it; blk
// is laid out as ERIBlock(ia, ib, ic, id).
//
// This closure-based form allocates per call; it survives as the
// ExecuteTaskBaseline path, while the hot path uses
// digestUniqueQuartetStrides.
func digestUniqueQuartet(j, dj *linalg.Matrix, ks, dks []*linalg.Matrix, shells []Shell, ia, ib, ic, id int, blk []float64) {
	sh := [4]*Shell{&shells[ia], &shells[ib], &shells[ic], &shells[id]}
	nb, nc, nd := sh[1].NumFuncs(), sh[2].NumFuncs(), sh[3].NumFuncs()
	orig := func(fa, fb, fc, fd int) float64 {
		return blk[((fa*nb+fb)*nc+fc)*nd+fd]
	}
	for _, p := range quartetPermutations(ia, ib, ic, id) {
		p := p
		get := func(fa, fb, fc, fd int) float64 {
			f := [4]int{fa, fb, fc, fd}
			// Position i of the permuted view holds original role p[i]; to
			// read the original block we place each permuted index back
			// into its original role.
			var g [4]int
			g[p[0]], g[p[1]], g[p[2]], g[p[3]] = f[0], f[1], f[2], f[3]
			return orig(g[0], g[1], g[2], g[3])
		}
		digestJK(j, dj, ks, dks, sh[p[0]], sh[p[1]], sh[p[2]], sh[p[3]], get)
	}
}

// quartetPerms8 is the 8-fold symmetry group in the fixed enumeration
// order the digest relies on.
var quartetPerms8 = [8][4]int{
	{0, 1, 2, 3}, {1, 0, 2, 3}, {0, 1, 3, 2}, {1, 0, 3, 2},
	{2, 3, 0, 1}, {3, 2, 0, 1}, {2, 3, 1, 0}, {3, 2, 1, 0},
}

// quartetPermutationsInto is quartetPermutations without the map and
// slice allocations: distinct permutations are written to out (in the
// same first-occurrence order) and their count returned.
func quartetPermutationsInto(a, b, c, d int, out *[8][4]int) int {
	ids := [4]int{a, b, c, d}
	var keys [8][4]int
	n := 0
	for _, p := range quartetPerms8 {
		key := [4]int{ids[p[0]], ids[p[1]], ids[p[2]], ids[p[3]]}
		dup := false
		for i := 0; i < n; i++ {
			if keys[i] == key {
				dup = true
				break
			}
		}
		if !dup {
			keys[n] = key
			out[n] = p
			n++
		}
	}
	return n
}

// digestJKStrides is digestJK with the permuted block view expressed as
// index strides instead of a closure: element (fa,fb,fc,fd) of the view
// lives at blk[fa*sa+fb*sb+fc*sc+fd*sd]. The loop structure (and hence
// the floating-point accumulation order) is identical to digestJK; only
// the per-element closure dispatch and the kAcc allocation are gone.
//
//hotpath:allocfree
func digestJKStrides(j *linalg.Matrix, dj *linalg.Matrix, ks, dks []*linalg.Matrix, kAcc []float64, a, b, c, dd *Shell, blk []float64, sa, sb, sc, sd int) {
	na, nb, nc, nd := a.NumFuncs(), b.NumFuncs(), c.NumFuncs(), dd.NumFuncs()
	for fa := 0; fa < na; fa++ {
		mu := a.Start + fa
		baseA := fa * sa
		for fb := 0; fb < nb; fb++ {
			nu := b.Start + fb
			baseAB := baseA + fb*sb
			var jAcc float64
			for fc := 0; fc < nc; fc++ {
				lam := c.Start + fc
				for i := range kAcc {
					kAcc[i] = 0
				}
				baseABC := baseAB + fc*sc
				for fd := 0; fd < nd; fd++ {
					sig := dd.Start + fd
					v := blk[baseABC+fd*sd]
					jAcc += dj.At(lam, sig) * v
					for i, dk := range dks {
						kAcc[i] += dk.At(nu, sig) * v
					}
				}
				for i, k := range ks {
					k.Add(mu, lam, kAcc[i])
				}
			}
			j.Add(mu, nu, jAcc)
		}
	}
}

// digestUniqueQuartetStrides is the allocation-free digestUniqueQuartet:
// permutations are enumerated into a stack array and each permuted view
// is digested through precomputed strides. kAcc is caller-provided
// scratch of length len(ks).
//
//hotpath:allocfree
func digestUniqueQuartetStrides(j, dj *linalg.Matrix, ks, dks []*linalg.Matrix, kAcc []float64, shells []Shell, ia, ib, ic, id int, blk []float64) {
	sh := [4]*Shell{&shells[ia], &shells[ib], &shells[ic], &shells[id]}
	nb, nc, nd := sh[1].NumFuncs(), sh[2].NumFuncs(), sh[3].NumFuncs()
	strides := [4]int{nb * nc * nd, nc * nd, nd, 1}
	var perms [8][4]int
	np := quartetPermutationsInto(ia, ib, ic, id, &perms)
	for pi := 0; pi < np; pi++ {
		p := perms[pi]
		digestJKStrides(j, dj, ks, dks, kAcc, sh[p[0]], sh[p[1]], sh[p[2]], sh[p[3]], blk,
			strides[p[0]], strides[p[1]], strides[p[2]], strides[p[3]])
	}
}

// pairIndex maps a shell pair i <= j to its canonical triangular index.
func pairIndex(i, j int) int { return j*(j+1)/2 + i }

// FockTask is one work unit of the two-electron Fock build: a contiguous
// block of unique bra shell-pairs. Executing the task computes, for every
// bra pair in the block, all surviving unique quartets with ket pair index
// <= bra pair index, and digests them into partial J/K matrices.
//
// Schwarz screening is resolved when the task is generated, not when it
// is executed: Kets holds the exact surviving ket-pair index list per bra
// pair, so workers never evaluate a bound and the task multiset handed to
// a scheduler is already pruned.
type FockTask struct {
	ID         int
	BraPairs   []ShellPair // the bra pairs owned by this task
	PairOffset int         // index of BraPairs[0] within the workload's Pairs
	EstFlops   float64     // cost-model estimate (ERIBlockFlops sum, post-screening)
	NumQuarts  int         // surviving quartets (post-screening)

	// Kets[i] lists, in ascending order, the workload pair indices of the
	// surviving ket pairs for BraPairs[i] (those with index <= the bra's
	// global position whose bound product clears the threshold). All rows
	// share one backing array sized NumQuarts.
	Kets [][]int32
}

// Key returns a stable content hash identifying the task across Fock
// builds: equal key ⇒ same bra pairs, same screened quartet count, same
// cost estimate. Feedback schedulers store measured-cost history under
// these keys, so a re-blocked or re-screened decomposition (different
// content) starts cold instead of inheriting stale measurements.
func (t *FockTask) Key() uint64 {
	h := fnv.New64a()
	var b [8]byte
	put := func(v uint64) {
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	put(uint64(t.PairOffset))
	put(uint64(t.NumQuarts))
	put(math.Float64bits(t.EstFlops))
	for i := range t.BraPairs {
		put(uint64(t.BraPairs[i].I)<<32 | uint64(uint32(t.BraPairs[i].J)))
	}
	return h.Sum64()
}

// FockWorkload is the screened, blocked decomposition of one Fock build.
type FockWorkload struct {
	Basis     *BasisSet
	Pairs     []ShellPair // significant pairs, sorted by ascending pair index
	Tasks     []FockTask
	Threshold float64

	// pairData caches the per-pair Hermite tables aligned with Pairs:
	// computed once, reused by every quartet the pair participates in.
	pairData []*PairData
}

// BuildFockWorkload screens the shell pairs of bs at threshold and groups
// the surviving bra pairs into tasks of blockSize consecutive pairs. Task
// costs are estimated with the deterministic flop model, so schedulers can
// be studied both with and without cost knowledge.
func BuildFockWorkload(bs *BasisSet, threshold float64, blockSize int) *FockWorkload {
	return BuildFockWorkloadFromPairs(bs, SchwarzBounds(bs), threshold, blockSize)
}

// BuildFockWorkloadFromPairs is BuildFockWorkload with precomputed Schwarz
// bounds, so granularity sweeps can re-block the same screening data
// without recomputing the (ij|ij) integrals each time.
func BuildFockWorkloadFromPairs(bs *BasisSet, allPairs []ShellPair, threshold float64, blockSize int) *FockWorkload {
	if blockSize < 1 {
		panic("chem: blockSize must be >= 1")
	}
	pairs := SignificantPairs(allPairs, threshold)
	// Sort by canonical triangular pair index so slice position and
	// pairIndex induce the same total order; the bra >= ket uniqueness
	// criterion below then agrees exactly between cost estimation and
	// execution.
	sort.Slice(pairs, func(a, b int) bool {
		return pairIndex(pairs[a].I, pairs[a].J) < pairIndex(pairs[b].I, pairs[b].J)
	})
	w := &FockWorkload{Basis: bs, Pairs: pairs, Threshold: threshold}
	w.pairData = make([]*PairData, len(pairs))
	for i, p := range pairs {
		w.pairData[i] = NewPairData(&bs.Shells[p.I], &bs.Shells[p.J])
	}
	w.blockTasks(blockSize)
	return w
}

// blockTasks (re)builds the task decomposition at the given bra-pair
// block size, resolving Schwarz screening into each task's explicit
// Kets lists: the executor's quartet multiset is fixed here, at
// generation time, and workers never test a bound.
func (w *FockWorkload) blockTasks(blockSize int) {
	bs, pairs := w.Basis, w.Pairs
	w.Tasks = nil
	for start := 0; start < len(pairs); start += blockSize {
		end := start + blockSize
		if end > len(pairs) {
			end = len(pairs)
		}
		t := FockTask{ID: len(w.Tasks), BraPairs: pairs[start:end], PairOffset: start}
		t.Kets = make([][]int32, end-start)
		// First pass sizes the shared backing array so the per-bra rows
		// are sub-slices of one allocation.
		for bi := start; bi < end; bi++ {
			for ki := 0; ki <= bi; ki++ {
				if quartetSurvives(&pairs[bi], &pairs[ki], w.Threshold) {
					t.NumQuarts++
				}
			}
		}
		kets := make([]int32, 0, t.NumQuarts)
		for bi := start; bi < end; bi++ {
			bra := pairs[bi]
			row := len(kets)
			for ki := 0; ki <= bi; ki++ {
				ket := pairs[ki]
				if !quartetSurvives(&bra, &ket, w.Threshold) {
					continue
				}
				kets = append(kets, int32(ki))
				t.EstFlops += ERIBlockFlops(
					&bs.Shells[bra.I], &bs.Shells[bra.J],
					&bs.Shells[ket.I], &bs.Shells[ket.J])
			}
			t.Kets[bi-start] = kets[row:len(kets):len(kets)]
		}
		w.Tasks = append(w.Tasks, t)
	}
}

// Reblock returns a workload over the same screened pairs, Schwarz data
// and per-pair Hermite tables, re-decomposed into tasks of blockSize bra
// pairs. Because the expensive screening and pair setup are shared,
// granularity sweeps (WallOptions.PairBlock, the W2 experiment) cost
// only the task bookkeeping. The returned workload digests exactly the
// same quartets in the same global bra-major order, so a serial sweep
// over its tasks is bit-identical to one over the original's.
func (w *FockWorkload) Reblock(blockSize int) *FockWorkload {
	if blockSize < 1 {
		panic("chem: blockSize must be >= 1")
	}
	nw := &FockWorkload{Basis: w.Basis, Pairs: w.Pairs, Threshold: w.Threshold, pairData: w.pairData}
	nw.blockTasks(blockSize)
	return nw
}

// WorkloadStats summarizes how much work symmetry folding and Schwarz
// screening removed before any task reached a scheduler.
type WorkloadStats struct {
	Shells           int   // basis shells N
	AllPairs         int   // N(N+1)/2 candidate shell pairs
	SignificantPairs int   // pairs surviving SignificantPairs
	NaiveQuartets    int64 // N^4 ordered quartets of the symmetry-free loop
	UniqueQuartets   int64 // canonical quartets before screening: M(M+1)/2, M = AllPairs
	Surviving        int64 // unique quartets surviving Schwarz screening (sum of task NumQuarts)
}

// Stats returns the workload's symmetry/screening accounting.
func (w *FockWorkload) Stats() WorkloadStats {
	n := int64(len(w.Basis.Shells))
	m := n * (n + 1) / 2
	st := WorkloadStats{
		Shells:           int(n),
		AllPairs:         int(m),
		SignificantPairs: len(w.Pairs),
		NaiveQuartets:    n * n * n * n,
		UniqueQuartets:   m * (m + 1) / 2,
	}
	for i := range w.Tasks {
		st.Surviving += int64(w.Tasks[i].NumQuarts)
	}
	return st
}

// ExecuteTask runs one Fock task against density d, accumulating into the
// caller's partial J and K matrices. It returns the number of quartets
// actually computed — always exactly the task's NumQuarts, since the
// quartet multiset was resolved at generation time into the Kets lists
// (each unique quartet appears on exactly one task).
//
// Each call sets up a fresh scratch arena; loops over many tasks should
// use ExecuteTaskScratch with a single arena per worker instead.
func (w *FockWorkload) ExecuteTask(t *FockTask, d, j, k *linalg.Matrix) int {
	return w.ExecuteTaskScratch(t, d, j, k, w.NewScratch())
}

// ExecuteTaskScratch is ExecuteTask with a caller-owned scratch arena.
// With a warmed-up arena the steady state performs zero heap allocations
// per task (enforced by a testing.AllocsPerRun gate and proved by the
// allocfree check).
//
//hotpath:allocfree
func (w *FockWorkload) ExecuteTaskScratch(t *FockTask, d, j, k *linalg.Matrix, s *ERIScratch) int {
	s.ks[0], s.dks[0] = k, d
	return w.executeTask(t, d, s.ks[:1], s.dks[:1], j, s)
}

// ExecuteTaskSpin is the unrestricted (UHF) variant: J contracts the
// total density while separate exchange matrices contract the α and β
// densities.
func (w *FockWorkload) ExecuteTaskSpin(t *FockTask, dTot, dA, dB, j, kA, kB *linalg.Matrix) int {
	return w.ExecuteTaskSpinScratch(t, dTot, dA, dB, j, kA, kB, w.NewScratch())
}

// ExecuteTaskSpinScratch is ExecuteTaskSpin with a caller-owned scratch
// arena.
//
//hotpath:allocfree
func (w *FockWorkload) ExecuteTaskSpinScratch(t *FockTask, dTot, dA, dB, j, kA, kB *linalg.Matrix, s *ERIScratch) int {
	s.ks[0], s.ks[1] = kA, kB
	s.dks[0], s.dks[1] = dA, dB
	return w.executeTask(t, dTot, s.ks[:2], s.dks[:2], j, s)
}

// executeTask digests every quartet on the task's pre-screened Kets
// lists. No Schwarz bound is evaluated here — the surviving quartet
// multiset was fixed at task-generation time (blockTasks), so the worker
// loop is pure compute: ERI block, symmetric digest, next.
//
//hotpath:allocfree
func (w *FockWorkload) executeTask(t *FockTask, dj *linalg.Matrix, ks, dks []*linalg.Matrix, j *linalg.Matrix, s *ERIScratch) int {
	shells := w.Basis.Shells
	if cap(s.kAcc) < len(ks) {
		s.kAcc = make([]float64, len(ks)) //lint:ignore allocfree cold start: kAcc is sized once per arena for the K-matrix count and reused by every task
	}
	kAcc := s.kAcc[:len(ks)]
	var done int
	for bi, bra := range t.BraPairs {
		braPD := w.pairData[t.PairOffset+bi]
		for _, ki := range t.Kets[bi] {
			ket := &w.Pairs[ki]
			blk := ERIBlockPairInto(braPD, w.pairData[ki], s)
			digestUniqueQuartetStrides(j, dj, ks, dks, kAcc, shells, bra.I, bra.J, ket.I, ket.J, blk)
			done++
		}
	}
	return done
}

// ExecuteTaskBaseline is the pre-arena reference implementation of
// ExecuteTask, retained verbatim as the "before" point of the repo's
// perf trajectory (BENCH_wall.json) and as the allocation-behavior foil
// in tests: it allocates the ERI block, the Hermite R workspace and the
// digest closures per quartet. Its results must match ExecuteTask
// exactly up to floating-point accumulation order.
func (w *FockWorkload) ExecuteTaskBaseline(t *FockTask, d, j, k *linalg.Matrix) int {
	shells := w.Basis.Shells
	ks, dks := []*linalg.Matrix{k}, []*linalg.Matrix{d}
	var done int
	for bi, bra := range t.BraPairs {
		braPD := w.pairData[t.PairOffset+bi]
		for ki, ket := range w.Pairs {
			if t.PairOffset+bi < ki {
				break
			}
			if bra.Bound*ket.Bound < w.Threshold {
				continue
			}
			blk := eriBlockPairBaseline(braPD, w.pairData[ki])
			digestUniqueQuartet(j, d, ks, dks, shells, bra.I, bra.J, ket.I, ket.J, blk)
			done++
		}
	}
	return done
}

// TotalFlops returns the summed cost estimate across all tasks.
func (w *FockWorkload) TotalFlops() float64 {
	var s float64
	for _, t := range w.Tasks {
		s += t.EstFlops
	}
	return s
}

// BuildFock computes F = H + J - K/2 serially from density d, using the
// workload's screened quartet list. It is the reference implementation the
// parallel execution models are validated against.
func (w *FockWorkload) BuildFock(h, d *linalg.Matrix) *linalg.Matrix {
	n := w.Basis.NBF
	j := linalg.NewMatrix(n, n)
	k := linalg.NewMatrix(n, n)
	s := w.NewScratch()
	for i := range w.Tasks {
		w.ExecuteTaskScratch(&w.Tasks[i], d, j, k, s)
	}
	f := h.Clone()
	f.AddScaled(1, j)
	f.AddScaled(-0.5, k)
	// Screening drops tiny asymmetric contributions; restore exact symmetry.
	f.Symmetrize()
	return f
}

// CostImbalance returns max/mean of the task cost estimates, a quick
// measure of how irregular the workload is before any scheduling.
func (w *FockWorkload) CostImbalance() float64 {
	if len(w.Tasks) == 0 {
		return 0
	}
	var sum, max float64
	for _, t := range w.Tasks {
		sum += t.EstFlops
		max = math.Max(max, t.EstFlops)
	}
	mean := sum / float64(len(w.Tasks))
	if mean == 0 {
		return 0
	}
	return max / mean
}
