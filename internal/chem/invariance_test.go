package chem

import (
	"math"
	"math/rand"
	"testing"
)

// transformMolecule applies a rigid rotation (ZYZ Euler angles) plus a
// translation to a copy of the molecule.
func transformMolecule(mol *Molecule, a, b, c float64, t Vec3) *Molecule {
	ca, sa := math.Cos(a), math.Sin(a)
	cb, sb := math.Cos(b), math.Sin(b)
	cc, sc := math.Cos(c), math.Sin(c)
	r := [3][3]float64{
		{ca*cb*cc - sa*sc, -ca*cb*sc - sa*cc, ca * sb},
		{sa*cb*cc + ca*sc, -sa*cb*sc + ca*cc, sa * sb},
		{-sb * cc, sb * sc, cb},
	}
	out := &Molecule{Name: mol.Name + "-moved", Charge: mol.Charge}
	for _, at := range mol.Atoms {
		p := at.Pos
		out.Atoms = append(out.Atoms, Atom{Z: at.Z, Pos: Vec3{
			X: r[0][0]*p.X + r[0][1]*p.Y + r[0][2]*p.Z + t.X,
			Y: r[1][0]*p.X + r[1][1]*p.Y + r[1][2]*p.Z + t.Y,
			Z: r[2][0]*p.X + r[2][1]*p.Y + r[2][2]*p.Z + t.Z,
		}})
	}
	return out
}

// The total RHF energy is invariant under rigid rotations and
// translations of the molecule — a stringent end-to-end test of every
// integral class at once (any error in the Hermite recurrences,
// R-tensors, or normalization shows up here).
func TestSCFEnergyRigidMotionInvariant(t *testing.T) {
	mol := Water()
	bs := mustBasis(t, "sto-3g", mol)
	ref, err := RunSCF(mol, bs, SCFOptions{UseDIIS: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 3; trial++ {
		moved := transformMolecule(mol,
			rng.Float64()*2*math.Pi, rng.Float64()*math.Pi, rng.Float64()*2*math.Pi,
			Vec3{rng.NormFloat64() * 3, rng.NormFloat64() * 3, rng.NormFloat64() * 3})
		mbs := mustBasis(t, "sto-3g", moved)
		res, err := RunSCF(moved, mbs, SCFOptions{UseDIIS: true}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("trial %d: not converged", trial)
		}
		if diff := math.Abs(res.Energy - ref.Energy); diff > 1e-8 {
			t.Errorf("trial %d: energy changed by %v under rigid motion", trial, diff)
		}
	}
}

// The same invariance must hold with d functions in play (6-31G*), which
// exercises the higher-angular-momentum Hermite recursion branches.
func TestSCFEnergyRotationInvariantWithDShells(t *testing.T) {
	mol := Water()
	bs := mustBasis(t, "6-31g*", mol)
	ref, err := RunSCF(mol, bs, SCFOptions{UseDIIS: true, MaxIter: 80}, nil)
	if err != nil {
		t.Fatal(err)
	}
	moved := transformMolecule(mol, 0.7, 1.1, 2.3, Vec3{1.5, -2.0, 0.5})
	mbs := mustBasis(t, "6-31g*", moved)
	res, err := RunSCF(moved, mbs, SCFOptions{UseDIIS: true, MaxIter: 80}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Converged || !res.Converged {
		t.Fatal("convergence failure")
	}
	if diff := math.Abs(res.Energy - ref.Energy); diff > 1e-7 {
		t.Errorf("d-shell energy changed by %v under rigid motion", diff)
	}
}

// The dipole magnitude (not its components) is rotation-invariant, and
// translation-invariant for a neutral molecule.
func TestDipoleMagnitudeInvariant(t *testing.T) {
	mol := Water()
	bs := mustBasis(t, "sto-3g", mol)
	ref, err := RunSCF(mol, bs, SCFOptions{UseDIIS: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	mu0 := DipoleMoment(mol, bs, ref.D).Norm()

	moved := transformMolecule(mol, 1.0, 0.5, 2.0, Vec3{4, -3, 2})
	mbs := mustBasis(t, "sto-3g", moved)
	res, err := RunSCF(moved, mbs, SCFOptions{UseDIIS: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	mu1 := DipoleMoment(moved, mbs, res.D).Norm()
	if math.Abs(mu0-mu1) > 1e-6 {
		t.Errorf("dipole magnitude changed: %v vs %v", mu0, mu1)
	}
}

// MP2 correlation energy is likewise invariant.
func TestMP2RigidMotionInvariant(t *testing.T) {
	mol := H2(1.4)
	bs := mustBasis(t, "sto-3g", mol)
	ref, err := RunSCF(mol, bs, SCFOptions{UseDIIS: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	e2ref, err := MP2Energy(bs, ref)
	if err != nil {
		t.Fatal(err)
	}
	moved := transformMolecule(mol, 0.3, 0.9, 1.7, Vec3{-2, 1, 3})
	mbs := mustBasis(t, "sto-3g", moved)
	res, err := RunSCF(moved, mbs, SCFOptions{UseDIIS: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := MP2Energy(mbs, res)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e2-e2ref) > 1e-9 {
		t.Errorf("MP2 changed by %v under rigid motion", e2-e2ref)
	}
}
