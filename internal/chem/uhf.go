package chem

import (
	"fmt"
	"math"

	"execmodels/internal/linalg"
)

// UHFOptions configures the unrestricted Hartree–Fock driver.
type UHFOptions struct {
	Multiplicity int     // 2S+1; 0 = lowest consistent with electron parity
	MaxIter      int     // default 100
	ConvDensity  float64 // default 1e-8
	ConvEnergy   float64 // default 1e-9
	Screening    float64 // default 1e-10
	BlockSize    int     // default 4
	Damping      float64 // density damping in [0,1); default 0.3 (UHF is twitchy)
	NoDamping    bool    // force damping off
	UseDIIS      bool    // Pulay DIIS on the combined (Fα, Fβ) error vector
	DIISVectors  int     // subspace size (default 6)

	// Builder, if non-nil, computes each iteration's J/Kα/Kβ matrices in
	// place of the serial task loop — the hook the wall-clock parallel
	// executors plug into (core.ParallelUHFFockBuilder), mirroring
	// RunSCF's FockBuilder parameter.
	Builder UHFFockBuilder
}

// UHFFockBuilder computes the Coulomb matrix (contracted against the
// total density) and the per-spin exchange matrices (against dA and dB)
// for one unrestricted Fock build. Implementations must be equivalent to
// the serial ExecuteTaskSpin sweep up to floating-point accumulation
// order.
type UHFFockBuilder func(w *FockWorkload, dTot, dA, dB *linalg.Matrix) (j, kA, kB *linalg.Matrix)

func (o *UHFOptions) setDefaults(nElectrons int) error {
	if o.Multiplicity == 0 {
		o.Multiplicity = 1 + nElectrons%2
	}
	if (nElectrons-o.Multiplicity+1)%2 != 0 || o.Multiplicity < 1 {
		return fmt.Errorf("chem: multiplicity %d impossible with %d electrons", o.Multiplicity, nElectrons)
	}
	if o.MaxIter == 0 {
		o.MaxIter = 100
	}
	if o.ConvDensity == 0 {
		o.ConvDensity = 1e-8
	}
	if o.ConvEnergy == 0 {
		o.ConvEnergy = 1e-9
	}
	if o.Screening == 0 {
		o.Screening = 1e-10
	}
	if o.BlockSize == 0 {
		o.BlockSize = 4
	}
	if o.Damping == 0 && !o.NoDamping && !o.UseDIIS {
		// Plain UHF iteration oscillates easily; default to damping
		// unless DIIS is handling convergence.
		o.Damping = 0.3
	}
	if o.NoDamping {
		o.Damping = 0
	}
	return nil
}

// UHFResult holds the final state of a UHF run.
type UHFResult struct {
	Energy     float64
	Electronic float64
	Nuclear    float64
	Iterations int
	Converged  bool
	NAlpha     int
	NBeta      int
	OrbitalEA  []float64
	OrbitalEB  []float64
	CA, CB     *linalg.Matrix
	DA, DB     *linalg.Matrix
	S2         float64 // ⟨S²⟩ expectation, spin-contamination diagnostic
	Workload   *FockWorkload
}

// RunUHF performs an unrestricted Hartree–Fock calculation: separate α
// and β orbital sets, Fock matrices F^σ = H + J[Dα+Dβ] − K[Dσ].
func RunUHF(mol *Molecule, bs *BasisSet, opts UHFOptions) (*UHFResult, error) {
	ne := mol.NumElectrons()
	if err := opts.setDefaults(ne); err != nil {
		return nil, err
	}
	nUnpaired := opts.Multiplicity - 1
	nAlpha := (ne + nUnpaired) / 2
	nBeta := ne - nAlpha
	if nBeta < 0 || nAlpha > bs.NBF {
		return nil, fmt.Errorf("chem: cannot place %dα/%dβ electrons in %d functions", nAlpha, nBeta, bs.NBF)
	}

	s := Overlap(bs)
	h := CoreHamiltonian(bs, mol)
	x := linalg.InvSqrtSym(s, 1e-10)
	w := BuildFockWorkload(bs, opts.Screening, opts.BlockSize)
	enuc := mol.NuclearRepulsion()
	n := bs.NBF

	// Core guess for both spins; a slight α/β symmetry-breaking
	// perturbation lets open-shell solutions separate.
	dA, _, _ := uhfDensity(h, x, nAlpha)
	hB := h.Clone()
	if nAlpha != nBeta {
		hB.Add(0, 0, 1e-3)
	}
	dB, _, _ := uhfDensity(hB, x, nBeta)

	res := &UHFResult{Nuclear: enuc, NAlpha: nAlpha, NBeta: nBeta, Workload: w}
	var diisA, diisB *diisState
	if opts.UseDIIS {
		diisA = newDIIS(opts.DIISVectors)
		diisB = newDIIS(opts.DIISVectors)
	}
	var ePrev float64
	scratch := w.NewScratch()
	for iter := 1; iter <= opts.MaxIter; iter++ {
		dTot := dA.Clone()
		dTot.AddScaled(1, dB)

		var j, kA, kB *linalg.Matrix
		if opts.Builder != nil {
			j, kA, kB = opts.Builder(w, dTot, dA, dB)
		} else {
			j = linalg.NewMatrix(n, n)
			kA = linalg.NewMatrix(n, n)
			kB = linalg.NewMatrix(n, n)
			for i := range w.Tasks {
				w.ExecuteTaskSpinScratch(&w.Tasks[i], dTot, dA, dB, j, kA, kB, scratch)
			}
		}
		fA := h.Clone()
		fA.AddScaled(1, j)
		fA.AddScaled(-1, kA)
		fA.Symmetrize()
		fB := h.Clone()
		fB.AddScaled(1, j)
		fB.AddScaled(-1, kB)
		fB.Symmetrize()

		// E_elec = ½ Σ [Dtot·H + Dα·Fα + Dβ·Fβ]
		var eElec float64
		for i := range h.Data {
			eElec += dTot.Data[i]*h.Data[i] + dA.Data[i]*fA.Data[i] + dB.Data[i]*fB.Data[i]
		}
		eElec *= 0.5

		fDiagA, fDiagB := fA, fB
		if diisA != nil {
			// UHF-DIIS extrapolates each spin's Fock matrix with its own
			// subspace; each uses that spin's orbital-gradient residual.
			diisA.push(fA, diisError(fA, dA, s, x))
			diisB.push(fB, diisError(fB, dB, s, x))
			if fx := diisA.extrapolate(); fx != nil {
				fDiagA = fx
			}
			if fx := diisB.extrapolate(); fx != nil {
				fDiagB = fx
			}
		}

		newDA, cA, orbA := uhfDensity(fDiagA, x, nAlpha)
		newDB, cB, orbB := uhfDensity(fDiagB, x, nBeta)
		if opts.Damping > 0 && iter > 1 {
			newDA.Scale(1-opts.Damping).AddScaled(opts.Damping, dA)
			newDB.Scale(1-opts.Damping).AddScaled(opts.Damping, dB)
		}
		rms := math.Max(rmsDiff(newDA, dA), rmsDiff(newDB, dB))
		dE := math.Abs(eElec + enuc - ePrev)
		ePrev = eElec + enuc

		res.Energy = ePrev
		res.Electronic = eElec
		res.Iterations = iter
		res.OrbitalEA, res.OrbitalEB = orbA, orbB
		res.CA, res.CB = cA, cB
		res.DA, res.DB = newDA, newDB
		dA, dB = newDA, newDB

		if iter > 1 && rms < opts.ConvDensity && dE < opts.ConvEnergy {
			res.Converged = true
			break
		}
	}
	res.S2 = spinExpectation(res, s)
	return res, nil
}

// uhfDensity is densityFromFock without the factor of 2 (one electron per
// occupied spin orbital).
func uhfDensity(f, x *linalg.Matrix, nocc int) (*linalg.Matrix, *linalg.Matrix, []float64) {
	d, c, orbE := densityFromFock(f, x, nocc)
	d.Scale(0.5)
	return d, c, orbE
}

// spinExpectation returns ⟨S²⟩ = S(S+1) + Nβ − Σ_{ij} |⟨ψᵅ_i|ψᵝ_j⟩|²,
// the standard UHF spin-contamination diagnostic.
func spinExpectation(res *UHFResult, s *linalg.Matrix) float64 {
	sz := float64(res.NAlpha-res.NBeta) / 2
	exact := sz * (sz + 1)
	// Overlap of occupied α and β orbitals: O = CAᵀ S CB (occupied cols).
	o := linalg.MatMul(res.CA.Transpose(), linalg.MatMul(s, res.CB))
	var sum float64
	for i := 0; i < res.NAlpha; i++ {
		for j := 0; j < res.NBeta; j++ {
			v := o.At(i, j)
			sum += v * v
		}
	}
	return exact + float64(res.NBeta) - sum
}
