package chem

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseXYZ reads a molecule in the standard XYZ format:
//
//	<atom count>
//	<comment line>
//	<symbol> <x> <y> <z>     (coordinates in ångström)
//	...
//
// Coordinates are converted to bohr. The comment line becomes the
// molecule name when non-empty.
func ParseXYZ(r io.Reader) (*Molecule, error) {
	sc := bufio.NewScanner(r)
	line := func() (string, bool) {
		if !sc.Scan() {
			return "", false
		}
		return strings.TrimSpace(sc.Text()), true
	}
	first, ok := line()
	if !ok {
		return nil, fmt.Errorf("chem: empty XYZ input")
	}
	count, err := strconv.Atoi(first)
	if err != nil || count < 1 {
		return nil, fmt.Errorf("chem: bad XYZ atom count %q", first)
	}
	comment, ok := line()
	if !ok {
		return nil, fmt.Errorf("chem: XYZ truncated after atom count")
	}
	mol := &Molecule{Name: comment}
	if mol.Name == "" {
		mol.Name = "xyz"
	}
	for i := 0; i < count; i++ {
		l, ok := line()
		if !ok {
			return nil, fmt.Errorf("chem: XYZ truncated at atom %d of %d", i+1, count)
		}
		fields := strings.Fields(l)
		if len(fields) < 4 {
			return nil, fmt.Errorf("chem: XYZ atom line %d has %d fields, want 4", i+1, len(fields))
		}
		z := AtomicNumber(fields[0])
		if z == 0 {
			// Accept a bare atomic number too.
			if n, err := strconv.Atoi(fields[0]); err == nil && n > 0 {
				z = n
			} else {
				return nil, fmt.Errorf("chem: unknown element %q on line %d", fields[0], i+1)
			}
		}
		var xyz [3]float64
		for k := 0; k < 3; k++ {
			v, err := strconv.ParseFloat(fields[k+1], 64)
			if err != nil {
				return nil, fmt.Errorf("chem: bad coordinate %q on atom line %d", fields[k+1], i+1)
			}
			xyz[k] = v * angstrom
		}
		mol.Atoms = append(mol.Atoms, Atom{Z: z, Pos: Vec3{xyz[0], xyz[1], xyz[2]}})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return mol, nil
}

// WriteXYZ writes the molecule in XYZ format (coordinates in ångström).
func WriteXYZ(w io.Writer, mol *Molecule) error {
	if _, err := fmt.Fprintf(w, "%d\n%s\n", len(mol.Atoms), mol.Name); err != nil {
		return err
	}
	for _, a := range mol.Atoms {
		_, err := fmt.Fprintf(w, "%-3s %14.8f %14.8f %14.8f\n",
			a.Symbol(), a.Pos.X/angstrom, a.Pos.Y/angstrom, a.Pos.Z/angstrom)
		if err != nil {
			return err
		}
	}
	return nil
}
