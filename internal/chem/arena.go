package chem

import "execmodels/internal/linalg"

// ERIScratch is a per-worker scratch arena for the two-electron hot path:
// the ERI block buffer, the Hermite R / Boys workspace and the small
// digest accumulators are allocated once and reused for every quartet, so
// the steady-state Fock build performs zero heap allocations per task.
//
// A scratch is not safe for concurrent use; each worker goroutine owns
// its own (see core.wallRun). The zero value works and grows on demand,
// but NewERIScratch pre-sizes everything so even the first task is
// allocation-free.
type ERIScratch struct {
	blk  []float64 // ERI shell-quartet block buffer
	kAcc []float64 // per-σ exchange accumulators (one per K matrix)
	ks   [2]*linalg.Matrix
	dks  [2]*linalg.Matrix
	rw   hermiteRWork
}

// NewERIScratch returns a scratch arena pre-sized for the largest shell
// quartet the basis set can produce.
func NewERIScratch(bs *BasisSet) *ERIScratch {
	maxNF, maxL := 1, 0
	for i := range bs.Shells {
		if nf := bs.Shells[i].NumFuncs(); nf > maxNF {
			maxNF = nf
		}
		if l := bs.Shells[i].L; l > maxL {
			maxL = l
		}
	}
	s := &ERIScratch{
		blk:  make([]float64, maxNF*maxNF*maxNF*maxNF),
		kAcc: make([]float64, 2),
	}
	s.rw.grow(4 * maxL)
	return s
}

// NewScratch returns a scratch arena sized for the workload's basis set.
// Every worker of a parallel Fock build should hold exactly one.
func (w *FockWorkload) NewScratch() *ERIScratch {
	return NewERIScratch(w.Basis)
}
