package chem

import "execmodels/internal/linalg"

// ERIScratch is a per-worker scratch arena for the two-electron hot path:
// the ERI block buffer, the Hermite R / Boys workspace and the small
// digest accumulators are allocated once and reused for every quartet, so
// the steady-state Fock build performs zero heap allocations per task.
//
// A scratch is not safe for concurrent use; each worker goroutine owns
// its own (see core.wallRun) — the shareiso check proves no scratch
// crosses a goroutine boundary without a happens-before edge. The zero
// value works and grows on demand, but NewERIScratch pre-sizes
// everything so even the first task is allocation-free.
//
//hotpath:isolated
type ERIScratch struct {
	blk  []float64 // ERI shell-quartet block buffer
	kAcc []float64 // per-σ exchange accumulators (one per K matrix)
	ks   [2]*linalg.Matrix
	dks  [2]*linalg.Matrix
	rw   hermiteRWork
}

// NewERIScratch returns a scratch arena pre-sized for the largest shell
// quartet the basis set can produce.
func NewERIScratch(bs *BasisSet) *ERIScratch {
	maxNF, maxL := 1, 0
	for i := range bs.Shells {
		if nf := bs.Shells[i].NumFuncs(); nf > maxNF {
			maxNF = nf
		}
		if l := bs.Shells[i].L; l > maxL {
			maxL = l
		}
	}
	s := &ERIScratch{
		blk:  make([]float64, maxNF*maxNF*maxNF*maxNF),
		kAcc: make([]float64, 2),
	}
	s.rw.grow(4 * maxL)
	return s
}

// NewScratch returns a scratch arena sized for the workload's basis set.
// Every worker of a parallel Fock build should hold exactly one.
func (w *FockWorkload) NewScratch() *ERIScratch {
	return NewERIScratch(w.Basis)
}

// JKAccum bundles the worker-private Coulomb/exchange accumulators of a
// parallel Fock build with the scratch arena that digests into them: J
// plus one exchange matrix per spin channel (KB nil for spin-restricted
// builds). Executors hand each worker one JKAccum, let it digest its
// tasks allocation-free, and fold the accumulators into the shared
// matrices only after every worker has finished — the symmetric digest
// scatters into all eight J/K slots of a quartet, so workers must never
// share an accumulator mid-build (see core's post-wg.Wait merge).
type JKAccum struct {
	J, KA, KB *linalg.Matrix
	Scratch   *ERIScratch
}

// NewJKAccum returns a worker accumulator sized for the workload; spin
// selects the unrestricted shape with separate Kα/Kβ.
func (w *FockWorkload) NewJKAccum(spin bool) *JKAccum {
	n := w.Basis.NBF
	a := &JKAccum{
		J:       linalg.NewMatrix(n, n),
		KA:      linalg.NewMatrix(n, n),
		Scratch: w.NewScratch(),
	}
	if spin {
		a.KB = linalg.NewMatrix(n, n)
	}
	return a
}

// ExecuteTaskAccum digests one task into the accumulator: the restricted
// contraction when a.KB is nil (dj feeds J, dkA the single K), otherwise
// the unrestricted one (dj = total density, dkA/dkB the per-spin
// exchange densities). It is the single entry point the wall-clock
// worker loop uses for both spin shapes.
//
//hotpath:allocfree
func (w *FockWorkload) ExecuteTaskAccum(t *FockTask, dj, dkA, dkB *linalg.Matrix, a *JKAccum) int {
	s := a.Scratch
	if a.KB == nil {
		s.ks[0], s.dks[0] = a.KA, dkA
		return w.executeTask(t, dj, s.ks[:1], s.dks[:1], a.J, s)
	}
	s.ks[0], s.ks[1] = a.KA, a.KB
	s.dks[0], s.dks[1] = dkA, dkB
	return w.executeTask(t, dj, s.ks[:2], s.dks[:2], a.J, s)
}

// MergeInto folds the worker's accumulators into the shared J/K
// matrices. Callers sequence merges (worker 0, 1, ...) after all workers
// have stopped digesting, so the result is deterministic for a fixed
// worker count and the merge itself needs no synchronization.
func (a *JKAccum) MergeInto(j, kA, kB *linalg.Matrix) {
	j.AddScaled(1, a.J)
	kA.AddScaled(1, a.KA)
	if a.KB != nil && kB != nil {
		kB.AddScaled(1, a.KB)
	}
}
