//go:build !race

package chem

// raceEnabled reports whether the race detector is active; allocation
// gates skip under -race because instrumentation perturbs alloc counts.
const raceEnabled = false
