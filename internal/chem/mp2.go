package chem

import (
	"fmt"

	"execmodels/internal/linalg"
)

// FullERITensor builds the dense two-electron-integral tensor (μν|λσ)
// over all basis functions, by brute force over every ordered shell
// quartet. It is O(N⁴) memory and intended for small systems: MP2, the
// Fock-build test oracle, and pedagogy.
func FullERITensor(bs *BasisSet) []float64 {
	n := bs.NBF
	eri := make([]float64, n*n*n*n)
	for ia := range bs.Shells {
		for ib := range bs.Shells {
			for ic := range bs.Shells {
				for id := range bs.Shells {
					a, b, c, d := &bs.Shells[ia], &bs.Shells[ib], &bs.Shells[ic], &bs.Shells[id]
					blk := ERIBlock(a, b, c, d)
					na, nb, nc, nd := a.NumFuncs(), b.NumFuncs(), c.NumFuncs(), d.NumFuncs()
					for fa := 0; fa < na; fa++ {
						for fb := 0; fb < nb; fb++ {
							for fc := 0; fc < nc; fc++ {
								for fd := 0; fd < nd; fd++ {
									mu, nu := a.Start+fa, b.Start+fb
									lam, sig := c.Start+fc, d.Start+fd
									eri[((mu*n+nu)*n+lam)*n+sig] = blk[((fa*nb+fb)*nc+fc)*nd+fd]
								}
							}
						}
					}
				}
			}
		}
	}
	return eri
}

// MP2Energy computes the closed-shell second-order Møller–Plesset
// correlation energy from a converged SCF result:
//
//	E(2) = Σ_{ijab} (ia|jb)·[2(ia|jb) − (ib|ja)] / (εi + εj − εa − εb)
//
// with i,j occupied and a,b virtual spatial orbitals. The AO→MO transform
// is done as four quarter-transformations, O(N⁵).
func MP2Energy(bs *BasisSet, scf *SCFResult) (float64, error) {
	return MP2EnergyFrozen(bs, scf, 0)
}

// MP2EnergyFrozen is MP2Energy with the lowest nFrozen occupied orbitals
// excluded from the correlation treatment (the frozen-core
// approximation; chemical-core orbitals contribute little correlation
// but dominate the cost through their large denominators).
func MP2EnergyFrozen(bs *BasisSet, scf *SCFResult, nFrozen int) (float64, error) {
	if !scf.Converged {
		return 0, fmt.Errorf("chem: MP2 on an unconverged SCF reference")
	}
	n := bs.NBF
	nocc := scf.NOcc
	if nocc <= 0 || nocc >= n {
		return 0, fmt.Errorf("chem: MP2 needs 0 < nocc < nbf, have %d/%d", nocc, n)
	}
	if nFrozen < 0 || nFrozen >= nocc {
		return 0, fmt.Errorf("chem: cannot freeze %d of %d occupied orbitals", nFrozen, nocc)
	}
	ao := FullERITensor(bs)
	mo := transformERI(ao, scf.C, n)

	var e float64
	for i := nFrozen; i < nocc; i++ {
		for j := nFrozen; j < nocc; j++ {
			for a := nocc; a < n; a++ {
				for b := nocc; b < n; b++ {
					iajb := mo[((i*n+a)*n+j)*n+b]
					ibja := mo[((i*n+b)*n+j)*n+a]
					denom := scf.OrbitalE[i] + scf.OrbitalE[j] - scf.OrbitalE[a] - scf.OrbitalE[b]
					e += iajb * (2*iajb - ibja) / denom
				}
			}
		}
	}
	return e, nil
}

// transformERI performs the four-index AO→MO transformation
// (pq|rs) = Σ C_μp C_νq C_λr C_σs (μν|λσ) via quarter transforms (each
// pass contracts the leading AO index and rotates it to the back, so four
// passes restore the (pq|rs) order). See transformERIMixed for the
// two-orbital-set variant.
func transformERI(ao []float64, c *linalg.Matrix, n int) []float64 {
	return transformERIMixed(ao, c, c, n)
}
