package chem

import (
	"execmodels/internal/linalg"
)

// diisState implements Pulay's DIIS (direct inversion in the iterative
// subspace) convergence acceleration: the Fock matrix actually
// diagonalized is the linear combination of recent Fock matrices that
// minimizes the norm of the combined orbital-gradient residual
// e = F·D·S − S·D·F (expressed in the orthonormal basis).
type diisState struct {
	maxVecs int
	focks   []*linalg.Matrix
	errs    []*linalg.Matrix
}

func newDIIS(maxVecs int) *diisState {
	if maxVecs < 2 {
		maxVecs = 6
	}
	return &diisState{maxVecs: maxVecs}
}

// push records a Fock matrix and its error vector, evicting the oldest
// entry beyond capacity.
func (st *diisState) push(f, e *linalg.Matrix) {
	st.focks = append(st.focks, f.Clone())
	st.errs = append(st.errs, e.Clone())
	if len(st.focks) > st.maxVecs {
		st.focks = st.focks[1:]
		st.errs = st.errs[1:]
	}
}

// errorNorm returns the max-abs element of the newest error vector, the
// standard DIIS convergence measure.
func (st *diisState) errorNorm() float64 {
	if len(st.errs) == 0 {
		return 0
	}
	last := st.errs[len(st.errs)-1]
	var mx float64
	for _, v := range last.Data {
		if v < 0 {
			v = -v
		}
		if v > mx {
			mx = v
		}
	}
	return mx
}

// extrapolate returns the DIIS-combined Fock matrix, or nil when the
// subspace is too small or the B-system is unsolvable (caller then uses
// the raw Fock matrix).
func (st *diisState) extrapolate() *linalg.Matrix {
	m := len(st.focks)
	if m < 2 {
		return nil
	}
	// Solve the (m+1)×(m+1) Pulay system:
	//   [ B   -1 ] [ c ]   [ 0 ]
	//   [ -1ᵀ  0 ] [ λ ] = [ -1 ]
	// where B_ij = <e_i, e_j>.
	n := m + 1
	a := linalg.NewMatrix(n, n)
	rhs := make([]float64, n)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			a.Set(i, j, linalg.Dot(st.errs[i].Data, st.errs[j].Data))
		}
		a.Set(i, m, -1)
		a.Set(m, i, -1)
	}
	rhs[m] = -1
	c, ok := linalg.Solve(a, rhs)
	if !ok {
		return nil
	}
	out := linalg.NewMatrix(st.focks[0].Rows, st.focks[0].Cols)
	for i := 0; i < m; i++ {
		out.AddScaled(c[i], st.focks[i])
	}
	return out
}

// diisError computes the orbital-gradient residual FDS − SDF transformed
// to the orthonormal basis: Xᵀ (FDS − SDF) X.
func diisError(f, d, s, x *linalg.Matrix) *linalg.Matrix {
	fds := linalg.MatMul(f, linalg.MatMul(d, s))
	sdf := linalg.MatMul(s, linalg.MatMul(d, f))
	fds.AddScaled(-1, sdf)
	return linalg.TripleProduct(x, fds)
}
