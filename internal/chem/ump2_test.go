package chem

import (
	"math"
	"testing"
)

// On a closed-shell reference UMP2 must equal restricted MP2 exactly.
func TestUMP2MatchesRMP2ClosedShell(t *testing.T) {
	mol := Water()
	bs := mustBasis(t, "sto-3g", mol)
	rhf, err := RunSCF(mol, bs, SCFOptions{UseDIIS: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rmp2, err := MP2Energy(bs, rhf)
	if err != nil {
		t.Fatal(err)
	}
	uhf, err := RunUHF(mol, bs, UHFOptions{UseDIIS: true})
	if err != nil {
		t.Fatal(err)
	}
	ump2, err := UMP2Energy(bs, uhf)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ump2-rmp2) > 1e-6 {
		t.Errorf("UMP2 %v != RMP2 %v on a closed shell", ump2, rmp2)
	}
}

// A single electron has no pairs to correlate: E(2) = 0 identically.
func TestUMP2HydrogenAtomZero(t *testing.T) {
	mol := &Molecule{Name: "H", Atoms: []Atom{{Z: 1}}}
	bs := mustBasis(t, "sto-3g", mol)
	uhf, err := RunUHF(mol, bs, UHFOptions{})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := UMP2Energy(bs, uhf)
	if err != nil {
		t.Fatal(err)
	}
	if e2 != 0 {
		t.Errorf("E(2) for one electron = %v, want exactly 0", e2)
	}
}

// Triplet O2: the UMP2 correction must be negative and of chemically
// plausible magnitude for STO-3G (tenths of a hartree at most).
func TestUMP2TripletO2(t *testing.T) {
	const r = 1.2074 * angstrom
	mol := &Molecule{
		Name:  "O2",
		Atoms: []Atom{{Z: 8}, {Z: 8, Pos: Vec3{0, 0, r}}},
	}
	bs := mustBasis(t, "sto-3g", mol)
	uhf, err := RunUHF(mol, bs, UHFOptions{Multiplicity: 3, MaxIter: 200})
	if err != nil {
		t.Fatal(err)
	}
	if !uhf.Converged {
		t.Skip("UHF did not converge")
	}
	e2, err := UMP2Energy(bs, uhf)
	if err != nil {
		t.Fatal(err)
	}
	if e2 >= 0 || e2 < -0.5 {
		t.Errorf("E(UMP2) = %v, want negative and modest", e2)
	}
}

// Doublet OH radical: all three spin channels contribute.
func TestUMP2OHRadical(t *testing.T) {
	mol := &Molecule{Name: "OH", Atoms: []Atom{
		{Z: 8}, {Z: 1, Pos: Vec3{Z: 0.97 * angstrom}},
	}}
	bs := mustBasis(t, "sto-3g", mol)
	uhf, err := RunUHF(mol, bs, UHFOptions{MaxIter: 150})
	if err != nil {
		t.Fatal(err)
	}
	if !uhf.Converged {
		t.Skip("UHF did not converge")
	}
	e2, err := UMP2Energy(bs, uhf)
	if err != nil {
		t.Fatal(err)
	}
	if e2 >= 0 || e2 < -0.2 {
		t.Errorf("E(UMP2) = %v implausible for OH/STO-3G", e2)
	}
}

func TestUMP2RequiresConvergence(t *testing.T) {
	bs := mustBasis(t, "sto-3g", Water())
	if _, err := UMP2Energy(bs, &UHFResult{}); err == nil {
		t.Fatal("expected error")
	}
}
