package chem

import "math"

// ShellPair identifies an ordered pair of shells (I <= J) together with
// its Schwarz bound.
type ShellPair struct {
	I, J   int
	Bound  float64 // sqrt(max |(ij|ij)|), the Cauchy–Schwarz factor
	Extent float64 // spatial extent heuristic (bohr), used for locality
}

// SchwarzBounds computes, for every shell pair, the Cauchy–Schwarz
// screening factor Q_ij = sqrt(max over components |(ij|ij)|). A quartet
// (ij|kl) is bounded by Q_ij * Q_kl and can be skipped when that product
// falls below the screening threshold.
func SchwarzBounds(bs *BasisSet) []ShellPair {
	n := len(bs.Shells)
	pairs := make([]ShellPair, 0, n*(n+1)/2)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			a, b := &bs.Shells[i], &bs.Shells[j]
			blk := ERIBlock(a, b, a, b)
			na, nb := a.NumFuncs(), b.NumFuncs()
			var mx float64
			// Diagonal elements (fa fb | fa fb) of the block.
			for fa := 0; fa < na; fa++ {
				for fb := 0; fb < nb; fb++ {
					v := math.Abs(blk[((fa*nb+fb)*na+fa)*nb+fb])
					if v > mx {
						mx = v
					}
				}
			}
			ext := 1/math.Sqrt(a.MinExp()) + 1/math.Sqrt(b.MinExp()) +
				a.Center.Sub(b.Center).Norm()
			pairs = append(pairs, ShellPair{I: i, J: j, Bound: math.Sqrt(mx), Extent: ext})
		}
	}
	return pairs
}

// quartetSurvives reports whether the unique quartet formed by bra and
// ket clears the Schwarz bound: |(ij|kl)| <= Q_ij Q_kl, so the quartet
// is negligible when the product of pair bounds falls below threshold.
// This is the single screening predicate of the Fock build — it runs at
// task-generation time (FockWorkload.blockTasks) and in the retained
// baseline executor, never in the arena-path workers.
func quartetSurvives(bra, ket *ShellPair, threshold float64) bool {
	return bra.Bound*ket.Bound >= threshold
}

// SignificantPairs filters pairs, keeping those whose bound multiplied by
// the largest bound could still exceed threshold — i.e. pairs that can
// contribute to at least one surviving quartet.
func SignificantPairs(pairs []ShellPair, threshold float64) []ShellPair {
	var qmax float64
	for _, p := range pairs {
		if p.Bound > qmax {
			qmax = p.Bound
		}
	}
	out := make([]ShellPair, 0, len(pairs))
	for _, p := range pairs {
		if p.Bound*qmax >= threshold {
			out = append(out, p)
		}
	}
	return out
}
