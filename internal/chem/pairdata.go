package chem

import "math"

// piPow25 is the π^{5/2} prefactor constant of the Coulomb Gaussian
// product theorem, hoisted out of the primitive-quartet loop.
var piPow25 = math.Pow(math.Pi, 2.5)

// pairPrim holds the primitive-pair quantities of one (primitive a,
// primitive b) combination of a shell pair: everything about the bra (or
// ket) charge distribution that does not depend on the partner pair.
type pairPrim struct {
	p          float64 // exponent sum
	P          Vec3    // Gaussian product center
	cab        float64 // contraction coefficient product
	ex, ey, ez *hermiteE
}

// PairData caches the Hermite expansion tables of a shell pair. Computing
// them once per pair — instead of once per quartet — removes the dominant
// redundant work of the ERI engine: each pair appears in O(#pairs)
// quartets.
type PairData struct {
	A, B  *Shell
	prims []pairPrim
}

// NewPairData precomputes the Hermite E tables for the shell pair (a, b).
func NewPairData(a, b *Shell) *PairData {
	ab := a.Center.Sub(b.Center)
	pd := &PairData{A: a, B: b}
	for pi, ea := range a.Exps {
		for pj, eb := range b.Exps {
			p := ea + eb
			pd.prims = append(pd.prims, pairPrim{
				p:   p,
				P:   a.Center.Scale(ea / p).Add(b.Center.Scale(eb / p)),
				cab: a.Coefs[pi] * b.Coefs[pj],
				ex:  newHermiteE(a.L, b.L, ea, eb, ab.X),
				ey:  newHermiteE(a.L, b.L, ea, eb, ab.Y),
				ez:  newHermiteE(a.L, b.L, ea, eb, ab.Z),
			})
		}
	}
	return pd
}

// ERIBlockPair computes the (bra|ket) shell-quartet block from two
// precomputed pair datasets. The result layout matches
// ERIBlock(bra.A, bra.B, ket.A, ket.B).
//
// Each call allocates a fresh result (and workspace); the hot path uses
// ERIBlockPairInto with a reused ERIScratch instead.
func ERIBlockPair(bra, ket *PairData) []float64 {
	return ERIBlockPairInto(bra, ket, &ERIScratch{})
}

// ERIBlockPairInto is ERIBlockPair writing into the scratch arena s: the
// returned slice aliases s and stays valid only until the next call using
// s. With a warmed-up scratch the steady-state computation performs zero
// heap allocations.
func ERIBlockPairInto(bra, ket *PairData, s *ERIScratch) []float64 {
	a, b, c, d := bra.A, bra.B, ket.A, ket.B
	na, nb, nc, nd := a.NumFuncs(), b.NumFuncs(), c.NumFuncs(), d.NumFuncs()
	size := na * nb * nc * nd
	if cap(s.blk) < size {
		s.blk = make([]float64, size) //lint:ignore allocfree cold start: blk grows to the largest quartet block once, then every call reuses it
	}
	blk := s.blk[:size]
	clear(blk)
	ca, cb, cc, cd := Components(a.L), Components(b.L), Components(c.L), Components(d.L)
	ltot := a.L + b.L + c.L + d.L

	for bp := range bra.prims {
		pp := &bra.prims[bp]
		e1x, e1y, e1z := pp.ex, pp.ey, pp.ez
		for kp := range ket.prims {
			qq := &ket.prims[kp]
			e2x, e2y, e2z := qq.ex, qq.ey, qq.ez
			alpha := pp.p * qq.p / (pp.p + qq.p)
			r := s.rw.compute(ltot, alpha, pp.P.Sub(qq.P))
			pref := pp.cab * qq.cab * 2 * piPow25 /
				(pp.p * qq.p * math.Sqrt(pp.p+qq.p))

			idx := 0
			for _, A := range ca {
				for _, B := range cb {
					lx1, ly1, lz1 := A.Lx+B.Lx, A.Ly+B.Ly, A.Lz+B.Lz
					for _, C := range cc {
						for _, D := range cd {
							lx2, ly2, lz2 := C.Lx+D.Lx, C.Ly+D.Ly, C.Lz+D.Lz
							var sum float64
							for t := 0; t <= lx1; t++ {
								et1 := e1x.at(A.Lx, B.Lx, t)
								if et1 == 0 {
									continue
								}
								for u := 0; u <= ly1; u++ {
									eu1 := e1y.at(A.Ly, B.Ly, u)
									if eu1 == 0 {
										continue
									}
									for v := 0; v <= lz1; v++ {
										ev1 := e1z.at(A.Lz, B.Lz, v)
										if ev1 == 0 {
											continue
										}
										e1 := et1 * eu1 * ev1
										for tau := 0; tau <= lx2; tau++ {
											et2 := e2x.at(C.Lx, D.Lx, tau)
											if et2 == 0 {
												continue
											}
											for nu := 0; nu <= ly2; nu++ {
												eu2 := e2y.at(C.Ly, D.Ly, nu)
												if eu2 == 0 {
													continue
												}
												for phi := 0; phi <= lz2; phi++ {
													ev2 := e2z.at(C.Lz, D.Lz, phi)
													if ev2 == 0 {
														continue
													}
													sign := 1.0
													if (tau+nu+phi)&1 == 1 {
														sign = -1
													}
													sum += e1 * sign * et2 * eu2 * ev2 *
														r.at(t+tau, u+nu, v+phi)
												}
											}
										}
									}
								}
							}
							blk[idx] += pref * sum
							idx++
						}
					}
				}
			}
		}
	}
	if a.L >= 2 || b.L >= 2 || c.L >= 2 || d.L >= 2 {
		normA, normB := ComponentNorms(a.L), ComponentNorms(b.L)
		normC, normD := ComponentNorms(c.L), ComponentNorms(d.L)
		idx := 0
		for _, va := range normA {
			for _, vb := range normB {
				for _, vc := range normC {
					for _, vd := range normD {
						blk[idx] *= va * vb * vc * vd
						idx++
					}
				}
			}
		}
	}
	return blk
}
