package chem

import (
	"testing"

	"execmodels/internal/linalg"
)

// arenaWorkload builds a small but shell-diverse workload (s and p
// shells, multiple water units) for the arena tests.
func arenaWorkload(t testing.TB) (*FockWorkload, *linalg.Matrix) {
	t.Helper()
	mol := WaterCluster(2, 11)
	bs, err := NewBasis("sto-3g", mol)
	if err != nil {
		t.Fatal(err)
	}
	w := BuildFockWorkload(bs, 1e-10, 3)
	if len(w.Tasks) < 4 {
		t.Fatalf("workload too small: %d tasks", len(w.Tasks))
	}
	return w, linalg.Identity(bs.NBF)
}

// The arena-backed fast path must reproduce the retained baseline
// implementation exactly: the digest loop structure is identical, so the
// floating-point accumulation order — and hence every bit of the result
// — must agree.
func TestExecuteTaskScratchMatchesBaseline(t *testing.T) {
	w, d := arenaWorkload(t)
	n := w.Basis.NBF
	s := w.NewScratch()
	for i := range w.Tasks {
		jF, kF := linalg.NewMatrix(n, n), linalg.NewMatrix(n, n)
		jB, kB := linalg.NewMatrix(n, n), linalg.NewMatrix(n, n)
		doneF := w.ExecuteTaskScratch(&w.Tasks[i], d, jF, kF, s)
		doneB := w.ExecuteTaskBaseline(&w.Tasks[i], d, jB, kB)
		if doneF != doneB {
			t.Fatalf("task %d: %d quartets (scratch) vs %d (baseline)", i, doneF, doneB)
		}
		if diff := jF.MaxAbsDiff(jB); diff != 0 {
			t.Errorf("task %d: J differs from baseline by %g", i, diff)
		}
		if diff := kF.MaxAbsDiff(kB); diff != 0 {
			t.Errorf("task %d: K differs from baseline by %g", i, diff)
		}
	}
}

// A warmed-up scratch arena must make the steady-state ERI loop
// allocation-free: zero heap allocations per task. This is the perf
// trajectory's regression gate — BENCH_wall.json's allocs/task column is
// only meaningful while this holds.
func TestExecuteTaskScratchZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; gate runs in the non-race pass")
	}
	w, d := arenaWorkload(t)
	n := w.Basis.NBF
	s := w.NewScratch()
	j, k := linalg.NewMatrix(n, n), linalg.NewMatrix(n, n)
	// Warm up: first execution may grow lazily-sized buffers.
	for i := range w.Tasks {
		w.ExecuteTaskScratch(&w.Tasks[i], d, j, k, s)
	}
	avg := testing.AllocsPerRun(5, func() {
		for i := range w.Tasks {
			w.ExecuteTaskScratch(&w.Tasks[i], d, j, k, s)
		}
	})
	if avg != 0 {
		t.Errorf("ExecuteTaskScratch allocates %.1f times per sweep, want 0", avg)
	}
}

// The spin (UHF) variant shares the scratch plumbing and must be
// allocation-free too.
func TestExecuteTaskSpinScratchZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; gate runs in the non-race pass")
	}
	w, d := arenaWorkload(t)
	n := w.Basis.NBF
	s := w.NewScratch()
	j, kA, kB := linalg.NewMatrix(n, n), linalg.NewMatrix(n, n), linalg.NewMatrix(n, n)
	for i := range w.Tasks {
		w.ExecuteTaskSpinScratch(&w.Tasks[i], d, d, d, j, kA, kB, s)
	}
	avg := testing.AllocsPerRun(5, func() {
		for i := range w.Tasks {
			w.ExecuteTaskSpinScratch(&w.Tasks[i], d, d, d, j, kA, kB, s)
		}
	})
	if avg != 0 {
		t.Errorf("ExecuteTaskSpinScratch allocates %.1f times per sweep, want 0", avg)
	}
}

// A zero-value scratch must work (growing on demand) so ad-hoc callers
// like ERIBlockPair stay correct.
func TestZeroValueScratch(t *testing.T) {
	w, d := arenaWorkload(t)
	n := w.Basis.NBF
	var s ERIScratch
	j, k := linalg.NewMatrix(n, n), linalg.NewMatrix(n, n)
	jRef, kRef := linalg.NewMatrix(n, n), linalg.NewMatrix(n, n)
	w.ExecuteTaskScratch(&w.Tasks[0], d, j, k, &s)
	w.ExecuteTaskBaseline(&w.Tasks[0], d, jRef, kRef)
	if diff := jRef.MaxAbsDiff(j); diff != 0 {
		t.Errorf("zero-value scratch J differs by %g", diff)
	}
}

// quartetPermutationsInto must agree with the map-based enumeration it
// replaced, in content and first-occurrence order, for every equality
// pattern of shell indices.
func TestQuartetPermutationsIntoMatchesMapBased(t *testing.T) {
	cases := [][4]int{
		{0, 0, 0, 0}, {0, 1, 2, 3}, {0, 0, 1, 1}, {0, 1, 0, 1},
		{0, 1, 1, 0}, {2, 2, 2, 3}, {3, 2, 2, 2}, {5, 5, 7, 7},
		{1, 2, 2, 1}, {4, 4, 4, 9},
	}
	for _, c := range cases {
		want := quartetPermutations(c[0], c[1], c[2], c[3])
		var got [8][4]int
		n := quartetPermutationsInto(c[0], c[1], c[2], c[3], &got)
		if n != len(want) {
			t.Errorf("%v: %d permutations, want %d", c, n, len(want))
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%v: perm %d = %v, want %v", c, i, got[i], want[i])
			}
		}
	}
}
