package chem

import "math"

// hermiteE holds the McMurchie–Davidson Hermite expansion coefficients
// E_t^{ij} for one Cartesian dimension of one primitive pair: the overlap
// distribution x_A^i x_B^j exp(-a r_A²) exp(-b r_B²) expanded in Hermite
// Gaussians Λ_t centred at P.
//
// Indexing: e.at(i, j, t), valid for 0 <= i <= imax, 0 <= j <= jmax,
// 0 <= t <= i+j (coefficients outside that band are zero).
type hermiteE struct {
	imax, jmax int
	data       []float64 // [(imax+1) x (jmax+1) x (imax+jmax+1)]
}

func (e *hermiteE) at(i, j, t int) float64 {
	if t < 0 || t > i+j {
		return 0
	}
	return e.data[(i*(e.jmax+1)+j)*(e.imax+e.jmax+1)+t]
}

func (e *hermiteE) set(i, j, t int, v float64) {
	e.data[(i*(e.jmax+1)+j)*(e.imax+e.jmax+1)+t] = v
}

// newHermiteE builds the E table for exponents a, b and center separation
// ab = A - B along one dimension, for angular momenta up to imax, jmax.
//
// Recurrences (Helgaker, Jørgensen & Olsen, ch. 9):
//
//	E_t^{00}    = exp(-μ ab²)
//	E_t^{i+1,j} = E_{t-1}^{ij}/(2p) + X_PA E_t^{ij} + (t+1) E_{t+1}^{ij}
//	E_t^{i,j+1} = E_{t-1}^{ij}/(2p) + X_PB E_t^{ij} + (t+1) E_{t+1}^{ij}
func newHermiteE(imax, jmax int, a, b, ab float64) *hermiteE {
	e := &hermiteE{
		imax: imax,
		jmax: jmax,
		data: make([]float64, (imax+1)*(jmax+1)*(imax+jmax+1)),
	}
	p := a + b
	mu := a * b / p
	xpa := -b / p * ab // P - A
	xpb := a / p * ab  // P - B

	e.set(0, 0, 0, math.Exp(-mu*ab*ab))
	// Build up i at j = 0.
	for i := 0; i < imax; i++ {
		for t := 0; t <= i+1; t++ {
			v := e.at(i, 0, t-1)/(2*p) + xpa*e.at(i, 0, t) + float64(t+1)*e.at(i, 0, t+1)
			e.set(i+1, 0, t, v)
		}
	}
	// Build up j for every i.
	for i := 0; i <= imax; i++ {
		for j := 0; j < jmax; j++ {
			for t := 0; t <= i+j+1; t++ {
				v := e.at(i, j, t-1)/(2*p) + xpb*e.at(i, j, t) + float64(t+1)*e.at(i, j, t+1)
				e.set(i, j+1, t, v)
			}
		}
	}
	return e
}

// hermiteR holds the Hermite Coulomb integrals R^0_{tuv}(p, PC) needed to
// assemble nuclear-attraction and electron-repulsion integrals.
type hermiteR struct {
	tmax int
	data []float64 // [(tmax+1)^3], index (t*(tmax+1)+u)*(tmax+1)+v
}

func (r *hermiteR) at(t, u, v int) float64 {
	n := r.tmax + 1
	return r.data[(t*n+u)*n+v]
}

// hermiteRWork is a reusable workspace for Hermite Coulomb integral
// construction: the Boys-function buffer and the per-order R cubes are
// retained across calls so the steady-state ERI loop performs no heap
// allocation per primitive quartet. The zero value is ready to use and
// grows on demand; grow preallocates for a known maximum order.
//
// compute's result aliases the workspace and is invalidated by the next
// compute call, so a workspace must not be shared between goroutines.
type hermiteRWork struct {
	boys   []float64
	orders [][]float64
	r      hermiteR
}

// grow preallocates the workspace for orders up to tmax.
func (w *hermiteRWork) grow(tmax int) {
	n1 := tmax + 1
	if cap(w.boys) < n1 {
		w.boys = make([]float64, n1) //lint:ignore allocfree cold start: Boys workspace grows to the basis's max total angular momentum once, then is reused
	}
	for len(w.orders) < n1 {
		w.orders = append(w.orders, nil) //lint:ignore allocfree cold start: the per-order table of R-recursion cubes grows once per arena
	}
	for n := 0; n < n1; n++ {
		if cap(w.orders[n]) < n1*n1*n1 {
			w.orders[n] = make([]float64, n1*n1*n1) //lint:ignore allocfree cold start: each R-recursion cube is sized by the max angular momentum once, then reused
		}
	}
}

// newHermiteR computes R^0_{tuv} for all t+u+v <= tmax, with Gaussian
// exponent p and separation pc = P - C.
//
//	R^n_{000}    = (-2p)^n F_n(p·|PC|²)
//	R^n_{t+1,uv} = t R^{n+1}_{t-1,uv} + X_PC R^{n+1}_{tuv}   (same for u, v)
//
// The computation runs over an auxiliary order-n dimension, consuming one
// order per unit of total angular momentum.
func newHermiteR(tmax int, p float64, pc Vec3) *hermiteR {
	// A fresh workspace per call: the result owns its data. Hot paths use
	// hermiteRWork.compute directly to amortize the allocations away.
	var w hermiteRWork
	r := w.compute(tmax, p, pc)
	return &hermiteR{tmax: tmax, data: r.data}
}

// compute fills the workspace with R^0_{tuv} for all t+u+v <= tmax and
// returns a view of it. Every entry read by the recurrence (and by at, for
// indices within tmax) is written before use, so stale data from a
// previous, larger computation never leaks into the result and no zeroing
// pass is needed.
func (w *hermiteRWork) compute(tmax int, p float64, pc Vec3) *hermiteR {
	n1 := tmax + 1
	w.grow(tmax)
	boysVals := w.boys[:n1]
	Boys(tmax, p*pc.Norm2(), boysVals)

	// orders[n][t][u][v] at auxiliary order n; a full (tmax+1)^3 cube per
	// order. tmax stays <= ~8 for d functions so the cubes are small.
	idx := func(t, u, v int) int { return (t*n1+u)*n1 + v }

	orders := w.orders[:n1]
	for n := 0; n <= tmax; n++ {
		orders[n] = orders[n][:n1*n1*n1]
		f := 1.0
		for k := 0; k < n; k++ {
			f *= -2 * p
		}
		orders[n][idx(0, 0, 0)] = f * boysVals[n]
	}

	// Fill v, then u, then t, consuming auxiliary orders top-down: the
	// value R^n_{tuv} requires R^{n+1} entries with one lower total index.
	for total := 1; total <= tmax; total++ {
		for n := 0; n <= tmax-total; n++ {
			dst, src := orders[n], orders[n+1]
			for t := 0; t <= total; t++ {
				for u := 0; u <= total-t; u++ {
					v := total - t - u
					var val float64
					switch {
					case t > 0:
						if t > 1 {
							val = float64(t-1) * src[idx(t-2, u, v)]
						}
						val += pc.X * src[idx(t-1, u, v)]
					case u > 0:
						if u > 1 {
							val = float64(u-1) * src[idx(t, u-2, v)]
						}
						val += pc.Y * src[idx(t, u-1, v)]
					default: // v > 0
						if v > 1 {
							val = float64(v-1) * src[idx(t, u, v-2)]
						}
						val += pc.Z * src[idx(t, u, v-1)]
					}
					dst[idx(t, u, v)] = val
				}
			}
		}
	}
	w.r = hermiteR{tmax: tmax, data: orders[0]}
	return &w.r
}
