// Package plot renders simple line charts as standalone SVG documents,
// using only the standard library — enough to turn the experiment tables
// into the paper-style figures (time vs ranks, slowdown vs variability,
// …) without any plotting dependency.
package plot

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is one named line on a chart.
type Series struct {
	Name string
	X, Y []float64
}

// Chart is a single-panel line chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	LogX   bool
	LogY   bool
	series []Series
}

// AddSeries appends a line. X and Y must have equal, nonzero length; with
// LogX/LogY the respective values must be positive.
func (c *Chart) AddSeries(name string, x, y []float64) error {
	if len(x) != len(y) || len(x) == 0 {
		return fmt.Errorf("plot: series %q has %d x and %d y points", name, len(x), len(y))
	}
	for i := range x {
		if c.LogX && x[i] <= 0 {
			return fmt.Errorf("plot: series %q x[%d]=%v on a log axis", name, i, x[i])
		}
		if c.LogY && y[i] <= 0 {
			return fmt.Errorf("plot: series %q y[%d]=%v on a log axis", name, i, y[i])
		}
	}
	c.series = append(c.series, Series{Name: name, X: append([]float64(nil), x...), Y: append([]float64(nil), y...)})
	return nil
}

// palette holds visually distinct stroke colors, cycled by series index.
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd",
	"#ff7f0e", "#8c564b", "#e377c2", "#17becf", "#7f7f7f",
}

const (
	width   = 720
	height  = 440
	marginL = 70
	marginR = 170
	marginT = 45
	marginB = 55
)

// WriteSVG renders the chart. It returns an error when no series were
// added.
func (c *Chart) WriteSVG(w io.Writer) error {
	if len(c.series) == 0 {
		return fmt.Errorf("plot: chart %q has no series", c.Title)
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.series {
		for i := range s.X {
			xmin, xmax = math.Min(xmin, c.tx(s.X[i])), math.Max(xmax, c.tx(s.X[i]))
			ymin, ymax = math.Min(ymin, c.ty(s.Y[i])), math.Max(ymax, c.ty(s.Y[i]))
		}
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	// 5% padding on y.
	pad := (ymax - ymin) * 0.05
	ymin -= pad
	ymax += pad

	plotW := float64(width - marginL - marginR)
	plotH := float64(height - marginT - marginB)
	px := func(x float64) float64 { return marginL + (c.tx(x)-xmin)/(xmax-xmin)*plotW }
	py := func(y float64) float64 { return float64(height-marginB) - (c.ty(y)-ymin)/(ymax-ymin)*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`+"\n", width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="24" font-size="15" font-weight="bold">%s</text>`+"\n", marginL, esc(c.Title))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, height-marginB, width-marginR, height-marginB)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT, marginL, height-marginB)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="12" text-anchor="middle">%s</text>`+"\n",
		marginL+int(plotW/2), height-12, esc(c.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%d" font-size="12" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`+"\n",
		marginT+int(plotH/2), marginT+int(plotH/2), esc(c.YLabel))

	// Ticks: use the union of x values (charts here have few points).
	for _, xv := range c.xTicks() {
		X := px(xv)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="black"/>`+"\n",
			X, height-marginB, X, height-marginB+5)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="10" text-anchor="middle">%s</text>`+"\n",
			X, height-marginB+18, fmtTick(xv))
	}
	for i := 0; i <= 4; i++ {
		tv := ymin + (ymax-ymin)*float64(i)/4
		yv := c.invTy(tv)
		Y := float64(height-marginB) - (tv-ymin)/(ymax-ymin)*plotH
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginL, Y, width-marginR, Y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="10" text-anchor="end">%s</text>`+"\n",
			marginL-6, Y+3, fmtTick(yv))
	}

	// Series lines, points and legend.
	for si, s := range c.series {
		color := palette[si%len(palette)]
		var pts []string
		for i := range s.X {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(s.X[i]), py(s.Y[i])))
		}
		fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="1.8" points="%s"/>`+"\n",
			color, strings.Join(pts, " "))
		for i := range s.X {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.6" fill="%s"/>`+"\n",
				px(s.X[i]), py(s.Y[i]), color)
		}
		ly := marginT + 14 + si*18
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			width-marginR+10, ly-4, width-marginR+30, ly-4, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11">%s</text>`+"\n",
			width-marginR+36, ly, esc(s.Name))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func (c *Chart) tx(x float64) float64 {
	if c.LogX {
		return math.Log10(x)
	}
	return x
}

func (c *Chart) ty(y float64) float64 {
	if c.LogY {
		return math.Log10(y)
	}
	return y
}

func (c *Chart) invTy(t float64) float64 {
	if c.LogY {
		return math.Pow(10, t)
	}
	return t
}

// xTicks returns the distinct x values across all series, capped to a
// readable count.
func (c *Chart) xTicks() []float64 {
	seen := map[float64]bool{}
	var ticks []float64
	for _, s := range c.series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				ticks = append(ticks, x)
			}
		}
	}
	sort.Float64s(ticks)
	for len(ticks) > 10 {
		// Thin out every other tick.
		var kept []float64
		for i, t := range ticks {
			if i%2 == 0 {
				kept = append(kept, t)
			}
		}
		ticks = kept
	}
	return ticks
}

func fmtTick(v float64) string {
	av := math.Abs(v)
	switch {
	case v == 0:
		return "0"
	case av >= 1e4 || av < 1e-2:
		return fmt.Sprintf("%.1e", v)
	case av >= 10:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2g", v)
	}
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
