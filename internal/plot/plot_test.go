package plot

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"
)

func validSVG(t *testing.T, c *Chart) string {
	t.Helper()
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	// Must be well-formed XML.
	dec := xml.NewDecoder(bytes.NewReader(buf.Bytes()))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("invalid XML: %v\n%s", err, buf.String())
		}
	}
	return buf.String()
}

func TestChartBasic(t *testing.T) {
	c := &Chart{Title: "demo", XLabel: "ranks", YLabel: "time (s)"}
	if err := c.AddSeries("static", []float64{1, 2, 4}, []float64{10, 6, 4}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddSeries("stealing", []float64{1, 2, 4}, []float64{10, 5, 2.6}); err != nil {
		t.Fatal(err)
	}
	svg := validSVG(t, c)
	for _, want := range []string{"demo", "static", "stealing", "polyline", "ranks", "time (s)"} {
		if !strings.Contains(svg, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestChartLogAxes(t *testing.T) {
	c := &Chart{Title: "log", LogX: true, LogY: true}
	if err := c.AddSeries("s", []float64{1, 10, 100}, []float64{1, 100, 10000}); err != nil {
		t.Fatal(err)
	}
	svg := validSVG(t, c)
	// Equal log spacing: the three points are evenly spread on x. Parse
	// the circle positions.
	var xs []string
	for _, line := range strings.Split(svg, "\n") {
		if strings.HasPrefix(line, "<circle") {
			xs = append(xs, line)
		}
	}
	if len(xs) != 3 {
		t.Fatalf("%d circles", len(xs))
	}
}

func TestChartRejectsBadSeries(t *testing.T) {
	c := &Chart{}
	if err := c.AddSeries("bad", []float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := c.AddSeries("empty", nil, nil); err == nil {
		t.Error("empty series accepted")
	}
	lc := &Chart{LogY: true}
	if err := lc.AddSeries("neg", []float64{1}, []float64{-1}); err == nil {
		t.Error("negative value on log axis accepted")
	}
}

func TestChartNoSeries(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Chart{Title: "empty"}).WriteSVG(&buf); err == nil {
		t.Fatal("expected error")
	}
}

func TestChartEscapesTitles(t *testing.T) {
	c := &Chart{Title: "a < b & c"}
	if err := c.AddSeries("s<1>", []float64{0, 1}, []float64{0, 1}); err != nil {
		t.Fatal(err)
	}
	svg := validSVG(t, c)
	if strings.Contains(svg, "a < b & c") {
		t.Error("unescaped title")
	}
}

func TestChartSinglePoint(t *testing.T) {
	c := &Chart{Title: "one"}
	if err := c.AddSeries("s", []float64{5}, []float64{3}); err != nil {
		t.Fatal(err)
	}
	validSVG(t, c) // degenerate ranges must not divide by zero
}

func TestManyTicksThinned(t *testing.T) {
	c := &Chart{Title: "ticks"}
	xs := make([]float64, 40)
	ys := make([]float64, 40)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = float64(i * i)
	}
	if err := c.AddSeries("s", xs, ys); err != nil {
		t.Fatal(err)
	}
	if got := len(c.xTicks()); got > 10 {
		t.Fatalf("%d ticks", got)
	}
	validSVG(t, c)
}
