// Package semimatching implements the paper's novel load-balancing
// technique: semi-matchings on bipartite task–machine graphs. A
// semi-matching assigns every task to exactly one adjacent machine; the
// optimal semi-matching minimizes the machine load vector in the
// lexicographic (equivalently, any-convex-cost) sense [Harvey, Ladner,
// Lovász, Tamir, "Semi-matchings for bipartite graphs and load balancing",
// WADS 2003].
//
// The unweighted algorithm here is exact; for weighted tasks (where the
// problem is NP-hard) the package provides greedy LPT plus alternating
// move/swap refinement, which is the practical variant the study uses.
package semimatching

import (
	"fmt"
	"sort"
)

// Bipartite is a bipartite graph between nLeft tasks and nRight machines.
type Bipartite struct {
	NLeft, NRight int
	Adj           [][]int // Adj[task] = candidate machines
}

// NewBipartite returns an edgeless graph with the given part sizes.
func NewBipartite(nLeft, nRight int) *Bipartite {
	if nLeft < 0 || nRight <= 0 {
		panic(fmt.Sprintf("semimatching: invalid sizes %d, %d", nLeft, nRight))
	}
	return &Bipartite{NLeft: nLeft, NRight: nRight, Adj: make([][]int, nLeft)}
}

// AddEdge declares that task l may run on machine r. Duplicate edges are
// ignored.
func (b *Bipartite) AddEdge(l, r int) {
	if l < 0 || l >= b.NLeft || r < 0 || r >= b.NRight {
		panic(fmt.Sprintf("semimatching: edge (%d,%d) out of range", l, r))
	}
	for _, e := range b.Adj[l] {
		if e == r {
			return
		}
	}
	b.Adj[l] = append(b.Adj[l], r)
}

// Complete returns the complete bipartite graph (every task may run on
// every machine) — the "no locality constraint" case.
func Complete(nLeft, nRight int) *Bipartite {
	b := NewBipartite(nLeft, nRight)
	for l := 0; l < nLeft; l++ {
		b.Adj[l] = make([]int, nRight)
		for r := 0; r < nRight; r++ {
			b.Adj[l][r] = r
		}
	}
	return b
}

// Assignment maps every task to one machine.
type Assignment struct {
	Of    []int     // Of[task] = machine
	Loads []float64 // per-machine total weight (1 per task if unweighted)
}

// Makespan returns the maximum machine load.
func (a *Assignment) Makespan() float64 {
	var mx float64
	for _, l := range a.Loads {
		if l > mx {
			mx = l
		}
	}
	return mx
}

// CostFlow returns Σ_r load_r·(load_r+1)/2, the total task flow time under
// unit weights — the objective the optimal semi-matching provably
// minimizes (together with every other convex objective).
func (a *Assignment) CostFlow() float64 {
	var s float64
	for _, l := range a.Loads {
		s += l * (l + 1) / 2
	}
	return s
}

// validate panics unless every task has at least one candidate machine.
func (b *Bipartite) validate() {
	for l, adj := range b.Adj {
		if len(adj) == 0 {
			panic(fmt.Sprintf("semimatching: task %d has no candidate machines", l))
		}
	}
}

// byDescWeight returns task indices sorted by descending weight.
func byDescWeight(w []float64) []int {
	idx := make([]int, len(w))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return w[idx[a]] > w[idx[b]] })
	return idx
}
