package semimatching

import "container/list"

// SemiMatch computes an optimal semi-matching of the unweighted bipartite
// graph b: every task is assigned to one adjacent machine and the load
// vector is lexicographically minimal (hence also minimal in makespan and
// in total flow time).
//
// The algorithm inserts tasks one at a time, assigning each via a BFS over
// alternating paths to the least-loaded reachable machine (Harvey et al.'s
// ASM2), then removes any remaining cost-reducing paths to guarantee
// optimality irrespective of insertion order.
func SemiMatch(b *Bipartite) *Assignment {
	b.validate()
	a := &Assignment{
		Of:    make([]int, b.NLeft),
		Loads: make([]float64, b.NRight),
	}
	for i := range a.Of {
		a.Of[i] = -1
	}
	// assigned[r] = tasks currently on machine r.
	assigned := make([][]int, b.NRight)

	for u := 0; u < b.NLeft; u++ {
		insertViaAlternatingBFS(b, a, assigned, u)
	}
	// Optimality clean-up: while some machine can shed a task to a machine
	// with load at least 2 lower via an alternating path, flip that path.
	for removeCostReducingPath(b, a, assigned) {
	}
	return a
}

// insertViaAlternatingBFS assigns the unmatched task u along an
// alternating path ending at the least-loaded reachable machine.
func insertViaAlternatingBFS(b *Bipartite, a *Assignment, assigned [][]int, u int) {
	// parentTask[r]: the task whose edge discovered machine r;
	// parentMachine[t]: the machine that released task t on the path.
	parentTask := make(map[int]int)
	visitedTask := make(map[int]bool)
	queueTasks := list.New()
	queueTasks.PushBack(u)
	visitedTask[u] = true

	best := -1
	for queueTasks.Len() > 0 {
		t := queueTasks.Remove(queueTasks.Front()).(int)
		for _, r := range b.Adj[t] {
			if _, seen := parentTask[r]; seen {
				continue
			}
			parentTask[r] = t
			if best == -1 || a.Loads[r] < a.Loads[best] {
				best = r
			}
			// Machines can release any currently assigned task.
			for _, t2 := range assigned[r] {
				if !visitedTask[t2] {
					visitedTask[t2] = true
					queueTasks.PushBack(t2)
				}
			}
		}
	}
	// Walk the alternating path backwards from best, re-assigning.
	flipPathTo(b, a, assigned, parentTask, u, best)
}

// flipPathTo re-assigns tasks along the discovered alternating path so
// that the path's origin task ends up matched and machine `dest` gains one
// unit of load. parentTask maps each discovered machine to the task that
// reached it; each such task either is the origin or was previously
// assigned to another machine on the path.
func flipPathTo(b *Bipartite, a *Assignment, assigned [][]int, parentTask map[int]int, origin, dest int) {
	r := dest
	for {
		t := parentTask[r]
		prev := a.Of[t] // machine t used to be on (-1 for the origin)
		// Move t onto r.
		if prev >= 0 {
			removeFrom(assigned, prev, t)
			a.Loads[prev]--
		}
		a.Of[t] = r
		assigned[r] = append(assigned[r], t)
		a.Loads[r]++
		if t == origin {
			return
		}
		r = prev
	}
}

// removeCostReducingPath searches for an alternating path from any
// machine with load ≥ L to a machine with load ≤ L-2 and flips it,
// reducing the convex cost. Returns true if a flip happened.
func removeCostReducingPath(b *Bipartite, a *Assignment, assigned [][]int) bool {
	for src := 0; src < b.NRight; src++ {
		if a.Loads[src] == 0 {
			continue
		}
		// BFS from machine src over alternating structure.
		parentTask := make(map[int]int)
		visitedTask := make(map[int]bool)
		visitedMachine := map[int]bool{src: true}
		queue := list.New()
		for _, t := range assigned[src] {
			visitedTask[t] = true
			queue.PushBack(t)
		}
		for queue.Len() > 0 {
			t := queue.Remove(queue.Front()).(int)
			for _, r := range b.Adj[t] {
				if visitedMachine[r] {
					continue
				}
				visitedMachine[r] = true
				parentTask[r] = t
				if a.Loads[r] <= a.Loads[src]-2 {
					flipChain(a, assigned, parentTask, r)
					return true
				}
				for _, t2 := range assigned[r] {
					if !visitedTask[t2] {
						visitedTask[t2] = true
						queue.PushBack(t2)
					}
				}
			}
		}
	}
	return false
}

// flipChain moves each task on the discovered chain one machine forward,
// ending at dest; the chain starts at the overloaded source machine.
func flipChain(a *Assignment, assigned [][]int, parentTask map[int]int, dest int) {
	r := dest
	for {
		t := parentTask[r]
		prev := a.Of[t]
		removeFrom(assigned, prev, t)
		a.Loads[prev]--
		a.Of[t] = r
		assigned[r] = append(assigned[r], t)
		a.Loads[r]++
		if _, ok := parentTask[prev]; !ok {
			return // reached the source machine
		}
		r = prev
	}
}

func removeFrom(assigned [][]int, r, t int) {
	lst := assigned[r]
	for i, v := range lst {
		if v == t {
			lst[i] = lst[len(lst)-1]
			assigned[r] = lst[:len(lst)-1]
			return
		}
	}
	panic("semimatching: task not found on its machine")
}
