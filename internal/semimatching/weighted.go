package semimatching

// LPT computes the greedy longest-processing-time assignment: tasks in
// descending weight order, each to its least-loaded candidate machine.
// It is the classical baseline the weighted semi-matching refines.
func LPT(b *Bipartite, w []float64) *Assignment {
	b.validate()
	if len(w) != b.NLeft {
		panic("semimatching: weight vector length mismatch")
	}
	a := &Assignment{
		Of:    make([]int, b.NLeft),
		Loads: make([]float64, b.NRight),
	}
	for _, t := range byDescWeight(w) {
		best := b.Adj[t][0]
		for _, r := range b.Adj[t][1:] {
			if a.Loads[r] < a.Loads[best] {
				best = r
			}
		}
		a.Of[t] = best
		a.Loads[best] += w[t]
	}
	return a
}

// WeightedSemiMatch assigns weighted tasks to machines, starting from LPT
// and then applying alternating-path-style refinement: single-task moves
// and pairwise swaps that reduce the maximum involved machine load,
// iterated to a local optimum. Weighted makespan minimization is NP-hard,
// so this is a heuristic — but a cheap one, which is exactly the paper's
// point when comparing it against hypergraph partitioning.
func WeightedSemiMatch(b *Bipartite, w []float64) *Assignment {
	a := LPT(b, w)
	byMachine := make([][]int, b.NRight)
	for t, r := range a.Of {
		byMachine[r] = append(byMachine[r], t)
	}

	const maxRounds = 60
	for round := 0; round < maxRounds; round++ {
		if !improveOnce(b, w, a, byMachine) {
			break
		}
	}
	return a
}

// improveOnce scans for the best single move or swap that strictly
// reduces max(load_src, load_dst) without raising it elsewhere, applying
// the first strict improvement found from the most-loaded machine.
// Returns true if a change was made.
func improveOnce(b *Bipartite, w []float64, a *Assignment, byMachine [][]int) bool {
	src := argmax(a.Loads)
	// Try single moves off the bottleneck machine.
	type move struct {
		t, dst int
		gain   float64
	}
	var best move
	for _, t := range byMachine[src] {
		for _, dst := range b.Adj[t] {
			if dst == src {
				continue
			}
			// New max of the two machines after moving t.
			newMax := maxf(a.Loads[src]-w[t], a.Loads[dst]+w[t])
			oldMax := maxf(a.Loads[src], a.Loads[dst])
			if g := oldMax - newMax; g > best.gain+1e-15 {
				best = move{t: t, dst: dst, gain: g}
			}
		}
	}
	if best.gain > 0 {
		applyMove(w, a, byMachine, best.t, src, best.dst)
		return true
	}
	// Try swaps: exchange a heavy task on src with a lighter one elsewhere.
	for _, t1 := range byMachine[src] {
		for _, dst := range b.Adj[t1] {
			if dst == src {
				continue
			}
			for _, t2 := range byMachine[dst] {
				if w[t2] >= w[t1] || !canRun(b, t2, src) {
					continue
				}
				delta := w[t1] - w[t2]
				newMax := maxf(a.Loads[src]-delta, a.Loads[dst]+delta)
				if newMax < maxf(a.Loads[src], a.Loads[dst])-1e-15 {
					applyMove(w, a, byMachine, t1, src, dst)
					applyMove(w, a, byMachine, t2, dst, src)
					return true
				}
			}
		}
	}
	return false
}

func applyMove(w []float64, a *Assignment, byMachine [][]int, t, from, to int) {
	lst := byMachine[from]
	for i, v := range lst {
		if v == t {
			lst[i] = lst[len(lst)-1]
			byMachine[from] = lst[:len(lst)-1]
			break
		}
	}
	byMachine[to] = append(byMachine[to], t)
	a.Of[t] = to
	a.Loads[from] -= w[t]
	a.Loads[to] += w[t]
}

func canRun(b *Bipartite, t, r int) bool {
	for _, m := range b.Adj[t] {
		if m == r {
			return true
		}
	}
	return false
}

func argmax(xs []float64) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	_ = xs[best]
	return best
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
