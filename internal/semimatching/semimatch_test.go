package semimatching

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCompleteGraphShape(t *testing.T) {
	b := Complete(6, 3)
	if b.NLeft != 6 || b.NRight != 3 {
		t.Fatalf("bad sizes")
	}
	for l := 0; l < 6; l++ {
		if len(b.Adj[l]) != 3 {
			t.Fatalf("task %d has %d edges", l, len(b.Adj[l]))
		}
	}
}

func TestAddEdgeDeduplicates(t *testing.T) {
	b := NewBipartite(1, 2)
	b.AddEdge(0, 1)
	b.AddEdge(0, 1)
	if len(b.Adj[0]) != 1 {
		t.Fatalf("duplicate edge stored")
	}
}

func TestAddEdgeOutOfRangePanics(t *testing.T) {
	b := NewBipartite(1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.AddEdge(0, 1)
}

func TestSemiMatchCompleteBalanced(t *testing.T) {
	// 10 unit tasks on 3 machines: optimal loads are {4,3,3}.
	a := SemiMatch(Complete(10, 3))
	if a.Makespan() != 4 {
		t.Fatalf("makespan = %v, want 4 (loads %v)", a.Makespan(), a.Loads)
	}
	var total float64
	for _, l := range a.Loads {
		total += l
	}
	if total != 10 {
		t.Fatalf("loads sum to %v", total)
	}
}

func TestSemiMatchEveryTaskAssignedToCandidate(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nl, nr := 1+rng.Intn(40), 1+rng.Intn(8)
		b := NewBipartite(nl, nr)
		for l := 0; l < nl; l++ {
			deg := 1 + rng.Intn(nr)
			perm := rng.Perm(nr)
			for _, r := range perm[:deg] {
				b.AddEdge(l, r)
			}
		}
		a := SemiMatch(b)
		loads := make([]float64, nr)
		for l, r := range a.Of {
			if !canRun(b, l, r) {
				return false
			}
			loads[r]++
		}
		for r := range loads {
			if loads[r] != a.Loads[r] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Optimality: no alternating improvement must remain, which for the
// unweighted case is certified by comparing against exhaustive search on
// small instances.
func TestSemiMatchOptimalSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		nl, nr := 2+rng.Intn(6), 2+rng.Intn(3)
		b := NewBipartite(nl, nr)
		for l := 0; l < nl; l++ {
			deg := 1 + rng.Intn(nr)
			perm := rng.Perm(nr)
			for _, r := range perm[:deg] {
				b.AddEdge(l, r)
			}
		}
		got := SemiMatch(b)
		want := bruteForceFlow(b)
		if math.Abs(got.CostFlow()-want) > 1e-9 {
			t.Fatalf("trial %d: flow cost %v, optimal %v (loads %v)",
				trial, got.CostFlow(), want, got.Loads)
		}
	}
}

// bruteForceFlow exhaustively minimizes the total-flow objective.
func bruteForceFlow(b *Bipartite) float64 {
	best := math.Inf(1)
	loads := make([]float64, b.NRight)
	var rec func(l int)
	rec = func(l int) {
		if l == b.NLeft {
			var c float64
			for _, ld := range loads {
				c += ld * (ld + 1) / 2
			}
			if c < best {
				best = c
			}
			return
		}
		for _, r := range b.Adj[l] {
			loads[r]++
			rec(l + 1)
			loads[r]--
		}
	}
	rec(0)
	return best
}

// A star-shaped adversarial instance: greedy insertion order matters, the
// clean-up pass must still reach the optimum.
func TestSemiMatchStar(t *testing.T) {
	// Tasks 0..3 can only use machine 0; tasks 4..7 can use 0 or 1;
	// machine 2 only reachable from task 7.
	b := NewBipartite(8, 3)
	for l := 0; l < 4; l++ {
		b.AddEdge(l, 0)
	}
	for l := 4; l < 8; l++ {
		b.AddEdge(l, 0)
		b.AddEdge(l, 1)
	}
	b.AddEdge(7, 2)
	a := SemiMatch(b)
	// Optimal: loads {4,3,1} → makespan 4 (tasks 0-3 pin machine 0).
	if a.Makespan() != 4 {
		t.Fatalf("makespan %v, loads %v", a.Makespan(), a.Loads)
	}
	if a.CostFlow() != bruteForceFlow(b) {
		t.Fatalf("not optimal: %v vs %v", a.CostFlow(), bruteForceFlow(b))
	}
}

func TestSemiMatchNoCandidatesPanics(t *testing.T) {
	b := NewBipartite(2, 2)
	b.AddEdge(0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for isolated task")
		}
	}()
	SemiMatch(b)
}

func TestLPTComplete(t *testing.T) {
	// Weights 5,4,3,2,2 on 2 machines: LPT places 5|4, 3→(4), 2→(5), 2→(7)
	// giving loads {9,7}; the optimum is {5,3}|{4,2,2} = 8. The swap
	// refinement in WeightedSemiMatch must recover the optimum.
	b := Complete(5, 2)
	w := []float64{5, 4, 3, 2, 2}
	a := LPT(b, w)
	if a.Makespan() != 9 {
		t.Fatalf("LPT makespan = %v, loads %v", a.Makespan(), a.Loads)
	}
	r := WeightedSemiMatch(b, w)
	if r.Makespan() != 8 {
		t.Fatalf("refined makespan = %v, loads %v, want 8", r.Makespan(), r.Loads)
	}
}

func TestLPTWeightMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LPT(Complete(3, 2), []float64{1, 2})
}

func TestWeightedSemiMatchRespectsEdges(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nl, nr := 1+rng.Intn(30), 1+rng.Intn(6)
		b := NewBipartite(nl, nr)
		w := make([]float64, nl)
		for l := 0; l < nl; l++ {
			w[l] = rng.Float64()*9 + 1
			deg := 1 + rng.Intn(nr)
			perm := rng.Perm(nr)
			for _, r := range perm[:deg] {
				b.AddEdge(l, r)
			}
		}
		a := WeightedSemiMatch(b, w)
		loads := make([]float64, nr)
		for l, r := range a.Of {
			if !canRun(b, l, r) {
				return false
			}
			loads[r] += w[l]
		}
		for r := range loads {
			if math.Abs(loads[r]-a.Loads[r]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// On complete graphs the refined result must always be at least as good
// as plain LPT, and within the classical LPT bound of the trivial lower
// bounds.
func TestWeightedSemiMatchQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		nl, nr := 10+rng.Intn(90), 2+rng.Intn(6)
		b := Complete(nl, nr)
		w := make([]float64, nl)
		var total, wmax float64
		for i := range w {
			w[i] = math.Exp(rng.NormFloat64() * 1.5) // heavy-tailed, like ERI tasks
			total += w[i]
			wmax = math.Max(wmax, w[i])
		}
		lpt := LPT(b, w)
		ref := WeightedSemiMatch(b, w)
		if ref.Makespan() > lpt.Makespan()+1e-9 {
			t.Fatalf("refinement regressed: %v > %v", ref.Makespan(), lpt.Makespan())
		}
		lb := math.Max(total/float64(nr), wmax)
		if ref.Makespan() > lb*4/3+wmax {
			t.Fatalf("makespan %v too far above lower bound %v", ref.Makespan(), lb)
		}
	}
}

// Refinement must fix a case plain greedy-by-order would botch but LPT
// plus moves handles: bottleneck machine sheds work over restricted edges.
func TestWeightedSemiMatchMovesOffBottleneck(t *testing.T) {
	// Machine 0 initially attracts everything; tasks 2 and 3 can migrate.
	b := NewBipartite(4, 2)
	w := []float64{6, 5, 4, 3}
	b.AddEdge(0, 0)
	b.AddEdge(1, 0)
	b.AddEdge(2, 0)
	b.AddEdge(2, 1)
	b.AddEdge(3, 0)
	b.AddEdge(3, 1)
	a := WeightedSemiMatch(b, w)
	// Optimal: {6,5} on 0 and {4,3} on 1 → makespan 11.
	if a.Makespan() > 11+1e-9 {
		t.Fatalf("makespan %v, loads %v", a.Makespan(), a.Loads)
	}
}

func TestAssignmentAggregates(t *testing.T) {
	a := &Assignment{Of: []int{0, 0, 1}, Loads: []float64{2, 1}}
	if a.Makespan() != 2 {
		t.Fatal("Makespan")
	}
	if a.CostFlow() != 3+1 {
		t.Fatalf("CostFlow = %v", a.CostFlow())
	}
}
