package semimatching_test

import (
	"fmt"

	"execmodels/internal/semimatching"
)

// Assign five unit tasks to machines where task 4 can only run on
// machine 2: the optimal semi-matching balances the rest around it.
func ExampleSemiMatch() {
	b := semimatching.NewBipartite(5, 3)
	for task := 0; task < 4; task++ {
		b.AddEdge(task, 0)
		b.AddEdge(task, 1)
	}
	b.AddEdge(4, 2)
	a := semimatching.SemiMatch(b)
	fmt.Println("loads:", a.Loads)
	fmt.Println("makespan:", a.Makespan())
	// Output:
	// loads: [2 2 1]
	// makespan: 2
}

// Weighted tasks: LPT places 5 and 4 apart, then the refinement pass
// recovers the optimal split that plain LPT misses.
func ExampleWeightedSemiMatch() {
	b := semimatching.Complete(5, 2)
	w := []float64{5, 4, 3, 2, 2}
	lpt := semimatching.LPT(b, w)
	refined := semimatching.WeightedSemiMatch(b, w)
	fmt.Println("LPT makespan:", lpt.Makespan())
	fmt.Println("refined makespan:", refined.Makespan())
	// Output:
	// LPT makespan: 9
	// refined makespan: 8
}
