package core

import (
	"container/heap"
	"math/rand"

	"execmodels/internal/cluster"
	"execmodels/internal/obs"
)

// StealPolicy selects what a successful steal takes from the victim.
type StealPolicy int

const (
	// StealHalf takes the older half of the victim's queue (default).
	StealHalf StealPolicy = iota
	// StealOne takes a single task.
	StealOne
)

// VictimPolicy selects how thieves pick their victims.
type VictimPolicy int

const (
	// RandomVictim picks victims uniformly at random (default; requires
	// no global information).
	RandomVictim VictimPolicy = iota
	// MostLoadedVictim picks the rank with the longest queue — an oracle
	// policy that assumes free global load information, used as an
	// ablation upper bound.
	MostLoadedVictim
)

// WorkStealing is the distributed-dynamic execution model: tasks start in
// per-rank queues under a static block distribution; ranks execute
// locally and steal from others when they run dry. Steal round-trips are
// charged at network cost; failed attempts are charged too.
type WorkStealing struct {
	Steal  StealPolicy
	Victim VictimPolicy
	Seed   int64

	// Hierarchical prefers victims on the thief's own node: a local
	// victim with work is stolen from at intra-node cost; only a
	// work-less node falls back to remote steals. Requires a machine with
	// CoresPerNode > 1 to differ from flat stealing.
	Hierarchical bool
}

// Name implements Model.
func (ws WorkStealing) Name() string {
	switch {
	case ws.Hierarchical:
		return "work-stealing-hier"
	case ws.Steal == StealOne && ws.Victim == MostLoadedVictim:
		return "work-stealing-one-maxvictim"
	case ws.Steal == StealOne:
		return "work-stealing-one"
	case ws.Victim == MostLoadedVictim:
		return "work-stealing-maxvictim"
	default:
		return "work-stealing"
	}
}

// Run implements Model (via the scheduler seam's stealing engine).
func (ws WorkStealing) Run(w *Workload, m *cluster.Machine) *Result {
	return runStealingSim(ws.Name(), ws, w, m)
}

// runStealingSim is the simulated execution engine of every work-stealing
// plan; name is the reporting model name (the StealingSched plans reuse
// this engine under their own names).
func runStealingSim(name string, ws WorkStealing, w *Workload, m *cluster.Machine) *Result {
	res := newResult(name, m.P)
	rng := rand.New(rand.NewSource(ws.Seed))
	n := len(w.Tasks)

	// Initial static block distribution of task IDs.
	queues := make([][]int, m.P)
	per := (n + m.P - 1) / m.P
	for i := 0; i < n; i++ {
		r := i / per
		if r >= m.P {
			r = m.P - 1
		}
		queues[r] = append(queues[r], i)
	}

	seen := make([]map[int]bool, m.P)
	fails := make([]int, m.P)
	for r := range seen {
		seen[r] = map[int]bool{}
	}
	remaining := n

	h := make(rankHeap, 0, m.P)
	for r := 0; r < m.P; r++ {
		heap.Push(&h, rankEvent{rank: r, time: 0})
	}
	for h.Len() > 0 {
		ev := heap.Pop(&h).(rankEvent)
		r := ev.rank

		if len(queues[r]) > 0 {
			// Execute the next local task (owner side: newest first, so
			// stolen work is the coldest — matches deque semantics).
			id := queues[r][len(queues[r])-1]
			queues[r] = queues[r][:len(queues[r])-1]
			task := &w.Tasks[id]
			t := ev.time + m.TaskTimeAt(r, task.Cost, ev.time)
			m.Trace.Record(cluster.Interval{Rank: r, Start: ev.time, End: t, TaskID: task.ID, Activity: "task"})
			res.addBusy(r, t-ev.time)
			res.ranTask(r)
			for _, b := range task.Blocks {
				owner := blockOwner(b, m.P)
				if owner == r || seen[r][b] {
					continue
				}
				seen[r][b] = true
				ct := 2 * m.XferTimeBetween(owner, r, w.BlockBytes[b])
				m.Trace.Record(cluster.Interval{Rank: r, Start: t, End: t + ct, TaskID: -1, Activity: "comm", Src: owner, Dst: r, Bytes: w.BlockBytes[b]})
				res.addComm(r, ct, w.BlockBytes[b])
				t += ct
			}
			remaining--
			fails[r] = 0
			heap.Push(&h, rankEvent{rank: r, time: t})
			continue
		}

		if remaining == 0 {
			res.FinishTime[r] = ev.time
			continue
		}

		// Steal attempt.
		victim := ws.pickVictim(r, queues, rng, m)
		cost := m.RoundTrip()
		if victim >= 0 {
			cost = m.RoundTripBetween(r, victim)
		}
		if victim >= 0 && len(queues[victim]) > 0 {
			var loot []int
			if ws.Steal == StealOne {
				loot = []int{queues[victim][0]}
				queues[victim] = queues[victim][1:]
			} else {
				take := (len(queues[victim]) + 1) / 2
				loot = append(loot, queues[victim][:take]...)
				queues[victim] = queues[victim][take:]
			}
			// Stolen tasks arrive oldest-first at the thief's queue tail
			// is wrong — keep them so the thief pops them in victim order.
			for i, j := 0, len(loot)-1; i < j; i, j = i+1, j-1 {
				loot[i], loot[j] = loot[j], loot[i]
			}
			queues[r] = append(queues[r], loot...)
			res.count(obs.CSteals, r, 1)
			if !m.SameNode(r, victim) {
				res.count(obs.CRemoteSteals, r, 1)
			}
			fails[r] = 0
			// Transferring task descriptors: one extra latency per steal.
			if m.SameNode(r, victim) {
				cost += m.RoundTripBetween(r, victim) / 2
			} else {
				cost += m.Cfg.Latency
			}
		} else {
			res.count(obs.CFailedSteals, r, 1)
			fails[r]++
			// Exponential backoff caps the event-count blowup while the
			// last tasks drain.
			backoff := float64(uint(1)<<min(fails[r], 10)) * m.Cfg.Latency
			cost += backoff
		}
		res.addTime(obs.MSteal, r, cost)
		m.Trace.Record(cluster.Interval{Rank: r, Start: ev.time, End: ev.time + cost, TaskID: -1, Activity: "steal"})
		heap.Push(&h, rankEvent{rank: r, time: ev.time + cost})
	}
	res.finalize()
	return res
}

func (ws WorkStealing) pickVictim(self int, queues [][]int, rng *rand.Rand, m *cluster.Machine) int {
	p := len(queues)
	if p == 1 {
		return -1
	}
	if ws.Hierarchical {
		// Prefer a same-node victim that has work; fall back to remote.
		var local []int
		for r := 0; r < p; r++ {
			if r != self && m.SameNode(self, r) && len(queues[r]) > 0 {
				local = append(local, r)
			}
		}
		if len(local) > 0 {
			return local[rng.Intn(len(local))]
		}
	}
	if ws.Victim == MostLoadedVictim {
		best, bestLen := -1, 0
		for r := 0; r < p; r++ {
			if r != self && len(queues[r]) > bestLen {
				best, bestLen = r, len(queues[r])
			}
		}
		return best
	}
	v := rng.Intn(p - 1)
	if v >= self {
		v++
	}
	return v
}
