package core

import (
	"encoding/json"
	"fmt"
	"io"
)

// workloadJSON is the stable on-disk representation of a Workload.
type workloadJSON struct {
	Version    int    `json:"version"`
	Name       string `json:"name"`
	NumBlocks  int    `json:"numBlocks"`
	BlockBytes []int  `json:"blockBytes"`
	Tasks      []struct {
		ID      int     `json:"id"`
		Cost    float64 `json:"cost"`
		EstCost float64 `json:"estCost"`
		Blocks  []int   `json:"blocks"`
	} `json:"tasks"`
}

const workloadVersion = 1

// WriteWorkload serializes w as JSON, so expensive chemistry workloads
// (Schwarz screening over thousands of shell pairs) can be generated once
// and replayed across experiment runs and machines.
func WriteWorkload(out io.Writer, w *Workload) error {
	doc := workloadJSON{
		Version:    workloadVersion,
		Name:       w.Name,
		NumBlocks:  w.NumBlocks,
		BlockBytes: w.BlockBytes,
	}
	for _, t := range w.Tasks {
		doc.Tasks = append(doc.Tasks, struct {
			ID      int     `json:"id"`
			Cost    float64 `json:"cost"`
			EstCost float64 `json:"estCost"`
			Blocks  []int   `json:"blocks"`
		}{t.ID, t.Cost, t.EstCost, t.Blocks})
	}
	enc := json.NewEncoder(out)
	return enc.Encode(doc)
}

// ReadWorkload deserializes a workload written by WriteWorkload,
// validating internal consistency (block references in range, positive
// costs).
func ReadWorkload(in io.Reader) (*Workload, error) {
	var doc workloadJSON
	if err := json.NewDecoder(in).Decode(&doc); err != nil {
		return nil, fmt.Errorf("core: bad workload JSON: %w", err)
	}
	if doc.Version != workloadVersion {
		return nil, fmt.Errorf("core: workload version %d, want %d", doc.Version, workloadVersion)
	}
	if len(doc.BlockBytes) != doc.NumBlocks {
		return nil, fmt.Errorf("core: %d block sizes for %d blocks", len(doc.BlockBytes), doc.NumBlocks)
	}
	w := &Workload{
		Name:       doc.Name,
		NumBlocks:  doc.NumBlocks,
		BlockBytes: doc.BlockBytes,
	}
	for i, t := range doc.Tasks {
		if t.Cost < 0 || t.EstCost < 0 {
			return nil, fmt.Errorf("core: task %d has negative cost", i)
		}
		for _, b := range t.Blocks {
			if b < 0 || b >= doc.NumBlocks {
				return nil, fmt.Errorf("core: task %d references block %d of %d", i, b, doc.NumBlocks)
			}
		}
		w.Tasks = append(w.Tasks, Task{ID: t.ID, Cost: t.Cost, EstCost: t.EstCost, Blocks: t.Blocks})
	}
	return w, nil
}
