package core

import (
	"testing"

	"execmodels/internal/chem"
	"execmodels/internal/linalg"
)

// All wall-clock executors must reproduce the serial Fock matrix exactly
// (up to floating-point accumulation order).
func TestWallExecutorsMatchSerial(t *testing.T) {
	fw := fockWorkload(t, 2)
	bs := fw.Basis
	mol := chem.WaterCluster(2, 11)
	h := chem.CoreHamiltonian(bs, mol)
	s := chem.Overlap(bs)
	x := linalg.InvSqrtSym(s, 1e-10)
	// Density from the core guess.
	fp := linalg.TripleProduct(x, h)
	_, cp := linalg.EigenSym(fp)
	c := linalg.MatMul(x, cp)
	n := bs.NBF
	d := linalg.NewMatrix(n, n)
	nocc := mol.NumElectrons() / 2
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var v float64
			for k := 0; k < nocc; k++ {
				v += c.At(i, k) * c.At(j, k)
			}
			d.Set(i, j, 2*v)
		}
	}

	want := fw.BuildFock(h, d)
	for _, tc := range []struct {
		name string
		run  func() *WallResult
	}{
		{"static", func() *WallResult { return WallStatic(fw, h, d, 4) }},
		{"dynamic", func() *WallResult { return WallDynamic(fw, h, d, 4) }},
		{"stealing", func() *WallResult { return WallStealing(fw, h, d, 4, 7) }},
	} {
		res := tc.run()
		if diff := res.F.MaxAbsDiff(want); diff > 1e-9 {
			t.Errorf("%s: Fock differs from serial by %v", tc.name, diff)
		}
		if res.Elapsed <= 0 {
			t.Errorf("%s: no elapsed time", tc.name)
		}
		if len(res.WorkerBusy) != 4 {
			t.Errorf("%s: %d workers recorded", tc.name, len(res.WorkerBusy))
		}
	}
}

func TestWallDynamicCounterOps(t *testing.T) {
	fw := fockWorkload(t, 1)
	bs := fw.Basis
	n := bs.NBF
	h := linalg.NewMatrix(n, n)
	d := linalg.Identity(n)
	res := WallDynamic(fw, h, d, 3)
	// One NextVal per task plus one final miss per worker.
	want := int64(len(fw.Tasks) + 3)
	if res.CounterOps != want {
		t.Errorf("counter ops = %d, want %d", res.CounterOps, want)
	}
}

func TestWallSingleWorker(t *testing.T) {
	fw := fockWorkload(t, 1)
	n := fw.Basis.NBF
	h := linalg.NewMatrix(n, n)
	d := linalg.Identity(n)
	serial := fw.BuildFock(h, d)
	res := WallStealing(fw, h, d, 1, 1)
	if diff := res.F.MaxAbsDiff(serial); diff > 1e-10 {
		t.Errorf("single-worker stealing differs by %v", diff)
	}
	if res.Steals != 0 {
		t.Errorf("%d steals with one worker", res.Steals)
	}
}

func TestWallBadWorkersPanics(t *testing.T) {
	fw := fockWorkload(t, 1)
	n := fw.Basis.NBF
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	WallStatic(fw, linalg.NewMatrix(n, n), linalg.Identity(n), 0)
}

// SCF through each parallel builder must converge to the serial energy.
func TestParallelSCFEnergyMatch(t *testing.T) {
	mol := chem.Water()
	bs, err := chem.NewBasis("sto-3g", mol)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := chem.RunSCF(mol, bs, chem.SCFOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"static", "dynamic", "stealing"} {
		builder, err := ParallelFockBuilder(mode, 4)
		if err != nil {
			t.Fatal(err)
		}
		res, err := chem.RunSCF(mol, bs, chem.SCFOptions{}, builder)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Errorf("%s: SCF did not converge", mode)
		}
		if diff := res.Energy - ref.Energy; diff > 1e-8 || diff < -1e-8 {
			t.Errorf("%s: energy %v differs from serial %v", mode, res.Energy, ref.Energy)
		}
	}
	if _, err := ParallelFockBuilder("bogus", 2); err == nil {
		t.Error("expected error for unknown mode")
	}
}
