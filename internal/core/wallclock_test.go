package core

import (
	"testing"

	"execmodels/internal/chem"
	"execmodels/internal/linalg"
)

// wallDensity builds a core-guess density so the equivalence tests
// exercise realistically structured J/K contractions.
func wallDensity(fw *chem.FockWorkload, mol *chem.Molecule, h *linalg.Matrix) *linalg.Matrix {
	bs := fw.Basis
	s := chem.Overlap(bs)
	x := linalg.InvSqrtSym(s, 1e-10)
	fp := linalg.TripleProduct(x, h)
	_, cp := linalg.EigenSym(fp)
	c := linalg.MatMul(x, cp)
	n := bs.NBF
	d := linalg.NewMatrix(n, n)
	nocc := mol.NumElectrons() / 2
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var v float64
			for k := 0; k < nocc; k++ {
				v += c.At(i, k) * c.At(j, k)
			}
			d.Set(i, j, 2*v)
		}
	}
	return d
}

// All wall-clock executors must reproduce the serial Fock matrix exactly
// (up to floating-point accumulation order).
func TestWallExecutorsMatchSerial(t *testing.T) {
	fw := fockWorkload(t, 2)
	mol := chem.WaterCluster(2, 11)
	h := chem.CoreHamiltonian(fw.Basis, mol)
	d := wallDensity(fw, mol, h)

	want := fw.BuildFock(h, d)
	for _, tc := range []struct {
		name string
		run  func() *WallResult
	}{
		{"static", func() *WallResult { return WallStatic(fw, h, d, 4) }},
		{"dynamic", func() *WallResult { return WallDynamic(fw, h, d, 4, 1) }},
		{"stealing", func() *WallResult { return WallStealing(fw, h, d, 4, 7) }},
	} {
		res := tc.run()
		if diff := res.F.MaxAbsDiff(want); diff > 1e-9 {
			t.Errorf("%s: Fock differs from serial by %v", tc.name, diff)
		}
		if res.Elapsed <= 0 {
			t.Errorf("%s: no elapsed time", tc.name)
		}
		if len(res.WorkerBusy) != 4 {
			t.Errorf("%s: %d workers recorded", tc.name, len(res.WorkerBusy))
		}
	}
}

// Cross-mode equivalence under awkward task/worker shapes: non-divisible
// counts, more workers than tasks, and dynamic block sizes that do not
// divide the task count. Every combination must reproduce the serial
// Fock matrix. CI runs this package under -race, which doubles as the
// concurrency check on the padded per-worker state.
func TestWallModesEquivalenceMatrix(t *testing.T) {
	fw := fockWorkload(t, 2)
	mol := chem.WaterCluster(2, 11)
	h := chem.CoreHamiltonian(fw.Basis, mol)
	d := wallDensity(fw, mol, h)
	want := fw.BuildFock(h, d)
	nt := len(fw.Tasks)

	workerCounts := []int{1, 3, 5}
	if nt+1 > 5 {
		workerCounts = append(workerCounts, nt+1) // more workers than tasks
	}
	for _, workers := range workerCounts {
		for _, tc := range []struct {
			name string
			run  func() *WallResult
		}{
			{"static", func() *WallResult { return WallStatic(fw, h, d, workers) }},
			{"dynamic/b1", func() *WallResult { return WallDynamic(fw, h, d, workers, 1) }},
			{"dynamic/b3", func() *WallResult { return WallDynamic(fw, h, d, workers, 3) }},
			{"dynamic/b7", func() *WallResult { return WallDynamic(fw, h, d, workers, 7) }},
			{"stealing", func() *WallResult { return WallStealing(fw, h, d, workers, 13) }},
		} {
			res := tc.run()
			if diff := res.F.MaxAbsDiff(want); diff > 1e-9 {
				t.Errorf("%s workers=%d: Fock differs from serial by %v", tc.name, workers, diff)
			}
		}
	}
}

func TestWallDynamicCounterOps(t *testing.T) {
	fw := fockWorkload(t, 1)
	bs := fw.Basis
	n := bs.NBF
	h := linalg.NewMatrix(n, n)
	d := linalg.Identity(n)
	res := WallDynamic(fw, h, d, 3, 1)
	// One fetch per task plus one final miss per worker.
	want := int64(len(fw.Tasks) + 3)
	if res.CounterOps != want {
		t.Errorf("counter ops = %d, want %d", res.CounterOps, want)
	}
}

// Regression (satellite: dynamic block size): with a fetch block of B the
// counter must be hit exactly ceil(n/B) times plus one final miss per
// worker — the whole point of blocked NXTVAL is fewer counter ops.
func TestWallDynamicBlockedCounterOps(t *testing.T) {
	fw := fockWorkload(t, 1)
	n := fw.Basis.NBF
	h := linalg.NewMatrix(n, n)
	d := linalg.Identity(n)
	serial := fw.BuildFock(h, d)
	nt := len(fw.Tasks)
	for _, tc := range []struct{ workers, block int }{
		{1, 2}, {3, 2}, {3, 4}, {2, 1000}, // incl. block > #tasks
	} {
		res := WallDynamic(fw, h, d, tc.workers, tc.block)
		want := int64((nt+tc.block-1)/tc.block + tc.workers)
		if res.CounterOps != want {
			t.Errorf("workers=%d block=%d: counter ops = %d, want %d",
				tc.workers, tc.block, res.CounterOps, want)
		}
		if diff := res.F.MaxAbsDiff(serial); diff > 1e-9 {
			t.Errorf("workers=%d block=%d: Fock differs by %v", tc.workers, tc.block, diff)
		}
	}
	// A non-positive block must degrade to the classic NXTVAL, not panic.
	if res := WallDynamic(fw, h, d, 2, 0); res.CounterOps != int64(nt+2) {
		t.Errorf("block=0: counter ops = %d, want %d", res.CounterOps, nt+2)
	}
}

func TestWallSingleWorker(t *testing.T) {
	fw := fockWorkload(t, 1)
	n := fw.Basis.NBF
	h := linalg.NewMatrix(n, n)
	d := linalg.Identity(n)
	serial := fw.BuildFock(h, d)
	res := WallStealing(fw, h, d, 1, 1)
	if diff := res.F.MaxAbsDiff(serial); diff > 1e-10 {
		t.Errorf("single-worker stealing differs by %v", diff)
	}
	if res.Steals != 0 {
		t.Errorf("%d steals with one worker", res.Steals)
	}
}

// Regression (satellite: seed plumbing): the seed handed to WallStealing
// — and the one wallExec threads through from WallOptions, the path
// ParallelFockBuilder uses — must be the seed the executor actually ran
// with. ParallelFockBuilder("stealing", ...) used to hard-code seed 1.
func TestWallStealingSeedPlumbed(t *testing.T) {
	fw := fockWorkload(t, 1)
	n := fw.Basis.NBF
	h := linalg.NewMatrix(n, n)
	d := linalg.Identity(n)
	if res := WallStealing(fw, h, d, 2, 42); res.StealSeed != 42 {
		t.Errorf("WallStealing ran with seed %d, want 42", res.StealSeed)
	}
	res, err := wallExec("stealing", fw, h, d, 2, WallOptions{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if res.StealSeed != 99 {
		t.Errorf("wallExec ran with seed %d, want 99 (hard-coded seed regression)", res.StealSeed)
	}
}

// Regression (satellite: tail spin): idle thieves must back off instead
// of hammering StealHalf at 100% CPU. The workload is a single task on
// many workers — the worst case, where every other worker is idle for
// the whole build. Without backoff the failed-round count explodes into
// the millions; with yields + bounded sleeps it stays small.
func TestWallStealingTailBackoff(t *testing.T) {
	mol := chem.WaterCluster(2, 11)
	bs, err := chem.NewBasis("sto-3g", mol)
	if err != nil {
		t.Fatal(err)
	}
	// One giant task: every bra pair in a single block.
	fw := chem.BuildFockWorkload(bs, 1e-10, 1<<20)
	if len(fw.Tasks) != 1 {
		t.Fatalf("expected 1 task, got %d", len(fw.Tasks))
	}
	h := chem.CoreHamiltonian(bs, mol)
	d := linalg.Identity(bs.NBF)
	res := WallStealing(fw, h, d, 8, 3)
	serial := fw.BuildFock(h, d)
	if diff := res.F.MaxAbsDiff(serial); diff > 1e-9 {
		t.Errorf("Fock differs by %v", diff)
	}
	// 7 idle workers for the full build. The backoff caps failed rounds
	// at roughly (build time / max pause) per worker; allow a generous
	// margin. The pre-fix spin loop exceeds this by orders of magnitude.
	const maxRetries = 100_000
	if res.StealRetry > maxRetries {
		t.Errorf("idle workers burned %d failed steal rounds, want <= %d (tail spin regression)",
			res.StealRetry, maxRetries)
	}
}

// The former TestWallPerWorkerStatePadded (unsafe.Sizeof checks on
// padCell/dynSpan/atomicInt64Pad) is superseded by the padcheck
// analyzer: the //hotpath:padded annotations on those types make
// execlint verify cache-line sizing and atomic-field isolation on the
// gc/amd64 layout.

func TestWallBadWorkersPanics(t *testing.T) {
	fw := fockWorkload(t, 1)
	n := fw.Basis.NBF
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	WallStatic(fw, linalg.NewMatrix(n, n), linalg.Identity(n), 0)
}

// SCF through each parallel builder must converge to the serial energy.
func TestParallelSCFEnergyMatch(t *testing.T) {
	mol := chem.Water()
	bs, err := chem.NewBasis("sto-3g", mol)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := chem.RunSCF(mol, bs, chem.SCFOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"static", "dynamic", "stealing"} {
		builder, err := ParallelFockBuilder(mode, 4, WallOptions{Seed: 3, Block: 2})
		if err != nil {
			t.Fatal(err)
		}
		res, err := chem.RunSCF(mol, bs, chem.SCFOptions{}, builder)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Errorf("%s: SCF did not converge", mode)
		}
		if diff := res.Energy - ref.Energy; diff > 1e-8 || diff < -1e-8 {
			t.Errorf("%s: energy %v differs from serial %v", mode, res.Energy, ref.Energy)
		}
	}
	if _, err := ParallelFockBuilder("bogus", 2, WallOptions{}); err == nil {
		t.Error("expected error for unknown mode")
	}
}
