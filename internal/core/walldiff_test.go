package core

import (
	"runtime"
	"testing"

	"execmodels/internal/chem"
	"execmodels/internal/linalg"
)

// The differential equivalence matrix: every wall-clock executor, at
// every worker count and task granularity, must reproduce the retained
// serial baseline's Fock matrix to fockDiffTol. The baseline
// (chem.BuildFockBaseline) still screens inside the worker loop, so the
// comparison also pins generation-time screening (FockTask.Kets) against
// the original in-loop bound test on real molecules.
const fockDiffTol = 1e-11

// wallDiffExecs is the executor × granularity axis of the matrix.
type wallDiffExec struct {
	name string
	mode string
	opt  WallOptions
}

func wallDiffExecs() []wallDiffExec {
	return []wallDiffExec{
		{"static", "static", WallOptions{}},
		{"dynamic/b1", "dynamic", WallOptions{Block: 1}},
		{"dynamic/b3", "dynamic", WallOptions{Block: 3}},
		{"dynamic/b7", "dynamic", WallOptions{Block: 7}},
		{"stealing", "stealing", WallOptions{Seed: 13}},
	}
}

// wallDiffWorkers is the worker-count axis: serial-on-the-executor,
// a non-divisible oversubscribed count, and the host's real parallelism.
func wallDiffWorkers() []int {
	set := []int{1, 3}
	if n := runtime.NumCPU(); n != 1 && n != 3 {
		set = append(set, n)
	}
	return set
}

// serialSpinJK is the serial unrestricted reference sweep.
func serialSpinJK(fw *chem.FockWorkload, dTot, dA, dB *linalg.Matrix) (j, kA, kB *linalg.Matrix) {
	n := fw.Basis.NBF
	j = linalg.NewMatrix(n, n)
	kA = linalg.NewMatrix(n, n)
	kB = linalg.NewMatrix(n, n)
	s := fw.NewScratch()
	for i := range fw.Tasks {
		fw.ExecuteTaskSpinScratch(&fw.Tasks[i], dTot, dA, dB, j, kA, kB, s)
	}
	return j, kA, kB
}

// TestWallDifferentialMatrix sweeps {molecule} × {RHF, UHF} × {executor ×
// granularity} × {workers} and holds every cell to the serial baseline at
// fockDiffTol. Screening thresholds are chosen per molecule so the large
// systems stay affordable while still pruning aggressively — the pruning
// itself is what the baseline comparison validates. Expensive cells
// shrink under -race (instrumentation is ~10× on this compute) and
// -short drops the largest molecule.
func TestWallDifferentialMatrix(t *testing.T) {
	type molCase struct {
		name      string
		waters    int
		threshold float64
	}
	mols := []molCase{
		{"water", 1, 1e-10},
		{"waters4", 4, 1e-8},
		{"waters8", 8, 1e-4},
	}
	for _, mc := range mols {
		t.Run(mc.name, func(t *testing.T) {
			if mc.waters >= 8 && (testing.Short() || raceEnabled) {
				t.Skip("large molecule: skipped under -short and -race")
			}
			reduced := raceEnabled && mc.waters >= 4
			mol := chem.WaterCluster(mc.waters, 11)
			bs, err := chem.NewBasis("sto-3g", mol)
			if err != nil {
				t.Fatal(err)
			}
			fw := chem.BuildFockWorkload(bs, mc.threshold, 4)
			h := chem.CoreHamiltonian(bs, mol)
			d := wallDensity(fw, mol, h)
			refF := fw.BuildFockBaseline(h, d)

			// Unrestricted densities with genuinely split spins.
			dA := d.Clone()
			dA.Scale(0.55)
			dB := d.Clone()
			dB.Scale(0.45)
			dTot := dA.Clone()
			dTot.AddScaled(1, dB)
			refJ, refKA, refKB := serialSpinJK(fw, dTot, dA, dB)

			execs := wallDiffExecs()
			workers := wallDiffWorkers()
			if reduced {
				execs = []wallDiffExec{execs[0], execs[2], execs[4]} // one per discipline
				workers = []int{3}
			}
			for _, ex := range execs {
				for _, wk := range workers {
					res, err := wallExec(ex.mode, fw, h, d, wk, ex.opt)
					if err != nil {
						t.Fatal(err)
					}
					if diff := res.F.MaxAbsDiff(refF); diff > fockDiffTol {
						t.Errorf("RHF %s workers=%d: Fock differs from baseline by %g", ex.name, wk, diff)
					}

					// UHF on the largest molecule only at one worker count:
					// the spin build costs ~2× and the executor plumbing is
					// identical across counts.
					if mc.waters >= 8 && wk != 3 {
						continue
					}
					spin, err := WallUHF(ex.mode, fw, dTot, dA, dB, wk, ex.opt)
					if err != nil {
						t.Fatal(err)
					}
					if diff := spin.J.MaxAbsDiff(refJ); diff > fockDiffTol {
						t.Errorf("UHF %s workers=%d: J differs by %g", ex.name, wk, diff)
					}
					if diff := spin.KA.MaxAbsDiff(refKA); diff > fockDiffTol {
						t.Errorf("UHF %s workers=%d: Kα differs by %g", ex.name, wk, diff)
					}
					if diff := spin.KB.MaxAbsDiff(refKB); diff > fockDiffTol {
						t.Errorf("UHF %s workers=%d: Kβ differs by %g", ex.name, wk, diff)
					}
				}
			}
		})
	}
}

// The static schedule has a fixed task→worker map and a post-wg.Wait
// merge in worker order, so its result must be bit-identical run to run —
// and at one worker, bit-identical to the serial build (same accumulation
// order throughout).
func TestWallStaticBitwiseDeterministic(t *testing.T) {
	fw := fockWorkload(t, 2)
	mol := chem.WaterCluster(2, 11)
	h := chem.CoreHamiltonian(fw.Basis, mol)
	d := wallDensity(fw, mol, h)
	serial := fw.BuildFock(h, d)
	if res := WallStatic(fw, h, d, 1); res.F.MaxAbsDiff(serial) != 0 {
		t.Errorf("single-worker static differs from serial by %g, want bitwise equality",
			res.F.MaxAbsDiff(serial))
	}
	a := WallStatic(fw, h, d, 3)
	b := WallStatic(fw, h, d, 3)
	if diff := a.F.MaxAbsDiff(b.F); diff != 0 {
		t.Errorf("static 3-worker builds differ by %g between runs, want bitwise determinism", diff)
	}
}

// WallOptions.PairBlock re-blocks the task decomposition without changing
// the quartet multiset or the global digestion order, so serial results
// are bitwise invariant and parallel results stay within the matrix
// tolerance.
func TestWallPairBlockEquivalence(t *testing.T) {
	fw := fockWorkload(t, 2)
	mol := chem.WaterCluster(2, 11)
	h := chem.CoreHamiltonian(fw.Basis, mol)
	d := wallDensity(fw, mol, h)
	serial := fw.BuildFock(h, d)
	for _, pb := range []int{1, 2, 7, 64} {
		res, err := wallExec("static", fw.Reblock(pb), h, d, 1, WallOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if diff := res.F.MaxAbsDiff(serial); diff != 0 {
			t.Errorf("pairblock %d: single-worker static differs by %g, want bitwise", pb, diff)
		}
		for _, ex := range wallDiffExecs() {
			pres, err := wallExec(ex.mode, fw.Reblock(pb), h, d, 3, ex.opt)
			if err != nil {
				t.Fatal(err)
			}
			if diff := pres.F.MaxAbsDiff(serial); diff > fockDiffTol {
				t.Errorf("pairblock %d %s: Fock differs by %g", pb, ex.name, diff)
			}
		}
	}
}

// SCF through every parallel builder, including re-blocked granularities,
// must converge to the serial energy to 1e-9.
func TestWallSCFEnergyMatrix(t *testing.T) {
	mol := chem.Water()
	bs, err := chem.NewBasis("sto-3g", mol)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := chem.RunSCF(mol, bs, chem.SCFOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, ex := range wallDiffExecs() {
		for _, pb := range []int{0, 1, 7} {
			opt := ex.opt
			opt.PairBlock = pb
			builder, err := ParallelFockBuilder(ex.mode, 3, opt)
			if err != nil {
				t.Fatal(err)
			}
			res, err := chem.RunSCF(mol, bs, chem.SCFOptions{}, builder)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Errorf("%s pairblock=%d: SCF did not converge", ex.name, pb)
				continue
			}
			if diff := res.Energy - ref.Energy; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("%s pairblock=%d: energy %v differs from serial %v", ex.name, pb, res.Energy, ref.Energy)
			}
		}
	}
}

// Unrestricted SCF through the parallel spin builders must converge to
// the serial UHF energy on an open-shell system.
func TestWallUHFSCFEnergyMatch(t *testing.T) {
	mol := chem.Water()
	mol.Charge = 1 // doublet cation
	bs, err := chem.NewBasis("sto-3g", mol)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := chem.RunUHF(mol, bs, chem.UHFOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Converged {
		t.Fatal("serial UHF did not converge")
	}
	for _, ex := range wallDiffExecs() {
		opt := ex.opt
		opt.PairBlock = 2
		builder, err := ParallelUHFFockBuilder(ex.mode, 3, opt)
		if err != nil {
			t.Fatal(err)
		}
		res, err := chem.RunUHF(mol, bs, chem.UHFOptions{Builder: builder})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Errorf("%s: UHF did not converge", ex.name)
			continue
		}
		if diff := res.Energy - ref.Energy; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s: UHF energy %v differs from serial %v", ex.name, res.Energy, ref.Energy)
		}
	}
	if _, err := ParallelUHFFockBuilder("bogus", 2, WallOptions{}); err == nil {
		t.Error("expected error for unknown mode")
	}
}

// The wall-clock worker loop — scheduler dispatch, accumulator digest,
// busy accounting — must be allocation-free in steady state for both spin
// shapes. This is the testing.AllocsPerRun gate behind the
// //hotpath:allocfree proof on wallWorkerLoop.
func TestWallWorkerLoopZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; gate runs in the non-race pass")
	}
	fw := fockWorkload(t, 2)
	mol := chem.WaterCluster(2, 11)
	h := chem.CoreHamiltonian(fw.Basis, mol)
	d := wallDensity(fw, mol, h)
	_ = h
	for _, tc := range []struct {
		name string
		spin bool
	}{
		{"restricted", false},
		{"unrestricted", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			slot := &wallAccum{acc: fw.NewJKAccum(tc.spin)}
			var dkB *linalg.Matrix
			if tc.spin {
				dkB = d
			}
			sched := newWallStaticSched(len(fw.Tasks), 1)
			next := sched.next // bind once: method-value creation allocates
			wallWorkerLoop(fw, d, d, dkB, slot, 0, next)
			avg := testing.AllocsPerRun(5, func() {
				sched.cursors[0].n = 0
				wallWorkerLoop(fw, d, d, dkB, slot, 0, next)
			})
			if avg != 0 {
				t.Errorf("worker loop allocates %.1f times per drain, want 0", avg)
			}
		})
	}
}
