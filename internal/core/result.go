package core

import (
	"fmt"
	"strings"

	"execmodels/internal/cluster"
	"execmodels/internal/obs"
)

// Result is the outcome of running one execution model on one workload
// and machine, entirely in simulated time except for ScheduleCost.
//
// The obs.Registry is the primary store: executors charge every simulated
// second and count every event there via the helpers below, and
// finalize() derives the exported fields from it. The fields therefore
// remain the convenient read-side view the experiments and tests consume,
// while the registry feeds the exporters and the blame analysis.
type Result struct {
	Model string
	Ranks int

	// Obs holds all metrics of the run, keyed by (metric name, rank).
	Obs *obs.Registry

	Makespan   float64   // simulated seconds until the last rank finished
	BusyTime   []float64 // per-rank simulated task-execution time
	CommTime   []float64 // per-rank simulated communication time
	FinishTime []float64 // per-rank completion time
	TasksRun   []int     // per-rank task counts

	// ScheduleCost is the *real* wall-clock time (seconds) spent computing
	// the assignment — the partitioner cost experiment (T4) compares this
	// between semi-matching and hypergraph partitioning. It is the one
	// nondeterministic quantity in a Result and deliberately never enters
	// the registry or any obs export.
	ScheduleCost float64

	// Runtime overheads, simulated.
	CounterOps   int64
	CounterWait  float64 // total counter queueing delay across ranks
	Steals       int64   // successful steals
	RemoteSteals int64   // successful steals that crossed a node boundary
	FailedSteals int64
	StealTime    float64 // total time spent in steal protocol

	// Fault-recovery accounting, populated by the resilient executors
	// (zero on a reliable machine). See internal/fault and resilient.go.
	// The *_Time quantities are rank-seconds: summed over all ranks that
	// paid them, matching the blame decomposition's components.
	Crashes        int     // ranks that fail-stopped during the run
	LostTasks      int     // unfinished tasks reclaimed from crashed ranks
	ReExecuted     int     // execution attempts discarded and run again
	Retransmits    int64   // timed-out / retried runtime RPCs
	DetectLatency  float64 // summed crash→detection latency over detected crashes
	RecoveryTime   float64 // simulated rank-seconds detecting and reclaiming
	CheckpointTime float64 // simulated rank-seconds writing/restoring checkpoints
	// CompletedBy maps task → rank whose completion was accepted; only the
	// resilient executors populate it (nil otherwise). The recovery tests
	// use it to prove every task completed exactly once.
	CompletedBy []int
}

// newResult allocates the registry and the per-rank slices the executors
// write directly (FinishTime is read mid-run by the checkpointed model).
func newResult(model string, ranks int) *Result {
	return &Result{
		Model:      model,
		Ranks:      ranks,
		Obs:        obs.NewRegistry(ranks),
		FinishTime: make([]float64, ranks),
	}
}

// addBusy charges rank r dt seconds of task execution.
func (r *Result) addBusy(rank int, dt float64) {
	r.Obs.Add(obs.MBusy, rank, dt)
	r.Obs.Observe(obs.HTask, rank, dt)
}

// ranTask counts one accepted task execution on rank r.
func (r *Result) ranTask(rank int) { r.Obs.Count(obs.CTasks, rank, 1) }

// addComm charges rank r dt seconds of communication moving the given
// payload.
func (r *Result) addComm(rank int, dt float64, bytes int) {
	r.Obs.Add(obs.MComm, rank, dt)
	r.Obs.Count(obs.CCommBytes, rank, int64(bytes))
}

// addTime charges rank r dt seconds under the given *_seconds gauge.
func (r *Result) addTime(metric string, rank int, dt float64) {
	r.Obs.Add(metric, rank, dt)
}

// count adds delta to the given counter on rank r.
func (r *Result) count(name string, rank int, delta int64) {
	r.Obs.Count(name, rank, delta)
}

// finalize computes the makespan from the per-rank finish times and
// derives the legacy view fields from the registry, publishing the
// derived finish/dead gauges back into it so exports are self-contained.
func (r *Result) finalize() {
	for _, f := range r.FinishTime {
		if f > r.Makespan {
			r.Makespan = f
		}
	}
	for rank, f := range r.FinishTime {
		r.Obs.Set(obs.MFinish, rank, f)
	}
	// A crashed rank is dead from its finish (= crash) time to the end of
	// the run; that window is a blame component, not idle.
	for rank, c := range r.Obs.CounterVec(obs.CCrashes) {
		if c > 0 {
			r.Obs.Set(obs.MDead, rank, r.Makespan-r.FinishTime[rank])
		}
	}

	r.BusyTime = r.Obs.GaugeVec(obs.MBusy)
	r.CommTime = r.Obs.GaugeVec(obs.MComm)
	r.TasksRun = make([]int, r.Ranks)
	for rank, v := range r.Obs.CounterVec(obs.CTasks) {
		r.TasksRun[rank] = int(v)
	}
	r.CounterOps = r.Obs.CounterTotal(obs.CCounterOps)
	r.CounterWait = r.Obs.GaugeTotal(obs.MCounterWait)
	r.Steals = r.Obs.CounterTotal(obs.CSteals)
	r.RemoteSteals = r.Obs.CounterTotal(obs.CRemoteSteals)
	r.FailedSteals = r.Obs.CounterTotal(obs.CFailedSteals)
	r.StealTime = r.Obs.GaugeTotal(obs.MSteal)
	r.Crashes = int(r.Obs.CounterTotal(obs.CCrashes))
	r.LostTasks = int(r.Obs.CounterTotal(obs.CLostTasks))
	r.ReExecuted = int(r.Obs.CounterTotal(obs.CReExecuted))
	r.Retransmits = r.Obs.CounterTotal(obs.CRetransmits)
	r.DetectLatency = r.Obs.GaugeTotal(obs.MDetect)
	r.RecoveryTime = r.Obs.GaugeTotal(obs.MRecover)
	r.CheckpointTime = r.Obs.GaugeTotal(obs.MCheckpoint)
}

// Blame decomposes this run's makespan × ranks into its components using
// the registry; the trace (optional, nil-safe) adds the critical path and
// heaviest-task sections.
func (r *Result) Blame(t *cluster.Trace) *obs.Blame {
	return obs.AnalyzeBlame(r.Obs, t, r.Model, r.Ranks, r.Makespan)
}

// Summary snapshots the run for the JSON exporter.
func (r *Result) Summary(b *obs.Blame) *obs.Summary {
	return obs.NewSummary(r.Obs, b, r.Model, r.Ranks, r.Makespan)
}

// LoadImbalance returns max(busy)/mean(busy); 1.0 is perfect balance.
func (r *Result) LoadImbalance() float64 {
	var sum, mx float64
	for _, b := range r.BusyTime {
		sum += b
		if b > mx {
			mx = b
		}
	}
	if sum == 0 {
		return 0
	}
	return mx / (sum / float64(len(r.BusyTime)))
}

// Efficiency returns ideal/makespan for the given ideal (perfectly
// balanced, zero-overhead) time.
func (r *Result) Efficiency(ideal float64) float64 {
	if r.Makespan == 0 {
		return 0
	}
	return ideal / r.Makespan
}

// TotalIdle returns the summed per-rank idle time (finish of the last
// rank minus each rank's busy+comm time).
func (r *Result) TotalIdle() float64 {
	var idle float64
	for i := range r.BusyTime {
		idle += r.Makespan - r.BusyTime[i] - r.CommTime[i]
	}
	return idle
}

// String renders a one-line summary.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s P=%-3d makespan=%.4gs imbalance=%.3f", r.Model, r.Ranks, r.Makespan, r.LoadImbalance())
	if r.CounterOps > 0 {
		fmt.Fprintf(&b, " counterOps=%d wait=%.3gs", r.CounterOps, r.CounterWait)
	}
	if r.Steals+r.FailedSteals > 0 {
		fmt.Fprintf(&b, " steals=%d failed=%d", r.Steals, r.FailedSteals)
	}
	if r.ScheduleCost > 0 {
		fmt.Fprintf(&b, " schedCost=%.3gs", r.ScheduleCost)
	}
	if r.Crashes > 0 {
		fmt.Fprintf(&b, " crashes=%d lost=%d reexec=%d detect=%.3gs recover=%.3gs",
			r.Crashes, r.LostTasks, r.ReExecuted, r.DetectLatency, r.RecoveryTime)
	}
	return b.String()
}

// Model is one execution model: a strategy for getting a workload's tasks
// executed on a machine.
type Model interface {
	Name() string
	Run(w *Workload, m *cluster.Machine) *Result
}
