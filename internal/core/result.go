package core

import (
	"fmt"
	"strings"

	"execmodels/internal/cluster"
)

// Result is the outcome of running one execution model on one workload
// and machine, entirely in simulated time except for ScheduleCost.
type Result struct {
	Model string
	Ranks int

	Makespan   float64   // simulated seconds until the last rank finished
	BusyTime   []float64 // per-rank simulated task-execution time
	CommTime   []float64 // per-rank simulated communication time
	FinishTime []float64 // per-rank completion time
	TasksRun   []int     // per-rank task counts

	// ScheduleCost is the *real* wall-clock time (seconds) spent computing
	// the assignment — the partitioner cost experiment (T4) compares this
	// between semi-matching and hypergraph partitioning.
	ScheduleCost float64

	// Runtime overheads, simulated.
	CounterOps   int64
	CounterWait  float64 // total counter queueing delay across ranks
	Steals       int64   // successful steals
	RemoteSteals int64   // successful steals that crossed a node boundary
	FailedSteals int64
	StealTime    float64 // total time spent in steal protocol

	// Fault-recovery accounting, populated by the resilient executors
	// (zero on a reliable machine). See internal/fault and resilient.go.
	Crashes        int     // ranks that fail-stopped during the run
	LostTasks      int     // unfinished tasks reclaimed from crashed ranks
	ReExecuted     int     // execution attempts discarded and run again
	Retransmits    int64   // timed-out / retried runtime RPCs
	DetectLatency  float64 // summed crash→detection latency over detected crashes
	RecoveryTime   float64 // simulated time spent detecting and reclaiming
	CheckpointTime float64 // simulated time writing/restoring checkpoints
	// CompletedBy maps task → rank whose completion was accepted; only the
	// resilient executors populate it (nil otherwise). The recovery tests
	// use it to prove every task completed exactly once.
	CompletedBy []int
}

// newResult allocates the per-rank slices.
func newResult(model string, ranks int) *Result {
	return &Result{
		Model:      model,
		Ranks:      ranks,
		BusyTime:   make([]float64, ranks),
		CommTime:   make([]float64, ranks),
		FinishTime: make([]float64, ranks),
		TasksRun:   make([]int, ranks),
	}
}

// finalize computes the makespan from the per-rank finish times.
func (r *Result) finalize() {
	for _, f := range r.FinishTime {
		if f > r.Makespan {
			r.Makespan = f
		}
	}
}

// LoadImbalance returns max(busy)/mean(busy); 1.0 is perfect balance.
func (r *Result) LoadImbalance() float64 {
	var sum, mx float64
	for _, b := range r.BusyTime {
		sum += b
		if b > mx {
			mx = b
		}
	}
	if sum == 0 {
		return 0
	}
	return mx / (sum / float64(len(r.BusyTime)))
}

// Efficiency returns ideal/makespan for the given ideal (perfectly
// balanced, zero-overhead) time.
func (r *Result) Efficiency(ideal float64) float64 {
	if r.Makespan == 0 {
		return 0
	}
	return ideal / r.Makespan
}

// TotalIdle returns the summed per-rank idle time (finish of the last
// rank minus each rank's busy+comm time).
func (r *Result) TotalIdle() float64 {
	var idle float64
	for i := range r.BusyTime {
		idle += r.Makespan - r.BusyTime[i] - r.CommTime[i]
	}
	return idle
}

// String renders a one-line summary.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s P=%-3d makespan=%.4gs imbalance=%.3f", r.Model, r.Ranks, r.Makespan, r.LoadImbalance())
	if r.CounterOps > 0 {
		fmt.Fprintf(&b, " counterOps=%d wait=%.3gs", r.CounterOps, r.CounterWait)
	}
	if r.Steals+r.FailedSteals > 0 {
		fmt.Fprintf(&b, " steals=%d failed=%d", r.Steals, r.FailedSteals)
	}
	if r.ScheduleCost > 0 {
		fmt.Fprintf(&b, " schedCost=%.3gs", r.ScheduleCost)
	}
	if r.Crashes > 0 {
		fmt.Fprintf(&b, " crashes=%d lost=%d reexec=%d detect=%.3gs recover=%.3gs",
			r.Crashes, r.LostTasks, r.ReExecuted, r.DetectLatency, r.RecoveryTime)
	}
	return b.String()
}

// Model is one execution model: a strategy for getting a workload's tasks
// executed on a machine.
type Model interface {
	Name() string
	Run(w *Workload, m *cluster.Machine) *Result
}
