package core

import (
	"execmodels/internal/cluster"
)

// blockOwner returns the rank owning data block b under the block-cyclic
// distribution used by all models.
func blockOwner(b, ranks int) int { return b % ranks }

// runAssignment simulates the execution of a fixed task→rank assignment:
// each rank executes its tasks back to back (charging per-task noise and
// overhead via the machine's cost model) and pays communication for every
// distinct remote data block its tasks touch (one get + one accumulate,
// cached per rank — co-locating tasks that share blocks therefore saves
// real time, which is what the locality-aware balancers exploit).
//
// measured, when non-nil, captures each task's simulated execution time
// by task index — the measurement side of the persistence/feedback loop.
// Each call describes one fresh iteration starting at virtual time zero,
// so callers iterating must Reset the machine trace between calls.
func runAssignment(model string, w *Workload, m *cluster.Machine, assign []int, scheduleCost float64, measured []float64) *Result {
	res := newResult(model, m.P)
	res.ScheduleCost = scheduleCost
	seen := make([]map[int]bool, m.P)
	clock := make([]float64, m.P) // per-rank time, for throttle windows
	for r := range seen {
		seen[r] = map[int]bool{}
	}
	for i, t := range w.Tasks {
		r := assign[i]
		dt := m.TaskTimeAt(r, t.Cost, clock[r])
		if measured != nil {
			measured[i] = dt
		}
		m.Trace.Record(cluster.Interval{Rank: r, Start: clock[r], End: clock[r] + dt, TaskID: t.ID, Activity: "task"})
		res.addBusy(r, dt)
		clock[r] += dt
		res.ranTask(r)
		for _, b := range t.Blocks {
			owner := blockOwner(b, m.P)
			if owner == r || seen[r][b] {
				continue
			}
			seen[r][b] = true
			ct := 2 * m.XferTimeBetween(owner, r, w.BlockBytes[b])
			m.Trace.Record(cluster.Interval{Rank: r, Start: clock[r], End: clock[r] + ct, TaskID: -1, Activity: "comm", Src: owner, Dst: r, Bytes: w.BlockBytes[b]})
			res.addComm(r, ct, w.BlockBytes[b])
			clock[r] += ct
		}
	}
	for r := 0; r < m.P; r++ {
		res.FinishTime[r] = clock[r]
	}
	res.finalize()
	return res
}

// StaticBlock is the traditional static schedule: tasks are split into P
// contiguous blocks by ID. With the triangular cost profile of the Fock
// build's pair loop this is the model the paper's headline 50% improvement
// is measured against.
type StaticBlock struct{}

// Name implements Model.
func (StaticBlock) Name() string { return "static-block" }

// Run implements Model (via the scheduler seam).
func (StaticBlock) Run(w *Workload, m *cluster.Machine) *Result {
	return RunScheduler(StaticBlockSched{}, w, m)
}

// StaticCyclic assigns task i to rank i mod P. Round-robin statistically
// spreads a monotone cost profile but remains oblivious to actual costs
// and to runtime variability.
type StaticCyclic struct{}

// Name implements Model.
func (StaticCyclic) Name() string { return "static-cyclic" }

// Run implements Model (via the scheduler seam).
func (StaticCyclic) Run(w *Workload, m *cluster.Machine) *Result {
	return RunScheduler(StaticCyclicSched{}, w, m)
}
