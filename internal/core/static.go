package core

import (
	"execmodels/internal/cluster"
)

// blockOwner returns the rank owning data block b under the block-cyclic
// distribution used by all models.
func blockOwner(b, ranks int) int { return b % ranks }

// runAssignment simulates the execution of a fixed task→rank assignment:
// each rank executes its tasks back to back (charging per-task noise and
// overhead via the machine's cost model) and pays communication for every
// distinct remote data block its tasks touch (one get + one accumulate,
// cached per rank — co-locating tasks that share blocks therefore saves
// real time, which is what the locality-aware balancers exploit).
func runAssignment(model string, w *Workload, m *cluster.Machine, assign []int, scheduleCost float64) *Result {
	res := newResult(model, m.P)
	//lint:ignore clocktaint ScheduleCost is the one documented wall-clock quantity: real partitioner cost reported like the paper's Table 3, excluded from determinism checks and never charged to the registry
	res.ScheduleCost = scheduleCost
	seen := make([]map[int]bool, m.P)
	clock := make([]float64, m.P) // per-rank time, for throttle windows
	for r := range seen {
		seen[r] = map[int]bool{}
	}
	for i, t := range w.Tasks {
		r := assign[i]
		dt := m.TaskTimeAt(r, t.Cost, clock[r])
		m.Trace.Record(cluster.Interval{Rank: r, Start: clock[r], End: clock[r] + dt, TaskID: t.ID, Activity: "task"})
		res.addBusy(r, dt)
		clock[r] += dt
		res.ranTask(r)
		for _, b := range t.Blocks {
			owner := blockOwner(b, m.P)
			if owner == r || seen[r][b] {
				continue
			}
			seen[r][b] = true
			ct := 2 * m.XferTimeBetween(owner, r, w.BlockBytes[b])
			m.Trace.Record(cluster.Interval{Rank: r, Start: clock[r], End: clock[r] + ct, TaskID: -1, Activity: "comm", Src: owner, Dst: r, Bytes: w.BlockBytes[b]})
			res.addComm(r, ct, w.BlockBytes[b])
			clock[r] += ct
		}
	}
	for r := 0; r < m.P; r++ {
		res.FinishTime[r] = clock[r]
	}
	res.finalize()
	return res
}

// StaticBlock is the traditional static schedule: tasks are split into P
// contiguous blocks by ID. With the triangular cost profile of the Fock
// build's pair loop this is the model the paper's headline 50% improvement
// is measured against.
type StaticBlock struct{}

// Name implements Model.
func (StaticBlock) Name() string { return "static-block" }

// Run implements Model.
func (StaticBlock) Run(w *Workload, m *cluster.Machine) *Result {
	n := len(w.Tasks)
	assign := make([]int, n)
	per := (n + m.P - 1) / m.P
	for i := range assign {
		r := i / per
		if r >= m.P {
			r = m.P - 1
		}
		assign[i] = r
	}
	return runAssignment(StaticBlock{}.Name(), w, m, assign, 0)
}

// StaticCyclic assigns task i to rank i mod P. Round-robin statistically
// spreads a monotone cost profile but remains oblivious to actual costs
// and to runtime variability.
type StaticCyclic struct{}

// Name implements Model.
func (StaticCyclic) Name() string { return "static-cyclic" }

// Run implements Model.
func (StaticCyclic) Run(w *Workload, m *cluster.Machine) *Result {
	assign := make([]int, len(w.Tasks))
	for i := range assign {
		assign[i] = i % m.P
	}
	return runAssignment(StaticCyclic{}.Name(), w, m, assign, 0)
}
