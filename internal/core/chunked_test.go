package core

import (
	"math"
	"testing"
)

func TestChunkPolicies(t *testing.T) {
	if got := (FixedChunk(5)).NextChunk(100, 8); got != 5 {
		t.Fatalf("fixed = %d", got)
	}
	if got := (FixedChunk(0)).NextChunk(100, 8); got != 1 {
		t.Fatalf("fixed floor = %d", got)
	}
	if got := (GuidedChunk{}).NextChunk(100, 8); got != 13 {
		t.Fatalf("guided = %d, want ceil(100/8)=13", got)
	}
	if got := (GuidedChunk{}).NextChunk(0, 8); got != 1 {
		t.Fatalf("guided floor = %d", got)
	}
	if got := (FactoringChunk{}).NextChunk(100, 8); got != 7 {
		t.Fatalf("factoring = %d, want ceil(100/16)=7", got)
	}
}

func TestSelfSchedulingConservation(t *testing.T) {
	w := Synthetic(SyntheticOptions{NumTasks: 300, Dist: "lognormal", Seed: 2})
	m := testMachine(8)
	for _, model := range []Model{
		SelfScheduling{Policy: GuidedChunk{}},
		SelfScheduling{Policy: FactoringChunk{}},
		SelfScheduling{}, // nil policy defaults to guided
	} {
		res := model.Run(w, m)
		var tasks int
		for _, c := range res.TasksRun {
			tasks += c
		}
		if tasks != len(w.Tasks) {
			t.Errorf("%s: ran %d tasks", model.Name(), tasks)
		}
		if res.Makespan < m.IdealTime(w.TotalCost()) {
			t.Errorf("%s: beat the ideal", model.Name())
		}
	}
}

// Guided self-scheduling must use far fewer counter operations than
// chunk=1 dynamic while staying close in makespan.
func TestGuidedReducesCounterTraffic(t *testing.T) {
	w := Synthetic(SyntheticOptions{NumTasks: 4096, Dist: "triangular", Seed: 3})
	m := testMachine(16)
	one := DynamicCounter{Chunk: 1}.Run(w, m)
	guided := SelfScheduling{Policy: GuidedChunk{}}.Run(w, m)
	if guided.CounterOps >= one.CounterOps/10 {
		t.Errorf("guided ops %d not ≪ fixed-1 ops %d", guided.CounterOps, one.CounterOps)
	}
	if guided.Makespan > 1.3*one.Makespan {
		t.Errorf("guided makespan %v much worse than fixed-1 %v", guided.Makespan, one.Makespan)
	}
}

// Factoring claims more counter ops than guided (half-sized chunks) but
// never fewer than ~P·log(n/P) style growth; sanity-check the ordering.
func TestFactoringVsGuidedOps(t *testing.T) {
	w := Synthetic(SyntheticOptions{NumTasks: 4096, Dist: "uniform", Seed: 4})
	m := testMachine(16)
	guided := SelfScheduling{Policy: GuidedChunk{}}.Run(w, m)
	factoring := SelfScheduling{Policy: FactoringChunk{}}.Run(w, m)
	if factoring.CounterOps <= guided.CounterOps {
		t.Errorf("factoring ops %d <= guided %d", factoring.CounterOps, guided.CounterOps)
	}
}

// With heavy-tailed costs factoring's conservative chunks should bound
// the tail at least as well as guided: its makespan must not be much
// worse, and both beat a big fixed chunk.
func TestChunkedTailBehaviour(t *testing.T) {
	w := Synthetic(SyntheticOptions{NumTasks: 2048, Dist: "lognormal", Sigma: 1.0, Seed: 5})
	m := testMachine(16)
	guided := SelfScheduling{Policy: GuidedChunk{}}.Run(w, m)
	factoring := SelfScheduling{Policy: FactoringChunk{}}.Run(w, m)
	bigFixed := DynamicCounter{Chunk: 128}.Run(w, m)
	if factoring.Makespan > 1.2*guided.Makespan {
		t.Errorf("factoring %v ≫ guided %v", factoring.Makespan, guided.Makespan)
	}
	if guided.Makespan > bigFixed.Makespan {
		t.Errorf("guided %v worse than fixed-128 %v", guided.Makespan, bigFixed.Makespan)
	}
}

func TestPersistenceSMImproves(t *testing.T) {
	w := Synthetic(SyntheticOptions{NumTasks: 1024, Dist: "triangular", Seed: 6})
	m := testMachine(16)
	_, hist := PersistenceSM{Iterations: 3, Seed: 1}.RunWithHistory(w, m)
	if len(hist) != 3 {
		t.Fatalf("history %v", hist)
	}
	if hist[2] >= hist[0] {
		t.Errorf("persistence-sm did not improve: %v", hist)
	}
	ideal := m.IdealTime(w.TotalCost())
	if hist[2] > 1.25*ideal {
		t.Errorf("final %v far from ideal %v", hist[2], ideal)
	}
}

// The SM variant must respect locality edges: with zero extra edges every
// task lands on an owner of one of its blocks.
func TestPersistenceSMRunsAllTasks(t *testing.T) {
	w := Synthetic(SyntheticOptions{NumTasks: 256, Dist: "bimodal", Seed: 7})
	m := testMachine(8)
	res := PersistenceSM{Iterations: 2, Seed: 2}.Run(w, m)
	var tasks int
	for _, c := range res.TasksRun {
		tasks += c
	}
	if tasks != len(w.Tasks) {
		t.Fatalf("ran %d tasks", tasks)
	}
}

func TestNewVariantsResolvable(t *testing.T) {
	for _, name := range []string{"self-sched-guided", "self-sched-factoring", "persistence-sm"} {
		m, err := ModelByName(name, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.Name() != name {
			t.Fatalf("%s resolves to %s", name, m.Name())
		}
	}
}

func TestSelfSchedulingSingleRank(t *testing.T) {
	w := Synthetic(SyntheticOptions{NumTasks: 64, Dist: "lognormal", Seed: 8})
	m := testMachine(1)
	res := SelfScheduling{Policy: GuidedChunk{}}.Run(w, m)
	serial := StaticBlock{}.Run(w, m)
	if math.Abs(res.BusyTime[0]-serial.BusyTime[0]) > 1e-9*serial.BusyTime[0] {
		t.Fatalf("busy %v vs serial %v", res.BusyTime[0], serial.BusyTime[0])
	}
}
