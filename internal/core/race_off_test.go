//go:build !race

package core

// raceEnabled reports whether the race detector is active; allocation
// gates skip under -race (instrumentation perturbs alloc counts) and the
// differential matrix shrinks its expensive cells.
const raceEnabled = false
