package core

import (
	"sync"
	"testing"
)

// bumpSlots runs one goroutine per slot, each hammering only its own
// counter — exactly the wall executors' per-worker access pattern.
func bumpSlots(workers, bumps int, bump func(wk int)) {
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			for i := 0; i < bumps; i++ {
				bump(wk)
			}
		}(wk)
	}
	wg.Wait()
}

// cursorBumps is the per-worker increment count for the false-sharing
// benchmarks below.
const cursorBumps = 1 << 16

// BenchmarkCursorFalseSharing measures the layout the wall executors
// used before per-worker state was padded: adjacent int64 cursors share
// a cache line, so every bump by one worker invalidates the line under
// its neighbours. Compare with BenchmarkCursorPadded — on a multi-core
// host the packed variant is several times slower; on a single-core
// host the two converge (no cross-core invalidation), which is itself a
// useful datum next to BENCH_wall.json's single-core note.
func BenchmarkCursorFalseSharing(b *testing.B) {
	const workers = 4
	cursors := make([]int64, workers) // packed: all four share a line
	for i := 0; i < b.N; i++ {
		bumpSlots(workers, cursorBumps, func(wk int) { cursors[wk]++ })
	}
}

// BenchmarkCursorPadded is the fixed layout: one padCell per worker,
// each owning a full cache line.
func BenchmarkCursorPadded(b *testing.B) {
	const workers = 4
	cursors := make([]padCell, workers)
	for i := 0; i < b.N; i++ {
		bumpSlots(workers, cursorBumps, func(wk int) { cursors[wk].n++ })
	}
}
