package core

import "testing"

// Regression: NumBlocks smaller than the per-task block draw used to
// spin forever trying to collect distinct blocks.
func TestSyntheticFewBlocksTerminates(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		w := Synthetic(SyntheticOptions{NumTasks: 6, NumBlocks: 1, Dist: "bimodal", Seed: seed})
		for _, task := range w.Tasks {
			if len(task.Blocks) != 1 {
				t.Fatalf("task has %d blocks with NumBlocks=1", len(task.Blocks))
			}
		}
		Synthetic(SyntheticOptions{NumTasks: 6, NumBlocks: 2, Dist: "lognormal", Seed: seed})
	}
}
