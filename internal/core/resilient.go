package core

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"

	"execmodels/internal/cluster"
	"execmodels/internal/fault"
	"execmodels/internal/obs"
)

// Resilient execution models: the same scheduling strategies as their
// reliable counterparts, extended with the recovery machinery a fault-
// injecting machine (cluster.Machine with a non-nil Faults injector)
// requires — crash detection by timeout, lease tracking with loss
// detection and re-execution, and reclamation of a dead rank's work.
// On a reliable machine they behave like the base models plus the
// (zero-cost) bookkeeping, so F9's p=0 column doubles as a consistency
// check.
//
// The recovery semantics share one durability assumption with the Fock
// build they model: a task's contribution is accumulated into the
// distributed result arrays the moment it completes, so work finished
// before a crash survives the crash. Only leased-but-unfinished work is
// lost and must be re-executed — and the lease table proves every task
// still completes exactly once. (CheckpointedPersistence deliberately
// uses the opposite, rollback-based semantics; see checkpoint.go.)

// descriptorBytes is the wire size of one task descriptor, charged when
// reclaimed or redistributed work is re-fetched from the replicated
// workload description.
const descriptorBytes = 64

// defaultDetect returns the crash-detection timeout: how long a silent
// peer is given before being presumed dead. Scaled to the network: a
// presumption window of 100 one-way latencies.
func defaultDetect(m *cluster.Machine) float64 { return 100 * m.Cfg.Latency }

// chargeComm charges rank r the remote-block traffic of task t starting
// at now and returns the advanced clock (same cost model as
// runAssignment: one get + one accumulate per distinct remote block,
// cached per rank).
func chargeComm(res *Result, w *Workload, m *cluster.Machine, seen []map[int]bool, r int, t *Task, now float64) float64 {
	for _, b := range t.Blocks {
		owner := blockOwner(b, m.P)
		if owner == r || seen[r][b] {
			continue
		}
		seen[r][b] = true
		ct := 2 * m.XferTimeBetween(owner, r, w.BlockBytes[b])
		m.Trace.Record(cluster.Interval{Rank: r, Start: now, End: now + ct, TaskID: -1, Activity: "comm", Src: owner, Dst: r, Bytes: w.BlockBytes[b]})
		res.addComm(r, ct, w.BlockBytes[b])
		now += ct
	}
	return now
}

// ResilientStatic is the static block schedule under faults: ranks
// execute their fixed assignment and meet at a barrier. A crashed rank
// takes its unfinished assignment down with it; the survivors only find
// out after stalling at the barrier for DetectTimeout, then re-fetch the
// lost task descriptors and re-execute the lost work — the "static loses
// assigned work and stalls at the barrier" failure mode F9 quantifies.
type ResilientStatic struct {
	// DetectTimeout is how long the barrier waits for a silent rank
	// before declaring it dead (default 100× network latency).
	DetectTimeout float64
}

// Name implements Model.
func (ResilientStatic) Name() string { return "resilient-static" }

// Run implements Model.
func (rs ResilientStatic) Run(w *Workload, m *cluster.Machine) *Result {
	res := newResult(rs.Name(), m.P)
	n := len(w.Tasks)
	detect := rs.DetectTimeout
	if detect <= 0 {
		detect = defaultDetect(m)
	}

	lt := newLeaseTable(n)
	pending := make([][]int, m.P)
	per := (n + m.P - 1) / m.P
	for i := 0; i < n; i++ {
		r := min(i/per, m.P-1)
		pending[r] = append(pending[r], i)
		lt.claim(i, r)
	}

	clock := make([]float64, m.P)
	crashed := make([]bool, m.P)
	detected := make([]bool, m.P)
	seen := make([]map[int]bool, m.P)
	for r := range seen {
		seen[r] = map[int]bool{}
	}

	for round := 0; ; round++ {
		// Each live rank burns through its list.
		for r := 0; r < m.P; r++ {
			if crashed[r] {
				continue
			}
			for len(pending[r]) > 0 {
				id := pending[r][0]
				task := &w.Tasks[id]
				lt.start(id, r)
				end, ok := m.TaskTimeFaulty(r, task.Cost, clock[r])
				m.Trace.Record(cluster.Interval{Rank: r, Start: clock[r], End: end, TaskID: id, Activity: "task"})
				res.addBusy(r, end-clock[r])
				clock[r] = end
				if !ok {
					// Fail-stop mid-task: the interrupted task and the rest
					// of the list die with the rank.
					crashed[r] = true
					res.count(obs.CCrashes, r, 1)
					break
				}
				res.ranTask(r)
				clock[r] = chargeComm(res, w, m, seen, r, task, clock[r])
				lt.complete(id, r)
				pending[r] = pending[r][1:]
			}
		}

		// Barrier among survivors; collect what the dead took with them.
		var survivors []int
		bar := 0.0
		for r := 0; r < m.P; r++ {
			if crashed[r] {
				continue
			}
			survivors = append(survivors, r)
			if clock[r] > bar {
				bar = clock[r]
			}
		}
		var lost []int
		for r := 0; r < m.P; r++ {
			if crashed[r] {
				l := lt.lost(r)
				res.count(obs.CLostTasks, r, int64(len(l)))
				lost = append(lost, l...)
				pending[r] = nil
			}
		}
		if len(lost) == 0 {
			for _, r := range survivors {
				res.FinishTime[r] = bar
			}
			break
		}
		if len(survivors) == 0 {
			panic("core: resilient-static has no surviving ranks to recover on")
		}

		// The barrier times out, the dead are detected, the lost work is
		// redistributed round-robin and re-fetched from the replicated
		// workload description.
		detectAt := bar + detect
		for r := 0; r < m.P; r++ {
			if crashed[r] && !detected[r] {
				detected[r] = true
				res.FinishTime[r] = clock[r]
				res.addTime(obs.MDetect, r, detectAt-m.CrashTime(r))
			}
		}
		counts := make(map[int]int, len(survivors))
		for i, id := range lost {
			r := survivors[i%len(survivors)]
			pending[r] = append(pending[r], id)
			lt.claim(id, r)
			counts[r]++
		}
		for _, r := range survivors {
			restart := detectAt + m.XferTime(descriptorBytes*counts[r])
			m.Trace.Record(cluster.Interval{Rank: r, Start: clock[r], End: restart, TaskID: -1, Activity: "recover"})
			res.addTime(obs.MRecover, r, restart-clock[r])
			clock[r] = restart
		}
	}
	res.count(obs.CReExecuted, 0, int64(lt.reexec))
	res.CompletedBy = lt.completedBy
	lt.audit()
	res.finalize()
	return res
}

// ResilientStealing is distributed work stealing under faults. Thieves
// whose steal probe goes unanswered for DetectTimeout presume the victim
// dead and reclaim its entire loss set — queue residue plus the task it
// was executing — under lease transfer, so the group re-absorbs a dead
// rank's work the way it absorbs an overloaded rank's. Dropped probe
// messages are retried (bounded, with exponential backoff); a victim that
// exhausts the retries is presumed dead too, and the lease table makes
// even a false positive safe: a completion from a revoked lease is
// discarded, never double-counted.
type ResilientStealing struct {
	Seed int64

	// DetectTimeout is the silent-victim presumption window (default
	// 100× network latency).
	DetectTimeout float64
	// RPCTimeout is the per-attempt probe timeout under message loss
	// (default 20× network latency).
	RPCTimeout float64
	// MaxRetries bounds dropped-probe retries before presuming the victim
	// dead (default 3).
	MaxRetries int
}

// Name implements Model.
func (ResilientStealing) Name() string { return "resilient-stealing" }

// Run implements Model.
func (rs ResilientStealing) Run(w *Workload, m *cluster.Machine) *Result {
	res := newResult(rs.Name(), m.P)
	rng := rand.New(rand.NewSource(rs.Seed))
	n := len(w.Tasks)
	detect := rs.DetectTimeout
	if detect <= 0 {
		detect = defaultDetect(m)
	}
	rpcTO := rs.RPCTimeout
	if rpcTO <= 0 {
		rpcTO = 20 * m.Cfg.Latency
	}
	maxRetry := rs.MaxRetries
	if maxRetry <= 0 {
		maxRetry = 3
	}
	links := m.LinkFilter()

	lt := newLeaseTable(n)
	queues := make([][]int, m.P)
	per := (n + m.P - 1) / m.P
	for i := 0; i < n; i++ {
		r := min(i/per, m.P-1)
		queues[r] = append(queues[r], i)
		lt.claim(i, r)
	}

	seen := make([]map[int]bool, m.P)
	fails := make([]int, m.P)
	for r := range seen {
		seen[r] = map[int]bool{}
	}
	crashed := make([]bool, m.P)   // this rank's death has been observed
	deadKnown := make([]bool, m.P) // group-wide "presumed dead" knowledge
	seq := make([]int, m.P)        // per-thief probe sequence numbers

	h := make(rankHeap, 0, m.P)
	for r := 0; r < m.P; r++ {
		heap.Push(&h, rankEvent{rank: r, time: 0})
	}
	for h.Len() > 0 {
		ev := heap.Pop(&h).(rankEvent)
		r := ev.rank
		crashT := m.CrashTime(r)
		if ev.time >= crashT {
			// Died while idle or between operations; survivors will notice.
			crashed[r] = true
			res.count(obs.CCrashes, r, 1)
			res.FinishTime[r] = crashT
			continue
		}
		now := m.StallEnd(r, ev.time)
		if now > ev.time {
			// A rank that dies mid-stall only stalls until its crash time.
			stallEnd := math.Min(now, crashT)
			m.Trace.Record(cluster.Interval{Rank: r, Start: ev.time, End: stallEnd, TaskID: -1, Activity: "stall"})
			res.addTime(obs.MStall, r, stallEnd-ev.time)
		}
		if now >= crashT {
			crashed[r] = true
			res.count(obs.CCrashes, r, 1)
			res.FinishTime[r] = crashT
			continue
		}

		if len(queues[r]) > 0 {
			id := queues[r][len(queues[r])-1]
			queues[r] = queues[r][:len(queues[r])-1]
			task := &w.Tasks[id]
			lt.start(id, r)
			end, ok := m.TaskTimeFaulty(r, task.Cost, now)
			m.Trace.Record(cluster.Interval{Rank: r, Start: now, End: end, TaskID: id, Activity: "task"})
			res.addBusy(r, end-now)
			if !ok {
				// Fail-stop mid-task: the in-flight lease and the queue
				// residue stay with the corpse until reclaimed.
				crashed[r] = true
				res.count(obs.CCrashes, r, 1)
				res.FinishTime[r] = end
				continue
			}
			res.ranTask(r)
			t := chargeComm(res, w, m, seen, r, task, end)
			if lt.holder[id] == r {
				lt.complete(id, r)
			}
			// else: the lease was revoked by a false-positive failure
			// detection while we ran — the result is discarded and the
			// reclaimed copy will complete instead.
			fails[r] = 0
			heap.Push(&h, rankEvent{rank: r, time: t})
			continue
		}

		if lt.remaining == 0 {
			res.FinishTime[r] = now
			continue
		}

		// Steal attempt against a victim believed alive.
		victim := pickAliveVictim(r, deadKnown, rng, m.P)
		if victim < 0 {
			// Everyone else is presumed dead but work remains in flight
			// (a false positive is executing it); poll again later.
			res.count(obs.CRetransmits, r, 1)
			heap.Push(&h, rankEvent{rank: r, time: now + detect})
			continue
		}

		var t float64
		if m.CrashTime(victim) <= now {
			// Dead victim: the probe goes unanswered and times out. The
			// whole window — timeout plus reclamation — is recovery work,
			// not steal protocol (charging both double-counted it before).
			t = now + detect
			res.count(obs.CRetransmits, r, 1)
			if !deadKnown[victim] {
				t = rs.reclaim(res, m, lt, queues, deadKnown, victim, r, now, t)
			}
			res.addTime(obs.MRecover, r, t-now)
			m.Trace.Record(cluster.Interval{Rank: r, Start: now, End: t, TaskID: -1, Activity: "recover"})
			heap.Push(&h, rankEvent{rank: r, time: t})
			continue
		}

		// Live victim: the probe may be dropped (retry with backoff),
		// delayed, or answered late by a stalled victim.
		t, delivered := probe(links, m, r, victim, now, &seq[r], rpcTO, maxRetry, res)
		if !delivered {
			// Retries exhausted: presume the victim dead even though it is
			// not — the lease transfer keeps this safe. The exhausted
			// probes [now, t] are steal protocol; the reclamation after
			// them is recovery.
			res.addTime(obs.MSteal, r, t-now)
			m.Trace.Record(cluster.Interval{Rank: r, Start: now, End: t, TaskID: -1, Activity: "steal"})
			if !deadKnown[victim] {
				probeEnd := t
				t = rs.reclaim(res, m, lt, queues, deadKnown, victim, r, probeEnd, probeEnd)
				res.addTime(obs.MRecover, r, t-probeEnd)
				m.Trace.Record(cluster.Interval{Rank: r, Start: probeEnd, End: t, TaskID: -1, Activity: "recover"})
			}
			heap.Push(&h, rankEvent{rank: r, time: t})
			continue
		}
		if len(queues[victim]) > 0 {
			take := (len(queues[victim]) + 1) / 2
			loot := append([]int(nil), queues[victim][:take]...)
			queues[victim] = queues[victim][take:]
			for i, j := 0, len(loot)-1; i < j; i, j = i+1, j-1 {
				loot[i], loot[j] = loot[j], loot[i]
			}
			for _, id := range loot {
				lt.claim(id, r)
			}
			queues[r] = append(queues[r], loot...)
			res.count(obs.CSteals, r, 1)
			if !m.SameNode(r, victim) {
				res.count(obs.CRemoteSteals, r, 1)
			}
			fails[r] = 0
			t += m.Cfg.Latency // task-descriptor transfer
		} else {
			res.count(obs.CFailedSteals, r, 1)
			fails[r]++
			t += float64(uint(1)<<min(fails[r], 10)) * m.Cfg.Latency
		}
		res.addTime(obs.MSteal, r, t-now)
		m.Trace.Record(cluster.Interval{Rank: r, Start: now, End: t, TaskID: -1, Activity: "steal"})
		heap.Push(&h, rankEvent{rank: r, time: t})
	}
	if lt.remaining > 0 {
		panic(fmt.Sprintf("core: resilient-stealing stranded %d tasks (no surviving ranks?)", lt.remaining))
	}
	res.count(obs.CReExecuted, 0, int64(lt.reexec))
	res.CompletedBy = lt.completedBy
	lt.audit()
	res.finalize()
	return res
}

// reclaim executes the recovery protocol after thief declares victim
// dead at time `at` (detection completing at detectAt): the victim is
// marked dead group-wide, its loss set (queue residue + interrupted
// in-flight task) transfers to the thief under new leases, and the thief
// pays to re-fetch the descriptors. Returns the thief's clock after
// recovery; the caller charges the recovery window it observed.
func (rs ResilientStealing) reclaim(res *Result, m *cluster.Machine, lt *leaseTable, queues [][]int, deadKnown []bool, victim, thief int, at, detectAt float64) float64 {
	deadKnown[victim] = true
	if ct := m.CrashTime(victim); ct <= detectAt {
		res.addTime(obs.MDetect, victim, detectAt-ct)
	}
	loot := lt.lost(victim)
	queues[victim] = nil
	for _, id := range loot {
		lt.claim(id, thief)
	}
	queues[thief] = append(queues[thief], loot...)
	res.count(obs.CLostTasks, victim, int64(len(loot)))
	return detectAt + m.XferTime(descriptorBytes*len(loot))
}

// probe models one steal round-trip from thief to a live victim under
// message faults: dropped requests time out after rpcTO and are retried
// with exponential backoff up to maxRetry attempts; delayed requests pay
// the filter's delay; a stalled victim answers when its window ends.
// Returns the thief's clock after the exchange and whether any attempt
// got through.
func probe(links *fault.LinkFilter, m *cluster.Machine, thief, victim int, now float64, seq *int, rpcTO float64, maxRetry int, res *Result) (float64, bool) {
	t := now
	for attempt := 0; attempt < maxRetry; attempt++ {
		k := *seq
		*seq++
		fate := links.Fate(thief, victim, k)
		if fate == fault.Drop {
			res.count(obs.CRetransmits, thief, 1)
			t += rpcTO * float64(uint(1)<<attempt)
			continue
		}
		rtt := m.RoundTripBetween(thief, victim)
		if fate == fault.Delayed {
			rtt += links.DelayTime(thief, victim, k)
		}
		// A stalled victim holds the response until its window ends.
		arrive := t + rtt/2
		if wake := m.StallEnd(victim, arrive); wake > arrive {
			rtt += wake - arrive
		}
		return t + rtt, true
	}
	return t, false
}

// pickAliveVictim picks a victim uniformly among ranks not presumed
// dead. Deterministic: the eligible set is built in rank order and one
// rng draw selects from it.
func pickAliveVictim(self int, deadKnown []bool, rng *rand.Rand, p int) int {
	eligible := make([]int, 0, p-1)
	for r := 0; r < p; r++ {
		if r != self && !deadKnown[r] {
			eligible = append(eligible, r)
		}
	}
	if len(eligible) == 0 {
		return -1
	}
	return eligible[rng.Intn(len(eligible))]
}
