package core

import (
	"reflect"
	"strings"
	"testing"

	"execmodels/internal/chem"
)

// ---------------------------------------------------------------------
// Task-set construction

func TestFockTaskSetGeometry(t *testing.T) {
	fw := fockWorkload(t, 2)
	ts := FockTaskSet(fw)
	if ts.Len() != len(fw.Tasks) {
		t.Fatalf("task set has %d tasks, workload %d", ts.Len(), len(fw.Tasks))
	}
	if ts.NumBlocks != len(fw.Basis.Shells) || len(ts.BlockBytes) != ts.NumBlocks {
		t.Fatalf("block geometry: %d blocks, %d sizes, want %d shells",
			ts.NumBlocks, len(ts.BlockBytes), len(fw.Basis.Shells))
	}
	for i, blocks := range ts.Blocks {
		if len(blocks) == 0 {
			t.Fatalf("task %d touches no blocks", i)
		}
		for j := 1; j < len(blocks); j++ {
			if blocks[j] <= blocks[j-1] {
				t.Fatalf("task %d blocks %v not sorted/deduped", i, blocks)
			}
		}
	}
	if ts.Costs[0] != fw.Tasks[0].EstFlops {
		t.Errorf("cost[0] = %g, want EstFlops %g", ts.Costs[0], fw.Tasks[0].EstFlops)
	}
}

// Keys identify task content: stable across conversions, fresh after a
// re-block (different task boundaries ⇒ different identities), so cost
// history can never silently follow slice indices onto new tasks.
func TestFockTaskSetKeysTrackContent(t *testing.T) {
	fw := fockWorkload(t, 2)
	a, b := FockTaskSet(fw), FockTaskSet(fw)
	if !reflect.DeepEqual(a.Keys, b.Keys) {
		t.Fatal("keys differ between conversions of the same workload")
	}
	seen := map[uint64]bool{}
	for _, k := range a.Keys {
		if seen[k] {
			t.Fatal("duplicate task key within one workload")
		}
		seen[k] = true
	}
	for _, k := range FockTaskSet(fw.Reblock(1)).Keys {
		if seen[k] {
			t.Fatal("re-blocked task reused an old identity key")
		}
	}
}

// ---------------------------------------------------------------------
// Plan lowering

func TestNewWallSchedFromPlanRejectsSimulatorOnly(t *testing.T) {
	cases := []struct {
		name string
		plan *Plan
		want string
	}{
		{"self-sched", &Plan{Pull: &PullPolicy{Kind: PullCounter, Policy: GuidedChunk{}}}, "simulator-only"},
		{"steal-one", &Plan{Pull: &PullPolicy{Kind: PullStealing, Steal: StealOne}}, "steal-half"},
		{"max-victim", &Plan{Pull: &PullPolicy{Kind: PullStealing, Victim: MostLoadedVictim}}, "steal-half"},
		{"hierarchical", &Plan{Pull: &PullPolicy{Kind: PullStealing, Hierarchical: true}}, "steal-half"},
		{"empty", &Plan{}, "empty plan"},
	}
	for _, c := range cases {
		if _, err := newWallSchedFromPlan(c.plan, 8, 2); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
}

// Simulator-only policies must fail at construction, not mid-SCF.
func TestNewWallSchedulerValidatesEagerly(t *testing.T) {
	for _, name := range []string{"self-sched-guided", "self-sched-factoring",
		"work-stealing-one", "work-stealing-maxvictim", "work-stealing-hier"} {
		if _, err := NewWallScheduler(name, 2, WallOptions{}); err == nil {
			t.Errorf("%s: wall backend accepted a simulator-only policy", name)
		}
	}
	if _, err := NewWallScheduler("no-such-policy", 2, WallOptions{}); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := NewWallScheduler("static", 0, WallOptions{}); err == nil {
		t.Error("zero workers accepted")
	}
}

// The fixed-assignment lowering walks each worker's list in ascending
// task order, so a static-block assignment reproduces the dedicated
// static schedule exactly.
func TestWallAssignSchedOrder(t *testing.T) {
	const n, workers = 11, 3
	s := newWallAssignSched(staticBlockAssign(n, workers), workers)
	ref := newWallStaticSched(n, workers)
	for wk := 0; wk < workers; wk++ {
		for {
			a, okA := s.next(wk)
			b, okB := ref.next(wk)
			if okA != okB || (okA && a != b) {
				t.Fatalf("worker %d: assign schedule (%d,%v) diverges from static (%d,%v)", wk, a, okA, b, okB)
			}
			if !okA {
				break
			}
		}
	}
}

// The per-worker cursor walk must stay allocation-free: it runs between
// every pair of tasks on the hot path.
func TestWallAssignSchedNextZeroAlloc(t *testing.T) {
	s := newWallAssignSched(staticBlockAssign(4096, 4), 4)
	if avg := testing.AllocsPerRun(1000, func() {
		s.next(0)
		s.cursors[0].n = 0
	}); avg != 0 {
		t.Errorf("next allocates %.1f/op, want 0", avg)
	}
}

// ---------------------------------------------------------------------
// Differential matrix on the wall backend

// wallSchedPolicyCases is the policy axis of the seam matrix: every
// wall-capable SchedulerByName policy.
func wallSchedPolicyCases() []string {
	return []string{"static", "cyclic", "dynamic", "stealing",
		"lpt", "semimatching", "hypergraph", "hypergraph-flat",
		"persistence", "persistence-sm", "persistence-feedback"}
}

// Every seam policy, at one/odd/NumCPU workers, must reproduce the
// serial Fock matrix within the differential tolerance; the static
// policy must additionally be bit-identical to the dedicated static
// executor (same dealing, same merge order).
func TestWallSchedulerPolicyMatrix(t *testing.T) {
	fw := fockWorkload(t, 2)
	mol := chem.WaterCluster(2, 11)
	h := chem.CoreHamiltonian(fw.Basis, mol)
	d := wallDensity(fw, mol, h)
	serial := fw.BuildFock(h, d)

	for _, policy := range wallSchedPolicyCases() {
		for _, wk := range wallDiffWorkers() {
			ws, err := NewWallScheduler(policy, wk, WallOptions{Seed: 13, Block: 3})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", policy, wk, err)
			}
			res, err := ws.Build(fw, h, d)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", policy, wk, err)
			}
			if diff := res.F.MaxAbsDiff(serial); diff > fockDiffTol {
				t.Errorf("%s workers=%d: Fock differs from serial by %g", policy, wk, diff)
			}
			if policy == "static" {
				refRes := WallStatic(fw, h, d, wk)
				if diff := res.F.MaxAbsDiff(refRes.F); diff != 0 {
					t.Errorf("static seam workers=%d: differs from WallStatic by %g, want bitwise identity", wk, diff)
				}
			}
		}
	}
}

// The unrestricted build path through the seam must match the serial
// spin sweep.
func TestWallSchedulerUHFBuild(t *testing.T) {
	fw := fockWorkload(t, 2)
	mol := chem.WaterCluster(2, 11)
	h := chem.CoreHamiltonian(fw.Basis, mol)
	d := wallDensity(fw, mol, h)
	dA := d.Clone()
	dA.Scale(0.55)
	dB := d.Clone()
	dB.Scale(0.45)
	dTot := dA.Clone()
	dTot.AddScaled(1, dB)
	refJ, refKA, refKB := serialSpinJK(fw, dTot, dA, dB)

	for _, policy := range []string{"semimatching", "persistence-feedback"} {
		ws, err := NewWallScheduler(policy, 3, WallOptions{Seed: 13})
		if err != nil {
			t.Fatal(err)
		}
		res, err := ws.BuildUHF(fw, dTot, dA, dB)
		if err != nil {
			t.Fatal(err)
		}
		if diff := res.J.MaxAbsDiff(refJ); diff > fockDiffTol {
			t.Errorf("%s: J differs by %g", policy, diff)
		}
		if diff := res.KA.MaxAbsDiff(refKA); diff > fockDiffTol {
			t.Errorf("%s: Kα differs by %g", policy, diff)
		}
		if diff := res.KB.MaxAbsDiff(refKB); diff > fockDiffTol {
			t.Errorf("%s: Kβ differs by %g", policy, diff)
		}
	}
}

// ---------------------------------------------------------------------
// Feedback loop on the wall backend

// After one build the feedback scheduler must hold measured wall history
// for every task, and its exported profile must carry positive wall
// seconds; estimate-only policies export nothing.
func TestWallSchedulerFeedbackObserves(t *testing.T) {
	fw := fockWorkload(t, 2)
	mol := chem.WaterCluster(2, 11)
	h := chem.CoreHamiltonian(fw.Basis, mol)
	d := wallDensity(fw, mol, h)

	ws, err := NewWallScheduler("persistence-feedback", 3, WallOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if p := ws.CostProfile(); p == nil || len(p.Tasks) != 0 {
		t.Fatalf("fresh feedback profile = %+v, want empty non-nil", p)
	}
	for it := 0; it < 2; it++ {
		if _, err := ws.Build(fw, h, d); err != nil {
			t.Fatal(err)
		}
	}
	prof := ws.CostProfile()
	if prof == nil || prof.Unit != "wall_seconds" {
		t.Fatalf("profile = %+v, want unit wall_seconds", prof)
	}
	if len(prof.Tasks) != len(fw.Tasks) {
		t.Fatalf("profile has %d tasks, want %d", len(prof.Tasks), len(fw.Tasks))
	}
	for _, tc := range prof.Tasks {
		if tc.Measured <= 0 || tc.Est <= 0 {
			t.Fatalf("non-positive cost in profile: %+v", tc)
		}
	}

	est, err := NewWallScheduler("lpt", 3, WallOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if p := est.CostProfile(); p != nil {
		t.Errorf("estimate-only policy exported a cost profile: %+v", p)
	}
}

// ---------------------------------------------------------------------
// SCF through the seam builders

func TestWallSchedulerSCFEnergy(t *testing.T) {
	mol := chem.Water()
	bs, err := chem.NewBasis("sto-3g", mol)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := chem.RunSCF(mol, bs, chem.SCFOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range []string{"semimatching", "hypergraph", "persistence-feedback"} {
		builder, err := SchedulerFockBuilder(policy, 3, WallOptions{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		res, err := chem.RunSCF(mol, bs, chem.SCFOptions{}, builder)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Errorf("%s: SCF did not converge", policy)
			continue
		}
		if diff := res.Energy - ref.Energy; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s: energy %v differs from serial %v", policy, res.Energy, ref.Energy)
		}
	}
}

func TestWallSchedulerUHFSCFEnergy(t *testing.T) {
	mol := chem.Water()
	mol.Charge = 1
	bs, err := chem.NewBasis("sto-3g", mol)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := chem.RunUHF(mol, bs, chem.UHFOptions{})
	if err != nil {
		t.Fatal(err)
	}
	builder, err := SchedulerUHFFockBuilder("persistence-feedback", 3, WallOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := chem.RunUHF(mol, bs, chem.UHFOptions{Builder: builder})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("UHF through the feedback builder did not converge")
	}
	if diff := res.Energy - ref.Energy; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("energy %v differs from serial %v", res.Energy, ref.Energy)
	}
}
