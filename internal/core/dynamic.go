package core

import (
	"execmodels/internal/cluster"
)

// rankHeap orders ranks by their next event time.
type rankEvent struct {
	rank int
	time float64
}

type rankHeap []rankEvent

func (h rankHeap) Len() int      { return len(h) }
func (h rankHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h rankHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].rank < h[j].rank // deterministic tie-break
}
func (h *rankHeap) Push(x any) { *h = append(*h, x.(rankEvent)) }
func (h *rankHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// DynamicCounter is the centralized dynamic execution model: ranks pull
// chunks of task indices from a shared fetch-and-add counter (the Global
// Arrays NXTVAL idiom). Perfect load balance in principle; in practice the
// counter round-trips and its serialization at the home rank put a floor
// under task granularity and a ceiling on scaling.
type DynamicCounter struct {
	// Chunk is the number of task indices claimed per counter operation
	// (default 1). Larger chunks amortize counter traffic at the price of
	// tail imbalance.
	Chunk int
}

// Name implements Model.
func (d DynamicCounter) Name() string { return "dynamic-counter" }

// Run implements Model (via the scheduler seam's counter engine: a fixed
// chunk makes the pre-claim remaining count a pure read, so the merged
// engine reproduces this model's results exactly).
func (d DynamicCounter) Run(w *Workload, m *cluster.Machine) *Result {
	chunk := d.Chunk
	if chunk < 1 {
		chunk = 1
	}
	return runCounterSim(d.Name(), w, m, FixedChunk(chunk))
}
