package core

import (
	"container/heap"

	"execmodels/internal/cluster"
	"execmodels/internal/obs"
)

// rankHeap orders ranks by their next event time.
type rankEvent struct {
	rank int
	time float64
}

type rankHeap []rankEvent

func (h rankHeap) Len() int      { return len(h) }
func (h rankHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h rankHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].rank < h[j].rank // deterministic tie-break
}
func (h *rankHeap) Push(x any) { *h = append(*h, x.(rankEvent)) }
func (h *rankHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// DynamicCounter is the centralized dynamic execution model: ranks pull
// chunks of task indices from a shared fetch-and-add counter (the Global
// Arrays NXTVAL idiom). Perfect load balance in principle; in practice the
// counter round-trips and its serialization at the home rank put a floor
// under task granularity and a ceiling on scaling.
type DynamicCounter struct {
	// Chunk is the number of task indices claimed per counter operation
	// (default 1). Larger chunks amortize counter traffic at the price of
	// tail imbalance.
	Chunk int
}

// Name implements Model.
func (d DynamicCounter) Name() string { return "dynamic-counter" }

// Run implements Model.
func (d DynamicCounter) Run(w *Workload, m *cluster.Machine) *Result {
	chunk := d.Chunk
	if chunk < 1 {
		chunk = 1
	}
	res := newResult(d.Name(), m.P)
	counter := cluster.NewCounterAgent(m)
	n := int64(len(w.Tasks))

	seen := make([]map[int]bool, m.P)
	for r := range seen {
		seen[r] = map[int]bool{}
	}

	h := make(rankHeap, 0, m.P)
	for r := 0; r < m.P; r++ {
		heap.Push(&h, rankEvent{rank: r, time: 0})
	}
	for h.Len() > 0 {
		ev := heap.Pop(&h).(rankEvent)
		r := ev.rank
		old, done := counter.FetchAdd(ev.time, int64(chunk))
		m.Trace.Record(cluster.Interval{Rank: r, Start: ev.time, End: done, TaskID: -1, Activity: "counter"})
		res.addTime(obs.MCounter, r, done-ev.time)
		if old >= n {
			res.FinishTime[r] = done
			continue
		}
		t := done
		for i := old; i < old+int64(chunk) && i < n; i++ {
			task := &w.Tasks[i]
			dt := m.TaskTimeAt(r, task.Cost, t)
			m.Trace.Record(cluster.Interval{Rank: r, Start: t, End: t + dt, TaskID: task.ID, Activity: "task"})
			res.addBusy(r, dt)
			t += dt
			res.ranTask(r)
			for _, b := range task.Blocks {
				owner := blockOwner(b, m.P)
				if owner == r || seen[r][b] {
					continue
				}
				seen[r][b] = true
				ct := 2 * m.XferTimeBetween(owner, r, w.BlockBytes[b])
				m.Trace.Record(cluster.Interval{Rank: r, Start: t, End: t + ct, TaskID: -1, Activity: "comm", Src: owner, Dst: r, Bytes: w.BlockBytes[b]})
				res.addComm(r, ct, w.BlockBytes[b])
				t += ct
			}
		}
		heap.Push(&h, rankEvent{rank: r, time: t})
	}
	res.count(obs.CCounterOps, 0, counter.Ops())
	res.addTime(obs.MCounterWait, 0, counter.TotalWait())
	res.finalize()
	return res
}
