package core

import (
	"reflect"
	"testing"

	"execmodels/internal/cluster"
	"execmodels/internal/fault"
)

// faultyMachine builds a machine with the given plan compiled in.
func faultyMachine(cfg cluster.Config, p *fault.Plan) *cluster.Machine {
	m := cluster.New(cfg)
	if p != nil {
		m.Faults = fault.NewInjector(p, cfg.Ranks)
	}
	return m
}

// TestResilientDeterministicUnderFaults is the fault-injection analog of
// TestWorkStealingDeterministic and the ISSUE's acceptance criterion:
// with the same workload, machine config, model seed and fault.Plan, two
// runs must agree bit-for-bit — makespan, per-rank schedules, completion
// attribution and every recovery counter. If this breaks, the run stopped
// being a pure function of (workload, machine, seed, plan).
func TestResilientDeterministicUnderFaults(t *testing.T) {
	w := Synthetic(SyntheticOptions{NumTasks: 300, Dist: "lognormal", Sigma: 1.2, Seed: 3})
	cfg := cluster.Config{Ranks: 8, Seed: 5, Heterogeneity: 0.2}
	plan := fault.Spec{
		Ranks: 8, Horizon: 0.03,
		CrashProb: 0.25, StallProb: 0.25, StallMean: 2e-3,
		Drop: 0.05, Delay: 0.05, DelayMean: 1e-5,
		Seed: 99,
	}.Build()

	for _, model := range ResilientModels(42) {
		r1 := model.Run(w, faultyMachine(cfg, plan))
		r2 := model.Run(w, faultyMachine(cfg, plan))

		if r1.Makespan != r2.Makespan {
			t.Errorf("%s: makespan differs across identically seeded runs: %v vs %v",
				model.Name(), r1.Makespan, r2.Makespan)
		}
		if !reflect.DeepEqual(r1.TasksRun, r2.TasksRun) {
			t.Errorf("%s: per-rank task counts differ: %v vs %v", model.Name(), r1.TasksRun, r2.TasksRun)
		}
		if !reflect.DeepEqual(r1.CompletedBy, r2.CompletedBy) {
			t.Errorf("%s: completion attribution differs across replays", model.Name())
		}
		if !reflect.DeepEqual(r1.FinishTime, r2.FinishTime) {
			t.Errorf("%s: per-rank finish times differ: %v vs %v", model.Name(), r1.FinishTime, r2.FinishTime)
		}
		if r1.Crashes != r2.Crashes || r1.LostTasks != r2.LostTasks ||
			r1.ReExecuted != r2.ReExecuted || r1.Retransmits != r2.Retransmits ||
			r1.DetectLatency != r2.DetectLatency || r1.RecoveryTime != r2.RecoveryTime {
			t.Errorf("%s: recovery counters differ across replays:\n  %v\n  %v", model.Name(), r1, r2)
		}

		// A different fault seed must actually change the run, or the plan
		// is not reaching the executors and the test passes vacuously.
		other := fault.Spec{
			Ranks: 8, Horizon: 0.03,
			CrashProb: 0.25, StallProb: 0.25, StallMean: 2e-3,
			Drop: 0.05, Delay: 0.05, DelayMean: 1e-5,
			Seed: 100,
		}.Build()
		r3 := model.Run(w, faultyMachine(cfg, other))
		if r1.Makespan == r3.Makespan && reflect.DeepEqual(r1.CompletedBy, r3.CompletedBy) {
			t.Errorf("%s: fault seeds 99 and 100 produced identical runs; the plan is not being injected", model.Name())
		}
	}
}

// TestExactlyOnceUnderCrashes kills ranks mid-run with an explicit plan
// and checks the accounting the lease table guarantees: every task lands
// in the completed set exactly once, attributed to a rank that was alive
// to finish it, with lost work both detected and re-executed.
func TestExactlyOnceUnderCrashes(t *testing.T) {
	w := Synthetic(SyntheticOptions{NumTasks: 400, Dist: "lognormal", Sigma: 1.0, Seed: 8})
	cfg := cluster.Config{Ranks: 8, Seed: 2, Heterogeneity: 0.2}
	// Two crashes well inside the fault-free makespan (~50ms at 1e9
	// work-units/s): one early, one mid-run.
	plan := &fault.Plan{Crashes: []fault.Crash{
		{Rank: 2, At: 0.004},
		{Rank: 5, At: 0.015},
	}}

	for _, model := range ResilientModels(42) {
		m := faultyMachine(cfg, plan)
		res := model.Run(w, m) // the executors' own audit() panics on violations

		if res.Crashes == 0 {
			t.Errorf("%s: planned crashes were never observed", model.Name())
		}
		if len(res.CompletedBy) != len(w.Tasks) {
			t.Fatalf("%s: CompletedBy covers %d of %d tasks", model.Name(), len(res.CompletedBy), len(w.Tasks))
		}
		counts := map[int]int{}
		for id, r := range res.CompletedBy {
			if r < 0 || r >= cfg.Ranks {
				t.Fatalf("%s: task %d completed by invalid rank %d", model.Name(), id, r)
			}
			counts[r]++
		}
		// A completion accepted from a rank must predate that rank's crash:
		// dead ranks can retain completions from before they died, but the
		// crashed ranks here die early enough that survivors must have
		// absorbed real work from them.
		if counts[2]+counts[5] >= len(w.Tasks)/2 {
			t.Errorf("%s: crashed ranks own %d completions; recovery never moved their work", model.Name(), counts[2]+counts[5])
		}
		if res.LostTasks == 0 {
			t.Errorf("%s: no tasks recorded lost despite mid-run crashes", model.Name())
		}
		if res.DetectLatency <= 0 {
			t.Errorf("%s: crash detection latency not accounted", model.Name())
		}
		if res.Makespan < 0.015 {
			t.Errorf("%s: makespan %v ended before the second planned crash", model.Name(), res.Makespan)
		}
	}
}

// TestResilientFaultFreeConsistency checks F9's p=0 column: on a reliable
// machine the resilient executors add only bookkeeping, so their recovery
// counters are all zero and their makespans sit close to the base models
// they extend (exactly equal for the deterministic static schedule).
func TestResilientFaultFreeConsistency(t *testing.T) {
	w := Synthetic(SyntheticOptions{NumTasks: 300, Dist: "lognormal", Sigma: 1.2, Seed: 3})
	cfg := cluster.Config{Ranks: 8, Seed: 5, Heterogeneity: 0.2}

	for _, model := range ResilientModels(42) {
		res := model.Run(w, cluster.New(cfg))
		if res.Crashes != 0 || res.LostTasks != 0 || res.ReExecuted != 0 ||
			res.Retransmits != 0 || res.RecoveryTime != 0 {
			t.Errorf("%s: nonzero recovery counters on a reliable machine: %v", model.Name(), res)
		}
	}

	base := StaticBlock{}.Run(w, cluster.New(cfg))
	resil := ResilientStatic{}.Run(w, cluster.New(cfg))
	if resil.Makespan != base.Makespan {
		t.Errorf("fault-free resilient-static makespan %v != static-block %v", resil.Makespan, base.Makespan)
	}
	if !reflect.DeepEqual(resil.TasksRun, base.TasksRun) {
		t.Errorf("fault-free resilient-static schedule diverged from static-block: %v vs %v",
			resil.TasksRun, base.TasksRun)
	}
}

// TestStealingDegradesLessThanStatic is F9's headline property as a
// regression test: under a growing crash set, work stealing degrades
// strictly less than static block — both its makespan and the time the
// crashes add over its own fault-free baseline stay strictly below
// static's — because thieves re-absorb a dead rank's queue on demand
// while static survivors stall at the barrier and then carry fixed
// count-based re-assignments. (The overhead comparison is the robust
// one: stealing's fault-free base is already well below static's, so a
// base-relative ratio would mostly measure the baseline gap.)
func TestStealingDegradesLessThanStatic(t *testing.T) {
	w := Synthetic(SyntheticOptions{NumTasks: 600, Dist: "lognormal", Sigma: 1.0, Seed: 4})
	cfg := cluster.Config{Ranks: 8, Seed: 6, Heterogeneity: 0.2}

	staticBase := ResilientStatic{}.Run(w, cluster.New(cfg)).Makespan
	stealBase := ResilientStealing{Seed: 42}.Run(w, cluster.New(cfg)).Makespan

	// Crashes in the first third of the run, where real work is lost: a
	// very late crash loses so little that static can hide the re-runs in
	// its own imbalance slack, which is not the regime F9 studies.
	crashes := []fault.Crash{
		{Rank: 5, At: 0.1 * staticBase},
		{Rank: 2, At: 0.2 * staticBase},
		{Rank: 6, At: 0.3 * staticBase},
	}
	for k := 1; k <= len(crashes); k++ {
		plan := &fault.Plan{Crashes: crashes[:k]}
		msStatic := ResilientStatic{}.Run(w, faultyMachine(cfg, plan)).Makespan
		msSteal := ResilientStealing{Seed: 42}.Run(w, faultyMachine(cfg, plan)).Makespan
		if msSteal >= msStatic {
			t.Errorf("%d crashes: stealing makespan %.4g not strictly below static %.4g", k, msSteal, msStatic)
		}
		if msSteal-stealBase >= msStatic-staticBase {
			t.Errorf("%d crashes: stealing recovery overhead %.4gs not strictly below static %.4gs",
				k, msSteal-stealBase, msStatic-staticBase)
		}
		if msStatic <= staticBase {
			t.Errorf("%d crashes: static shows no degradation; crashes missed the run", k)
		}
	}
}
