package core

import (
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"
)

// ---------------------------------------------------------------------
// Cost model

func TestCostModelFirstObservationReplacesSeed(t *testing.T) {
	cm := NewCostModel(0.5)
	keys := []uint64{1, 2}
	est := []float64{100, 200}
	cm.Observe(keys, est, []float64{3, 5})
	costs, known := cm.Costs(keys, est)
	if known != 2 {
		t.Fatalf("known = %d, want 2", known)
	}
	// Estimates are in different units; the first measurement must win
	// outright, not blend with the seed.
	if costs[0] != 3 || costs[1] != 5 {
		t.Errorf("costs = %v, want [3 5]", costs)
	}
}

func TestCostModelEWMABlend(t *testing.T) {
	cm := NewCostModel(0.25)
	keys := []uint64{7}
	est := []float64{1}
	cm.Observe(keys, est, []float64{8})
	cm.Observe(keys, est, []float64{4})
	costs, _ := cm.Costs(keys, est)
	want := 0.25*4 + 0.75*8
	if math.Abs(costs[0]-want) > 1e-12 {
		t.Errorf("blended cost = %g, want %g", costs[0], want)
	}
	if !cm.Known(7) || cm.Known(8) || cm.Len() != 1 {
		t.Errorf("history bookkeeping wrong: known(7)=%v known(8)=%v len=%d",
			cm.Known(7), cm.Known(8), cm.Len())
	}
}

func TestCostModelAlphaClampIsReplaceLatest(t *testing.T) {
	for _, alpha := range []float64{0, -1, 1.5} {
		cm := NewCostModel(alpha)
		keys := []uint64{1}
		cm.Observe(keys, []float64{1}, []float64{10})
		cm.Observe(keys, []float64{1}, []float64{2})
		costs, _ := cm.Costs(keys, []float64{1})
		if costs[0] != 2 {
			t.Errorf("alpha=%g: cost = %g, want 2 (replace-latest)", alpha, costs[0])
		}
	}
}

// Unmeasured keys fall back to their estimate scaled by the measured
// calibration ratio, so mixed known/unknown cost vectors stay in one
// unit system.
func TestCostModelCalibratesUnknownKeys(t *testing.T) {
	cm := NewCostModel(1)
	cm.Observe([]uint64{1, 2}, []float64{10, 30}, []float64{1, 3}) // Σmeas/Σest = 0.1
	costs, known := cm.Costs([]uint64{1, 99}, []float64{10, 50})
	if known != 1 {
		t.Fatalf("known = %d, want 1", known)
	}
	if costs[0] != 1 {
		t.Errorf("measured key cost = %g, want 1", costs[0])
	}
	if math.Abs(costs[1]-5) > 1e-12 {
		t.Errorf("calibrated estimate = %g, want 5 (= 50 × 0.1)", costs[1])
	}

	// Without any observation there is no calibration: raw estimates.
	fresh := NewCostModel(1)
	costs, known = fresh.Costs([]uint64{1}, []float64{42})
	if known != 0 || costs[0] != 42 {
		t.Errorf("fresh model: costs=%v known=%d, want raw estimate 42, known 0", costs, known)
	}
}

// ---------------------------------------------------------------------
// Task-set identity

func TestTaskSetKeysStableAndContentSensitive(t *testing.T) {
	w := Synthetic(SyntheticOptions{NumTasks: 40, Dist: "lognormal", Seed: 3})
	a, b := TaskSetOf(w), TaskSetOf(w)
	if !reflect.DeepEqual(a.Keys, b.Keys) {
		t.Fatal("keys differ between conversions of the same workload")
	}
	w.Tasks[7].EstCost *= 2
	c := TaskSetOf(w)
	if c.Keys[7] == a.Keys[7] {
		t.Error("changing task content kept the identity key")
	}
	if c.Keys[8] != a.Keys[8] {
		t.Error("untouched task changed key")
	}
}

// ---------------------------------------------------------------------
// Registry

func TestSchedulerByNameRoundTrip(t *testing.T) {
	for _, name := range SchedulerNames() {
		s, err := SchedulerByName(name, SchedOptions{Seed: 3})
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if s.Name() == "" {
			t.Errorf("%s: empty scheduler name", name)
		}
	}
	if _, err := SchedulerByName("no-such-policy", SchedOptions{}); err == nil ||
		!strings.Contains(err.Error(), "unknown scheduler") {
		t.Errorf("unknown name error = %v", err)
	}
}

// ---------------------------------------------------------------------
// Differential matrix: legacy Model.Run vs the scheduler seam

// resultsEqual compares everything deterministic about two simulator
// results (ScheduleCost is real wall time and Model may be an alias).
func resultsEqual(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if a.Makespan != b.Makespan {
		t.Errorf("%s: makespan %g vs %g", label, a.Makespan, b.Makespan)
	}
	if !reflect.DeepEqual(a.BusyTime, b.BusyTime) {
		t.Errorf("%s: busy time differs", label)
	}
	if !reflect.DeepEqual(a.TasksRun, b.TasksRun) {
		t.Errorf("%s: task counts differ: %v vs %v", label, a.TasksRun, b.TasksRun)
	}
	if a.CounterOps != b.CounterOps || a.Steals != b.Steals || a.FailedSteals != b.FailedSteals {
		t.Errorf("%s: telemetry differs: (%d,%d,%d) vs (%d,%d,%d)", label,
			a.CounterOps, a.Steals, a.FailedSteals, b.CounterOps, b.Steals, b.FailedSteals)
	}
}

// Every legacy model must produce the exact same simulated execution as
// its seam scheduler run through RunScheduler/Scheduled — the guarantee
// that unifying the call paths changed nothing observable.
func TestSchedulerSeamMatchesLegacyModels(t *testing.T) {
	const seed = 5
	w := Synthetic(SyntheticOptions{NumTasks: 160, Dist: "lognormal", Seed: 3, EstNoise: 0.3})
	cases := []struct {
		legacy Model
		sched  string
		opt    SchedOptions
		iters  int
	}{
		{StaticBlock{}, "static", SchedOptions{}, 1},
		{StaticCyclic{}, "cyclic", SchedOptions{}, 1},
		{DynamicCounter{Chunk: 2}, "dynamic", SchedOptions{Block: 2}, 1},
		{SelfScheduling{Policy: GuidedChunk{}}, "self-sched-guided", SchedOptions{}, 1},
		{SelfScheduling{Policy: FactoringChunk{}}, "self-sched-factoring", SchedOptions{}, 1},
		{WorkStealing{Seed: seed}, "stealing", SchedOptions{Seed: seed}, 1},
		{WorkStealing{Hierarchical: true, Seed: seed}, "work-stealing-hier", SchedOptions{Seed: seed}, 1},
		{SemiMatchingLB{Seed: seed}, "semimatching", SchedOptions{Seed: seed}, 1},
		{HypergraphLB{Seed: seed}, "hypergraph", SchedOptions{Seed: seed}, 1},
		{HypergraphLB{Flat: true, Seed: seed}, "hypergraph-flat", SchedOptions{Seed: seed}, 1},
		{Persistence{Iterations: 3}, "persistence", SchedOptions{}, 3},
		{PersistenceSM{Iterations: 3, Seed: seed}, "persistence-sm", SchedOptions{Seed: seed}, 3},
	}
	for _, ranks := range []int{1, 7} {
		for _, c := range cases {
			s, err := SchedulerByName(c.sched, c.opt)
			if err != nil {
				t.Fatalf("%s: %v", c.sched, err)
			}
			legacy := c.legacy.Run(w, testMachine(ranks))
			seam := Scheduled{S: s, Iterations: c.iters}.Run(w, testMachine(ranks))
			resultsEqual(t, fmt.Sprintf("%s/P=%d", c.sched, ranks), legacy, seam)
		}
	}
}

// ---------------------------------------------------------------------
// Feedback protocol

// With noisy estimates, the feedback scheduler must recover: once
// iteration 1's measured times are observed, iteration 2+ rebalances on
// truth and the makespan must improve on the estimate-only LPT plan.
func TestRunSchedulerIterationsFeedbackImproves(t *testing.T) {
	w := Synthetic(SyntheticOptions{NumTasks: 240, Dist: "lognormal", Seed: 9, EstNoise: 1.5})
	ranks := 8

	lpt, _ := SchedulerByName("lpt", SchedOptions{})
	estOnly := RunScheduler(lpt, w, testMachine(ranks))

	fb, _ := SchedulerByName("persistence-feedback", SchedOptions{})
	_, history := RunSchedulerIterations(fb, w, testMachine(ranks), 3)
	if len(history) != 3 {
		t.Fatalf("history = %v, want 3 iterations", history)
	}
	// Iteration 1 is the estimate-seeded warm start — same information as
	// plain LPT — so it must match estimate-only exactly.
	if history[0] != estOnly.Makespan {
		t.Errorf("warm-start iteration 1 makespan %g != estimate-only LPT %g", history[0], estOnly.Makespan)
	}
	if history[1] >= history[0] {
		t.Errorf("feedback did not improve: iteration 2 makespan %g >= iteration 1 %g", history[1], history[0])
	}
	if history[2] > history[0] {
		t.Errorf("feedback regressed past the cold start: %v", history)
	}
}

// Classic persistence (alpha 1, no warm start) through the seam keeps
// its contract: iteration 1 is the static block schedule, iteration 2+
// rebalances on measured times.
func TestPersistenceSeamColdStartIsStaticBlock(t *testing.T) {
	w := Synthetic(SyntheticOptions{NumTasks: 120, Dist: "lognormal", Seed: 4})
	ranks := 6
	static := StaticBlock{}.Run(w, testMachine(ranks))
	p, _ := SchedulerByName("persistence", SchedOptions{})
	_, history := RunSchedulerIterations(p, w, testMachine(ranks), 2)
	if history[0] != static.Makespan {
		t.Errorf("persistence cold start %g != static block %g", history[0], static.Makespan)
	}
	if history[1] >= history[0] {
		t.Errorf("persistence did not improve after measuring: %v", history)
	}
}

// ---------------------------------------------------------------------
// History keyed by task identity, not slice index

// Re-blocking (or re-screening) a workload between runs regenerates the
// task decomposition: same total work, different task boundaries. The
// cost history must not follow slice indices onto the new tasks — the
// scheduler has to cold-start on the unseen identities.
func TestPersistenceHistoryKeyedByIdentityAcrossReblock(t *testing.T) {
	wA := Synthetic(SyntheticOptions{NumTasks: 100, Dist: "lognormal", Seed: 8})
	wB := Synthetic(SyntheticOptions{NumTasks: 100, Dist: "lognormal", Seed: 21})
	ranks := 5

	cm := NewCostModel(1)
	sched := NewPersistenceSched(PersistenceOptions{Costs: cm})
	tsA, tsB := TaskSetOf(wA), TaskSetOf(wB)

	// Measure workload A: its keys enter the shared history.
	planA := sched.Plan(tsA, ranks)
	if !reflect.DeepEqual(planA.Assign, staticBlockAssign(tsA.Len(), ranks)) {
		t.Fatal("cold start is not the static block assignment")
	}
	sched.Observe(tsA, tsA.Costs)
	if reflect.DeepEqual(sched.Plan(tsA, ranks).Assign, planA.Assign) {
		t.Fatal("persistence did not rebalance workload A after measuring it")
	}

	// Workload B has the same length but disjoint task identities: the
	// stale-by-index bug would hand it A's measurements; keyed history
	// must cold-start instead.
	for i, k := range tsB.Keys {
		if cm.Known(k) {
			t.Fatalf("task %d of workload B unexpectedly has history", i)
		}
	}
	planB := sched.Plan(tsB, ranks)
	if !reflect.DeepEqual(planB.Assign, staticBlockAssign(tsB.Len(), ranks)) {
		t.Error("unseen task set did not cold-start: index-keyed history leaked across decompositions")
	}

	// End-to-end: Persistence.RunWithHistory on the re-generated workload
	// behaves exactly like a fresh persistence run.
	shared := Persistence{Iterations: 2, Costs: NewCostModel(1)}
	shared.RunWithHistory(wA, testMachine(ranks))
	withHistory, _ := shared.RunWithHistory(wB, testMachine(ranks))
	fresh, _ := Persistence{Iterations: 2}.RunWithHistory(wB, testMachine(ranks))
	resultsEqual(t, "reblocked persistence", fresh, withHistory)
}

// ---------------------------------------------------------------------
// Plan dispatch

func TestRunSchedulerEmptyPlanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty plan did not panic")
		}
	}()
	w := Synthetic(SyntheticOptions{NumTasks: 4, Seed: 1, Dist: "uniform"})
	RunScheduler(emptyPlanSched{}, w, testMachine(2))
}

type emptyPlanSched struct{}

func (emptyPlanSched) Name() string             { return "empty" }
func (emptyPlanSched) Plan(*TaskSet, int) *Plan { return &Plan{} }

func TestRunSchedulerIterationsRejectsPullPolicies(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("pull plan in iterative protocol did not panic")
		}
	}()
	w := Synthetic(SyntheticOptions{NumTasks: 4, Seed: 1, Dist: "uniform"})
	RunSchedulerIterations(CounterSched{Chunk: 1}, w, testMachine(2), 2)
}
