package core
