package core

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func validCkpt() *SCFCheckpoint {
	return &SCFCheckpoint{
		JobID:     "j1",
		Molecule:  "H2O",
		Basis:     "sto-3g",
		N:         2,
		Iteration: 3,
		Energy:    -74.94207989,
		Density:   []float64{1.0, 0.25, 0.25, 0.5},
	}
}

func TestSCFCheckpointRoundTrip(t *testing.T) {
	in := validCkpt()
	var buf bytes.Buffer
	if err := WriteSCFCheckpoint(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadSCFCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Version != scfCheckpointVersion {
		t.Errorf("version = %d, want %d", out.Version, scfCheckpointVersion)
	}
	if out.JobID != in.JobID || out.Molecule != in.Molecule || out.Basis != in.Basis ||
		out.N != in.N || out.Iteration != in.Iteration || out.Energy != in.Energy {
		t.Errorf("round trip changed scalars: %+v vs %+v", out, in)
	}
	if len(out.Density) != len(in.Density) {
		t.Fatalf("density length %d, want %d", len(out.Density), len(in.Density))
	}
	for i := range in.Density {
		if out.Density[i] != in.Density[i] {
			t.Errorf("density[%d] = %v, want %v", i, out.Density[i], in.Density[i])
		}
	}
}

func TestSCFCheckpointValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*SCFCheckpoint)
	}{
		{"zero n", func(c *SCFCheckpoint) { c.N = 0 }},
		{"short density", func(c *SCFCheckpoint) { c.Density = c.Density[:3] }},
		{"iteration zero", func(c *SCFCheckpoint) { c.Iteration = 0 }},
		{"nan energy", func(c *SCFCheckpoint) { c.Energy = math.NaN() }},
		{"inf density", func(c *SCFCheckpoint) { c.Density[1] = math.Inf(1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := validCkpt()
			tc.mutate(c)
			var buf bytes.Buffer
			if err := WriteSCFCheckpoint(&buf, c); err == nil {
				t.Error("writer accepted an invalid checkpoint")
			}
		})
	}
	// The reader re-validates independently: hand-built JSON with a bad
	// version or shape must be rejected even though a writer would never
	// produce it.
	for _, doc := range []string{
		`{"version":99,"n":1,"iteration":1,"energy":0,"density":[0]}`,
		`{"version":1,"n":2,"iteration":1,"energy":0,"density":[0]}`,
		`{"version":1,"n":1,"iteration":0,"energy":0,"density":[0]}`,
		`not json`,
	} {
		if _, err := ReadSCFCheckpoint(strings.NewReader(doc)); err == nil {
			t.Errorf("reader accepted %q", doc)
		}
	}
}
