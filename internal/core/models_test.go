package core

import (
	"math"
	"testing"

	"execmodels/internal/chem"
	"execmodels/internal/cluster"
)

// testMachine returns a small homogeneous machine with negligible
// overheads, where every model should approach the ideal time.
func testMachine(p int) *cluster.Machine {
	return cluster.New(cluster.Config{Ranks: p, Seed: 1})
}

func triangularWorkload(n int) *Workload {
	return Synthetic(SyntheticOptions{NumTasks: n, Dist: "triangular", Seed: 1})
}

// Every model must (a) run every task exactly once and (b) account busy
// time consistent with the task costs.
func TestAllModelsConservation(t *testing.T) {
	w := Synthetic(SyntheticOptions{NumTasks: 200, Dist: "lognormal", Seed: 3})
	m := testMachine(8)
	for _, model := range AllModels(7) {
		res := model.Run(w, m)
		var tasks int
		for _, c := range res.TasksRun {
			tasks += c
		}
		if tasks != len(w.Tasks) {
			t.Errorf("%s: ran %d tasks, want %d", model.Name(), tasks, len(w.Tasks))
		}
		var busy float64
		for _, b := range res.BusyTime {
			busy += b
		}
		// Total busy time = total cost / speed + per-task overheads
		// (no noise on this machine).
		want := w.TotalCost()/1e9 + float64(len(w.Tasks))*m.Cfg.TaskOverhead
		if math.Abs(busy-want) > 1e-9*want {
			t.Errorf("%s: busy %v, want %v", model.Name(), busy, want)
		}
		if res.Makespan <= 0 {
			t.Errorf("%s: non-positive makespan", model.Name())
		}
		for r, f := range res.FinishTime {
			if f > res.Makespan+1e-12 {
				t.Errorf("%s: rank %d finishes after makespan", model.Name(), r)
			}
		}
	}
}

// Makespan can never beat the ideal (perfect balance, zero overhead).
func TestMakespanAboveIdeal(t *testing.T) {
	w := triangularWorkload(300)
	for _, p := range []int{1, 4, 16} {
		m := testMachine(p)
		ideal := m.IdealTime(w.TotalCost())
		for _, model := range AllModels(5) {
			res := model.Run(w, m)
			if res.Makespan < ideal {
				t.Errorf("%s P=%d: makespan %v below ideal %v", model.Name(), p, res.Makespan, ideal)
			}
		}
	}
}

// On one rank every model degenerates to the serial time.
func TestSingleRankEquivalence(t *testing.T) {
	w := Synthetic(SyntheticOptions{NumTasks: 50, Dist: "lognormal", Seed: 2})
	m := testMachine(1)
	var first float64
	for i, model := range AllModels(1) {
		res := model.Run(w, m)
		if res.LoadImbalance() != 1 && res.LoadImbalance() != 0 {
			t.Errorf("%s: imbalance %v on 1 rank", model.Name(), res.LoadImbalance())
		}
		if i == 0 {
			first = res.BusyTime[0]
			continue
		}
		if math.Abs(res.BusyTime[0]-first) > 1e-9*first {
			t.Errorf("%s: serial busy %v != %v", model.Name(), res.BusyTime[0], first)
		}
	}
}

// The headline result: on the triangular cost profile, work stealing must
// beat static block by a wide margin (the paper reports ~50%).
func TestStealingBeatsStaticBlock(t *testing.T) {
	w := triangularWorkload(2048)
	m := testMachine(32)
	static := StaticBlock{}.Run(w, m)
	steal := WorkStealing{Seed: 1}.Run(w, m)
	if steal.Makespan > 0.75*static.Makespan {
		t.Errorf("stealing %v not clearly better than static %v", steal.Makespan, static.Makespan)
	}
	if steal.Steals == 0 {
		t.Error("no steals recorded")
	}
}

// Static block on a triangular profile approaches 2× the ideal (the last
// block holds the heaviest tasks); cyclic fixes that.
func TestStaticBlockTriangularPenalty(t *testing.T) {
	w := triangularWorkload(4096)
	m := testMachine(16)
	ideal := m.IdealTime(w.TotalCost())
	block := StaticBlock{}.Run(w, m)
	cyclic := StaticCyclic{}.Run(w, m)
	if ratio := block.Makespan / ideal; ratio < 1.7 {
		t.Errorf("static block ratio %v, expected ~2 on triangular costs", ratio)
	}
	if ratio := cyclic.Makespan / ideal; ratio > 1.2 {
		t.Errorf("static cyclic ratio %v, expected near 1", ratio)
	}
}

// On a uniform workload with a homogeneous quiet machine, all models are
// within a few percent of each other — irregularity is what separates
// them (ablation for DESIGN.md decision 2).
func TestUniformCostsEraseDifferences(t *testing.T) {
	w := Synthetic(SyntheticOptions{NumTasks: 1024, Dist: "uniform", Seed: 4})
	m := testMachine(16)
	var lo, hi float64 = math.Inf(1), 0
	for _, model := range AllModels(3) {
		res := model.Run(w, m)
		lo = math.Min(lo, res.Makespan)
		hi = math.Max(hi, res.Makespan)
	}
	if hi/lo > 1.25 {
		t.Errorf("uniform workload spread %v, expected tight grouping", hi/lo)
	}
}

// The centralized counter must show contention growth with rank count.
func TestDynamicCounterContentionGrows(t *testing.T) {
	w := Synthetic(SyntheticOptions{NumTasks: 4096, Dist: "lognormal", MeanCost: 2e4, Seed: 5})
	small := DynamicCounter{}.Run(w, testMachine(4))
	big := DynamicCounter{}.Run(w, testMachine(128))
	if big.CounterWait <= small.CounterWait {
		t.Errorf("counter wait did not grow: P=4 %v vs P=128 %v", small.CounterWait, big.CounterWait)
	}
	if small.CounterOps != big.CounterOps-124 { // one final failed fetch per extra rank
		// Each rank performs one last fetch that returns >= n tasks.
		t.Logf("ops small=%d big=%d (informational)", small.CounterOps, big.CounterOps)
	}
}

// Chunking reduces counter ops roughly by the chunk factor.
func TestDynamicCounterChunking(t *testing.T) {
	w := Synthetic(SyntheticOptions{NumTasks: 1000, Dist: "uniform", Seed: 6})
	m := testMachine(8)
	one := DynamicCounter{Chunk: 1}.Run(w, m)
	ten := DynamicCounter{Chunk: 10}.Run(w, m)
	if ten.CounterOps >= one.CounterOps/5 {
		t.Errorf("chunk=10 used %d ops vs chunk=1 %d", ten.CounterOps, one.CounterOps)
	}
}

// Persistence must improve across iterations on a noisy-estimate-free
// machine: iteration 2+ uses measured costs and beats iteration 1's
// static block schedule.
func TestPersistenceImproves(t *testing.T) {
	w := triangularWorkload(1024)
	m := testMachine(16)
	_, hist := Persistence{Iterations: 3}.RunWithHistory(w, m)
	if len(hist) != 3 {
		t.Fatalf("history %v", hist)
	}
	if hist[1] >= hist[0] || hist[2] > hist[1]+1e-12 {
		t.Errorf("persistence did not improve: %v", hist)
	}
	ideal := m.IdealTime(w.TotalCost())
	if hist[2] > 1.15*ideal {
		t.Errorf("persistence final %v far from ideal %v", hist[2], ideal)
	}
}

// Semi-matching and hypergraph must produce similar quality (T3), with
// semi-matching dramatically cheaper to compute (T4).
func TestSemiMatchingVsHypergraph(t *testing.T) {
	fw := fockWorkload(t, 3)
	w := FromFock(fw)
	m := testMachine(16)
	sm := SemiMatchingLB{Seed: 2}.Run(w, m)
	hg := HypergraphLB{Seed: 2}.Run(w, m)
	if sm.Makespan > 1.25*hg.Makespan {
		t.Errorf("semi-matching %v much worse than hypergraph %v", sm.Makespan, hg.Makespan)
	}
	if sm.ScheduleCost <= 0 || hg.ScheduleCost <= 0 {
		t.Fatalf("schedule costs not recorded: %v %v", sm.ScheduleCost, hg.ScheduleCost)
	}
	if sm.ScheduleCost > hg.ScheduleCost {
		t.Errorf("semi-matching cost %v not cheaper than hypergraph %v",
			sm.ScheduleCost, hg.ScheduleCost)
	}
}

// Under injected per-rank performance variability (sustained throttling,
// as from power capping) the adaptive models must degrade far less than
// the static ones — the paper's closing observation about "emerging
// dynamic platforms with energy-induced performance variability".
//
// Note per-*task* iid noise (NoiseSigma) is deliberately not the axis
// here: every rank's sum over many iid task noises concentrates, so all
// models absorb it equally; only *rank-level* speed variation separates
// static from adaptive scheduling.
// The triangular (Fock-like) distribution keeps max/mean ≈ 2 so the
// single-task critical-path bound stays small; a heavy-tailed lognormal
// would let one monster task dominate the tail, which no scheduler can
// fix.
func TestVariabilityRobustness(t *testing.T) {
	w := Synthetic(SyntheticOptions{NumTasks: 2048, Dist: "triangular", Seed: 8})
	quiet := cluster.New(cluster.Config{Ranks: 16, Seed: 2})
	vary := cluster.New(cluster.Config{Ranks: 16, Heterogeneity: 0.4, Seed: 2})

	staticQuiet := StaticCyclic{}.Run(w, quiet)
	staticVary := StaticCyclic{}.Run(w, vary)
	stealQuiet := WorkStealing{Seed: 4}.Run(w, quiet)
	stealVary := WorkStealing{Seed: 4}.Run(w, vary)

	staticSlow := staticVary.Makespan / staticQuiet.Makespan
	stealSlow := stealVary.Makespan / stealQuiet.Makespan
	if stealSlow >= 0.9*staticSlow {
		t.Errorf("stealing slowdown %v not clearly better than static %v", stealSlow, staticSlow)
	}
}

func TestModelRegistry(t *testing.T) {
	names := ModelNames()
	if len(names) != 7 {
		t.Fatalf("expected 7 canonical models, got %v", names)
	}
	for _, n := range names {
		m, err := ModelByName(n, 1)
		if err != nil || m.Name() != n {
			t.Errorf("ModelByName(%q) = %v, %v", n, m, err)
		}
	}
	for _, n := range []string{"work-stealing-one", "work-stealing-maxvictim", "hypergraph-flat"} {
		if _, err := ModelByName(n, 1); err != nil {
			t.Errorf("variant %q not resolvable: %v", n, err)
		}
	}
	if _, err := ModelByName("bogus", 1); err == nil {
		t.Error("expected error for unknown model")
	}
}

// fockWorkload builds a small real chemistry workload for integration
// tests.
func fockWorkload(t testing.TB, waters int) *chem.FockWorkload {
	t.Helper()
	mol := chem.WaterCluster(waters, 11)
	bs, err := chem.NewBasis("sto-3g", mol)
	if err != nil {
		t.Fatal(err)
	}
	return chem.BuildFockWorkload(bs, 1e-9, 4)
}

func TestFromFockWorkload(t *testing.T) {
	fw := fockWorkload(t, 2)
	w := FromFock(fw)
	if len(w.Tasks) != len(fw.Tasks) {
		t.Fatalf("%d tasks vs %d", len(w.Tasks), len(fw.Tasks))
	}
	if w.NumBlocks != len(fw.Basis.Shells) {
		t.Fatalf("NumBlocks = %d", w.NumBlocks)
	}
	for i, task := range w.Tasks {
		if task.Cost != fw.Tasks[i].EstFlops {
			t.Fatalf("task %d cost mismatch", i)
		}
		if len(task.Blocks) == 0 {
			t.Fatalf("task %d has no blocks", i)
		}
		for _, b := range task.Blocks {
			if b < 0 || b >= w.NumBlocks {
				t.Fatalf("task %d block %d out of range", i, b)
			}
		}
	}
	if w.CostImbalance() < 1.2 {
		t.Errorf("Fock workload suspiciously regular: %v", w.CostImbalance())
	}
}

func TestSyntheticDistributions(t *testing.T) {
	for _, dist := range []string{"uniform", "lognormal", "bimodal", "triangular"} {
		w := Synthetic(SyntheticOptions{NumTasks: 500, Dist: dist, Seed: 1})
		if len(w.Tasks) != 500 {
			t.Fatalf("%s: %d tasks", dist, len(w.Tasks))
		}
		mean := w.TotalCost() / 500
		if mean <= 0 {
			t.Fatalf("%s: mean %v", dist, mean)
		}
		// All synthetic distributions target MeanCost ≈ 1e6.
		if mean < 2e5 || mean > 5e6 {
			t.Errorf("%s: mean cost %v implausible", dist, mean)
		}
	}
	if Synthetic(SyntheticOptions{NumTasks: 10, Dist: "uniform"}).CostImbalance() != 1 {
		t.Error("uniform should have imbalance exactly 1")
	}
}

func TestSyntheticUnknownDistPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Synthetic(SyntheticOptions{NumTasks: 3, Dist: "cauchy"})
}

func TestSyntheticEstNoise(t *testing.T) {
	w := Synthetic(SyntheticOptions{NumTasks: 100, Dist: "lognormal", EstNoise: 0.3, Seed: 9})
	var differs bool
	for _, task := range w.Tasks {
		if math.Abs(task.EstCost-task.Cost) > 1e-9 {
			differs = true
		}
		if math.Abs(task.EstCost-task.Cost) > 0.3*task.Cost+1e-9 {
			t.Fatalf("estimate error beyond bound: %v vs %v", task.EstCost, task.Cost)
		}
	}
	if !differs {
		t.Fatal("EstNoise had no effect")
	}
}

func TestStealPolicyVariants(t *testing.T) {
	w := triangularWorkload(512)
	m := testMachine(16)
	half := WorkStealing{Seed: 1}.Run(w, m)
	one := WorkStealing{Steal: StealOne, Seed: 1}.Run(w, m)
	oracle := WorkStealing{Victim: MostLoadedVictim, Seed: 1}.Run(w, m)
	// Steal-one moves one task per round trip → many more steals.
	if one.Steals <= half.Steals {
		t.Errorf("steal-one %d steals vs steal-half %d", one.Steals, half.Steals)
	}
	// The oracle victim policy should waste fewer failed attempts.
	if oracle.FailedSteals > half.FailedSteals {
		t.Errorf("oracle failed %d > random %d", oracle.FailedSteals, half.FailedSteals)
	}
}

func TestResultString(t *testing.T) {
	w := triangularWorkload(64)
	m := testMachine(4)
	res := DynamicCounter{}.Run(w, m)
	if s := res.String(); len(s) == 0 {
		t.Fatal("empty String")
	}
}
