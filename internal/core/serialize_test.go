package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestWorkloadRoundTrip(t *testing.T) {
	w := Synthetic(SyntheticOptions{NumTasks: 50, Dist: "lognormal", EstNoise: 0.2, Seed: 3})
	var buf bytes.Buffer
	if err := WriteWorkload(&buf, w); err != nil {
		t.Fatal(err)
	}
	back, err := ReadWorkload(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != w.Name || back.NumBlocks != w.NumBlocks {
		t.Fatalf("metadata lost: %+v", back)
	}
	if len(back.Tasks) != len(w.Tasks) {
		t.Fatalf("%d tasks", len(back.Tasks))
	}
	for i := range w.Tasks {
		a, b := w.Tasks[i], back.Tasks[i]
		if a.ID != b.ID || a.Cost != b.Cost || a.EstCost != b.EstCost {
			t.Fatalf("task %d changed: %+v vs %+v", i, a, b)
		}
		if len(a.Blocks) != len(b.Blocks) {
			t.Fatalf("task %d blocks changed", i)
		}
	}
	// A round-tripped workload must behave identically under a scheduler.
	m := testMachine(8)
	r1 := StaticCyclic{}.Run(w, m)
	r2 := StaticCyclic{}.Run(back, m)
	if r1.Makespan != r2.Makespan {
		t.Fatalf("behaviour changed after round trip: %v vs %v", r1.Makespan, r2.Makespan)
	}
}

func TestReadWorkloadRejectsGarbage(t *testing.T) {
	cases := []string{
		"not json",
		`{"version":99,"name":"x","numBlocks":0,"blockBytes":[],"tasks":[]}`,
		`{"version":1,"name":"x","numBlocks":2,"blockBytes":[1],"tasks":[]}`,
		`{"version":1,"name":"x","numBlocks":1,"blockBytes":[8],"tasks":[{"id":0,"cost":-1,"estCost":1,"blocks":[0]}]}`,
		`{"version":1,"name":"x","numBlocks":1,"blockBytes":[8],"tasks":[{"id":0,"cost":1,"estCost":1,"blocks":[5]}]}`,
	}
	for i, c := range cases {
		if _, err := ReadWorkload(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestFockWorkloadRoundTrip(t *testing.T) {
	fw := fockWorkload(t, 1)
	w := FromFock(fw)
	var buf bytes.Buffer
	if err := WriteWorkload(&buf, w); err != nil {
		t.Fatal(err)
	}
	back, err := ReadWorkload(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.TotalCost() != w.TotalCost() {
		t.Fatalf("cost changed: %v vs %v", back.TotalCost(), w.TotalCost())
	}
}
