package core

import (
	"fmt"

	"execmodels/internal/chem"
	"execmodels/internal/linalg"
	"execmodels/internal/obs"
)

// This file connects the scheduler seam (scheduler.go) to the wall-clock
// backend: any Scheduler — including the assignment-based policies that
// previously existed only in the simulator (semi-matching, hypergraph,
// persistence) — plans a Fock task set, the plan is lowered onto the
// goroutine executors, and measured per-task wall times feed back into
// FeedbackScheduler implementations for the next SCF iteration.

// FockTaskSet converts a screened Fock workload into the scheduler-seam
// description: stable content keys (chem.FockTask.Key), NBF⁴-style flop
// estimates as costs, and the shell row-blocks of the density/Fock
// matrices as the data-block geometry (mirroring FromFock).
func FockTaskSet(fw *chem.FockWorkload) *TaskSet {
	bs := fw.Basis
	ts := &TaskSet{
		Name:       fmt.Sprintf("fock-%s-n%d", bs.Name, bs.NBF),
		Keys:       make([]uint64, len(fw.Tasks)),
		Costs:      make([]float64, len(fw.Tasks)),
		Blocks:     make([][]int, len(fw.Tasks)),
		NumBlocks:  len(bs.Shells),
		BlockBytes: make([]int, len(bs.Shells)),
	}
	for i := range bs.Shells {
		ts.BlockBytes[i] = bs.Shells[i].NumFuncs() * bs.NBF * 8
	}
	for i := range fw.Tasks {
		t := &fw.Tasks[i]
		ts.Keys[i] = t.Key()
		ts.Costs[i] = t.EstFlops
		seen := map[int]bool{}
		for _, p := range t.BraPairs {
			if !seen[p.I] {
				seen[p.I] = true
				ts.Blocks[i] = append(ts.Blocks[i], p.I)
			}
			if !seen[p.J] {
				seen[p.J] = true
				ts.Blocks[i] = append(ts.Blocks[i], p.J)
			}
		}
		sortInts(ts.Blocks[i])
	}
	return ts
}

// wallAssignSched executes a fixed task→rank assignment on the wall-clock
// backend: each worker walks its own pre-dealt task list (ascending task
// index, so a static-block assignment reproduces wallStaticSched's
// execution order bit for bit) with a padded per-worker cursor. This is
// the lowering that lets every assignment-based simulator policy run
// unchanged on real goroutines.
type wallAssignSched struct {
	lists   [][]int32
	cursors []padCell
}

func newWallAssignSched(assign []int, workers int) *wallAssignSched {
	lists := make([][]int32, workers)
	counts := make([]int, workers)
	for _, r := range assign {
		counts[r]++
	}
	for wk := range lists {
		lists[wk] = make([]int32, 0, counts[wk])
	}
	for i, r := range assign {
		lists[r] = append(lists[r], int32(i))
	}
	return &wallAssignSched{lists: lists, cursors: make([]padCell, workers)}
}

// next implements the fixed-assignment schedule for worker wk.
//
//hotpath:allocfree
func (s *wallAssignSched) next(wk int) (int, bool) {
	c := int(s.cursors[wk].n)
	if c >= len(s.lists[wk]) {
		return 0, false
	}
	s.cursors[wk].n++
	return int(s.lists[wk][c]), true
}

func (s *wallAssignSched) counters() wallCounters { return wallCounters{} }

// newWallSchedFromPlan lowers one scheduler plan onto the wall-clock
// executors. Assignment plans run through wallAssignSched; pull plans map
// onto the existing counter and stealing schedules. Self-scheduling
// chunk policies and the stealing variants (steal-one, max-loaded
// victim, hierarchical) model cluster behaviors with no goroutine
// counterpart and are rejected as simulator-only.
func newWallSchedFromPlan(plan *Plan, n, workers int) (wallSched, error) {
	switch {
	case plan.Assign != nil:
		return newWallAssignSched(plan.Assign, workers), nil
	case plan.Pull != nil && plan.Pull.Kind == PullCounter:
		if plan.Pull.Policy != nil {
			return nil, fmt.Errorf("core: self-scheduling chunk policy %q is simulator-only", plan.Pull.Policy.Name())
		}
		return newWallDynSched(n, workers, plan.Pull.Chunk), nil
	case plan.Pull != nil && plan.Pull.Kind == PullStealing:
		if plan.Pull.Steal != StealHalf || plan.Pull.Victim != RandomVictim || plan.Pull.Hierarchical {
			return nil, fmt.Errorf("core: only steal-half/random-victim stealing runs on the wall-clock backend")
		}
		return newWallStealSched(n, workers, plan.Pull.Seed), nil
	}
	return nil, fmt.Errorf("core: empty plan")
}

// WallScheduler runs SCF Fock builds through one seam Scheduler on the
// wall-clock backend, closing the feedback loop when the scheduler
// implements FeedbackScheduler: iteration k's per-task wall times are
// measured in the worker loop and Observed before iteration k+1 plans.
// A WallScheduler carries per-job state (re-block cache, task-set cache,
// measured-cost history) and is driven sequentially — one Fock build per
// SCF iteration — so it must not be shared between concurrent jobs.
type WallScheduler struct {
	sched   Scheduler
	fb      FeedbackScheduler // non-nil iff sched feeds back
	workers int
	opt     WallOptions

	cache   reblockCache
	tsSrc   *chem.FockWorkload
	ts      *TaskSet
	taskSec []float64
}

// NewWallScheduler builds a wall-clock runner for the named scheduler
// policy (SchedulerByName vocabulary). Policies whose plans cannot run
// on the wall-clock backend fail here, at setup, not mid-SCF.
func NewWallScheduler(name string, workers int, opt WallOptions) (*WallScheduler, error) {
	if workers < 1 {
		return nil, fmt.Errorf("core: workers = %d", workers)
	}
	sched, err := SchedulerByName(name, SchedOptions{Seed: opt.Seed, Block: opt.Block})
	if err != nil {
		return nil, err
	}
	// Validate plan compatibility eagerly on an empty task set (pull
	// policies are task-set independent; assignment plans always lower).
	if _, err := newWallSchedFromPlan(sched.Plan(&TaskSet{}, workers), 0, workers); err != nil {
		return nil, err
	}
	ws := &WallScheduler{sched: sched, workers: workers, opt: opt}
	ws.fb, _ = sched.(FeedbackScheduler)
	return ws, nil
}

// Name returns the underlying scheduler's policy name.
func (s *WallScheduler) Name() string { return s.sched.Name() }

// CostProfile exports the measured-cost model of a feedback policy as an
// obs profile (unit wall_seconds); nil for estimate-only policies.
func (s *WallScheduler) CostProfile() *obs.CostProfile {
	type costed interface{ Costs() *CostModel }
	if c, ok := s.sched.(costed); ok && s.fb != nil {
		return c.Costs().Profile(s.sched.Name(), "wall_seconds")
	}
	return nil
}

// taskSetFor caches the seam task set per (re-blocked) workload, so an
// SCF run hashes task identities once, not once per iteration.
func (s *WallScheduler) taskSetFor(fw *chem.FockWorkload) *TaskSet {
	if s.tsSrc != fw {
		s.tsSrc, s.ts = fw, FockTaskSet(fw)
	}
	return s.ts
}

// prep plans one Fock build: re-block, plan, lower, and (for feedback
// policies) arm the per-task measurement buffer.
func (s *WallScheduler) prep(fw *chem.FockWorkload) (*chem.FockWorkload, *TaskSet, wallSched, []float64, error) {
	fw = s.cache.get(fw, s.opt.PairBlock)
	ts := s.taskSetFor(fw)
	sched, err := newWallSchedFromPlan(s.sched.Plan(ts, s.workers), ts.Len(), s.workers)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	var taskSec []float64
	if s.fb != nil {
		if cap(s.taskSec) < ts.Len() {
			s.taskSec = make([]float64, ts.Len())
		}
		taskSec = s.taskSec[:ts.Len()]
	}
	return fw, ts, sched, taskSec, nil
}

// Build runs one restricted Fock build (F = H + J − K/2) under the
// scheduler's current plan and feeds measured task times back into
// feedback policies.
func (s *WallScheduler) Build(fw *chem.FockWorkload, h, d *linalg.Matrix) (*WallResult, error) {
	fw, ts, sched, taskSec, err := s.prep(fw)
	if err != nil {
		return nil, err
	}
	res := wallBuild(sched, fw, h, d, s.workers, taskSec)
	if s.fb != nil {
		s.fb.Observe(ts, taskSec)
	}
	return res, nil
}

// BuildUHF runs one unrestricted J/Kα/Kβ build under the scheduler's
// current plan, with the same feedback path as Build.
func (s *WallScheduler) BuildUHF(fw *chem.FockWorkload, dTot, dA, dB *linalg.Matrix) (*WallSpinResult, error) {
	fw, ts, sched, taskSec, err := s.prep(fw)
	if err != nil {
		return nil, err
	}
	j, kA, kB, elapsed, busy := wallRunJK(fw, dTot, dA, dB, true, s.workers, sched, taskSec)
	if s.fb != nil {
		s.fb.Observe(ts, taskSec)
	}
	res := &WallSpinResult{J: j, KA: kA, KB: kB, Elapsed: elapsed, WorkerBusy: busy}
	c := sched.counters()
	res.Steals, res.StealRetry, res.StealSeed, res.CounterOps = c.steals, c.retries, c.seed, c.counterOps
	return res, nil
}

// SchedulerFockBuilder returns a chem.FockBuilder that runs every Fock
// build of an SCF iteration through the named seam scheduler — the
// wall-clock twin of RunScheduler. Each returned builder owns private
// feedback state, so concurrent SCF jobs need one builder each.
func SchedulerFockBuilder(name string, workers int, opt WallOptions) (chem.FockBuilder, error) {
	ws, err := NewWallScheduler(name, workers, opt)
	if err != nil {
		return nil, err
	}
	return func(fw *chem.FockWorkload, h, d *linalg.Matrix) *linalg.Matrix {
		res, err := ws.Build(fw, h, d)
		if err != nil {
			// Unreachable: plan compatibility was validated at setup.
			panic(err)
		}
		return res.F
	}, nil
}

// SchedulerUHFFockBuilder is SchedulerFockBuilder's unrestricted
// counterpart.
func SchedulerUHFFockBuilder(name string, workers int, opt WallOptions) (chem.UHFFockBuilder, error) {
	ws, err := NewWallScheduler(name, workers, opt)
	if err != nil {
		return nil, err
	}
	return func(fw *chem.FockWorkload, dTot, dA, dB *linalg.Matrix) (j, kA, kB *linalg.Matrix) {
		res, err := ws.BuildUHF(fw, dTot, dA, dB)
		if err != nil {
			panic(err)
		}
		return res.J, res.KA, res.KB
	}, nil
}

// sortInts is a tiny insertion sort for the short per-task block lists
// (typically 2–8 entries), avoiding sort.Ints interface overhead during
// task-set construction.
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
