package core

import (
	"execmodels/internal/cluster"
)

// Persistence is the persistence-based load-balancing model for iterative
// applications (like SCF, which rebuilds the Fock matrix every iteration
// over the same task set): the first iteration runs under a static block
// schedule while measuring actual per-task times; subsequent iterations
// redistribute tasks by LPT over the measured costs. The principle of
// persistence — task costs change slowly across iterations — makes the
// measured profile a better cost model than any a-priori estimate.
//
// The protocol itself lives in PersistenceSched + RunSchedulerIterations;
// this type is the Model-interface view of it.
type Persistence struct {
	// Iterations is the number of application iterations simulated
	// (default 3). The returned Result describes the final iteration;
	// History carries the full trajectory.
	Iterations int

	// Costs, when non-nil, carries the measured-cost history across
	// RunWithHistory calls (keyed by task identity, so a re-blocked or
	// re-screened task set between runs starts cold instead of reusing
	// stale measurements). Nil keeps each run self-contained, the
	// classic behavior.
	Costs *CostModel
}

// Name implements Model.
func (Persistence) Name() string { return "persistence" }

// Run implements Model. The final iteration's result is returned with the
// makespans of all iterations in History order embedded via
// RunWithHistory; use that variant when the trajectory matters.
func (p Persistence) Run(w *Workload, m *cluster.Machine) *Result {
	res, _ := p.RunWithHistory(w, m)
	return res
}

// RunWithHistory runs the iterative protocol and returns the final
// iteration's result together with the per-iteration makespans.
func (p Persistence) RunWithHistory(w *Workload, m *cluster.Machine) (*Result, []float64) {
	sched := NewPersistenceSched(PersistenceOptions{Costs: p.Costs, ForceName: p.Name()})
	return RunSchedulerIterations(sched, w, m, p.Iterations)
}
