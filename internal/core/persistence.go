package core

import (
	"execmodels/internal/cluster"
	"execmodels/internal/semimatching"
)

// Persistence is the persistence-based load-balancing model for iterative
// applications (like SCF, which rebuilds the Fock matrix every iteration
// over the same task set): the first iteration runs under a static block
// schedule while measuring actual per-task times; subsequent iterations
// redistribute tasks by LPT over the measured costs. The principle of
// persistence — task costs change slowly across iterations — makes the
// measured profile a better cost model than any a-priori estimate.
type Persistence struct {
	// Iterations is the number of application iterations simulated
	// (default 3). The returned Result describes the final iteration;
	// History carries the full trajectory.
	Iterations int
}

// Name implements Model.
func (Persistence) Name() string { return "persistence" }

// Run implements Model. The final iteration's result is returned with the
// makespans of all iterations in History order embedded via
// RunWithHistory; use that variant when the trajectory matters.
func (p Persistence) Run(w *Workload, m *cluster.Machine) *Result {
	res, _ := p.RunWithHistory(w, m)
	return res
}

// RunWithHistory runs the iterative protocol and returns the final
// iteration's result together with the per-iteration makespans.
func (p Persistence) RunWithHistory(w *Workload, m *cluster.Machine) (*Result, []float64) {
	iters := p.Iterations
	if iters < 1 {
		iters = 3
	}
	n := len(w.Tasks)

	// Iteration 1: static block, measuring per-task times.
	assign := make([]int, n)
	per := (n + m.P - 1) / m.P
	for i := range assign {
		r := i / per
		if r >= m.P {
			r = m.P - 1
		}
		assign[i] = r
	}

	measured := make([]float64, n)
	var history []float64
	var res *Result
	for it := 0; it < iters; it++ {
		// Each iteration restarts the virtual clocks at zero; reset the
		// trace so it describes the same (final) iteration the Result does.
		m.Trace.Reset()
		res = runAssignmentMeasuring(p.Name(), w, m, assign, measured)
		history = append(history, res.Makespan)
		if it == iters-1 {
			break
		}
		// Rebalance for the next iteration on the measured profile.
		b := semimatching.Complete(n, m.P)
		assign = semimatching.LPT(b, measured).Of
	}
	return res, history
}

// runAssignmentMeasuring is runAssignment plus per-task time capture.
// Each call describes one fresh iteration starting at virtual time zero,
// so callers iterating must Reset the machine trace between calls.
func runAssignmentMeasuring(model string, w *Workload, m *cluster.Machine, assign []int, measured []float64) *Result {
	res := newResult(model, m.P)
	seen := make([]map[int]bool, m.P)
	clock := make([]float64, m.P)
	for r := range seen {
		seen[r] = map[int]bool{}
	}
	for i, t := range w.Tasks {
		r := assign[i]
		dt := m.TaskTimeAt(r, t.Cost, clock[r])
		measured[i] = dt
		m.Trace.Record(cluster.Interval{Rank: r, Start: clock[r], End: clock[r] + dt, TaskID: t.ID, Activity: "task"})
		res.addBusy(r, dt)
		clock[r] += dt
		res.ranTask(r)
		for _, b := range t.Blocks {
			owner := blockOwner(b, m.P)
			if owner == r || seen[r][b] {
				continue
			}
			seen[r][b] = true
			ct := 2 * m.XferTimeBetween(owner, r, w.BlockBytes[b])
			m.Trace.Record(cluster.Interval{Rank: r, Start: clock[r], End: clock[r] + ct, TaskID: -1, Activity: "comm", Src: owner, Dst: r, Bytes: w.BlockBytes[b]})
			res.addComm(r, ct, w.BlockBytes[b])
			clock[r] += ct
		}
	}
	for r := 0; r < m.P; r++ {
		res.FinishTime[r] = clock[r]
	}
	res.finalize()
	return res
}
