package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"execmodels/internal/cluster"
)

// randomConfig draws a random but valid machine configuration.
func randomConfig(rng *rand.Rand) cluster.Config {
	cfg := cluster.Config{
		Ranks:         1 + rng.Intn(32),
		Seed:          rng.Int63(),
		Heterogeneity: rng.Float64() * 0.5,
	}
	if rng.Intn(2) == 0 {
		cfg.NoiseSigma = rng.Float64() * 0.3
	}
	if rng.Intn(2) == 0 {
		cfg.CoresPerNode = 1 + rng.Intn(4)
	}
	if rng.Intn(3) == 0 {
		cfg.ThrottleProb = rng.Float64() * 0.4
	}
	return cfg
}

func randomWorkload(rng *rand.Rand) *Workload {
	dists := []string{"uniform", "lognormal", "bimodal", "triangular"}
	return Synthetic(SyntheticOptions{
		NumTasks: 1 + rng.Intn(300),
		Dist:     dists[rng.Intn(len(dists))],
		Sigma:    0.5 + rng.Float64(),
		Seed:     rng.Int63(),
	})
}

// Universal invariants: every model on every machine/workload combination
// (a) runs every task exactly once, (b) never reports a rank finishing
// after the makespan, (c) keeps all reported times non-negative.
func TestPropertyAllModelsAllMachines(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := randomWorkload(rng)
		m := cluster.New(randomConfig(rng))
		models := append(AllModels(rng.Int63()),
			SelfScheduling{Policy: GuidedChunk{}},
			SelfScheduling{Policy: FactoringChunk{}},
			WorkStealing{Hierarchical: true, Seed: rng.Int63()},
			PersistenceSM{Iterations: 2, Seed: rng.Int63()},
		)
		for _, model := range models {
			res := model.Run(w, m)
			var tasks int
			for _, c := range res.TasksRun {
				tasks += c
			}
			if tasks != len(w.Tasks) {
				t.Logf("%s: %d of %d tasks (seed %d)", model.Name(), tasks, len(w.Tasks), seed)
				return false
			}
			for r := 0; r < m.P; r++ {
				if res.BusyTime[r] < 0 || res.CommTime[r] < 0 || res.FinishTime[r] < 0 {
					t.Logf("%s: negative time on rank %d", model.Name(), r)
					return false
				}
				if res.FinishTime[r] > res.Makespan+1e-9 {
					t.Logf("%s: rank %d finish %v > makespan %v", model.Name(), r, res.FinishTime[r], res.Makespan)
					return false
				}
			}
			if res.Makespan <= 0 {
				t.Logf("%s: non-positive makespan", model.Name())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Determinism: the same seed must reproduce identical results for every
// model (the whole experiment suite depends on this).
func TestPropertyDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := randomWorkload(rng)
		cfg := randomConfig(rng)
		for _, name := range append(ModelNames(), "self-sched-guided", "work-stealing-hier") {
			m1, _ := ModelByName(name, 42)
			m2, _ := ModelByName(name, 42)
			if m1 == nil {
				return false
			}
			r1 := m1.Run(w, cluster.New(cfg))
			r2 := m2.Run(w, cluster.New(cfg))
			if r1.Makespan != r2.Makespan {
				t.Logf("%s: %v != %v (seed %d)", name, r1.Makespan, r2.Makespan, seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// Monotonicity in machine size: for cost-oblivious models on a quiet
// homogeneous machine, doubling the ranks never increases the makespan by
// more than rounding effects.
func TestPropertyScalingMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := Synthetic(SyntheticOptions{
			NumTasks: 64 + rng.Intn(512),
			Dist:     "triangular",
			Seed:     rng.Int63(),
		})
		for _, name := range []string{"static-cyclic", "dynamic-counter", "work-stealing"} {
			model, _ := ModelByName(name, 7)
			prev := model.Run(w, cluster.New(cluster.Config{Ranks: 2, Seed: 1})).Makespan
			for _, p := range []int{4, 8, 16} {
				cur := model.Run(w, cluster.New(cluster.Config{Ranks: p, Seed: 1})).Makespan
				// Allow 5% slack: queue-tail granularity is not strictly
				// monotone.
				if cur > prev*1.05 {
					t.Logf("%s: P=%d makespan %v > P/2 %v", name, p, cur, prev)
					return false
				}
				prev = cur
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
