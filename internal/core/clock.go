package core

import "time"

// stopwatch is the single sanctioned access to the wall clock inside the
// simulation packages. The execlint determinism check allowlists
// startStopwatch/elapsed and flags every other time.Now/time.Since call,
// keeping the boundary auditable: wall-clock executors and schedule-cost
// accounting *measure* real time through it, but scheduling decisions may
// never consult it — simulated results must replay exactly from a seed.
type stopwatch struct{ t0 time.Time }

// startStopwatch begins timing.
func startStopwatch() stopwatch { return stopwatch{t0: time.Now()} }

// elapsed returns the wall time since the stopwatch started.
func (s stopwatch) elapsed() time.Duration { return time.Since(s.t0) }

// seconds returns the elapsed wall time in seconds.
func (s stopwatch) seconds() float64 { return s.elapsed().Seconds() }
