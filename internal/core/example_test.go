package core_test

import (
	"fmt"

	"execmodels/internal/cluster"
	"execmodels/internal/core"
)

// Compare two execution models on the same irregular workload and
// machine. Work stealing adapts to the triangular cost profile that
// cripples the static block schedule.
func ExampleModel() {
	w := core.Synthetic(core.SyntheticOptions{
		NumTasks: 1024,
		Dist:     "triangular",
		Seed:     1,
	})
	m := cluster.New(cluster.Config{Ranks: 16, Seed: 1})

	static := core.StaticBlock{}.Run(w, m)
	steal := core.WorkStealing{Seed: 1}.Run(w, m)
	fmt.Printf("static-block imbalance %.2f\n", static.LoadImbalance())
	fmt.Printf("work-stealing imbalance %.2f\n", steal.LoadImbalance())
	fmt.Println("stealing faster:", steal.Makespan < static.Makespan)
	// Output:
	// static-block imbalance 1.94
	// work-stealing imbalance 1.04
	// stealing faster: true
}
