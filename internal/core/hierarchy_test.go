package core

import (
	"testing"

	"execmodels/internal/cluster"
)

func nodeMachine(nodes, cores int, interLatency float64) *cluster.Machine {
	return cluster.New(cluster.Config{
		Ranks:        nodes * cores,
		CoresPerNode: cores,
		Latency:      interLatency,
		Seed:         1,
	})
}

func TestHierarchicalStealingRunsAllTasks(t *testing.T) {
	w := Synthetic(SyntheticOptions{NumTasks: 512, Dist: "triangular", Seed: 1})
	m := nodeMachine(4, 4, 1e-5)
	res := WorkStealing{Hierarchical: true, Seed: 2}.Run(w, m)
	var tasks int
	for _, c := range res.TasksRun {
		tasks += c
	}
	if tasks != len(w.Tasks) {
		t.Fatalf("ran %d tasks", tasks)
	}
	if res.Model != "work-stealing-hier" {
		t.Fatalf("model name %q", res.Model)
	}
}

// With expensive inter-node links, hierarchical stealing must keep steal
// traffic on-node: far fewer steals cross a node boundary.
func TestHierarchicalReducesRemoteSteals(t *testing.T) {
	w := Synthetic(SyntheticOptions{
		NumTasks: 2048, Dist: "triangular", MeanCost: 2e4, Seed: 3,
	})
	m1 := nodeMachine(8, 4, 50e-6) // very slow network
	flat := WorkStealing{Seed: 4}.Run(w, m1)
	m2 := nodeMachine(8, 4, 50e-6)
	hier := WorkStealing{Hierarchical: true, Seed: 4}.Run(w, m2)
	if flat.RemoteSteals == 0 {
		t.Fatal("flat stealing did no remote steals; test setup broken")
	}
	frac := float64(hier.RemoteSteals) / float64(hier.Steals)
	flatFrac := float64(flat.RemoteSteals) / float64(flat.Steals)
	if frac >= flatFrac {
		t.Errorf("hierarchical remote-steal fraction %.2f not below flat %.2f", frac, flatFrac)
	}
	// Makespan stays comparable. (It need not *win*: local steal-half
	// fragments an overloaded node's queues, so each remote steal nets
	// less — the benefit of hierarchy is the remote-traffic reduction.)
	if hier.Makespan > 1.25*flat.Makespan {
		t.Errorf("hierarchical makespan %v far above flat %v", hier.Makespan, flat.Makespan)
	}
}

// On a flat machine (1 core per node) hierarchical degenerates to random
// stealing and must still complete correctly.
func TestHierarchicalOnFlatMachine(t *testing.T) {
	w := Synthetic(SyntheticOptions{NumTasks: 256, Dist: "lognormal", Seed: 5})
	m := testMachine(8)
	res := WorkStealing{Hierarchical: true, Seed: 6}.Run(w, m)
	var tasks int
	for _, c := range res.TasksRun {
		tasks += c
	}
	if tasks != len(w.Tasks) {
		t.Fatalf("ran %d tasks", tasks)
	}
}

// Locality-aware balancers must see cheaper communication on a
// hierarchical machine when blocks live on-node.
func TestTopologyAwareCommCost(t *testing.T) {
	w := Synthetic(SyntheticOptions{NumTasks: 512, Dist: "uniform", Seed: 7})
	flat := cluster.New(cluster.Config{Ranks: 16, Seed: 1})
	hier := cluster.New(cluster.Config{Ranks: 16, CoresPerNode: 8, Seed: 1})
	rf := StaticCyclic{}.Run(w, flat)
	rh := StaticCyclic{}.Run(w, hier)
	var commFlat, commHier float64
	for r := 0; r < 16; r++ {
		commFlat += rf.CommTime[r]
		commHier += rh.CommTime[r]
	}
	if commHier >= commFlat {
		t.Errorf("hierarchical comm %v not below flat %v", commHier, commFlat)
	}
}
