package core

import (
	"execmodels/internal/cluster"
	"execmodels/internal/hypergraph"
	"execmodels/internal/semimatching"
)

// buildTaskGraph constructs the task–rank bipartite graph used by the
// semi-matching policies: each task connects to the owners of its data
// blocks plus extra deterministic pseudo-random candidate ranks (default
// 2) for connectivity. The hash sequence is shared by every caller
// (SemiMatchingLB, SemiMatchingSched, PersistenceSched) so the same seed
// yields the same graph through any call path.
func buildTaskGraph(n, ranks, extra int, seed int64, blocksOf func(int) []int) *semimatching.Bipartite {
	if extra == 0 {
		extra = 2
	}
	b := semimatching.NewBipartite(n, ranks)
	// Deterministic pseudo-random extra edges from a cheap hash so graph
	// construction costs stay honest (no RNG state in the hot path).
	h := uint64(seed)*2654435761 + 12345
	for i := 0; i < n; i++ {
		for _, blk := range blocksOf(i) {
			b.AddEdge(i, blockOwner(blk, ranks))
		}
		for e := 0; e < extra; e++ {
			h = h*6364136223846793005 + 1442695040888963407
			b.AddEdge(i, int(h>>33)%ranks)
		}
	}
	return b
}

// SemiMatchingLB is the paper's novel load balancer: tasks and ranks form
// a bipartite graph whose edges connect each task to the owners of the
// data blocks it touches (plus a few random ranks for connectivity), and
// a weighted semi-matching assigns tasks to ranks, simultaneously
// balancing load and preserving locality — at a tiny fraction of the cost
// of hypergraph partitioning.
type SemiMatchingLB struct {
	// ExtraEdges is the number of additional random candidate ranks per
	// task (default 2). Zero keeps strictly data-owner edges, which can
	// leave the bipartite graph too constrained to balance.
	ExtraEdges int
	Seed       int64
}

// Name implements Model.
func (SemiMatchingLB) Name() string { return "semi-matching" }

// Run implements Model (via the scheduler seam).
func (s SemiMatchingLB) Run(w *Workload, m *cluster.Machine) *Result {
	return RunScheduler(SemiMatchingSched{ExtraEdges: s.ExtraEdges, Seed: s.Seed}, w, m)
}

// BuildGraphForBench exposes the bipartite-graph construction so the T4
// experiment can time the semi-matching pipeline end to end outside Run.
func (s SemiMatchingLB) BuildGraphForBench(w *Workload, ranks int) *semimatching.Bipartite {
	return s.buildGraph(w, ranks)
}

// buildGraph constructs the task–rank bipartite graph from block
// ownership.
func (s SemiMatchingLB) buildGraph(w *Workload, ranks int) *semimatching.Bipartite {
	return buildTaskGraph(len(w.Tasks), ranks, s.ExtraEdges, s.Seed, func(i int) []int { return w.Tasks[i].Blocks })
}

// weightedSemiMatchAssign runs the weighted semi-matching on an existing
// graph with the given weights and returns the task→rank assignment.
func weightedSemiMatchAssign(b *semimatching.Bipartite, weights []float64) []int {
	return semimatching.WeightedSemiMatch(b, weights).Of
}

// HypergraphLB is the traditional high-quality baseline: tasks are
// hypergraph vertices weighted by estimated cost, data blocks are nets,
// and a multilevel partitioner splits the tasks into P parts minimizing
// communication volume under a balance constraint. Produces excellent
// schedules — and costs orders of magnitude more to compute than the
// semi-matching, which is the trade-off experiment T4 quantifies.
type HypergraphLB struct {
	Eps  float64 // balance slack (default 0.05)
	Seed int64
	Flat bool // ablation: disable the multilevel hierarchy
}

// Name implements Model.
func (h HypergraphLB) Name() string {
	if h.Flat {
		return "hypergraph-flat"
	}
	return "hypergraph"
}

// Run implements Model (via the scheduler seam).
func (hl HypergraphLB) Run(w *Workload, m *cluster.Machine) *Result {
	return RunScheduler(HypergraphSched{Eps: hl.Eps, Seed: hl.Seed, Flat: hl.Flat}, w, m)
}

// planAssign partitions a scheduler-seam task set (used by
// HypergraphSched.Plan).
func (hl HypergraphLB) planAssign(ts *TaskSet, ranks int) []int {
	h := buildHypergraph(ts.Len(), ts.NumBlocks, ts.BlockBytes,
		func(i int) float64 { return ts.Costs[i] },
		func(i int) []int { return ts.Blocks[i] })
	return hypergraph.Partition(h, ranks, hypergraph.Options{
		Eps:  hl.Eps,
		Seed: hl.Seed,
		Flat: hl.Flat,
	}).Part
}

// BuildHypergraph converts a workload into the partitioning hypergraph:
// one vertex per task (weight = estimated cost), one net per data block
// (pins = tasks touching it, weight = block bytes, so the connectivity-1
// cut is exactly the replication communication volume).
func BuildHypergraph(w *Workload) *hypergraph.Hypergraph {
	return buildHypergraph(len(w.Tasks), w.NumBlocks, w.BlockBytes,
		func(i int) float64 { return w.Tasks[i].EstCost },
		func(i int) []int { return w.Tasks[i].Blocks })
}

// buildHypergraph is the shared construction behind BuildHypergraph and
// the scheduler-seam path.
func buildHypergraph(n, numBlocks int, blockBytes []int, vweight func(int) float64, blocksOf func(int) []int) *hypergraph.Hypergraph {
	h := hypergraph.New(n)
	for i := 0; i < n; i++ {
		h.VWeights[i] = vweight(i)
	}
	pins := make([][]int, numBlocks)
	for i := 0; i < n; i++ {
		for _, b := range blocksOf(i) {
			pins[b] = append(pins[b], i)
		}
	}
	for b, p := range pins {
		if len(p) >= 2 {
			h.AddNet(float64(blockBytes[b]), p...)
		}
	}
	return h
}
