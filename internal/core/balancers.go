package core

import (
	"execmodels/internal/cluster"
	"execmodels/internal/hypergraph"
	"execmodels/internal/semimatching"
)

// SemiMatchingLB is the paper's novel load balancer: tasks and ranks form
// a bipartite graph whose edges connect each task to the owners of the
// data blocks it touches (plus a few random ranks for connectivity), and
// a weighted semi-matching assigns tasks to ranks, simultaneously
// balancing load and preserving locality — at a tiny fraction of the cost
// of hypergraph partitioning.
type SemiMatchingLB struct {
	// ExtraEdges is the number of additional random candidate ranks per
	// task (default 2). Zero keeps strictly data-owner edges, which can
	// leave the bipartite graph too constrained to balance.
	ExtraEdges int
	Seed       int64
}

// Name implements Model.
func (SemiMatchingLB) Name() string { return "semi-matching" }

// Run implements Model.
func (s SemiMatchingLB) Run(w *Workload, m *cluster.Machine) *Result {
	sw := startStopwatch()
	b := s.buildGraph(w, m.P)
	est := make([]float64, len(w.Tasks))
	for i, t := range w.Tasks {
		est[i] = t.EstCost
	}
	assign := semimatching.WeightedSemiMatch(b, est)
	cost := sw.seconds()
	return runAssignment(s.Name(), w, m, assign.Of, cost)
}

// BuildGraphForBench exposes the bipartite-graph construction so the T4
// experiment can time the semi-matching pipeline end to end outside Run.
func (s SemiMatchingLB) BuildGraphForBench(w *Workload, ranks int) *semimatching.Bipartite {
	return s.buildGraph(w, ranks)
}

// buildGraph constructs the task–rank bipartite graph from block
// ownership.
func (s SemiMatchingLB) buildGraph(w *Workload, ranks int) *semimatching.Bipartite {
	extra := s.ExtraEdges
	if extra == 0 {
		extra = 2
	}
	b := semimatching.NewBipartite(len(w.Tasks), ranks)
	// Deterministic pseudo-random extra edges from a cheap hash so graph
	// construction costs stay honest (no RNG state in the hot path).
	h := uint64(s.Seed)*2654435761 + 12345
	for i, t := range w.Tasks {
		for _, blk := range t.Blocks {
			b.AddEdge(i, blockOwner(blk, ranks))
		}
		for e := 0; e < extra; e++ {
			h = h*6364136223846793005 + 1442695040888963407
			b.AddEdge(i, int(h>>33)%ranks)
		}
	}
	return b
}

// weightedSemiMatchAssign runs the weighted semi-matching on an existing
// graph with the given weights and returns the task→rank assignment.
func weightedSemiMatchAssign(b *semimatching.Bipartite, weights []float64) []int {
	return semimatching.WeightedSemiMatch(b, weights).Of
}

// HypergraphLB is the traditional high-quality baseline: tasks are
// hypergraph vertices weighted by estimated cost, data blocks are nets,
// and a multilevel partitioner splits the tasks into P parts minimizing
// communication volume under a balance constraint. Produces excellent
// schedules — and costs orders of magnitude more to compute than the
// semi-matching, which is the trade-off experiment T4 quantifies.
type HypergraphLB struct {
	Eps  float64 // balance slack (default 0.05)
	Seed int64
	Flat bool // ablation: disable the multilevel hierarchy
}

// Name implements Model.
func (h HypergraphLB) Name() string {
	if h.Flat {
		return "hypergraph-flat"
	}
	return "hypergraph"
}

// Run implements Model.
func (hl HypergraphLB) Run(w *Workload, m *cluster.Machine) *Result {
	sw := startStopwatch()
	h := BuildHypergraph(w)
	res := hypergraph.Partition(h, m.P, hypergraph.Options{
		Eps:  hl.Eps,
		Seed: hl.Seed,
		Flat: hl.Flat,
	})
	cost := sw.seconds()
	return runAssignment(hl.Name(), w, m, res.Part, cost)
}

// BuildHypergraph converts a workload into the partitioning hypergraph:
// one vertex per task (weight = estimated cost), one net per data block
// (pins = tasks touching it, weight = block bytes, so the connectivity-1
// cut is exactly the replication communication volume).
func BuildHypergraph(w *Workload) *hypergraph.Hypergraph {
	h := hypergraph.New(len(w.Tasks))
	for i, t := range w.Tasks {
		h.VWeights[i] = t.EstCost
	}
	pins := make([][]int, w.NumBlocks)
	for i, t := range w.Tasks {
		for _, b := range t.Blocks {
			pins[b] = append(pins[b], i)
		}
	}
	for b, p := range pins {
		if len(p) >= 2 {
			h.AddNet(float64(w.BlockBytes[b]), p...)
		}
	}
	return h
}
