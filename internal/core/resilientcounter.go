package core

import (
	"container/heap"
	"fmt"
	"math"

	"execmodels/internal/cluster"
	"execmodels/internal/fault"
	"execmodels/internal/obs"
)

// ResilientCounter is the centralized dynamic model under faults: ranks
// pull task indices from the shared counter's home, and the home tracks a
// lease for every index it hands out. A lease whose holder goes silent
// past its deadline is revoked and its index re-issued to the next
// requester — so a crashed rank's claimed-but-unfinished work flows back
// into the pool with a detection latency of one lease window. Revocation
// is epoch-safe: a completion arriving for a revoked lease is discarded,
// so a slow-but-alive rank whose lease expired costs wasted work, never a
// duplicated result.
//
// By default the home decouples liveness from task duration, as
// heartbeat-based failure detectors do: when a lease goes quiet past the
// probe interval the home pings the holder, renews the lease if the ping
// is answered, and revokes only when it is not — so even a task from the
// heavy tail of the cost distribution is reclaimed within roughly one
// probe interval of its holder's death, not after a multiple of its own
// runtime. Setting LeaseTimeout switches to plain silence-based expiry
// (no pings): a lease older than the window is revoked outright, which
// can falsely revoke slow-but-alive holders — the epoch check turns that
// into bounded wasted work rather than a correctness problem.
type ResilientCounter struct {
	// Chunk is the number of indices claimed per counter operation
	// (default 1).
	Chunk int
	// LeaseTimeout, when positive, disables liveness pings and revokes
	// any lease silent for this long.
	LeaseTimeout float64
}

// rcLease is one outstanding claim at the counter's home.
type rcLease struct {
	task, rank int
	deadline   float64 // revocation time if still unfinished
}

// Name implements Model.
func (ResilientCounter) Name() string { return "resilient-counter" }

// Run implements Model.
func (rc ResilientCounter) Run(w *Workload, m *cluster.Machine) *Result {
	res := newResult(rc.Name(), m.P)
	n := len(w.Tasks)
	chunk := rc.Chunk
	if chunk < 1 {
		chunk = 1
	}
	// pinged: the default heartbeat-style detector. probeIvl is how long a
	// lease may go quiet before the home checks on (or, without pings,
	// revokes) its holder.
	detect := defaultDetect(m)
	pinged := rc.LeaseTimeout <= 0
	probeIvl := rc.LeaseTimeout
	if pinged {
		probeIvl = 100 * detect
	}
	links := m.LinkFilter()
	rpcTO := 20 * m.Cfg.Latency

	counter := cluster.NewCounterAgent(m)
	lt := newLeaseTable(n)
	var leases []rcLease // outstanding leases, compacted on expiry sweeps
	var reissue []int    // revoked indices awaiting re-issue, oldest first
	nextFresh := 0

	seen := make([]map[int]bool, m.P)
	for r := range seen {
		seen[r] = map[int]bool{}
	}
	crashed := make([]bool, m.P)
	detected := make([]bool, m.P)
	seq := make([]int, m.P) // per-rank counter-RPC sequence numbers

	// expire sweeps every outstanding lease past its deadline as of the
	// home's service time `now`: in pinged mode a live holder's lease is
	// renewed for another probe interval (the ping traffic is background
	// failure-detector chatter, not charged to the run), a dead holder's
	// lease is revoked; without pings, silence alone revokes. Detection
	// latency is credited the first time a dead rank's lease is revoked.
	// Settled leases (completed, or moved) are compacted away in the sweep.
	expire := func(now float64) {
		kept := leases[:0]
		for _, L := range leases {
			if lt.done[L.task] || lt.holder[L.task] != L.rank {
				continue // completed, or already moved by an earlier revocation
			}
			if L.deadline > now {
				kept = append(kept, L)
				continue
			}
			if pinged && m.CrashTime(L.rank) > now {
				L.deadline = now + probeIvl // ping answered: holder is alive
				kept = append(kept, L)
				continue
			}
			lt.claim(L.task, -1) // revoke: stale completions are now rejected
			reissue = append(reissue, L.task)
			res.count(obs.CLostTasks, L.rank, 1)
			if ct := m.CrashTime(L.rank); ct <= now && !detected[L.rank] {
				detected[L.rank] = true
				res.addTime(obs.MDetect, L.rank, now-ct)
			}
		}
		leases = kept
	}

	h := make(rankHeap, 0, m.P)
	for r := 0; r < m.P; r++ {
		heap.Push(&h, rankEvent{rank: r, time: 0})
	}
	for h.Len() > 0 {
		ev := heap.Pop(&h).(rankEvent)
		r := ev.rank
		crashT := m.CrashTime(r)
		if ev.time >= crashT {
			crashed[r] = true
			res.count(obs.CCrashes, r, 1)
			res.FinishTime[r] = crashT
			continue
		}
		now := m.StallEnd(r, ev.time)
		if now > ev.time {
			// A rank that dies mid-stall only stalls until its crash time.
			stallEnd := math.Min(now, crashT)
			m.Trace.Record(cluster.Interval{Rank: r, Start: ev.time, End: stallEnd, TaskID: -1, Activity: "stall"})
			res.addTime(obs.MStall, r, stallEnd-ev.time)
		}
		if now >= crashT {
			crashed[r] = true
			res.count(obs.CCrashes, r, 1)
			res.FinishTime[r] = crashT
			continue
		}
		if lt.remaining == 0 {
			res.FinishTime[r] = now
			continue
		}

		// Counter RPC; the request can be dropped en route to the home.
		if links.Fate(r, 0, seq[r]) == fault.Drop {
			seq[r]++
			res.count(obs.CRetransmits, r, 1)
			m.Trace.Record(cluster.Interval{Rank: r, Start: now, End: now + rpcTO, TaskID: -1, Activity: "counter"})
			res.addTime(obs.MCounter, r, rpcTO)
			heap.Push(&h, rankEvent{rank: r, time: now + rpcTO})
			continue
		}
		seq[r]++
		_, done := counter.FetchAdd(now, int64(chunk))
		m.Trace.Record(cluster.Interval{Rank: r, Start: now, End: done, TaskID: -1, Activity: "counter"})
		res.addTime(obs.MCounter, r, done-now)

		// Home side: expire silent leases, then grant work — revoked
		// indices first, fresh indices after.
		expire(done)
		var grant []int
		for len(grant) < chunk && len(reissue) > 0 {
			grant = append(grant, reissue[0])
			reissue = reissue[1:]
		}
		for len(grant) < chunk && nextFresh < n {
			grant = append(grant, nextFresh)
			nextFresh++
		}
		if len(grant) == 0 {
			if lt.remaining == 0 {
				res.FinishTime[r] = done
				continue
			}
			// All work is leased out; poll again when the earliest
			// outstanding lease could expire.
			retry := math.Inf(1)
			for _, L := range leases {
				if !lt.done[L.task] && lt.holder[L.task] == L.rank && L.deadline < retry {
					retry = L.deadline
				}
			}
			if math.IsInf(retry, 1) {
				retry = done + probeIvl
			}
			res.count(obs.CRetransmits, r, 1)
			heap.Push(&h, rankEvent{rank: r, time: math.Max(retry, done)})
			continue
		}
		for _, id := range grant {
			lt.claim(id, r)
			leases = append(leases, rcLease{task: id, rank: r, deadline: done + probeIvl})
		}

		t := done
		dead := false
		for _, id := range grant {
			task := &w.Tasks[id]
			lt.start(id, r)
			end, ok := m.TaskTimeFaulty(r, task.Cost, t)
			m.Trace.Record(cluster.Interval{Rank: r, Start: t, End: end, TaskID: id, Activity: "task"})
			res.addBusy(r, end-t)
			t = end
			if !ok {
				crashed[r] = true
				res.count(obs.CCrashes, r, 1)
				res.FinishTime[r] = end
				dead = true
				break
			}
			res.ranTask(r)
			t = chargeComm(res, w, m, seen, r, task, t)
			if lt.holder[id] == r {
				lt.complete(id, r)
			}
			// else: our lease expired while we ran; the result is
			// discarded and the re-issued copy completes instead.
		}
		if !dead {
			heap.Push(&h, rankEvent{rank: r, time: t})
		}
	}
	if lt.remaining > 0 {
		panic(fmt.Sprintf("core: resilient-counter stranded %d tasks (no surviving ranks?)", lt.remaining))
	}
	res.count(obs.CCounterOps, 0, counter.Ops())
	res.addTime(obs.MCounterWait, 0, counter.TotalWait())
	res.count(obs.CReExecuted, 0, int64(lt.reexec))
	res.CompletedBy = lt.completedBy
	lt.audit()
	res.finalize()
	return res
}
