package core

import (
	"fmt"

	"execmodels/internal/chem"
	"execmodels/internal/linalg"
	"execmodels/internal/mp"
)

// DistributedFockResult is the outcome of a message-passing Fock build.
type DistributedFockResult struct {
	F           *linalg.Matrix
	TasksByRank []int
	CounterOps  int
}

// DistributedFock executes a Fock build on a message-passing world of
// `ranks` worker ranks: the density is broadcast from rank 0, tasks are
// distributed under the chosen execution model, partial J/K matrices are
// combined with an allreduce, and every rank ends up with the same
// replicated Fock matrix (rank 0's copy is returned). This is the
// distributed-memory flavour of the execution stack — no shared data
// structures, everything moves through messages.
//
// Modes:
//   - "static":  contiguous block ranges, no runtime traffic.
//   - "counter": a dedicated counter-server rank (the Global Arrays
//     NXTVAL pattern, with the server standing in for the network agent)
//     hands out task indices on demand.
func DistributedFock(fw *chem.FockWorkload, h, d *linalg.Matrix, ranks int, mode string) (*DistributedFockResult, error) {
	if ranks < 1 {
		return nil, fmt.Errorf("core: DistributedFock needs >= 1 rank, got %d", ranks)
	}
	switch mode {
	case "static":
		return distributedStatic(fw, h, d, ranks), nil
	case "counter":
		return distributedCounter(fw, h, d, ranks), nil
	default:
		return nil, fmt.Errorf("core: unknown distributed mode %q (static|counter)", mode)
	}
}

// assembleFock turns allreduced J/K into F = H + J - K/2 on rank 0.
func assembleFock(c *mp.Comm, h *linalg.Matrix, jLoc, kLoc *linalg.Matrix) *linalg.Matrix {
	jSum := c.AllReduceSum(jLoc.Data)
	kSum := c.AllReduceSum(kLoc.Data)
	if c.Rank() != 0 {
		return nil
	}
	n := h.Rows
	f := h.Clone()
	f.AddScaled(1, linalg.NewMatrixFrom(n, n, jSum))
	f.AddScaled(-0.5, linalg.NewMatrixFrom(n, n, kSum))
	f.Symmetrize()
	return f
}

func distributedStatic(fw *chem.FockWorkload, h, d *linalg.Matrix, ranks int) *DistributedFockResult {
	n := fw.Basis.NBF
	nt := len(fw.Tasks)
	per := (nt + ranks - 1) / ranks
	res := &DistributedFockResult{TasksByRank: make([]int, ranks)}
	world := mp.NewWorld(ranks)
	world.Run(func(c *mp.Comm) {
		// Rank 0 owns the density; everyone else receives it.
		dens := c.Broadcast(0, d.Data)
		dLoc := linalg.NewMatrixFrom(n, n, dens)

		jLoc := linalg.NewMatrix(n, n)
		kLoc := linalg.NewMatrix(n, n)
		scratch := fw.NewScratch()
		lo, hi := c.Rank()*per, (c.Rank()+1)*per
		if hi > nt {
			hi = nt
		}
		count := 0
		for i := lo; i < hi; i++ {
			fw.ExecuteTaskScratch(&fw.Tasks[i], dLoc, jLoc, kLoc, scratch)
			count++
		}
		res.TasksByRank[c.Rank()] = count

		if f := assembleFock(c, h, jLoc, kLoc); f != nil {
			res.F = f
		}
	})
	return res
}

// Counter-server message tags.
const (
	tagCounterReq = 1
	tagCounterRsp = 2
)

func distributedCounter(fw *chem.FockWorkload, h, d *linalg.Matrix, ranks int) *DistributedFockResult {
	n := fw.Basis.NBF
	nt := len(fw.Tasks)
	res := &DistributedFockResult{TasksByRank: make([]int, ranks)}
	// World has ranks workers plus one dedicated counter-server rank
	// (index ranks) — the stand-in for the GA network agent.
	world := mp.NewWorld(ranks + 1)
	server := ranks
	world.Run(func(c *mp.Comm) {
		if c.Rank() == server {
			// Participate in the density broadcast (and discard it): a
			// stale broadcast message would otherwise be mismatched into
			// the allreduce's internal broadcast later.
			c.Broadcast(0, nil)
			next, stopped, ops := 0, 0, 0
			for stopped < ranks {
				_, from := c.Recv(mp.AnySource, tagCounterReq)
				ops++
				c.Send(from, tagCounterRsp, []float64{float64(next)})
				if next >= nt {
					stopped++
				}
				next++
			}
			res.CounterOps = ops
			// The server holds no data; it contributes zeros to the
			// reduction so the collective spans the whole world.
			assembleFock(c, h, linalg.NewMatrix(n, n), linalg.NewMatrix(n, n))
			return
		}

		dens := c.Broadcast(0, d.Data)
		dLoc := linalg.NewMatrixFrom(n, n, dens)
		jLoc := linalg.NewMatrix(n, n)
		kLoc := linalg.NewMatrix(n, n)
		scratch := fw.NewScratch()
		count := 0
		for {
			c.Send(server, tagCounterReq, nil)
			rsp, _ := c.Recv(server, tagCounterRsp)
			i := int(rsp[0])
			if i >= nt {
				break
			}
			fw.ExecuteTaskScratch(&fw.Tasks[i], dLoc, jLoc, kLoc, scratch)
			count++
		}
		res.TasksByRank[c.Rank()] = count

		if f := assembleFock(c, h, jLoc, kLoc); f != nil {
			res.F = f
		}
	})
	return res
}
