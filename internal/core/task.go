// Package core implements the execution models under study — static block
// and block-cyclic scheduling, centralized dynamic scheduling over a
// shared counter, distributed work stealing, persistence-based
// rebalancing, semi-matching-based assignment, and hypergraph-partitioned
// assignment — together with the simulated-time executor that measures
// them on a cluster.Machine and wall-clock executors that run the real
// chemistry kernel on goroutines.
package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"execmodels/internal/chem"
)

// Task is one schedulable work unit.
type Task struct {
	ID      int
	Cost    float64 // true cost in work units (flops)
	EstCost float64 // cost estimate visible to schedulers
	Blocks  []int   // data blocks the task reads/updates (locality)
}

// Workload is a set of independent tasks plus the data-block geometry
// used for communication modelling.
type Workload struct {
	Name       string
	Tasks      []Task
	NumBlocks  int   // total distinct data blocks
	BlockBytes []int // size of each block in bytes (len NumBlocks)
}

// TotalCost returns the sum of true task costs.
func (w *Workload) TotalCost() float64 {
	var s float64
	for _, t := range w.Tasks {
		s += t.Cost
	}
	return s
}

// MaxCost returns the largest true task cost.
func (w *Workload) MaxCost() float64 {
	var m float64
	for _, t := range w.Tasks {
		if t.Cost > m {
			m = t.Cost
		}
	}
	return m
}

// CostImbalance returns max/mean task cost — the raw irregularity of the
// workload before any scheduling.
func (w *Workload) CostImbalance() float64 {
	if len(w.Tasks) == 0 {
		return 0
	}
	mean := w.TotalCost() / float64(len(w.Tasks))
	if mean == 0 {
		return 0
	}
	return w.MaxCost() / mean
}

// FromFock converts a screened Fock-build decomposition into a scheduling
// workload. Task cost is the ERI flop estimate; data blocks are the shell
// row-blocks of the density/Fock matrices that the task's bra pairs touch,
// with block size = (shell functions)×NBF×8 bytes.
func FromFock(fw *chem.FockWorkload) *Workload {
	bs := fw.Basis
	w := &Workload{
		Name:      fmt.Sprintf("fock-%s-n%d", bs.Name, bs.NBF),
		NumBlocks: len(bs.Shells),
	}
	w.BlockBytes = make([]int, len(bs.Shells))
	for i := range bs.Shells {
		w.BlockBytes[i] = bs.Shells[i].NumFuncs() * bs.NBF * 8
	}
	for _, ft := range fw.Tasks {
		blocks := map[int]bool{}
		for _, p := range ft.BraPairs {
			blocks[p.I] = true
			blocks[p.J] = true
		}
		t := Task{ID: ft.ID, Cost: ft.EstFlops, EstCost: ft.EstFlops}
		for b := range blocks {
			t.Blocks = append(t.Blocks, b)
		}
		sort.Ints(t.Blocks)
		w.Tasks = append(w.Tasks, t)
	}
	return w
}

// SyntheticOptions configures a synthetic workload generator.
type SyntheticOptions struct {
	NumTasks  int
	NumBlocks int     // 0 → NumTasks/4 + 1
	Dist      string  // "uniform", "lognormal", "bimodal", "triangular"
	Sigma     float64 // lognormal shape (default 1.5)
	MeanCost  float64 // mean task cost in work units (default 1e6)
	EstNoise  float64 // relative error between EstCost and Cost (default 0)
	Seed      int64
}

// Synthetic generates a workload with a controlled cost distribution —
// the ablation tool for separating "irregular costs" from everything
// else. The "triangular" distribution mimics the growing-ket-loop shape
// of the Fock build; "uniform" is the null hypothesis that kills the
// differences between execution models.
func Synthetic(opts SyntheticOptions) *Workload {
	if opts.NumTasks <= 0 {
		panic("core: Synthetic needs NumTasks > 0")
	}
	if opts.MeanCost == 0 {
		opts.MeanCost = 1e6
	}
	if opts.Sigma == 0 {
		opts.Sigma = 1.5
	}
	if opts.NumBlocks == 0 {
		opts.NumBlocks = opts.NumTasks/4 + 1
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	w := &Workload{
		Name:      fmt.Sprintf("synthetic-%s-%d", opts.Dist, opts.NumTasks),
		NumBlocks: opts.NumBlocks,
	}
	w.BlockBytes = make([]int, opts.NumBlocks)
	for i := range w.BlockBytes {
		w.BlockBytes[i] = 64 * 1024
	}
	for i := 0; i < opts.NumTasks; i++ {
		var c float64
		switch opts.Dist {
		case "uniform", "":
			c = opts.MeanCost
		case "lognormal":
			c = opts.MeanCost * math.Exp(rng.NormFloat64()*opts.Sigma) /
				math.Exp(opts.Sigma*opts.Sigma/2)
		case "bimodal":
			c = opts.MeanCost / 2
			if rng.Float64() < 0.1 {
				c = opts.MeanCost * 5.5
			}
		case "triangular":
			// Cost grows linearly with index, like the ket loop of the
			// Fock build over sorted pairs.
			c = opts.MeanCost * 2 * float64(i+1) / float64(opts.NumTasks+1)
		default:
			panic(fmt.Sprintf("core: unknown distribution %q", opts.Dist))
		}
		est := c
		if opts.EstNoise > 0 {
			est = c * (1 + opts.EstNoise*(2*rng.Float64()-1))
		}
		// A task touches 1-3 distinct blocks — capped by how many exist,
		// or the drawing loop below could never terminate.
		nb := min(1+rng.Intn(3), opts.NumBlocks)
		blocks := make([]int, 0, nb)
		for len(blocks) < nb {
			b := rng.Intn(opts.NumBlocks)
			dup := false
			for _, x := range blocks {
				if x == b {
					dup = true
					break
				}
			}
			if !dup {
				blocks = append(blocks, b)
			}
		}
		sort.Ints(blocks)
		w.Tasks = append(w.Tasks, Task{ID: i, Cost: c, EstCost: est, Blocks: blocks})
	}
	return w
}
