package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"execmodels/internal/chem"
	"execmodels/internal/deque"
	"execmodels/internal/ga"
	"execmodels/internal/linalg"
)

// WallResult is the outcome of a real (wall-clock) parallel Fock build.
type WallResult struct {
	F          *linalg.Matrix
	Elapsed    time.Duration
	WorkerBusy []time.Duration // per-worker time spent executing tasks
	Steals     int64           // successful steal-half operations
	StealRetry int64           // failed steal rounds (victim empty) — the tail-spin metric
	StealSeed  int64           // the victim-selection seed actually used
	CounterOps int64           // NXTVAL fetches (dynamic mode)
}

// LoadImbalance returns max/mean worker busy time.
func (r *WallResult) LoadImbalance() float64 {
	var sum, mx time.Duration
	for _, b := range r.WorkerBusy {
		sum += b
		if b > mx {
			mx = b
		}
	}
	if sum == 0 {
		return 0
	}
	return float64(mx) / (float64(sum) / float64(len(r.WorkerBusy)))
}

// wallRun drives the shared scaffolding of all wall-clock executors: it
// spawns workers, each pulling task indices from nextTask until exhausted,
// digesting into worker-private J/K (through a worker-private scratch
// arena, so the steady-state loop allocates nothing) and accumulating
// into shared arrays at the end.
//
// nextTask is invoked only from worker wk's goroutine for a given wk, so
// per-worker scheduling state needs no synchronization — but distinct
// workers' state should live on distinct cache lines (see padCell).
// Per-worker busy time is accumulated in a goroutine-local variable and
// merged into the shared slice once, after the task loop, so the hot loop
// never writes adjacent elements of a shared array.
func wallRun(fw *chem.FockWorkload, h, d *linalg.Matrix, workers int,
	nextTask func(worker int) (int, bool)) *WallResult {
	if workers < 1 {
		panic(fmt.Sprintf("core: workers = %d", workers))
	}
	n := fw.Basis.NBF
	jArr := ga.NewArray(n, n, workers)
	kArr := ga.NewArray(n, n, workers)
	busy := make([]time.Duration, workers)

	sw := startStopwatch()
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			jLoc := linalg.NewMatrix(n, n)
			kLoc := linalg.NewMatrix(n, n)
			scratch := fw.NewScratch()
			var busyLoc time.Duration
			for {
				id, ok := nextTask(wk)
				if !ok {
					break
				}
				t0 := startStopwatch()
				fw.ExecuteTaskScratch(&fw.Tasks[id], d, jLoc, kLoc, scratch)
				busyLoc += t0.elapsed()
			}
			jArr.Acc(0, 0, n, n, jLoc.Data, 1)
			kArr.Acc(0, 0, n, n, kLoc.Data, 1)
			busy[wk] = busyLoc // one write per worker; visibility via wg.Wait
		}(wk)
	}
	wg.Wait()
	elapsed := sw.elapsed()

	f := h.Clone()
	f.AddScaled(1, jArr.ToMatrix())
	f.AddScaled(-0.5, kArr.ToMatrix())
	f.Symmetrize()
	return &WallResult{F: f, Elapsed: elapsed, WorkerBusy: busy}
}

// padCell is a per-worker counter padded to a 64-byte cache line:
// adjacent workers' hot scheduling words must not share a line, or every
// cursor bump invalidates the neighbours' caches (false sharing). Each
// cell is read and written only by its owning worker goroutine, so no
// atomics are needed.
type padCell struct {
	n int64
	_ [56]byte
}

// dynSpan is the per-worker [next, hi) range of a block fetched from the
// shared counter, padded like padCell.
type dynSpan struct {
	next, hi int64
	_        [48]byte
}

// atomicInt64Pad is an atomic counter padded to its own cache line, for
// the genuinely shared counters (remaining tasks, steal stats) that sit
// next to each other in WallStealing.
type atomicInt64Pad struct {
	atomic.Int64
	_ [56]byte
}

// WallStatic executes the Fock build with a static block schedule on real
// goroutines.
func WallStatic(fw *chem.FockWorkload, h, d *linalg.Matrix, workers int) *WallResult {
	n := len(fw.Tasks)
	per := (n + workers - 1) / workers
	cursors := make([]padCell, workers)
	return wallRun(fw, h, d, workers, func(wk int) (int, bool) {
		lo, hi := wk*per, (wk+1)*per
		if hi > n {
			hi = n
		}
		c := int(cursors[wk].n)
		cursors[wk].n++
		if lo+c >= hi {
			return 0, false
		}
		return lo + c, true
	})
}

// WallDynamic executes the Fock build pulling blocks of `block`
// consecutive tasks from a shared atomic counter (NXTVAL with a chunk
// size, as the simulated dynamic-counter model's F3 sweep studies).
// block < 1 is treated as 1, the classic one-task-per-fetch NXTVAL.
func WallDynamic(fw *chem.FockWorkload, h, d *linalg.Matrix, workers, block int) *WallResult {
	if block < 1 {
		block = 1
	}
	var counter ga.Counter
	n := int64(len(fw.Tasks))
	spans := make([]dynSpan, workers)
	res := wallRun(fw, h, d, workers, func(wk int) (int, bool) {
		s := &spans[wk]
		if s.next < s.hi {
			v := s.next
			s.next++
			return int(v), true
		}
		lo := counter.FetchAdd(int64(block))
		if lo >= n {
			return 0, false
		}
		hi := lo + int64(block)
		if hi > n {
			hi = n
		}
		s.next, s.hi = lo+1, hi
		return int(lo), true
	})
	res.CounterOps = counter.Ops()
	return res
}

// Backoff schedule for idle thieves: a few yielded retries, then sleeps
// growing linearly to a cap. Without this, workers that finish early
// hammer StealHalf at 100% CPU until the last task completes, polluting
// WorkerBusy/Elapsed and starving the workers still computing.
const (
	stealSpinRounds  = 4
	stealBackoffStep = 2 * time.Microsecond
	stealBackoffMax  = 200 * time.Microsecond
)

// WallStealing executes the Fock build with per-worker deques and
// steal-half work stealing on real goroutines. seed drives the
// per-worker victim-selection RNG streams.
func WallStealing(fw *chem.FockWorkload, h, d *linalg.Matrix, workers int, seed int64) *WallResult {
	n := len(fw.Tasks)
	deques := make([]*deque.Deque, workers)
	for wk := range deques {
		deques[wk] = new(deque.Deque)
	}
	per := (n + workers - 1) / workers
	for i := 0; i < n; i++ {
		r := i / per
		if r >= workers {
			r = workers - 1
		}
		deques[r].Push(i)
	}
	var remaining, steals, retries atomicInt64Pad
	remaining.Store(int64(n))
	rngs := make([]*rand.Rand, workers)
	for wk := range rngs {
		rngs[wk] = rand.New(rand.NewSource(seed + int64(wk)))
	}

	res := wallRun(fw, h, d, workers, func(wk int) (int, bool) {
		failed := 0
		for {
			if id, ok := deques[wk].Pop(); ok {
				remaining.Add(-1)
				return id, true
			}
			if remaining.Load() <= 0 {
				return 0, false
			}
			if workers > 1 {
				// Pick a victim other than ourselves: self-steals are
				// guaranteed misses (our deque just came up empty).
				victim := rngs[wk].Intn(workers - 1)
				if victim >= wk {
					victim++
				}
				if loot := deques[victim].StealHalf(); loot != nil {
					steals.Add(1)
					deques[wk].PushBatch(loot)
					failed = 0
					continue
				}
			}
			// Failed round: yield first, then back off with bounded
			// sleeps so the idle tail does not busy-spin.
			retries.Add(1)
			failed++
			if failed <= stealSpinRounds {
				runtime.Gosched()
				continue
			}
			pause := time.Duration(failed-stealSpinRounds) * stealBackoffStep
			if pause > stealBackoffMax {
				pause = stealBackoffMax
			}
			time.Sleep(pause)
		}
	})
	res.Steals = steals.Load()
	res.StealRetry = retries.Load()
	res.StealSeed = seed
	return res
}

// WallOptions carries the tunables of the wall-clock executors that
// ParallelFockBuilder threads through to every Fock build of an SCF run.
type WallOptions struct {
	Seed  int64 // work-stealing victim-selection seed
	Block int   // dynamic-counter tasks per NXTVAL fetch (<1 means 1)
}

// wallExec dispatches one wall-clock Fock build by mode name. It is the
// single point where ParallelFockBuilder's options meet the executors —
// no literal seeds or block sizes may appear here (regression-tested).
func wallExec(mode string, fw *chem.FockWorkload, h, d *linalg.Matrix, workers int, opt WallOptions) (*WallResult, error) {
	switch mode {
	case "static":
		return WallStatic(fw, h, d, workers), nil
	case "dynamic":
		return WallDynamic(fw, h, d, workers, opt.Block), nil
	case "stealing":
		return WallStealing(fw, h, d, workers, opt.Seed), nil
	default:
		return nil, fmt.Errorf("core: unknown wall-clock mode %q", mode)
	}
}

// ParallelFockBuilder returns a chem.FockBuilder that runs every Fock
// build of an SCF iteration through the given wall-clock executor. mode
// is "static", "dynamic" or "stealing"; opt supplies the stealing seed
// and the dynamic fetch block.
func ParallelFockBuilder(mode string, workers int, opt WallOptions) (chem.FockBuilder, error) {
	// Validate eagerly so a typo fails at setup, not mid-SCF.
	switch mode {
	case "static", "dynamic", "stealing":
	default:
		return nil, fmt.Errorf("core: unknown wall-clock mode %q", mode)
	}
	return func(fw *chem.FockWorkload, h, d *linalg.Matrix) *linalg.Matrix {
		res, _ := wallExec(mode, fw, h, d, workers, opt)
		return res.F
	}, nil
}
