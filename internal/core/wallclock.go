package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"execmodels/internal/chem"
	"execmodels/internal/deque"
	"execmodels/internal/ga"
	"execmodels/internal/linalg"
)

// WallResult is the outcome of a real (wall-clock) parallel Fock build.
type WallResult struct {
	F          *linalg.Matrix
	Elapsed    time.Duration
	WorkerBusy []time.Duration // per-worker time spent executing tasks
	Steals     int64           // successful steal-half operations
	StealRetry int64           // failed steal rounds (victim empty) — the tail-spin metric
	StealSeed  int64           // the victim-selection seed actually used
	CounterOps int64           // NXTVAL fetches (dynamic mode)
}

// WallSpinResult is the unrestricted counterpart: the merged J/Kα/Kβ
// matrices of one parallel spin Fock build, with the same executor
// telemetry as WallResult. The caller (chem.RunUHF via
// ParallelUHFFockBuilder) assembles the two spin Fock matrices.
type WallSpinResult struct {
	J, KA, KB  *linalg.Matrix
	Elapsed    time.Duration
	WorkerBusy []time.Duration
	Steals     int64
	StealRetry int64
	StealSeed  int64
	CounterOps int64
}

// LoadImbalance returns max/mean worker busy time.
func (r *WallResult) LoadImbalance() float64 {
	var sum, mx time.Duration
	for _, b := range r.WorkerBusy {
		sum += b
		if b > mx {
			mx = b
		}
	}
	if sum == 0 {
		return 0
	}
	return float64(mx) / (float64(sum) / float64(len(r.WorkerBusy)))
}

// wallCounters is the scheduler telemetry every wall-clock schedule
// reports after a run; schedules that lack a counter leave it zero.
type wallCounters struct {
	steals, retries, seed, counterOps int64
}

// wallSched is one wall-clock scheduling discipline: next hands worker wk
// its next task index (invoked only from worker wk's goroutine, so
// per-worker state needs no synchronization), counters reports the
// telemetry accumulated over the run.
type wallSched interface {
	next(wk int) (int, bool)
	counters() wallCounters
}

// wallAccum is one worker's slot in the shared accumulator table: the
// worker-private J/K accumulator (with its scratch arena) plus the busy
// stopwatch the worker bumps after every task. Workers write only their
// own slot, but slots are adjacent in one slice, so each is padded to a
// cache line — otherwise every busy update would false-share with the
// neighbouring workers' slots. The shareiso check proves the ownership
// half of that sentence: each slot is touched only through its owning
// worker's index, and the spawner reads the slots back only after
// wg.Wait.
//
//hotpath:padded
//hotpath:isolated
type wallAccum struct {
	acc  *chem.JKAccum
	busy time.Duration
	// taskSec, when non-nil, captures each executed task's wall time by
	// task index — the measurement side of the obs→scheduler feedback
	// loop. Indexed by the task id the schedule hands out, so disjoint
	// schedules write disjoint entries; sized before the clock starts.
	taskSec []float64
	_       [24]byte
}

// wallRunJK drives the shared scaffolding of all wall-clock executors: it
// spawns workers, each pulling task indices from sched until exhausted and
// digesting into its own wallAccum slot (through a worker-private scratch
// arena, so the steady-state loop allocates nothing). The per-worker
// accumulators are folded into the returned J/K matrices only after
// wg.Wait, in worker order — no concurrent writes to shared matrices
// anywhere, and the merge order is deterministic for a fixed worker
// count. dj feeds the Coulomb contraction; dkA (and dkB when spin) feed
// exchange.
//
// taskSeconds, when non-nil (len = number of tasks), receives each task's
// measured wall time: every worker records into its own pre-sized slice
// and the slices are folded after wg.Wait, so the measurement path stays
// race-free and allocation-free inside the timed loop.
func wallRunJK(fw *chem.FockWorkload, dj, dkA, dkB *linalg.Matrix, spin bool,
	workers int, sched wallSched, taskSeconds []float64) (j, kA, kB *linalg.Matrix, elapsed time.Duration, busy []time.Duration) {
	if workers < 1 {
		panic(fmt.Sprintf("core: workers = %d", workers))
	}
	// Cold start: worker accumulators and scratch arenas are allocated
	// before the clock starts, outside the proved-allocation-free loop.
	slots := make([]wallAccum, workers)
	for wk := range slots {
		slots[wk].acc = fw.NewJKAccum(spin)
		if taskSeconds != nil {
			slots[wk].taskSec = make([]float64, len(taskSeconds))
		}
	}

	sw := startStopwatch()
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			wallWorkerLoop(fw, dj, dkA, dkB, &slots[wk], wk, sched.next)
		}(wk)
	}
	wg.Wait()
	elapsed = sw.elapsed()

	n := fw.Basis.NBF
	j = linalg.NewMatrix(n, n)
	kA = linalg.NewMatrix(n, n)
	if spin {
		kB = linalg.NewMatrix(n, n)
	}
	busy = make([]time.Duration, workers)
	for wk := range slots {
		slots[wk].acc.MergeInto(j, kA, kB)
		busy[wk] = slots[wk].busy
		if taskSeconds != nil {
			// Each task ran on exactly one worker; fold the sparse
			// per-worker records (zero = not executed here).
			for i, v := range slots[wk].taskSec {
				if v != 0 {
					taskSeconds[i] = v
				}
			}
		}
	}
	return j, kA, kB, elapsed, busy
}

// wallWorkerLoop is the steady-state body of every wall-clock worker:
// pull a task index, digest it into the worker's own accumulator slot,
// account the busy time. This is the loop the paper's execution-model
// comparison times, so it must not allocate — the arena-backed
// accumulator makes the digestion allocation-free after warm-up, and the
// allocfree check proves it for every schedule implementation. Screening
// never appears here: the task's quartet multiset was resolved into Kets
// lists at generation time.
//
//hotpath:allocfree
func wallWorkerLoop(fw *chem.FockWorkload, dj, dkA, dkB *linalg.Matrix,
	slot *wallAccum, wk int, nextTask func(worker int) (int, bool)) {
	for {
		//lint:ignore allocfree indirect dispatch: every nextTask implementation (wallStaticSched, wallAssignSched, wallDynSched, wallStealSched .next) is itself an annotated allocfree root
		id, ok := nextTask(wk)
		if !ok {
			return
		}
		t0 := startStopwatch()
		fw.ExecuteTaskAccum(&fw.Tasks[id], dj, dkA, dkB, slot.acc)
		dt := t0.elapsed()
		slot.busy += dt
		if slot.taskSec != nil {
			slot.taskSec[id] = dt.Seconds()
		}
	}
}

// wallBuild runs one restricted Fock build through sched and assembles
// F = H + J − K/2 from the merged accumulators. taskSeconds, when
// non-nil, receives per-task measured wall times (see wallRunJK).
func wallBuild(sched wallSched, fw *chem.FockWorkload, h, d *linalg.Matrix, workers int, taskSeconds []float64) *WallResult {
	j, k, _, elapsed, busy := wallRunJK(fw, d, d, nil, false, workers, sched, taskSeconds)
	f := h.Clone()
	f.AddScaled(1, j)
	f.AddScaled(-0.5, k)
	f.Symmetrize()
	res := &WallResult{F: f, Elapsed: elapsed, WorkerBusy: busy}
	c := sched.counters()
	res.Steals, res.StealRetry, res.StealSeed, res.CounterOps = c.steals, c.retries, c.seed, c.counterOps
	return res
}

// padCell is a per-worker counter padded to a 64-byte cache line:
// adjacent workers' hot scheduling words must not share a line, or every
// cursor bump invalidates the neighbours' caches (false sharing). Each
// cell is read and written only by its owning worker goroutine, so no
// atomics are needed — an invariant the shareiso check enforces.
//
//hotpath:padded
//hotpath:isolated
type padCell struct {
	n int64
	_ [56]byte
}

// dynSpan is the per-worker [next, hi) range of a block fetched from the
// shared counter, padded like padCell and goroutine-owned like padCell
// (shareiso-checked).
//
//hotpath:padded
//hotpath:isolated
type dynSpan struct {
	next, hi int64
	_        [48]byte
}

// atomicInt64Pad is an atomic counter padded to its own cache line, for
// the genuinely shared counters (remaining tasks, steal stats) that sit
// next to each other in WallStealing.
//
//hotpath:padded
type atomicInt64Pad struct {
	atomic.Int64
	_ [56]byte
}

// wallStaticSched deals each worker a contiguous block of tasks and
// walks it with a per-worker padded cursor.
type wallStaticSched struct {
	n, per  int
	cursors []padCell
}

func newWallStaticSched(n, workers int) *wallStaticSched {
	return &wallStaticSched{n: n, per: (n + workers - 1) / workers, cursors: make([]padCell, workers)}
}

// next implements the static schedule for worker wk.
//
//hotpath:allocfree
func (s *wallStaticSched) next(wk int) (int, bool) {
	lo, hi := wk*s.per, (wk+1)*s.per
	if hi > s.n {
		hi = s.n
	}
	c := int(s.cursors[wk].n)
	s.cursors[wk].n++
	if lo+c >= hi {
		return 0, false
	}
	return lo + c, true
}

func (s *wallStaticSched) counters() wallCounters { return wallCounters{} }

// WallStatic executes the Fock build with a static block schedule on real
// goroutines.
func WallStatic(fw *chem.FockWorkload, h, d *linalg.Matrix, workers int) *WallResult {
	return wallBuild(newWallStaticSched(len(fw.Tasks), workers), fw, h, d, workers, nil)
}

// wallDynSched serves blocks of consecutive tasks from a shared atomic
// counter into per-worker padded spans.
type wallDynSched struct {
	counter  ga.Counter
	n, block int64
	spans    []dynSpan
}

func newWallDynSched(n, workers, block int) *wallDynSched {
	if block < 1 {
		block = 1
	}
	return &wallDynSched{n: int64(n), block: int64(block), spans: make([]dynSpan, workers)}
}

// next implements the dynamic-counter schedule for worker wk.
//
//hotpath:allocfree
func (s *wallDynSched) next(wk int) (int, bool) {
	sp := &s.spans[wk]
	if sp.next < sp.hi {
		v := sp.next
		sp.next++
		return int(v), true
	}
	lo := s.counter.FetchAdd(s.block)
	if lo >= s.n {
		return 0, false
	}
	hi := lo + s.block
	if hi > s.n {
		hi = s.n
	}
	sp.next, sp.hi = lo+1, hi
	return int(lo), true
}

func (s *wallDynSched) counters() wallCounters { return wallCounters{counterOps: s.counter.Ops()} }

// WallDynamic executes the Fock build pulling blocks of `block`
// consecutive tasks from a shared atomic counter (NXTVAL with a chunk
// size, as the simulated dynamic-counter model's F3 sweep studies).
// block < 1 is treated as 1, the classic one-task-per-fetch NXTVAL.
func WallDynamic(fw *chem.FockWorkload, h, d *linalg.Matrix, workers, block int) *WallResult {
	return wallBuild(newWallDynSched(len(fw.Tasks), workers, block), fw, h, d, workers, nil)
}

// Backoff schedule for idle thieves: a few yielded retries, then sleeps
// growing linearly to a cap. Without this, workers that finish early
// hammer StealHalf at 100% CPU until the last task completes, polluting
// WorkerBusy/Elapsed and starving the workers still computing.
const (
	stealSpinRounds  = 4
	stealBackoffStep = 2 * time.Microsecond
	stealBackoffMax  = 200 * time.Microsecond
)

// wallStealSched is the per-worker-deque steal-half schedule: pop
// locally, steal half a victim's deque when empty, back off when steals
// fail. The shared counters are padded so the hot Add/Load traffic does
// not false-share.
type wallStealSched struct {
	deques                     []*deque.Deque
	workers                    int
	seed                       int64
	remaining, steals, retries atomicInt64Pad
	rngs                       []*rand.Rand
}

func newWallStealSched(n, workers int, seed int64) *wallStealSched {
	s := &wallStealSched{deques: make([]*deque.Deque, workers), workers: workers, seed: seed}
	for wk := range s.deques {
		s.deques[wk] = new(deque.Deque)
	}
	per := (n + workers - 1) / workers
	for i := 0; i < n; i++ {
		r := i / per
		if r >= workers {
			r = workers - 1
		}
		s.deques[r].Push(i)
	}
	s.remaining.Store(int64(n))
	s.rngs = make([]*rand.Rand, workers)
	for wk := range s.rngs {
		s.rngs[wk] = rand.New(rand.NewSource(seed + int64(wk)))
	}
	return s
}

// next implements the work-stealing schedule for worker wk.
//
//hotpath:allocfree
func (s *wallStealSched) next(wk int) (int, bool) {
	failed := 0
	for {
		if id, ok := s.deques[wk].Pop(); ok {
			s.remaining.Add(-1)
			return id, true
		}
		if s.remaining.Load() <= 0 {
			return 0, false
		}
		if s.workers > 1 {
			// Pick a victim other than ourselves: self-steals are
			// guaranteed misses (our deque just came up empty).
			victim := s.rngs[wk].Intn(s.workers - 1)
			if victim >= wk {
				victim++
			}
			if loot := s.deques[victim].StealHalf(); loot != nil {
				s.steals.Add(1)
				s.deques[wk].PushBatch(loot)
				failed = 0
				continue
			}
		}
		// Failed round: yield first, then back off with bounded
		// sleeps so the idle tail does not busy-spin.
		s.retries.Add(1)
		failed++
		if failed <= stealSpinRounds {
			runtime.Gosched()
			continue
		}
		pause := time.Duration(failed-stealSpinRounds) * stealBackoffStep
		if pause > stealBackoffMax {
			pause = stealBackoffMax
		}
		time.Sleep(pause)
	}
}

func (s *wallStealSched) counters() wallCounters {
	return wallCounters{steals: s.steals.Load(), retries: s.retries.Load(), seed: s.seed}
}

// WallStealing executes the Fock build with per-worker deques and
// steal-half work stealing on real goroutines. seed drives the
// per-worker victim-selection RNG streams.
func WallStealing(fw *chem.FockWorkload, h, d *linalg.Matrix, workers int, seed int64) *WallResult {
	return wallBuild(newWallStealSched(len(fw.Tasks), workers, seed), fw, h, d, workers, nil)
}

// WallOptions carries the tunables of the wall-clock executors that
// ParallelFockBuilder threads through to every Fock build of an SCF run.
type WallOptions struct {
	Seed  int64 // work-stealing victim-selection seed
	Block int   // dynamic-counter tasks per NXTVAL fetch (<1 means 1)

	// PairBlock, when > 0, re-blocks each workload to tasks of PairBlock
	// bra shell-pairs before executing (chem.Reblock — screening data and
	// Hermite tables are shared, so this costs only task bookkeeping).
	// 0 keeps the workload's own decomposition.
	PairBlock int
}

// newWallSched builds the scheduling discipline for one wall-clock run.
// It is the single point where options meet the executors — no literal
// seeds or block sizes may appear here (regression-tested).
func newWallSched(mode string, n, workers int, opt WallOptions) (wallSched, error) {
	switch mode {
	case "static":
		return newWallStaticSched(n, workers), nil
	case "dynamic":
		return newWallDynSched(n, workers, opt.Block), nil
	case "stealing":
		return newWallStealSched(n, workers, opt.Seed), nil
	default:
		return nil, fmt.Errorf("core: unknown wall-clock mode %q", mode)
	}
}

// wallExec dispatches one wall-clock Fock build by mode name.
func wallExec(mode string, fw *chem.FockWorkload, h, d *linalg.Matrix, workers int, opt WallOptions) (*WallResult, error) {
	sched, err := newWallSched(mode, len(fw.Tasks), workers, opt)
	if err != nil {
		return nil, err
	}
	return wallBuild(sched, fw, h, d, workers, nil), nil
}

// WallUHF runs one unrestricted parallel Fock build: J contracted against
// the total density, Kα/Kβ against the spin densities, through the same
// scheduler implementations and the same allocation-free worker loop as
// the restricted executors (the spin shape is a dispatch inside
// chem.ExecuteTaskAccum, not a separate loop).
func WallUHF(mode string, fw *chem.FockWorkload, dTot, dA, dB *linalg.Matrix, workers int, opt WallOptions) (*WallSpinResult, error) {
	sched, err := newWallSched(mode, len(fw.Tasks), workers, opt)
	if err != nil {
		return nil, err
	}
	j, kA, kB, elapsed, busy := wallRunJK(fw, dTot, dA, dB, true, workers, sched, nil)
	res := &WallSpinResult{J: j, KA: kA, KB: kB, Elapsed: elapsed, WorkerBusy: busy}
	c := sched.counters()
	res.Steals, res.StealRetry, res.StealSeed, res.CounterOps = c.steals, c.retries, c.seed, c.counterOps
	return res, nil
}

// reblockCache memoizes WallOptions.PairBlock re-blocking per source
// workload, so an SCF run re-blocks once, not once per iteration. The
// builders that hold one are invoked sequentially (one Fock build per SCF
// iteration), so no locking is needed.
type reblockCache struct {
	src, dst *chem.FockWorkload
}

func (c *reblockCache) get(fw *chem.FockWorkload, block int) *chem.FockWorkload {
	if block < 1 {
		return fw
	}
	if c.src != fw {
		c.src, c.dst = fw, fw.Reblock(block)
	}
	return c.dst
}

// ParallelFockBuilder returns a chem.FockBuilder that runs every Fock
// build of an SCF iteration through the given wall-clock executor. mode
// is "static", "dynamic" or "stealing"; opt supplies the stealing seed,
// the dynamic fetch block and the bra-pair task granularity.
func ParallelFockBuilder(mode string, workers int, opt WallOptions) (chem.FockBuilder, error) {
	// Validate eagerly so a typo fails at setup, not mid-SCF.
	if _, err := newWallSched(mode, 0, 1, opt); err != nil {
		return nil, err
	}
	var cache reblockCache
	return func(fw *chem.FockWorkload, h, d *linalg.Matrix) *linalg.Matrix {
		res, _ := wallExec(mode, cache.get(fw, opt.PairBlock), h, d, workers, opt)
		return res.F
	}, nil
}

// ParallelUHFFockBuilder is ParallelFockBuilder's unrestricted
// counterpart: a chem.UHFFockBuilder that computes each UHF iteration's
// J/Kα/Kβ through the given wall-clock executor.
func ParallelUHFFockBuilder(mode string, workers int, opt WallOptions) (chem.UHFFockBuilder, error) {
	if _, err := newWallSched(mode, 0, 1, opt); err != nil {
		return nil, err
	}
	var cache reblockCache
	return func(fw *chem.FockWorkload, dTot, dA, dB *linalg.Matrix) (j, kA, kB *linalg.Matrix) {
		res, _ := WallUHF(mode, cache.get(fw, opt.PairBlock), dTot, dA, dB, workers, opt)
		return res.J, res.KA, res.KB
	}, nil
}
