package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"execmodels/internal/chem"
	"execmodels/internal/deque"
	"execmodels/internal/ga"
	"execmodels/internal/linalg"
)

// WallResult is the outcome of a real (wall-clock) parallel Fock build.
type WallResult struct {
	F          *linalg.Matrix
	Elapsed    time.Duration
	WorkerBusy []time.Duration // per-worker time spent executing tasks
	Steals     int64           // successful steal-half operations
	StealRetry int64           // failed steal rounds (victim empty) — the tail-spin metric
	StealSeed  int64           // the victim-selection seed actually used
	CounterOps int64           // NXTVAL fetches (dynamic mode)
}

// LoadImbalance returns max/mean worker busy time.
func (r *WallResult) LoadImbalance() float64 {
	var sum, mx time.Duration
	for _, b := range r.WorkerBusy {
		sum += b
		if b > mx {
			mx = b
		}
	}
	if sum == 0 {
		return 0
	}
	return float64(mx) / (float64(sum) / float64(len(r.WorkerBusy)))
}

// wallRun drives the shared scaffolding of all wall-clock executors: it
// spawns workers, each pulling task indices from nextTask until exhausted,
// digesting into worker-private J/K (through a worker-private scratch
// arena, so the steady-state loop allocates nothing) and accumulating
// into shared arrays at the end.
//
// nextTask is invoked only from worker wk's goroutine for a given wk, so
// per-worker scheduling state needs no synchronization — but distinct
// workers' state should live on distinct cache lines (see padCell).
// Per-worker busy time is accumulated in a goroutine-local variable and
// merged into the shared slice once, after the task loop, so the hot loop
// never writes adjacent elements of a shared array.
func wallRun(fw *chem.FockWorkload, h, d *linalg.Matrix, workers int,
	nextTask func(worker int) (int, bool)) *WallResult {
	if workers < 1 {
		panic(fmt.Sprintf("core: workers = %d", workers))
	}
	n := fw.Basis.NBF
	jArr := ga.NewArray(n, n, workers)
	kArr := ga.NewArray(n, n, workers)
	busy := make([]time.Duration, workers)

	sw := startStopwatch()
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			// Cold start: the worker-private matrices and scratch arena
			// are allocated here, outside the proved-allocation-free
			// steady-state loop.
			jLoc := linalg.NewMatrix(n, n)
			kLoc := linalg.NewMatrix(n, n)
			scratch := fw.NewScratch()
			busyLoc := wallWorkerLoop(fw, d, jLoc, kLoc, scratch, wk, nextTask)
			jArr.Acc(0, 0, n, n, jLoc.Data, 1)
			kArr.Acc(0, 0, n, n, kLoc.Data, 1)
			busy[wk] = busyLoc // one write per worker; visibility via wg.Wait
		}(wk)
	}
	wg.Wait()
	elapsed := sw.elapsed()

	f := h.Clone()
	f.AddScaled(1, jArr.ToMatrix())
	f.AddScaled(-0.5, kArr.ToMatrix())
	f.Symmetrize()
	return &WallResult{F: f, Elapsed: elapsed, WorkerBusy: busy}
}

// wallWorkerLoop is the steady-state body of every wall-clock worker:
// pull a task index, digest it into the worker-private J/K through the
// worker-private scratch arena, account the busy time. This is the loop
// the paper's execution-model comparison times, so it must not allocate
// — the arena makes the digestion allocation-free after warm-up, and the
// allocfree check proves it for every schedule implementation.
//
//hotpath:allocfree
func wallWorkerLoop(fw *chem.FockWorkload, d, jLoc, kLoc *linalg.Matrix,
	scratch *chem.ERIScratch, wk int, nextTask func(worker int) (int, bool)) time.Duration {
	var busy time.Duration
	for {
		//lint:ignore allocfree indirect dispatch: every nextTask implementation (wallStaticSched, wallDynSched, wallStealSched .next) is itself an annotated allocfree root
		id, ok := nextTask(wk)
		if !ok {
			return busy
		}
		t0 := startStopwatch()
		fw.ExecuteTaskScratch(&fw.Tasks[id], d, jLoc, kLoc, scratch)
		busy += t0.elapsed()
	}
}

// padCell is a per-worker counter padded to a 64-byte cache line:
// adjacent workers' hot scheduling words must not share a line, or every
// cursor bump invalidates the neighbours' caches (false sharing). Each
// cell is read and written only by its owning worker goroutine, so no
// atomics are needed.
//
//hotpath:padded
type padCell struct {
	n int64
	_ [56]byte
}

// dynSpan is the per-worker [next, hi) range of a block fetched from the
// shared counter, padded like padCell.
//
//hotpath:padded
type dynSpan struct {
	next, hi int64
	_        [48]byte
}

// atomicInt64Pad is an atomic counter padded to its own cache line, for
// the genuinely shared counters (remaining tasks, steal stats) that sit
// next to each other in WallStealing.
//
//hotpath:padded
type atomicInt64Pad struct {
	atomic.Int64
	_ [56]byte
}

// wallStaticSched deals each worker a contiguous block of tasks and
// walks it with a per-worker padded cursor.
type wallStaticSched struct {
	n, per  int
	cursors []padCell
}

// next implements the static schedule for worker wk.
//
//hotpath:allocfree
func (s *wallStaticSched) next(wk int) (int, bool) {
	lo, hi := wk*s.per, (wk+1)*s.per
	if hi > s.n {
		hi = s.n
	}
	c := int(s.cursors[wk].n)
	s.cursors[wk].n++
	if lo+c >= hi {
		return 0, false
	}
	return lo + c, true
}

// WallStatic executes the Fock build with a static block schedule on real
// goroutines.
func WallStatic(fw *chem.FockWorkload, h, d *linalg.Matrix, workers int) *WallResult {
	n := len(fw.Tasks)
	s := &wallStaticSched{n: n, per: (n + workers - 1) / workers, cursors: make([]padCell, workers)}
	return wallRun(fw, h, d, workers, s.next)
}

// wallDynSched serves blocks of consecutive tasks from a shared atomic
// counter into per-worker padded spans.
type wallDynSched struct {
	counter  ga.Counter
	n, block int64
	spans    []dynSpan
}

// next implements the dynamic-counter schedule for worker wk.
//
//hotpath:allocfree
func (s *wallDynSched) next(wk int) (int, bool) {
	sp := &s.spans[wk]
	if sp.next < sp.hi {
		v := sp.next
		sp.next++
		return int(v), true
	}
	lo := s.counter.FetchAdd(s.block)
	if lo >= s.n {
		return 0, false
	}
	hi := lo + s.block
	if hi > s.n {
		hi = s.n
	}
	sp.next, sp.hi = lo+1, hi
	return int(lo), true
}

// WallDynamic executes the Fock build pulling blocks of `block`
// consecutive tasks from a shared atomic counter (NXTVAL with a chunk
// size, as the simulated dynamic-counter model's F3 sweep studies).
// block < 1 is treated as 1, the classic one-task-per-fetch NXTVAL.
func WallDynamic(fw *chem.FockWorkload, h, d *linalg.Matrix, workers, block int) *WallResult {
	if block < 1 {
		block = 1
	}
	s := &wallDynSched{n: int64(len(fw.Tasks)), block: int64(block), spans: make([]dynSpan, workers)}
	res := wallRun(fw, h, d, workers, s.next)
	res.CounterOps = s.counter.Ops()
	return res
}

// Backoff schedule for idle thieves: a few yielded retries, then sleeps
// growing linearly to a cap. Without this, workers that finish early
// hammer StealHalf at 100% CPU until the last task completes, polluting
// WorkerBusy/Elapsed and starving the workers still computing.
const (
	stealSpinRounds  = 4
	stealBackoffStep = 2 * time.Microsecond
	stealBackoffMax  = 200 * time.Microsecond
)

// wallStealSched is the per-worker-deque steal-half schedule: pop
// locally, steal half a victim's deque when empty, back off when steals
// fail. The shared counters are padded so the hot Add/Load traffic does
// not false-share.
type wallStealSched struct {
	deques                     []*deque.Deque
	workers                    int
	remaining, steals, retries atomicInt64Pad
	rngs                       []*rand.Rand
}

// next implements the work-stealing schedule for worker wk.
//
//hotpath:allocfree
func (s *wallStealSched) next(wk int) (int, bool) {
	failed := 0
	for {
		if id, ok := s.deques[wk].Pop(); ok {
			s.remaining.Add(-1)
			return id, true
		}
		if s.remaining.Load() <= 0 {
			return 0, false
		}
		if s.workers > 1 {
			// Pick a victim other than ourselves: self-steals are
			// guaranteed misses (our deque just came up empty).
			victim := s.rngs[wk].Intn(s.workers - 1)
			if victim >= wk {
				victim++
			}
			if loot := s.deques[victim].StealHalf(); loot != nil {
				s.steals.Add(1)
				s.deques[wk].PushBatch(loot)
				failed = 0
				continue
			}
		}
		// Failed round: yield first, then back off with bounded
		// sleeps so the idle tail does not busy-spin.
		s.retries.Add(1)
		failed++
		if failed <= stealSpinRounds {
			runtime.Gosched()
			continue
		}
		pause := time.Duration(failed-stealSpinRounds) * stealBackoffStep
		if pause > stealBackoffMax {
			pause = stealBackoffMax
		}
		time.Sleep(pause)
	}
}

// WallStealing executes the Fock build with per-worker deques and
// steal-half work stealing on real goroutines. seed drives the
// per-worker victim-selection RNG streams.
func WallStealing(fw *chem.FockWorkload, h, d *linalg.Matrix, workers int, seed int64) *WallResult {
	n := len(fw.Tasks)
	s := &wallStealSched{deques: make([]*deque.Deque, workers), workers: workers}
	for wk := range s.deques {
		s.deques[wk] = new(deque.Deque)
	}
	per := (n + workers - 1) / workers
	for i := 0; i < n; i++ {
		r := i / per
		if r >= workers {
			r = workers - 1
		}
		s.deques[r].Push(i)
	}
	s.remaining.Store(int64(n))
	s.rngs = make([]*rand.Rand, workers)
	for wk := range s.rngs {
		s.rngs[wk] = rand.New(rand.NewSource(seed + int64(wk)))
	}

	res := wallRun(fw, h, d, workers, s.next)
	res.Steals = s.steals.Load()
	res.StealRetry = s.retries.Load()
	res.StealSeed = seed
	return res
}

// WallOptions carries the tunables of the wall-clock executors that
// ParallelFockBuilder threads through to every Fock build of an SCF run.
type WallOptions struct {
	Seed  int64 // work-stealing victim-selection seed
	Block int   // dynamic-counter tasks per NXTVAL fetch (<1 means 1)
}

// wallExec dispatches one wall-clock Fock build by mode name. It is the
// single point where ParallelFockBuilder's options meet the executors —
// no literal seeds or block sizes may appear here (regression-tested).
func wallExec(mode string, fw *chem.FockWorkload, h, d *linalg.Matrix, workers int, opt WallOptions) (*WallResult, error) {
	switch mode {
	case "static":
		return WallStatic(fw, h, d, workers), nil
	case "dynamic":
		return WallDynamic(fw, h, d, workers, opt.Block), nil
	case "stealing":
		return WallStealing(fw, h, d, workers, opt.Seed), nil
	default:
		return nil, fmt.Errorf("core: unknown wall-clock mode %q", mode)
	}
}

// ParallelFockBuilder returns a chem.FockBuilder that runs every Fock
// build of an SCF iteration through the given wall-clock executor. mode
// is "static", "dynamic" or "stealing"; opt supplies the stealing seed
// and the dynamic fetch block.
func ParallelFockBuilder(mode string, workers int, opt WallOptions) (chem.FockBuilder, error) {
	// Validate eagerly so a typo fails at setup, not mid-SCF.
	switch mode {
	case "static", "dynamic", "stealing":
	default:
		return nil, fmt.Errorf("core: unknown wall-clock mode %q", mode)
	}
	return func(fw *chem.FockWorkload, h, d *linalg.Matrix) *linalg.Matrix {
		res, _ := wallExec(mode, fw, h, d, workers, opt)
		return res.F
	}, nil
}
