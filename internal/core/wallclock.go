package core

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"execmodels/internal/chem"
	"execmodels/internal/deque"
	"execmodels/internal/ga"
	"execmodels/internal/linalg"
)

// WallResult is the outcome of a real (wall-clock) parallel Fock build.
type WallResult struct {
	F          *linalg.Matrix
	Elapsed    time.Duration
	WorkerBusy []time.Duration // per-worker time spent executing tasks
	Steals     int64
	CounterOps int64
}

// LoadImbalance returns max/mean worker busy time.
func (r *WallResult) LoadImbalance() float64 {
	var sum, mx time.Duration
	for _, b := range r.WorkerBusy {
		sum += b
		if b > mx {
			mx = b
		}
	}
	if sum == 0 {
		return 0
	}
	return float64(mx) / (float64(sum) / float64(len(r.WorkerBusy)))
}

// wallRun drives the shared scaffolding of all wall-clock executors: it
// spawns workers, each pulling task indices from nextTask until exhausted,
// digesting into worker-private J/K and accumulating into shared arrays at
// the end.
func wallRun(fw *chem.FockWorkload, h, d *linalg.Matrix, workers int,
	nextTask func(worker int) (int, bool)) *WallResult {
	if workers < 1 {
		panic(fmt.Sprintf("core: workers = %d", workers))
	}
	n := fw.Basis.NBF
	jArr := ga.NewArray(n, n, workers)
	kArr := ga.NewArray(n, n, workers)
	busy := make([]time.Duration, workers)

	sw := startStopwatch()
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			jLoc := linalg.NewMatrix(n, n)
			kLoc := linalg.NewMatrix(n, n)
			for {
				id, ok := nextTask(wk)
				if !ok {
					break
				}
				t0 := startStopwatch()
				fw.ExecuteTask(&fw.Tasks[id], d, jLoc, kLoc)
				busy[wk] += t0.elapsed()
			}
			jArr.Acc(0, 0, n, n, jLoc.Data, 1)
			kArr.Acc(0, 0, n, n, kLoc.Data, 1)
		}(wk)
	}
	wg.Wait()
	elapsed := sw.elapsed()

	f := h.Clone()
	f.AddScaled(1, jArr.ToMatrix())
	f.AddScaled(-0.5, kArr.ToMatrix())
	f.Symmetrize()
	return &WallResult{F: f, Elapsed: elapsed, WorkerBusy: busy}
}

// WallStatic executes the Fock build with a static block schedule on real
// goroutines.
func WallStatic(fw *chem.FockWorkload, h, d *linalg.Matrix, workers int) *WallResult {
	n := len(fw.Tasks)
	per := (n + workers - 1) / workers
	cursors := make([]int64, workers)
	return wallRun(fw, h, d, workers, func(wk int) (int, bool) {
		lo, hi := wk*per, (wk+1)*per
		if hi > n {
			hi = n
		}
		c := int(atomic.AddInt64(&cursors[wk], 1)) - 1
		if lo+c >= hi {
			return 0, false
		}
		return lo + c, true
	})
}

// WallDynamic executes the Fock build pulling tasks from a shared atomic
// counter (NXTVAL).
func WallDynamic(fw *chem.FockWorkload, h, d *linalg.Matrix, workers int) *WallResult {
	var counter ga.Counter
	n := int64(len(fw.Tasks))
	res := wallRun(fw, h, d, workers, func(int) (int, bool) {
		v := counter.NextVal()
		if v >= n {
			return 0, false
		}
		return int(v), true
	})
	res.CounterOps = counter.Ops()
	return res
}

// WallStealing executes the Fock build with per-worker deques and
// steal-half work stealing on real goroutines.
func WallStealing(fw *chem.FockWorkload, h, d *linalg.Matrix, workers int, seed int64) *WallResult {
	n := len(fw.Tasks)
	deques := make([]*deque.Deque, workers)
	for wk := range deques {
		deques[wk] = new(deque.Deque)
	}
	per := (n + workers - 1) / workers
	for i := 0; i < n; i++ {
		r := i / per
		if r >= workers {
			r = workers - 1
		}
		deques[r].Push(i)
	}
	var remaining atomic.Int64
	remaining.Store(int64(n))
	var steals atomic.Int64
	rngs := make([]*rand.Rand, workers)
	for wk := range rngs {
		rngs[wk] = rand.New(rand.NewSource(seed + int64(wk)))
	}

	res := wallRun(fw, h, d, workers, func(wk int) (int, bool) {
		for {
			if id, ok := deques[wk].Pop(); ok {
				remaining.Add(-1)
				return id, true
			}
			if remaining.Load() <= 0 {
				return 0, false
			}
			victim := rngs[wk].Intn(workers)
			if victim == wk {
				continue
			}
			if loot := deques[victim].StealHalf(); loot != nil {
				steals.Add(1)
				deques[wk].PushBatch(loot)
			}
		}
	})
	res.Steals = steals.Load()
	return res
}

// ParallelFockBuilder returns a chem.FockBuilder that runs every Fock
// build of an SCF iteration through the given wall-clock executor. mode is
// "static", "dynamic" or "stealing".
func ParallelFockBuilder(mode string, workers int) (chem.FockBuilder, error) {
	switch mode {
	case "static":
		return func(fw *chem.FockWorkload, h, d *linalg.Matrix) *linalg.Matrix {
			return WallStatic(fw, h, d, workers).F
		}, nil
	case "dynamic":
		return func(fw *chem.FockWorkload, h, d *linalg.Matrix) *linalg.Matrix {
			return WallDynamic(fw, h, d, workers).F
		}, nil
	case "stealing":
		return func(fw *chem.FockWorkload, h, d *linalg.Matrix) *linalg.Matrix {
			return WallStealing(fw, h, d, workers, 1).F
		}, nil
	default:
		return nil, fmt.Errorf("core: unknown wall-clock mode %q", mode)
	}
}
