package core

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"execmodels/internal/cluster"
	"execmodels/internal/obs"
	"execmodels/internal/semimatching"
)

// This file is the scheduler seam shared by the simulator and the
// wall-clock backend: a backend-neutral task-set description goes in, a
// per-rank assignment or a pull policy comes out, and schedulers that
// implement FeedbackScheduler fold measured per-task costs back into
// their cost model for the next iteration. The simulator models
// (static.go, balancers.go, persistence.go, chunked.go) and the
// wall-clock builders (wallsched.go) both plan through this interface,
// so a balancing policy is written once and runs on either backend.

// TaskSet is the backend-neutral description of one schedulable task
// set: stable per-task identity keys, scheduler-visible cost estimates,
// and the data-block geometry the locality-aware policies exploit.
type TaskSet struct {
	Name string
	// Keys identify tasks across iterations and across re-blocked or
	// re-screened decompositions: equal key ⇒ same task content. Cost
	// history is keyed by these, never by slice index.
	Keys []uint64
	// Costs are the scheduler-visible cost estimates (EstCost for
	// simulator workloads, the NBF⁴-style ERI flop estimate for Fock
	// task sets).
	Costs []float64
	// Blocks lists, per task, the data blocks it reads/updates.
	Blocks     [][]int
	NumBlocks  int
	BlockBytes []int
}

// Len returns the number of tasks.
func (ts *TaskSet) Len() int { return len(ts.Keys) }

// TaskSetOf converts a simulator workload into the scheduler-seam
// description. Keys hash each task's content (ID, estimate, blocks), so
// re-generated task sets with different decompositions get fresh keys.
func TaskSetOf(w *Workload) *TaskSet {
	ts := &TaskSet{
		Name:       w.Name,
		Keys:       make([]uint64, len(w.Tasks)),
		Costs:      make([]float64, len(w.Tasks)),
		Blocks:     make([][]int, len(w.Tasks)),
		NumBlocks:  w.NumBlocks,
		BlockBytes: w.BlockBytes,
	}
	for i := range w.Tasks {
		t := &w.Tasks[i]
		ts.Keys[i] = taskKey(t)
		ts.Costs[i] = t.EstCost
		ts.Blocks[i] = t.Blocks
	}
	return ts
}

// taskKey hashes one simulator task's identity: its ID, its cost
// estimate and the blocks it touches.
func taskKey(t *Task) uint64 {
	h := fnv.New64a()
	var b [8]byte
	put := func(v uint64) {
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	put(uint64(t.ID))
	put(math.Float64bits(t.EstCost))
	for _, blk := range t.Blocks {
		put(uint64(blk))
	}
	return h.Sum64()
}

// PullKind selects the runtime discipline of a pull-based plan.
type PullKind int

const (
	// PullCounter pulls chunks of consecutive task indices from a shared
	// fetch-and-add counter (the NXTVAL idiom).
	PullCounter PullKind = iota
	// PullStealing starts from a static block distribution and steals
	// from per-rank deques at runtime.
	PullStealing
)

// PullPolicy describes a pull-based (runtime-scheduled) plan: the tasks
// have no fixed owner, workers claim them while executing.
type PullPolicy struct {
	Kind PullKind
	// Chunk is the counter fetch block (PullCounter; <1 means 1).
	Chunk int
	// Policy, when non-nil, computes self-scheduling chunk sizes from
	// the remaining-task count (simulator only).
	Policy ChunkPolicy
	// Seed drives victim selection (PullStealing).
	Seed int64
	// Steal/Victim/Hierarchical refine the stealing discipline.
	Steal        StealPolicy
	Victim       VictimPolicy
	Hierarchical bool
}

// Plan is one scheduler's decision for one task set on one rank count:
// either a fixed task→rank assignment (Assign) or a pull policy (Pull),
// never both.
type Plan struct {
	// Assign maps task index → rank; nil for pull-based plans.
	Assign []int
	// Pull is the runtime discipline for pull-based plans; nil otherwise.
	Pull *PullPolicy
	// PlanCost is the real (wall-clock) time in seconds spent computing
	// the plan — the partitioner-cost quantity experiment T4 compares.
	// Zero for the cheap policies.
	PlanCost float64
}

// Scheduler is the single interface every balancing policy implements:
// task-set description in, assignment or pull policy out. One Scheduler
// drives both the simulator (RunScheduler) and the wall-clock backend
// (SchedulerFockBuilder).
type Scheduler interface {
	Name() string
	Plan(ts *TaskSet, ranks int) *Plan
}

// FeedbackScheduler is a Scheduler that folds measured per-task costs
// (simulated seconds or wall seconds, whatever the backend executed)
// back into its cost model, closing the obs→scheduler loop for the next
// Plan call.
type FeedbackScheduler interface {
	Scheduler
	// Observe records iteration k's measured per-task costs, aligned
	// with ts (measured[i] belongs to ts.Keys[i]).
	Observe(ts *TaskSet, measured []float64)
}

// ---------------------------------------------------------------------
// Cost model

// costEntry is one task's history in a CostModel.
type costEntry struct {
	est  float64 // seed estimate recorded at first observation
	cost float64 // EWMA-blended measured cost
}

// CostModel is the measured-cost store behind the feedback schedulers:
// per-task EWMA over iterations, keyed by task identity and seeded from
// the scheduler-visible estimate. The first measurement for a key
// replaces the seed outright (estimates and measurements are in
// different units); later measurements blend with weight Alpha. Tasks
// never observed fall back to their estimate scaled by the measured
// calibration ratio, so mixed known/unknown task sets stay comparable.
//
// A CostModel is not safe for concurrent use; each SCF job or simulator
// run owns its own.
type CostModel struct {
	alpha float64
	m     map[uint64]costEntry
	calib float64 // Σmeasured/Σest of the latest observation, 0 until then
}

// NewCostModel returns an empty cost model with the given EWMA weight
// for new measurements. alpha outside (0, 1] selects 1 — the classic
// persistence behavior where the latest measurement replaces history.
func NewCostModel(alpha float64) *CostModel {
	if alpha <= 0 || alpha > 1 {
		alpha = 1
	}
	return &CostModel{alpha: alpha, m: map[uint64]costEntry{}}
}

// Observe folds one iteration's measured per-task costs into the model.
// keys, est and measured are aligned; est seeds the calibration ratio
// used for keys that have never been measured.
func (c *CostModel) Observe(keys []uint64, est, measured []float64) {
	var sumEst, sumMeas float64
	for i, k := range keys {
		e := costEntry{est: est[i], cost: measured[i]}
		if old, ok := c.m[k]; ok {
			e.cost = c.alpha*measured[i] + (1-c.alpha)*old.cost
		}
		c.m[k] = e
		sumEst += est[i]
		sumMeas += measured[i]
	}
	if sumEst > 0 && sumMeas > 0 {
		c.calib = sumMeas / sumEst
	}
}

// Costs returns the scheduler-visible cost vector for a task set:
// blended measurements where the key is known, calibrated estimates
// otherwise. known reports how many tasks had measured history — zero
// means the model has nothing to say about this task set.
func (c *CostModel) Costs(keys []uint64, est []float64) (costs []float64, known int) {
	costs = make([]float64, len(keys))
	for i, k := range keys {
		if e, ok := c.m[k]; ok {
			costs[i] = e.cost
			known++
			continue
		}
		if c.calib > 0 {
			costs[i] = est[i] * c.calib
		} else {
			costs[i] = est[i]
		}
	}
	return costs, known
}

// Known reports whether the key has measured history.
func (c *CostModel) Known(key uint64) bool { _, ok := c.m[key]; return ok }

// Len returns the number of keys with measured history.
func (c *CostModel) Len() int { return len(c.m) }

// Profile exports the model's state as an obs.CostProfile, walking the
// keys in sorted order so the export is deterministic for a given model
// state.
func (c *CostModel) Profile(source, unit string) *obs.CostProfile {
	p := &obs.CostProfile{Source: source, Unit: unit}
	for _, k := range sortedCostKeys(c.m) {
		e := c.m[k]
		p.Tasks = append(p.Tasks, obs.TaskCost{Key: k, Est: e.est, Measured: e.cost})
	}
	return p
}

// ---------------------------------------------------------------------
// Assignment-based schedulers

// staticBlockAssign deals tasks into P contiguous blocks by index — the
// one static decomposition shared by StaticBlock, the stealing models'
// initial queues and the persistence cold start.
func staticBlockAssign(n, ranks int) []int {
	assign := make([]int, n)
	per := (n + ranks - 1) / ranks
	for i := range assign {
		r := i / per
		if r >= ranks {
			r = ranks - 1
		}
		assign[i] = r
	}
	return assign
}

// StaticBlockSched plans the traditional static block schedule.
type StaticBlockSched struct{}

// Name implements Scheduler.
func (StaticBlockSched) Name() string { return "static-block" }

// Plan implements Scheduler.
func (StaticBlockSched) Plan(ts *TaskSet, ranks int) *Plan {
	return &Plan{Assign: staticBlockAssign(ts.Len(), ranks)}
}

// StaticCyclicSched plans the round-robin schedule (task i → rank i mod P).
type StaticCyclicSched struct{}

// Name implements Scheduler.
func (StaticCyclicSched) Name() string { return "static-cyclic" }

// Plan implements Scheduler.
func (StaticCyclicSched) Plan(ts *TaskSet, ranks int) *Plan {
	assign := make([]int, ts.Len())
	for i := range assign {
		assign[i] = i % ranks
	}
	return &Plan{Assign: assign}
}

// LPTSched plans longest-processing-time-first list scheduling over the
// task-set cost estimates — the estimate-only baseline the W3 feedback
// experiment compares measured-cost assignment against.
type LPTSched struct{}

// Name implements Scheduler.
func (LPTSched) Name() string { return "lpt" }

// Plan implements Scheduler.
func (LPTSched) Plan(ts *TaskSet, ranks int) *Plan {
	b := semimatching.Complete(ts.Len(), ranks)
	return &Plan{Assign: semimatching.LPT(b, ts.Costs).Of}
}

// SemiMatchingSched plans the paper's semi-matching assignment over the
// task-set estimates and block-ownership graph.
type SemiMatchingSched struct {
	// ExtraEdges is the number of additional random candidate ranks per
	// task (default 2), as in SemiMatchingLB.
	ExtraEdges int
	Seed       int64
}

// Name implements Scheduler.
func (SemiMatchingSched) Name() string { return "semi-matching" }

// Plan implements Scheduler.
func (s SemiMatchingSched) Plan(ts *TaskSet, ranks int) *Plan {
	sw := startStopwatch()
	b := buildTaskGraph(ts.Len(), ranks, s.ExtraEdges, s.Seed, func(i int) []int { return ts.Blocks[i] })
	assign := semimatching.WeightedSemiMatch(b, ts.Costs).Of
	return &Plan{Assign: assign, PlanCost: sw.seconds()}
}

// HypergraphSched plans the multilevel hypergraph-partitioned
// assignment over the task-set estimates and block nets.
type HypergraphSched struct {
	Eps  float64
	Seed int64
	Flat bool
}

// Name implements Scheduler.
func (h HypergraphSched) Name() string {
	if h.Flat {
		return "hypergraph-flat"
	}
	return "hypergraph"
}

// Plan implements Scheduler.
func (h HypergraphSched) Plan(ts *TaskSet, ranks int) *Plan {
	sw := startStopwatch()
	assign := HypergraphLB{Eps: h.Eps, Seed: h.Seed, Flat: h.Flat}.planAssign(ts, ranks)
	return &Plan{Assign: assign, PlanCost: sw.seconds()}
}

// ---------------------------------------------------------------------
// Pull-based schedulers

// CounterSched plans the centralized dynamic discipline: pull chunks
// from a shared counter. Policy, when set, selects a self-scheduling
// chunk family (simulator only); otherwise Chunk is the fixed NXTVAL
// fetch block.
type CounterSched struct {
	Chunk  int
	Policy ChunkPolicy
}

// Name implements Scheduler.
func (c CounterSched) Name() string {
	if c.Policy != nil {
		return "self-sched-" + c.Policy.Name()
	}
	return "dynamic-counter"
}

// Plan implements Scheduler.
func (c CounterSched) Plan(ts *TaskSet, ranks int) *Plan {
	return &Plan{Pull: &PullPolicy{Kind: PullCounter, Chunk: c.Chunk, Policy: c.Policy}}
}

// StealingSched plans the distributed-dynamic discipline: static block
// queues plus runtime work stealing.
type StealingSched struct {
	Steal        StealPolicy
	Victim       VictimPolicy
	Seed         int64
	Hierarchical bool
}

// Name implements Scheduler.
func (s StealingSched) Name() string {
	return WorkStealing{Steal: s.Steal, Victim: s.Victim, Seed: s.Seed, Hierarchical: s.Hierarchical}.Name()
}

// Plan implements Scheduler.
func (s StealingSched) Plan(ts *TaskSet, ranks int) *Plan {
	return &Plan{Pull: &PullPolicy{
		Kind: PullStealing, Seed: s.Seed,
		Steal: s.Steal, Victim: s.Victim, Hierarchical: s.Hierarchical,
	}}
}

// ---------------------------------------------------------------------
// Persistence / feedback scheduler

// PersistenceOptions configures NewPersistenceSched.
type PersistenceOptions struct {
	// Rebalance selects the measured-cost assignment: "lpt" (default)
	// or "semimatching" (locality-restricted, as PersistenceSM).
	Rebalance string
	// Alpha is the EWMA weight of new measurements; outside (0, 1] it
	// selects 1, the classic replace-latest persistence behavior.
	Alpha float64
	// WarmStart plans LPT over (calibrated) estimates before any
	// measurement exists, instead of the classic static block cold
	// start — the estimate-seeded mode of the feedback loop.
	WarmStart bool
	// Seed and ExtraEdges parameterize the semi-matching graph.
	Seed       int64
	ExtraEdges int
	// Costs, when non-nil, is the shared measured-cost history. Leaving
	// it nil gives the scheduler a private model.
	Costs *CostModel
	// ForceName overrides the derived scheduler name (optional).
	ForceName string
}

// PersistenceSched is the feedback scheduler: it plans from its cost
// model (cold start until the first Observe, measured-cost rebalancing
// afterwards) and implements FeedbackScheduler so each backend's
// measured per-task costs drive the next iteration's assignment — the
// principle of persistence, closed over either virtual or wall time.
type PersistenceSched struct {
	name       string
	rebalance  string
	warmStart  bool
	seed       int64
	extraEdges int
	cm         *CostModel

	// Semi-matching graph cache: rebuilt only when the task set or rank
	// count changes (same policy as PersistenceSM, which built its graph
	// once per run).
	graphTS    *TaskSet
	graphRanks int
	graph      *semimatching.Bipartite
}

// NewPersistenceSched builds a persistence/feedback scheduler.
func NewPersistenceSched(opt PersistenceOptions) *PersistenceSched {
	if opt.Rebalance == "" {
		opt.Rebalance = "lpt"
	}
	cm := opt.Costs
	if cm == nil {
		cm = NewCostModel(opt.Alpha)
	}
	name := opt.ForceName
	if name == "" {
		switch {
		case opt.WarmStart || (opt.Alpha > 0 && opt.Alpha < 1):
			name = "persistence-feedback"
		case opt.Rebalance == "semimatching":
			name = "persistence-sm"
		default:
			name = "persistence"
		}
	}
	return &PersistenceSched{
		name:       name,
		rebalance:  opt.Rebalance,
		warmStart:  opt.WarmStart,
		seed:       opt.Seed,
		extraEdges: opt.ExtraEdges,
		cm:         cm,
	}
}

// Name implements Scheduler.
func (p *PersistenceSched) Name() string { return p.name }

// Costs exposes the scheduler's cost model (for export and tests).
func (p *PersistenceSched) Costs() *CostModel { return p.cm }

// Plan implements Scheduler. History is consulted by task identity key,
// so a re-blocked or re-screened task set (fresh keys) falls back to the
// cold start instead of reusing stale measurements.
func (p *PersistenceSched) Plan(ts *TaskSet, ranks int) *Plan {
	costs, known := p.cm.Costs(ts.Keys, ts.Costs)
	if known == 0 && !p.warmStart {
		// Classic persistence cold start: static block while measuring.
		return &Plan{Assign: staticBlockAssign(ts.Len(), ranks)}
	}
	if p.rebalance == "semimatching" {
		return &Plan{Assign: weightedSemiMatchAssign(p.graphFor(ts, ranks), costs)}
	}
	b := semimatching.Complete(ts.Len(), ranks)
	return &Plan{Assign: semimatching.LPT(b, costs).Of}
}

// Observe implements FeedbackScheduler.
func (p *PersistenceSched) Observe(ts *TaskSet, measured []float64) {
	p.cm.Observe(ts.Keys, ts.Costs, measured)
}

func (p *PersistenceSched) graphFor(ts *TaskSet, ranks int) *semimatching.Bipartite {
	if p.graph == nil || p.graphTS != ts || p.graphRanks != ranks {
		p.graphTS, p.graphRanks = ts, ranks
		p.graph = buildTaskGraph(ts.Len(), ranks, p.extraEdges, p.seed, func(i int) []int { return ts.Blocks[i] })
	}
	return p.graph
}

// ---------------------------------------------------------------------
// Registry

// SchedOptions carries the tunables of SchedulerByName.
type SchedOptions struct {
	// Seed drives stealing victim selection and semi-matching extra
	// edges.
	Seed int64
	// Block is the dynamic-counter fetch chunk (<1 means 1).
	Block int
	// ExtraEdges / Eps parameterize semi-matching / hypergraph.
	ExtraEdges int
	Eps        float64
	// Alpha is the feedback EWMA weight (persistence-feedback only;
	// outside (0,1] selects the default 0.5).
	Alpha float64
	// Costs, when non-nil, shares measured-cost history with the
	// persistence schedulers.
	Costs *CostModel
}

// feedbackAlphaDefault is the EWMA weight of the persistence-feedback
// policy: half new measurement, half history, smoothing iteration noise
// without going stale.
const feedbackAlphaDefault = 0.5

// SchedulerByName instantiates a balancing policy from its canonical
// name (or a common alias). The names double as the scfd -sched and
// benchsuite -wall-sched vocabularies.
func SchedulerByName(name string, opt SchedOptions) (Scheduler, error) {
	switch name {
	case "static", "static-block":
		return StaticBlockSched{}, nil
	case "cyclic", "static-cyclic":
		return StaticCyclicSched{}, nil
	case "dynamic", "dynamic-counter":
		return CounterSched{Chunk: opt.Block}, nil
	case "self-sched-guided":
		return CounterSched{Policy: GuidedChunk{}}, nil
	case "self-sched-factoring":
		return CounterSched{Policy: FactoringChunk{}}, nil
	case "stealing", "work-stealing":
		return StealingSched{Seed: opt.Seed}, nil
	case "work-stealing-one":
		return StealingSched{Steal: StealOne, Seed: opt.Seed}, nil
	case "work-stealing-maxvictim":
		return StealingSched{Victim: MostLoadedVictim, Seed: opt.Seed}, nil
	case "work-stealing-hier":
		return StealingSched{Hierarchical: true, Seed: opt.Seed}, nil
	case "lpt":
		return LPTSched{}, nil
	case "semimatching", "semi-matching":
		return SemiMatchingSched{ExtraEdges: opt.ExtraEdges, Seed: opt.Seed}, nil
	case "hypergraph":
		return HypergraphSched{Eps: opt.Eps, Seed: opt.Seed}, nil
	case "hypergraph-flat":
		return HypergraphSched{Eps: opt.Eps, Seed: opt.Seed, Flat: true}, nil
	case "persistence":
		return NewPersistenceSched(PersistenceOptions{Seed: opt.Seed, Costs: opt.Costs}), nil
	case "persistence-sm":
		return NewPersistenceSched(PersistenceOptions{
			Rebalance: "semimatching", Seed: opt.Seed, ExtraEdges: opt.ExtraEdges, Costs: opt.Costs,
		}), nil
	case "persistence-feedback":
		alpha := opt.Alpha
		if alpha <= 0 || alpha >= 1 {
			alpha = feedbackAlphaDefault
		}
		return NewPersistenceSched(PersistenceOptions{
			Alpha: alpha, WarmStart: true, Seed: opt.Seed, Costs: opt.Costs,
		}), nil
	}
	return nil, fmt.Errorf("core: unknown scheduler %q", name)
}

// SchedulerNames returns the canonical scheduler names accepted by
// SchedulerByName, in presentation order.
func SchedulerNames() []string {
	return []string{
		"static", "cyclic", "dynamic", "self-sched-guided", "self-sched-factoring",
		"stealing", "work-stealing-one", "work-stealing-maxvictim", "work-stealing-hier",
		"lpt", "semimatching", "hypergraph", "hypergraph-flat",
		"persistence", "persistence-sm", "persistence-feedback",
	}
}

// ---------------------------------------------------------------------
// Simulator drivers

// RunScheduler executes one scheduler's plan on the simulator — the new
// call path the differential matrix compares against each model's
// legacy Run.
func RunScheduler(sched Scheduler, w *Workload, m *cluster.Machine) *Result {
	return runPlan(sched.Name(), sched.Plan(TaskSetOf(w), m.P), w, m, nil)
}

// runPlan dispatches a plan to the simulator execution engines.
// measured, when non-nil, captures per-task simulated times
// (assignment-based plans only).
func runPlan(name string, plan *Plan, w *Workload, m *cluster.Machine, measured []float64) *Result {
	switch {
	case plan.Assign != nil:
		return runAssignment(name, w, m, plan.Assign, plan.PlanCost, measured)
	case plan.Pull != nil && plan.Pull.Kind == PullCounter:
		policy := plan.Pull.Policy
		if policy == nil {
			chunk := plan.Pull.Chunk
			if chunk < 1 {
				chunk = 1
			}
			policy = FixedChunk(chunk)
		}
		return runCounterSim(name, w, m, policy)
	case plan.Pull != nil && plan.Pull.Kind == PullStealing:
		ws := WorkStealing{
			Steal: plan.Pull.Steal, Victim: plan.Pull.Victim,
			Seed: plan.Pull.Seed, Hierarchical: plan.Pull.Hierarchical,
		}
		return runStealingSim(name, ws, w, m)
	}
	panic(fmt.Sprintf("core: scheduler %q produced an empty plan", name))
}

// RunSchedulerIterations runs the iterative feedback protocol on the
// simulator: plan, execute measuring per-task times, observe, repeat.
// It returns the final iteration's result and the per-iteration
// makespans. Non-feedback schedulers simply replan every iteration.
func RunSchedulerIterations(sched Scheduler, w *Workload, m *cluster.Machine, iters int) (*Result, []float64) {
	if iters < 1 {
		iters = 3
	}
	ts := TaskSetOf(w)
	measured := make([]float64, ts.Len())
	fb, _ := sched.(FeedbackScheduler)
	var history []float64
	var res *Result
	for it := 0; it < iters; it++ {
		plan := sched.Plan(ts, m.P)
		if plan.Assign == nil {
			panic(fmt.Sprintf("core: iterative scheduler %q must produce assignment plans", sched.Name()))
		}
		// Each iteration restarts the virtual clocks at zero; reset the
		// trace so it describes the same (final) iteration the Result does.
		m.Trace.Reset()
		res = runAssignment(sched.Name(), w, m, plan.Assign, plan.PlanCost, measured)
		history = append(history, res.Makespan)
		if fb != nil {
			fb.Observe(ts, measured)
		}
	}
	return res, history
}

// Scheduled adapts a Scheduler to the simulator Model interface.
// Iterations > 1 runs the iterative feedback protocol and reports the
// final iteration, like the persistence models.
type Scheduled struct {
	S          Scheduler
	Iterations int
}

// Name implements Model.
func (s Scheduled) Name() string { return s.S.Name() }

// Run implements Model.
func (s Scheduled) Run(w *Workload, m *cluster.Machine) *Result {
	if s.Iterations > 1 {
		res, _ := RunSchedulerIterations(s.S, w, m, s.Iterations)
		return res
	}
	return RunScheduler(s.S, w, m)
}

// sortedCostKeys returns the model's keys in ascending order (export
// helper, kept deterministic for the obs golden tests).
func sortedCostKeys(m map[uint64]costEntry) []uint64 {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
