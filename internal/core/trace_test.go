package core

import (
	"strings"
	"testing"

	"execmodels/internal/cluster"
)

func TestTraceCapturesStaticRun(t *testing.T) {
	w := Synthetic(SyntheticOptions{NumTasks: 40, Dist: "triangular", Seed: 1})
	m := testMachine(4)
	m.Trace = &cluster.Trace{}
	res := StaticBlock{}.Run(w, m)

	// One task interval per task.
	var tasks int
	for _, iv := range m.Trace.Intervals {
		if iv.Activity == "task" {
			tasks++
			if iv.End <= iv.Start {
				t.Fatalf("empty interval %+v", iv)
			}
			if iv.Rank < 0 || iv.Rank >= 4 {
				t.Fatalf("bad rank %+v", iv)
			}
		}
	}
	if tasks != len(w.Tasks) {
		t.Fatalf("trace has %d task intervals, want %d", tasks, len(w.Tasks))
	}
	// Trace busy time must agree with the result's accounting.
	busy := m.Trace.BusyTime(4)
	for r := range busy {
		if diff := busy[r] - res.BusyTime[r]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("rank %d trace busy %v != result %v", r, busy[r], res.BusyTime[r])
		}
	}
}

func TestTraceCapturesStealsAndCounter(t *testing.T) {
	w := Synthetic(SyntheticOptions{NumTasks: 200, Dist: "triangular", Seed: 2})

	m := testMachine(8)
	m.Trace = &cluster.Trace{}
	WorkStealing{Seed: 3}.Run(w, m)
	if tot := m.Trace.ActivityTotals(); tot["steal"] <= 0 {
		t.Error("no steal activity traced")
	}

	m2 := testMachine(8)
	m2.Trace = &cluster.Trace{}
	DynamicCounter{Chunk: 1}.Run(w, m2)
	if tot := m2.Trace.ActivityTotals(); tot["counter"] <= 0 {
		t.Error("no counter activity traced")
	}
}

func TestGanttRendering(t *testing.T) {
	w := Synthetic(SyntheticOptions{NumTasks: 64, Dist: "triangular", Seed: 4})
	m := testMachine(4)
	m.Trace = &cluster.Trace{}
	WorkStealing{Seed: 1}.Run(w, m)
	g := m.Trace.Gantt(4, 60)
	lines := strings.Split(strings.TrimRight(g, "\n"), "\n")
	if len(lines) != 5 { // 4 ranks + legend
		t.Fatalf("gantt has %d lines:\n%s", len(lines), g)
	}
	if !strings.Contains(g, "#") {
		t.Fatalf("no task glyphs in gantt:\n%s", g)
	}
	if !strings.Contains(lines[0], "rank   0") {
		t.Fatalf("missing rank label: %q", lines[0])
	}
}

func TestGanttEmptyTrace(t *testing.T) {
	var tr cluster.Trace
	if g := tr.Gantt(2, 40); g != "" {
		t.Fatalf("expected empty render, got %q", g)
	}
}

func TestTraceSpan(t *testing.T) {
	tr := &cluster.Trace{}
	tr.Record(cluster.Interval{Start: 1, End: 3})
	tr.Record(cluster.Interval{Start: 0.5, End: 2})
	s, e := tr.Span()
	if s != 0.5 || e != 3 {
		t.Fatalf("span = %v..%v", s, e)
	}
}

// Tracing must not change measured results.
func TestTraceDoesNotPerturbResults(t *testing.T) {
	w := Synthetic(SyntheticOptions{NumTasks: 128, Dist: "lognormal", Seed: 5})
	m1 := testMachine(8)
	plain := WorkStealing{Seed: 9}.Run(w, m1)
	m2 := testMachine(8)
	m2.Trace = &cluster.Trace{}
	traced := WorkStealing{Seed: 9}.Run(w, m2)
	if plain.Makespan != traced.Makespan {
		t.Fatalf("tracing changed makespan: %v vs %v", plain.Makespan, traced.Makespan)
	}
}
