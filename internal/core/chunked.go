package core

import (
	"container/heap"

	"execmodels/internal/cluster"
	"execmodels/internal/obs"
)

// ChunkPolicy computes how many task indices a rank claims per counter
// operation, given the number of unclaimed tasks and the rank count.
// It generalizes DynamicCounter's fixed chunk to the classical
// self-scheduling family.
type ChunkPolicy interface {
	Name() string
	NextChunk(remaining, ranks int) int
}

// FixedChunk claims a constant number of tasks per operation.
type FixedChunk int

// Name implements ChunkPolicy.
func (c FixedChunk) Name() string { return "fixed" }

// NextChunk implements ChunkPolicy.
func (c FixedChunk) NextChunk(remaining, ranks int) int {
	if c < 1 {
		return 1
	}
	return int(c)
}

// GuidedChunk implements guided self-scheduling: each claim takes
// ⌈remaining/P⌉ tasks, so chunks shrink geometrically and the tail is
// fine-grained exactly where imbalance risk concentrates.
type GuidedChunk struct{}

// Name implements ChunkPolicy.
func (GuidedChunk) Name() string { return "guided" }

// NextChunk implements ChunkPolicy.
func (GuidedChunk) NextChunk(remaining, ranks int) int {
	c := (remaining + ranks - 1) / ranks
	if c < 1 {
		c = 1
	}
	return c
}

// FactoringChunk implements factoring (Hummel/Schonberg/Flynn): work is
// claimed in batches of P equal chunks, each batch covering half of what
// remains, giving more scheduling slack than guided self-scheduling under
// high cost variance.
type FactoringChunk struct{}

// Name implements ChunkPolicy.
func (FactoringChunk) Name() string { return "factoring" }

// NextChunk implements ChunkPolicy.
func (FactoringChunk) NextChunk(remaining, ranks int) int {
	c := (remaining + 2*ranks - 1) / (2 * ranks)
	if c < 1 {
		c = 1
	}
	return c
}

// SelfScheduling is the generalized centralized dynamic model: ranks
// claim chunks from the shared counter under a pluggable chunk policy.
// DynamicCounter is the FixedChunk special case; GuidedChunk and
// FactoringChunk are the textbook refinements the paper's "wide variety
// of execution models" spans.
type SelfScheduling struct {
	Policy ChunkPolicy
}

// Name implements Model.
func (s SelfScheduling) Name() string {
	if s.Policy == nil {
		return "self-sched-guided"
	}
	return "self-sched-" + s.Policy.Name()
}

// Run implements Model (via the scheduler seam's counter engine).
func (s SelfScheduling) Run(w *Workload, m *cluster.Machine) *Result {
	policy := s.Policy
	if policy == nil {
		policy = GuidedChunk{}
	}
	return runCounterSim(s.Name(), w, m, policy)
}

// runCounterSim is the simulated execution engine of every
// counter-based (centralized dynamic) plan: ranks claim chunks of
// consecutive task indices from the shared counter agent under the
// given chunk policy and pay communication for remote blocks.
// DynamicCounter, SelfScheduling and the CounterSched plans all run
// through it.
func runCounterSim(model string, w *Workload, m *cluster.Machine, policy ChunkPolicy) *Result {
	res := newResult(model, m.P)
	counter := cluster.NewCounterAgent(m)
	n := int64(len(w.Tasks))

	seen := make([]map[int]bool, m.P)
	for r := range seen {
		seen[r] = map[int]bool{}
	}

	h := make(rankHeap, 0, m.P)
	for r := 0; r < m.P; r++ {
		heap.Push(&h, rankEvent{rank: r, time: 0})
	}
	for h.Len() > 0 {
		ev := heap.Pop(&h).(rankEvent)
		r := ev.rank
		// The claim size must be computed from the pre-claim remaining
		// count; the counter itself is the source of truth.
		remaining := int(n - counter.Value())
		if remaining < 0 {
			remaining = 0
		}
		chunk := policy.NextChunk(remaining, m.P)
		old, done := counter.FetchAdd(ev.time, int64(chunk))
		m.Trace.Record(cluster.Interval{Rank: r, Start: ev.time, End: done, TaskID: -1, Activity: "counter"})
		res.addTime(obs.MCounter, r, done-ev.time)
		if old >= n {
			res.FinishTime[r] = done
			continue
		}
		t := done
		for i := old; i < old+int64(chunk) && i < n; i++ {
			task := &w.Tasks[i]
			dt := m.TaskTimeAt(r, task.Cost, t)
			m.Trace.Record(cluster.Interval{Rank: r, Start: t, End: t + dt, TaskID: task.ID, Activity: "task"})
			res.addBusy(r, dt)
			t += dt
			res.ranTask(r)
			for _, b := range task.Blocks {
				owner := blockOwner(b, m.P)
				if owner == r || seen[r][b] {
					continue
				}
				seen[r][b] = true
				ct := 2 * m.XferTimeBetween(owner, r, w.BlockBytes[b])
				m.Trace.Record(cluster.Interval{Rank: r, Start: t, End: t + ct, TaskID: -1, Activity: "comm", Src: owner, Dst: r, Bytes: w.BlockBytes[b]})
				res.addComm(r, ct, w.BlockBytes[b])
				t += ct
			}
		}
		heap.Push(&h, rankEvent{rank: r, time: t})
	}
	res.count(obs.CCounterOps, 0, counter.Ops())
	res.addTime(obs.MCounterWait, 0, counter.TotalWait())
	res.finalize()
	return res
}

// PersistenceSM is the persistence model with semi-matching (rather than
// LPT) rebalancing: measured task costs weight the locality-restricted
// bipartite graph, so iterations 2+ balance load *and* respect data
// ownership.
type PersistenceSM struct {
	Iterations int
	Seed       int64

	// Costs optionally shares measured-cost history across runs, keyed
	// by task identity (see Persistence.Costs).
	Costs *CostModel
}

// Name implements Model.
func (PersistenceSM) Name() string { return "persistence-sm" }

// Run implements Model.
func (p PersistenceSM) Run(w *Workload, m *cluster.Machine) *Result {
	res, _ := p.RunWithHistory(w, m)
	return res
}

// RunWithHistory runs the iterative protocol and returns the final
// iteration's result plus per-iteration makespans.
func (p PersistenceSM) RunWithHistory(w *Workload, m *cluster.Machine) (*Result, []float64) {
	sched := NewPersistenceSched(PersistenceOptions{
		Rebalance: "semimatching", Seed: p.Seed, Costs: p.Costs, ForceName: p.Name(),
	})
	return RunSchedulerIterations(sched, w, m, p.Iterations)
}
