package core

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"execmodels/internal/cluster"
	"execmodels/internal/obs"
	"execmodels/internal/semimatching"
)

// SCFCheckpoint is the on-disk record of a long SCF run's last completed
// iteration — the real-process counterpart of CheckpointedPersistence's
// per-iteration checkpoint/rollback protocol below. The serving layer
// (internal/serve) writes one after every committed iteration and, after
// a crash, rolls the job back to this state exactly as the simulated
// model rolls an aborted iteration back to its last barrier checkpoint:
// finished post-checkpoint iterations count as re-executed work.
//
// Like workloadJSON in serialize.go, the format is versioned JSON with
// all state inlined (the row-major density matrix plus the scalars
// RunSCF needs to resume), so a checkpoint written by one process is
// readable by a freshly started one with no shared memory.
type SCFCheckpoint struct {
	Version   int     `json:"version"`
	JobID     string  `json:"jobId,omitempty"`    // owning job, for spool-dir audits
	Molecule  string  `json:"molecule,omitempty"` // informational: molecule name
	Basis     string  `json:"basis,omitempty"`    // informational: basis-set name
	N         int     `json:"n"`                  // density dimension (basis functions)
	Iteration int     `json:"iteration"`          // last completed SCF iteration
	Energy    float64 `json:"energy"`             // total energy after Iteration
	// Density is the row-major N×N density matrix entering Iteration+1.
	Density []float64 `json:"density"`
}

const scfCheckpointVersion = 1

// WriteSCFCheckpoint serializes c as versioned JSON. The version field is
// stamped by the writer; callers fill in everything else.
func WriteSCFCheckpoint(out io.Writer, c *SCFCheckpoint) error {
	doc := *c
	doc.Version = scfCheckpointVersion
	if err := validateSCFCheckpoint(&doc); err != nil {
		return err
	}
	return json.NewEncoder(out).Encode(&doc)
}

// ReadSCFCheckpoint deserializes a checkpoint written by
// WriteSCFCheckpoint, validating version, shape and finiteness — a
// truncated or corrupted spool file must fail loudly here, not resume a
// job from garbage.
func ReadSCFCheckpoint(in io.Reader) (*SCFCheckpoint, error) {
	var doc SCFCheckpoint
	if err := json.NewDecoder(in).Decode(&doc); err != nil {
		return nil, fmt.Errorf("core: bad SCF checkpoint JSON: %w", err)
	}
	if doc.Version != scfCheckpointVersion {
		return nil, fmt.Errorf("core: SCF checkpoint version %d, want %d", doc.Version, scfCheckpointVersion)
	}
	if err := validateSCFCheckpoint(&doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

// validateSCFCheckpoint checks the invariants shared by reader and
// writer: a positive square density of matching length, a completed
// iteration count, and finite numerics.
func validateSCFCheckpoint(c *SCFCheckpoint) error {
	if c.N < 1 {
		return fmt.Errorf("core: SCF checkpoint has n = %d", c.N)
	}
	if len(c.Density) != c.N*c.N {
		return fmt.Errorf("core: SCF checkpoint density has %d entries for n = %d", len(c.Density), c.N)
	}
	if c.Iteration < 1 {
		return fmt.Errorf("core: SCF checkpoint iteration %d < 1", c.Iteration)
	}
	if math.IsNaN(c.Energy) || math.IsInf(c.Energy, 0) {
		return fmt.Errorf("core: SCF checkpoint energy is not finite")
	}
	for i, v := range c.Density {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("core: SCF checkpoint density[%d] is not finite", i)
		}
	}
	return nil
}

// CheckpointedPersistence is the persistence-based iterative model with a
// per-iteration checkpoint/restart recovery path — the classic HPC answer
// to fail-stop faults, included so F9/T8 can compare it against the
// lease-based re-absorption the dynamic models use. After every
// successful iteration the replicated state (density/Fock blocks) is
// checkpointed; a crash mid-iteration aborts the whole iteration, rolls
// its completions back, and re-runs it from the last checkpoint on the
// surviving ranks, rebalanced by LPT over the measured cost profile.
// Rollback is the opposite durability choice from resilient.go's
// accumulate-on-completion: here an aborted iteration's finished tasks
// count as re-executed work, which is exactly the overhead T8 surfaces.
type CheckpointedPersistence struct {
	// Iterations is the number of application iterations (default 3).
	Iterations int
	// CheckpointBytes is the state written per checkpoint and re-read per
	// restart (default: the workload's summed block bytes).
	CheckpointBytes int
	// DetectTimeout is the barrier timeout before declaring silent ranks
	// dead (default 100× network latency).
	DetectTimeout float64
}

// Name implements Model.
func (CheckpointedPersistence) Name() string { return "persistence-ckpt" }

// Run implements Model.
func (p CheckpointedPersistence) Run(w *Workload, m *cluster.Machine) *Result {
	res, _ := p.RunWithHistory(w, m)
	return res
}

// RunWithHistory runs the iterative protocol and returns the final
// result together with per-iteration times (successful attempts only;
// an iteration's time includes any aborted attempts it absorbed).
func (p CheckpointedPersistence) RunWithHistory(w *Workload, m *cluster.Machine) (*Result, []float64) {
	iters := p.Iterations
	if iters < 1 {
		iters = 3
	}
	n := len(w.Tasks)
	ckptBytes := p.CheckpointBytes
	if ckptBytes <= 0 {
		for _, b := range w.BlockBytes {
			ckptBytes += b
		}
	}
	detect := p.DetectTimeout
	if detect <= 0 {
		detect = defaultDetect(m)
	}

	res := newResult(p.Name(), m.P)
	// Iterative protocol: every iteration re-runs the full task set, so
	// exactly-once is a per-iteration invariant — each iteration gets a
	// fresh lease table, audited when the iteration commits.
	var lt *leaseTable
	var alive []int
	for r := 0; r < m.P; r++ {
		alive = append(alive, r)
	}
	measured := make([]float64, n)
	haveMeasured := false
	offset := 0.0 // global virtual time; crashes in the plan are global too
	var history []float64

	for it := 0; it < iters; it++ {
		iterStart := offset
		lt = newLeaseTable(n)
		for { // attempt loop: repeats the iteration until no rank dies in it
			// Assignment over the current survivors: block split on the
			// first measured-free attempt, LPT over measured costs after.
			assign := make([]int, n)
			if !haveMeasured {
				per := (n + len(alive) - 1) / len(alive)
				for i := 0; i < n; i++ {
					assign[i] = alive[min(i/per, len(alive)-1)]
				}
			} else {
				b := semimatching.Complete(n, len(alive))
				of := semimatching.LPT(b, measured).Of
				for i := 0; i < n; i++ {
					assign[i] = alive[of[i]]
				}
			}
			lists := make([][]int, m.P)
			for i := 0; i < n; i++ {
				lists[assign[i]] = append(lists[assign[i]], i)
				lt.claim(i, assign[i])
			}

			clock := make([]float64, m.P)
			seen := make([]map[int]bool, m.P)
			for _, r := range alive {
				clock[r] = offset
				seen[r] = map[int]bool{}
			}
			var completed []int
			var newlyDead []int
			taskTime := make([]float64, n)
			for _, r := range alive {
				for _, id := range lists[r] {
					task := &w.Tasks[id]
					lt.start(id, r)
					end, ok := m.TaskTimeFaulty(r, task.Cost, clock[r])
					m.Trace.Record(cluster.Interval{Rank: r, Start: clock[r], End: end, TaskID: id, Activity: "task"})
					res.addBusy(r, end-clock[r])
					taskTime[id] = end - clock[r]
					clock[r] = end
					if !ok {
						newlyDead = append(newlyDead, r)
						res.count(obs.CCrashes, r, 1)
						res.FinishTime[r] = end
						break
					}
					res.ranTask(r)
					clock[r] = chargeComm(res, w, m, seen, r, task, clock[r])
					lt.complete(id, r)
					completed = append(completed, id)
				}
			}

			if len(newlyDead) == 0 {
				// Success: record the measured profile, checkpoint, move on.
				bar := 0.0
				for _, r := range alive {
					if clock[r] > bar {
						bar = clock[r]
					}
				}
				for i := 0; i < n; i++ {
					measured[i] = taskTime[i]
				}
				haveMeasured = true
				// Every survivor writes its checkpoint shard after the
				// barrier: checkpoint cost is charged per rank, in step
				// with the blame decomposition's rank-seconds.
				ck := m.XferTime(ckptBytes)
				for _, r := range alive {
					m.Trace.Record(cluster.Interval{Rank: r, Start: bar, End: bar + ck, TaskID: -1, Activity: "checkpoint"})
					res.addTime(obs.MCheckpoint, r, ck)
				}
				offset = bar + ck
				res.count(obs.CReExecuted, 0, int64(lt.reexec))
				lt.audit()
				break
			}

			// Abort: survivors stall at the barrier, detect the dead,
			// roll the whole iteration back to the checkpoint, restart.
			deadSet := map[int]bool{}
			for _, r := range newlyDead {
				deadSet[r] = true
			}
			var next []int
			bar := 0.0
			for _, r := range alive {
				if deadSet[r] {
					continue
				}
				next = append(next, r)
				if clock[r] > bar {
					bar = clock[r]
				}
			}
			if len(next) == 0 {
				panic("core: persistence-ckpt has no surviving ranks to restart on")
			}
			detectAt := bar + detect
			for _, r := range newlyDead {
				res.addTime(obs.MDetect, r, detectAt-m.CrashTime(r))
				res.count(obs.CLostTasks, r, int64(len(lt.lost(r))))
			}
			lt.rollback(completed)
			// Survivors stall until detection completes (recovery), then
			// re-read the checkpoint (restore). Splitting the two windows
			// keeps the blame components disjoint — the old accounting
			// charged the restore to both buckets.
			restore := m.XferTime(ckptBytes)
			for _, r := range next {
				m.Trace.Record(cluster.Interval{Rank: r, Start: clock[r], End: detectAt, TaskID: -1, Activity: "recover"})
				res.addTime(obs.MRecover, r, detectAt-clock[r])
				m.Trace.Record(cluster.Interval{Rank: r, Start: detectAt, End: detectAt + restore, TaskID: -1, Activity: "checkpoint"})
				res.addTime(obs.MCheckpoint, r, restore)
			}
			alive = next
			offset = detectAt + restore
		}
		history = append(history, offset-iterStart)
	}

	aliveSet := map[int]bool{}
	for _, r := range alive {
		aliveSet[r] = true
		res.FinishTime[r] = offset
	}
	for r := 0; r < m.P; r++ {
		if !aliveSet[r] && res.FinishTime[r] == 0 {
			res.FinishTime[r] = math.Min(m.CrashTime(r), offset)
		}
	}
	res.CompletedBy = lt.completedBy // last committed iteration's attribution
	res.finalize()
	return res, history
}
