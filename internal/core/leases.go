package core

import "fmt"

// leaseTable is the exactly-once bookkeeping behind the resilient
// executors: every task is leased to the rank responsible for running it,
// a lease moves when work is stolen or reclaimed from a dead rank, and a
// completion is only accepted from the current leaseholder. The table is
// what lets a run prove, after arbitrary crashes, that every originally
// generated task ended up in the completed set exactly once.
//
// The simulated executors are single-threaded event loops, so the table
// needs no lock; the concurrency-safe analog for the wall-clock runtime
// is ga.LeaseCounter.
type leaseTable struct {
	holder      []int  // task → rank currently responsible (-1 = nobody)
	started     []bool // task → an execution attempt has begun
	done        []bool // task → durably completed
	completedBy []int  // task → rank whose completion was accepted (-1 = none)
	remaining   int
	reexec      int // interrupted/discarded attempts that had to run again
}

func newLeaseTable(n int) *leaseTable {
	lt := &leaseTable{
		holder:      make([]int, n),
		started:     make([]bool, n),
		done:        make([]bool, n),
		completedBy: make([]int, n),
		remaining:   n,
	}
	for i := range lt.holder {
		lt.holder[i] = -1
		lt.completedBy[i] = -1
	}
	return lt
}

// claim hands task t's lease to rank r.
func (lt *leaseTable) claim(t, r int) { lt.holder[t] = r }

// start records that rank r began executing task t. A started-but-not-done
// task on a crashed rank is lost work: its next completion counts as a
// re-execution.
func (lt *leaseTable) start(t, r int) {
	if lt.holder[t] != r {
		panic(fmt.Sprintf("core: rank %d started task %d leased to %d", r, t, lt.holder[t]))
	}
	if lt.started[t] && !lt.done[t] {
		lt.reexec++
	}
	lt.started[t] = true
}

// complete records task t's durable completion by rank r. Completing a
// task twice, or completing one whose lease moved elsewhere, is an
// exactly-once violation and panics — the invariant the determinism and
// recovery tests lean on.
func (lt *leaseTable) complete(t, r int) {
	if lt.done[t] {
		panic(fmt.Sprintf("core: task %d completed twice (by %d, then %d)", t, lt.completedBy[t], r))
	}
	if lt.holder[t] != r {
		panic(fmt.Sprintf("core: rank %d completed task %d leased to %d", r, t, lt.holder[t]))
	}
	lt.done[t] = true
	lt.completedBy[t] = r
	lt.remaining--
}

// rollback erases the completions in ts (checkpoint/restart discards an
// aborted iteration's results). started flags stay set so the re-runs are
// counted as re-executions.
func (lt *leaseTable) rollback(ts []int) {
	for _, t := range ts {
		if lt.done[t] {
			lt.done[t] = false
			lt.completedBy[t] = -1
			lt.remaining++
		}
	}
}

// lost returns, in ascending task order, every task leased to rank r that
// never durably completed — the loss set survivors reclaim after r's
// crash is detected.
func (lt *leaseTable) lost(r int) []int {
	var out []int
	for t, h := range lt.holder {
		if h == r && !lt.done[t] {
			out = append(out, t)
		}
	}
	return out
}

// audit panics unless every task completed exactly once.
func (lt *leaseTable) audit() {
	if lt.remaining != 0 {
		panic(fmt.Sprintf("core: %d tasks never completed", lt.remaining))
	}
	for t, by := range lt.completedBy {
		if by < 0 || !lt.done[t] {
			panic(fmt.Sprintf("core: task %d missing from the completed set", t))
		}
	}
}
