package core

import (
	"testing"

	"execmodels/internal/hypergraph"
	"execmodels/internal/semimatching"
)

// Fuzz target for the T3/T4 comparability claim as an executable
// invariant: on any task-cost vector, both the semi-matching and the
// hypergraph partitioner must produce complete, duplicate-free
// assignments, and the semi-matching's load imbalance must stay within 2×
// the hypergraph's (plus one task granularity of slack — no list
// scheduler can split a task).
//
//	go test ./internal/core -fuzz FuzzSemiVsHypergraphAssignment -fuzztime 30s

// fuzzWorkload decodes a byte string into a small workload: one task per
// byte, cost 1..256, touching two deterministic blocks.
func fuzzWorkload(data []byte) *Workload {
	const maxTasks = 512
	if len(data) > maxTasks {
		data = data[:maxTasks]
	}
	w := &Workload{Name: "fuzz", NumBlocks: 16}
	w.BlockBytes = make([]int, w.NumBlocks)
	for b := range w.BlockBytes {
		w.BlockBytes[b] = 1024 * (1 + b%4)
	}
	for i, c := range data {
		cost := float64(c) + 1
		w.Tasks = append(w.Tasks, Task{
			ID: i, Cost: cost, EstCost: cost,
			Blocks: []int{i % w.NumBlocks, (i * 7) % w.NumBlocks},
		})
	}
	return w
}

func FuzzSemiVsHypergraphAssignment(f *testing.F) {
	f.Add([]byte{1})
	f.Add([]byte{255, 1, 1, 1, 1, 1, 1, 1})
	f.Add([]byte("the quick brown fox jumps over the lazy dog"))
	f.Add(bytesRamp(200))

	const ranks = 8
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		w := fuzzWorkload(data)
		n := len(w.Tasks)

		est := make([]float64, n)
		for i, task := range w.Tasks {
			est[i] = task.EstCost
		}

		semi := semimatching.WeightedSemiMatch(SemiMatchingLB{Seed: 1}.buildGraph(w, ranks), est).Of
		hyper := hypergraph.Partition(BuildHypergraph(w), ranks, hypergraph.Options{Seed: 1}).Part

		check := func(name string, assign []int) []float64 {
			t.Helper()
			if len(assign) != n {
				t.Fatalf("%s: assigned %d of %d tasks", name, len(assign), n)
			}
			load := make([]float64, ranks)
			for id, r := range assign {
				if r < 0 || r >= ranks {
					t.Fatalf("%s: task %d assigned to rank %d of %d", name, id, r, ranks)
				}
				load[r] += w.Tasks[id].Cost
			}
			return load
		}
		semiLoad := check("semi-matching", semi)
		hyperLoad := check("hypergraph", hyper)

		var maxTask float64
		for _, task := range w.Tasks {
			if task.Cost > maxTask {
				maxTask = task.Cost
			}
		}
		maxLoad := func(load []float64) float64 {
			m := load[0]
			for _, l := range load[1:] {
				if l > m {
					m = l
				}
			}
			return m
		}
		// Imbalance comparability: one task of additive slack absorbs the
		// indivisible-granularity floor both schemes share.
		if s, h := maxLoad(semiLoad), maxLoad(hyperLoad); s > 2*h+maxTask {
			t.Errorf("semi-matching max load %g exceeds 2× hypergraph %g + task granularity %g", s, h, maxTask)
		}
	})
}

func bytesRamp(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i * 5)
	}
	return out
}
