package core

import "fmt"

// AllModels returns one instance of every execution model under study, in
// the canonical presentation order, seeded deterministically.
func AllModels(seed int64) []Model {
	return []Model{
		StaticBlock{},
		StaticCyclic{},
		DynamicCounter{Chunk: 1},
		WorkStealing{Seed: seed},
		Persistence{Iterations: 3},
		SemiMatchingLB{Seed: seed},
		HypergraphLB{Seed: seed},
	}
}

// ModelByName instantiates a model from its canonical name.
func ModelByName(name string, seed int64) (Model, error) {
	for _, m := range AllModels(seed) {
		if m.Name() == name {
			return m, nil
		}
	}
	switch name {
	case "work-stealing-one":
		return WorkStealing{Steal: StealOne, Seed: seed}, nil
	case "work-stealing-maxvictim":
		return WorkStealing{Victim: MostLoadedVictim, Seed: seed}, nil
	case "hypergraph-flat":
		return HypergraphLB{Flat: true, Seed: seed}, nil
	case "work-stealing-hier":
		return WorkStealing{Hierarchical: true, Seed: seed}, nil
	case "self-sched-guided":
		return SelfScheduling{Policy: GuidedChunk{}}, nil
	case "self-sched-factoring":
		return SelfScheduling{Policy: FactoringChunk{}}, nil
	case "persistence-sm":
		return PersistenceSM{Iterations: 3, Seed: seed}, nil
	case "persistence-feedback":
		return Scheduled{
			S:          NewPersistenceSched(PersistenceOptions{Alpha: feedbackAlphaDefault, WarmStart: true, Seed: seed}),
			Iterations: 3,
		}, nil
	case "resilient-static":
		return ResilientStatic{}, nil
	case "resilient-counter":
		return ResilientCounter{Chunk: 1}, nil
	case "resilient-stealing":
		return ResilientStealing{Seed: seed}, nil
	case "persistence-ckpt":
		return CheckpointedPersistence{Iterations: 3}, nil
	}
	return nil, fmt.Errorf("core: unknown model %q", name)
}

// ResilientModels returns the fault-tolerant executors compared in F9/T8,
// in presentation order. They are intentionally not part of AllModels:
// on a reliable machine they match their base models, and keeping them
// out leaves the reliable experiments' outputs untouched.
func ResilientModels(seed int64) []Model {
	return []Model{
		ResilientStatic{},
		ResilientCounter{Chunk: 1},
		ResilientStealing{Seed: seed},
		CheckpointedPersistence{Iterations: 3},
	}
}

// ModelNames returns the canonical model names.
func ModelNames() []string {
	ms := AllModels(0)
	names := make([]string, len(ms))
	for i, m := range ms {
		names[i] = m.Name()
	}
	return names
}
