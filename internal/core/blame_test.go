package core

import (
	"math"
	"testing"

	"execmodels/internal/cluster"
	"execmodels/internal/fault"
	"execmodels/internal/obs"
)

// Invariant tests for the blame analysis: the decomposition of makespan ×
// ranks into compute/comm/counter/steal/stall/recover/checkpoint/dead/
// idle must be *exact* (to float-rounding tolerance) for every execution
// model at P=64, with and without injected faults. A component that
// double-charges a window, or a charge past a rank's finish time, breaks
// the identity and fails here.

// blameCases enumerates every model × fault-plan combination under test.
// The fault-free executors run only fault-free; the resilient ones also
// run under a crashProb-0.2 plan with stalls.
func blameCases(ranks int) []struct {
	name  string
	model Model
	plan  *fault.Plan
} {
	horizon := 0.05 // inside every model's run on the synthetic workload
	faulty := fault.Spec{
		Ranks: ranks, Horizon: horizon,
		CrashProb: 0.2,
		StallProb: 0.2, StallMean: horizon / 10,
		Seed: 11,
	}.Build()

	var cases []struct {
		name  string
		model Model
		plan  *fault.Plan
	}
	add := func(name string, m Model, p *fault.Plan) {
		cases = append(cases, struct {
			name  string
			model Model
			plan  *fault.Plan
		}{name, m, p})
	}
	for _, m := range AllModels(1) {
		add(m.Name(), m, nil)
	}
	for _, m := range ResilientModels(1) {
		add(m.Name()+"/no-fault", m, nil)
		add(m.Name()+"/crashProb-0.2", m, faulty)
	}
	return cases
}

func TestBlameDecompositionExact(t *testing.T) {
	const ranks = 64
	w := Synthetic(SyntheticOptions{NumTasks: 2048, Dist: "lognormal", Sigma: 1.2, Seed: 3})

	for _, c := range blameCases(ranks) {
		t.Run(c.name, func(t *testing.T) {
			m := cluster.New(cluster.Config{Ranks: ranks, Seed: 1})
			m.Trace = &cluster.Trace{}
			if c.plan != nil || isResilient(c.model) {
				m.Faults = fault.NewInjector(c.plan, ranks)
			}
			res := c.model.Run(w, m)
			b := res.Blame(m.Trace)

			// The central identity: components (idle included) sum to
			// makespan × ranks. Tolerance is ulp-scale relative to the
			// total — ~1e-9 relative covers the few thousand float adds.
			total := b.Makespan * float64(b.Ranks)
			if got := b.Total(); math.Abs(got-total) > 1e-9*math.Max(total, 1) {
				t.Errorf("blame components sum to %.12g, want makespan×P = %.12g (diff %g)",
					got, total, got-total)
			}

			// Idle is a per-rank remainder; a negative one means some rank
			// was charged past its finish time.
			for r, idle := range b.IdleByRank {
				if idle < -1e-9*math.Max(total, 1) {
					t.Errorf("rank %d idle = %g < 0: charges exceed the rank's finish time", r, idle)
				}
			}

			// Critical path cannot exceed the makespan...
			if b.CriticalPathSeconds > b.Makespan*(1+1e-12) {
				t.Errorf("critical path %.12g > makespan %.12g", b.CriticalPathSeconds, b.Makespan)
			}
			// ...and the makespan cannot beat the perfect-balance bound:
			// total executed compute seconds spread over P ranks. (Each
			// rank's busy time is ≤ its finish time ≤ the makespan.)
			if bound := b.Components["compute"] / float64(ranks); b.Makespan < bound*(1-1e-12) {
				t.Errorf("makespan %.12g beats the compute/P bound %.12g", b.Makespan, bound)
			}

			if b.Components["compute"] <= 0 {
				t.Errorf("compute component is %g, want > 0", b.Components["compute"])
			}
		})
	}
}

// isResilient reports whether the model consults a fault injector (and so
// should get one installed even for the no-fault case, exercising the
// "empty plan" path).
func isResilient(m Model) bool {
	switch m.(type) {
	case ResilientStatic, ResilientCounter, ResilientStealing, CheckpointedPersistence:
		return true
	}
	return false
}

// TestBlameMatchesResultView pins the derived-view contract: the legacy
// Result fields and the registry must agree, since the registry is now
// the primary store.
func TestBlameMatchesResultView(t *testing.T) {
	w := Synthetic(SyntheticOptions{NumTasks: 512, Dist: "lognormal", Sigma: 1.0, Seed: 5})
	m := cluster.New(cluster.Config{Ranks: 16, Seed: 2})
	res := WorkStealing{Seed: 7}.Run(w, m)

	if got, want := res.Obs.GaugeTotal(obs.MBusy), sum(res.BusyTime); got != want {
		t.Errorf("registry busy %g != Result.BusyTime %g", got, want)
	}
	if got, want := res.Obs.CounterTotal(obs.CTasks), int64(len(w.Tasks)); got != want {
		t.Errorf("registry tasks %d != %d", got, want)
	}
	if got, want := res.Obs.CounterTotal(obs.CSteals), res.Steals; got != want {
		t.Errorf("registry steals %d != Result.Steals %d", got, want)
	}
}

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}
