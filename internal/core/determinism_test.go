package core

import (
	"reflect"
	"testing"

	"execmodels/internal/cluster"
)

// TestWorkStealingDeterministic is the regression test behind the
// execlint determinism policy: with the same seed and an identically
// configured machine, two work-stealing runs must agree bit-for-bit —
// same makespan, same per-rank task counts, same steal statistics. If
// this breaks, someone reintroduced a global RNG or a wall-clock
// dependency into the scheduling path, and every model comparison in the
// paper reproduction becomes unreplayable.
func TestWorkStealingDeterministic(t *testing.T) {
	w := Synthetic(SyntheticOptions{
		NumTasks: 500,
		Dist:     "lognormal",
		Sigma:    1.5,
		EstNoise: 0.2,
		Seed:     7,
	})
	cfg := cluster.Config{Ranks: 8, Seed: 11, Heterogeneity: 0.3}

	models := []WorkStealing{
		{Seed: 42},
		{Seed: 42, Steal: StealOne},
		{Seed: 42, Victim: MostLoadedVictim},
	}
	for _, ws := range models {
		// Fresh machines with the same config: the machine's own noise
		// stream is part of the seed contract.
		r1 := ws.Run(w, cluster.New(cfg))
		r2 := ws.Run(w, cluster.New(cfg))

		if r1.Makespan != r2.Makespan {
			t.Errorf("%s: makespan differs across identically seeded runs: %v vs %v",
				ws.Name(), r1.Makespan, r2.Makespan)
		}
		if !reflect.DeepEqual(r1.TasksRun, r2.TasksRun) {
			t.Errorf("%s: per-rank task counts differ: %v vs %v", ws.Name(), r1.TasksRun, r2.TasksRun)
		}
		if r1.Steals != r2.Steals || r1.FailedSteals != r2.FailedSteals || r1.RemoteSteals != r2.RemoteSteals {
			t.Errorf("%s: steal statistics differ: (%d,%d,%d) vs (%d,%d,%d)", ws.Name(),
				r1.Steals, r1.FailedSteals, r1.RemoteSteals, r2.Steals, r2.FailedSteals, r2.RemoteSteals)
		}

		// A different seed must actually change the schedule — otherwise
		// the seed is not plumbed through and the test above passes
		// vacuously.
		r3 := WorkStealing{Seed: 43, Steal: ws.Steal, Victim: ws.Victim}.Run(w, cluster.New(cfg))
		if ws.Victim != MostLoadedVictim && reflect.DeepEqual(r1.TasksRun, r3.TasksRun) && r1.Steals == r3.Steals {
			t.Errorf("%s: seed 42 and 43 produced identical schedules; seed is not reaching the RNG", ws.Name())
		}
	}
}
