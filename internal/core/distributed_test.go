package core

import (
	"testing"

	"execmodels/internal/chem"
	"execmodels/internal/linalg"
)

func TestDistributedFockMatchesSerial(t *testing.T) {
	fw := fockWorkload(t, 2)
	bs := fw.Basis
	mol := chem.WaterCluster(2, 11)
	h := chem.CoreHamiltonian(bs, mol)
	d := linalg.Identity(bs.NBF)
	want := fw.BuildFock(h, d)

	for _, mode := range []string{"static", "counter"} {
		for _, ranks := range []int{1, 3, 5} {
			res, err := DistributedFock(fw, h, d, ranks, mode)
			if err != nil {
				t.Fatal(err)
			}
			if res.F == nil {
				t.Fatalf("%s/%d: no Fock matrix returned", mode, ranks)
			}
			if diff := res.F.MaxAbsDiff(want); diff > 1e-9 {
				t.Errorf("%s/%d: differs from serial by %v", mode, ranks, diff)
			}
			var total int
			for _, c := range res.TasksByRank {
				total += c
			}
			if total != len(fw.Tasks) {
				t.Errorf("%s/%d: %d tasks executed, want %d", mode, ranks, total, len(fw.Tasks))
			}
		}
	}
}

func TestDistributedFockCounterOps(t *testing.T) {
	fw := fockWorkload(t, 1)
	n := fw.Basis.NBF
	h := linalg.NewMatrix(n, n)
	d := linalg.Identity(n)
	res, err := DistributedFock(fw, h, d, 3, "counter")
	if err != nil {
		t.Fatal(err)
	}
	// One request per task plus one stop request per worker.
	want := len(fw.Tasks) + 3
	if res.CounterOps != want {
		t.Errorf("counter ops %d, want %d", res.CounterOps, want)
	}
}

func TestDistributedFockErrors(t *testing.T) {
	fw := fockWorkload(t, 1)
	n := fw.Basis.NBF
	h := linalg.NewMatrix(n, n)
	d := linalg.Identity(n)
	if _, err := DistributedFock(fw, h, d, 0, "static"); err == nil {
		t.Error("expected rank-count error")
	}
	if _, err := DistributedFock(fw, h, d, 2, "bogus"); err == nil {
		t.Error("expected mode error")
	}
}

// The counter mode must let more than one worker participate. (Exactly
// how many tasks each worker claims is up to the goroutine scheduler —
// on a single-core host one eager worker can legitimately grab most of a
// small task set — so per-worker minimums would be flaky by design.)
func TestDistributedCounterParticipation(t *testing.T) {
	fw := fockWorkload(t, 2)
	n := fw.Basis.NBF
	h := linalg.NewMatrix(n, n)
	d := linalg.Identity(n)
	res, err := DistributedFock(fw, h, d, 4, "counter")
	if err != nil {
		t.Fatal(err)
	}
	var total, participants int
	for _, c := range res.TasksByRank {
		total += c
		if c > 0 {
			participants++
		}
	}
	if total != len(fw.Tasks) {
		t.Fatalf("executed %d of %d tasks (%v)", total, len(fw.Tasks), res.TasksByRank)
	}
	if participants < 2 {
		t.Errorf("only %d workers participated (%v)", participants, res.TasksByRank)
	}
}
