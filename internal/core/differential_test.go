package core

import (
	"sync"
	"testing"

	"execmodels/internal/chem"
	"execmodels/internal/cluster"
	"execmodels/internal/fault"
)

// Differential cross-model sweep: whatever an execution model does with
// *scheduling*, it must not change *what* is computed. Every fault-free
// executor — and every resilient executor under an empty fault plan —
// must execute the exact same task multiset with identical per-task flop
// totals on the (H₂O)₁₆ chemistry workload. A model that loses a task,
// runs one twice, or charges a different cost for it fails here in one
// sweep, without any reference to makespans.

var (
	waterOnce sync.Once
	waterWork *Workload
)

// water16 builds (once) the paper-scale (H₂O)₁₆ STO-3G Fock workload.
func water16(t *testing.T) *Workload {
	t.Helper()
	waterOnce.Do(func() {
		mol := chem.WaterCluster(16, 1)
		bs, err := chem.NewBasis("sto-3g", mol)
		if err != nil {
			t.Fatalf("basis: %v", err)
		}
		pairs := chem.SchwarzBounds(bs)
		waterWork = FromFock(chem.BuildFockWorkloadFromPairs(bs, pairs, 1e-9, 4))
	})
	if waterWork == nil {
		t.Fatal("water16 workload failed to build")
	}
	return waterWork
}

// taskFlops replays the trace's task spans into (executions, flops) per
// task ID.
func taskFlops(t *testing.T, w *Workload, trace *cluster.Trace) (execs []int, flops []float64) {
	t.Helper()
	execs = make([]int, len(w.Tasks))
	flops = make([]float64, len(w.Tasks))
	for _, iv := range trace.Intervals {
		if iv.Activity != "task" {
			continue
		}
		if iv.TaskID < 0 || iv.TaskID >= len(w.Tasks) {
			t.Fatalf("task span with out-of-range ID %d", iv.TaskID)
		}
		execs[iv.TaskID]++
		flops[iv.TaskID] += w.Tasks[iv.TaskID].Cost
	}
	return execs, flops
}

func TestDifferentialCrossModel(t *testing.T) {
	w := water16(t)
	const ranks = 64

	type modelCase struct {
		model     Model
		resilient bool // gets an (empty) fault injector installed
	}
	var cases []modelCase
	for _, m := range AllModels(1) {
		cases = append(cases, modelCase{model: m})
	}
	for _, m := range ResilientModels(1) {
		cases = append(cases, modelCase{model: m, resilient: true})
	}
	if len(cases) != 11 {
		t.Fatalf("expected 7 fault-free + 4 resilient models, have %d", len(cases))
	}

	// Reference per-execution flops: what one clean pass over the
	// workload computes.
	refFlops := make([]float64, len(w.Tasks))
	for i, task := range w.Tasks {
		refFlops[i] = task.Cost
	}

	for _, c := range cases {
		t.Run(c.model.Name(), func(t *testing.T) {
			m := cluster.New(cluster.Config{Ranks: ranks, Seed: 1})
			m.Trace = &cluster.Trace{}
			if c.resilient {
				m.Faults = fault.NewInjector(&fault.Plan{}, ranks)
			}
			res := c.model.Run(w, m)

			execs, flops := taskFlops(t, w, m.Trace)

			// Every task appears a uniform number of times k ≥ 1: k = 1
			// for single-pass models, k = Iterations for the persistence
			// family (whose final trace may span all iterations). Any
			// lost or duplicated task breaks uniformity.
			k := execs[0]
			if k < 1 {
				t.Fatalf("task 0 never executed")
			}
			for id, n := range execs {
				if n != k {
					t.Errorf("task %d executed %d times, task 0 executed %d — schedule lost or duplicated work", id, n, k)
				}
			}

			// Per-task flop totals are k × the workload's own cost — the
			// schedule moved work around but computed exactly the same
			// thing as every other model.
			for id, got := range flops {
				want := float64(k) * refFlops[id]
				if got != want {
					t.Errorf("task %d: flop total %g, want %g", id, got, want)
				}
			}

			var ran int
			for _, n := range res.TasksRun {
				ran += n
			}
			if ran == 0 || ran%len(w.Tasks) != 0 {
				t.Errorf("TasksRun sums to %d, want a positive multiple of %d", ran, len(w.Tasks))
			}
		})
	}
}
