// Package ga provides a Global-Arrays-style PGAS substrate: dense 2-D
// arrays partitioned into row blocks with one-sided Get/Put/Accumulate
// semantics, and an atomic shared counter (the classic NXTVAL dynamic
// work-distribution primitive).
//
// This is the real, concurrency-safe implementation used by the
// wall-clock executors; the simulated-time executors model only its cost.
// Every operation is safe for concurrent use by multiple goroutines.
package ga

import (
	"fmt"
	"sync"
	"sync/atomic"

	"execmodels/internal/linalg"
)

// Array is a dense rows×cols array whose rows are partitioned into p
// contiguous owner segments, each independently lockable — the analog of a
// Global Array distributed over p ranks.
type Array struct {
	Rows, Cols int
	segs       []segment
	starts     []int // row offset of each segment; len == p+1

	gets, puts, accs atomic.Int64
}

type segment struct {
	mu   sync.Mutex
	r0   int // first row (inclusive)
	r1   int // last row (exclusive)
	data []float64 // guarded by mu
}

// NewArray creates a zeroed rows×cols array distributed over p owners.
// Rows are split as evenly as possible.
func NewArray(rows, cols, p int) *Array {
	if rows <= 0 || cols <= 0 || p <= 0 {
		panic(fmt.Sprintf("ga: invalid array %dx%d over %d owners", rows, cols, p))
	}
	if p > rows {
		p = rows
	}
	a := &Array{Rows: rows, Cols: cols, starts: make([]int, p+1)}
	base, extra := rows/p, rows%p
	r := 0
	for i := 0; i < p; i++ {
		n := base
		if i < extra {
			n++
		}
		a.starts[i] = r
		a.segs = append(a.segs, segment{r0: r, r1: r + n, data: make([]float64, n*cols)})
		r += n
	}
	a.starts[p] = rows
	return a
}

// Owners returns the number of owner segments.
func (a *Array) Owners() int { return len(a.segs) }

// OwnerOf returns the owner segment index of the given row.
func (a *Array) OwnerOf(row int) int {
	if row < 0 || row >= a.Rows {
		panic(fmt.Sprintf("ga: row %d out of range [0,%d)", row, a.Rows))
	}
	// Binary search over starts.
	lo, hi := 0, len(a.segs)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if a.starts[mid] <= row {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// checkPatch validates a rectangular region.
func (a *Array) checkPatch(r0, c0, nr, nc int) {
	if r0 < 0 || c0 < 0 || nr < 0 || nc < 0 || r0+nr > a.Rows || c0+nc > a.Cols {
		panic(fmt.Sprintf("ga: patch [%d:%d, %d:%d] out of %dx%d",
			r0, r0+nr, c0, c0+nc, a.Rows, a.Cols))
	}
}

// forSegments invokes f for each owner segment overlapping rows
// [r0, r0+nr), with the overlap row range, holding that segment's lock.
func (a *Array) forSegments(r0, nr int, f func(seg *segment, lo, hi int)) {
	for i := range a.segs {
		seg := &a.segs[i]
		lo, hi := seg.r0, seg.r1
		if lo < r0 {
			lo = r0
		}
		if hi > r0+nr {
			hi = r0 + nr
		}
		if lo >= hi {
			continue
		}
		seg.mu.Lock()
		f(seg, lo, hi)
		seg.mu.Unlock()
	}
}

// Get copies the patch [r0:r0+nr, c0:c0+nc] into buf (row-major,
// len >= nr*nc). One-sided: no owner participation required.
func (a *Array) Get(r0, c0, nr, nc int, buf []float64) {
	a.checkPatch(r0, c0, nr, nc)
	if len(buf) < nr*nc {
		panic("ga: Get buffer too short")
	}
	a.gets.Add(1)
	a.forSegments(r0, nr, func(seg *segment, lo, hi int) {
		for r := lo; r < hi; r++ {
			src := seg.data[(r-seg.r0)*a.Cols+c0 : (r-seg.r0)*a.Cols+c0+nc]
			copy(buf[(r-r0)*nc:(r-r0)*nc+nc], src)
		}
	})
}

// Put overwrites the patch with buf.
func (a *Array) Put(r0, c0, nr, nc int, buf []float64) {
	a.checkPatch(r0, c0, nr, nc)
	if len(buf) < nr*nc {
		panic("ga: Put buffer too short")
	}
	a.puts.Add(1)
	a.forSegments(r0, nr, func(seg *segment, lo, hi int) {
		for r := lo; r < hi; r++ {
			dst := seg.data[(r-seg.r0)*a.Cols+c0 : (r-seg.r0)*a.Cols+c0+nc]
			copy(dst, buf[(r-r0)*nc:(r-r0)*nc+nc])
		}
	})
}

// Acc atomically accumulates alpha*buf into the patch — the workhorse of
// distributed Fock assembly.
func (a *Array) Acc(r0, c0, nr, nc int, buf []float64, alpha float64) {
	a.checkPatch(r0, c0, nr, nc)
	if len(buf) < nr*nc {
		panic("ga: Acc buffer too short")
	}
	a.accs.Add(1)
	a.forSegments(r0, nr, func(seg *segment, lo, hi int) {
		for r := lo; r < hi; r++ {
			dst := seg.data[(r-seg.r0)*a.Cols+c0 : (r-seg.r0)*a.Cols+c0+nc]
			src := buf[(r-r0)*nc : (r-r0)*nc+nc]
			for j := range dst {
				dst[j] += alpha * src[j]
			}
		}
	})
}

// Zero clears the array.
func (a *Array) Zero() {
	for i := range a.segs {
		seg := &a.segs[i]
		seg.mu.Lock()
		for j := range seg.data {
			seg.data[j] = 0
		}
		seg.mu.Unlock()
	}
}

// FromMatrix overwrites the array with the contents of m.
func (a *Array) FromMatrix(m *linalg.Matrix) {
	if m.Rows != a.Rows || m.Cols != a.Cols {
		panic("ga: FromMatrix dimension mismatch")
	}
	a.Put(0, 0, a.Rows, a.Cols, m.Data)
}

// ToMatrix returns a dense snapshot of the array.
func (a *Array) ToMatrix() *linalg.Matrix {
	m := linalg.NewMatrix(a.Rows, a.Cols)
	a.Get(0, 0, a.Rows, a.Cols, m.Data)
	return m
}

// OpCounts returns the number of Get, Put and Acc operations performed,
// for overhead accounting.
func (a *Array) OpCounts() (gets, puts, accs int64) {
	return a.gets.Load(), a.puts.Load(), a.accs.Load()
}

// Counter is the shared atomic task counter (NXTVAL). The zero value is a
// counter at 0, ready to use.
type Counter struct {
	v   atomic.Int64
	ops atomic.Int64
}

// NextVal returns the next value (post-increment semantics: the first call
// returns 0).
func (c *Counter) NextVal() int64 {
	c.ops.Add(1)
	return c.v.Add(1) - 1
}

// FetchAdd adds delta and returns the pre-add value.
func (c *Counter) FetchAdd(delta int64) int64 {
	c.ops.Add(1)
	return c.v.Add(delta) - delta
}

// Ops returns the number of operations performed on the counter.
func (c *Counter) Ops() int64 { return c.ops.Load() }

// Reset sets the counter back to zero (operation counts are preserved).
func (c *Counter) Reset() { c.v.Store(0) }
