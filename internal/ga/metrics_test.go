package ga

import (
	"testing"

	"execmodels/internal/obs"
)

func TestPublishMetrics(t *testing.T) {
	a := NewArray(8, 4, 2)
	buf := make([]float64, 8)
	a.Get(0, 0, 2, 4, buf)
	a.Put(2, 0, 2, 4, buf)
	a.Put(4, 0, 2, 4, buf)
	a.Acc(0, 0, 2, 4, buf, 1.0)

	c := &Counter{}
	c.NextVal()
	c.NextVal()
	c.FetchAdd(5)

	reg := obs.NewRegistry(2)
	a.PublishMetrics(reg, 1)
	c.PublishMetrics(reg, 0)

	if got := reg.CounterTotal(MetricGets); got != 1 {
		t.Errorf("gets = %d, want 1", got)
	}
	if got := reg.CounterTotal(MetricPuts); got != 2 {
		t.Errorf("puts = %d, want 2", got)
	}
	if got := reg.CounterTotal(MetricAccs); got != 1 {
		t.Errorf("accs = %d, want 1", got)
	}
	if vec := reg.CounterVec(MetricPuts); vec[0] != 0 || vec[1] != 2 {
		t.Errorf("puts attributed to wrong rank: %v", vec)
	}
	if got := reg.CounterTotal(MetricCounterOps); got != 3 {
		t.Errorf("counter ops = %d, want 3", got)
	}
}
