package ga

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestLeaseCounterExactlyOnce hammers the dispenser from many goroutine
// ranks while a "failure detector" concurrently revokes one rank's leases
// over and over. The exactly-once property must hold anyway: accepted
// completions cover every task exactly once, even though the victim rank
// keeps executing and submitting stale results.
func TestLeaseCounterExactlyOnce(t *testing.T) {
	const n, ranks = 2000, 8
	lc := NewLeaseCounter(n)
	accepted := make([]int64, n)

	var wg sync.WaitGroup
	var stop atomic.Bool
	// The detector repeatedly presumes rank 0 dead and reclaims its work.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			lc.Revoke(0)
		}
	}()
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			idle := 0
			for {
				task, ok := lc.Claim(r)
				if !ok {
					if lc.Done() {
						return
					}
					idle++
					if idle > 1_000_000 {
						t.Error("livelock: work outstanding but never completing")
						return
					}
					continue
				}
				idle = 0
				if lc.Complete(task, r) {
					atomic.AddInt64(&accepted[task], 1)
				}
			}
		}(r)
	}
	// Stop the detector once the workers drain the pool, then join.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		if lc.Done() {
			stop.Store(true)
			break
		}
		select {
		case <-done:
			stop.Store(true)
		default:
			continue
		}
		break
	}
	<-done

	for task, c := range accepted {
		if c != 1 {
			t.Fatalf("task %d accepted %d times, want exactly 1", task, c)
		}
	}
	if !lc.Done() || lc.Outstanding() != 0 {
		t.Fatalf("pool not drained: done=%v outstanding=%d", lc.Done(), lc.Outstanding())
	}
}

// TestLeaseCounterRevoke checks the single-threaded revocation contract:
// revoked work is re-issued before fresh work, stale completions are
// rejected, and double completion of a live lease panics.
func TestLeaseCounterRevoke(t *testing.T) {
	lc := NewLeaseCounter(3)
	t0, _ := lc.Claim(1)
	if t0 != 0 {
		t.Fatalf("first claim = %d, want 0", t0)
	}
	if got := lc.Revoke(1); got != 1 {
		t.Fatalf("Revoke reclaimed %d, want 1", got)
	}
	if lc.Complete(t0, 1) {
		t.Fatal("stale completion after revocation was accepted")
	}
	// Re-issue goes to the next claimer, ahead of fresh indices.
	t1, _ := lc.Claim(2)
	if t1 != t0 {
		t.Fatalf("re-claim = %d, want revoked task %d", t1, t0)
	}
	if !lc.Complete(t1, 2) {
		t.Fatal("legitimate completion rejected")
	}
	defer func() {
		if recover() == nil {
			t.Error("double completion must panic")
		}
	}()
	lc.Complete(t1, 2)
}
