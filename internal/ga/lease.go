package ga

import (
	"fmt"
	"sync"
)

// LeaseCounter is the fault-tolerant cousin of Counter: a shared task
// dispenser that remembers who it handed each index to, so claimed work
// can be revoked from a crashed rank and re-issued. It is the concurrent,
// wall-clock analog of the simulator's lease table (internal/core): the
// same exactly-once discipline — a completion is accepted only from the
// current leaseholder, revoked leases reject stale completions — but safe
// for many goroutine ranks at once.
type LeaseCounter struct {
	mu     sync.Mutex
	n      int
	next   int    // guarded by mu; next never-issued index
	holder []int  // guarded by mu; task → current leaseholder (-1 = none)
	done   []bool // guarded by mu
	free   []int  // guarded by mu; revoked indices awaiting re-issue (FIFO)
	left   int    // guarded by mu; tasks not yet completed
}

// NewLeaseCounter creates a dispenser over tasks 0..n-1.
func NewLeaseCounter(n int) *LeaseCounter {
	lc := &LeaseCounter{n: n, holder: make([]int, n), done: make([]bool, n), left: n}
	for i := range lc.holder {
		lc.holder[i] = -1
	}
	return lc
}

// Claim leases the next available index to rank r: revoked indices are
// re-issued before fresh ones. The second result is false when no index
// is currently available — either all work is done, or every remaining
// task is leased out (the caller should back off and retry, or steal).
func (lc *LeaseCounter) Claim(r int) (int, bool) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	for len(lc.free) > 0 {
		t := lc.free[0]
		lc.free = lc.free[1:]
		if lc.done[t] {
			continue
		}
		lc.holder[t] = r
		return t, true
	}
	if lc.next < lc.n {
		t := lc.next
		lc.next++
		lc.holder[t] = r
		return t, true
	}
	return -1, false
}

// Complete records task t's completion by rank r. It returns true when
// the completion is accepted, false when r's lease was revoked in the
// meantime — the caller's result must then be discarded, because the
// re-issued copy owns the outcome. Completing the same lease twice is a
// protocol violation and panics.
func (lc *LeaseCounter) Complete(t, r int) bool {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if t < 0 || t >= lc.n {
		panic(fmt.Sprintf("ga: complete of task %d of %d", t, lc.n))
	}
	if lc.holder[t] != r {
		return false // revoked: a stale completion, dropped
	}
	if lc.done[t] {
		panic(fmt.Sprintf("ga: task %d completed twice by rank %d", t, r))
	}
	lc.done[t] = true
	lc.left--
	return true
}

// Revoke takes every unfinished lease held by rank r back into the free
// pool and returns how many were reclaimed — the recovery step after r is
// presumed dead. Safe to call for a rank that holds nothing.
func (lc *LeaseCounter) Revoke(r int) int {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	reclaimed := 0
	for t := 0; t < lc.n; t++ {
		if lc.holder[t] == r && !lc.done[t] {
			lc.holder[t] = -1
			lc.free = append(lc.free, t)
			reclaimed++
		}
	}
	return reclaimed
}

// Outstanding returns the number of tasks neither completed nor currently
// available — leased out and in flight.
func (lc *LeaseCounter) Outstanding() int {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	out := 0
	for t := 0; t < lc.n; t++ {
		if !lc.done[t] && lc.holder[t] >= 0 {
			out++
		}
	}
	return out
}

// Done reports whether every task has completed.
func (lc *LeaseCounter) Done() bool {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.left == 0
}
