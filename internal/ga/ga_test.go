package ga

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"execmodels/internal/linalg"
)

func TestNewArrayPartition(t *testing.T) {
	a := NewArray(10, 3, 4)
	if a.Owners() != 4 {
		t.Fatalf("owners = %d", a.Owners())
	}
	// 10 rows over 4 owners: 3,3,2,2.
	counts := make([]int, 4)
	for r := 0; r < 10; r++ {
		counts[a.OwnerOf(r)]++
	}
	want := []int{3, 3, 2, 2}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("owner %d has %d rows, want %d", i, counts[i], want[i])
		}
	}
}

func TestNewArrayMoreOwnersThanRows(t *testing.T) {
	a := NewArray(2, 2, 8)
	if a.Owners() != 2 {
		t.Fatalf("owners = %d, want clamped to 2", a.Owners())
	}
}

func TestOwnerOfMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(100)
		p := 1 + rng.Intn(10)
		a := NewArray(rows, 1, p)
		prev := 0
		for r := 0; r < rows; r++ {
			o := a.OwnerOf(r)
			if o < prev || o >= a.Owners() {
				return false
			}
			prev = o
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	a := NewArray(6, 5, 3)
	buf := make([]float64, 6*5)
	for i := range buf {
		buf[i] = float64(i)
	}
	a.Put(0, 0, 6, 5, buf)
	out := make([]float64, 6*5)
	a.Get(0, 0, 6, 5, out)
	for i := range buf {
		if out[i] != buf[i] {
			t.Fatalf("round trip lost element %d", i)
		}
	}
}

func TestPatchSpansSegments(t *testing.T) {
	a := NewArray(9, 4, 3) // segments rows 0-2, 3-5, 6-8
	patch := []float64{1, 2, 3, 4, 5, 6}
	a.Put(2, 1, 3, 2, patch) // spans segments 0 and 1
	out := make([]float64, 6)
	a.Get(2, 1, 3, 2, out)
	for i := range patch {
		if out[i] != patch[i] {
			t.Fatalf("cross-segment patch wrong at %d: %v", i, out)
		}
	}
	// Neighbouring cells must be untouched.
	one := make([]float64, 1)
	a.Get(2, 0, 1, 1, one)
	if one[0] != 0 {
		t.Fatal("Put leaked outside patch")
	}
}

func TestAcc(t *testing.T) {
	a := NewArray(4, 4, 2)
	buf := []float64{1, 1, 1, 1}
	a.Acc(1, 1, 2, 2, buf, 2)
	a.Acc(1, 1, 2, 2, buf, 0.5)
	out := make([]float64, 4)
	a.Get(1, 1, 2, 2, out)
	for i, v := range out {
		if v != 2.5 {
			t.Fatalf("Acc[%d] = %v, want 2.5", i, v)
		}
	}
}

func TestAccConcurrent(t *testing.T) {
	a := NewArray(8, 8, 4)
	buf := make([]float64, 64)
	for i := range buf {
		buf[i] = 1
	}
	const workers, reps = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < reps; i++ {
				a.Acc(0, 0, 8, 8, buf, 1)
			}
		}()
	}
	wg.Wait()
	out := make([]float64, 64)
	a.Get(0, 0, 8, 8, out)
	for i, v := range out {
		if v != workers*reps {
			t.Fatalf("lost updates at %d: %v", i, v)
		}
	}
	if _, _, accs := a.OpCounts(); accs != workers*reps {
		t.Fatalf("acc count = %d", accs)
	}
}

func TestZero(t *testing.T) {
	a := NewArray(3, 3, 2)
	a.Acc(0, 0, 3, 3, make([]float64, 9), 1)
	buf := []float64{5}
	a.Put(1, 1, 1, 1, buf)
	a.Zero()
	out := make([]float64, 9)
	a.Get(0, 0, 3, 3, out)
	for _, v := range out {
		if v != 0 {
			t.Fatal("Zero left data behind")
		}
	}
}

func TestMatrixConversion(t *testing.T) {
	m := linalg.NewMatrixFrom(3, 2, []float64{1, 2, 3, 4, 5, 6})
	a := NewArray(3, 2, 2)
	a.FromMatrix(m)
	back := a.ToMatrix()
	if back.MaxAbsDiff(m) != 0 {
		t.Fatal("matrix round trip failed")
	}
}

func TestPatchBoundsPanic(t *testing.T) {
	a := NewArray(3, 3, 1)
	for _, f := range []func(){
		func() { a.Get(2, 2, 2, 2, make([]float64, 4)) },
		func() { a.Put(-1, 0, 1, 1, make([]float64, 1)) },
		func() { a.Acc(0, 3, 1, 1, make([]float64, 1), 1) },
		func() { a.OwnerOf(3) },
		func() { a.Get(0, 0, 2, 2, make([]float64, 3)) }, // short buffer
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestCounterSequential(t *testing.T) {
	var c Counter
	for i := int64(0); i < 5; i++ {
		if v := c.NextVal(); v != i {
			t.Fatalf("NextVal = %d, want %d", v, i)
		}
	}
	if v := c.FetchAdd(10); v != 5 {
		t.Fatalf("FetchAdd returned %d", v)
	}
	if c.Ops() != 6 {
		t.Fatalf("ops = %d", c.Ops())
	}
	c.Reset()
	if v := c.NextVal(); v != 0 {
		t.Fatalf("after Reset NextVal = %d", v)
	}
}

func TestCounterConcurrentUnique(t *testing.T) {
	var c Counter
	const workers, per = 8, 1000
	got := make([][]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				got[w] = append(got[w], c.NextVal())
			}
		}(w)
	}
	wg.Wait()
	seen := make(map[int64]bool, workers*per)
	for _, vs := range got {
		for _, v := range vs {
			if seen[v] {
				t.Fatalf("duplicate counter value %d", v)
			}
			seen[v] = true
		}
	}
	if len(seen) != workers*per {
		t.Fatalf("got %d unique values", len(seen))
	}
}
