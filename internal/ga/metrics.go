package ga

import "execmodels/internal/obs"

// Metric names this package publishes into an obs.Registry. They count
// one-sided operations against the PGAS substrate, mirroring what a real
// Global Arrays profiling layer reports.
const (
	MetricGets       = "ga_gets_total"
	MetricPuts       = "ga_puts_total"
	MetricAccs       = "ga_accs_total"
	MetricCounterOps = "ga_counter_ops_total"
)

// PublishMetrics writes the array's cumulative one-sided op counts into
// reg, attributed to rank. Counts are absolute snapshots, so publish once
// per array per run (PublishMetrics uses Count, which accumulates).
func (a *Array) PublishMetrics(reg *obs.Registry, rank int) {
	gets, puts, accs := a.OpCounts()
	reg.Count(MetricGets, rank, gets)
	reg.Count(MetricPuts, rank, puts)
	reg.Count(MetricAccs, rank, accs)
}

// PublishMetrics writes the counter's cumulative fetch-and-add count into
// reg, attributed to rank.
func (c *Counter) PublishMetrics(reg *obs.Registry, rank int) {
	reg.Count(MetricCounterOps, rank, c.Ops())
}
