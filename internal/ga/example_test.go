package ga_test

import (
	"fmt"
	"sync"

	"execmodels/internal/ga"
)

// Concurrent one-sided accumulates into a shared array — the Fock
// assembly pattern.
func ExampleArray_Acc() {
	a := ga.NewArray(4, 4, 2)
	patch := []float64{1, 1, 1, 1}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a.Acc(1, 1, 2, 2, patch, 0.5)
		}()
	}
	wg.Wait()
	out := make([]float64, 4)
	a.Get(1, 1, 2, 2, out)
	fmt.Println(out)
	// Output:
	// [4 4 4 4]
}

// The NXTVAL dynamic work-distribution idiom.
func ExampleCounter() {
	var c ga.Counter
	for i := 0; i < 3; i++ {
		fmt.Println(c.NextVal())
	}
	// Output:
	// 0
	// 1
	// 2
}
