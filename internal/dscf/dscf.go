// Package dscf models the *whole* distributed SCF application around the
// Fock-build kernel, the way it runs in Global-Arrays codes: per
// iteration, a parallel Fock build (under a chosen execution model), a
// Fock-matrix reduction, a (replicated) diagonalization, and a density
// broadcast with a convergence allreduce. It produces per-phase simulated
// times, exposing the Amdahl behaviour that bounds what any execution
// model can deliver once the O(N³) serial diagonalization and the
// collectives start to dominate.
package dscf

import (
	"fmt"

	"execmodels/internal/cluster"
	"execmodels/internal/core"
)

// Config describes the simulated SCF application.
type Config struct {
	// NBF is the basis dimension (sets diagonalization and collective
	// payload sizes).
	NBF int
	// Iterations is the number of SCF iterations simulated (default 10).
	Iterations int
	// DiagFlopsPerN3 scales the diagonalization cost: flops = c·NBF³
	// (default 25, a Jacobi-ish constant).
	DiagFlopsPerN3 float64
	// ReplicatedDiag, when true (the default behaviour of many GA-era
	// codes), runs the diagonalization redundantly on every rank — no
	// speedup, no communication. When false, an idealized parallel
	// diagonalization with perfect speedup but per-iteration collectives
	// is used.
	ReplicatedDiag bool
}

// PhaseTimes is the per-iteration time breakdown of one simulated SCF.
type PhaseTimes struct {
	Fock      float64 // parallel Fock build (max over ranks)
	Reduce    float64 // Fock-matrix allreduce
	Diag      float64 // diagonalization
	Broadcast float64 // density broadcast + convergence check
}

// Total returns the summed phase time.
func (p PhaseTimes) Total() float64 { return p.Fock + p.Reduce + p.Diag + p.Broadcast }

// Result is the outcome of one simulated SCF application run.
type Result struct {
	Model      string
	Ranks      int
	Iterations int
	PerIter    []PhaseTimes
	TotalTime  float64
	// FockFraction is the share of total time spent in the Fock build —
	// the part execution models can influence.
	FockFraction float64
}

// Run simulates a full SCF under the given execution model on machine m.
// The same workload is rebuilt every iteration (as in an integral-direct
// code); iterative models (Persistence*) exploit cost persistence across
// those iterations.
func Run(cfg Config, model core.Model, w *core.Workload, m *cluster.Machine) (*Result, error) {
	if cfg.NBF <= 0 {
		return nil, fmt.Errorf("dscf: NBF must be positive")
	}
	iters := cfg.Iterations
	if iters <= 0 {
		iters = 10
	}
	diagC := cfg.DiagFlopsPerN3
	if diagC == 0 {
		diagC = 25
	}

	res := &Result{Model: model.Name(), Ranks: m.P, Iterations: iters}

	// Fock-build makespans per iteration.
	focks := make([]float64, iters)
	switch mm := model.(type) {
	case core.Persistence:
		mm.Iterations = iters
		_, hist := mm.RunWithHistory(w, m)
		copy(focks, hist)
	case core.PersistenceSM:
		mm.Iterations = iters
		_, hist := mm.RunWithHistory(w, m)
		copy(focks, hist)
	default:
		for i := 0; i < iters; i++ {
			focks[i] = model.Run(w, m).Makespan
		}
	}

	n := cfg.NBF
	matrixBytes := n * n * 8
	diagFlops := diagC * float64(n) * float64(n) * float64(n)

	var fockTotal float64
	for i := 0; i < iters; i++ {
		var pt PhaseTimes
		pt.Fock = focks[i]
		// Partial J/K contributions live scattered across ranks: one
		// matrix-sized allreduce assembles the Fock matrix.
		pt.Reduce = m.AllReduceTime(matrixBytes)
		if cfg.ReplicatedDiag {
			// Every rank diagonalizes the full matrix at its own speed;
			// the slowest rank gates the iteration.
			slowest := m.Speed(0)
			for r := 1; r < m.P; r++ {
				if s := m.Speed(r); s < slowest {
					slowest = s
				}
			}
			pt.Diag = diagFlops / slowest
		} else {
			// Idealized parallel eigensolver plus its collectives.
			pt.Diag = diagFlops/(m.MeanSpeed()*float64(m.P)) + 2*m.AllReduceTime(matrixBytes)
		}
		// New density to everyone + scalar convergence allreduce.
		pt.Broadcast = m.AllReduceTime(matrixBytes) + m.AllReduceTime(8)

		res.PerIter = append(res.PerIter, pt)
		res.TotalTime += pt.Total()
		fockTotal += pt.Fock
	}
	if res.TotalTime > 0 {
		res.FockFraction = fockTotal / res.TotalTime
	}
	return res, nil
}

// Breakdown sums the per-iteration phases.
func (r *Result) Breakdown() PhaseTimes {
	var sum PhaseTimes
	for _, pt := range r.PerIter {
		sum.Fock += pt.Fock
		sum.Reduce += pt.Reduce
		sum.Diag += pt.Diag
		sum.Broadcast += pt.Broadcast
	}
	return sum
}
