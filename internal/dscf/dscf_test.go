package dscf

import (
	"math"
	"testing"

	"execmodels/internal/cluster"
	"execmodels/internal/core"
)

func testWorkload() *core.Workload {
	return core.Synthetic(core.SyntheticOptions{
		NumTasks: 512, Dist: "triangular", Seed: 1,
	})
}

func TestRunBasic(t *testing.T) {
	w := testWorkload()
	m := cluster.New(cluster.Config{Ranks: 16, Seed: 1})
	res, err := Run(Config{NBF: 100, Iterations: 5, ReplicatedDiag: true},
		core.WorkStealing{Seed: 1}, w, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerIter) != 5 {
		t.Fatalf("%d iterations recorded", len(res.PerIter))
	}
	if res.TotalTime <= 0 || res.FockFraction <= 0 || res.FockFraction > 1 {
		t.Fatalf("totals %v fock %v", res.TotalTime, res.FockFraction)
	}
	b := res.Breakdown()
	if math.Abs(b.Total()-res.TotalTime) > 1e-9*res.TotalTime {
		t.Fatalf("breakdown %v != total %v", b.Total(), res.TotalTime)
	}
	for _, pt := range res.PerIter {
		if pt.Fock <= 0 || pt.Reduce <= 0 || pt.Diag <= 0 || pt.Broadcast <= 0 {
			t.Fatalf("zero phase in %+v", pt)
		}
	}
}

func TestRunBadConfig(t *testing.T) {
	w := testWorkload()
	m := cluster.New(cluster.Config{Ranks: 4})
	if _, err := Run(Config{}, core.StaticBlock{}, w, m); err == nil {
		t.Fatal("expected error for NBF = 0")
	}
}

// Amdahl: with a replicated diagonalization, the Fock fraction must fall
// as ranks grow — the serial phase eats the speedup.
func TestAmdahlFockFractionFalls(t *testing.T) {
	w := testWorkload()
	cfg := Config{NBF: 200, Iterations: 3, ReplicatedDiag: true}
	frac := make([]float64, 0, 3)
	for _, p := range []int{4, 16, 64} {
		m := cluster.New(cluster.Config{Ranks: p, Seed: 1})
		res, err := Run(cfg, core.WorkStealing{Seed: 1}, w, m)
		if err != nil {
			t.Fatal(err)
		}
		frac = append(frac, res.FockFraction)
	}
	if !(frac[0] > frac[1] && frac[1] > frac[2]) {
		t.Fatalf("fock fraction not falling: %v", frac)
	}
}

// A parallel diagonalization must beat the replicated one at scale.
func TestParallelDiagWins(t *testing.T) {
	w := testWorkload()
	m := cluster.New(cluster.Config{Ranks: 64, Seed: 1})
	repl, err := Run(Config{NBF: 300, Iterations: 3, ReplicatedDiag: true},
		core.StaticCyclic{}, w, m)
	if err != nil {
		t.Fatal(err)
	}
	m2 := cluster.New(cluster.Config{Ranks: 64, Seed: 1})
	par, err := Run(Config{NBF: 300, Iterations: 3},
		core.StaticCyclic{}, w, m2)
	if err != nil {
		t.Fatal(err)
	}
	if par.Breakdown().Diag >= repl.Breakdown().Diag {
		t.Fatalf("parallel diag %v not below replicated %v",
			par.Breakdown().Diag, repl.Breakdown().Diag)
	}
}

// Persistence models must show decreasing Fock times across iterations
// inside the application context.
func TestPersistenceInsideApplication(t *testing.T) {
	w := testWorkload()
	m := cluster.New(cluster.Config{Ranks: 16, Seed: 1})
	res, err := Run(Config{NBF: 100, Iterations: 4, ReplicatedDiag: true},
		core.Persistence{}, w, m)
	if err != nil {
		t.Fatal(err)
	}
	if res.PerIter[3].Fock >= res.PerIter[0].Fock {
		t.Fatalf("persistence fock did not improve: %v vs %v",
			res.PerIter[3].Fock, res.PerIter[0].Fock)
	}
}

// The execution model must matter inside the application: stealing beats
// static block on total time while sharing identical non-Fock phases.
func TestModelChoiceMatters(t *testing.T) {
	w := testWorkload()
	cfg := Config{NBF: 80, Iterations: 3, ReplicatedDiag: true}
	m1 := cluster.New(cluster.Config{Ranks: 16, Seed: 1})
	static, _ := Run(cfg, core.StaticBlock{}, w, m1)
	m2 := cluster.New(cluster.Config{Ranks: 16, Seed: 1})
	steal, _ := Run(cfg, core.WorkStealing{Seed: 1}, w, m2)
	if steal.TotalTime >= static.TotalTime {
		t.Fatalf("stealing %v not below static %v", steal.TotalTime, static.TotalTime)
	}
	sb, stb := static.Breakdown(), steal.Breakdown()
	if math.Abs(sb.Diag-stb.Diag) > 1e-12 || math.Abs(sb.Reduce-stb.Reduce) > 1e-12 {
		t.Fatal("non-Fock phases should be identical across models")
	}
}
