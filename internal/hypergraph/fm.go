package hypergraph

import (
	"container/heap"
	"math/rand"
)

// refineFM runs Fiduccia–Mattheyses-style passes with tentative moves and
// best-prefix rollback: within a pass every vertex moves at most once (to
// its best feasible destination, even at negative gain, to climb out of
// local minima), and the pass is rolled back to the prefix with the best
// cumulative gain. Passes repeat until one yields no improvement.
//
// Compared with the greedy `refine`, FM escapes zero-gain plateaus at
// roughly 2-4x the cost — the A8 ablation quantifies the trade.
func refineFM(h *Hypergraph, part []int, k int, opts Options, rng *rand.Rand) {
	n := h.NumVertices()
	if n == 0 || len(h.Nets) == 0 || k < 2 {
		return
	}
	inc := h.pinsOf()
	netCnt := make([]map[int]int, len(h.Nets))
	for ni, pins := range h.Nets {
		m := make(map[int]int, 4)
		for _, v := range pins {
			m[part[v]]++
		}
		netCnt[ni] = m
	}
	loads := PartWeights(h, part, k)
	total := h.TotalVertexWeight()
	var wmax float64
	for _, w := range h.VWeights {
		if w > wmax {
			wmax = w
		}
	}
	cap_ := (1+opts.Eps)*total/float64(k) + wmax

	gainOf := func(v, dst int) float64 {
		src := part[v]
		var g float64
		for _, ni := range inc[v] {
			cnt := netCnt[ni]
			if cnt[src] == 1 && cnt[dst] > 0 {
				g += h.NetW[ni]
			} else if cnt[src] > 1 && cnt[dst] == 0 {
				g -= h.NetW[ni]
			}
		}
		return g
	}
	bestMove := func(v int) (dst int, gain float64, ok bool) {
		src := part[v]
		wv := h.VWeights[v]
		best, bestGain := -1, 0.0
		for d := 0; d < k; d++ {
			if d == src || loads[d]+wv > cap_ {
				continue
			}
			g := gainOf(v, d)
			if best == -1 || g > bestGain {
				best, bestGain = d, g
			}
		}
		return best, bestGain, best != -1
	}
	apply := func(v, dst int) int {
		src := part[v]
		for _, ni := range inc[v] {
			netCnt[ni][src]--
			if netCnt[ni][src] == 0 {
				delete(netCnt[ni], src)
			}
			netCnt[ni][dst]++
		}
		loads[src] -= h.VWeights[v]
		loads[dst] += h.VWeights[v]
		part[v] = dst
		return src
	}

	type record struct{ v, from int }
	for pass := 0; pass < opts.MaxPasses; pass++ {
		locked := make([]bool, n)
		pq := &moveHeap{}
		heap.Init(pq)
		for _, v := range rng.Perm(n) {
			if dst, g, ok := bestMove(v); ok {
				heap.Push(pq, moveEntry{v: v, dst: dst, gain: g})
			}
		}

		var history []record
		var cum, bestCum float64
		bestLen := 0
		for pq.Len() > 0 && len(history) < n {
			e := heap.Pop(pq).(moveEntry)
			if locked[e.v] {
				continue
			}
			// Lazy verification: gains go stale as neighbours move.
			dst, g, ok := bestMove(e.v)
			if !ok {
				continue
			}
			if dst != e.dst || g != e.gain {
				heap.Push(pq, moveEntry{v: e.v, dst: dst, gain: g})
				continue
			}
			from := apply(e.v, e.dst)
			locked[e.v] = true
			history = append(history, record{v: e.v, from: from})
			cum += e.gain
			if cum > bestCum+1e-12 {
				bestCum = cum
				bestLen = len(history)
			}
		}
		// Roll back everything past the best prefix.
		for i := len(history) - 1; i >= bestLen; i-- {
			apply(history[i].v, history[i].from)
		}
		if bestCum <= 1e-12 {
			break
		}
	}
}

type moveEntry struct {
	v, dst int
	gain   float64
}

type moveHeap []moveEntry

func (h moveHeap) Len() int           { return len(h) }
func (h moveHeap) Less(i, j int) bool { return h[i].gain > h[j].gain }
func (h moveHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *moveHeap) Push(x any)        { *h = append(*h, x.(moveEntry)) }
func (h *moveHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
