package hypergraph

import (
	"math/rand"
	"testing"
)

// clusteredGraph builds c clusters of size s with dense internal nets and
// a few bridges.
func clusteredGraph(c, s, bridges int, seed int64) *Hypergraph {
	rng := rand.New(rand.NewSource(seed))
	h := New(c * s)
	for ci := 0; ci < c; ci++ {
		base := ci * s
		for i := 0; i < 5*s; i++ {
			a, b := base+rng.Intn(s), base+rng.Intn(s)
			if a != b {
				h.AddNet(1, a, b)
			}
		}
	}
	for i := 0; i < bridges; i++ {
		h.AddNet(1, rng.Intn(c*s), rng.Intn(c*s))
	}
	return h
}

func TestFMFindsClusters(t *testing.T) {
	h := clusteredGraph(2, 12, 1, 3)
	res := Partition(h, 2, Options{Seed: 5, FM: true})
	if res.Cut > 3 {
		t.Fatalf("FM cut %v; clusters not separated", res.Cut)
	}
}

// FM must never be worse than greedy on the same instance (same seed,
// same hierarchy): it explores a superset of greedy's moves.
func TestFMAtLeastAsGoodAsGreedy(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		h := clusteredGraph(4, 25, 12, seed)
		greedy := Partition(h, 4, Options{Seed: seed})
		fm := Partition(h, 4, Options{Seed: seed, FM: true})
		// Allow a small tolerance: the two refiners can settle in
		// different balanced optima.
		if fm.Cut > greedy.Cut*1.1+2 {
			t.Errorf("seed %d: FM cut %v much worse than greedy %v", seed, fm.Cut, greedy.Cut)
		}
	}
}

// FM's rollback must leave a consistent state: recomputed cut equals the
// reported cut, and part weights match.
func TestFMConsistentState(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := New(80)
	for i := range h.VWeights {
		h.VWeights[i] = 1 + rng.Float64()*3
	}
	for e := 0; e < 300; e++ {
		pins := []int{rng.Intn(80), rng.Intn(80), rng.Intn(80)}
		h.AddNet(0.5+rng.Float64(), pins...)
	}
	res := Partition(h, 5, Options{Seed: 9, FM: true})
	if got := ConnectivityCut(h, res.Part, 5); got != res.Cut {
		t.Fatalf("reported cut %v != recomputed %v", res.Cut, got)
	}
	if res.Imbalance > 0.05+4/(h.TotalVertexWeight()/5) {
		t.Fatalf("imbalance %v", res.Imbalance)
	}
}

// A plateau instance greedy cannot cross: two equal-size cliques each
// split across the two parts; every single move has zero or negative
// gain under greedy (moving one vertex into its clique's majority side
// unbalances), but an FM pass sequence can swap whole groups.
func TestFMEscapesPlateau(t *testing.T) {
	// 4 vertices per clique, 2 cliques. Adversarial initial state is
	// created internally by seeding; we just require FM to land at (or
	// near) the ideal cut of 0 with each clique whole.
	h := New(8)
	for _, base := range []int{0, 4} {
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				h.AddNet(1, base+i, base+j)
			}
		}
	}
	res := Partition(h, 2, Options{Seed: 1, FM: true})
	if res.Cut != 0 {
		t.Fatalf("FM cut %v, want 0 (parts %v)", res.Cut, res.Part)
	}
}

func TestFMDeterministic(t *testing.T) {
	h := clusteredGraph(3, 20, 6, 11)
	r1 := Partition(h, 3, Options{Seed: 2, FM: true})
	r2 := Partition(h, 3, Options{Seed: 2, FM: true})
	for i := range r1.Part {
		if r1.Part[i] != r2.Part[i] {
			t.Fatal("FM not deterministic for fixed seed")
		}
	}
}
