package hypergraph

import (
	"math/rand"
	"sort"
)

// level is one rung of the multilevel hierarchy: the coarse hypergraph and
// the mapping from the finer level's vertices onto it.
type level struct {
	h    *Hypergraph
	map_ []int // finer vertex -> coarse vertex
}

// coarsen contracts h by heavy-connectivity matching: each vertex is
// paired with the neighbour it shares the most (weighted, size-normalized)
// nets with. Returns the coarse hypergraph and the vertex map, or ok=false
// when no meaningful contraction was possible.
func coarsen(h *Hypergraph, rng *rand.Rand) (coarse *Hypergraph, vmap []int, ok bool) {
	n := h.NumVertices()
	inc := h.pinsOf()
	matched := make([]int, n)
	for i := range matched {
		matched[i] = -1
	}

	order := rng.Perm(n)
	nCoarse := 0
	vmap = make([]int, n)
	for i := range vmap {
		vmap[i] = -1
	}

	score := make(map[int]float64)
	for _, v := range order {
		if matched[v] != -1 {
			continue
		}
		// Score unmatched neighbours by shared net weight / (|net|-1).
		clear(score)
		for _, nn := range inc[v] {
			pins := h.Nets[nn]
			w := h.NetW[nn] / float64(len(pins)-1)
			for _, u := range pins {
				if u != v && matched[u] == -1 {
					score[u] += w
				}
			}
		}
		best, bestScore := -1, 0.0
		for u, s := range score {
			if s > bestScore || (s == bestScore && best != -1 && u < best) {
				best, bestScore = u, s
			}
		}
		matched[v] = v
		vmap[v] = nCoarse
		if best != -1 {
			matched[best] = v
			vmap[best] = nCoarse
		}
		nCoarse++
	}

	if nCoarse > n*9/10 {
		return nil, nil, false // not shrinking enough to be worth a level
	}

	coarse = &Hypergraph{VWeights: make([]float64, nCoarse)}
	for v, cv := range vmap {
		coarse.VWeights[cv] += h.VWeights[v]
	}
	// Project nets, dropping those that collapse to a single coarse pin
	// and merging identical pin sets.
	type netKey string
	merged := make(map[netKey]int)
	for ni, pins := range h.Nets {
		cp := make([]int, 0, len(pins))
		seen := make(map[int]bool, len(pins))
		for _, v := range pins {
			cv := vmap[v]
			if !seen[cv] {
				seen[cv] = true
				cp = append(cp, cv)
			}
		}
		if len(cp) < 2 {
			continue
		}
		sort.Ints(cp)
		key := netKey(intsKey(cp))
		if j, dup := merged[key]; dup {
			coarse.NetW[j] += h.NetW[ni]
			continue
		}
		merged[key] = len(coarse.Nets)
		coarse.Nets = append(coarse.Nets, cp)
		coarse.NetW = append(coarse.NetW, h.NetW[ni])
	}
	return coarse, vmap, true
}

// intsKey packs sorted ints into a compact string key.
func intsKey(xs []int) string {
	buf := make([]byte, 0, len(xs)*5)
	for _, x := range xs {
		for x >= 0x80 {
			buf = append(buf, byte(x)|0x80)
			x >>= 7
		}
		buf = append(buf, byte(x))
	}
	return string(buf)
}
