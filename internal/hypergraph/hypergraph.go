// Package hypergraph implements a multilevel hypergraph partitioner in
// the PaToH/hMETIS family: heavy-connectivity coarsening, greedy initial
// partitioning, and Fiduccia–Mattheyses-style refinement during
// uncoarsening, minimizing the connectivity-1 cut metric under a balance
// constraint.
//
// In the execution-model study this is the *expensive, high-quality*
// load-balancing baseline that the cheap semi-matching technique is
// compared against (paper experiments T3/T4).
package hypergraph

import (
	"fmt"
	"sort"
)

// Hypergraph has weighted vertices and weighted nets (hyperedges), each
// net being a set of vertex indices ("pins").
type Hypergraph struct {
	VWeights []float64
	Nets     [][]int
	NetW     []float64
}

// New returns a hypergraph with n unit-weight vertices and no nets.
func New(n int) *Hypergraph {
	h := &Hypergraph{VWeights: make([]float64, n)}
	for i := range h.VWeights {
		h.VWeights[i] = 1
	}
	return h
}

// NumVertices returns the vertex count.
func (h *Hypergraph) NumVertices() int { return len(h.VWeights) }

// AddNet adds a net over the given pins with the given weight. Duplicate
// pins are removed; nets with fewer than two distinct pins are ignored
// (they can never be cut).
func (h *Hypergraph) AddNet(weight float64, pins ...int) {
	seen := make(map[int]bool, len(pins))
	var uniq []int
	for _, p := range pins {
		if p < 0 || p >= len(h.VWeights) {
			panic(fmt.Sprintf("hypergraph: pin %d out of range", p))
		}
		if !seen[p] {
			seen[p] = true
			uniq = append(uniq, p)
		}
	}
	if len(uniq) < 2 {
		return
	}
	sort.Ints(uniq)
	h.Nets = append(h.Nets, uniq)
	h.NetW = append(h.NetW, weight)
}

// TotalVertexWeight returns the sum of vertex weights.
func (h *Hypergraph) TotalVertexWeight() float64 {
	var s float64
	for _, w := range h.VWeights {
		s += w
	}
	return s
}

// pinsOf builds the vertex → incident nets index.
func (h *Hypergraph) pinsOf() [][]int {
	inc := make([][]int, len(h.VWeights))
	for n, pins := range h.Nets {
		for _, v := range pins {
			inc[v] = append(inc[v], n)
		}
	}
	return inc
}

// ConnectivityCut returns the connectivity-1 metric of a partition:
// Σ_nets w_n · (λ_n - 1), where λ_n is the number of parts net n spans.
// This equals the total communication volume when each net is a data
// block replicated to every part that touches it.
func ConnectivityCut(h *Hypergraph, part []int, k int) float64 {
	if len(part) != len(h.VWeights) {
		panic("hypergraph: partition length mismatch")
	}
	var cut float64
	mark := make([]int, k)
	for i := range mark {
		mark[i] = -1
	}
	for n, pins := range h.Nets {
		lambda := 0
		for _, v := range pins {
			p := part[v]
			if mark[p] != n {
				mark[p] = n
				lambda++
			}
		}
		if lambda > 1 {
			cut += h.NetW[n] * float64(lambda-1)
		}
	}
	return cut
}

// PartWeights returns the total vertex weight of each part.
func PartWeights(h *Hypergraph, part []int, k int) []float64 {
	w := make([]float64, k)
	for v, p := range part {
		w[p] += h.VWeights[v]
	}
	return w
}

// Imbalance returns max(partWeight)/avg(partWeight) - 1.
func Imbalance(h *Hypergraph, part []int, k int) float64 {
	w := PartWeights(h, part, k)
	var sum, mx float64
	for _, x := range w {
		sum += x
		if x > mx {
			mx = x
		}
	}
	if sum == 0 {
		return 0
	}
	return mx/(sum/float64(k)) - 1
}
