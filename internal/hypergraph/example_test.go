package hypergraph_test

import (
	"fmt"

	"execmodels/internal/hypergraph"
)

// Partition two 4-cliques joined by a single bridge net: the partitioner
// must cut only the bridge.
func ExamplePartition() {
	h := hypergraph.New(8)
	for _, base := range []int{0, 4} {
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				h.AddNet(1, base+i, base+j)
			}
		}
	}
	h.AddNet(1, 0, 4) // the bridge

	res := hypergraph.Partition(h, 2, hypergraph.Options{Seed: 1})
	fmt.Println("cut:", res.Cut)
	fmt.Println("balanced:", res.Imbalance == 0)
	// Output:
	// cut: 1
	// balanced: true
}
