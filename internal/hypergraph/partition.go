package hypergraph

import (
	"fmt"
	"math"
	"math/rand"
)

// Result is the output of a partitioning run.
type Result struct {
	Part      []int   // part of each vertex
	Cut       float64 // connectivity-1 metric
	Imbalance float64 // max/avg - 1
	Levels    int     // coarsening levels used (1 for flat)
}

// Options tunes the partitioner.
type Options struct {
	Eps       float64 // balance slack: max part weight <= (1+Eps)*avg (default 0.05)
	Seed      int64
	MaxPasses int // refinement passes per level (default 8)
	// Flat disables the multilevel hierarchy (ablation baseline): initial
	// partition plus refinement on the original hypergraph only.
	Flat bool
	// FM selects the Fiduccia–Mattheyses refiner (tentative moves with
	// best-prefix rollback) instead of the default positive-gain greedy
	// passes — better at escaping plateaus, a few times more expensive.
	FM bool
}

func (o *Options) setDefaults() {
	if o.Eps == 0 {
		o.Eps = 0.05
	}
	if o.MaxPasses == 0 {
		o.MaxPasses = 8
	}
}

// Partition splits h into k parts minimizing the connectivity-1 cut under
// the balance constraint. This is deliberately a heavyweight algorithm —
// the study measures its cost against semi-matching.
func Partition(h *Hypergraph, k int, opts Options) *Result {
	opts.setDefaults()
	if k < 1 {
		panic(fmt.Sprintf("hypergraph: k = %d", k))
	}
	if k == 1 {
		part := make([]int, h.NumVertices())
		return &Result{Part: part, Cut: 0, Imbalance: 0, Levels: 1}
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	// Build the hierarchy.
	levels := []level{{h: h}}
	if !opts.Flat {
		cur := h
		for cur.NumVertices() > max(4*k, 64) {
			coarse, vmap, ok := coarsen(cur, rng)
			if !ok {
				break
			}
			levels[len(levels)-1].map_ = vmap
			levels = append(levels, level{h: coarse})
			cur = coarse
		}
	}

	refiner := refine
	if opts.FM {
		refiner = refineFM
	}

	// Initial partition on the coarsest level.
	coarsest := levels[len(levels)-1].h
	part := initialPartition(coarsest, k, rng)
	refiner(coarsest, part, k, opts, rng)

	// Uncoarsen, projecting and refining at each level.
	for li := len(levels) - 2; li >= 0; li-- {
		fine := levels[li]
		finePart := make([]int, fine.h.NumVertices())
		for v := range finePart {
			finePart[v] = part[fine.map_[v]]
		}
		part = finePart
		refiner(fine.h, part, k, opts, rng)
	}
	balancePass(h, part, k, opts)

	return &Result{
		Part:      part,
		Cut:       ConnectivityCut(h, part, k),
		Imbalance: Imbalance(h, part, k),
		Levels:    len(levels),
	}
}

// initialPartition assigns vertices to parts by recursive bisection with
// BFS region growing: each bisection seeds a random vertex and grows a
// connected region through the nets until it reaches its weight target.
// This is cut-aware from the start, unlike a pure weight-balancing LPT.
func initialPartition(h *Hypergraph, k int, rng *rand.Rand) []int {
	n := h.NumVertices()
	part := make([]int, n)
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	inc := h.pinsOf()
	var assign func(sub []int, firstPart, numParts int)
	assign = func(sub []int, firstPart, numParts int) {
		if len(sub) == 0 {
			return
		}
		if numParts == 1 || len(sub) == 1 {
			for _, v := range sub {
				part[v] = firstPart
			}
			return
		}
		kA := numParts / 2
		frac := float64(kA) / float64(numParts)
		a, b := bisectGrow(h, inc, sub, frac, rng)
		assign(a, firstPart, kA)
		assign(b, firstPart+kA, numParts-kA)
	}
	assign(all, 0, k)
	return part
}

// bisectGrow splits sub into a region of ~targetFrac of the weight, grown
// by BFS from a random seed, and the remainder.
func bisectGrow(h *Hypergraph, inc [][]int, sub []int, targetFrac float64, rng *rand.Rand) (a, b []int) {
	inSub := make(map[int]bool, len(sub))
	var totalW float64
	for _, v := range sub {
		inSub[v] = true
		totalW += h.VWeights[v]
	}
	target := targetFrac * totalW

	taken := make(map[int]bool, len(sub))
	var takenW float64
	queue := []int{sub[rng.Intn(len(sub))]}
	for takenW < target {
		var v int
		if len(queue) > 0 {
			v = queue[0]
			queue = queue[1:]
		} else {
			// Disconnected remainder: restart from any untaken vertex.
			v = -1
			for _, u := range sub {
				if !taken[u] {
					v = u
					break
				}
			}
			if v == -1 {
				break
			}
		}
		if taken[v] {
			continue
		}
		taken[v] = true
		takenW += h.VWeights[v]
		a = append(a, v)
		for _, ni := range inc[v] {
			for _, u := range h.Nets[ni] {
				if inSub[u] && !taken[u] {
					queue = append(queue, u)
				}
			}
		}
	}
	for _, v := range sub {
		if !taken[v] {
			b = append(b, v)
		}
	}
	// Degenerate growth (e.g. one huge vertex): make sure both sides are
	// non-empty when the input allows it.
	if len(b) == 0 && len(a) > 1 {
		b = append(b, a[len(a)-1])
		a = a[:len(a)-1]
	}
	return a, b
}

// balancePass enforces the strict balance cap on the final partition by
// moving the least-cut-damaging vertices off overweight parts. Runs after
// refinement, which is allowed a vertex-granularity slack.
func balancePass(h *Hypergraph, part []int, k int, opts Options) {
	loads := PartWeights(h, part, k)
	total := h.TotalVertexWeight()
	cap_ := (1 + opts.Eps) * total / float64(k)
	inc := h.pinsOf()

	for iter := 0; iter < h.NumVertices(); iter++ {
		src := 0
		for p := 1; p < k; p++ {
			if loads[p] > loads[src] {
				src = p
			}
		}
		if loads[src] <= cap_ {
			return
		}
		// Cheapest vertex to evict: smallest cut increase per unit weight,
		// to the lightest part.
		dst := 0
		for p := 1; p < k; p++ {
			if loads[p] < loads[dst] {
				dst = p
			}
		}
		bestV, bestCost := -1, math.Inf(1)
		for v := 0; v < h.NumVertices(); v++ {
			if part[v] != src {
				continue
			}
			wv := h.VWeights[v]
			if loads[dst]+wv > loads[src]-wv && loads[dst]+wv > cap_ {
				continue // move would not help
			}
			var cost float64
			for _, ni := range inc[v] {
				srcPins, dstPins := 0, 0
				for _, u := range h.Nets[ni] {
					switch part[u] {
					case src:
						srcPins++
					case dst:
						dstPins++
					}
				}
				if srcPins == 1 && dstPins > 0 {
					cost -= h.NetW[ni]
				} else if srcPins > 1 && dstPins == 0 {
					cost += h.NetW[ni]
				}
			}
			if cost < bestCost {
				bestCost, bestV = cost, v
			}
		}
		if bestV == -1 {
			return // nothing movable; granularity limit reached
		}
		loads[src] -= h.VWeights[bestV]
		loads[dst] += h.VWeights[bestV]
		part[bestV] = dst
	}
}

// refine runs greedy k-way FM-style passes: vertices are visited in random
// order; each is moved to the part giving the best positive cut gain that
// keeps balance, with zero-gain moves accepted when they strictly improve
// balance. Passes repeat until a full pass makes no move or MaxPasses is
// reached.
func refine(h *Hypergraph, part []int, k int, opts Options, rng *rand.Rand) {
	n := h.NumVertices()
	if n == 0 || len(h.Nets) == 0 {
		return
	}
	inc := h.pinsOf()
	// Per-net pin counts per part, stored sparsely.
	netCnt := make([]map[int]int, len(h.Nets))
	for ni, pins := range h.Nets {
		m := make(map[int]int, 4)
		for _, v := range pins {
			m[part[v]]++
		}
		netCnt[ni] = m
	}
	loads := PartWeights(h, part, k)
	total := h.TotalVertexWeight()
	// Vertex-granularity slack keeps the refiner mobile on tightly
	// balanced unit-weight inputs; balancePass restores the strict cap at
	// the end.
	var wmax float64
	for _, w := range h.VWeights {
		if w > wmax {
			wmax = w
		}
	}
	cap_ := (1+opts.Eps)*total/float64(k) + wmax

	for pass := 0; pass < opts.MaxPasses; pass++ {
		moved := 0
		for _, v := range rng.Perm(n) {
			src := part[v]
			wv := h.VWeights[v]
			// Gain of removing v from src, per net: +w if v is the sole
			// src pin and the net already spans the candidate part.
			bestGain, bestDst := 0.0, -1
			bestBalance := 0.0
			for dst := 0; dst < k; dst++ {
				if dst == src || loads[dst]+wv > cap_ {
					continue
				}
				var gain float64
				for _, ni := range inc[v] {
					cnt := netCnt[ni]
					if cnt[src] == 1 && cnt[dst] > 0 {
						gain += h.NetW[ni]
					} else if cnt[src] > 1 && cnt[dst] == 0 {
						gain -= h.NetW[ni]
					}
				}
				balGain := loads[src] - (loads[dst] + wv) // >0 if balance improves
				better := gain > bestGain+1e-12 ||
					(gain > bestGain-1e-12 && balGain > bestBalance+1e-12)
				if better && (gain > 1e-12 || balGain > 1e-12) {
					bestGain, bestDst, bestBalance = gain, dst, balGain
				}
			}
			if bestDst >= 0 {
				for _, ni := range inc[v] {
					netCnt[ni][src]--
					if netCnt[ni][src] == 0 {
						delete(netCnt[ni], src)
					}
					netCnt[ni][bestDst]++
				}
				loads[src] -= wv
				loads[bestDst] += wv
				part[v] = bestDst
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
}
