package hypergraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddNetDedupAndDropSingletons(t *testing.T) {
	h := New(4)
	h.AddNet(1, 0, 0, 0) // collapses to one pin → dropped
	h.AddNet(1, 1, 2, 1)
	if len(h.Nets) != 1 {
		t.Fatalf("%d nets", len(h.Nets))
	}
	if len(h.Nets[0]) != 2 {
		t.Fatalf("net pins %v", h.Nets[0])
	}
}

func TestAddNetBadPinPanics(t *testing.T) {
	h := New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h.AddNet(1, 0, 5)
}

func TestConnectivityCutKnown(t *testing.T) {
	h := New(4)
	h.AddNet(2, 0, 1)       // within part 0 if part = {0,0,1,1}
	h.AddNet(3, 1, 2)       // spans both parts: contributes 3
	h.AddNet(5, 0, 1, 2, 3) // spans both: contributes 5
	part := []int{0, 0, 1, 1}
	if got := ConnectivityCut(h, part, 2); got != 8 {
		t.Fatalf("cut = %v, want 8", got)
	}
}

func TestConnectivityCutThreeParts(t *testing.T) {
	h := New(3)
	h.AddNet(1, 0, 1, 2)
	part := []int{0, 1, 2}
	// λ = 3 → (λ-1)·w = 2.
	if got := ConnectivityCut(h, part, 3); got != 2 {
		t.Fatalf("cut = %v, want 2", got)
	}
}

func TestImbalance(t *testing.T) {
	h := New(4)
	h.VWeights = []float64{3, 1, 1, 1}
	part := []int{0, 1, 1, 1}
	// Loads {3,3}, avg 3 → imbalance 0.
	if got := Imbalance(h, part, 2); got != 0 {
		t.Fatalf("imbalance = %v", got)
	}
	part = []int{0, 0, 0, 0}
	// Loads {6,0}, avg 3 → imbalance 1.
	if got := Imbalance(h, part, 2); got != 1 {
		t.Fatalf("imbalance = %v", got)
	}
}

// Two dense clusters joined by a single net: the partitioner must find
// the obvious split (cut = weight of the bridge).
func TestPartitionFindsClusters(t *testing.T) {
	h := New(20)
	rng := rand.New(rand.NewSource(1))
	for c := 0; c < 2; c++ {
		base := c * 10
		for i := 0; i < 30; i++ {
			a, b := base+rng.Intn(10), base+rng.Intn(10)
			if a != b {
				h.AddNet(1, a, b)
			}
		}
	}
	h.AddNet(1, 3, 13) // the only bridge
	res := Partition(h, 2, Options{Seed: 7})
	if res.Cut > 3 {
		t.Fatalf("cut = %v; clusters not separated (part %v)", res.Cut, res.Part)
	}
	if res.Imbalance > 0.051 {
		t.Fatalf("imbalance %v exceeds eps", res.Imbalance)
	}
}

func TestPartitionBalanceRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(100)
		k := 2 + rng.Intn(6)
		h := New(n)
		for i := range h.VWeights {
			h.VWeights[i] = 1 + rng.Float64()*4
		}
		for e := 0; e < 3*n; e++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				h.AddNet(1+rng.Float64(), a, b)
			}
		}
		res := Partition(h, k, Options{Seed: seed, Eps: 0.10})
		// Every vertex in range; imbalance within slack plus the
		// unavoidable granularity of the heaviest vertex.
		for _, p := range res.Part {
			if p < 0 || p >= k {
				return false
			}
		}
		var wmax float64
		for _, w := range h.VWeights {
			if w > wmax {
				wmax = w
			}
		}
		avg := h.TotalVertexWeight() / float64(k)
		return res.Imbalance <= 0.10+wmax/avg
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// The reported cut must equal an independent recomputation.
func TestPartitionCutConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := New(60)
	for e := 0; e < 200; e++ {
		pins := []int{rng.Intn(60), rng.Intn(60), rng.Intn(60)}
		h.AddNet(rng.Float64()+0.5, pins...)
	}
	res := Partition(h, 4, Options{Seed: 11})
	if got := ConnectivityCut(h, res.Part, 4); got != res.Cut {
		t.Fatalf("reported cut %v != recomputed %v", res.Cut, got)
	}
}

// Multilevel must (weakly) beat flat FM on clustered inputs, and must
// actually build a hierarchy.
func TestMultilevelVsFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	h := New(400)
	for c := 0; c < 4; c++ {
		base := c * 100
		for i := 0; i < 500; i++ {
			a, b := base+rng.Intn(100), base+rng.Intn(100)
			if a != b {
				h.AddNet(1, a, b)
			}
		}
	}
	for i := 0; i < 10; i++ {
		h.AddNet(1, rng.Intn(400), rng.Intn(400))
	}
	ml := Partition(h, 4, Options{Seed: 2})
	flat := Partition(h, 4, Options{Seed: 2, Flat: true})
	if ml.Levels < 2 {
		t.Fatalf("multilevel used %d levels", ml.Levels)
	}
	if flat.Levels != 1 {
		t.Fatalf("flat used %d levels", flat.Levels)
	}
	if ml.Cut > flat.Cut*1.5+10 {
		t.Fatalf("multilevel cut %v much worse than flat %v", ml.Cut, flat.Cut)
	}
}

func TestPartitionK1(t *testing.T) {
	h := New(5)
	h.AddNet(1, 0, 1)
	res := Partition(h, 1, Options{})
	if res.Cut != 0 {
		t.Fatalf("k=1 cut %v", res.Cut)
	}
	for _, p := range res.Part {
		if p != 0 {
			t.Fatal("k=1 must put everything in part 0")
		}
	}
}

func TestPartitionBadKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Partition(New(3), 0, Options{})
}

func TestPartitionDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	h := New(50)
	for e := 0; e < 150; e++ {
		a, b := rng.Intn(50), rng.Intn(50)
		if a != b {
			h.AddNet(1, a, b)
		}
	}
	r1 := Partition(h, 3, Options{Seed: 42})
	r2 := Partition(h, 3, Options{Seed: 42})
	for i := range r1.Part {
		if r1.Part[i] != r2.Part[i] {
			t.Fatal("same seed produced different partitions")
		}
	}
}

func TestCoarsenPreservesWeight(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	h := New(80)
	for i := range h.VWeights {
		h.VWeights[i] = 1 + rng.Float64()
	}
	for e := 0; e < 300; e++ {
		a, b := rng.Intn(80), rng.Intn(80)
		if a != b {
			h.AddNet(1, a, b)
		}
	}
	coarse, vmap, ok := coarsen(h, rng)
	if !ok {
		t.Skip("no contraction found")
	}
	if got, want := coarse.TotalVertexWeight(), h.TotalVertexWeight(); got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("weight %v != %v", got, want)
	}
	for v, cv := range vmap {
		if cv < 0 || cv >= coarse.NumVertices() {
			t.Fatalf("vertex %d maps to %d", v, cv)
		}
	}
	if coarse.NumVertices() >= h.NumVertices() {
		t.Fatal("coarsening did not shrink")
	}
}
