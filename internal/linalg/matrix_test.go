package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("bad shape: %+v", m)
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("Data[%d] = %v, want 0", i, v)
		}
	}
}

func TestNewMatrixFromCopies(t *testing.T) {
	src := []float64{1, 2, 3, 4}
	m := NewMatrixFrom(2, 2, src)
	src[0] = 99
	if m.At(0, 0) != 1 {
		t.Fatalf("NewMatrixFrom aliased input: got %v", m.At(0, 0))
	}
}

func TestNewMatrixFromBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched length")
		}
	}()
	NewMatrixFrom(2, 2, []float64{1, 2, 3})
}

func TestAtSetAdd(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 5)
	m.Add(1, 2, 2.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Fatalf("At(1,2) = %v, want 7.5", got)
	}
	if got := m.At(0, 0); got != 0 {
		t.Fatalf("At(0,0) = %v, want 0", got)
	}
}

func TestIdentity(t *testing.T) {
	m := Identity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if m.At(i, j) != want {
				t.Fatalf("I[%d][%d] = %v", i, j, m.At(i, j))
			}
		}
	}
	if got := m.Trace(); got != 4 {
		t.Fatalf("Trace(I4) = %v", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewMatrixFrom(2, 2, []float64{1, 2, 3, 4})
	c := m.Clone()
	c.Set(0, 0, -1)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestScaleAddScaled(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{1, 2, 3, 4})
	b := NewMatrixFrom(2, 2, []float64{10, 20, 30, 40})
	a.Scale(2).AddScaled(0.1, b)
	want := []float64{3, 6, 9, 12}
	for i := range want {
		if math.Abs(a.Data[i]-want[i]) > 1e-12 {
			t.Fatalf("Data[%d] = %v, want %v", i, a.Data[i], want[i])
		}
	}
}

func TestTranspose(t *testing.T) {
	m := NewMatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("bad transpose shape %dx%d", tr.Rows, tr.Cols)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(8), 1+rng.Intn(8)
		m := NewMatrix(r, c)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		return m.Transpose().Transpose().MaxAbsDiff(m) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSymmetrize(t *testing.T) {
	m := NewMatrixFrom(2, 2, []float64{1, 4, 2, 5})
	m.Symmetrize()
	if !m.IsSymmetric(0) {
		t.Fatal("not symmetric after Symmetrize")
	}
	if m.At(0, 1) != 3 {
		t.Fatalf("off-diagonal = %v, want 3", m.At(0, 1))
	}
}

func TestIsSymmetric(t *testing.T) {
	m := NewMatrixFrom(2, 2, []float64{1, 2, 2.0000001, 1})
	if m.IsSymmetric(1e-9) {
		t.Fatal("should not be symmetric at tol 1e-9")
	}
	if !m.IsSymmetric(1e-5) {
		t.Fatal("should be symmetric at tol 1e-5")
	}
	if NewMatrix(2, 3).IsSymmetric(1) {
		t.Fatal("non-square cannot be symmetric")
	}
}

func TestFrobeniusNorm(t *testing.T) {
	m := NewMatrixFrom(1, 2, []float64{3, 4})
	if got := m.FrobeniusNorm(); math.Abs(got-5) > 1e-14 {
		t.Fatalf("FrobeniusNorm = %v, want 5", got)
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := NewMatrixFrom(1, 3, []float64{1, 2, 3})
	b := NewMatrixFrom(1, 3, []float64{1, 2.5, 2})
	if got := a.MaxAbsDiff(b); got != 1 {
		t.Fatalf("MaxAbsDiff = %v, want 1", got)
	}
}

func TestZeroAndCopyFrom(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{1, 2, 3, 4})
	b := NewMatrix(2, 2)
	b.CopyFrom(a)
	a.Zero()
	if a.FrobeniusNorm() != 0 {
		t.Fatal("Zero did not clear matrix")
	}
	if b.At(1, 1) != 4 {
		t.Fatal("CopyFrom lost data")
	}
}

func TestTraceNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMatrix(2, 3).Trace()
}

func TestStringContainsValues(t *testing.T) {
	m := NewMatrixFrom(1, 1, []float64{2.5})
	if s := m.String(); len(s) == 0 {
		t.Fatal("empty String()")
	}
}
