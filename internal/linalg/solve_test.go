package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveKnown(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{2, 1, 1, 3})
	x, ok := Solve(a, []float64{5, 10})
	if !ok {
		t.Fatal("solver failed")
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("x = %v, want [1 3]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{1, 2, 2, 4})
	if _, ok := Solve(a, []float64{1, 2}); ok {
		t.Fatal("singular system accepted")
	}
}

func TestSolveDoesNotModifyInputs(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{4, 1, 1, 3})
	b := []float64{1, 2}
	Solve(a, b)
	if a.At(0, 0) != 4 || b[1] != 2 {
		t.Fatal("Solve modified its inputs")
	}
}

// Property: Solve then multiply back reproduces b.
func TestSolveResidual(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		a := randomMatrix(rng, n, n)
		// Diagonal boost keeps conditioning reasonable.
		for i := 0; i < n; i++ {
			a.Add(i, i, 5)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, ok := Solve(a, b)
		if !ok {
			return false
		}
		r := MatVec(a, x)
		for i := range r {
			if math.Abs(r[i]-b[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskyKnown(t *testing.T) {
	// a = [[4,2],[2,5]] = L·Lᵀ with L = [[2,0],[1,2]].
	a := NewMatrixFrom(2, 2, []float64{4, 2, 2, 5})
	l, ok := Cholesky(a)
	if !ok {
		t.Fatal("SPD matrix rejected")
	}
	want := NewMatrixFrom(2, 2, []float64{2, 0, 1, 2})
	if l.MaxAbsDiff(want) > 1e-12 {
		t.Fatalf("L =\n%v", l)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if _, ok := Cholesky(a); ok {
		t.Fatal("indefinite matrix accepted")
	}
}

// Property: Cholesky reconstruction and solve agree with Solve.
func TestCholeskyReconstructAndSolve(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		b := randomMatrix(rng, n, n)
		a := MatMul(b.Transpose(), b)
		for i := 0; i < n; i++ {
			a.Add(i, i, 1)
		}
		l, ok := Cholesky(a)
		if !ok {
			return false
		}
		if MatMul(l, l.Transpose()).MaxAbsDiff(a) > 1e-9 {
			return false
		}
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = rng.NormFloat64()
		}
		x1 := SolveCholesky(l, rhs)
		x2, _ := Solve(a, rhs)
		for i := range x1 {
			if math.Abs(x1[i]-x2[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Solve(NewMatrix(2, 3), []float64{1, 2})
}
