package linalg

// MatMul returns a*b as a new matrix.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic("linalg: MatMul dimension mismatch")
	}
	c := NewMatrix(a.Rows, b.Cols)
	Gemm(1, a, b, 0, c)
	return c
}

// Gemm computes c = alpha*a*b + beta*c in place. It uses an ikj loop order
// so the inner loop streams contiguously through b and c.
func Gemm(alpha float64, a, b *Matrix, beta float64, c *Matrix) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic("linalg: Gemm dimension mismatch")
	}
	n, k, m := a.Rows, a.Cols, b.Cols
	if beta == 0 {
		c.Zero()
	} else if beta != 1 {
		c.Scale(beta)
	}
	for i := 0; i < n; i++ {
		arow := a.Data[i*k : (i+1)*k]
		crow := c.Data[i*m : (i+1)*m]
		for p := 0; p < k; p++ {
			av := alpha * arow[p]
			if av == 0 {
				continue
			}
			brow := b.Data[p*m : (p+1)*m]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// MatVec returns a*x as a new vector.
func MatVec(a *Matrix, x []float64) []float64 {
	if a.Cols != len(x) {
		panic("linalg: MatVec dimension mismatch")
	}
	y := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// Dot returns the inner product of x and y.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("linalg: Dot length mismatch")
	}
	var s float64
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// TripleProduct returns aᵀ*b*a, the congruence transform used to move
// matrices between the atomic-orbital and orthogonal bases.
func TripleProduct(a, b *Matrix) *Matrix {
	return MatMul(a.Transpose(), MatMul(b, a))
}
