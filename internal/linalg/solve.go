package linalg

import "math"

// Solve solves the dense linear system a·x = b by Gaussian elimination
// with partial pivoting, without modifying its inputs. It reports
// ok=false for (near-)singular systems.
func Solve(a *Matrix, b []float64) (x []float64, ok bool) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		panic("linalg: Solve dimension mismatch")
	}
	m := append([]float64(nil), a.Data...)
	rhs := append([]float64(nil), b...)
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	for col := 0; col < n; col++ {
		best, bestAbs := col, math.Abs(m[piv[col]*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m[piv[r]*n+col]); v > bestAbs {
				best, bestAbs = r, v
			}
		}
		if bestAbs < 1e-14 {
			return nil, false
		}
		piv[col], piv[best] = piv[best], piv[col]
		pr := piv[col]
		for r := col + 1; r < n; r++ {
			rr := piv[r]
			factor := m[rr*n+col] / m[pr*n+col]
			if factor == 0 {
				continue
			}
			for c := col; c < n; c++ {
				m[rr*n+c] -= factor * m[pr*n+c]
			}
			rhs[rr] -= factor * rhs[pr]
		}
	}
	x = make([]float64, n)
	for col := n - 1; col >= 0; col-- {
		pr := piv[col]
		s := rhs[pr]
		for c := col + 1; c < n; c++ {
			s -= m[pr*n+c] * x[c]
		}
		x[col] = s / m[pr*n+col]
	}
	return x, true
}

// Cholesky returns the lower-triangular factor L with a = L·Lᵀ for a
// symmetric positive-definite matrix, or ok=false if a is not (within
// floating-point) positive definite.
func Cholesky(a *Matrix) (l *Matrix, ok bool) {
	n := a.Rows
	if a.Cols != n {
		panic("linalg: Cholesky of non-square matrix")
	}
	l = NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 {
					return nil, false
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, true
}

// SolveCholesky solves a·x = b given the Cholesky factor L of a, via
// forward and backward substitution.
func SolveCholesky(l *Matrix, b []float64) []float64 {
	n := l.Rows
	if len(b) != n {
		panic("linalg: SolveCholesky dimension mismatch")
	}
	// L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}
