// Package linalg provides the dense linear algebra needed by the
// self-consistent-field (SCF) driver: row-major dense matrices, a few
// BLAS-like kernels, a cyclic Jacobi symmetric eigensolver, and the
// symmetric-orthogonalization helpers used to turn a Fock matrix into a
// density matrix.
//
// The package is deliberately small and dependency-free; it is a substrate
// for the computational-chemistry kernel, not a general linear algebra
// library.
package linalg

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix returns a zero-initialized r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("linalg: negative dimension %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// NewMatrixFrom returns an r×c matrix backed by a copy of data.
func NewMatrixFrom(r, c int, data []float64) *Matrix {
	if len(data) != r*c {
		panic(fmt.Sprintf("linalg: data length %d != %d*%d", len(data), r, c))
	}
	m := NewMatrix(r, c)
	copy(m.Data, data)
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add accumulates v into element (i, j).
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	return NewMatrixFrom(m.Rows, m.Cols, m.Data)
}

// Zero sets every element to zero, retaining the backing storage.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// CopyFrom copies the contents of src into m. Dimensions must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic("linalg: CopyFrom dimension mismatch")
	}
	copy(m.Data, src.Data)
}

// Scale multiplies every element by s and returns m.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// AddScaled accumulates s*b into m element-wise and returns m.
func (m *Matrix) AddScaled(s float64, b *Matrix) *Matrix {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("linalg: AddScaled dimension mismatch")
	}
	for i := range m.Data {
		m.Data[i] += s * b.Data[i]
	}
	return m
}

// Transpose returns a new matrix that is the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// Trace returns the sum of diagonal elements. The matrix must be square.
func (m *Matrix) Trace() float64 {
	if m.Rows != m.Cols {
		panic("linalg: Trace of non-square matrix")
	}
	var t float64
	for i := 0; i < m.Rows; i++ {
		t += m.Data[i*m.Cols+i]
	}
	return t
}

// MaxAbsDiff returns max_ij |m_ij - b_ij|.
func (m *Matrix) MaxAbsDiff(b *Matrix) float64 {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("linalg: MaxAbsDiff dimension mismatch")
	}
	var d float64
	for i := range m.Data {
		if v := math.Abs(m.Data[i] - b.Data[i]); v > d {
			d = v
		}
	}
	return d
}

// FrobeniusNorm returns sqrt(sum m_ij^2).
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// IsSymmetric reports whether |m_ij - m_ji| <= tol for all i, j.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	n := m.Rows
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if math.Abs(m.Data[i*n+j]-m.Data[j*n+i]) > tol {
				return false
			}
		}
	}
	return true
}

// Symmetrize replaces m with (m + mᵀ)/2. The matrix must be square.
func (m *Matrix) Symmetrize() {
	if m.Rows != m.Cols {
		panic("linalg: Symmetrize of non-square matrix")
	}
	n := m.Rows
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := 0.5 * (m.Data[i*n+j] + m.Data[j*n+i])
			m.Data[i*n+j] = v
			m.Data[j*n+i] = v
		}
	}
}

// String renders the matrix with 4 significant digits, for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			fmt.Fprintf(&b, "% .4e ", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
