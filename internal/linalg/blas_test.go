package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := NewMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestMatMulKnown(t *testing.T) {
	a := NewMatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewMatrixFrom(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := MatMul(a, b)
	want := NewMatrixFrom(2, 2, []float64{58, 64, 139, 154})
	if c.MaxAbsDiff(want) > 1e-12 {
		t.Fatalf("MatMul wrong:\n%v", c)
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomMatrix(rng, 5, 5)
	if MatMul(a, Identity(5)).MaxAbsDiff(a) > 1e-12 {
		t.Fatal("a*I != a")
	}
	if MatMul(Identity(5), a).MaxAbsDiff(a) > 1e-12 {
		t.Fatal("I*a != a")
	}
}

func TestMatMulDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(NewMatrix(2, 3), NewMatrix(2, 3))
}

func TestGemmBeta(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{1, 0, 0, 1})
	b := NewMatrixFrom(2, 2, []float64{1, 2, 3, 4})
	c := NewMatrixFrom(2, 2, []float64{10, 10, 10, 10})
	Gemm(2, a, b, 0.5, c) // c = 2*I*b + 0.5*c
	want := NewMatrixFrom(2, 2, []float64{7, 9, 11, 13})
	if c.MaxAbsDiff(want) > 1e-12 {
		t.Fatalf("Gemm beta wrong:\n%v", c)
	}
}

// Property: (a*b)ᵀ == bᵀ*aᵀ.
func TestMatMulTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, k, m := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a := randomMatrix(rng, n, k)
		b := randomMatrix(rng, k, m)
		left := MatMul(a, b).Transpose()
		right := MatMul(b.Transpose(), a.Transpose())
		return left.MaxAbsDiff(right) < 1e-10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: matrix multiplication is associative.
func TestMatMulAssociative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		a, b, c := randomMatrix(rng, n, n), randomMatrix(rng, n, n), randomMatrix(rng, n, n)
		return MatMul(MatMul(a, b), c).MaxAbsDiff(MatMul(a, MatMul(b, c))) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMatVec(t *testing.T) {
	a := NewMatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	y := MatVec(a, []float64{1, 1, 1})
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("MatVec = %v", y)
	}
}

func TestMatVecAgreesWithMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomMatrix(rng, 4, 4)
	x := []float64{1, -2, 3, -4}
	xm := NewMatrixFrom(4, 1, x)
	y := MatVec(a, x)
	ym := MatMul(a, xm)
	for i := range y {
		if math.Abs(y[i]-ym.At(i, 0)) > 1e-12 {
			t.Fatalf("MatVec disagrees with MatMul at %d", i)
		}
	}
}

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestTripleProductSymmetryPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := randomMatrix(rng, 4, 4)
	b.Symmetrize()
	a := randomMatrix(rng, 4, 4)
	p := TripleProduct(a, b)
	if !p.IsSymmetric(1e-10) {
		t.Fatal("aᵀ b a lost symmetry")
	}
}
