package linalg

import (
	"math"
	"sort"
)

// EigenSym computes all eigenvalues and eigenvectors of the symmetric
// matrix a using the cyclic Jacobi method. It returns the eigenvalues in
// ascending order and a matrix whose columns are the corresponding
// orthonormal eigenvectors. The input is not modified.
//
// Jacobi is O(n^3) with a modest constant and is numerically very robust,
// which is all the SCF driver needs: basis-set dimensions in this repo stay
// in the low hundreds.
func EigenSym(a *Matrix) (vals []float64, vecs *Matrix) {
	if a.Rows != a.Cols {
		panic("linalg: EigenSym of non-square matrix")
	}
	n := a.Rows
	w := a.Clone()
	v := Identity(n)

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(w)
		if off < 1e-14*(1+w.FrobeniusNorm()) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				// Stable computation of the rotation angle.
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				rotate(w, v, p, q, c, s)
			}
		}
	}

	// Extract eigenvalues and sort ascending, permuting eigenvectors along.
	type pair struct {
		val float64
		col int
	}
	pairs := make([]pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = pair{w.At(i, i), i}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].val < pairs[j].val })

	vals = make([]float64, n)
	vecs = NewMatrix(n, n)
	for k, pr := range pairs {
		vals[k] = pr.val
		for i := 0; i < n; i++ {
			vecs.Set(i, k, v.At(i, pr.col))
		}
	}
	return vals, vecs
}

// rotate applies the Jacobi rotation J(p,q,c,s) to w (two-sided) and
// accumulates it into the eigenvector matrix v (one-sided).
func rotate(w, v *Matrix, p, q int, c, s float64) {
	n := w.Rows
	for i := 0; i < n; i++ {
		wip, wiq := w.At(i, p), w.At(i, q)
		w.Set(i, p, c*wip-s*wiq)
		w.Set(i, q, s*wip+c*wiq)
	}
	for j := 0; j < n; j++ {
		wpj, wqj := w.At(p, j), w.At(q, j)
		w.Set(p, j, c*wpj-s*wqj)
		w.Set(q, j, s*wpj+c*wqj)
	}
	for i := 0; i < n; i++ {
		vip, viq := v.At(i, p), v.At(i, q)
		v.Set(i, p, c*vip-s*viq)
		v.Set(i, q, s*vip+c*viq)
	}
}

func offDiagNorm(m *Matrix) float64 {
	n := m.Rows
	var s float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				v := m.At(i, j)
				s += v * v
			}
		}
	}
	return math.Sqrt(s)
}

// InvSqrtSym returns s^{-1/2} for a symmetric positive-definite matrix s,
// computed via its eigendecomposition. This is the symmetric (Löwdin)
// orthogonalization matrix used by SCF. Eigenvalues below floor are clamped
// to floor to keep near-linear-dependent basis sets stable.
func InvSqrtSym(s *Matrix, floor float64) *Matrix {
	vals, vecs := EigenSym(s)
	n := s.Rows
	d := NewMatrix(n, n)
	for i, v := range vals {
		if v < floor {
			v = floor
		}
		d.Set(i, i, 1/math.Sqrt(v))
	}
	return MatMul(vecs, MatMul(d, vecs.Transpose()))
}
