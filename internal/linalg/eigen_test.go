package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomSymmetric(rng *rand.Rand, n int) *Matrix {
	m := randomMatrix(rng, n, n)
	m.Symmetrize()
	return m
}

func TestEigenSymDiagonal(t *testing.T) {
	m := NewMatrix(3, 3)
	m.Set(0, 0, 3)
	m.Set(1, 1, 1)
	m.Set(2, 2, 2)
	vals, vecs := EigenSym(m)
	want := []float64{1, 2, 3}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-12 {
			t.Fatalf("vals = %v", vals)
		}
	}
	// Eigenvectors of a diagonal matrix are (signed) unit vectors.
	for k := 0; k < 3; k++ {
		var nnz int
		for i := 0; i < 3; i++ {
			if math.Abs(vecs.At(i, k)) > 1e-10 {
				nnz++
			}
		}
		if nnz != 1 {
			t.Fatalf("eigenvector %d not axis-aligned:\n%v", k, vecs)
		}
	}
}

func TestEigenSymKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	m := NewMatrixFrom(2, 2, []float64{2, 1, 1, 2})
	vals, _ := EigenSym(m)
	if math.Abs(vals[0]-1) > 1e-12 || math.Abs(vals[1]-3) > 1e-12 {
		t.Fatalf("vals = %v, want [1 3]", vals)
	}
}

// Property: A v_k = λ_k v_k and the eigenvector matrix is orthonormal.
func TestEigenSymReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		a := randomSymmetric(rng, n)
		vals, vecs := EigenSym(a)

		// Orthonormality: vecsᵀ vecs == I.
		if MatMul(vecs.Transpose(), vecs).MaxAbsDiff(Identity(n)) > 1e-8 {
			return false
		}
		// Reconstruction: vecs * diag(vals) * vecsᵀ == a.
		d := NewMatrix(n, n)
		for i, v := range vals {
			d.Set(i, i, v)
		}
		rec := MatMul(vecs, MatMul(d, vecs.Transpose()))
		return rec.MaxAbsDiff(a) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestEigenSymValuesSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randomSymmetric(rng, 10)
	vals, _ := EigenSym(a)
	for i := 1; i < len(vals); i++ {
		if vals[i] < vals[i-1] {
			t.Fatalf("eigenvalues not ascending: %v", vals)
		}
	}
}

func TestEigenSymTracePreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomSymmetric(rng, 7)
	vals, _ := EigenSym(a)
	var sum float64
	for _, v := range vals {
		sum += v
	}
	if math.Abs(sum-a.Trace()) > 1e-9 {
		t.Fatalf("eigenvalue sum %v != trace %v", sum, a.Trace())
	}
}

func TestInvSqrtSym(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	// Build an SPD matrix a = bᵀb + I.
	b := randomMatrix(rng, 5, 5)
	a := MatMul(b.Transpose(), b)
	for i := 0; i < 5; i++ {
		a.Add(i, i, 1)
	}
	x := InvSqrtSym(a, 1e-12)
	// x a x should be the identity.
	if TripleProduct(x, a).MaxAbsDiff(Identity(5)) > 1e-8 {
		t.Fatal("s^{-1/2} s s^{-1/2} != I")
	}
}

func TestInvSqrtSymFloorClamps(t *testing.T) {
	// Nearly singular matrix: eigenvalues 1 and 1e-20.
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(1, 1, 1e-20)
	x := InvSqrtSym(m, 1e-10)
	// Without clamping the (1,1) entry would be 1e10; with floor it is 1e5.
	if x.At(1, 1) > 1.1e5 {
		t.Fatalf("floor not applied: %v", x.At(1, 1))
	}
}

func TestEigenSymNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EigenSym(NewMatrix(2, 3))
}
