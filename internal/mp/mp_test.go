package mp

import (
	"math"
	"sync/atomic"
	"testing"
)

func TestWorldSizes(t *testing.T) {
	w := NewWorld(4)
	var ran atomic.Int64
	w.Run(func(c *Comm) {
		if c.Size() != 4 {
			t.Errorf("size %d", c.Size())
		}
		ran.Add(1)
	})
	if ran.Load() != 4 {
		t.Fatalf("%d ranks ran", ran.Load())
	}
}

func TestNewWorldBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWorld(0)
}

func TestSendRecv(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, []float64{1, 2, 3})
		} else {
			data, from := c.Recv(0, 7)
			if from != 0 || len(data) != 3 || data[2] != 3 {
				t.Errorf("got %v from %d", data, from)
			}
		}
	})
}

func TestSendCopiesData(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			buf := []float64{42}
			c.Send(1, 0, buf)
			buf[0] = -1 // must not affect the receiver
			c.Barrier()
		} else {
			c.Barrier()
			data, _ := c.Recv(0, 0)
			if data[0] != 42 {
				t.Errorf("send aliased caller buffer: %v", data)
			}
		}
	})
}

func TestRecvTagFiltering(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []float64{1})
			c.Send(1, 2, []float64{2})
		} else {
			// Receive tag 2 first even though tag 1 arrived first.
			d2, _ := c.Recv(0, 2)
			d1, _ := c.Recv(0, 1)
			if d2[0] != 2 || d1[0] != 1 {
				t.Errorf("tag filtering broken: %v %v", d1, d2)
			}
		}
	})
}

func TestRecvAnySourceAnyTag(t *testing.T) {
	w := NewWorld(3)
	w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			seen := map[int]bool{}
			for i := 0; i < 2; i++ {
				data, from := c.Recv(AnySource, AnyTag)
				seen[from] = true
				if data[0] != float64(from) {
					t.Errorf("payload %v from %d", data, from)
				}
			}
			if !seen[1] || !seen[2] {
				t.Errorf("sources %v", seen)
			}
		default:
			c.Send(0, c.Rank()*10, []float64{float64(c.Rank())})
		}
	})
}

func TestBarrierOrdering(t *testing.T) {
	w := NewWorld(8)
	var before, after atomic.Int64
	w.Run(func(c *Comm) {
		before.Add(1)
		c.Barrier()
		if before.Load() != 8 {
			t.Error("barrier released before all arrived")
		}
		after.Add(1)
		c.Barrier()
		if after.Load() != 8 {
			t.Error("second barrier released early")
		}
	})
}

func TestBroadcast(t *testing.T) {
	w := NewWorld(5)
	w.Run(func(c *Comm) {
		var got []float64
		if c.Rank() == 2 {
			got = c.Broadcast(2, []float64{3.14, 2.71})
		} else {
			got = c.Broadcast(2, nil)
		}
		if len(got) != 2 || got[0] != 3.14 {
			t.Errorf("rank %d got %v", c.Rank(), got)
		}
	})
}

func TestAllReduceSum(t *testing.T) {
	w := NewWorld(6)
	w.Run(func(c *Comm) {
		buf := []float64{float64(c.Rank()), 1}
		sum := c.AllReduceSum(buf)
		if sum[0] != 15 || sum[1] != 6 { // 0+1+..+5, 6 ones
			t.Errorf("rank %d sum %v", c.Rank(), sum)
		}
	})
}

// Consecutive collectives must not cross epochs even when ranks race.
func TestConsecutiveCollectives(t *testing.T) {
	w := NewWorld(4)
	w.Run(func(c *Comm) {
		for epoch := 0; epoch < 50; epoch++ {
			v := float64(epoch*10 + 1)
			sum := c.AllReduceSum([]float64{v})
			if want := v * 4; math.Abs(sum[0]-want) > 1e-12 {
				t.Errorf("epoch %d: sum %v want %v", epoch, sum[0], want)
				return
			}
		}
	})
}

func TestGather(t *testing.T) {
	w := NewWorld(4)
	w.Run(func(c *Comm) {
		out := c.Gather(1, []float64{float64(c.Rank() * 100)})
		if c.Rank() != 1 {
			if out != nil {
				t.Errorf("non-root got %v", out)
			}
			return
		}
		for r := 0; r < 4; r++ {
			if out[r][0] != float64(r*100) {
				t.Errorf("gather[%d] = %v", r, out[r])
			}
		}
	})
}

func TestSendBadRankPanics(t *testing.T) {
	w := NewWorld(1)
	w.Run(func(c *Comm) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		c.Send(5, 0, nil)
	})
}
