package mp

import "execmodels/internal/obs"

// Metrics instrumentation for the wall-clock runtime: a World can carry an
// obs.Registry and then counts per-rank messages, payload bytes, acks,
// duplicate deliveries and retransmissions, plus a histogram of how many
// attempts each reliable send needed. Counts are deterministic for a fixed
// (seed, program) because message fates are; only wall-clock timing is not,
// and no timing ever enters the registry from this package.

// SetMetrics installs (or, with nil, removes) the registry the world
// reports into. The registry should be sized for at least P ranks.
func (w *World) SetMetrics(reg *obs.Registry) {
	w.fmu.Lock()
	defer w.fmu.Unlock()
	w.metrics = reg
}

// metricsReg returns the installed registry (possibly nil). obs.Registry
// is internally locked, so callers use it without holding fmu.
func (w *World) metricsReg() *obs.Registry {
	w.fmu.Lock()
	defer w.fmu.Unlock()
	//lint:ignore lockset obs.Registry is internally mutex-protected; fmu only guards installing/removing the pointer, so handing the pointer out is safe
	return w.metrics
}

// countSend records one sent message from src with the given payload
// length (8 bytes per float64 element).
func (w *World) countSend(src, elems int) {
	reg := w.metricsReg()
	reg.Count(obs.CMpMessages, src, 1)
	reg.Count(obs.CMpBytes, src, int64(8*elems))
}
