package mp_test

import (
	"fmt"
	"sort"
	"sync"

	"execmodels/internal/mp"
)

// Four ranks sum their rank numbers with an allreduce; every rank sees
// the same total.
func ExampleWorld_Run() {
	var mu sync.Mutex
	var got []float64
	world := mp.NewWorld(4)
	world.Run(func(c *mp.Comm) {
		sum := c.AllReduceSum([]float64{float64(c.Rank())})
		mu.Lock()
		got = append(got, sum[0])
		mu.Unlock()
	})
	sort.Float64s(got)
	fmt.Println(got)
	// Output:
	// [6 6 6 6]
}
