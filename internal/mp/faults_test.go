package mp

import (
	"errors"
	"testing"
	"time"

	"execmodels/internal/fault"
)

// TestReliableDeliveryUnderDrops pushes a message stream through a very
// lossy link and checks the reliable layer's contract: every payload
// arrives exactly once, in order, and the recovery is visible as
// retransmissions.
func TestReliableDeliveryUnderDrops(t *testing.T) {
	const n = 60
	w := NewWorld(2)
	w.SetFaults(&fault.LinkFilter{LinkFaults: fault.LinkFaults{Drop: 0.3, Seed: 7}})

	var got [][]float64
	w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			for i := 0; i < n; i++ {
				// A generous retry budget: at 30% drop, 12 attempts make a
				// spurious ErrDeadRank (which would strand the receiver and
				// deadlock the test) astronomically unlikely.
				opts := ReliableOpts{Timeout: 2 * time.Millisecond, MaxRetries: 12}
				if err := c.SendReliable(1, 5, []float64{float64(i), float64(2 * i)}, opts); err != nil {
					t.Errorf("send %d: %v", i, err)
					return
				}
			}
		case 1:
			for i := 0; i < n; i++ {
				data, from := c.RecvReliable(0, 5)
				if from != 0 {
					t.Errorf("message %d from rank %d, want 0", i, from)
				}
				got = append(got, data)
			}
		}
	})

	if len(got) != n {
		t.Fatalf("delivered %d messages, want %d", len(got), n)
	}
	for i, d := range got {
		if len(d) != 2 || d[0] != float64(i) || d[1] != float64(2*i) {
			t.Fatalf("message %d corrupted or out of order: %v", i, d)
		}
	}
	if w.Retransmits() == 0 {
		t.Error("30% drop rate produced no retransmissions; the filter is not wired into Send")
	}
}

// TestReliableDedupUnderDuplicates turns on duplication only and checks
// the receiver-side dedup: each message is delivered to the caller once
// even though copies reach the inbox.
func TestReliableDedupUnderDuplicates(t *testing.T) {
	const n = 40
	w := NewWorld(2)
	w.SetFaults(&fault.LinkFilter{LinkFaults: fault.LinkFaults{Duplicate: 0.5, Seed: 3}})

	count := 0
	w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			for i := 0; i < n; i++ {
				if err := c.SendReliable(1, 9, []float64{float64(i)}, ReliableOpts{}); err != nil {
					t.Errorf("send %d: %v", i, err)
					return
				}
			}
		case 1:
			for i := 0; i < n; i++ {
				data, _ := c.RecvReliable(0, 9)
				if data[0] != float64(i) {
					t.Errorf("message %d carries %v", i, data)
				}
				count++
			}
		}
	})
	if count != n {
		t.Fatalf("delivered %d, want exactly %d", count, n)
	}
}

// TestDeadRankDetection kills a rank and checks both failure surfaces: a
// reliable send into the void returns ErrDeadRank after its retry budget,
// and a plain receive from the void times out instead of hanging.
func TestDeadRankDetection(t *testing.T) {
	w := NewWorld(2)
	w.Kill(1)
	if w.Alive(1) || !w.Alive(0) {
		t.Fatal("Kill(1) did not register")
	}

	w.Run(func(c *Comm) {
		if c.Rank() != 0 {
			return // rank 1 crashed: its goroutine just returns
		}
		err := c.SendReliable(1, 3, []float64{1}, ReliableOpts{Timeout: time.Millisecond, MaxRetries: 3})
		if !errors.Is(err, ErrDeadRank) {
			t.Errorf("SendReliable to a dead rank = %v, want ErrDeadRank", err)
		}
		if _, _, err := c.RecvTimeout(1, 3, 2*time.Millisecond); !errors.Is(err, ErrTimeout) {
			t.Errorf("RecvTimeout from a dead rank = %v, want ErrTimeout", err)
		}
	})
}

// TestRecvTimeoutDelivers checks the success path: a message that does
// arrive within the window is returned, and out-of-tag arrivals are
// parked for later exactly as Recv parks them.
func TestRecvTimeoutDelivers(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(1, 8, []float64{7}) // wrong tag first: must be parked
			c.Send(1, 4, []float64{42})
		case 1:
			data, from, err := c.RecvTimeout(0, 4, time.Second)
			if err != nil || from != 0 || len(data) != 1 || data[0] != 42 {
				t.Errorf("RecvTimeout = %v, %d, %v", data, from, err)
			}
			data, _ = c.Recv(0, 8)
			if data[0] != 7 {
				t.Errorf("parked message lost: %v", data)
			}
		}
	})
}

// TestCollectivesUnaffectedByFaults runs a barrier+allreduce under an
// aggressive filter: internal tags bypass the faults, so the collectives
// must still complete and agree.
func TestCollectivesUnaffectedByFaults(t *testing.T) {
	w := NewWorld(4)
	w.SetFaults(&fault.LinkFilter{LinkFaults: fault.LinkFaults{Drop: 0.5, Seed: 1}})
	w.Run(func(c *Comm) {
		c.Barrier()
		sum := c.AllReduceSum([]float64{float64(c.Rank())})
		if sum[0] != 6 { // 0+1+2+3
			t.Errorf("rank %d: allreduce under faults = %v, want 6", c.Rank(), sum[0])
		}
	})
}
