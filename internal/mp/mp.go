// Package mp is a small message-passing runtime over goroutines — the
// MPI analog of the paper's execution stack. A World spawns P ranks, each
// a goroutine holding a Comm handle with point-to-point Send/Recv (by
// rank and tag) and the collectives the SCF application needs: Barrier,
// Broadcast, AllReduceSum and Gather.
//
// It exists so the repository can run the *distributed-memory* flavour of
// each execution model for real (see internal/mp/fock.go), not just in
// simulation: ranks own data, everything moves through messages, and the
// semantics match what an MPI+Global-Arrays code does.
package mp

import (
	"fmt"
	"sync"

	"execmodels/internal/fault"
	"execmodels/internal/obs"
)

// message is one point-to-point payload in flight.
type message struct {
	from, tag int
	data      []float64
}

// World is a group of ranks connected all-to-all.
type World struct {
	P int
	// inbox[rank] receives messages for that rank; a buffered channel per
	// rank keeps senders non-blocking up to the cap.
	inbox []chan message

	barrier *barrier

	// Fault-injection state; see faults.go. All access goes through World
	// methods so the lock discipline is auditable in one file.
	fmu         sync.Mutex
	links       *fault.LinkFilter // guarded by fmu
	dead        []bool            // guarded by fmu
	seq         [][]int           // guarded by fmu; per (src,dst) message sequence
	retransmits int64             // guarded by fmu
	metrics     *obs.Registry     // guarded by fmu; see metrics.go
}

// NewWorld creates a world with p ranks.
func NewWorld(p int) *World {
	if p < 1 {
		panic(fmt.Sprintf("mp: world size %d", p))
	}
	w := &World{P: p, barrier: newBarrier(p)}
	w.inbox = make([]chan message, p)
	for i := range w.inbox {
		w.inbox[i] = make(chan message, 64*p)
	}
	return w
}

// Run spawns fn on every rank and waits for all to return. Each rank gets
// its own Comm. Panics in ranks propagate after all ranks finish or hang
// is avoided by the panicking rank's buffered channels.
func (w *World) Run(fn func(c *Comm)) {
	var wg sync.WaitGroup
	for r := 0; r < w.P; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			fn(&Comm{world: w, rank: r})
		}(r)
	}
	wg.Wait()
}

// Comm is one rank's endpoint into the world.
type Comm struct {
	world *World
	rank  int
	// pending holds messages received out of order (wrong tag/source),
	// parked until a matching Recv arrives.
	pending []message

	// Reliable-delivery state (see faults.go): per-destination message IDs
	// and per-source dedup sets. A Comm belongs to one goroutine, so these
	// need no lock.
	nextID []int64
	seen   []map[int64]bool
}

// Rank returns this rank's index.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.P }

// Send delivers data to rank dst under the given tag. The data slice is
// copied, so the caller may reuse it immediately. When a fault filter is
// installed (see SetFaults), application messages — tag >= 0 — may be
// dropped or duplicated; runtime-internal tags are never faulted.
func (c *Comm) Send(dst, tag int, data []float64) {
	if dst < 0 || dst >= c.world.P {
		panic(fmt.Sprintf("mp: send to rank %d of %d", dst, c.world.P))
	}
	c.world.countSend(c.rank, len(data))
	copies := c.world.deliveries(c.rank, dst, tag)
	for i := 0; i < copies; i++ {
		cp := make([]float64, len(data))
		copy(cp, data)
		c.world.inbox[dst] <- message{from: c.rank, tag: tag, data: cp}
	}
}

// Recv blocks until a message from rank src with the given tag arrives
// and returns its payload. Pass AnySource (or AnyTag) to match any sender
// (or any tag). Out-of-order messages are parked and matched later.
func (c *Comm) Recv(src, tag int) (data []float64, from int) {
	// Check parked messages first.
	for i, m := range c.pending {
		if matches(m, src, tag) {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			return m.data, m.from
		}
	}
	for {
		m := <-c.world.inbox[c.rank]
		if matches(m, src, tag) {
			return m.data, m.from
		}
		c.pending = append(c.pending, m)
	}
}

// AnySource and AnyTag are wildcards for Recv.
const (
	AnySource = -1
	AnyTag    = -1
)

func matches(m message, src, tag int) bool {
	return (src == AnySource || m.from == src) && (tag == AnyTag || m.tag == tag)
}

// Barrier blocks until every rank has entered it.
func (c *Comm) Barrier() { c.world.barrier.await() }

// Broadcast distributes root's buf to every rank: on the root, buf is
// sent; on others, the returned slice holds the received data (buf is
// ignored and may be nil).
func (c *Comm) Broadcast(root int, buf []float64) []float64 {
	const tag = -1000 // reserved internal tag
	if c.rank == root {
		for r := 0; r < c.world.P; r++ {
			if r != c.rank {
				c.Send(r, tag, buf)
			}
		}
		return buf
	}
	data, _ := c.Recv(root, tag)
	return data
}

// AllReduceSum element-wise sums buf across all ranks; every rank returns
// the full sum. Gather-to-root then broadcast (correctness over cleverness
// — this runtime measures semantics, not network topology).
func (c *Comm) AllReduceSum(buf []float64) []float64 {
	const tag = -1001
	root := 0
	if c.rank == root {
		sum := make([]float64, len(buf))
		copy(sum, buf)
		// Receive from each rank specifically: per-sender channel FIFO
		// then guarantees that consecutive collectives cannot cross
		// epochs (an AnySource loop could consume one rank's next-epoch
		// contribution while another rank's current one is still queued).
		for r := 1; r < c.world.P; r++ {
			data, _ := c.Recv(r, tag)
			if len(data) != len(sum) {
				panic(fmt.Sprintf("mp: allreduce length mismatch %d vs %d", len(data), len(sum)))
			}
			for j, v := range data {
				sum[j] += v
			}
		}
		return c.Broadcast(root, sum)
	}
	c.Send(root, tag, buf)
	return c.Broadcast(root, nil)
}

// Gather collects every rank's buf at the root, concatenated in rank
// order. Non-root ranks return nil.
func (c *Comm) Gather(root int, buf []float64) [][]float64 {
	const tag = -1002
	if c.rank != root {
		c.Send(root, tag, buf)
		return nil
	}
	out := make([][]float64, c.world.P)
	out[c.rank] = append([]float64(nil), buf...)
	// Rank-specific receives; see AllReduceSum for why AnySource would be
	// wrong across consecutive collectives.
	for r := 0; r < c.world.P; r++ {
		if r == root {
			continue
		}
		data, _ := c.Recv(r, tag)
		out[r] = data
	}
	return out
}

// barrier is a reusable P-party barrier.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	count   int // guarded by mu
	phase   int // guarded by mu
}

func newBarrier(parties int) *barrier {
	b := &barrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await() {
	b.mu.Lock()
	defer b.mu.Unlock()
	phase := b.phase
	b.count++
	if b.count == b.parties {
		b.count = 0
		b.phase++
		b.cond.Broadcast()
		return
	}
	for phase == b.phase {
		b.cond.Wait()
	}
}
