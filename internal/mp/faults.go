package mp

import (
	"errors"
	"fmt"
	"time"

	"execmodels/internal/fault"
	"execmodels/internal/obs"
)

// Fault injection for the wall-clock runtime. A World can carry a
// fault.LinkFilter (the same pure-hash filter the simulator uses) plus a
// kill switch per rank; plain Send then drops or duplicates application
// messages, and the reliable layer below — SendReliable/RecvReliable —
// recovers with acknowledgements, bounded retries with exponential
// backoff, receiver-side deduplication, and dead-rank detection.
//
// Determinism note: message *fates* are pure in (seed, src, dst, seq)
// because each (src, dst) pair's sequence numbers are assigned in that
// sender's program order. What stays scheduler-dependent is wall-clock
// timing (which retry wins a race), exactly as on a real network; the
// simulator, not this runtime, is the bit-replayable surface. Delay
// verdicts are treated as plain deliveries here — Go channels provide no
// deterministic way to hold one message back, so delay modeling lives in
// the simulator only.

// ErrDeadRank reports that the peer never acknowledged within the retry
// budget and is presumed dead.
var ErrDeadRank = errors.New("mp: peer presumed dead (retries exhausted)")

// ErrTimeout reports that RecvTimeout's window elapsed with no matching
// message.
var ErrTimeout = errors.New("mp: receive timed out")

// ackBase maps an application tag to its acknowledgement tag. User tags
// must be >= 0, runtime collectives use -1000..-1002, so acks live at
// -2000 and below.
const ackBase = -2000

func ackTag(tag int) int { return ackBase - tag }

// SetFaults installs (or, with nil, removes) a message-fault filter. Only
// application messages — tag >= 0 — pass through it: collectives and
// acknowledgements stay reliable, so the fault-tolerance burden sits
// exactly where the experiments want it, on the task-level protocol.
func (w *World) SetFaults(links *fault.LinkFilter) {
	w.fmu.Lock()
	defer w.fmu.Unlock()
	w.links = links
	if w.seq == nil {
		w.seq = make([][]int, w.P)
		for i := range w.seq {
			w.seq[i] = make([]int, w.P)
		}
	}
}

// Kill marks rank r dead: every message addressed to it, on any tag, is
// silently discarded from now on. The rank's goroutine is not stopped —
// a killed rank should simply return from its function, as a crashed
// process would vanish.
func (w *World) Kill(r int) {
	if r < 0 || r >= w.P {
		panic(fmt.Sprintf("mp: kill rank %d of %d", r, w.P))
	}
	w.fmu.Lock()
	defer w.fmu.Unlock()
	if w.dead == nil {
		w.dead = make([]bool, w.P)
	}
	w.dead[r] = true
}

// Alive reports whether rank r has not been killed.
func (w *World) Alive(r int) bool {
	w.fmu.Lock()
	defer w.fmu.Unlock()
	return w.dead == nil || !w.dead[r]
}

// Retransmits returns the number of reliable-send retries the world has
// performed so far.
func (w *World) Retransmits() int64 {
	w.fmu.Lock()
	defer w.fmu.Unlock()
	return w.retransmits
}

func (w *World) addRetransmit(src int) {
	w.fmu.Lock()
	reg := w.metrics
	w.retransmits++
	w.fmu.Unlock()
	reg.Count(obs.CMpRetransmits, src, 1)
}

// deliveries decides how many copies of a message actually reach dst's
// inbox: 0 when dst is dead or the filter drops it, 2 when duplicated,
// 1 otherwise. Runtime-internal tags (< 0) bypass the filter but still
// vanish at a dead rank.
func (w *World) deliveries(src, dst, tag int) int {
	w.fmu.Lock()
	defer w.fmu.Unlock()
	if w.dead != nil && w.dead[dst] {
		return 0
	}
	if w.links == nil || tag < 0 {
		return 1
	}
	s := w.seq[src][dst]
	w.seq[src][dst]++
	switch w.links.Fate(src, dst, s) {
	case fault.Drop:
		return 0
	case fault.Duplicate:
		return 2
	default: // Deliver and Delayed; see the package note on delays
		return 1
	}
}

// RecvTimeout is Recv with a deadline: it blocks until a message from src
// with the given tag arrives (wildcards as in Recv) or the window
// elapses, returning ErrTimeout in the latter case. Non-matching arrivals
// are parked exactly as Recv parks them.
func (c *Comm) RecvTimeout(src, tag int, d time.Duration) (data []float64, from int, err error) {
	for i, m := range c.pending {
		if matches(m, src, tag) {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			return m.data, m.from, nil
		}
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	for {
		select {
		case m := <-c.world.inbox[c.rank]:
			if matches(m, src, tag) {
				return m.data, m.from, nil
			}
			c.pending = append(c.pending, m)
		case <-timer.C:
			return nil, 0, ErrTimeout
		}
	}
}

// ReliableOpts tunes the retry protocol; the zero value picks defaults
// suitable for tests (5ms first timeout, 4 attempts).
type ReliableOpts struct {
	Timeout    time.Duration // first-attempt ack timeout (doubles per retry)
	MaxRetries int           // total send attempts before ErrDeadRank
}

func (o ReliableOpts) withDefaults() ReliableOpts {
	if o.Timeout <= 0 {
		o.Timeout = 5 * time.Millisecond
	}
	if o.MaxRetries <= 0 {
		o.MaxRetries = 4
	}
	return o
}

// SendReliable delivers data to dst exactly once despite drops and
// duplicates: each attempt carries a per-destination message ID, the
// receiver acknowledges every copy, and the sender retries unacknowledged
// sends with exponentially growing timeouts. After MaxRetries silent
// attempts the peer is presumed dead and ErrDeadRank is returned — the
// caller's cue to reclaim whatever work the peer held.
func (c *Comm) SendReliable(dst, tag int, data []float64, opts ReliableOpts) error {
	if tag < 0 {
		panic(fmt.Sprintf("mp: reliable send needs a user tag >= 0, got %d", tag))
	}
	opts = opts.withDefaults()
	if c.nextID == nil {
		c.nextID = make([]int64, c.world.P)
	}
	id := c.nextID[dst]
	c.nextID[dst]++
	payload := append([]float64{float64(id)}, data...)

	to := opts.Timeout
	for attempt := 0; attempt < opts.MaxRetries; attempt++ {
		if attempt > 0 {
			c.world.addRetransmit(c.rank)
		}
		c.Send(dst, tag, payload)
		for {
			ack, _, err := c.RecvTimeout(dst, ackTag(tag), to)
			if err != nil {
				break // timed out: retry the send
			}
			if len(ack) == 1 && int64(ack[0]) == id {
				c.world.metricsReg().Observe(obs.HMpAttempts, c.rank, float64(attempt+1))
				return nil
			}
			// A stale ack for an earlier (duplicated) message; keep
			// draining within this attempt's window.
		}
		to *= 2
	}
	return ErrDeadRank
}

// RecvReliable receives the next application message from src (wildcard
// allowed) on tag, acknowledging every copy and discarding duplicates, so
// each SendReliable is delivered to the caller exactly once.
func (c *Comm) RecvReliable(src, tag int) (data []float64, from int) {
	if tag < 0 {
		panic(fmt.Sprintf("mp: reliable recv needs a user tag >= 0, got %d", tag))
	}
	if c.seen == nil {
		c.seen = make([]map[int64]bool, c.world.P)
	}
	for {
		m, f := c.Recv(src, tag)
		if len(m) < 1 {
			panic("mp: reliable message missing its ID header")
		}
		id := int64(m[0])
		// Acknowledge every copy: the first ack may have raced a retry.
		c.Send(f, ackTag(tag), []float64{float64(id)})
		c.world.metricsReg().Count(obs.CMpAcks, c.rank, 1)
		if c.seen[f] == nil {
			c.seen[f] = make(map[int64]bool)
		}
		if c.seen[f][id] {
			c.world.metricsReg().Count(obs.CMpDuplicates, c.rank, 1)
			continue // duplicate of an already-delivered message
		}
		c.seen[f][id] = true
		return m[1:], f
	}
}
