package serve

import (
	"container/heap"
	"sync"
)

// FairQueue is the server's priority job queue with weighted per-tenant
// fairness. Scheduling is start-time fair queuing over estimated job
// cost: each tenant owns a virtual finish time advanced by
// cost/weight whenever one of its jobs is served, and Pop always serves
// the most-lagging tenant (smallest virtual time), so a tenant flooding
// the queue only stretches its own backlog — no tenant starves. Within
// a tenant, higher Priority runs first, FIFO among equals.
//
// Pop blocks until a job or Close; the wakeup path is a 1-buffered
// channel so worker goroutines always hold a statically visible
// completion edge (the goleak check relies on it).
type FairQueue struct {
	mu      sync.Mutex
	notify  chan struct{}           // wakeup token; sends/close only under mu
	tenants map[string]*tenantQueue // guarded by mu
	order   []*tenantQueue          // guarded by mu; creation order, for deterministic scans
	weights map[string]float64      // guarded by mu; configured weights, default 1
	vtime   float64                 // guarded by mu; global virtual time
	depth   int                     // guarded by mu; queued job count
	flops   float64                 // guarded by mu; summed estimated cost of queued jobs
	closed  bool                    // guarded by mu
	seq     int64                   // guarded by mu; FIFO tie-breaker
}

// tenantQueue is one tenant's backlog plus its fair-queuing state.
type tenantQueue struct {
	name   string
	weight float64
	vfin   float64 // virtual time at which the tenant's served work finishes
	jobs   jobHeap
}

// NewFairQueue creates an empty queue. weights maps tenant names to
// relative service shares; unlisted tenants get weight 1.
func NewFairQueue(weights map[string]float64) *FairQueue {
	q := &FairQueue{
		notify:  make(chan struct{}, 1),
		tenants: map[string]*tenantQueue{},
		weights: map[string]float64{},
	}
	for t, w := range weights {
		if w > 0 {
			q.weights[t] = w
		}
	}
	return q
}

// Push enqueues a job for its tenant. It returns false when the queue is
// closed.
func (q *FairQueue) Push(j *Job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	tq := q.tenants[j.Tenant()]
	if tq == nil {
		w := q.weights[j.Tenant()]
		if w <= 0 {
			w = 1
		}
		tq = &tenantQueue{name: j.Tenant(), weight: w, vfin: q.vtime}
		q.tenants[j.Tenant()] = tq
		q.order = append(q.order, tq)
	}
	q.seq++
	j.fifoSeq = q.seq
	heap.Push(&tq.jobs, j)
	q.depth++
	q.flops += j.EstCost
	q.signalLocked()
	return true
}

// Pop blocks until a job is available and returns it, or returns false
// after Close once the queue has drained.
func (q *FairQueue) Pop() (*Job, bool) {
	for {
		j, closed := q.tryPop()
		if j != nil {
			return j, true
		}
		if closed {
			return nil, false
		}
		// Wait for a push or for Close; after close(notify) this receive
		// never blocks, so every waiter re-checks and drains out.
		<-q.notify
	}
}

// tryPop takes one scheduling decision under the lock.
func (q *FairQueue) tryPop() (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.popLocked(), q.closed
}

// popLocked serves one job from the most-lagging non-empty tenant.
// Called with mu held.
func (q *FairQueue) popLocked() *Job {
	var pick *tenantQueue
	for _, tq := range q.order {
		if tq.jobs.Len() == 0 {
			continue
		}
		if pick == nil || tq.vfin < pick.vfin || (tq.vfin == pick.vfin && tq.name < pick.name) {
			pick = tq
		}
	}
	if pick == nil {
		return nil
	}
	j := heap.Pop(&pick.jobs).(*Job)
	// An idle tenant's virtual time restarts at the global clock so a
	// long-quiet tenant cannot bank unbounded credit.
	start := pick.vfin
	if start < q.vtime {
		start = q.vtime
	}
	pick.vfin = start + j.EstCost/pick.weight
	q.vtime = start
	q.depth--
	q.flops -= j.EstCost
	if q.depth > 0 {
		// Cascade the wakeup: this Pop may have consumed the only token
		// while more jobs remain and more workers sleep.
		q.signalLocked()
	}
	return j
}

// signalLocked wakes one blocked Pop. Called with mu held, so it can
// never race Close's close(notify).
func (q *FairQueue) signalLocked() {
	if q.closed {
		return
	}
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

// Close stops the queue: Push rejects, blocked and future Pops drain the
// remaining backlog and then return false.
func (q *FairQueue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.closed = true
	close(q.notify)
}

// Depth returns the number of queued jobs.
func (q *FairQueue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.depth
}

// QueuedFlops returns the summed estimated cost of all queued jobs.
func (q *FairQueue) QueuedFlops() float64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.flops
}

// jobHeap orders a tenant's jobs by descending priority, FIFO within a
// priority level.
type jobHeap []*Job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if h[i].Spec.Priority != h[j].Spec.Priority {
		return h[i].Spec.Priority > h[j].Spec.Priority
	}
	return h[i].fifoSeq < h[j].fifoSeq
}
func (h jobHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *jobHeap) Push(x any) { *h = append(*h, x.(*Job)) }

func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return j
}
