package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"execmodels/internal/chem"
	"execmodels/internal/core"
)

func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.SpoolDir == "" {
		cfg.SpoolDir = t.TempDir()
	}
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func submit(t *testing.T, ts *httptest.Server, body string) (string, *http.Response) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode submit response: %v", err)
	}
	id, _ := out["id"].(string)
	return id, resp
}

func waitResult(t *testing.T, store *Store, id string, timeout time.Duration) *JobResult {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		res, err := store.LoadResult(id)
		if err != nil {
			t.Fatalf("LoadResult(%s): %v", id, err)
		}
		if res != nil {
			return res
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s produced no result within %v", id, timeout)
	return nil
}

// referenceEnergy runs the same SCF the server runs, directly.
func referenceEnergy(t *testing.T, spec *JobSpec) float64 {
	t.Helper()
	mol, err := spec.BuildMolecule()
	if err != nil {
		t.Fatalf("BuildMolecule: %v", err)
	}
	bs, err := chem.NewBasis(spec.Basis, mol)
	if err != nil {
		t.Fatalf("NewBasis: %v", err)
	}
	res, err := chem.RunSCF(mol, bs, chem.SCFOptions{MaxIter: 100, UseDIIS: true}, nil)
	if err != nil || !res.Converged {
		t.Fatalf("reference SCF: converged=%v err=%v", res != nil && res.Converged, err)
	}
	return res.Energy
}

func TestServerEndToEnd(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 2})
	s.Start()
	defer s.Drain()

	id, resp := submit(t, ts, `{"tenant":"alice","molecule":"water","basis":"sto-3g"}`)
	if resp.StatusCode != http.StatusAccepted || id == "" {
		t.Fatalf("submit: status=%d id=%q", resp.StatusCode, id)
	}

	res := waitResult(t, s.store, id, 30*time.Second)
	if !res.Converged || res.Error != "" {
		t.Fatalf("job result: %+v", res)
	}
	want := referenceEnergy(t, &JobSpec{Tenant: "alice", Molecule: "water", Basis: "sto-3g"})
	if math.Abs(res.Energy-want) > 1e-8 {
		t.Fatalf("served energy %.12f, reference %.12f", res.Energy, want)
	}

	// Status endpoint agrees.
	st := getStatus(t, ts, id)
	if st.State != StateDone || !st.Converged {
		t.Fatalf("status: %+v", st)
	}
	if math.Abs(st.Energy-want) > 1e-8 {
		t.Fatalf("status energy %.12f, reference %.12f", st.Energy, want)
	}
}

func getStatus(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("GET status: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET status: %d", resp.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	return st
}

func TestServerStreamDeliversProgressAndTerminalStatus(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1})
	s.Start()
	defer s.Drain()

	id, _ := submit(t, ts, `{"tenant":"alice","molecule":"water","basis":"sto-3g"}`)
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatalf("GET stream: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}

	sc := bufio.NewScanner(resp.Body)
	progress, lastIter := 0, 0
	var terminal *JobStatus
	for sc.Scan() {
		var ev streamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		switch ev.Type {
		case "progress":
			progress++
			if ev.Progress.Iter <= lastIter {
				t.Fatalf("iterations not increasing: %d after %d", ev.Progress.Iter, lastIter)
			}
			lastIter = ev.Progress.Iter
		case "status":
			terminal = ev.Status
		default:
			t.Fatalf("unknown stream event %q", ev.Type)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	if terminal == nil || terminal.State != StateDone {
		t.Fatalf("stream ended without terminal done status: %+v", terminal)
	}
	if progress == 0 {
		t.Fatal("stream delivered no progress events")
	}
}

func TestServerRejectsWithRetryAfterWhenSaturated(t *testing.T) {
	// One-job depth bound and no running workers: the second submit must
	// bounce with 429 and a Retry-After hint.
	_, ts := testServer(t, Config{Workers: 1, MaxDepth: 1})

	if _, resp := submit(t, ts, `{"tenant":"alice","molecule":"water","basis":"sto-3g"}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", resp.StatusCode)
	}
	_, resp := submit(t, ts, `{"tenant":"bob","molecule":"water","basis":"sto-3g"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated submit: %d, want 429", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatal("429 without Retry-After header")
	}
	var sec int
	if _, err := fmt.Sscanf(ra, "%d", &sec); err != nil || sec < 1 || sec > 60 {
		t.Fatalf("Retry-After %q outside 1..60", ra)
	}
}

func TestServerRejectsBadSpecs(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})

	for name, body := range map[string]string{
		"bad json":     `{"tenant":`,
		"bad molecule": `{"tenant":"a","molecule":"benzene","basis":"sto-3g"}`,
		"odd charge":   `{"tenant":"a","molecule":"water","basis":"sto-3g","charge":1}`,
	} {
		_, resp := submit(t, ts, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/nonexistent")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
	}
}

func TestServerMetricsExposition(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1})
	s.Start()
	defer s.Drain()

	id, _ := submit(t, ts, `{"tenant":"alice","molecule":"water","basis":"sto-3g"}`)
	waitResult(t, s.store, id, 30*time.Second)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteString("\n")
	}
	body := sb.String()

	for _, want := range []string{
		`execmodels_serve_jobs_submitted_total{tenant="alice",rank="0"} 1`,
		`execmodels_serve_jobs_completed_total{tenant="alice",rank="0"} 1`,
		`tenant="_server"`,
		"serve_job_latency_seconds",
		"serve_queue_wait_seconds",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if !strings.HasSuffix(body, "# EOF\n") {
		t.Errorf("metrics not terminated with # EOF")
	}
	if n := strings.Count(body, "# EOF"); n != 1 {
		t.Errorf("metrics has %d EOF terminators, want 1", n)
	}
}

// TestServerRestartResumesFromSpool is the kill/restart path in miniature:
// a spool holding a spec plus a mid-run checkpoint (exactly what a killed
// server leaves behind) must be recovered by a new server, resumed from
// the checkpointed iteration, and driven to the same converged energy as
// an uninterrupted run.
func TestServerRestartResumesFromSpool(t *testing.T) {
	dir := t.TempDir()
	spec := &JobSpec{Tenant: "acme", Molecule: "water", Basis: "sto-3g"}
	store, err := NewStore(dir)
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	const jobID = "job-000042"
	if err := store.SaveSpec(jobID, spec); err != nil {
		t.Fatalf("SaveSpec: %v", err)
	}

	// Produce a genuine iteration-2 checkpoint by interrupting a direct run.
	mol, _ := spec.BuildMolecule()
	bs, _ := chem.NewBasis(spec.Basis, mol)
	stop := errors.New("stop")
	var ck *core.SCFCheckpoint
	_, err = chem.RunSCF(mol, bs, chem.SCFOptions{MaxIter: 100, UseDIIS: true,
		OnIteration: func(p chem.SCFProgress) error {
			ck = &core.SCFCheckpoint{JobID: jobID, N: bs.NBF, Iteration: p.Iter,
				Energy: p.Energy, Density: p.D.Data}
			if p.Iter == 2 {
				return stop
			}
			return nil
		}}, nil)
	if !errors.Is(err, chem.ErrSCFInterrupted) {
		t.Fatalf("interrupt run: %v", err)
	}
	if err := store.SaveCheckpoint(jobID, ck); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}

	// "Restart": a fresh server over the same spool.
	s, err := New(Config{SpoolDir: dir, Workers: 1, Logf: t.Logf})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if s.Recovered() != 1 {
		t.Fatalf("Recovered() = %d, want 1", s.Recovered())
	}
	s.Start()
	res := waitResult(t, store, jobID, 30*time.Second)
	s.Drain()

	if !res.Converged || res.Error != "" {
		t.Fatalf("resumed job did not converge: %+v", res)
	}
	if res.ResumedFrom != 2 {
		t.Fatalf("ResumedFrom = %d, want 2", res.ResumedFrom)
	}
	want := referenceEnergy(t, spec)
	if math.Abs(res.Energy-want) > 1e-8 {
		t.Fatalf("resumed energy %.12f, uninterrupted %.12f", res.Energy, want)
	}

	// The terminal status survives yet another restart via the spool.
	s2, err := New(Config{SpoolDir: dir, Workers: 1, Logf: t.Logf})
	if err != nil {
		t.Fatalf("New (second restart): %v", err)
	}
	if s2.Recovered() != 0 {
		t.Fatalf("completed job recovered again: %d", s2.Recovered())
	}
	ts := httptest.NewServer(s2.Handler())
	defer ts.Close()
	st := getStatus(t, ts, jobID)
	if st.State != StateDone || !st.Converged {
		t.Fatalf("post-restart status: %+v", st)
	}
}

// TestServerDrainPreservesQueuedWork verifies graceful drain: with one
// worker and two jobs, draining mid-first-job leaves the untouched second
// job (and, when the first was interrupted, its checkpoint) in the spool,
// and a successor server completes everything.
func TestServerDrainPreservesQueuedWork(t *testing.T) {
	dir := t.TempDir()
	s, ts := testServer(t, Config{Workers: 1, SpoolDir: dir})
	s.Start()

	idA, _ := submit(t, ts, `{"tenant":"acme","molecule":"waters:3","basis":"sto-3g"}`)
	idB, _ := submit(t, ts, `{"tenant":"acme","molecule":"water","basis":"sto-3g"}`)

	// Wait until job A reports progress, then drain mid-run.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if st := getStatus(t, ts, idA); st.Iter >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job A never progressed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	s.Drain()

	resB, err := s.store.LoadResult(idB)
	if err != nil {
		t.Fatalf("LoadResult(B): %v", err)
	}
	if resB != nil {
		t.Fatalf("job B ran on a draining single-worker server: %+v", resB)
	}

	// Successor process over the same spool.
	s2, err := New(Config{SpoolDir: dir, Workers: 1, Logf: t.Logf})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if s2.Recovered() < 1 {
		t.Fatalf("Recovered() = %d, want >= 1", s2.Recovered())
	}
	s2.Start()
	finalA := waitResult(t, s2.store, idA, 60*time.Second)
	finalB := waitResult(t, s2.store, idB, 60*time.Second)
	s2.Drain()

	if !finalA.Converged || !finalB.Converged {
		t.Fatalf("post-restart results not converged: A=%+v B=%+v", finalA, finalB)
	}
	wantB := referenceEnergy(t, &JobSpec{Tenant: "acme", Molecule: "water", Basis: "sto-3g"})
	if math.Abs(finalB.Energy-wantB) > 1e-8 {
		t.Fatalf("B energy %.12f, reference %.12f", finalB.Energy, wantB)
	}
}

func TestServerHealthz(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode healthz: %v", err)
	}
	if out["status"] != "ok" {
		t.Fatalf("healthz body: %v", out)
	}
}
