package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"

	"execmodels/internal/chem"
)

// Spec limits: the decoder enforces these before any chemistry runs, so
// a hostile tenant cannot submit a job whose mere validation is
// expensive.
const (
	MaxSpecBytes     = 1 << 20 // request-body cap enforced by the server
	MaxPriority      = 9
	MaxInlineAtoms   = 256 // inline geometries
	MaxGeneratedSize = 64  // N in waters:N / alkane:N
	MaxTenantLen     = 64
	maxMaxIter       = 500
	// minAtomSeparation rejects (near-)coincident nuclei, whose 1/r
	// nuclear repulsion would poison every downstream energy with Inf.
	minAtomSeparation = 1e-3 // bohr
)

// AtomSpec is one atom of an inline geometry, in bohr.
type AtomSpec struct {
	Element string  `json:"element"`
	X       float64 `json:"x"`
	Y       float64 `json:"y"`
	Z       float64 `json:"z"`
}

// JobSpec is the wire format of one SCF job submission. Exactly one of
// Molecule (a library spec: water | h2 | waters:N | alkane:N) or
// Geometry (inline atoms) selects the system.
type JobSpec struct {
	Tenant   string     `json:"tenant"`
	Priority int        `json:"priority,omitempty"` // 0..9; higher runs first within the tenant
	Molecule string     `json:"molecule,omitempty"`
	Geometry []AtomSpec `json:"geometry,omitempty"`
	Basis    string     `json:"basis"`
	Charge   int        `json:"charge,omitempty"`
	MaxIter  int        `json:"maxIter,omitempty"` // 0 = server default
	Seed     int64      `json:"seed,omitempty"`    // geometry seed for generated molecules
}

// DecodeJobSpec parses and validates an untrusted job-spec document.
// Unknown fields are rejected so a typo'd option fails loudly instead of
// silently running with defaults. The returned spec passed Validate.
func DecodeJobSpec(data []byte) (*JobSpec, error) {
	if len(data) > MaxSpecBytes {
		return nil, fmt.Errorf("serve: job spec is %d bytes (cap %d)", len(data), MaxSpecBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var spec JobSpec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("serve: bad job spec JSON: %w", err)
	}
	// A second document in the body is a smuggling attempt, not a spec.
	if dec.More() {
		return nil, fmt.Errorf("serve: trailing data after job spec")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &spec, nil
}

// Validate checks every field against the serving limits without
// building any chemistry. BuildMolecule performs the (still cheap)
// molecule construction and re-validates geometry-level invariants.
func (s *JobSpec) Validate() error {
	if err := validateTenant(s.Tenant); err != nil {
		return err
	}
	if s.Priority < 0 || s.Priority > MaxPriority {
		return fmt.Errorf("serve: priority %d out of range 0..%d", s.Priority, MaxPriority)
	}
	if (s.Molecule == "") == (len(s.Geometry) == 0) {
		return fmt.Errorf("serve: exactly one of molecule or geometry must be set")
	}
	if s.Molecule != "" {
		if _, _, err := parseMoleculeSpec(s.Molecule); err != nil {
			return err
		}
	}
	if len(s.Geometry) > MaxInlineAtoms {
		return fmt.Errorf("serve: %d inline atoms (cap %d)", len(s.Geometry), MaxInlineAtoms)
	}
	for i, a := range s.Geometry {
		if chem.AtomicNumber(a.Element) == 0 {
			return fmt.Errorf("serve: geometry[%d]: unsupported element %q", i, a.Element)
		}
		for _, v := range [...]float64{a.X, a.Y, a.Z} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("serve: geometry[%d]: non-finite coordinate", i)
			}
			if math.Abs(v) > 1e4 {
				return fmt.Errorf("serve: geometry[%d]: coordinate %g out of range", i, v)
			}
		}
	}
	switch s.Basis {
	case "sto-3g", "6-31g", "6-31g*":
	default:
		return fmt.Errorf("serve: unknown basis %q (sto-3g|6-31g|6-31g*)", s.Basis)
	}
	if s.MaxIter < 0 || s.MaxIter > maxMaxIter {
		return fmt.Errorf("serve: maxIter %d out of range 0..%d", s.MaxIter, maxMaxIter)
	}
	if s.Charge < -64 || s.Charge > 64 {
		return fmt.Errorf("serve: charge %d out of range", s.Charge)
	}
	return nil
}

// validateTenant enforces the tenant-name vocabulary: short, non-empty,
// and safe to embed in metric labels and spool-directory names.
func validateTenant(t string) error {
	if t == "" {
		return fmt.Errorf("serve: tenant is required")
	}
	if len(t) > MaxTenantLen {
		return fmt.Errorf("serve: tenant name longer than %d bytes", MaxTenantLen)
	}
	for i := 0; i < len(t); i++ {
		c := t[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			return fmt.Errorf("serve: tenant name contains %q (allowed: [A-Za-z0-9_-])", c)
		}
	}
	return nil
}

// parseMoleculeSpec splits and bounds a library molecule spec.
func parseMoleculeSpec(spec string) (name string, n int, err error) {
	name, arg, hasArg := strings.Cut(spec, ":")
	switch name {
	case "water", "h2":
		if hasArg {
			return "", 0, fmt.Errorf("serve: molecule %q takes no argument", name)
		}
		return name, 0, nil
	case "waters", "alkane":
		if !hasArg {
			return "", 0, fmt.Errorf("serve: molecule %q needs a count, e.g. %s:4", name, name)
		}
		n, err := strconv.Atoi(arg)
		if err != nil || n < 1 || n > MaxGeneratedSize {
			return "", 0, fmt.Errorf("serve: bad %s count %q (1..%d)", name, arg, MaxGeneratedSize)
		}
		return name, n, nil
	default:
		return "", 0, fmt.Errorf("serve: unknown molecule %q (water|h2|waters:N|alkane:N)", name)
	}
}

// BuildMolecule constructs the molecule a validated spec describes and
// re-checks the physical invariants the electronic-structure code
// assumes: an even, positive electron count (RHF) and no coincident
// nuclei.
func (s *JobSpec) BuildMolecule() (*chem.Molecule, error) {
	var mol *chem.Molecule
	if s.Molecule != "" {
		name, n, err := parseMoleculeSpec(s.Molecule)
		if err != nil {
			return nil, err
		}
		switch name {
		case "water":
			mol = chem.Water()
		case "h2":
			mol = chem.H2(1.4)
		case "waters":
			mol = chem.WaterCluster(n, s.Seed)
		case "alkane":
			mol = chem.Alkane(n)
		}
	} else {
		mol = &chem.Molecule{Name: fmt.Sprintf("inline:%d", len(s.Geometry))}
		for _, a := range s.Geometry {
			mol.Atoms = append(mol.Atoms, chem.Atom{
				Z:   chem.AtomicNumber(a.Element),
				Pos: chem.Vec3{X: a.X, Y: a.Y, Z: a.Z},
			})
		}
		for i := 0; i < len(mol.Atoms); i++ {
			for j := i + 1; j < len(mol.Atoms); j++ {
				if mol.Atoms[i].Pos.Sub(mol.Atoms[j].Pos).Norm() < minAtomSeparation {
					return nil, fmt.Errorf("serve: atoms %d and %d are coincident", i, j)
				}
			}
		}
	}
	mol.Charge = s.Charge
	ne := mol.NumElectrons()
	if ne <= 0 {
		return nil, fmt.Errorf("serve: %d electrons after charge %d", ne, s.Charge)
	}
	if ne%2 != 0 {
		return nil, fmt.Errorf("serve: RHF requires an even electron count, got %d", ne)
	}
	return mol, nil
}

// EstimateCost returns the admission-control cost estimate for a
// validated spec, in "quartic units" (NBF⁴ — the unscreened two-electron
// work of one Fock build, the dominant term of an SCF job). It builds
// the basis (cheap: shell lists only, no integrals) and reports NBF too.
func (s *JobSpec) EstimateCost() (estFlops float64, nbf int, err error) {
	mol, err := s.BuildMolecule()
	if err != nil {
		return 0, 0, err
	}
	bs, err := chem.NewBasis(s.Basis, mol)
	if err != nil {
		return 0, 0, fmt.Errorf("serve: %w", err)
	}
	if mol.NumElectrons()/2 > bs.NBF {
		return 0, 0, fmt.Errorf("serve: %d occupied orbitals exceed %d basis functions", mol.NumElectrons()/2, bs.NBF)
	}
	n := float64(bs.NBF)
	return n * n * n * n, bs.NBF, nil
}
