package serve

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func testJob(tenant string, priority int, cost float64) *Job {
	return newJob(
		fmt.Sprintf("%s-p%d", tenant, priority),
		&JobSpec{Tenant: tenant, Priority: priority, Molecule: "water", Basis: "sto-3g"},
		cost, 7,
	)
}

func popTenants(t *testing.T, q *FairQueue, n int) []string {
	t.Helper()
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		j, ok := q.Pop()
		if !ok {
			t.Fatalf("Pop %d: queue closed early", i)
		}
		out = append(out, j.Tenant())
	}
	return out
}

func TestFairQueueInterleavesEqualWeights(t *testing.T) {
	q := NewFairQueue(nil)
	for i := 0; i < 8; i++ {
		q.Push(testJob("alice", 0, 100))
	}
	for i := 0; i < 4; i++ {
		q.Push(testJob("bob", 0, 100))
	}
	got := popTenants(t, q, 12)
	// While both tenants have backlog, service must alternate; afterwards
	// alice drains alone.
	want := []string{"alice", "bob", "alice", "bob", "alice", "bob", "alice", "bob",
		"alice", "alice", "alice", "alice"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop sequence %v, want %v", got, want)
		}
	}
}

func TestFairQueueRespectsWeights(t *testing.T) {
	q := NewFairQueue(map[string]float64{"heavy": 2, "light": 1})
	for i := 0; i < 9; i++ {
		q.Push(testJob("heavy", 0, 60))
		q.Push(testJob("light", 0, 60))
	}
	got := popTenants(t, q, 9)
	heavy := 0
	for _, tn := range got {
		if tn == "heavy" {
			heavy++
		}
	}
	// Weight 2:1 → heavy should take ~2/3 of the first 9 slots.
	if heavy < 5 || heavy > 7 {
		t.Fatalf("heavy tenant got %d of 9 slots, want ~6 (sequence %v)", heavy, got)
	}
}

func TestFairQueueNoStarvation(t *testing.T) {
	q := NewFairQueue(nil)
	for i := 0; i < 100; i++ {
		q.Push(testJob("flood", 0, 50))
	}
	q.Push(testJob("small", 0, 50))
	// The late small tenant starts at the current virtual time, so it must
	// be served within the first two pops, not after the flood drains.
	got := popTenants(t, q, 2)
	if got[0] != "small" && got[1] != "small" {
		t.Fatalf("small tenant starved: first pops were %v", got)
	}
}

func TestFairQueuePriorityWithinTenant(t *testing.T) {
	q := NewFairQueue(nil)
	q.Push(testJob("a", 0, 10))
	q.Push(testJob("a", 9, 10))
	q.Push(testJob("a", 5, 10))
	first := testJob("a", 5, 10)
	first.ID = "first-of-equals"
	q.Push(first) // same priority as the earlier 5: FIFO between them

	var ids []string
	for i := 0; i < 4; i++ {
		j, _ := q.Pop()
		ids = append(ids, fmt.Sprintf("p%d:%s", j.Spec.Priority, j.ID))
	}
	want := []string{"p9:a-p9", "p5:a-p5", "p5:first-of-equals", "p0:a-p0"}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("priority order %v, want %v", ids, want)
		}
	}
}

func TestFairQueueDepthAndFlops(t *testing.T) {
	q := NewFairQueue(nil)
	q.Push(testJob("a", 0, 100))
	q.Push(testJob("b", 0, 50))
	if d, f := q.Depth(), q.QueuedFlops(); d != 2 || f != 150 {
		t.Fatalf("depth=%d flops=%g, want 2/150", d, f)
	}
	q.Pop()
	if d, f := q.Depth(), q.QueuedFlops(); d != 1 || f != 50 {
		t.Fatalf("after pop: depth=%d flops=%g, want 1/50", d, f)
	}
}

func TestFairQueuePopBlocksUntilPush(t *testing.T) {
	q := NewFairQueue(nil)
	got := make(chan string, 1)
	go func() {
		j, ok := q.Pop()
		if !ok {
			got <- "<closed>"
			return
		}
		got <- j.Tenant()
	}()
	time.Sleep(10 * time.Millisecond) // let the Pop park
	q.Push(testJob("late", 0, 1))
	select {
	case tn := <-got:
		if tn != "late" {
			t.Fatalf("got %q", tn)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Pop never woke after Push")
	}
}

func TestFairQueueCloseDrainsBacklogThenStops(t *testing.T) {
	q := NewFairQueue(nil)
	q.Push(testJob("a", 0, 1))
	q.Push(testJob("a", 0, 1))
	q.Close()
	if q.Push(testJob("a", 0, 1)) {
		t.Fatal("Push accepted after Close")
	}
	for i := 0; i < 2; i++ {
		if _, ok := q.Pop(); !ok {
			t.Fatalf("Pop %d: backlog lost on Close", i)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop returned a job from an empty closed queue")
	}
}

// TestFairQueueConcurrentStress drives many producers and consumers at
// once: every pushed job must be popped exactly once and every consumer
// must terminate after Close (no lost wakeups, no send-on-closed panic).
func TestFairQueueConcurrentStress(t *testing.T) {
	const producers, perProducer, consumers = 8, 50, 4
	q := NewFairQueue(map[string]float64{"t0": 3, "t1": 1})

	var pushed sync.WaitGroup
	for p := 0; p < producers; p++ {
		pushed.Add(1)
		go func(p int) {
			defer pushed.Done()
			tenant := fmt.Sprintf("t%d", p%3)
			for i := 0; i < perProducer; i++ {
				q.Push(testJob(tenant, i%10, float64(1+i%7)))
			}
		}(p)
	}

	counts := make(chan int, consumers)
	var drained sync.WaitGroup
	for c := 0; c < consumers; c++ {
		drained.Add(1)
		go func() {
			defer drained.Done()
			n := 0
			for {
				if _, ok := q.Pop(); !ok {
					counts <- n
					return
				}
				n++
			}
		}()
	}

	pushed.Wait()
	q.Close()
	drained.Wait()
	close(counts)
	total := 0
	for n := range counts {
		total += n
	}
	if total != producers*perProducer {
		t.Fatalf("popped %d jobs, want %d", total, producers*perProducer)
	}
}
