package serve

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"sync"

	"execmodels/internal/obs"
)

// Metric names exported per tenant (rank 0 of a one-rank registry each)
// and globally. The per-tenant series carry a tenant="..." label.
const (
	CJobsSubmitted = "serve_jobs_submitted_total"
	CJobsCompleted = "serve_jobs_completed_total"
	CJobsFailed    = "serve_jobs_failed_total"
	CJobsRejected  = "serve_jobs_rejected_total"
	CJobsResumed   = "serve_jobs_resumed_total"
	CIterations    = "serve_scf_iterations_total"
	GFlopsServed   = "serve_flops_served"
	HJobLatency    = "serve_job_latency_seconds"
	HQueueWait     = "serve_queue_wait_seconds"

	GQueueDepth = "serve_queue_depth"
	GQueueFlops = "serve_queue_flops"
	GUptime     = "serve_uptime_seconds"
)

// Metrics is the server's per-tenant observability state: one
// internally synchronized obs.Registry per tenant plus one for
// server-wide series, all exported through obs.WriteOpenMetrics.
type Metrics struct {
	mu          sync.Mutex
	tenants     map[string]*obs.Registry // guarded by mu
	names       []string                 // guarded by mu; sorted tenant names
	servedFlops float64                  // guarded by mu; summed EstCost of completed jobs
	global      *obs.Registry
}

// NewMetrics creates an empty metric state.
func NewMetrics() *Metrics {
	return &Metrics{
		tenants: map[string]*obs.Registry{},
		global:  obs.NewRegistry(1),
	}
}

// Tenant returns (creating on first touch) the registry for one tenant.
func (m *Metrics) Tenant(name string) *obs.Registry {
	m.mu.Lock()
	defer m.mu.Unlock()
	r := m.tenants[name]
	if r == nil {
		r = obs.NewRegistry(1)
		m.tenants[name] = r
		i := sort.SearchStrings(m.names, name)
		m.names = append(m.names, "")
		copy(m.names[i+1:], m.names[i:])
		m.names[i] = name
	}
	// Handing the registry out is safe: obs.Registry is internally
	// mutex-protected; mu only guards the tenant map itself.
	return r
}

// Global returns the server-wide registry.
func (m *Metrics) Global() *obs.Registry { return m.global }

// AddServedFlops accumulates completed estimated work, the denominator
// of the admission controller's drain-rate estimate.
func (m *Metrics) AddServedFlops(f float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.servedFlops += f
}

// ServedFlops returns the summed estimated cost of completed jobs.
func (m *Metrics) ServedFlops() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.servedFlops
}

// tenantSnapshot returns the current (sorted) tenant names and their
// registries as parallel slices.
func (m *Metrics) tenantSnapshot() ([]string, []*obs.Registry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := append([]string(nil), m.names...)
	regs := make([]*obs.Registry, len(names))
	for i, n := range names {
		regs[i] = m.tenants[n]
	}
	return names, regs
}

// WriteOpenMetrics writes every tenant's registry (tenant="..." label,
// sorted tenant order) and the global registry (tenant="_server") as one
// OpenMetrics exposition. obs.WriteOpenMetrics terminates each dump with
// "# EOF", so the interior terminators are stripped and a single one
// ends the combined document.
func (m *Metrics) WriteOpenMetrics(w io.Writer) error {
	names, regs := m.tenantSnapshot()
	var buf bytes.Buffer
	for i, name := range names {
		var part bytes.Buffer
		if err := obs.WriteOpenMetrics(&part, regs[i], map[string]string{"tenant": name}); err != nil {
			return err
		}
		buf.Write(bytes.TrimSuffix(part.Bytes(), []byte("# EOF\n")))
	}
	var part bytes.Buffer
	if err := obs.WriteOpenMetrics(&part, m.global, map[string]string{"tenant": "_server"}); err != nil {
		return err
	}
	buf.Write(part.Bytes())
	if _, err := w.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("serve: metrics write: %w", err)
	}
	return nil
}
