package serve

import (
	"sync"
	"time"
)

// JobState is the lifecycle of a job inside the server.
type JobState string

const (
	StateQueued  JobState = "queued"
	StateRunning JobState = "running"
	StateDone    JobState = "done"
	StateFailed  JobState = "failed"
)

// Progress is one per-iteration SCF progress event, as streamed to
// clients and recorded in job status.
type Progress struct {
	Iter   int     `json:"iter"`
	Energy float64 `json:"energy"`
	DeltaE float64 `json:"deltaE"`
	RMSD   float64 `json:"rmsD"`
}

// JobStatus is the externally visible snapshot of a job, served by
// GET /v1/jobs/{id} and as the terminal line of the progress stream.
type JobStatus struct {
	ID          string   `json:"id"`
	Tenant      string   `json:"tenant"`
	State       JobState `json:"state"`
	Molecule    string   `json:"molecule,omitempty"`
	Basis       string   `json:"basis"`
	Priority    int      `json:"priority"`
	EstCost     float64  `json:"estCost"`
	Iter        int      `json:"iter"`
	Energy      float64  `json:"energy,omitempty"`
	Converged   bool     `json:"converged"`
	ResumedFrom int      `json:"resumedFrom,omitempty"` // checkpointed iteration a restart resumed at
	Error       string   `json:"error,omitempty"`
	QueueWaitMs float64  `json:"queueWaitMs"`
	RunMs       float64  `json:"runMs,omitempty"`
}

// Job is one submitted SCF calculation and its mutable runtime state.
type Job struct {
	ID      string
	Spec    *JobSpec
	EstCost float64 // admission/fairness cost estimate (NBF⁴ units)
	NBF     int

	fifoSeq int64 // FIFO tie-breaker, owned by FairQueue

	mu          sync.Mutex
	state       JobState        // guarded by mu
	iter        int             // guarded by mu
	energy      float64         // guarded by mu
	converged   bool            // guarded by mu
	resumedFrom int             // guarded by mu
	errMsg      string          // guarded by mu
	submitted   time.Time       // guarded by mu
	started     time.Time       // guarded by mu
	finished    time.Time       // guarded by mu
	subs        []chan Progress // guarded by mu
	done        chan struct{}   // closed when the job reaches done/failed
}

// newJob creates a queued job stamped with the submission time.
func newJob(id string, spec *JobSpec, estCost float64, nbf int) *Job {
	return &Job{
		ID:        id,
		Spec:      spec,
		EstCost:   estCost,
		NBF:       nbf,
		state:     StateQueued,
		submitted: now(),
		done:      make(chan struct{}),
	}
}

// Tenant returns the owning tenant.
func (j *Job) Tenant() string { return j.Spec.Tenant }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// markStarted transitions queued → running and returns the queue wait.
func (j *Job) markStarted(resumedFrom int) time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateRunning
	j.started = now()
	j.resumedFrom = resumedFrom
	return j.started.Sub(j.submitted)
}

// publish records one completed iteration and fans it out to
// subscribers. Slow subscribers lose events rather than stall the
// worker: each subscriber channel is buffered and sends are
// non-blocking (the terminal status line always follows, so a dropped
// intermediate event only thins the stream).
func (j *Job) publish(p Progress) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.iter = p.Iter
	j.energy = p.Energy
	for _, ch := range j.subs {
		select {
		case ch <- p:
		default:
		}
	}
}

// finish transitions to a terminal state and wakes all waiters.
func (j *Job) finish(converged bool, errMsg string) time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateDone || j.state == StateFailed {
		return 0
	}
	j.converged = converged
	j.errMsg = errMsg
	j.finished = now()
	if errMsg == "" {
		j.state = StateDone
	} else {
		j.state = StateFailed
	}
	close(j.done)
	if j.started.IsZero() {
		j.started = j.finished
	}
	return j.finished.Sub(j.submitted)
}

// requeue returns a preempted running job to the queued state (used when
// a drain interrupts it after a checkpoint; a restarted server will pick
// it back up from the spool).
func (j *Job) requeue() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateRunning {
		j.state = StateQueued
	}
}

// subscribe registers a progress channel and returns it with an
// unsubscribe function. The channel is buffered; see publish.
func (j *Job) subscribe() (<-chan Progress, func()) {
	ch := make(chan Progress, 64)
	j.mu.Lock()
	j.subs = append(j.subs, ch)
	j.mu.Unlock()
	return ch, func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		for i, c := range j.subs {
			if c == ch {
				j.subs = append(j.subs[:i], j.subs[i+1:]...)
				break
			}
		}
	}
}

// Status returns a consistent snapshot of the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:          j.ID,
		Tenant:      j.Spec.Tenant,
		State:       j.state,
		Molecule:    j.Spec.Molecule,
		Basis:       j.Spec.Basis,
		Priority:    j.Spec.Priority,
		EstCost:     j.EstCost,
		Iter:        j.iter,
		Energy:      j.energy,
		Converged:   j.converged,
		ResumedFrom: j.resumedFrom,
		Error:       j.errMsg,
	}
	if !j.started.IsZero() {
		st.QueueWaitMs = float64(j.started.Sub(j.submitted).Microseconds()) / 1e3
	}
	if !j.finished.IsZero() && !j.started.IsZero() {
		st.RunMs = float64(j.finished.Sub(j.started).Microseconds()) / 1e3
	}
	return st
}
