// Package serve is the multi-tenant SCF job server: an HTTP serving
// layer where the repository's execution models meet open-loop arrival —
// jobs of wildly different sizes submitted concurrently by many tenants.
//
// The subsystem is built from four pieces:
//
//   - a strict job-spec decoder (spec.go) turning untrusted JSON into a
//     validated molecule/basis/charge job with a cheap cost estimate;
//   - a weighted per-tenant fair priority queue (queue.go) with
//     admission control (admission.go) that rejects with Retry-After
//     when the backlog exceeds bounds;
//   - a bounded worker pool (server.go) running jobs on the wall-clock
//     Fock backend via core.ParallelFockBuilder, streaming per-iteration
//     SCF progress, and checkpointing every committed iteration in the
//     core.SCFCheckpoint spool format so a killed-and-restarted server
//     resumes mid-job (store.go);
//   - per-tenant observability (metrics.go) exported through
//     obs.WriteOpenMetrics.
//
// Unlike the simulator packages, serve runs on the real clock by design:
// the sanctioned wall-clock reads are concentrated in this file and
// individually justified to the determinism check, which covers this
// package precisely so that any new bare clock read must be argued for.
package serve

import "time"

// now is the serving layer's single wall-clock read. Everything that
// needs real time — job timestamps, latency and queue-wait histograms,
// Retry-After drain estimates — derives from this function, keeping the
// "measures real time" surface auditable exactly like core's stopwatch.
func now() time.Time {
	//lint:ignore determinism the serving layer runs on the real clock: job timestamps, latency histograms and Retry-After hints measure live traffic; they never feed the deterministic simulator outputs
	return time.Now()
}

// sinceStart returns the elapsed wall time since t, via the sanctioned
// clock read.
func sinceStart(t time.Time) time.Duration {
	return now().Sub(t)
}
