package serve

import "testing"

func TestAdmissionBounds(t *testing.T) {
	a := Admission{MaxDepth: 4, MaxQueuedFlops: 1000}

	if _, ok := a.Admit(3, 500, 400, 100); !ok {
		t.Error("rejected a job within both bounds")
	}
	if _, ok := a.Admit(4, 0, 1, 100); ok {
		t.Error("admitted past the depth bound")
	}
	if _, ok := a.Admit(0, 900, 200, 100); ok {
		t.Error("admitted past the flops bound")
	}
	// Disabled bounds admit everything.
	open := Admission{}
	if _, ok := open.Admit(1<<20, 1e18, 1e18, 0); !ok {
		t.Error("unbounded admission rejected")
	}
}

func TestAdmissionRetryAfter(t *testing.T) {
	a := Admission{MaxDepth: 1}

	// backlog 500 + job 100 at 100 units/s → 6 s.
	if retry, ok := a.Admit(1, 500, 100, 100); ok || retry != 6 {
		t.Errorf("Admit = (%d, %v), want (6, false)", retry, ok)
	}
	// Unknown drain rate → minimum hint.
	if retry, _ := a.Admit(1, 500, 100, 0); retry != 1 {
		t.Errorf("retry with unknown rate = %d, want 1", retry)
	}
	// Tiny backlog → clamped up to 1.
	if retry, _ := a.Admit(1, 1, 1, 1e9); retry != 1 {
		t.Errorf("retry clamped low = %d, want 1", retry)
	}
	// Enormous backlog → clamped down to 60.
	if retry, _ := a.Admit(1, 1e12, 1, 1); retry != 60 {
		t.Errorf("retry clamped high = %d, want 60", retry)
	}
}

// TestAdmissionColdServerFallback is the regression test for the
// first-request-after-restart bug: a full queue recovered from the spool
// plus zero served flops means drainRate is 0, and every rejected client
// used to get the minimum "retry in 1 s" hint regardless of backlog —
// turning a restart into a retry stampede. With FallbackRate set, the
// hint scales with the backlog under the estimated rate instead.
func TestAdmissionColdServerFallback(t *testing.T) {
	a := Admission{MaxDepth: 1, FallbackRate: 100}

	// backlog 500 + job 100 at the fallback 100 units/s → 6 s, exactly
	// as if 100 units/s had been measured.
	if retry, ok := a.Admit(1, 500, 100, 0); ok || retry != 6 {
		t.Errorf("cold Admit = (%d, %v), want (6, false)", retry, ok)
	}
	// A measured rate, once it exists, wins over the fallback.
	if retry, _ := a.Admit(1, 500, 100, 200); retry != 3 {
		t.Errorf("measured rate ignored: retry = %d, want 3", retry)
	}
	// Fallback still clamps like the measured path.
	if retry, _ := a.Admit(1, 1e12, 1, 0); retry != 60 {
		t.Errorf("cold retry clamped high = %d, want 60", retry)
	}
	// Zero-value FallbackRate preserves the old minimum-hint behavior.
	if retry, _ := (Admission{MaxDepth: 1}).Admit(1, 500, 100, 0); retry != 1 {
		t.Errorf("zero-value fallback retry = %d, want 1", retry)
	}
}
