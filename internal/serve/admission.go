package serve

import "math"

// Admission is the server's open-loop back-pressure policy: a job is
// admitted only while both the queue depth and the estimated queued
// work stay under their bounds. Rejections carry a Retry-After hint
// derived from the measured drain rate, so well-behaved clients back
// off proportionally to the actual backlog instead of hammering.
type Admission struct {
	// MaxDepth bounds the number of queued jobs (0 disables the bound).
	MaxDepth int
	// MaxQueuedFlops bounds the summed cost estimate of queued jobs, in
	// the same NBF⁴ units as JobSpec.EstimateCost (0 disables).
	MaxQueuedFlops float64
	// FallbackRate is the estimated service rate (cost units per second)
	// used for Retry-After hints while the measured drain rate is still
	// unknown — a cold server right after start/restart would otherwise
	// tell every rejected client "retry in 1 s" regardless of backlog.
	// 0 keeps the old minimum-hint behavior.
	FallbackRate float64
}

// Retry-After clamps: never ask a client to come back sooner than 1 s or
// later than 60 s, whatever the backlog estimate says.
const (
	minRetryAfter = 1
	maxRetryAfter = 60
)

// Admit decides whether a job with estimated cost jobFlops may join a
// queue currently at (depth, queuedFlops). drainRate is the server's
// measured service rate in cost units per second (<= 0 when unknown).
// When rejected, retryAfter is the whole-second Retry-After hint.
func (a Admission) Admit(depth int, queuedFlops, jobFlops, drainRate float64) (retryAfter int, ok bool) {
	overDepth := a.MaxDepth > 0 && depth >= a.MaxDepth
	overFlops := a.MaxQueuedFlops > 0 && queuedFlops+jobFlops > a.MaxQueuedFlops
	if !overDepth && !overFlops {
		return 0, true
	}
	rate := drainRate
	if rate <= 0 {
		// Cold server: no job has completed since (re)start, so there is
		// no measured rate yet. Fall back to the configured estimate.
		rate = a.FallbackRate
	}
	retry := float64(minRetryAfter)
	if rate > 0 {
		// Time to drain enough backlog for this job to fit.
		retry = math.Ceil((queuedFlops + jobFlops) / rate)
	}
	if retry < minRetryAfter {
		retry = minRetryAfter
	}
	if retry > maxRetryAfter {
		retry = maxRetryAfter
	}
	return int(retry), false
}
