package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"

	"execmodels/internal/core"
)

// Store is the spool directory backing checkpoint/restart: one
// sub-directory per job holding spec.json (written at admission),
// ckpt.json (rewritten atomically after checkpointed iterations, in the
// core.SCFCheckpoint format) and result.json (written once on
// completion). A job directory with a spec but no result is an
// incomplete job; a restarted server re-enqueues it and resumes from
// ckpt.json when present.
type Store struct {
	dir string
}

// JobResult is the terminal record persisted for a finished job.
type JobResult struct {
	ID          string  `json:"id"`
	Converged   bool    `json:"converged"`
	Energy      float64 `json:"energy"`
	Iterations  int     `json:"iterations"`
	ResumedFrom int     `json:"resumedFrom,omitempty"`
	Error       string  `json:"error,omitempty"`
}

// NewStore opens (creating if needed) a spool directory.
func NewStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("serve: spool dir is required")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: spool: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the spool root.
func (s *Store) Dir() string { return s.dir }

func (s *Store) jobDir(id string) string { return filepath.Join(s.dir, id) }

// SaveSpec persists a newly admitted job's spec.
func (s *Store) SaveSpec(id string, spec *JobSpec) error {
	if err := os.MkdirAll(s.jobDir(id), 0o755); err != nil {
		return fmt.Errorf("serve: spool: %w", err)
	}
	return writeFileAtomic(filepath.Join(s.jobDir(id), "spec.json"), func(f *os.File) error {
		return json.NewEncoder(f).Encode(spec)
	})
}

// SaveCheckpoint atomically replaces the job's checkpoint. The write
// goes to a temp file in the same directory and is renamed into place,
// so a crash mid-write leaves the previous checkpoint intact — the
// rollback guarantee CheckpointedPersistence models.
func (s *Store) SaveCheckpoint(id string, c *core.SCFCheckpoint) error {
	return writeFileAtomic(filepath.Join(s.jobDir(id), "ckpt.json"), func(f *os.File) error {
		return core.WriteSCFCheckpoint(f, c)
	})
}

// LoadCheckpoint returns the job's last checkpoint, or (nil, nil) when
// none was ever written.
func (s *Store) LoadCheckpoint(id string) (*core.SCFCheckpoint, error) {
	f, err := os.Open(filepath.Join(s.jobDir(id), "ckpt.json"))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("serve: spool: %w", err)
	}
	defer f.Close()
	return core.ReadSCFCheckpoint(f)
}

// SaveResult persists the terminal record and removes the now-redundant
// checkpoint.
func (s *Store) SaveResult(id string, r *JobResult) error {
	err := writeFileAtomic(filepath.Join(s.jobDir(id), "result.json"), func(f *os.File) error {
		return json.NewEncoder(f).Encode(r)
	})
	if err != nil {
		return err
	}
	// Best-effort: a stale checkpoint next to a result is never read.
	os.Remove(filepath.Join(s.jobDir(id), "ckpt.json"))
	return nil
}

// LoadResult returns a finished job's record, or (nil, nil) when the job
// never finished.
func (s *Store) LoadResult(id string) (*JobResult, error) {
	data, err := os.ReadFile(filepath.Join(s.jobDir(id), "result.json"))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("serve: spool: %w", err)
	}
	var r JobResult
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("serve: spool: bad result for %s: %w", id, err)
	}
	return &r, nil
}

// Incomplete scans the spool and returns the IDs (sorted, so recovery
// order is deterministic) of jobs with a spec but no result — the jobs a
// restarted server must resume — together with their decoded specs.
func (s *Store) Incomplete() (ids []string, specs []*JobSpec, err error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: spool: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, id := range names {
		if _, statErr := os.Stat(filepath.Join(s.jobDir(id), "result.json")); statErr == nil {
			continue
		}
		data, readErr := os.ReadFile(filepath.Join(s.jobDir(id), "spec.json"))
		if readErr != nil {
			continue // half-created job dir: nothing recoverable
		}
		spec, decErr := DecodeJobSpec(data)
		if decErr != nil {
			continue // corrupted spec: skip rather than wedge recovery
		}
		ids = append(ids, id)
		specs = append(specs, spec)
	}
	return ids, specs, nil
}

// writeFileAtomic writes via a same-directory temp file + rename.
func writeFileAtomic(path string, write func(*os.File) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("serve: spool: %w", err)
	}
	tmp := f.Name()
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("serve: spool: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("serve: spool: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: spool: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: spool: %w", err)
	}
	return nil
}
