package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"execmodels/internal/chem"
	"execmodels/internal/core"
	"execmodels/internal/linalg"
	"execmodels/internal/obs"
)

// Config tunes a Server. Zero values select the documented defaults.
type Config struct {
	// Workers is the job-level worker-pool size (default: GOMAXPROCS).
	Workers int
	// Mode is the wall-clock Fock executor per job: serial | static |
	// dynamic | stealing (default "stealing" when FockWorkers > 1, else
	// "serial").
	Mode string
	// Sched, when non-empty, selects a scheduler-seam balancing policy
	// (core.SchedulerNames: semimatching, persistence-feedback, ...)
	// instead of Mode for the per-job Fock builds. Feedback policies keep
	// per-job measured-cost state, so each job gets a private builder.
	Sched string
	// FockWorkers is the intra-job Fock-build parallelism (default 1:
	// with many concurrent jobs, job-level parallelism wins).
	FockWorkers int
	// DynBlock is the dynamic-mode NXTVAL fetch block.
	DynBlock int
	// Seed drives stealing victim selection inside Fock builds.
	Seed int64
	// SpoolDir is the checkpoint/restart spool (required).
	SpoolDir string
	// MaxDepth / MaxQueuedFlops are the admission bounds (defaults 512
	// jobs and 1e9 NBF⁴ units; negative disables a bound).
	MaxDepth       int
	MaxQueuedFlops float64
	// TenantWeights maps tenant names to fair-queue weights (default 1).
	TenantWeights map[string]float64
	// CheckpointEvery writes a checkpoint after every k-th completed SCF
	// iteration (default 1: every iteration).
	CheckpointEvery int
	// DefaultMaxIter caps SCF iterations for specs that leave MaxIter 0
	// (default 100).
	DefaultMaxIter int
	// Logf, if non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

func (c *Config) setDefaults() {
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.FockWorkers < 1 {
		c.FockWorkers = 1
	}
	if c.Mode == "" {
		if c.FockWorkers > 1 {
			c.Mode = "stealing"
		} else {
			c.Mode = "serial"
		}
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 512
	}
	if c.MaxQueuedFlops == 0 {
		c.MaxQueuedFlops = 1e9
	}
	if c.CheckpointEvery < 1 {
		c.CheckpointEvery = 1
	}
	if c.DefaultMaxIter < 1 {
		c.DefaultMaxIter = 100
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
}

// Server is the multi-tenant SCF job server: admission control in front
// of a weighted fair queue, a bounded worker pool running wall-clock
// Fock builds, per-iteration checkpointing, and per-tenant metrics.
type Server struct {
	cfg       Config
	queue     *FairQueue
	store     *Store
	metrics   *Metrics
	admission Admission
	// newBuilder builds one job's Fock builder (nil for serial mode).
	// Feedback schedulers accumulate per-job measured-cost state, so
	// builders are never shared between concurrently running jobs.
	newBuilder func() (chem.FockBuilder, error)

	jmu  sync.Mutex
	jobs map[string]*Job // guarded by jmu

	draining  chan struct{} // closed by Drain; checked between iterations
	drainOnce sync.Once
	wg        sync.WaitGroup
	idSeq     atomic.Int64
	idBase    string
	started   time.Time
	recovered int // jobs re-enqueued from the spool at startup
}

// errDraining interrupts a running SCF when the server drains; the job
// stays checkpointed in the spool for the next process.
var errDraining = errors.New("server draining")

// estFlopsPerSecond is the nominal single-worker service rate in the
// NBF⁴ cost units of JobSpec.EstimateCost, used only for cold-server
// Retry-After hints (Admission.FallbackRate) until a measured drain rate
// exists. Deliberately conservative: over-estimating the rate would make
// cold servers hand out hints that are too short.
const estFlopsPerSecond = 1e6

// New builds a Server over a spool directory, re-enqueueing every
// incomplete job found there (the checkpoint/restart path): a job killed
// mid-SCF resumes from its last committed iteration.
func New(cfg Config) (*Server, error) {
	cfg.setDefaults()
	store, err := NewStore(cfg.SpoolDir)
	if err != nil {
		return nil, err
	}
	opt := core.WallOptions{Seed: cfg.Seed, Block: cfg.DynBlock}
	newBuilder := func() (chem.FockBuilder, error) { return nil, nil } // serial
	switch {
	case cfg.Sched != "":
		newBuilder = func() (chem.FockBuilder, error) {
			return core.SchedulerFockBuilder(cfg.Sched, cfg.FockWorkers, opt)
		}
	case cfg.Mode != "serial":
		newBuilder = func() (chem.FockBuilder, error) {
			return core.ParallelFockBuilder(cfg.Mode, cfg.FockWorkers, opt)
		}
	}
	// Validate eagerly so a bad -mode/-sched fails at startup, not when
	// the first job runs.
	if _, err := newBuilder(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		queue:   NewFairQueue(cfg.TenantWeights),
		store:   store,
		metrics: NewMetrics(),
		admission: Admission{
			MaxDepth: cfg.MaxDepth, MaxQueuedFlops: cfg.MaxQueuedFlops,
			// Until the first job completes there is no measured drain
			// rate; Retry-After hints fall back to the nominal per-worker
			// service rate so a cold (just-restarted) server still scales
			// its hints with the backlog.
			FallbackRate: float64(cfg.Workers) * estFlopsPerSecond,
		},
		newBuilder: newBuilder,
		jobs:       map[string]*Job{},
		draining:   make(chan struct{}),
		started:    now(),
	}
	s.idBase = strconv.FormatInt(s.started.UnixNano(), 36)

	ids, specs, err := store.Incomplete()
	if err != nil {
		return nil, err
	}
	for i, id := range ids {
		est, nbf, err := specs[i].EstimateCost()
		if err != nil {
			cfg.Logf("serve: spool job %s unrecoverable: %v", id, err)
			continue
		}
		job := newJob(id, specs[i], est, nbf)
		s.addJob(job)
		s.queue.Push(job)
		s.recovered++
	}
	if s.recovered > 0 {
		cfg.Logf("serve: recovered %d incomplete job(s) from %s", s.recovered, store.Dir())
	}
	return s, nil
}

// Start launches the worker pool.
func (s *Server) Start() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// Recovered reports how many spool jobs were re-enqueued at startup.
func (s *Server) Recovered() int { return s.recovered }

// Drain stops the server: no new admissions, sleeping workers wake and
// exit, and running jobs are interrupted at their next iteration
// boundary — after their checkpoint hit the spool — so a successor
// process resumes them. Blocks until every worker has returned.
func (s *Server) Drain() {
	s.drainOnce.Do(func() {
		close(s.draining)
		s.queue.Close()
	})
	s.wg.Wait()
}

func (s *Server) drainingNow() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

// worker is one slot of the bounded pool: pull from the fair queue, run
// the job, repeat until the queue closes or the server drains.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		job, ok := s.queue.Pop()
		if !ok {
			return
		}
		if s.drainingNow() {
			// The job stays incomplete in the spool; only the in-memory
			// queue loses it, and a restarted server re-enqueues it.
			job.requeue()
			return
		}
		s.runJob(job)
	}
}

// runJob executes one SCF job end to end: resume from the spool
// checkpoint when one exists, stream per-iteration progress, checkpoint
// every cfg.CheckpointEvery iterations, and persist the terminal state.
func (s *Server) runJob(job *Job) {
	reg := s.metrics.Tenant(job.Tenant())

	ckpt, err := s.store.LoadCheckpoint(job.ID)
	if err != nil {
		s.cfg.Logf("serve: job %s: discarding unreadable checkpoint: %v", job.ID, err)
		ckpt = nil
	}

	mol, err := job.Spec.BuildMolecule()
	if err != nil {
		s.failJob(job, reg, err)
		return
	}
	bs, err := chem.NewBasis(job.Spec.Basis, mol)
	if err != nil {
		s.failJob(job, reg, err)
		return
	}
	if ckpt != nil && ckpt.N != bs.NBF {
		s.cfg.Logf("serve: job %s: checkpoint dimension %d != %d, restarting from scratch", job.ID, ckpt.N, bs.NBF)
		ckpt = nil
	}

	resumedFrom := 0
	if ckpt != nil {
		resumedFrom = ckpt.Iteration
	}
	wait := job.markStarted(resumedFrom)
	reg.Observe(HQueueWait, 0, wait.Seconds())
	if resumedFrom > 0 {
		reg.Count(CJobsResumed, 0, 1)
	}

	maxIter := job.Spec.MaxIter
	if maxIter == 0 {
		maxIter = s.cfg.DefaultMaxIter
	}
	opts := chem.SCFOptions{
		MaxIter: maxIter,
		UseDIIS: true,
		OnIteration: func(p chem.SCFProgress) error {
			job.publish(Progress{Iter: p.Iter, Energy: p.Energy, DeltaE: p.DeltaE, RMSD: p.RMSD})
			reg.Count(CIterations, 0, 1)
			if (p.Iter-resumedFrom)%s.cfg.CheckpointEvery == 0 {
				c := &core.SCFCheckpoint{
					JobID:     job.ID,
					Molecule:  mol.Name,
					Basis:     job.Spec.Basis,
					N:         bs.NBF,
					Iteration: p.Iter,
					Energy:    p.Energy,
					Density:   p.D.Data,
				}
				if err := s.store.SaveCheckpoint(job.ID, c); err != nil {
					s.cfg.Logf("serve: job %s: checkpoint write failed: %v", job.ID, err)
				}
			}
			if s.drainingNow() {
				return errDraining
			}
			return nil
		},
	}
	if ckpt != nil {
		opts.Resume = &chem.SCFRestart{
			Iteration: ckpt.Iteration,
			Energy:    ckpt.Energy,
			D:         linalg.NewMatrixFrom(ckpt.N, ckpt.N, ckpt.Density),
		}
	}

	builder, err := s.newBuilder()
	if err != nil {
		s.failJob(job, reg, err)
		return
	}
	res, err := chem.RunSCF(mol, bs, opts, builder)
	switch {
	case err == nil:
		latency := job.finish(res.Converged, "")
		if err := s.store.SaveResult(job.ID, &JobResult{
			ID: job.ID, Converged: res.Converged, Energy: res.Energy,
			Iterations: res.Iterations, ResumedFrom: resumedFrom,
		}); err != nil {
			s.cfg.Logf("serve: job %s: result write failed: %v", job.ID, err)
		}
		reg.Count(CJobsCompleted, 0, 1)
		reg.Observe(HJobLatency, 0, latency.Seconds())
		reg.Add(GFlopsServed, 0, job.EstCost)
		s.metrics.AddServedFlops(job.EstCost)
	case errors.Is(err, errDraining):
		// Preempted after a committed checkpoint: back to "queued" for
		// the successor process, which re-reads the spool.
		job.requeue()
	default:
		s.failJob(job, reg, err)
	}
}

// failJob records a terminal failure in memory, spool and metrics.
func (s *Server) failJob(job *Job, reg *obs.Registry, err error) {
	latency := job.finish(false, err.Error())
	if werr := s.store.SaveResult(job.ID, &JobResult{ID: job.ID, Error: err.Error()}); werr != nil {
		s.cfg.Logf("serve: job %s: result write failed: %v", job.ID, werr)
	}
	reg.Count(CJobsFailed, 0, 1)
	reg.Observe(HJobLatency, 0, latency.Seconds())
}

func (s *Server) addJob(j *Job) {
	s.jmu.Lock()
	defer s.jmu.Unlock()
	s.jobs[j.ID] = j
}

func (s *Server) getJob(id string) *Job {
	s.jmu.Lock()
	defer s.jmu.Unlock()
	return s.jobs[id]
}

func (s *Server) nextID() string {
	return fmt.Sprintf("%s-%06d", s.idBase, s.idSeq.Add(1))
}

// Handler returns the server's HTTP API:
//
//	POST /v1/jobs           submit a JobSpec → 202 {id,...} | 429 Retry-After
//	GET  /v1/jobs/{id}      job status snapshot
//	GET  /v1/jobs/{id}/stream  NDJSON per-iteration progress until terminal
//	GET  /metrics           per-tenant OpenMetrics
//	GET  /healthz           liveness + queue stats
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

// writeJSON writes a JSON response with status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

type errorBody struct {
	Error      string `json:"error"`
	RetryAfter int    `json:"retryAfterSec,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.drainingNow() {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "server draining"})
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxSpecBytes))
	if err != nil {
		writeJSON(w, http.StatusRequestEntityTooLarge, errorBody{Error: "request body too large"})
		return
	}
	spec, err := DecodeJobSpec(body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	est, nbf, err := spec.EstimateCost()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}

	drainRate := 0.0
	if up := sinceStart(s.started).Seconds(); up > 0 {
		drainRate = s.metrics.ServedFlops() / up
	}
	retry, ok := s.admission.Admit(s.queue.Depth(), s.queue.QueuedFlops(), est, drainRate)
	if !ok {
		s.metrics.Tenant(spec.Tenant).Count(CJobsRejected, 0, 1)
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		writeJSON(w, http.StatusTooManyRequests, errorBody{
			Error:      "queue full: admission control rejected the job",
			RetryAfter: retry,
		})
		return
	}

	job := newJob(s.nextID(), spec, est, nbf)
	if err := s.store.SaveSpec(job.ID, spec); err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: "spool write failed"})
		return
	}
	s.addJob(job)
	if !s.queue.Push(job) {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "server draining"})
		return
	}
	s.metrics.Tenant(spec.Tenant).Count(CJobsSubmitted, 0, 1)
	writeJSON(w, http.StatusAccepted, map[string]any{
		"id":      job.ID,
		"status":  "/v1/jobs/" + job.ID,
		"stream":  "/v1/jobs/" + job.ID + "/stream",
		"estCost": est,
		"nbf":     nbf,
	})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if job := s.getJob(id); job != nil {
		writeJSON(w, http.StatusOK, job.Status())
		return
	}
	// Jobs finished by an earlier process live only in the spool.
	if res, err := s.store.LoadResult(id); err == nil && res != nil {
		st := JobStatus{ID: id, State: StateDone, Converged: res.Converged,
			Energy: res.Energy, Iter: res.Iterations, ResumedFrom: res.ResumedFrom}
		if res.Error != "" {
			st.State = StateFailed
			st.Error = res.Error
		}
		writeJSON(w, http.StatusOK, st)
		return
	}
	writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job " + id})
}

// streamEvent is one NDJSON line of the progress stream.
type streamEvent struct {
	Type     string     `json:"type"` // "progress" | "status"
	Progress *Progress  `json:"progress,omitempty"`
	Status   *JobStatus `json:"status,omitempty"`
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	job := s.getJob(r.PathValue("id"))
	if job == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	fl, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)

	ch, cancel := job.subscribe()
	defer cancel()

	writeStatus := func() {
		st := job.Status()
		enc.Encode(streamEvent{Type: "status", Status: &st})
	}
	// Late subscribers see the current state immediately.
	writeStatus()
	if canFlush {
		fl.Flush()
	}
	for {
		select {
		case p := <-ch:
			enc.Encode(streamEvent{Type: "progress", Progress: &p})
			if canFlush {
				fl.Flush()
			}
		case <-job.Done():
			// Drain progress events published before the terminal state.
			for {
				select {
				case p := <-ch:
					enc.Encode(streamEvent{Type: "progress", Progress: &p})
					continue
				default:
				}
				break
			}
			writeStatus()
			if canFlush {
				fl.Flush()
			}
			return
		case <-r.Context().Done():
			return
		case <-s.draining:
			writeStatus()
			return
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	g := s.metrics.Global()
	g.Set(GQueueDepth, 0, float64(s.queue.Depth()))
	g.Set(GQueueFlops, 0, s.queue.QueuedFlops())
	g.Set(GUptime, 0, sinceStart(s.started).Seconds())
	w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
	if err := s.metrics.WriteOpenMetrics(w); err != nil {
		s.cfg.Logf("serve: metrics: %v", err)
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"queueDepth":  s.queue.Depth(),
		"queuedFlops": s.queue.QueuedFlops(),
		"workers":     s.cfg.Workers,
		"draining":    s.drainingNow(),
	})
}
