package serve

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestDecodeJobSpecValid(t *testing.T) {
	cases := []string{
		`{"tenant":"alice","molecule":"water","basis":"sto-3g"}`,
		`{"tenant":"bob-2","molecule":"waters:3","basis":"6-31g","priority":9,"seed":7}`,
		`{"tenant":"c_3","molecule":"alkane:2","basis":"6-31g*","maxIter":80}`,
		`{"tenant":"d","molecule":"h2","basis":"sto-3g","charge":0}`,
		`{"tenant":"e","geometry":[{"element":"H","x":0,"y":0,"z":0},{"element":"H","x":0,"y":0,"z":1.4}],"basis":"sto-3g"}`,
		`{"tenant":"f","molecule":"water","basis":"sto-3g","charge":2}`,
	}
	for _, body := range cases {
		spec, err := DecodeJobSpec([]byte(body))
		if err != nil {
			t.Errorf("DecodeJobSpec(%s): %v", body, err)
			continue
		}
		if _, err := spec.BuildMolecule(); err != nil {
			t.Errorf("BuildMolecule(%s): %v", body, err)
		}
		if est, nbf, err := spec.EstimateCost(); err != nil || est <= 0 || nbf <= 0 {
			t.Errorf("EstimateCost(%s) = (%g, %d, %v)", body, est, nbf, err)
		}
	}
}

func TestDecodeJobSpecRejects(t *testing.T) {
	cases := map[string]string{
		"empty":           ``,
		"not json":        `molecule=water`,
		"unknown field":   `{"tenant":"a","molecule":"water","basis":"sto-3g","bogus":1}`,
		"trailing doc":    `{"tenant":"a","molecule":"water","basis":"sto-3g"}{"x":1}`,
		"no tenant":       `{"molecule":"water","basis":"sto-3g"}`,
		"bad tenant char": `{"tenant":"a/../b","molecule":"water","basis":"sto-3g"}`,
		"long tenant":     `{"tenant":"` + strings.Repeat("a", 65) + `","molecule":"water","basis":"sto-3g"}`,
		"no system":       `{"tenant":"a","basis":"sto-3g"}`,
		"both systems":    `{"tenant":"a","molecule":"water","geometry":[{"element":"H"}],"basis":"sto-3g"}`,
		"bad molecule":    `{"tenant":"a","molecule":"benzene","basis":"sto-3g"}`,
		"bad count":       `{"tenant":"a","molecule":"waters:0","basis":"sto-3g"}`,
		"huge count":      `{"tenant":"a","molecule":"waters:65","basis":"sto-3g"}`,
		"water with arg":  `{"tenant":"a","molecule":"water:3","basis":"sto-3g"}`,
		"bad basis":       `{"tenant":"a","molecule":"water","basis":"cc-pvqz"}`,
		"bad priority":    `{"tenant":"a","molecule":"water","basis":"sto-3g","priority":10}`,
		"bad maxIter":     `{"tenant":"a","molecule":"water","basis":"sto-3g","maxIter":501}`,
		"huge charge":     `{"tenant":"a","molecule":"water","basis":"sto-3g","charge":65}`,
		"bad element":     `{"tenant":"a","geometry":[{"element":"Xx","x":0,"y":0,"z":0}],"basis":"sto-3g"}`,
		"far coordinate":  `{"tenant":"a","geometry":[{"element":"H","x":20000,"y":0,"z":0},{"element":"H","x":0,"y":0,"z":0}],"basis":"sto-3g"}`,
	}
	for name, body := range cases {
		if _, err := DecodeJobSpec([]byte(body)); err == nil {
			t.Errorf("%s: DecodeJobSpec(%s) accepted", name, body)
		}
	}
}

func TestBuildMoleculeRejectsPhysicalNonsense(t *testing.T) {
	// Odd electron count after charge: RHF cannot run it.
	odd := &JobSpec{Tenant: "a", Molecule: "water", Basis: "sto-3g", Charge: 1}
	if _, err := odd.BuildMolecule(); err == nil {
		t.Error("odd electron count accepted")
	}
	// Stripping all electrons.
	bare := &JobSpec{Tenant: "a", Molecule: "h2", Basis: "sto-3g", Charge: 2}
	if _, err := bare.BuildMolecule(); err == nil {
		t.Error("zero-electron system accepted")
	}
	// Coincident nuclei blow up the 1/r nuclear repulsion.
	coincident := &JobSpec{Tenant: "a", Basis: "sto-3g", Geometry: []AtomSpec{
		{Element: "H", X: 0, Y: 0, Z: 0},
		{Element: "H", X: 0, Y: 0, Z: 1e-9},
	}}
	if _, err := coincident.BuildMolecule(); err == nil {
		t.Error("coincident nuclei accepted")
	}
}

// FuzzJobSpecDecode asserts the decoder's contract on untrusted input:
// it never panics, and anything it accepts survives Validate and a JSON
// round trip.
func FuzzJobSpecDecode(f *testing.F) {
	f.Add([]byte(`{"tenant":"alice","molecule":"water","basis":"sto-3g"}`))
	f.Add([]byte(`{"tenant":"bob","molecule":"waters:4","basis":"6-31g","priority":3,"charge":2,"maxIter":99,"seed":-1}`))
	f.Add([]byte(`{"tenant":"c","geometry":[{"element":"O","x":0,"y":0,"z":0},{"element":"H","x":1.8,"y":0,"z":0}],"basis":"sto-3g"}`))
	f.Add([]byte(`{"tenant":"","molecule":"alkane:99999999999999999999","basis":""}`))
	f.Add([]byte(`{"tenant":"a","molecule":"water","basis":"sto-3g","charge":-9e99}`))
	f.Add([]byte(`[{}]`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"tenant":"a"} {"tenant":"b"}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := DecodeJobSpec(data)
		if err != nil {
			return
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("accepted spec fails Validate: %v", err)
		}
		if _, err := json.Marshal(spec); err != nil {
			t.Fatalf("accepted spec does not re-marshal: %v", err)
		}
	})
}
