package bench

import (
	"execmodels/internal/cluster"
	"execmodels/internal/core"
	"execmodels/internal/fault"
	"execmodels/internal/stats"
)

// Fault-injection experiments: F9 sweeps per-rank crash probability and
// reports each resilient model's degradation; T8 fixes a fault rate and
// itemizes where the recovery time goes. Both run the resilient
// executors (internal/core/resilient.go) against fault plans compiled
// from fault.Spec, so every cell is replayable from (scale, seed).

// faultyMachine builds the standard machine with a fault plan injected.
func (s *Suite) faultyMachine(ranks int, p *fault.Plan) *cluster.Machine {
	m := s.machine(ranks)
	m.Faults = fault.NewInjector(p, ranks)
	return m
}

// faultHorizon returns the window crashes are drawn from: most of the
// fault-free static run, so a drawn crash almost always lands inside
// every model's run.
func (s *Suite) faultHorizon(ranks int) float64 {
	base := core.ResilientStatic{}.Run(s.work, s.machine(ranks))
	return 0.8 * base.Makespan
}

// faultSeeds returns the per-scale number of independent fault plans
// each configuration is averaged over.
func (s *Suite) faultSeeds() int {
	if s.Scale == "paper" {
		return 5
	}
	return 3
}

// Figure9 reproduces the fault-injection sweep: per-rank crash
// probability versus makespan for each resilient execution model, with
// both the absolute makespan and the recovery overhead (time added over
// the model's own fault-free baseline). The paper-level claim under test:
// work stealing re-absorbs a dead rank's work on demand and so degrades
// strictly less than the static schedule, whose survivors stall at the
// barrier and then carry fixed re-assignments.
func (s *Suite) Figure9() *Table {
	s.prepare()
	ranks := s.maxRanks()
	horizon := s.faultHorizon(ranks)
	seeds := s.faultSeeds()

	t := &Table{
		ID:     "F9",
		Title:  f("crash-probability sweep, P=%d ranks, %d fault seeds per cell", ranks, seeds),
		Header: []string{"crashProb", "model", "makespan(s)", "overhead(s)", "slowdown", "crashes", "lost", "reexec"},
	}

	models := core.ResilientModels(s.Seed)
	base := make(map[string]float64, len(models))
	for _, mod := range models {
		base[mod.Name()] = mod.Run(s.work, s.machine(ranks)).Makespan
	}

	for _, p := range []float64{0, 0.1, 0.2, 0.4} {
		for _, mod := range models {
			var ms, crashes, lost, reexec float64
			for k := 0; k < seeds; k++ {
				plan := fault.Spec{
					Ranks: ranks, Horizon: horizon,
					CrashProb: p,
					Seed:      s.Seed + int64(1000*k),
				}.Build()
				res := mod.Run(s.work, s.faultyMachine(ranks, plan))
				ms += res.Makespan
				crashes += float64(res.Crashes)
				lost += float64(res.LostTasks)
				reexec += float64(res.ReExecuted)
			}
			n := float64(seeds)
			ms /= n
			over := ms - base[mod.Name()]
			if over < 1e-12 && over > -1e-12 { // float dust from identical runs
				over = 0
			}
			t.Rows = append(t.Rows, []string{
				f("%.2f", p), mod.Name(),
				f("%.4g", ms), f("%.4g", over), f("%.3f", ms/base[mod.Name()]),
				f("%.1f", crashes/n), f("%.1f", lost/n), f("%.1f", reexec/n),
			})
		}
	}
	t.Notes = append(t.Notes,
		"expected shape: overhead grows with crash probability for every model, and work "+
			"stealing's stays strictly below static block's — thieves re-absorb a dead rank's "+
			"queue while static survivors stall at the barrier timeout before redistributing",
		"persistence-ckpt pays rollback: a crash discards the whole iteration, so its overhead "+
			"jumps in iteration-sized steps; the lease-based models lose only unfinished tasks",
	)
	return t
}

// Table8 itemizes recovery overhead at a fixed fault rate: detection
// latency, time spent reclaiming, re-executed work, retransmissions and
// checkpoint cost per model, averaged (with spread) over independent
// fault plans that include crashes, stalls and message faults together.
func (s *Suite) Table8() *Table {
	s.prepare()
	ranks := s.maxRanks()
	horizon := s.faultHorizon(ranks)
	seeds := s.faultSeeds()

	t := &Table{
		ID:     "T8",
		Title:  f("recovery-overhead accounting, P=%d, crashProb=0.2, stalls and 2%% message drops", ranks),
		Header: []string{"model", "makespan(s)", "detect(s)", "recover(s)", "ckpt(s)", "reexec", "retransmits", "crashes"},
	}

	for _, mod := range core.ResilientModels(s.Seed) {
		var ms, detect, recover, ckpt, reexec, retrans, crashes []float64
		for k := 0; k < seeds; k++ {
			plan := fault.Spec{
				Ranks: ranks, Horizon: horizon,
				CrashProb: 0.2,
				StallProb: 0.2, StallMean: horizon / 20,
				Drop: 0.02, Delay: 0.02, DelayMean: 10e-6,
				Seed: s.Seed + int64(1000*k),
			}.Build()
			res := mod.Run(s.work, s.faultyMachine(ranks, plan))
			ms = append(ms, res.Makespan)
			detect = append(detect, res.DetectLatency)
			recover = append(recover, res.RecoveryTime)
			ckpt = append(ckpt, res.CheckpointTime)
			reexec = append(reexec, float64(res.ReExecuted))
			retrans = append(retrans, float64(res.Retransmits))
			crashes = append(crashes, float64(res.Crashes))
		}
		mean := func(xs []float64) float64 { return stats.Summarize(xs).Mean }
		sm := stats.Summarize(ms)
		t.Rows = append(t.Rows, []string{
			mod.Name(),
			f("%.4g±%.2g", sm.Mean, sm.Std),
			f("%.3g", mean(detect)), f("%.3g", mean(recover)), f("%.3g", mean(ckpt)),
			f("%.1f", mean(reexec)), f("%.1f", mean(retrans)), f("%.1f", mean(crashes)),
		})
	}
	t.Notes = append(t.Notes,
		"expected shape: the dynamic models detect failures faster (steal-probe / lease timeouts "+
			"fire mid-run) than the static barrier, which only notices at iteration end",
		"persistence-ckpt's overhead is dominated by checkpoint/restart traffic and whole-iteration "+
			"re-execution; the lease-based models re-execute only the tasks a corpse held",
	)
	return t
}
