package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"execmodels/internal/plot"
)

// FigureSVGs renders the figure experiments (F2–F7) as SVG line charts
// into dir, returning the files written. F1 (a histogram) and F8 (a
// two-workload table) stay textual.
func (s *Suite) FigureSVGs(dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var written []string
	type spec struct {
		id    string
		chart func(t *Table) (*plot.Chart, error)
	}
	specs := []spec{
		{"F2", func(t *Table) (*plot.Chart, error) {
			return matrixChart(t, "ranks", "simulated time (s)", true, true)
		}},
		{"F3", func(t *Table) (*plot.Chart, error) {
			return columnsChart(t, 0, []int{2, 3, 4}, "block size", "simulated time (s)", true)
		}},
		{"F4", func(t *Table) (*plot.Chart, error) {
			return matrixChart(t, "heterogeneity", "slowdown", false, false)
		}},
		{"F5", func(t *Table) (*plot.Chart, error) {
			return columnsChart(t, 0, []int{3, 6}, "ranks", "simulated time (s)", true)
		}},
		{"F6", func(t *Table) (*plot.Chart, error) {
			return matrixChart(t, "throttle probability", "slowdown", false, false)
		}},
		{"F7", func(t *Table) (*plot.Chart, error) {
			return columnsChart(t, 0, []int{1, 3}, "inter-node latency (us)", "simulated time (s)", false)
		}},
	}
	for _, sp := range specs {
		tbl, err := s.Run(sp.id)
		if err != nil {
			return written, err
		}
		chart, err := sp.chart(tbl)
		if err != nil {
			return written, fmt.Errorf("%s: %w", sp.id, err)
		}
		chart.Title = fmt.Sprintf("%s: %s", tbl.ID, tbl.Title)
		path := filepath.Join(dir, strings.ToLower(sp.id)+".svg")
		f, err := os.Create(path)
		if err != nil {
			return written, err
		}
		err = chart.WriteSVG(f)
		f.Close()
		if err != nil {
			return written, err
		}
		written = append(written, path)
	}
	return written, nil
}

// matrixChart converts a table whose header is [label, k=v, k=v, ...] and
// whose rows are [series, y, y, ...] into a chart (the F2/F4/F6 shape).
func matrixChart(t *Table, xlabel, ylabel string, logX, logY bool) (*plot.Chart, error) {
	c := &plot.Chart{XLabel: xlabel, YLabel: ylabel, LogX: logX, LogY: logY}
	xs := make([]float64, 0, len(t.Header)-1)
	for _, h := range t.Header[1:] {
		_, val, ok := strings.Cut(h, "=")
		if !ok {
			return nil, fmt.Errorf("header %q has no x value", h)
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, err
		}
		if logX && v <= 0 {
			v = logFloor(xs)
		}
		xs = append(xs, v)
	}
	for _, row := range t.Rows {
		ys := make([]float64, 0, len(row)-1)
		for _, cell := range row[1:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, err
			}
			ys = append(ys, v)
		}
		if err := c.AddSeries(row[0], xs, ys); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// columnsChart plots selected numeric columns of a table against the
// numeric column xCol; each selected column becomes a series named by its
// header.
func columnsChart(t *Table, xCol int, yCols []int, xlabel, ylabel string, logY bool) (*plot.Chart, error) {
	c := &plot.Chart{XLabel: xlabel, YLabel: ylabel, LogY: logY}
	xs := make([]float64, 0, len(t.Rows))
	for _, row := range t.Rows {
		v, err := strconv.ParseFloat(row[xCol], 64)
		if err != nil {
			return nil, err
		}
		xs = append(xs, v)
	}
	for _, yc := range yCols {
		ys := make([]float64, 0, len(t.Rows))
		for _, row := range t.Rows {
			v, err := strconv.ParseFloat(strings.TrimSuffix(row[yc], "%"), 64)
			if err != nil {
				return nil, err
			}
			if logY && v <= 0 {
				v = 1e-12
			}
			ys = append(ys, v)
		}
		if err := c.AddSeries(t.Header[yc], xs, ys); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// logFloor picks a tiny positive stand-in for zero on a log axis, one
// decade below the smallest seen value (or 0.1 if none).
func logFloor(seen []float64) float64 {
	m := 1.0
	for _, v := range seen {
		if v > 0 && v < m {
			m = v
		}
	}
	return m / 10
}
