package bench

import (
	"math"
	"testing"
)

// Regression for a real bug: stats.Percentile takes p on a 0-100 scale,
// and passing fractions (0.50 for p50) silently reports near-minimum
// values. On a skewed population the digest must satisfy the ordering
// min <= p50 <= p90 <= p99 <= max and put p50 near the true median.
func TestSummarizeLatenciesPercentileScale(t *testing.T) {
	// 99 cheap jobs at 0.1s, one straggler at 1000s: the median is 0.1s
	// but the mean (~10.1s) is dominated by the tail. The fraction-scale
	// bug reported p99 == min here.
	secs := make([]float64, 0, 100)
	for i := 0; i < 99; i++ {
		secs = append(secs, 0.1)
	}
	secs = append(secs, 1000)

	s := summarizeLatencies(secs)
	if s.N != 100 {
		t.Fatalf("N = %d, want 100", s.N)
	}
	if math.Abs(s.P50Ms-100) > 1e-9 {
		t.Errorf("p50 = %vms, want 100ms", s.P50Ms)
	}
	if s.MaxMs != 1000*1e3 {
		t.Errorf("max = %vms, want 1e6ms", s.MaxMs)
	}
	// p99 interpolates between the 99th and 100th order statistics and
	// must feel the straggler; the fraction-scale bug left it at 100ms.
	if s.P99Ms <= s.P90Ms || s.P99Ms <= 100 {
		t.Errorf("p99 = %vms does not reflect the tail (p90 = %vms)", s.P99Ms, s.P90Ms)
	}
	if !(s.P50Ms <= s.P90Ms && s.P90Ms <= s.P95Ms && s.P95Ms <= s.P99Ms && s.P99Ms <= s.MaxMs) {
		t.Errorf("percentiles not monotone: p50=%v p90=%v p95=%v p99=%v max=%v",
			s.P50Ms, s.P90Ms, s.P95Ms, s.P99Ms, s.MaxMs)
	}
	// Mean must sit between median and max on this skewed population —
	// a digest whose mean wildly exceeds its p99 band is self-contradictory.
	wantMean := (99*0.1 + 1000) / 100 * 1e3
	if math.Abs(s.MeanMs-wantMean) > 1e-6 {
		t.Errorf("mean = %vms, want %vms", s.MeanMs, wantMean)
	}
}

func TestBuildServeReportAggregates(t *testing.T) {
	samples := []ServeSample{
		{Tenant: "a", Molecule: "water", Basis: "sto-3g", EstCost: 100, SubmitSec: 0.01, LatencySec: 1, Converged: true},
		{Tenant: "a", Molecule: "water", Basis: "sto-3g", EstCost: 100, SubmitSec: 0.01, LatencySec: 2, Converged: true, Rejected: 3},
		{Tenant: "b", Molecule: "waters:2", Basis: "sto-3g", EstCost: 400, SubmitSec: 0.01, LatencySec: 4, Converged: true},
		{Tenant: "b", Molecule: "waters:2", Basis: "sto-3g", EstCost: 400, SubmitSec: 0.01, LatencySec: 8, Failed: true},
	}
	rep := BuildServeReport(samples, 4, 2, 10, map[string]float64{"a": 2, "b": 1})

	if rep.Jobs != 4 || rep.Completed != 3 || rep.Failed != 1 || rep.Rejections != 3 {
		t.Fatalf("counts: jobs=%d completed=%d failed=%d rejections=%d",
			rep.Jobs, rep.Completed, rep.Failed, rep.Rejections)
	}
	if len(rep.Tenants) != 2 || rep.Tenants[0].Tenant != "a" || rep.Tenants[1].Tenant != "b" {
		t.Fatalf("tenant rows not sorted by name: %+v", rep.Tenants)
	}
	a, b := rep.Tenants[0], rep.Tenants[1]
	// Served flops only count converged jobs; failed ones don't earn share.
	if a.ServedFlops != 200 || b.ServedFlops != 400 {
		t.Errorf("served flops a=%v b=%v, want 200/400", a.ServedFlops, b.ServedFlops)
	}
	if math.Abs(a.NormShare-100) > 1e-9 || math.Abs(b.NormShare-400) > 1e-9 {
		t.Errorf("normalized shares a=%v b=%v, want 100/400", a.NormShare, b.NormShare)
	}
	// Jain over shares {100, 400}: (500)^2 / (2 * 170000) = 0.7352...
	wantJain := 500.0 * 500.0 / (2 * (100*100 + 400*400))
	if math.Abs(rep.JainFairness-wantJain) > 1e-9 {
		t.Errorf("jain = %v, want %v", rep.JainFairness, wantJain)
	}
	if rep.Latency.N != 4 || rep.Latency.MaxMs != 8000 {
		t.Errorf("latency digest: %+v", rep.Latency)
	}
}
