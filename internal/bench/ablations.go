package bench

import (
	"runtime"
	"time"

	"execmodels/internal/chem"
	"execmodels/internal/core"
	"execmodels/internal/hypergraph"
	"execmodels/internal/linalg"
	"execmodels/internal/semimatching"
)

// AblationWallVsSim (A1) cross-validates the simulated-time executors
// against real wall-clock execution of the actual chemistry kernel on
// goroutines: the *ordering* of models (and roughly their ratios) must
// agree between the two measurement modes.
func (s *Suite) AblationWallVsSim() *Table {
	s.prepare()
	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}
	n := s.bs.NBF
	h := chem.CoreHamiltonian(s.bs, s.mol)
	d := linalg.Identity(n)

	simMachine := s.machine(workers)
	t := &Table{
		ID:     "A1",
		Title:  f("wall-clock vs simulated time, %d workers/ranks", workers),
		Header: []string{"model", "wall(s)", "wall-imbalance", "sim(s)", "sim-imbalance"},
	}
	type pair struct {
		name string
		wall func() *core.WallResult
		sim  core.Model
	}
	for _, pr := range []pair{
		{"static-block", func() *core.WallResult { return core.WallStatic(s.fock, h, d, workers) }, core.StaticBlock{}},
		{"dynamic-counter", func() *core.WallResult { return core.WallDynamic(s.fock, h, d, workers, 1) }, core.DynamicCounter{Chunk: 1}},
		{"work-stealing", func() *core.WallResult { return core.WallStealing(s.fock, h, d, workers, s.Seed) }, core.WorkStealing{Seed: s.Seed}},
	} {
		wr := pr.wall()
		sr := pr.sim.Run(s.work, simMachine)
		t.Rows = append(t.Rows, []string{
			pr.name,
			f("%.4g", wr.Elapsed.Seconds()), f("%.3f", wr.LoadImbalance()),
			f("%.4g", sr.Makespan), f("%.3f", sr.LoadImbalance()),
		})
	}
	t.Notes = append(t.Notes,
		"expected: identical ordering (static slowest) in both columns when GOMAXPROCS > 1; "+
			"absolute values differ (the simulator is not calibrated to this host); "+
			"on a single-core host the wall column degenerates to serial time and only the "+
			"imbalance columns remain comparable")
	return t
}

// AblationUniformCosts (A2) demonstrates DESIGN.md decision 2: with
// artificially uniform task costs, the differences between execution
// models collapse — irregularity is the whole story.
func (s *Suite) AblationUniformCosts() *Table {
	s.prepare()
	p := s.maxRanks()
	uniform := core.Synthetic(core.SyntheticOptions{
		NumTasks: len(s.work.Tasks), Dist: "uniform", Seed: s.Seed,
	})
	t := &Table{
		ID:     "A2",
		Title:  f("uniform-cost ablation at P=%d: real kernel costs vs flat costs", p),
		Header: []string{"model", "fock-makespan(s)", "uniform-makespan(s)"},
	}
	for _, model := range []core.Model{
		core.StaticBlock{}, core.StaticCyclic{}, core.WorkStealing{Seed: s.Seed},
	} {
		rf := model.Run(s.work, s.machine(p))
		ru := model.Run(uniform, s.machine(p))
		t.Rows = append(t.Rows, []string{
			model.Name(), f("%.4g", rf.Makespan), f("%.4g", ru.Makespan),
		})
	}
	t.Notes = append(t.Notes,
		"expected: wide spread in the fock column, near-identical uniform column")
	return t
}

// AblationStealPolicy (A3) compares steal-half vs steal-one and random vs
// most-loaded victim selection.
func (s *Suite) AblationStealPolicy() *Table {
	s.prepare()
	p := s.maxRanks()
	t := &Table{
		ID:     "A3",
		Title:  f("steal policy ablation at P=%d", p),
		Header: []string{"policy", "makespan(s)", "steals", "failed", "steal-time(s)"},
	}
	for _, ws := range []core.WorkStealing{
		{Seed: s.Seed},                                // half + random
		{Steal: core.StealOne, Seed: s.Seed},          // one + random
		{Victim: core.MostLoadedVictim, Seed: s.Seed}, // half + oracle
		{Steal: core.StealOne, Victim: core.MostLoadedVictim, Seed: s.Seed},
	} {
		res := ws.Run(s.work, s.machine(p))
		t.Rows = append(t.Rows, []string{
			ws.Name(), f("%.4g", res.Makespan),
			f("%d", res.Steals), f("%d", res.FailedSteals), f("%.3g", res.StealTime),
		})
	}
	t.Notes = append(t.Notes,
		"expected: steal-half needs far fewer steals; the oracle victim mainly cuts failed attempts")
	return t
}

// AblationLPT (A4) compares the weighted semi-matching (LPT + alternating
// refinement) against plain LPT on the same restricted bipartite graph.
func (s *Suite) AblationLPT() *Table {
	s.prepare()
	p := s.maxRanks()
	b := core.SemiMatchingLB{Seed: s.Seed}.BuildGraphForBench(s.work, p)
	est := make([]float64, len(s.work.Tasks))
	for i, task := range s.work.Tasks {
		est[i] = task.EstCost
	}
	lpt := semimatching.LPT(b, est)
	refined := semimatching.WeightedSemiMatch(b, est)
	t := &Table{
		ID:     "A4",
		Title:  f("semi-matching refinement vs plain LPT at P=%d (load units: flops)", p),
		Header: []string{"algorithm", "max-load", "imbalance(max/mean)"},
	}
	mean := s.work.TotalCost() / float64(p)
	t.Rows = append(t.Rows, []string{
		"lpt", f("%.4g", lpt.Makespan()), f("%.4f", lpt.Makespan()/mean)})
	t.Rows = append(t.Rows, []string{
		"semi-matching", f("%.4g", refined.Makespan()), f("%.4f", refined.Makespan()/mean)})
	t.Notes = append(t.Notes,
		"expected: refinement equal or better than LPT, largest wins on constrained graphs")
	return t
}

// AblationFlatFM (A5) compares the multilevel hypergraph partitioner
// against flat FM refinement (no hierarchy), in both cut quality and cost.
func (s *Suite) AblationFlatFM() *Table {
	s.prepare()
	p := s.maxRanks()
	h := core.BuildHypergraph(s.work)
	t := &Table{
		ID:     "A5",
		Title:  f("multilevel vs flat hypergraph partitioning, k=%d", p),
		Header: []string{"variant", "cut(bytes)", "imbalance", "levels", "cost(s,real)"},
	}
	for _, flat := range []bool{false, true} {
		start := time.Now()
		res := hypergraph.Partition(h, p, hypergraph.Options{Seed: s.Seed, Flat: flat})
		cost := time.Since(start).Seconds()
		name := "multilevel"
		if flat {
			name = "flat-fm"
		}
		t.Rows = append(t.Rows, []string{
			name, f("%.4g", res.Cut), f("%.4f", res.Imbalance),
			f("%d", res.Levels), f("%.3g", cost),
		})
	}
	t.Notes = append(t.Notes,
		"expected: multilevel cut at or below flat FM's; hierarchy pays off as graphs grow")
	return t
}

// AblationChunkSize (A6) sweeps the dynamic model's counter chunk size:
// the trade between counter traffic and tail imbalance.
func (s *Suite) AblationChunkSize() *Table {
	s.prepare()
	p := s.maxRanks()
	t := &Table{
		ID:     "A6",
		Title:  f("dynamic-counter chunk-size sweep at P=%d", p),
		Header: []string{"chunk", "makespan(s)", "counter-ops", "counter-wait(s)", "imbalance"},
	}
	for _, chunk := range []int{1, 2, 4, 8, 16, 32} {
		res := core.DynamicCounter{Chunk: chunk}.Run(s.work, s.machine(p))
		t.Rows = append(t.Rows, []string{
			f("%d", chunk), f("%.4g", res.Makespan),
			f("%d", res.CounterOps), f("%.3g", res.CounterWait),
			f("%.3f", res.LoadImbalance()),
		})
	}
	t.Notes = append(t.Notes,
		"expected: ops fall ~1/chunk; beyond the sweet spot tail imbalance raises the makespan again")
	return t
}
