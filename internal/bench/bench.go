// Package bench regenerates every table and figure of the evaluation
// (reconstructed from the paper's abstract; see DESIGN.md): workload
// construction, parameter sweeps, model execution and aligned-text table
// rendering. Both cmd/benchsuite and the repository's testing.B benches
// drive this package.
package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"execmodels/internal/chem"
	"execmodels/internal/cluster"
	"execmodels/internal/core"
)

// Table is one rendered experiment: an aligned text table plus notes
// recording the shape the paper reports.
type Table struct {
	ID     string // "F1", "T3", ...
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// FprintCSV renders the table as CSV (header row, data rows; notes as
// trailing '#' comment lines), for machine consumption.
func (t *Table) FprintCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{"experiment"}, t.Header...)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(append([]string{t.ID}, row...)); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "# %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	printRow(t.Header)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "# %s\n", n)
	}
	fmt.Fprintln(w)
}

// Suite prepares shared workloads once and runs individual experiments.
type Suite struct {
	Scale string // "small" (seconds, for tests) or "paper" (full sweep)
	Seed  int64

	// MaxWorkers, when > 0, caps the wall-clock benchmark's worker sweep
	// (the CI smoke run caps at 2 so it finishes in seconds).
	MaxWorkers int

	// WallScheds lists scheduler-seam policies (core.SchedulerNames) to
	// measure as extra wall-benchmark rows via core.NewWallScheduler.
	// Including "persistence-feedback" additionally runs the W3
	// measured-cost feedback experiment into the report's feedback
	// section. Empty means legacy modes only.
	WallScheds []string

	once  sync.Once
	bs    *chem.BasisSet
	mol   *chem.Molecule
	pairs []chem.ShellPair
	fock  *chem.FockWorkload
	work  *core.Workload
}

// NewSuite returns a Suite at the given scale ("small" or "paper").
func NewSuite(scale string, seed int64) *Suite {
	if scale != "small" && scale != "paper" {
		panic(fmt.Sprintf("bench: unknown scale %q", scale))
	}
	return &Suite{Scale: scale, Seed: seed}
}

// waters returns the water-cluster size for the suite's scale.
func (s *Suite) waters() int {
	if s.Scale == "paper" {
		return 16
	}
	return 4
}

// rankSweep returns the strong-scaling rank counts.
func (s *Suite) rankSweep() []int {
	if s.Scale == "paper" {
		return []int{1, 2, 4, 8, 16, 32, 64}
	}
	return []int{1, 2, 4, 8, 16}
}

// maxRanks returns the largest rank count in the sweep.
func (s *Suite) maxRanks() int {
	sw := s.rankSweep()
	return sw[len(sw)-1]
}

// prepare builds (once) the chemistry workload shared by most
// experiments: a water cluster in STO-3G, screened at 1e-9 and blocked at
// 4 bra pairs per task.
func (s *Suite) prepare() {
	s.once.Do(func() {
		s.mol = chem.WaterCluster(s.waters(), s.Seed)
		bs, err := chem.NewBasis("sto-3g", s.mol)
		if err != nil {
			panic(err)
		}
		s.bs = bs
		s.pairs = chem.SchwarzBounds(bs)
		blockSize := 4
		if s.Scale == "small" {
			// Keep a healthy tasks-per-rank ratio at the small scale's
			// lower pair count.
			blockSize = 2
		}
		s.fock = chem.BuildFockWorkloadFromPairs(bs, s.pairs, 1e-9, blockSize)
		s.work = core.FromFock(s.fock)
	})
}

// Workload returns the suite's shared chemistry workload.
func (s *Suite) Workload() *core.Workload {
	s.prepare()
	return s.work
}

// machine builds the standard homogeneous quiet machine.
func (s *Suite) machine(ranks int) *cluster.Machine {
	return cluster.New(cluster.Config{Ranks: ranks, Seed: s.Seed})
}

// Experiments lists the available experiment IDs in canonical order.
func Experiments() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// registry maps experiment IDs to their implementations.
var registry = map[string]func(*Suite) *Table{
	"F1": (*Suite).Figure1,
	"F2": (*Suite).Figure2,
	"F3": (*Suite).Figure3,
	"F4": (*Suite).Figure4,
	"F5": (*Suite).Figure5,
	"T1": (*Suite).Table1,
	"T2": (*Suite).Table2,
	"T3": (*Suite).Table3,
	"T4": (*Suite).Table4,
	"T5": (*Suite).Table5,
	"F6": (*Suite).Figure6,
	"F7": (*Suite).Figure7,
	"T7": (*Suite).Table7,
	"T6": (*Suite).Table6,
	"A1": (*Suite).AblationWallVsSim,
	"A2": (*Suite).AblationUniformCosts,
	"A3": (*Suite).AblationStealPolicy,
	"A4": (*Suite).AblationLPT,
	"A5": (*Suite).AblationFlatFM,
	"A6": (*Suite).AblationChunkSize,
	"A7": (*Suite).AblationSelfSched,
	"A8": (*Suite).AblationFMRefiner,
	"F8": (*Suite).Figure8,
	"F9": (*Suite).Figure9,
	"T8": (*Suite).Table8,
	"T9": (*Suite).Table9,
	"W1": (*Suite).WallBenchTable,
	"W3": (*Suite).WallFeedbackTable,
}

// Known reports whether id names a registered experiment — the fail-fast
// validation cmd/benchsuite applies before running anything.
func Known(id string) bool {
	_, ok := registry[id]
	return ok
}

// Gantt runs the named execution model on the suite's chemistry workload
// with tracing enabled and returns a text timeline (width characters per
// rank).
func (s *Suite) Gantt(model string, ranks, width int) (string, error) {
	res, trace, err := s.tracedRun(model, ranks)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%s\n%s", res, trace.Gantt(ranks, width)), nil
}

// ChromeTrace runs the named model with tracing and writes the Chrome
// trace-event JSON to w (open it in chrome://tracing or Perfetto).
func (s *Suite) ChromeTrace(w io.Writer, model string, ranks int) error {
	_, trace, err := s.tracedRun(model, ranks)
	if err != nil {
		return err
	}
	return trace.WriteChromeTrace(w)
}

func (s *Suite) tracedRun(model string, ranks int) (*core.Result, *cluster.Trace, error) {
	s.prepare()
	m, err := core.ModelByName(model, s.Seed)
	if err != nil {
		return nil, nil, err
	}
	machine := s.machine(ranks)
	machine.Trace = &cluster.Trace{}
	res := m.Run(s.work, machine)
	return res, machine.Trace, nil
}

// Run executes the experiment with the given ID.
func (s *Suite) Run(id string) (*Table, error) {
	f, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("bench: unknown experiment %q (have %v)", id, Experiments())
	}
	return f(s), nil
}

// All runs every experiment in canonical order.
func (s *Suite) All() []*Table {
	var out []*Table
	for _, id := range Experiments() {
		t, _ := s.Run(id)
		out = append(out, t)
	}
	return out
}

func f(format string, args ...any) string { return fmt.Sprintf(format, args...) }
