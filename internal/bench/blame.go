package bench

import (
	"fmt"
	"os"
	"path/filepath"

	"execmodels/internal/cluster"
	"execmodels/internal/core"
	"execmodels/internal/obs"
)

// Blame-analysis experiment and metric export: T9 decomposes each
// execution model's rank-seconds (makespan × P) into where the time
// actually went — compute, communication, counter traffic, stealing,
// stalls, recovery, checkpointing, dead time and idle — using the
// internal/obs registry every executor feeds. WriteMetrics dumps the raw
// registries in OpenMetrics and JSON form for external tooling.

// blameRun executes one model with tracing and returns its result and
// blame decomposition.
func (s *Suite) blameRun(mod core.Model, ranks int) (*core.Result, *obs.Blame) {
	machine := s.machine(ranks)
	machine.Trace = &cluster.Trace{}
	res := mod.Run(s.work, machine)
	return res, res.Blame(machine.Trace)
}

// blameModels returns every execution model T9 and WriteMetrics cover:
// the seven fault-free models plus the four resilient variants (run here
// without faults, so their overheads isolate protocol cost).
func (s *Suite) blameModels() []core.Model {
	return append(core.AllModels(s.Seed), core.ResilientModels(s.Seed)...)
}

// Table9 is the blame-decomposition table: for every model, the share of
// total rank-seconds spent in each activity. The shares sum to 100% by
// construction (the decomposition is exact; internal/core/blame_test.go
// asserts it to float tolerance), so the table answers "where would one
// more rank's worth of time go" directly.
func (s *Suite) Table9() *Table {
	s.prepare()
	ranks := s.maxRanks()

	t := &Table{
		ID:     "T9",
		Title:  f("blame decomposition, P=%d: %% of makespan×P per activity", ranks),
		Header: []string{"model", "makespan(s)", "compute%", "comm%", "counter%", "steal%", "stall%", "recover%", "ckpt%", "dead%", "idle%", "critical(s)"},
	}

	for _, mod := range s.blameModels() {
		_, b := s.blameRun(mod, ranks)
		total := b.Makespan * float64(b.Ranks)
		pct := func(name string) string {
			if total == 0 {
				return "0.00"
			}
			return f("%.2f", 100*b.Components[name]/total)
		}
		row := []string{mod.Name(), f("%.4g", b.Makespan)}
		for _, name := range obs.ComponentOrder() { // ends with "idle"
			row = append(row, pct(name))
		}
		row = append(row, f("%.4g", b.CriticalPathSeconds))
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"expected shape: static models trade idle (imbalance) for zero coordination; dynamic "+
			"models convert that idle into counter/steal overhead; the resilient variants add "+
			"nothing here because no faults are injected — their columns isolate protocol cost",
		"compute% is identical work divided by makespan×P, so it doubles as a parallel-efficiency "+
			"column: higher compute% = less wasted machine",
	)
	return t
}

// WriteMetrics runs every blame model at the given rank count and writes,
// per model, `<name>.om.txt` (the OpenMetrics dump of its registry) and
// `<name>.summary.json` (the machine-readable run summary), plus a single
// `blame.txt` with the human-readable blame tables. Output is a pure
// function of (scale, seed, ranks) — byte-identical across runs.
func (s *Suite) WriteMetrics(dir string, ranks int) error {
	s.prepare()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	blamePath := filepath.Join(dir, "blame.txt")
	bf, err := os.Create(blamePath)
	if err != nil {
		return err
	}
	defer bf.Close()

	for _, mod := range s.blameModels() {
		res, b := s.blameRun(mod, ranks)

		om, err := os.Create(filepath.Join(dir, mod.Name()+".om.txt"))
		if err != nil {
			return err
		}
		werr := obs.WriteOpenMetrics(om, res.Obs, map[string]string{"model": mod.Name()})
		if cerr := om.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}

		sj, err := os.Create(filepath.Join(dir, mod.Name()+".summary.json"))
		if err != nil {
			return err
		}
		werr = res.Summary(b).WriteJSON(sj)
		if cerr := sj.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}

		if _, err := fmt.Fprintf(bf, "%s\n", b.Table()); err != nil {
			return err
		}
	}
	return nil
}
