package bench

import (
	"bytes"
	"os"
	"strconv"
	"strings"
	"testing"
)

// sharedSuite is reused across tests: workload preparation (Schwarz
// screening) dominates per-suite cost.
var sharedSuite = NewSuite("small", 1)

func getCell(t *testing.T, tbl *Table, row, col int) string {
	t.Helper()
	if row >= len(tbl.Rows) || col >= len(tbl.Rows[row]) {
		t.Fatalf("%s: no cell (%d,%d): %+v", tbl.ID, row, col, tbl.Rows)
	}
	return tbl.Rows[row][col]
}

func cellFloat(t *testing.T, tbl *Table, row, col int) float64 {
	t.Helper()
	s := strings.TrimSuffix(getCell(t, tbl, row, col), "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("%s: cell (%d,%d) = %q not numeric: %v", tbl.ID, row, col, s, err)
	}
	return v
}

func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in short mode")
	}
	for _, id := range Experiments() {
		tbl, err := sharedSuite.Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tbl.Rows) == 0 {
			t.Errorf("%s: empty table", id)
		}
		for _, row := range tbl.Rows {
			if len(row) != len(tbl.Header) {
				t.Errorf("%s: ragged row %v vs header %v", id, row, tbl.Header)
			}
		}
		var buf bytes.Buffer
		tbl.Fprint(&buf)
		if !strings.Contains(buf.String(), tbl.ID) {
			t.Errorf("%s: rendering lost the ID", id)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := sharedSuite.Run("Z9"); err == nil {
		t.Fatal("expected error")
	}
}

func TestNewSuiteBadScalePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSuite("huge", 1)
}

// T1's claim must reproduce: stealing a solid improvement over static.
func TestTable1HeadlineShape(t *testing.T) {
	tbl := sharedSuite.Table1()
	static := cellFloat(t, tbl, 0, 1)
	steal := cellFloat(t, tbl, 1, 1)
	if steal >= 0.8*static {
		t.Errorf("stealing %v vs static %v: improvement too small", steal, static)
	}
}

// T3: semi-matching within 30%% of hypergraph makespan; cheaper schedule.
func TestTable3Shape(t *testing.T) {
	tbl := sharedSuite.Table3()
	smMk := cellFloat(t, tbl, 1, 1)
	hgMk := cellFloat(t, tbl, 2, 1)
	if smMk > 1.3*hgMk {
		t.Errorf("semi-matching %v much worse than hypergraph %v", smMk, hgMk)
	}
	smCost := cellFloat(t, tbl, 1, 4)
	hgCost := cellFloat(t, tbl, 2, 4)
	if smCost > hgCost {
		t.Errorf("semi-matching schedule cost %v above hypergraph %v", smCost, hgCost)
	}
}

// T4: the cost gap must grow with task count.
func TestTable4CostGap(t *testing.T) {
	if testing.Short() {
		t.Skip("T4 builds large synthetic workloads")
	}
	tbl := sharedSuite.Table4()
	last := len(tbl.Rows) - 1
	ratio := cellFloat(t, tbl, last, 3)
	if ratio < 3 {
		t.Errorf("hypergraph only %vx more expensive at the largest size", ratio)
	}
}

// F1: the workload must be irregular.
func TestFigure1Irregular(t *testing.T) {
	tbl := sharedSuite.Figure1()
	if len(tbl.Notes) == 0 || !strings.Contains(tbl.Notes[0], "max/mean") {
		t.Fatalf("F1 notes missing: %v", tbl.Notes)
	}
}

// F2: every model's makespan must decrease from P=1 to the largest P.
func TestFigure2Scales(t *testing.T) {
	tbl := sharedSuite.Figure2()
	for _, row := range tbl.Rows {
		first, err1 := strconv.ParseFloat(row[1], 64)
		last, err2 := strconv.ParseFloat(row[len(row)-1], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("bad row %v", row)
		}
		if last >= first {
			t.Errorf("%s does not scale: P=1 %v -> Pmax %v", row[0], first, last)
		}
	}
}

// F4: work stealing's slowdown at max heterogeneity must be below
// static-cyclic's. (static-cyclic is the clean comparison: its loads are
// balanced at h=0, so its slowdown is ~1/min-speed. static-block's own
// baseline bottleneck rank confounds its slowdown ratio — that caveat is
// part of the figure's story, not an assertable monotone claim.)
func TestFigure4Shape(t *testing.T) {
	tbl := sharedSuite.Figure4()
	var staticSlow, stealSlow float64
	for _, row := range tbl.Rows {
		v, err := strconv.ParseFloat(row[len(row)-1], 64)
		if err != nil {
			t.Fatal(err)
		}
		switch row[0] {
		case "static-cyclic":
			staticSlow = v
		case "work-stealing":
			stealSlow = v
		}
	}
	if stealSlow >= staticSlow {
		t.Errorf("stealing slowdown %v not below static-cyclic %v", stealSlow, staticSlow)
	}
}

// F5: counter wait must grow with rank count.
func TestFigure5ContentionGrows(t *testing.T) {
	tbl := sharedSuite.Figure5()
	first := cellFloat(t, tbl, 0, 2)
	last := cellFloat(t, tbl, len(tbl.Rows)-1, 2)
	if last <= first {
		t.Errorf("counter wait did not grow: %v -> %v", first, last)
	}
}

// T6: persistence models must improve from their first to their last
// iteration, while static-block stays flat and bad.
func TestTable6Shape(t *testing.T) {
	tbl := sharedSuite.Table6()
	byModel := map[string][]float64{}
	for _, row := range tbl.Rows {
		first, err1 := strconv.ParseFloat(row[2], 64)
		last, err2 := strconv.ParseFloat(row[3], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("bad row %v", row)
		}
		byModel[row[0]] = []float64{first, last}
	}
	for _, name := range []string{"persistence", "persistence-sm"} {
		v, ok := byModel[name]
		if !ok {
			t.Fatalf("missing %s in T6", name)
		}
		if v[1] >= v[0] {
			t.Errorf("%s did not improve: first %v last %v", name, v[0], v[1])
		}
	}
	sb := byModel["static-block"]
	if sb[1] != sb[0] {
		t.Errorf("static-block should be flat: %v", sb)
	}
	// Persistence final iteration must beat static-block's.
	if byModel["persistence"][1] >= sb[1] {
		t.Errorf("persistence final %v not below static %v", byModel["persistence"][1], sb[1])
	}
}

// F7: hierarchical stealing must reduce the remote-steal percentage at
// every latency.
func TestFigure7Shape(t *testing.T) {
	tbl := sharedSuite.Figure7()
	for _, row := range tbl.Rows {
		flatPct := strings.TrimSuffix(row[2], "%")
		hierPct := strings.TrimSuffix(row[4], "%")
		fv, err1 := strconv.ParseFloat(flatPct, 64)
		hv, err2 := strconv.ParseFloat(hierPct, 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("bad percentages in row %v", row)
		}
		if hv >= fv {
			t.Errorf("latency %s: hier remote %v%% not below flat %v%%", row[0], hv, fv)
		}
	}
}

func TestChromeTraceAPI(t *testing.T) {
	var buf bytes.Buffer
	if err := sharedSuite.ChromeTrace(&buf, "dynamic-counter", 4); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"ph":"X"`) {
		t.Fatalf("not a Chrome trace: %.100s", buf.String())
	}
	if err := sharedSuite.ChromeTrace(&buf, "nope", 4); err == nil {
		t.Fatal("expected error for unknown model")
	}
}

func TestGanttAPI(t *testing.T) {
	out, err := sharedSuite.Gantt("work-stealing", 4, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "rank   0") || !strings.Contains(out, "#") {
		t.Fatalf("gantt output malformed:\n%s", out)
	}
	if _, err := sharedSuite.Gantt("nope", 4, 50); err == nil {
		t.Fatal("expected error for unknown model")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		ID:     "X",
		Title:  "demo",
		Header: []string{"a", "long-header"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"note"},
	}
	var buf bytes.Buffer
	tbl.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"== X: demo ==", "long-header", "333", "# note"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFigureSVGs(t *testing.T) {
	if testing.Short() {
		t.Skip("renders every figure")
	}
	dir := t.TempDir()
	files, err := sharedSuite.FigureSVGs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 6 {
		t.Fatalf("wrote %d figures: %v", len(files), files)
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(data), "<svg") || !strings.Contains(string(data), "polyline") {
			t.Errorf("%s does not look like a chart", f)
		}
	}
}

func TestCSVRendering(t *testing.T) {
	tbl := &Table{
		ID:     "X",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}},
		Notes:  []string{"a note"},
	}
	var buf bytes.Buffer
	if err := tbl.FprintCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"experiment,a,b", "X,1,2", "# a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in %q", want, out)
		}
	}
}

func TestExperimentsSorted(t *testing.T) {
	ids := Experiments()
	if len(ids) < 16 {
		t.Fatalf("expected 16 experiments, got %v", ids)
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatalf("not sorted: %v", ids)
		}
	}
}

// F9: at every non-zero crash probability, work stealing's recovery
// overhead (time added over its own fault-free base) must stay strictly
// below static block's, and the p=0 rows must show zero overhead — the
// resilient executors are pure bookkeeping on a reliable machine.
func TestFigure9Shape(t *testing.T) {
	tbl := sharedSuite.Figure9()
	// Rows come in groups of four models per probability, in
	// ResilientModels order: static, counter, stealing, ckpt.
	const perProb = 4
	if len(tbl.Rows)%perProb != 0 {
		t.Fatalf("F9 row count %d not a multiple of %d", len(tbl.Rows), perProb)
	}
	for g := 0; g*perProb < len(tbl.Rows); g++ {
		base := g * perProb
		prob := cellFloat(t, tbl, base, 0)
		staticOver := cellFloat(t, tbl, base, 3)
		stealOver := cellFloat(t, tbl, base+2, 3)
		if prob == 0 {
			for i := 0; i < perProb; i++ {
				if over := cellFloat(t, tbl, base+i, 3); over != 0 {
					t.Errorf("p=0 row %d has nonzero overhead %v", base+i, over)
				}
			}
			continue
		}
		if stealOver >= staticOver {
			t.Errorf("p=%.2f: stealing overhead %v not strictly below static %v", prob, stealOver, staticOver)
		}
	}
}

// T8: the dynamic models must detect failures faster than the barrier-
// synchronized static schedule, and only the checkpointed model pays
// checkpoint traffic.
func TestTable8Shape(t *testing.T) {
	tbl := sharedSuite.Table8()
	if len(tbl.Rows) != 4 {
		t.Fatalf("T8 rows = %d, want 4", len(tbl.Rows))
	}
	staticDetect := cellFloat(t, tbl, 0, 2)
	counterDetect := cellFloat(t, tbl, 1, 2)
	stealDetect := cellFloat(t, tbl, 2, 2)
	if counterDetect >= staticDetect || stealDetect >= staticDetect {
		t.Errorf("dynamic detection (%v, %v) not below static %v", counterDetect, stealDetect, staticDetect)
	}
	for i := 0; i < 3; i++ {
		if ck := cellFloat(t, tbl, i, 4); ck != 0 {
			t.Errorf("row %d: non-checkpointing model reports checkpoint time %v", i, ck)
		}
	}
	if ck := cellFloat(t, tbl, 3, 4); ck <= 0 {
		t.Errorf("persistence-ckpt reports no checkpoint time")
	}
}
