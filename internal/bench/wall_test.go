package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"execmodels/internal/chem"
	"execmodels/internal/core"
)

// The committed wall-clock benchmark report must match the schema
// exactly: strict decoding rejects leftover fields from older layouts
// (the free-text single-core note was replaced by the machine-checkable
// degenerate flag), and every row's degenerate marking must be consistent
// with the recorded CPU count — rows that oversubscribed the host must
// say so, and rows that did not must not.
func TestWallBenchCommittedSchema(t *testing.T) {
	raw, err := os.ReadFile("../../BENCH_wall.json")
	if err != nil {
		t.Fatalf("committed benchmark report missing (regenerate with `make bench-wall`): %v", err)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var rep WallBenchReport
	if err := dec.Decode(&rep); err != nil {
		t.Fatalf("BENCH_wall.json does not match the WallBenchReport schema: %v", err)
	}
	if rep.GOMAXPROCS < 1 || rep.NumCPU < 1 {
		t.Fatalf("gomaxprocs=%d numcpu=%d", rep.GOMAXPROCS, rep.NumCPU)
	}
	if len(rep.Rows) == 0 {
		t.Fatal("no rows")
	}
	if len(rep.Quartets) == 0 {
		t.Fatal("no quartet statistics")
	}
	for _, q := range rep.Quartets {
		if q.UniqueQuartets < q.NaiveQuartets/8 || q.UniqueQuartets > q.NaiveQuartets {
			t.Errorf("%s: unique quartets %d outside [naive/8, naive] for naive %d",
				q.Molecule, q.UniqueQuartets, q.NaiveQuartets)
		}
		if q.Surviving <= 0 || q.Surviving > q.UniqueQuartets {
			t.Errorf("%s: surviving %d outside (0, %d]", q.Molecule, q.Surviving, q.UniqueQuartets)
		}
	}
	for i, r := range rep.Rows {
		if r.Workers < 1 || r.PairBlock < 1 || r.Tasks < 1 {
			t.Errorf("row %d (%s/%s): workers=%d pair_block=%d tasks=%d",
				i, r.Molecule, r.Mode, r.Workers, r.PairBlock, r.Tasks)
		}
		if r.NsPerTask <= 0 || r.Speedup <= 0 {
			t.Errorf("row %d (%s/%s): ns_per_task=%g speedup=%g",
				i, r.Molecule, r.Mode, r.NsPerTask, r.Speedup)
		}
		if want := r.Workers > rep.NumCPU; r.Degenerate != want {
			t.Errorf("row %d (%s/%s workers=%d, numcpu=%d): degenerate=%v, want %v",
				i, r.Molecule, r.Mode, r.Workers, rep.NumCPU, r.Degenerate, want)
		}
	}

	// The committed report carries the W3 feedback section (make
	// bench-wall runs benchsuite with the default -wall-sched list, which
	// includes persistence-feedback) and the seam-policy rows it promises.
	seamModes := map[string]bool{}
	for _, r := range rep.Rows {
		seamModes[r.Mode] = true
	}
	for _, pol := range []string{"semimatching", "hypergraph"} {
		if !seamModes[pol] {
			t.Errorf("no %s scheduler-seam rows (regenerate with `make bench-wall`)", pol)
		}
	}
	if len(rep.Feedback) == 0 {
		t.Fatal("no W3 feedback section (regenerate with `make bench-wall`)")
	}
	for i, r := range rep.Feedback {
		if r.Molecule != wallFeedbackMolecule {
			t.Errorf("feedback row %d: molecule %q, want %q", i, r.Molecule, wallFeedbackMolecule)
		}
		if r.Policy != "lpt" && r.Policy != "persistence-feedback" {
			t.Errorf("feedback row %d: unknown policy %q", i, r.Policy)
		}
		if r.Workers < 2 || r.Iteration < 1 || r.Seconds <= 0 || r.MaxBusySeconds <= 0 || r.Imbalance < 1 {
			t.Errorf("feedback row %d implausible: %+v", i, r)
		}
	}
	// The W3 acceptance gate: once measurements exist (iteration 2 on),
	// the feedback policy's mean makespan must beat estimate-only LPT's.
	// Host noise can flip this on an oversubscribed regeneration run —
	// if it does, re-run `make bench-wall` on a quiet machine.
	gain := wallFeedbackGain(rep.Feedback)
	lpt, fb := gain["lpt"], gain["persistence-feedback"]
	if !(fb > 0 && lpt > 0 && fb < lpt) {
		t.Errorf("iteration-2+ mean makespan: feedback %.4fs vs estimate-only %.4fs — feedback must win", fb, lpt)
	}
}

// The degenerate flag is computed, not hand-written: any parallel row
// built for more workers than the host has CPUs must carry it.
func TestWallParallelRowDegenerateFlag(t *testing.T) {
	fw := wallTestWorkload(t)
	res := &core.WallResult{Elapsed: time.Millisecond}
	ncpu := runtime.NumCPU()
	if row := wallParallelRow("m", "static", fw, res, ncpu, 4, 0, time.Millisecond, 1); row.Degenerate {
		t.Errorf("workers=NumCPU row marked degenerate")
	}
	if row := wallParallelRow("m", "static", fw, res, ncpu+1, 4, 0, time.Millisecond, 1); !row.Degenerate {
		t.Errorf("workers=NumCPU+1 row not marked degenerate")
	}
}

// MaxWorkers caps the sweep for the CI smoke run without reordering it.
func TestWallWorkersCap(t *testing.T) {
	s := NewSuite("small", 1)
	full := s.wallWorkers()
	if len(full) < 2 || full[0] != 1 {
		t.Fatalf("unexpected default sweep %v", full)
	}
	s.MaxWorkers = 2
	capped := s.wallWorkers()
	if len(capped) == 0 {
		t.Fatal("capped sweep empty")
	}
	for _, w := range capped {
		if w > 2 {
			t.Errorf("sweep %v exceeds MaxWorkers=2", capped)
		}
	}
	if capped[0] != 1 || capped[len(capped)-1] != 2 {
		t.Errorf("capped sweep %v, want [1 2]", capped)
	}
}

func wallTestWorkload(t *testing.T) *chem.FockWorkload {
	t.Helper()
	bs, err := chem.NewBasis("sto-3g", chem.Water())
	if err != nil {
		t.Fatal(err)
	}
	return chem.BuildFockWorkload(bs, 1e-9, 4)
}

// Sanity: the row constructor's arithmetic (speedup relative to the
// serial-arena sweep) and telemetry plumbing.
func TestWallParallelRowArithmetic(t *testing.T) {
	fw := wallTestWorkload(t)
	res := &core.WallResult{Elapsed: 2 * time.Millisecond, Steals: 3, StealRetry: 5, CounterOps: 7}
	row := wallParallelRow("m", "stealing", fw, res, 1, 4, 1.5, 4*time.Millisecond, 0)
	if row.Speedup != 2 {
		t.Errorf("speedup = %g, want 2 (4ms serial / 2ms parallel)", row.Speedup)
	}
	if row.Steals != 3 || row.StealRetry != 5 || row.CounterOps != 7 {
		t.Errorf("telemetry not plumbed: %+v", row)
	}
	if row.AllocsPerTask != 1.5 || row.Tasks != len(fw.Tasks) {
		t.Errorf("allocs/tasks not plumbed: %+v", row)
	}
}
