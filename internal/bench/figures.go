package bench

import (
	"execmodels/internal/chem"
	"execmodels/internal/cluster"
	"execmodels/internal/core"
	"execmodels/internal/stats"
)

// Figure1 reproduces the task-cost distribution of the Fock-build kernel:
// a log-spaced histogram of per-task flop estimates. The paper's premise —
// a strongly irregular, heavy-tailed cost profile — must be visible here.
func (s *Suite) Figure1() *Table {
	s.prepare()
	costs := make([]float64, len(s.work.Tasks))
	for i, t := range s.work.Tasks {
		costs[i] = t.Cost
	}
	sum := stats.Summarize(costs)
	t := &Table{
		ID:     "F1",
		Title:  f("task-cost distribution, %s, %d tasks", s.work.Name, len(costs)),
		Header: []string{"cost-bucket-lo(flop)", "cost-bucket-hi(flop)", "tasks", "bar"},
	}
	for _, b := range stats.Histogram(costs, 12) {
		bar := ""
		for i := 0; i < b.Count*60/len(costs)+1 && b.Count > 0; i++ {
			bar += "#"
		}
		t.Rows = append(t.Rows, []string{
			f("%.3g", b.Lo), f("%.3g", b.Hi), f("%d", b.Count), bar,
		})
	}
	t.Notes = append(t.Notes,
		f("max/mean = %.2f, cv = %.2f, gini = %.2f — irregular, as the paper's kernel requires",
			sum.MaxOverMean, sum.CoefficientOfVar, sum.Gini))
	return t
}

// Figure2 reproduces the strong-scaling study: simulated execution time
// versus rank count for every execution model.
func (s *Suite) Figure2() *Table {
	s.prepare()
	t := &Table{
		ID:     "F2",
		Title:  f("strong scaling, %s (%d tasks)", s.work.Name, len(s.work.Tasks)),
		Header: []string{"model"},
	}
	ranks := s.rankSweep()
	for _, p := range ranks {
		t.Header = append(t.Header, f("P=%d", p))
	}
	for _, model := range core.AllModels(s.Seed) {
		row := []string{model.Name()}
		for _, p := range ranks {
			res := model.Run(s.work, s.machine(p))
			row = append(row, f("%.4g", res.Makespan))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"expected shape: static-block flattens early (triangular pair costs); "+
			"work stealing and the balanced assignments track the ideal until task starvation")
	return t
}

// Figure3 reproduces the granularity sweep: execution time versus
// work-unit block size. The paper's lesson about "the correct balance
// between available work units and system and runtime overheads" shows up
// as U-shaped curves with model-dependent minima.
func (s *Suite) Figure3() *Table {
	s.prepare()
	// Make runtime overheads visible at this scale: a slower network and a
	// costlier counter sharpen the small-block side of the U.
	mk := func(p int) *cluster.Machine {
		return cluster.New(cluster.Config{
			Ranks:          p,
			Seed:           s.Seed,
			Latency:        10e-6,
			CounterService: 4e-6,
			TaskOverhead:   20e-6,
		})
	}
	p := s.maxRanks()
	blockSizes := []int{1, 2, 4, 8, 16, 32, 64}
	t := &Table{
		ID:     "F3",
		Title:  f("granularity sweep at P=%d: time vs bra-pair block size", p),
		Header: []string{"block-size", "tasks", "dynamic-counter", "work-stealing", "static-cyclic"},
	}
	for _, bsz := range blockSizes {
		fw := chem.BuildFockWorkloadFromPairs(s.bs, s.pairs, 1e-9, bsz)
		w := core.FromFock(fw)
		dyn := core.DynamicCounter{Chunk: 1}.Run(w, mk(p))
		steal := core.WorkStealing{Seed: s.Seed}.Run(w, mk(p))
		cyc := core.StaticCyclic{}.Run(w, mk(p))
		t.Rows = append(t.Rows, []string{
			f("%d", bsz), f("%d", len(w.Tasks)),
			f("%.4g", dyn.Makespan), f("%.4g", steal.Makespan), f("%.4g", cyc.Makespan),
		})
	}
	t.Notes = append(t.Notes,
		"expected shape: U-curve — small blocks drown in per-task/runtime overhead, "+
			"large blocks starve ranks and re-create imbalance; the dynamic model's minimum "+
			"sits at larger blocks than stealing's because every task costs a counter round-trip")
	return t
}

// Figure4 reproduces the performance-variability experiment: slowdown of
// each model as per-rank speed variation grows — the "energy-induced
// performance variability" the paper closes on.
//
// The workload is the controlled triangular distribution rather than the
// raw chemistry workload: the chemistry task set carries one monster task
// whose critical path dominates the makespan at scale, reducing every
// model to "which rank drew the monster" — a single-task bound no
// scheduler can influence (visible in T2's efficiency column). The
// triangular profile keeps max/mean ≈ 2 so the per-rank aggregate, which
// scheduling *can* influence, stays the bottleneck.
func (s *Suite) Figure4() *Table {
	s.prepare()
	p := s.maxRanks()
	work := core.Synthetic(core.SyntheticOptions{
		NumTasks: 256 * p, Dist: "triangular", Seed: s.Seed,
	})
	hets := []float64{0, 0.1, 0.2, 0.3, 0.4}
	models := []core.Model{
		core.StaticBlock{},
		core.StaticCyclic{},
		core.DynamicCounter{Chunk: 1},
		core.WorkStealing{Seed: s.Seed},
	}
	t := &Table{
		ID:     "F4",
		Title:  f("slowdown vs per-rank speed variability at P=%d (makespan / quiet makespan)", p),
		Header: []string{"model"},
	}
	for _, h := range hets {
		t.Header = append(t.Header, f("h=%.1f", h))
	}
	// Average over several machine draws: a single draw is dominated by
	// the luck of which speed the pre-existing bottleneck rank gets.
	const draws = 7
	for _, model := range models {
		var base float64
		row := []string{model.Name()}
		for i, h := range hets {
			var mean float64
			for d := 0; d < draws; d++ {
				m := cluster.New(cluster.Config{Ranks: p, Heterogeneity: h, Seed: s.Seed + int64(100*d)})
				mean += model.Run(work, m).Makespan
			}
			mean /= draws
			if i == 0 {
				base = mean
			}
			row = append(row, f("%.3f", mean/base))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		f("averaged over %d machine draws; expected shape: static models degrade toward 1/min(speed); "+
			"dynamic and stealing stay near flat", draws))
	return t
}

// Figure5 reproduces the runtime-traffic scaling study: shared-counter
// operations/contention and steal counts versus rank count — why the
// centralized dynamic model stops scaling.
func (s *Suite) Figure5() *Table {
	s.prepare()
	ranks := []int{4, 8, 16, 32, 64, 128}
	if s.Scale == "paper" {
		ranks = append(ranks, 256)
	}
	t := &Table{
		ID:     "F5",
		Title:  "runtime traffic vs ranks: counter contention vs steal volume",
		Header: []string{"P", "counter-ops", "counter-wait(s)", "dyn-makespan", "steals", "failed-steals", "steal-makespan"},
	}
	for _, p := range ranks {
		m := s.machine(p)
		dyn := core.DynamicCounter{Chunk: 1}.Run(s.work, m)
		st := core.WorkStealing{Seed: s.Seed}.Run(s.work, m)
		t.Rows = append(t.Rows, []string{
			f("%d", p),
			f("%d", dyn.CounterOps), f("%.3g", dyn.CounterWait), f("%.4g", dyn.Makespan),
			f("%d", st.Steals), f("%d", st.FailedSteals), f("%.4g", st.Makespan),
		})
	}
	t.Notes = append(t.Notes,
		"expected shape: counter ops stay ~constant but queueing wait grows with P; "+
			"steals grow roughly linearly in P while total steal traffic stays a tiny fraction of work")
	return t
}
