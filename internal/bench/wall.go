package bench

import (
	"encoding/json"
	"io"
	"runtime"
	"time"

	"execmodels/internal/chem"
	"execmodels/internal/core"
	"execmodels/internal/linalg"
)

// WallBenchRow is one measured configuration of the wall-clock Fock
// backend: a (molecule, mode, workers) point of the perf trajectory.
type WallBenchRow struct {
	Molecule      string  `json:"molecule"`
	Mode          string  `json:"mode"` // serial-baseline | serial-arena | static | dynamic | stealing
	Workers       int     `json:"workers"`
	Tasks         int     `json:"tasks"`
	NsPerTask     float64 `json:"ns_per_task"`
	GFlops        float64 `json:"gflops"`
	AllocsPerTask float64 `json:"allocs_per_task"`
	// Speedup is serial-arena elapsed / this run's elapsed, so the
	// serial-arena row is 1 by construction and the serial-baseline row
	// is < 1 by exactly the arena's hot-path improvement factor.
	Speedup    float64 `json:"speedup_vs_serial_arena"`
	Steals     int64   `json:"steals,omitempty"`
	StealRetry int64   `json:"steal_retries,omitempty"`
	CounterOps int64   `json:"counter_ops,omitempty"`
}

// WallBenchReport is the machine-readable output of the wall-clock
// benchmark (committed as BENCH_wall.json; regenerate with
// `make bench-wall`).
type WallBenchReport struct {
	Scale      string         `json:"scale"`
	GOOS       string         `json:"goos"`
	GOARCH     string         `json:"goarch"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	Seed       int64          `json:"seed"`
	DynBlock   int            `json:"dyn_block"`
	Note       string         `json:"note,omitempty"`
	Rows       []WallBenchRow `json:"rows"`
}

// wallMolecule is one input of the wall benchmark.
type wallMolecule struct {
	name string
	mol  *chem.Molecule
}

// wallMolecules returns the benchmark inputs: the quickstart molecule
// (water, the hfscf default) and a water cluster sized by scale.
func (s *Suite) wallMolecules() []wallMolecule {
	n := 4
	if s.Scale == "paper" {
		n = 8
	}
	return []wallMolecule{
		{"water", chem.Water()},
		{f("waters:%d", n), chem.WaterCluster(n, s.Seed)},
	}
}

// wallWorkers returns the worker-count sweep.
func (s *Suite) wallWorkers() []int {
	if s.Scale == "paper" {
		return []int{1, 2, 4, 8}
	}
	return []int{1, 2, 4}
}

// wallDynBlock is the NXTVAL fetch block used by the dynamic rows.
const wallDynBlock = 4

// serialSweeps runs full serial sweeps over the workload until minTime
// has elapsed (at least once), returning elapsed time, sweep count and
// heap allocations per executed task.
func serialSweeps(fw *chem.FockWorkload, d *linalg.Matrix, baseline bool, minTime time.Duration) (time.Duration, int, float64) {
	n := fw.Basis.NBF
	j := linalg.NewMatrix(n, n)
	k := linalg.NewMatrix(n, n)
	scratch := fw.NewScratch()
	sweep := func() {
		for i := range fw.Tasks {
			if baseline {
				fw.ExecuteTaskBaseline(&fw.Tasks[i], d, j, k)
			} else {
				fw.ExecuteTaskScratch(&fw.Tasks[i], d, j, k, scratch)
			}
		}
	}
	sweep() // warm-up: grow lazily-sized buffers, fault in pair data

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	var elapsed time.Duration
	sweeps := 0
	for elapsed < minTime || sweeps == 0 {
		sweep()
		sweeps++
		elapsed = time.Since(start)
	}
	runtime.ReadMemStats(&after)
	allocs := float64(after.Mallocs-before.Mallocs) / float64(sweeps*len(fw.Tasks))
	return elapsed, sweeps, allocs
}

// wallModeRun executes one (mode, workers) configuration reps times and
// returns the fastest result plus allocations per task of the first run.
func wallModeRun(mode string, fw *chem.FockWorkload, h, d *linalg.Matrix, workers, block int, seed int64, reps int) (*core.WallResult, float64) {
	run := func() *core.WallResult {
		switch mode {
		case "static":
			return core.WallStatic(fw, h, d, workers)
		case "dynamic":
			return core.WallDynamic(fw, h, d, workers, block)
		case "stealing":
			return core.WallStealing(fw, h, d, workers, seed)
		}
		panic("bench: unknown wall mode " + mode)
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	best := run()
	runtime.ReadMemStats(&after)
	allocs := float64(after.Mallocs-before.Mallocs) / float64(len(fw.Tasks))
	for i := 1; i < reps; i++ {
		if r := run(); r.Elapsed < best.Elapsed {
			best = r
		}
	}
	return best, allocs
}

// WallBench measures the wall-clock Fock backend: the retained pre-arena
// serial path ("before"), the arena serial path ("after"), and the three
// parallel modes across the worker sweep, on each benchmark molecule.
func (s *Suite) WallBench() *WallBenchReport {
	rep := &WallBenchReport{
		Scale:      s.Scale,
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Seed:       s.Seed,
		DynBlock:   wallDynBlock,
	}
	if rep.GOMAXPROCS == 1 {
		rep.Note = "single-core host: parallel rows degenerate to serial time plus scheduling overhead; compare ns/task and allocs/task"
	}
	minTime := 100 * time.Millisecond
	reps := 3
	if s.Scale == "paper" {
		minTime = 300 * time.Millisecond
	}
	for _, wm := range s.wallMolecules() {
		bs, err := chem.NewBasis("sto-3g", wm.mol)
		if err != nil {
			panic(err)
		}
		fw := chem.BuildFockWorkload(bs, 1e-9, 4)
		h := chem.CoreHamiltonian(bs, wm.mol)
		d := linalg.Identity(bs.NBF)
		nt := len(fw.Tasks)
		flops := fw.TotalFlops()

		baseEl, baseSw, baseAllocs := serialSweeps(fw, d, true, minTime)
		arenaEl, arenaSw, arenaAllocs := serialSweeps(fw, d, false, minTime)
		basePerSweep := baseEl / time.Duration(baseSw)
		arenaPerSweep := arenaEl / time.Duration(arenaSw)
		rep.Rows = append(rep.Rows,
			WallBenchRow{
				Molecule: wm.name, Mode: "serial-baseline", Workers: 1, Tasks: nt,
				NsPerTask:     float64(basePerSweep.Nanoseconds()) / float64(nt),
				GFlops:        flops / basePerSweep.Seconds() / 1e9,
				AllocsPerTask: baseAllocs,
				Speedup:       arenaPerSweep.Seconds() / basePerSweep.Seconds(),
			},
			WallBenchRow{
				Molecule: wm.name, Mode: "serial-arena", Workers: 1, Tasks: nt,
				NsPerTask:     float64(arenaPerSweep.Nanoseconds()) / float64(nt),
				GFlops:        flops / arenaPerSweep.Seconds() / 1e9,
				AllocsPerTask: arenaAllocs,
				Speedup:       1,
			})

		for _, workers := range s.wallWorkers() {
			for _, mode := range []string{"static", "dynamic", "stealing"} {
				res, allocs := wallModeRun(mode, fw, h, d, workers, wallDynBlock, s.Seed, reps)
				row := WallBenchRow{
					Molecule: wm.name, Mode: mode, Workers: workers, Tasks: nt,
					NsPerTask:     float64(res.Elapsed.Nanoseconds()) / float64(nt),
					GFlops:        flops / res.Elapsed.Seconds() / 1e9,
					AllocsPerTask: allocs,
					Speedup:       arenaPerSweep.Seconds() / res.Elapsed.Seconds(),
					Steals:        res.Steals,
					StealRetry:    res.StealRetry,
					CounterOps:    res.CounterOps,
				}
				rep.Rows = append(rep.Rows, row)
			}
		}
	}
	return rep
}

// WriteWallBench runs WallBench and writes the JSON report to w.
func (s *Suite) WriteWallBench(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.WallBench())
}

// WallBenchTable (W1) renders the wall benchmark as an aligned table —
// the human-readable view of BENCH_wall.json.
func (s *Suite) WallBenchTable() *Table {
	rep := s.WallBench()
	t := &Table{
		ID:     "W1",
		Title:  f("wall-clock Fock backend, %s scale (GOMAXPROCS=%d)", rep.Scale, rep.GOMAXPROCS),
		Header: []string{"molecule", "mode", "workers", "ns/task", "GFLOP/s", "allocs/task", "speedup"},
	}
	improvement := map[string]float64{}
	nsPerTask := map[string]float64{}
	for _, r := range rep.Rows {
		t.Rows = append(t.Rows, []string{
			r.Molecule, r.Mode, f("%d", r.Workers),
			f("%.0f", r.NsPerTask), f("%.3f", r.GFlops),
			f("%.1f", r.AllocsPerTask), f("%.2fx", r.Speedup),
		})
		switch r.Mode {
		case "serial-baseline":
			nsPerTask[r.Molecule] = r.NsPerTask
		case "serial-arena":
			if base := nsPerTask[r.Molecule]; base > 0 && r.NsPerTask > 0 {
				improvement[r.Molecule] = base / r.NsPerTask
			}
		}
	}
	for _, wm := range s.wallMolecules() {
		if imp, ok := improvement[wm.name]; ok {
			t.Notes = append(t.Notes,
				f("%s: arena hot path is %.2fx the pre-arena baseline at 1 worker (gate: >= 2x on the quickstart molecule)", wm.name, imp))
		}
	}
	if rep.Note != "" {
		t.Notes = append(t.Notes, rep.Note)
	}
	return t
}
