package bench

import (
	"encoding/json"
	"io"
	"runtime"
	"time"

	"execmodels/internal/chem"
	"execmodels/internal/core"
	"execmodels/internal/linalg"
)

// WallBenchRow is one measured configuration of the wall-clock Fock
// backend: a (molecule, mode, workers, pair-block) point of the perf
// trajectory.
type WallBenchRow struct {
	Molecule      string  `json:"molecule"`
	Mode          string  `json:"mode"` // serial-baseline | serial-arena | static | dynamic | stealing | a scheduler-seam policy (-wall-sched)
	Workers       int     `json:"workers"`
	PairBlock     int     `json:"pair_block"` // bra shell-pairs per task
	Tasks         int     `json:"tasks"`
	NsPerTask     float64 `json:"ns_per_task"`
	GFlops        float64 `json:"gflops"`
	AllocsPerTask float64 `json:"allocs_per_task"`
	// Speedup is serial-arena elapsed / this run's elapsed, so the
	// serial-arena row is 1 by construction and the serial-baseline row
	// is < 1 by exactly the arena's hot-path improvement factor.
	Speedup float64 `json:"speedup_vs_serial_arena"`
	// Degenerate marks rows that ran with more workers than the host has
	// CPUs (Workers > NumCPU): their timings measure scheduling overhead
	// under oversubscription, not parallel scaling, and must not be read
	// as speedup points. Machine-checked against NumCPU by the schema
	// test.
	Degenerate bool  `json:"degenerate,omitempty"`
	Steals     int64 `json:"steals,omitempty"`
	StealRetry int64 `json:"steal_retries,omitempty"`
	CounterOps int64 `json:"counter_ops,omitempty"`
}

// WallBenchReport is the machine-readable output of the wall-clock
// benchmark (committed as BENCH_wall.json; regenerate with
// `make bench-wall`).
type WallBenchReport struct {
	Scale      string `json:"scale"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"numcpu"`
	Seed       int64  `json:"seed"`
	DynBlock   int    `json:"dyn_block"`
	// Quartets records, per molecule, how much work symmetry folding and
	// Schwarz screening removed before any task reached a scheduler.
	Quartets []WallQuartetStats `json:"quartets"`
	Rows     []WallBenchRow     `json:"rows"`
	// Feedback is the W3 measured-cost feedback experiment (present when
	// the -wall-sched list includes persistence-feedback): repeated
	// (H2O)8 builds comparing estimate-only LPT against the EWMA
	// feedback policy, per iteration.
	Feedback []WallFeedbackRow `json:"feedback,omitempty"`
}

// WallQuartetStats is one molecule's symmetry/screening accounting.
type WallQuartetStats struct {
	Molecule       string `json:"molecule"`
	Shells         int    `json:"shells"`
	NaiveQuartets  int64  `json:"naive_quartets"`  // N^4, the symmetry-free loop
	UniqueQuartets int64  `json:"unique_quartets"` // canonical quartets before screening
	Surviving      int64  `json:"surviving"`       // after Schwarz screening at the bench threshold
}

// wallMolecule is one input of the wall benchmark.
type wallMolecule struct {
	name string
	mol  *chem.Molecule
}

// wallMolecules returns the benchmark inputs: the quickstart molecule
// (water, the hfscf default) and a water cluster sized by scale.
func (s *Suite) wallMolecules() []wallMolecule {
	n := 4
	if s.Scale == "paper" {
		n = 8
	}
	return []wallMolecule{
		{"water", chem.Water()},
		{f("waters:%d", n), chem.WaterCluster(n, s.Seed)},
	}
}

// wallWorkers returns the worker-count sweep, capped at MaxWorkers when
// the caller set one (the CI smoke run uses 2). The sweep intentionally
// extends past NumCPU on small hosts so oversubscription overhead is
// visible — those rows are marked degenerate.
func (s *Suite) wallWorkers() []int {
	sweep := []int{1, 2, 4}
	if s.Scale == "paper" {
		sweep = append(sweep, 8)
	}
	if n := runtime.NumCPU(); n > 4 && s.Scale != "paper" {
		sweep = append(sweep, n)
	}
	if s.MaxWorkers > 0 {
		capped := sweep[:0]
		for _, w := range sweep {
			if w <= s.MaxWorkers {
				capped = append(capped, w)
			}
		}
		sweep = capped
	}
	return sweep
}

// wallDynBlock is the NXTVAL fetch block used by the dynamic rows.
const wallDynBlock = 4

// wallPairBlock is the default bra-pair task granularity; the pair-block
// sweep at the top worker count re-blocks the workload around it.
const wallPairBlock = 4

// wallPairBlocks is the granularity sweep (W2): run at the top worker
// count with tasks of 1, 4 and 16 bra pairs.
func wallPairBlocks() []int { return []int{1, wallPairBlock, 16} }

// serialSweeps runs full serial sweeps over the workload until minTime
// has elapsed (at least once), returning elapsed time, sweep count and
// heap allocations per executed task.
func serialSweeps(fw *chem.FockWorkload, d *linalg.Matrix, baseline bool, minTime time.Duration) (time.Duration, int, float64) {
	n := fw.Basis.NBF
	j := linalg.NewMatrix(n, n)
	k := linalg.NewMatrix(n, n)
	scratch := fw.NewScratch()
	sweep := func() {
		for i := range fw.Tasks {
			if baseline {
				fw.ExecuteTaskBaseline(&fw.Tasks[i], d, j, k)
			} else {
				fw.ExecuteTaskScratch(&fw.Tasks[i], d, j, k, scratch)
			}
		}
	}
	sweep() // warm-up: grow lazily-sized buffers, fault in pair data

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	var elapsed time.Duration
	sweeps := 0
	for elapsed < minTime || sweeps == 0 {
		sweep()
		sweeps++
		elapsed = time.Since(start)
	}
	runtime.ReadMemStats(&after)
	allocs := float64(after.Mallocs-before.Mallocs) / float64(sweeps*len(fw.Tasks))
	return elapsed, sweeps, allocs
}

// wallModeRun executes one (mode, workers) configuration reps times and
// returns the fastest result plus allocations per task of the first run.
func wallModeRun(mode string, fw *chem.FockWorkload, h, d *linalg.Matrix, workers, block int, seed int64, reps int) (*core.WallResult, float64) {
	run := func() *core.WallResult {
		switch mode {
		case "static":
			return core.WallStatic(fw, h, d, workers)
		case "dynamic":
			return core.WallDynamic(fw, h, d, workers, block)
		case "stealing":
			return core.WallStealing(fw, h, d, workers, seed)
		}
		panic("bench: unknown wall mode " + mode)
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	best := run()
	runtime.ReadMemStats(&after)
	allocs := float64(after.Mallocs-before.Mallocs) / float64(len(fw.Tasks))
	for i := 1; i < reps; i++ {
		if r := run(); r.Elapsed < best.Elapsed {
			best = r
		}
	}
	return best, allocs
}

// wallSchedRun executes one scheduler-seam policy reps times through
// core.NewWallScheduler and returns the fastest result plus allocations
// per task of the first run. A fresh scheduler per rep keeps any
// feedback state from leaking between repetitions.
func wallSchedRun(policy string, fw *chem.FockWorkload, h, d *linalg.Matrix, workers, block int, seed int64, reps int) (*core.WallResult, float64) {
	run := func() *core.WallResult {
		ws, err := core.NewWallScheduler(policy, workers, core.WallOptions{Seed: seed, Block: block})
		if err != nil {
			panic("bench: " + err.Error())
		}
		res, err := ws.Build(fw, h, d)
		if err != nil {
			panic("bench: " + err.Error())
		}
		return res
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	best := run()
	runtime.ReadMemStats(&after)
	allocs := float64(after.Mallocs-before.Mallocs) / float64(len(fw.Tasks))
	for i := 1; i < reps; i++ {
		if r := run(); r.Elapsed < best.Elapsed {
			best = r
		}
	}
	return best, allocs
}

// wallSchedPolicies returns the scheduler-seam policies swept as
// benchmark rows: every entry of WallScheds except persistence-feedback,
// whose iterative protocol is the separate W3 feedback experiment.
func (s *Suite) wallSchedPolicies() []string {
	var out []string
	for _, p := range s.WallScheds {
		if p != "persistence-feedback" {
			out = append(out, p)
		}
	}
	return out
}

// wallFeedbackEnabled reports whether the report should include the W3
// feedback section.
func (s *Suite) wallFeedbackEnabled() bool {
	for _, p := range s.WallScheds {
		if p == "persistence-feedback" {
			return true
		}
	}
	return false
}

// wallParallelRow builds one parallel-mode row against the serial-arena
// reference time.
func wallParallelRow(molecule, mode string, fw *chem.FockWorkload, res *core.WallResult,
	workers, pairBlock int, allocs float64, arenaPerSweep time.Duration, flops float64) WallBenchRow {
	nt := len(fw.Tasks)
	return WallBenchRow{
		Molecule: molecule, Mode: mode, Workers: workers, PairBlock: pairBlock, Tasks: nt,
		NsPerTask:     float64(res.Elapsed.Nanoseconds()) / float64(nt),
		GFlops:        flops / res.Elapsed.Seconds() / 1e9,
		AllocsPerTask: allocs,
		Speedup:       arenaPerSweep.Seconds() / res.Elapsed.Seconds(),
		Degenerate:    workers > runtime.NumCPU(),
		Steals:        res.Steals,
		StealRetry:    res.StealRetry,
		CounterOps:    res.CounterOps,
	}
}

// WallBench measures the wall-clock Fock backend: the retained pre-arena
// serial path ("before"), the arena serial path ("after"), the three
// parallel modes across the worker sweep, and the pair-block granularity
// sweep at the top worker count, on each benchmark molecule.
func (s *Suite) WallBench() *WallBenchReport {
	rep := &WallBenchReport{
		Scale:      s.Scale,
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Seed:       s.Seed,
		DynBlock:   wallDynBlock,
	}
	minTime := 100 * time.Millisecond
	reps := 3
	if s.Scale == "paper" {
		minTime = 300 * time.Millisecond
	}
	workerSweep := s.wallWorkers()
	topWorkers := workerSweep[len(workerSweep)-1]
	for _, wm := range s.wallMolecules() {
		bs, err := chem.NewBasis("sto-3g", wm.mol)
		if err != nil {
			panic(err)
		}
		fw := chem.BuildFockWorkload(bs, 1e-9, wallPairBlock)
		h := chem.CoreHamiltonian(bs, wm.mol)
		d := linalg.Identity(bs.NBF)
		nt := len(fw.Tasks)
		flops := fw.TotalFlops()
		st := fw.Stats()
		rep.Quartets = append(rep.Quartets, WallQuartetStats{
			Molecule: wm.name, Shells: st.Shells,
			NaiveQuartets: st.NaiveQuartets, UniqueQuartets: st.UniqueQuartets,
			Surviving: st.Surviving,
		})

		baseEl, baseSw, baseAllocs := serialSweeps(fw, d, true, minTime)
		arenaEl, arenaSw, arenaAllocs := serialSweeps(fw, d, false, minTime)
		basePerSweep := baseEl / time.Duration(baseSw)
		arenaPerSweep := arenaEl / time.Duration(arenaSw)
		rep.Rows = append(rep.Rows,
			WallBenchRow{
				Molecule: wm.name, Mode: "serial-baseline", Workers: 1, PairBlock: wallPairBlock, Tasks: nt,
				NsPerTask:     float64(basePerSweep.Nanoseconds()) / float64(nt),
				GFlops:        flops / basePerSweep.Seconds() / 1e9,
				AllocsPerTask: baseAllocs,
				Speedup:       arenaPerSweep.Seconds() / basePerSweep.Seconds(),
			},
			WallBenchRow{
				Molecule: wm.name, Mode: "serial-arena", Workers: 1, PairBlock: wallPairBlock, Tasks: nt,
				NsPerTask:     float64(arenaPerSweep.Nanoseconds()) / float64(nt),
				GFlops:        flops / arenaPerSweep.Seconds() / 1e9,
				AllocsPerTask: arenaAllocs,
				Speedup:       1,
			})

		for _, workers := range workerSweep {
			for _, mode := range []string{"static", "dynamic", "stealing"} {
				res, allocs := wallModeRun(mode, fw, h, d, workers, wallDynBlock, s.Seed, reps)
				rep.Rows = append(rep.Rows,
					wallParallelRow(wm.name, mode, fw, res, workers, wallPairBlock, allocs, arenaPerSweep, flops))
			}
			// Scheduler-seam policies from the -wall-sched list run through
			// the same core.Scheduler plans the simulator uses, lowered onto
			// the wall backend.
			for _, pol := range s.wallSchedPolicies() {
				res, allocs := wallSchedRun(pol, fw, h, d, workers, wallDynBlock, s.Seed, reps)
				rep.Rows = append(rep.Rows,
					wallParallelRow(wm.name, pol, fw, res, workers, wallPairBlock, allocs, arenaPerSweep, flops))
			}
		}

		// Granularity sweep (W2): same executors at the top worker count,
		// tasks re-blocked around the default size. Reblock shares the
		// screening data and Hermite tables, so this costs only task
		// bookkeeping.
		for _, pb := range wallPairBlocks() {
			if pb == wallPairBlock {
				continue // already measured in the worker sweep
			}
			fwb := fw.Reblock(pb)
			for _, mode := range []string{"static", "dynamic", "stealing"} {
				res, allocs := wallModeRun(mode, fwb, h, d, topWorkers, wallDynBlock, s.Seed, reps)
				rep.Rows = append(rep.Rows,
					wallParallelRow(wm.name, mode, fwb, res, topWorkers, pb, allocs, arenaPerSweep, flops))
			}
		}
	}
	if s.wallFeedbackEnabled() {
		rep.Feedback = s.runWallFeedback()
	}
	return rep
}

// WriteWallBench runs WallBench and writes the JSON report to w.
func (s *Suite) WriteWallBench(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.WallBench())
}

// WallBenchTable (W1) renders the wall benchmark as an aligned table —
// the human-readable view of BENCH_wall.json.
func (s *Suite) WallBenchTable() *Table {
	rep := s.WallBench()
	t := &Table{
		ID:     "W1",
		Title:  f("wall-clock Fock backend, %s scale (GOMAXPROCS=%d, NumCPU=%d)", rep.Scale, rep.GOMAXPROCS, rep.NumCPU),
		Header: []string{"molecule", "mode", "workers", "pairblk", "ns/task", "GFLOP/s", "allocs/task", "speedup", "degenerate"},
	}
	improvement := map[string]float64{}
	nsPerTask := map[string]float64{}
	degenerate := 0
	for _, r := range rep.Rows {
		deg := ""
		if r.Degenerate {
			deg = "yes"
			degenerate++
		}
		t.Rows = append(t.Rows, []string{
			r.Molecule, r.Mode, f("%d", r.Workers), f("%d", r.PairBlock),
			f("%.0f", r.NsPerTask), f("%.3f", r.GFlops),
			f("%.1f", r.AllocsPerTask), f("%.2fx", r.Speedup), deg,
		})
		switch r.Mode {
		case "serial-baseline":
			nsPerTask[r.Molecule] = r.NsPerTask
		case "serial-arena":
			if base := nsPerTask[r.Molecule]; base > 0 && r.NsPerTask > 0 {
				improvement[r.Molecule] = base / r.NsPerTask
			}
		}
	}
	for _, q := range rep.Quartets {
		t.Notes = append(t.Notes,
			f("%s: %d shells, %d naive quartets folded to %d unique, %d surviving Schwarz screening",
				q.Molecule, q.Shells, q.NaiveQuartets, q.UniqueQuartets, q.Surviving))
	}
	for _, wm := range s.wallMolecules() {
		if imp, ok := improvement[wm.name]; ok {
			t.Notes = append(t.Notes,
				f("%s: arena hot path is %.2fx the pre-arena baseline at 1 worker (gate: >= 2x on the quickstart molecule)", wm.name, imp))
		}
	}
	if degenerate > 0 {
		t.Notes = append(t.Notes,
			f("%d rows ran with more workers than the %d available CPUs and are marked degenerate: they measure oversubscription overhead, not scaling", degenerate, rep.NumCPU))
	}
	return t
}
