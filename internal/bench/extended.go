package bench

import (
	"time"

	"execmodels/internal/chem"
	"execmodels/internal/cluster"
	"execmodels/internal/core"
	"execmodels/internal/dscf"
	"execmodels/internal/hypergraph"
)

// Table6 reproduces the end-to-end application view: total time for a
// full SCF's sequence of Fock builds (one per iteration over the same
// task set) under each execution model, including the iterative models
// that exploit persistence. The energy is model-independent — computed
// once with the serial reference and recorded in the notes as the
// correctness anchor.
func (s *Suite) Table6() *Table {
	s.prepare()
	p := s.maxRanks()
	const iters = 10
	t := &Table{
		ID:     "T6",
		Title:  f("end-to-end: %d Fock-build iterations at P=%d", iters, p),
		Header: []string{"model", "total(s)", "first-iter(s)", "last-iter(s)"},
	}
	models := append(core.AllModels(s.Seed),
		core.SelfScheduling{Policy: core.GuidedChunk{}},
		core.PersistenceSM{Iterations: iters, Seed: s.Seed},
	)
	for _, model := range models {
		var hist []float64
		switch mm := model.(type) {
		case core.Persistence:
			mm.Iterations = iters
			_, hist = mm.RunWithHistory(s.work, s.machine(p))
		case core.PersistenceSM:
			_, hist = mm.RunWithHistory(s.work, s.machine(p))
		default:
			// Non-iterative models repeat the same schedule each
			// iteration; one run per iteration keeps the noise model
			// honest.
			m := s.machine(p)
			for i := 0; i < iters; i++ {
				hist = append(hist, model.Run(s.work, m).Makespan)
			}
		}
		var total float64
		for _, mk := range hist {
			total += mk
		}
		t.Rows = append(t.Rows, []string{
			model.Name(), f("%.4g", total), f("%.4g", hist[0]), f("%.4g", hist[len(hist)-1]),
		})
	}
	// Correctness anchor: the tiny reference SCF.
	mol := chem.Water()
	bs, err := chem.NewBasis("sto-3g", mol)
	if err == nil {
		if res, err := chem.RunSCF(mol, bs, chem.SCFOptions{UseDIIS: true}, nil); err == nil {
			t.Notes = append(t.Notes,
				f("energies are execution-model independent: E(H2O/STO-3G) = %.6f hartree from the serial reference", res.Energy))
		}
	}
	t.Notes = append(t.Notes,
		"expected shape: persistence variants match static on iteration 1, then converge to near-ideal; "+
			"dynamic/stealing pay their runtime tax every iteration")
	return t
}

// Figure6 reproduces the dynamic-variability experiment with DVFS-style
// throttling *episodes* (as opposed to F4's static per-rank speeds):
// slowdown as the per-window throttle probability grows.
func (s *Suite) Figure6() *Table {
	s.prepare()
	p := s.maxRanks()
	probs := []float64{0, 0.1, 0.2, 0.3, 0.5}
	models := []core.Model{
		core.StaticCyclic{},
		core.SelfScheduling{Policy: core.GuidedChunk{}},
		core.WorkStealing{Seed: s.Seed},
	}
	t := &Table{
		ID:     "F6",
		Title:  f("slowdown vs DVFS throttle-episode probability at P=%d (10ms windows, 0.5x speed)", p),
		Header: []string{"model"},
	}
	for _, pr := range probs {
		t.Header = append(t.Header, f("p=%.1f", pr))
	}
	for _, model := range models {
		var base float64
		row := []string{model.Name()}
		for i, pr := range probs {
			m := cluster.New(cluster.Config{Ranks: p, ThrottleProb: pr, Seed: s.Seed})
			res := model.Run(s.work, m)
			if i == 0 {
				base = res.Makespan
			}
			row = append(row, f("%.3f", res.Makespan/base))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"expected shape: all models slow with lost cycles (~1/(1-p/2)); episodes hurt the static "+
			"schedule more because its critical rank cannot shed work mid-episode")
	return t
}

// Figure7 reproduces the topology experiment: flat versus hierarchical
// (node-aware) work stealing on a multicore cluster as the inter-node
// network slows down, reporting both makespan and the fraction of steals
// that cross a node boundary.
func (s *Suite) Figure7() *Table {
	s.prepare()
	cores := 4
	nodes := s.maxRanks() / cores
	if nodes < 2 {
		nodes = 2
	}
	t := &Table{
		ID: "F7",
		Title: f("flat vs hierarchical stealing, %d nodes x %d cores, vs inter-node latency",
			nodes, cores),
		Header: []string{"latency(us)", "flat-makespan", "flat-remote%", "hier-makespan", "hier-remote%"},
	}
	for _, lat := range []float64{1e-6, 5e-6, 20e-6, 80e-6} {
		mk := func() *cluster.Machine {
			return cluster.New(cluster.Config{
				Ranks: nodes * cores, CoresPerNode: cores, Latency: lat, Seed: s.Seed,
			})
		}
		flat := core.WorkStealing{Seed: s.Seed}.Run(s.work, mk())
		hier := core.WorkStealing{Hierarchical: true, Seed: s.Seed}.Run(s.work, mk())
		pct := func(r *core.Result) string {
			if r.Steals == 0 {
				return "n/a"
			}
			return f("%.0f%%", 100*float64(r.RemoteSteals)/float64(r.Steals))
		}
		t.Rows = append(t.Rows, []string{
			f("%.0f", lat*1e6),
			f("%.4g", flat.Makespan), pct(flat),
			f("%.4g", hier.Makespan), pct(hier),
		})
	}
	t.Notes = append(t.Notes,
		"expected shape: hierarchical keeps the remote fraction low at every latency; "+
			"its makespan advantage appears once remote round-trips dominate steal cost")
	return t
}

// Table7 reproduces the application-context view: per-phase time
// breakdown of the surrounding SCF (Fock build / Fock reduction /
// diagonalization / density broadcast) as the machine grows. The Fock
// build is the only phase the execution models touch, and its share of
// the iteration shrinks with scale — the Amdahl ceiling on what any
// execution-model improvement can deliver.
func (s *Suite) Table7() *Table {
	s.prepare()
	// Two basis dimensions: the suite's actual system, where the O(N³)
	// diagonalization is negligible, and a production-sized one (the
	// regime the original GA-era SCF codes ran in), where the replicated
	// diagonalization caps the scaling no matter how good the Fock-build
	// execution model is.
	sizes := []int{s.bs.NBF, 2000}
	t := &Table{
		ID:     "T7",
		Title:  "SCF phase breakdown vs scale (replicated diagonalization)",
		Header: []string{"NBF", "P", "fock(s)", "reduce(s)", "diag(s)", "bcast(s)", "fock-share"},
	}
	for _, nbf := range sizes {
		for _, p := range s.rankSweep() {
			res, err := dscf.Run(dscf.Config{
				NBF: nbf, Iterations: 5, ReplicatedDiag: true,
			}, core.WorkStealing{Seed: s.Seed}, s.work, s.machine(p))
			if err != nil {
				panic(err)
			}
			b := res.Breakdown()
			t.Rows = append(t.Rows, []string{
				f("%d", nbf), f("%d", p),
				f("%.4g", b.Fock), f("%.4g", b.Reduce), f("%.4g", b.Diag), f("%.4g", b.Broadcast),
				f("%.2f", res.FockFraction),
			})
		}
	}
	t.Notes = append(t.Notes,
		"expected shape: at the small NBF the fock build dominates everywhere; at the production "+
			"NBF its share collapses with P as the flat replicated diagonalization takes over — "+
			"the Amdahl ceiling on any execution-model improvement")
	return t
}

// AblationFMRefiner (A8) compares the greedy positive-gain refiner with
// the Fiduccia–Mattheyses tentative-move/rollback refiner inside the
// multilevel partitioner: cut quality versus partitioning cost.
func (s *Suite) AblationFMRefiner() *Table {
	s.prepare()
	p := s.maxRanks()
	h := core.BuildHypergraph(s.work)
	t := &Table{
		ID:     "A8",
		Title:  f("greedy vs FM refinement inside the multilevel partitioner, k=%d", p),
		Header: []string{"refiner", "cut(bytes)", "imbalance", "cost(s,real)"},
	}
	for _, fm := range []bool{false, true} {
		start := time.Now()
		res := hypergraph.Partition(h, p, hypergraph.Options{Seed: s.Seed, FM: fm})
		cost := time.Since(start).Seconds()
		name := "greedy"
		if fm {
			name = "fm-rollback"
		}
		t.Rows = append(t.Rows, []string{
			name, f("%.4g", res.Cut), f("%.4f", res.Imbalance), f("%.3g", cost),
		})
	}
	t.Notes = append(t.Notes,
		"expected: comparable cuts at comparable cost on this instance; FM's rollback wins "+
			"decisively on plateau-rich inputs (see the hypergraph package's TestFMEscapesPlateau) "+
			"where greedy's positive-gain-only moves stall")
	return t
}

// Figure8 reproduces the locality-structure experiment: the same
// execution models on a compact 3-D water cluster (every shell near every
// other) versus a 1-D alkane chain (banded sparsity). Locality-aware
// balancers profit where structure exists; compact clusters leave little
// to exploit.
func (s *Suite) Figure8() *Table {
	carbons := 8
	if s.Scale == "paper" {
		carbons = 20
	}
	t := &Table{
		ID:     "F8",
		Title:  f("workload structure: compact cluster vs C%d alkane chain", carbons),
		Header: []string{"workload", "tasks", "model", "makespan(s)", "comm(s,total)"},
	}
	s.prepare()
	alk := chem.Alkane(carbons)
	abs_, err := chem.NewBasis("sto-3g", alk)
	if err != nil {
		panic(err)
	}
	aw := core.FromFock(chem.BuildFockWorkload(abs_, 1e-9, 4))

	p := s.maxRanks()
	for _, wl := range []struct {
		name string
		w    *core.Workload
	}{
		{"water-cluster", s.work},
		{"alkane-chain", aw},
	} {
		for _, model := range []core.Model{
			core.StaticCyclic{},
			core.SemiMatchingLB{Seed: s.Seed},
			core.HypergraphLB{Seed: s.Seed},
		} {
			res := model.Run(wl.w, s.machine(p))
			var comm float64
			for _, c := range res.CommTime {
				comm += c
			}
			t.Rows = append(t.Rows, []string{
				wl.name, f("%d", len(wl.w.Tasks)), model.Name(),
				f("%.4g", res.Makespan), f("%.4g", comm),
			})
		}
	}
	t.Notes = append(t.Notes,
		"expected shape: on the banded alkane the locality-aware balancers cut communication "+
			"hardest relative to cost-oblivious cyclic; screening also removes far more quartets")
	return t
}

// AblationSelfSched (A7) compares the chunk-policy family head to head:
// fixed-1, fixed-16, guided, factoring.
func (s *Suite) AblationSelfSched() *Table {
	s.prepare()
	p := s.maxRanks()
	t := &Table{
		ID:     "A7",
		Title:  f("self-scheduling chunk policies at P=%d", p),
		Header: []string{"policy", "makespan(s)", "counter-ops", "counter-wait(s)", "imbalance"},
	}
	for _, model := range []core.Model{
		core.DynamicCounter{Chunk: 1},
		core.DynamicCounter{Chunk: 16},
		core.SelfScheduling{Policy: core.GuidedChunk{}},
		core.SelfScheduling{Policy: core.FactoringChunk{}},
	} {
		res := model.Run(s.work, s.machine(p))
		name := model.Name()
		if dc, ok := model.(core.DynamicCounter); ok {
			name = f("fixed-%d", dc.Chunk)
		}
		t.Rows = append(t.Rows, []string{
			name, f("%.4g", res.Makespan),
			f("%d", res.CounterOps), f("%.3g", res.CounterWait),
			f("%.3f", res.LoadImbalance()),
		})
	}
	t.Notes = append(t.Notes,
		"expected: guided/factoring cut counter traffic by an order of magnitude at equal or better makespan")
	return t
}
