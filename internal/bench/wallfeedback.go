package bench

import (
	"math"
	"time"

	"execmodels/internal/chem"
	"execmodels/internal/core"
	"execmodels/internal/linalg"
)

// WallFeedbackRow is one (policy, iteration) point of the W3 feedback
// experiment: repeated wall-clock Fock builds of the same (H2O)8
// workload under a fixed assignment policy, where the feedback policy
// re-plans iteration k+1 from iteration k's measured per-task wall
// times while the estimate-only policy keeps balancing the NBF^4 flop
// estimates.
type WallFeedbackRow struct {
	Molecule  string  `json:"molecule"`
	Policy    string  `json:"policy"`    // "lpt" (estimate-only) | "persistence-feedback" (measured EWMA)
	Workers   int     `json:"workers"`   // assignment width, >= 2 so balance is observable
	Iteration int     `json:"iteration"` // 1-based build index within the protocol
	Seconds   float64 `json:"seconds"`   // elapsed wall time of the build
	// MaxBusySeconds is the schedule makespan under measured task costs:
	// the busiest worker's task-execution time. On an oversubscribed
	// host (workers > CPUs) Seconds measures contention, not assignment
	// quality; MaxBusySeconds still ranks assignments, so it is the W3
	// comparison metric.
	MaxBusySeconds float64 `json:"max_busy_seconds"`
	Imbalance      float64 `json:"imbalance"` // max/mean worker busy time
}

// wallFeedbackMolecule pins W3 to the paper's (H2O)8 input regardless
// of scale: the feedback loop is only interesting on a workload whose
// task costs spread enough for re-planning to matter.
const wallFeedbackMolecule = "waters:8"

// wallFeedbackProtocol returns (iterations, reps) for the W3 protocol.
// Iterations is the SCF-like build count per scheduler instance; reps
// repeats the whole protocol and keeps, per iteration index, the run
// with the smallest makespan (best-of noise reduction that never mixes
// state across protocol runs).
func (s *Suite) wallFeedbackProtocol() (int, int) {
	if s.Scale == "paper" {
		return 6, 2
	}
	return 4, 1
}

// wallFeedbackWorkers returns the assignment width for W3: the top of
// the worker sweep, floored at 2 because a one-worker assignment has
// nothing to balance.
func (s *Suite) wallFeedbackWorkers() int {
	sweep := s.wallWorkers()
	w := sweep[len(sweep)-1]
	if w < 2 {
		w = 2
	}
	return w
}

// runWallFeedback runs the W3 experiment: estimate-only LPT vs the
// measured-cost feedback policy, per iteration, on (H2O)8.
func (s *Suite) runWallFeedback() []WallFeedbackRow {
	iters, reps := s.wallFeedbackProtocol()
	workers := s.wallFeedbackWorkers()
	mol := chem.WaterCluster(8, s.Seed)
	bs, err := chem.NewBasis("sto-3g", mol)
	if err != nil {
		panic(err)
	}
	fw := chem.BuildFockWorkload(bs, 1e-9, wallPairBlock)
	h := chem.CoreHamiltonian(bs, mol)
	d := linalg.Identity(bs.NBF)

	var rows []WallFeedbackRow
	for _, policy := range []string{"lpt", "persistence-feedback"} {
		best := make([]WallFeedbackRow, iters)
		for i := range best {
			best[i] = WallFeedbackRow{
				Molecule: wallFeedbackMolecule, Policy: policy,
				Workers: workers, Iteration: i + 1,
				MaxBusySeconds: math.Inf(1),
			}
		}
		for rep := 0; rep < reps; rep++ {
			ws, err := core.NewWallScheduler(policy, workers, core.WallOptions{Seed: s.Seed, Block: wallDynBlock})
			if err != nil {
				panic("bench: " + err.Error())
			}
			for it := 0; it < iters; it++ {
				res, err := ws.Build(fw, h, d)
				if err != nil {
					panic("bench: " + err.Error())
				}
				var mx time.Duration
				for _, b := range res.WorkerBusy {
					if b > mx {
						mx = b
					}
				}
				if mb := mx.Seconds(); mb < best[it].MaxBusySeconds {
					best[it].Seconds = res.Elapsed.Seconds()
					best[it].MaxBusySeconds = mb
					best[it].Imbalance = res.LoadImbalance()
				}
			}
		}
		rows = append(rows, best...)
	}
	return rows
}

// wallFeedbackGain returns the per-policy mean makespan over iterations
// 2..n (iteration 1 is the cold start both policies share) — the number
// the W3 acceptance gate compares.
func wallFeedbackGain(rows []WallFeedbackRow) map[string]float64 {
	sum, n := map[string]float64{}, map[string]int{}
	for _, r := range rows {
		if r.Iteration >= 2 {
			sum[r.Policy] += r.MaxBusySeconds
			n[r.Policy]++
		}
	}
	out := map[string]float64{}
	for p, v := range sum {
		out[p] = v / float64(n[p])
	}
	return out
}

// WallFeedbackTable (W3) renders the measured-cost feedback experiment:
// does folding iteration k's measured per-task wall times into the cost
// model beat balancing the static flop estimates from iteration 2 on?
func (s *Suite) WallFeedbackTable() *Table {
	rows := s.runWallFeedback()
	t := &Table{
		ID:     "W3",
		Title:  f("measured-cost feedback vs estimate-only LPT, %s, %s scale", wallFeedbackMolecule, s.Scale),
		Header: []string{"policy", "workers", "iteration", "seconds", "max-busy-s", "imbalance"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Policy, f("%d", r.Workers), f("%d", r.Iteration),
			f("%.4f", r.Seconds), f("%.4f", r.MaxBusySeconds), f("%.3f", r.Imbalance),
		})
	}
	gain := wallFeedbackGain(rows)
	lpt, fb := gain["lpt"], gain["persistence-feedback"]
	if lpt > 0 && fb > 0 {
		t.Notes = append(t.Notes,
			f("iteration-2+ mean makespan: feedback %.4fs vs estimate-only %.4fs (%.2fx)", fb, lpt, lpt/fb))
	}
	t.Notes = append(t.Notes,
		"makespan = busiest worker's task-execution time; elapsed seconds additionally include oversubscription contention on hosts with fewer CPUs than workers")
	return t
}
