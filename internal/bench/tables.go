package bench

import (
	"time"

	"execmodels/internal/core"
	"execmodels/internal/hypergraph"
	"execmodels/internal/semimatching"
)

// Table1 reproduces the headline result: work stealing versus the
// traditional static (block) schedule at full scale. The paper reports a
// 50 percent performance improvement.
func (s *Suite) Table1() *Table {
	s.prepare()
	p := s.maxRanks()
	m := s.machine(p)
	static := core.StaticBlock{}.Run(s.work, m)
	steal := core.WorkStealing{Seed: s.Seed}.Run(s.work, m)
	improvement := (static.Makespan - steal.Makespan) / static.Makespan * 100
	speedup := static.Makespan / steal.Makespan
	t := &Table{
		ID:     "T1",
		Title:  f("headline: work stealing vs static block at P=%d", p),
		Header: []string{"model", "makespan(s)", "imbalance", "vs-static"},
		Rows: [][]string{
			{"static-block", f("%.4g", static.Makespan), f("%.3f", static.LoadImbalance()), "1.00x"},
			{"work-stealing", f("%.4g", steal.Makespan), f("%.3f", steal.LoadImbalance()), f("%.2fx", speedup)},
		},
	}
	t.Notes = append(t.Notes,
		f("improvement = %.1f%% — paper reports ~50%%", improvement))
	return t
}

// Table2 reproduces the per-model load-imbalance comparison at scale.
func (s *Suite) Table2() *Table {
	s.prepare()
	p := s.maxRanks()
	ideal := s.machine(p).IdealTime(s.work.TotalCost())
	t := &Table{
		ID:     "T2",
		Title:  f("load imbalance and efficiency per execution model at P=%d", p),
		Header: []string{"model", "makespan(s)", "imbalance(max/mean)", "efficiency", "idle(s)"},
	}
	for _, model := range core.AllModels(s.Seed) {
		res := model.Run(s.work, s.machine(p))
		t.Rows = append(t.Rows, []string{
			model.Name(),
			f("%.4g", res.Makespan),
			f("%.3f", res.LoadImbalance()),
			f("%.2f", res.Efficiency(ideal)),
			f("%.4g", res.TotalIdle()),
		})
	}
	t.Notes = append(t.Notes,
		"expected order: static-block worst; dynamic/stealing/semi-matching/hypergraph near 1.0 imbalance")
	return t
}

// Table3 reproduces the schedule-quality comparison between the novel
// semi-matching balancer and the hypergraph-partitioning baseline (plus
// static block for reference). The paper claims comparable performance.
func (s *Suite) Table3() *Table {
	s.prepare()
	p := s.maxRanks()
	t := &Table{
		ID:     "T3",
		Title:  f("semi-matching vs hypergraph partitioning at P=%d", p),
		Header: []string{"model", "makespan(s)", "imbalance", "comm(s,total)", "schedule-cost(s,real)"},
	}
	for _, model := range []core.Model{
		core.StaticBlock{},
		core.SemiMatchingLB{Seed: s.Seed},
		core.HypergraphLB{Seed: s.Seed},
	} {
		res := model.Run(s.work, s.machine(p))
		var comm float64
		for _, c := range res.CommTime {
			comm += c
		}
		t.Rows = append(t.Rows, []string{
			model.Name(),
			f("%.4g", res.Makespan),
			f("%.3f", res.LoadImbalance()),
			f("%.4g", comm),
			f("%.3g", res.ScheduleCost),
		})
	}
	t.Notes = append(t.Notes,
		"expected shape: semi-matching within a few % of hypergraph makespan at a fraction of the schedule cost")
	return t
}

// Table4 reproduces the partitioner-cost scaling study: real wall-clock
// cost of computing the assignment, semi-matching versus multilevel
// hypergraph partitioning, across workload sizes. This is the paper's
// "computationally expensive" claim quantified.
func (s *Suite) Table4() *Table {
	sizes := []int{1000, 4000, 16000}
	if s.Scale == "paper" {
		sizes = append(sizes, 64000)
	}
	p := s.maxRanks()
	t := &Table{
		ID:     "T4",
		Title:  f("assignment-computation cost vs task count (P=%d parts)", p),
		Header: []string{"tasks", "semi-matching(s)", "hypergraph(s)", "ratio", "sm-makespan", "hg-makespan"},
	}
	for _, n := range sizes {
		w := core.Synthetic(core.SyntheticOptions{
			NumTasks: n, Dist: "lognormal", Sigma: 1.0, Seed: s.Seed,
		})
		est := make([]float64, len(w.Tasks))
		for i, task := range w.Tasks {
			est[i] = task.EstCost
		}

		smStart := time.Now()
		b := core.SemiMatchingLB{Seed: s.Seed}.BuildGraphForBench(w, p)
		smAssign := semimatching.WeightedSemiMatch(b, est)
		smCost := time.Since(smStart).Seconds()

		hgStart := time.Now()
		h := core.BuildHypergraph(w)
		hgRes := hypergraph.Partition(h, p, hypergraph.Options{Seed: s.Seed})
		hgCost := time.Since(hgStart).Seconds()

		m := s.machine(p)
		smMk := runWithAssignment(w, m, smAssign.Of)
		hgMk := runWithAssignment(w, m, hgRes.Part)

		ratio := 0.0
		if smCost > 0 {
			ratio = hgCost / smCost
		}
		t.Rows = append(t.Rows, []string{
			f("%d", n), f("%.4g", smCost), f("%.4g", hgCost), f("%.1fx", ratio),
			f("%.4g", smMk), f("%.4g", hgMk),
		})
	}
	t.Notes = append(t.Notes,
		"expected shape: hypergraph partitioning one to two orders of magnitude more expensive, "+
			"with schedule quality comparable to semi-matching")
	return t
}

// runWithAssignment measures the makespan of a fixed assignment (compute
// only, same cost model as the executors).
func runWithAssignment(w *core.Workload, m interface {
	TaskTime(r int, cost float64) float64
	IdealTime(total float64) float64
}, assign []int) float64 {
	// Busy time only; comm is identical across the two balancers here and
	// omitting it keeps this helper independent of the executor internals.
	busy := map[int]float64{}
	for i, t := range w.Tasks {
		busy[assign[i]] += m.TaskTime(assign[i], t.Cost)
	}
	var mk float64
	for _, b := range busy {
		if b > mk {
			mk = b
		}
	}
	return mk
}

// Table5 reproduces the overhead-accounting breakdown per model at scale:
// where the non-compute time goes.
func (s *Suite) Table5() *Table {
	s.prepare()
	p := s.maxRanks()
	t := &Table{
		ID:     "T5",
		Title:  f("runtime overhead accounting at P=%d", p),
		Header: []string{"model", "makespan(s)", "comm(s)", "counter-wait(s)", "steal-time(s)", "sched-cost(s,real)", "idle(s)"},
	}
	for _, model := range core.AllModels(s.Seed) {
		res := model.Run(s.work, s.machine(p))
		var comm float64
		for _, c := range res.CommTime {
			comm += c
		}
		t.Rows = append(t.Rows, []string{
			model.Name(),
			f("%.4g", res.Makespan),
			f("%.4g", comm),
			f("%.4g", res.CounterWait),
			f("%.4g", res.StealTime),
			f("%.3g", res.ScheduleCost),
			f("%.4g", res.TotalIdle()),
		})
	}
	t.Notes = append(t.Notes,
		"expected shape: idle time dominates static models; counter wait is the dynamic model's tax; "+
			"stealing pays a small steal-time tax; balancers pay real schedule-computation cost")
	return t
}
