package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"execmodels/internal/stats"
)

// ServeSample is one finished (or abandoned) load-generator job as
// recorded by cmd/scfload: identity, size class, and the client-observed
// timings in seconds. Rejected counts resubmissions bounced by admission
// control before the job was finally accepted (or given up on).
type ServeSample struct {
	Tenant     string  `json:"tenant"`
	Molecule   string  `json:"molecule"`
	Basis      string  `json:"basis"`
	EstCost    float64 `json:"est_cost"` // admission cost units (NBF⁴)
	SubmitSec  float64 `json:"submit_sec"`
	LatencySec float64 `json:"latency_sec"` // submit → terminal state
	Rejected   int     `json:"rejected"`
	Converged  bool    `json:"converged"`
	Failed     bool    `json:"failed"`
}

// ServeLatencySummary is a percentile digest of one latency population.
type ServeLatencySummary struct {
	N      int     `json:"n"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// ServeTenantRow is one tenant's slice of the load test.
type ServeTenantRow struct {
	Tenant      string  `json:"tenant"`
	Weight      float64 `json:"weight"`
	Jobs        int     `json:"jobs"`
	Completed   int     `json:"completed"`
	Failed      int     `json:"failed"`
	Rejections  int     `json:"rejections"` // 429 bounces absorbed by retry
	ServedFlops float64 `json:"served_flops"`
	// NormShare is ServedFlops/Weight — the quantity the fair queue
	// equalizes across backlogged tenants and the input to the Jain index.
	NormShare float64             `json:"normalized_share"`
	Latency   ServeLatencySummary `json:"latency"`
}

// ServeBenchReport is the machine-readable output of the scfload run
// (committed as BENCH_serve.json; regenerate with `make bench-serve`).
type ServeBenchReport struct {
	Clients     int     `json:"clients"`
	Workers     int     `json:"server_workers"`
	DurationSec float64 `json:"duration_sec"`
	Jobs        int     `json:"jobs"`
	Completed   int     `json:"completed"`
	Failed      int     `json:"failed"`
	Rejections  int     `json:"rejections"`
	JobsPerSec  float64 `json:"jobs_per_sec"`
	FlopsPerSec float64 `json:"flops_per_sec"`
	// JainFairness is Jain's index over per-tenant weight-normalized
	// served work: 1 = perfectly fair, 1/n = one tenant took everything.
	JainFairness float64             `json:"jain_fairness"`
	Latency      ServeLatencySummary `json:"latency"`
	SubmitLat    ServeLatencySummary `json:"submit_latency"`
	Tenants      []ServeTenantRow    `json:"tenants"`
	SizeClasses  []ServeSizeClassRow `json:"size_classes"`
}

// ServeSizeClassRow summarizes one (molecule, basis) job size class —
// the heavy-tailed size distribution's footprint in the results.
type ServeSizeClassRow struct {
	Molecule string              `json:"molecule"`
	Basis    string              `json:"basis"`
	EstCost  float64             `json:"est_cost"`
	Jobs     int                 `json:"jobs"`
	Latency  ServeLatencySummary `json:"latency"`
}

func summarizeLatencies(secs []float64) ServeLatencySummary {
	if len(secs) == 0 {
		return ServeLatencySummary{}
	}
	var sum, max float64
	for _, v := range secs {
		sum += v
		if v > max {
			max = v
		}
	}
	toMs := func(s float64) float64 { return s * 1e3 }
	return ServeLatencySummary{
		N:      len(secs),
		MeanMs: toMs(sum / float64(len(secs))),
		P50Ms:  toMs(stats.Percentile(secs, 50)),
		P90Ms:  toMs(stats.Percentile(secs, 90)),
		P95Ms:  toMs(stats.Percentile(secs, 95)),
		P99Ms:  toMs(stats.Percentile(secs, 99)),
		MaxMs:  toMs(max),
	}
}

// BuildServeReport aggregates load-generator samples into the committed
// report. durationSec is the wall time of the whole run as measured by
// the load generator; weights are the tenant weights the server ran with
// (absent tenants default to weight 1).
func BuildServeReport(samples []ServeSample, clients, workers int, durationSec float64, weights map[string]float64) *ServeBenchReport {
	rep := &ServeBenchReport{
		Clients:     clients,
		Workers:     workers,
		DurationSec: durationSec,
		Jobs:        len(samples),
	}

	// Tenant and size-class rows are keyed through sorted name lists so
	// the report is byte-stable run to run.
	tenantNames := make([]string, 0, 8)
	classNames := make([]string, 0, 8)
	byTenant := map[string][]int{}
	byClass := map[string][]int{}
	var allLat, allSubmit []float64
	for i, s := range samples {
		if _, seen := byTenant[s.Tenant]; !seen {
			tenantNames = append(tenantNames, s.Tenant)
		}
		byTenant[s.Tenant] = append(byTenant[s.Tenant], i)
		ck := s.Molecule + "|" + s.Basis
		if _, seen := byClass[ck]; !seen {
			classNames = append(classNames, ck)
		}
		byClass[ck] = append(byClass[ck], i)

		rep.Rejections += s.Rejected
		switch {
		case s.Failed:
			rep.Failed++
		case s.Converged:
			rep.Completed++
			rep.FlopsPerSec += s.EstCost
		}
		allLat = append(allLat, s.LatencySec)
		allSubmit = append(allSubmit, s.SubmitSec)
	}
	sort.Strings(tenantNames)
	sort.Strings(classNames)
	if durationSec > 0 {
		rep.JobsPerSec = float64(rep.Completed) / durationSec
		rep.FlopsPerSec /= durationSec
	} else {
		rep.FlopsPerSec = 0
	}
	rep.Latency = summarizeLatencies(allLat)
	rep.SubmitLat = summarizeLatencies(allSubmit)

	shares := make([]float64, 0, len(tenantNames))
	for _, name := range tenantNames {
		row := ServeTenantRow{Tenant: name, Weight: 1}
		if w, ok := weights[name]; ok && w > 0 {
			row.Weight = w
		}
		var lats []float64
		for _, i := range byTenant[name] {
			s := samples[i]
			row.Jobs++
			row.Rejections += s.Rejected
			switch {
			case s.Failed:
				row.Failed++
			case s.Converged:
				row.Completed++
				row.ServedFlops += s.EstCost
			}
			lats = append(lats, s.LatencySec)
		}
		row.NormShare = row.ServedFlops / row.Weight
		row.Latency = summarizeLatencies(lats)
		shares = append(shares, row.NormShare)
		rep.Tenants = append(rep.Tenants, row)
	}
	if len(shares) > 0 {
		rep.JainFairness = stats.JainFairness(shares)
	}

	for _, ck := range classNames {
		idx := byClass[ck]
		s0 := samples[idx[0]]
		row := ServeSizeClassRow{Molecule: s0.Molecule, Basis: s0.Basis, EstCost: s0.EstCost, Jobs: len(idx)}
		var lats []float64
		for _, i := range idx {
			lats = append(lats, samples[i].LatencySec)
		}
		row.Latency = summarizeLatencies(lats)
		rep.SizeClasses = append(rep.SizeClasses, row)
	}
	return rep
}

// WriteServeReport writes the report as indented JSON.
func WriteServeReport(w io.Writer, rep *ServeBenchReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return fmt.Errorf("bench: serve report: %w", err)
	}
	return nil
}
