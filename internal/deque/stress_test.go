package deque

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
)

// TestStealHalfRaceStress hammers StealHalf against concurrent owner
// Push/Pop from many goroutines and asserts conservation: every task ID
// is consumed exactly once — none lost in a steal window, none
// duplicated. Run under -race this doubles as the memory-model audit of
// the deque (see `make race` and CI).
func TestStealHalfRaceStress(t *testing.T) {
	const (
		workers   = 8
		perWorker = 4000
		total     = workers * perWorker
	)
	deques := make([]*Deque, workers)
	for i := range deques {
		deques[i] = new(Deque)
	}

	var remaining atomic.Int64
	remaining.Store(total)
	consumed := make([][]int, workers) // written only by the owning goroutine

	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(wk) + 1))
			next := wk * perWorker // next own ID to publish
			end := next + perWorker
			for {
				// Publish own IDs in small batches so thieves race the
				// producer, not just the consumer.
				if next < end {
					batch := min(1+rng.Intn(16), end-next)
					if batch == 1 {
						deques[wk].Push(next)
					} else {
						ids := make([]int, batch)
						for i := range ids {
							ids[i] = next + i
						}
						deques[wk].PushBatch(ids)
					}
					next += batch
				}
				// Drain a little from the owner side.
				for i := 0; i < 8; i++ {
					id, ok := deques[wk].Pop()
					if !ok {
						break
					}
					consumed[wk] = append(consumed[wk], id)
					remaining.Add(-1)
				}
				if next < end {
					continue
				}
				if remaining.Load() == 0 {
					return
				}
				// Out of local work: steal. Half the time in bulk, half
				// single, to cover both thief paths racing Pop/Push.
				victim := rng.Intn(workers)
				if victim == wk {
					continue
				}
				if rng.Intn(2) == 0 {
					if loot := deques[victim].StealHalf(); loot != nil {
						deques[wk].PushBatch(loot)
					}
				} else if id, ok := deques[victim].Steal(); ok {
					deques[wk].Push(id)
				}
				_ = deques[victim].Len() // concurrent reader in the mix
			}
		}(wk)
	}
	wg.Wait()

	var all []int
	for _, c := range consumed {
		all = append(all, c...)
	}
	if len(all) != total {
		t.Fatalf("consumed %d task IDs, want %d", len(all), total)
	}
	sort.Ints(all)
	for i, id := range all {
		if id != i {
			t.Fatalf("task ID conservation broken at index %d: got %d (lost or duplicated)", i, id)
		}
	}
	for _, d := range deques {
		if n := d.Len(); n != 0 {
			t.Errorf("deque not drained: %d items left", n)
		}
	}
}
