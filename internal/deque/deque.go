// Package deque implements the work-stealing double-ended queue used by
// the work-stealing execution model: the owner pushes and pops task IDs at
// the bottom without contention in the common case, while thieves steal
// from the top.
//
// The implementation is a mutex-sharded variant of the Chase–Lev deque:
// owner operations and steals synchronize on a single mutex, but the fast
// path (owner pop with a non-empty queue) holds it only briefly. For the
// task granularities in this study (tasks are whole ERI blocks, ≫ 1µs)
// lock cost is negligible, and the mutex gives us StealHalf — which the
// lock-free Chase–Lev algorithm cannot express — matching the bulk-steal
// policy the paper's runtime uses.
package deque

import "sync"

// Deque is a double-ended work queue of task IDs. It is safe for
// concurrent use. The zero value is an empty, usable deque.
type Deque struct {
	mu    sync.Mutex
	items []int // guarded by mu
	head  int   // guarded by mu; index of the oldest (top) item; items[:head] are consumed
}

// Push adds a task at the bottom (owner side).
func (d *Deque) Push(id int) {
	d.mu.Lock()
	d.items = append(d.items, id)
	d.mu.Unlock()
}

// PushBatch adds several tasks at the bottom in order.
func (d *Deque) PushBatch(ids []int) {
	d.mu.Lock()
	d.items = append(d.items, ids...) //lint:ignore allocfree deque growth is amortized: the backing array doubles a bounded number of times per build, not per task
	d.mu.Unlock()
}

// Pop removes and returns the bottom task (owner side, LIFO). It reports
// false if the deque is empty.
func (d *Deque) Pop() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.head >= len(d.items) {
		return 0, false
	}
	id := d.items[len(d.items)-1]
	d.items = d.items[:len(d.items)-1]
	d.maybeCompact()
	return id, true
}

// Steal removes and returns the top task (thief side, FIFO). It reports
// false if the deque is empty.
func (d *Deque) Steal() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.head >= len(d.items) {
		return 0, false
	}
	id := d.items[d.head]
	d.head++
	d.maybeCompact()
	return id, true
}

// StealHalf removes and returns up to half of the queued tasks (rounded
// up, at least one) from the top. It returns nil if the deque is empty.
func (d *Deque) StealHalf() []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.items) - d.head
	if n <= 0 {
		return nil
	}
	take := (n + 1) / 2
	out := make([]int, take) //lint:ignore allocfree steal-transfer buffer: one allocation per successful steal, amortized over the half-deque of tasks it moves
	copy(out, d.items[d.head:d.head+take])
	d.head += take
	d.maybeCompact()
	return out
}

// Len returns the current number of queued tasks.
func (d *Deque) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.items) - d.head
}

// maybeCompact reclaims consumed prefix space; called with mu held.
func (d *Deque) maybeCompact() {
	if d.head > 64 && d.head*2 >= len(d.items) {
		d.items = append(d.items[:0], d.items[d.head:]...) //lint:ignore allocfree compaction appends into items[:0], whose capacity always suffices — no growth happens
		d.head = 0
	}
}
