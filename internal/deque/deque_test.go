package deque

import (
	"sync"
	"testing"
)

func TestPushPopLIFO(t *testing.T) {
	var d Deque
	d.Push(1)
	d.Push(2)
	d.Push(3)
	for want := 3; want >= 1; want-- {
		got, ok := d.Pop()
		if !ok || got != want {
			t.Fatalf("Pop = %d,%v want %d", got, ok, want)
		}
	}
	if _, ok := d.Pop(); ok {
		t.Fatal("Pop from empty succeeded")
	}
}

func TestStealFIFO(t *testing.T) {
	var d Deque
	d.PushBatch([]int{1, 2, 3})
	for want := 1; want <= 3; want++ {
		got, ok := d.Steal()
		if !ok || got != want {
			t.Fatalf("Steal = %d,%v want %d", got, ok, want)
		}
	}
	if _, ok := d.Steal(); ok {
		t.Fatal("Steal from empty succeeded")
	}
}

func TestOppositeEnds(t *testing.T) {
	var d Deque
	d.PushBatch([]int{1, 2, 3, 4})
	if v, _ := d.Steal(); v != 1 {
		t.Fatalf("Steal = %d", v)
	}
	if v, _ := d.Pop(); v != 4 {
		t.Fatalf("Pop = %d", v)
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d", d.Len())
	}
}

func TestStealHalf(t *testing.T) {
	var d Deque
	d.PushBatch([]int{1, 2, 3, 4, 5})
	got := d.StealHalf()
	if len(got) != 3 { // ceil(5/2)
		t.Fatalf("StealHalf took %d", len(got))
	}
	for i, want := range []int{1, 2, 3} {
		if got[i] != want {
			t.Fatalf("StealHalf[%d] = %d", i, got[i])
		}
	}
	if d.Len() != 2 {
		t.Fatalf("%d left", d.Len())
	}
	if got := d.StealHalf(); len(got) != 1 || got[0] != 4 {
		t.Fatalf("second StealHalf = %v", got)
	}
}

func TestStealHalfEmpty(t *testing.T) {
	var d Deque
	if got := d.StealHalf(); got != nil {
		t.Fatalf("StealHalf on empty = %v", got)
	}
}

func TestStealHalfSingle(t *testing.T) {
	var d Deque
	d.Push(9)
	got := d.StealHalf()
	if len(got) != 1 || got[0] != 9 {
		t.Fatalf("StealHalf = %v", got)
	}
}

// All pushed items must be consumed exactly once under concurrent
// owner pops and thief steals.
func TestConcurrentNoLossNoDup(t *testing.T) {
	var d Deque
	const n = 10000
	seen := make([]int32, n)
	var mu sync.Mutex
	mark := func(id int) {
		mu.Lock()
		seen[id]++
		mu.Unlock()
	}

	var wg sync.WaitGroup
	// Owner: pushes everything, then pops.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			d.Push(i)
		}
		for {
			id, ok := d.Pop()
			if !ok {
				return
			}
			mark(id)
		}
	}()
	// Thieves: steal singles and batches.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if w%2 == 0 {
					if id, ok := d.Steal(); ok {
						mark(id)
					}
				} else {
					for _, id := range d.StealHalf() {
						mark(id)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	// Anything left (thieves may exit early) is drained here.
	for {
		id, ok := d.Pop()
		if !ok {
			break
		}
		mark(id)
	}
	for id, c := range seen {
		if c != 1 {
			t.Fatalf("task %d consumed %d times", id, c)
		}
	}
}

func TestCompactionKeepsContents(t *testing.T) {
	var d Deque
	// Drive head far past the compaction threshold.
	for i := 0; i < 1000; i++ {
		d.Push(i)
	}
	for i := 0; i < 900; i++ {
		got, ok := d.Steal()
		if !ok || got != i {
			t.Fatalf("Steal %d = %d,%v", i, got, ok)
		}
	}
	if d.Len() != 100 {
		t.Fatalf("Len = %d", d.Len())
	}
	for i := 900; i < 1000; i++ {
		got, ok := d.Steal()
		if !ok || got != i {
			t.Fatalf("post-compaction Steal = %d,%v want %d", got, ok, i)
		}
	}
}
