package fault

import "execmodels/internal/obs"

// Metric names describing a fault plan. These are *planned* quantities —
// what the plan will inject — as opposed to the observed crash/recovery
// metrics the executors record; comparing the two is how experiments
// check that every injected fault was actually seen and survived.
const (
	MetricPlannedCrashes      = "planned_crashes_total"
	MetricCrashTime           = "crash_time_seconds"
	MetricPlannedStalls       = "planned_stalls_total"
	MetricPlannedStallSeconds = "planned_stall_seconds"
)

// PublishMetrics writes the plan's injection schedule into reg: per-rank
// crash counts and crash times (a gauge: the virtual time of the rank's
// crash), and per-rank stall counts and total stall seconds. Nil or empty
// plans publish nothing.
func (p *Plan) PublishMetrics(reg *obs.Registry) {
	if p == nil {
		return
	}
	for _, c := range p.Crashes {
		reg.Count(MetricPlannedCrashes, c.Rank, 1)
		reg.Set(MetricCrashTime, c.Rank, c.At)
	}
	for _, s := range p.Stalls {
		reg.Count(MetricPlannedStalls, s.Rank, 1)
		reg.Add(MetricPlannedStallSeconds, s.Rank, s.Duration)
	}
}
