package fault

import (
	"testing"

	"execmodels/internal/obs"
)

func TestPlanPublishMetrics(t *testing.T) {
	p := &Plan{
		Crashes: []Crash{{Rank: 1, At: 2.5}},
		Stalls:  []Stall{{Rank: 0, At: 1.0, Duration: 0.5}, {Rank: 0, At: 3.0, Duration: 0.25}},
	}
	reg := obs.NewRegistry(4)
	p.PublishMetrics(reg)

	if got := reg.CounterTotal(MetricPlannedCrashes); got != 1 {
		t.Errorf("planned crashes = %d, want 1", got)
	}
	if vec := reg.GaugeVec(MetricCrashTime); vec[1] != 2.5 {
		t.Errorf("crash time = %v, want 2.5 at rank 1", vec)
	}
	if got := reg.CounterTotal(MetricPlannedStalls); got != 2 {
		t.Errorf("planned stalls = %d, want 2", got)
	}
	if got := reg.GaugeTotal(MetricPlannedStallSeconds); got != 0.75 {
		t.Errorf("stall seconds = %v, want 0.75", got)
	}

	var nilPlan *Plan
	nilPlan.PublishMetrics(reg) // must not panic
}
