package fault

import (
	"math"
	"reflect"
	"testing"
)

func TestSpecBuildDeterministic(t *testing.T) {
	spec := Spec{
		Ranks: 32, Horizon: 1.0,
		CrashProb: 0.3, StallProb: 0.4, StallMean: 0.02,
		Drop: 0.05, Duplicate: 0.02, Delay: 0.03, DelayMean: 1e-4,
		Seed: 17,
	}
	p1, p2 := spec.Build(), spec.Build()
	if !reflect.DeepEqual(p1, p2) {
		t.Fatalf("identical specs built different plans:\n%+v\n%+v", p1, p2)
	}
	spec.Seed = 18
	if reflect.DeepEqual(p1, spec.Build()) {
		t.Fatal("different seeds built identical plans — seed is not plumbed")
	}
}

func TestSpecStallDrawsDoNotPerturbCrashes(t *testing.T) {
	base := Spec{Ranks: 16, Horizon: 1, CrashProb: 0.5, Seed: 9}
	withStalls := base
	withStalls.StallProb, withStalls.StallMean = 0.5, 0.01
	if !reflect.DeepEqual(base.Build().Crashes, withStalls.Build().Crashes) {
		t.Fatal("enabling stalls changed the crash schedule of the same seed")
	}
}

func TestInjectorCrashQueries(t *testing.T) {
	in := NewInjector(&Plan{Crashes: []Crash{{Rank: 2, At: 0.5}, {Rank: 2, At: 0.3}}}, 4)
	if got := in.CrashTime(2); got != 0.3 {
		t.Fatalf("duplicate crash should keep the earliest: got %v", got)
	}
	if !math.IsInf(in.CrashTime(0), 1) {
		t.Fatal("rank 0 should never crash")
	}
	if !in.AliveAt(2, 0.29) || in.AliveAt(2, 0.3) {
		t.Fatal("AliveAt must be exclusive at the crash instant")
	}
	if in.NumCrashes() != 1 {
		t.Fatalf("NumCrashes = %d, want 1", in.NumCrashes())
	}
}

func TestInjectorStallWindows(t *testing.T) {
	// Exactly-representable binary fractions so equality checks are exact.
	in := NewInjector(&Plan{Stalls: []Stall{
		{Rank: 1, At: 0.5, Duration: 0.125},
		{Rank: 1, At: 0.25, Duration: 0.125},
		{Rank: 1, At: 0.625, Duration: 0.0625}, // chains off the first window
	}}, 2)
	if got := in.StallEnd(1, 0.3125); got != 0.375 {
		t.Fatalf("StallEnd inside a window = %v, want 0.375", got)
	}
	if got := in.StallEnd(1, 0.5625); got != 0.6875 {
		t.Fatalf("StallEnd must chain back-to-back windows: got %v, want 0.6875", got)
	}
	if got := in.StallEnd(1, 0.4375); got != 0.4375 {
		t.Fatalf("StallEnd outside a window must be identity: got %v", got)
	}
	if got := in.StallEnd(0, 0.3125); got != 0.3125 {
		t.Fatalf("other ranks must be unaffected: got %v", got)
	}
	// A stall opening mid-task stretches the task by its duration, and the
	// stretched window can swallow later stalls in turn: the 0.5 stall
	// pushes the end to 0.6875, which now covers the 0.625 stall.
	if got := in.ExtendForStalls(1, 0.4375, 0.5625); got != 0.5625+0.125+0.0625 {
		t.Fatalf("ExtendForStalls = %v, want 0.75", got)
	}
	if got := in.ExtendForStalls(1, 0.375, 0.4375); got != 0.4375 {
		t.Fatalf("ExtendForStalls with no stall inside = %v, want 0.4375", got)
	}
}

func TestLinkFilterPureAndSeeded(t *testing.T) {
	f := &LinkFilter{LinkFaults{Drop: 0.2, Duplicate: 0.1, Delay: 0.1, DelayMean: 1e-4, Seed: 5}}
	for seq := 0; seq < 100; seq++ {
		if f.Fate(1, 2, seq) != f.Fate(1, 2, seq) {
			t.Fatal("Fate is not a pure function of its arguments")
		}
		if f.DelayTime(1, 2, seq) != f.DelayTime(1, 2, seq) {
			t.Fatal("DelayTime is not a pure function of its arguments")
		}
	}
	// The empirical fate mix over many messages should be close to the
	// configured probabilities.
	const n = 20000
	counts := map[Verdict]int{}
	for seq := 0; seq < n; seq++ {
		counts[f.Fate(3, 4, seq)]++
	}
	for v, want := range map[Verdict]float64{Drop: 0.2, Duplicate: 0.1, Delayed: 0.1, Deliver: 0.6} {
		got := float64(counts[v]) / n
		if math.Abs(got-want) > 0.02 {
			t.Errorf("fate %v frequency %.3f, want ~%.2f", v, got, want)
		}
	}
	// Different links and different seeds decorrelate.
	same := 0
	g := &LinkFilter{LinkFaults{Drop: 0.2, Duplicate: 0.1, Delay: 0.1, Seed: 6}}
	for seq := 0; seq < n; seq++ {
		if f.Fate(3, 4, seq) == g.Fate(3, 4, seq) {
			same++
		}
	}
	if same == n {
		t.Fatal("seed does not influence message fates")
	}
}

func TestLinkFilterNilSafe(t *testing.T) {
	var f *LinkFilter
	if f.Fate(0, 1, 0) != Deliver || f.DelayTime(0, 1, 0) != 0 {
		t.Fatal("nil filter must report clean delivery")
	}
	in := NewInjector(&Plan{}, 3)
	if in.Links() != nil {
		t.Fatal("plan without link faults should have a nil filter")
	}
}

func TestPlanEmpty(t *testing.T) {
	if !(&Plan{}).Empty() || !(*Plan)(nil).Empty() {
		t.Fatal("zero/nil plans must be empty")
	}
	if (&Plan{Crashes: []Crash{{Rank: 0, At: 1}}}).Empty() {
		t.Fatal("plan with a crash is not empty")
	}
	if (&Plan{Links: LinkFaults{Drop: 0.1}}).Empty() {
		t.Fatal("plan with link faults is not empty")
	}
}
