// Package fault is the deterministic fault-injection subsystem: it
// describes rank crashes, transient stalls and per-link message faults as
// an explicit, seed-replayable Plan, and exposes the query surface
// (Injector, LinkFilter) the platform model and the resilient executors
// consult during a run.
//
// Determinism contract: a Plan is either written out literally or built
// from a Spec through an explicit seeded *rand.Rand, and every runtime
// query (is rank r alive at time t? what happens to the k-th message on
// link src→dst?) is a pure function of (plan, arguments). Two runs with
// the same workload, machine, seed and plan therefore produce
// bit-identical schedules and metrics — the same reproducibility policy
// execlint's determinism analyzer enforces on the execution models
// themselves, extended to the faults they recover from.
package fault

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Crash is a permanent fail-stop of one rank: at virtual time At the rank
// stops executing, stops serving steal/counter requests, and never
// returns. Work it had completed before At is durable (results were
// already accumulated remotely); work it held or was executing is lost
// until survivors detect the failure and reclaim it.
type Crash struct {
	Rank int
	At   float64
}

// Stall freezes a rank for the window [At, At+Duration): it makes no
// progress and answers no requests, then resumes where it left off — the
// transient cousin of a crash (a seconds-long GC pause, an OS hang, a
// power-capping excursion to near-zero frequency).
type Stall struct {
	Rank     int
	At       float64
	Duration float64
}

// LinkFaults gives the per-message fault probabilities applied to every
// directed link. The three probabilities must sum to at most 1; the
// remainder is clean delivery.
type LinkFaults struct {
	Drop      float64 // message silently lost
	Duplicate float64 // message delivered twice
	Delay     float64 // message delivered late
	DelayMean float64 // mean extra latency of a delayed message (seconds)
	Seed      int64   // hash seed for the per-message fate draw
}

// enabled reports whether any fault probability is set.
func (l LinkFaults) enabled() bool {
	return l.Drop > 0 || l.Duplicate > 0 || l.Delay > 0
}

// Plan is a complete, explicit fault schedule for one run. The zero value
// is a fault-free plan. Plans are plain data: they can be constructed
// literally in tests, generated from a Spec, or serialized alongside the
// seed to make a faulty run replayable.
type Plan struct {
	Crashes []Crash
	Stalls  []Stall
	Links   LinkFaults
}

// Empty reports whether the plan injects nothing at all.
func (p *Plan) Empty() bool {
	return p == nil || (len(p.Crashes) == 0 && len(p.Stalls) == 0 && !p.Links.enabled())
}

// Spec draws a Plan from fault-rate parameters. All randomness flows
// through one *rand.Rand seeded from Seed, with a fixed draw order, so a
// Spec is a reproducible recipe: Build is a pure function of the Spec.
type Spec struct {
	Ranks   int
	Horizon float64 // virtual-time window [0, Horizon) faults land in

	CrashProb float64 // per-rank probability of one fail-stop in the window
	StallProb float64 // per-rank probability of one stall in the window
	StallMean float64 // mean stall duration (uniform in [0.5, 1.5]×mean)

	Drop, Duplicate, Delay float64 // per-message link-fault probabilities
	DelayMean              float64 // mean extra delay of a delayed message

	Seed int64
}

// Build draws the plan. Crash draws happen first (one Bernoulli + one
// uniform per rank), then stall draws, so adding stall parameters never
// perturbs the crash schedule of an existing seed.
func (s Spec) Build() *Plan {
	if s.Ranks <= 0 {
		panic(fmt.Sprintf("fault: Spec.Ranks = %d", s.Ranks))
	}
	rng := rand.New(rand.NewSource(s.Seed))
	p := &Plan{Links: LinkFaults{
		Drop: s.Drop, Duplicate: s.Duplicate, Delay: s.Delay,
		DelayMean: s.DelayMean, Seed: s.Seed,
	}}
	for r := 0; r < s.Ranks; r++ {
		// Draw both values unconditionally so each rank consumes a fixed
		// number of variates and the schedules of later ranks do not
		// depend on earlier ranks' outcomes.
		hit, at := rng.Float64(), rng.Float64()*s.Horizon
		if s.CrashProb > 0 && hit < s.CrashProb {
			p.Crashes = append(p.Crashes, Crash{Rank: r, At: at})
		}
	}
	for r := 0; r < s.Ranks; r++ {
		hit, at, dur := rng.Float64(), rng.Float64()*s.Horizon, (0.5+rng.Float64())*s.StallMean
		if s.StallProb > 0 && hit < s.StallProb {
			p.Stalls = append(p.Stalls, Stall{Rank: r, At: at, Duration: dur})
		}
	}
	return p
}

// Injector answers the fault queries executors make during a run. It is
// immutable after construction: all methods are pure reads, safe for
// concurrent use and free of hidden state that could break replay.
type Injector struct {
	ranks  int
	crash  []float64 // per-rank crash time; +Inf = never fails
	stalls [][]Stall // per-rank stalls, sorted by start time
	links  *LinkFilter
}

// NewInjector compiles a plan for a machine with the given rank count.
// Out-of-range ranks panic (a plan built for the wrong machine is a bug,
// not a condition); duplicate crashes keep the earliest.
func NewInjector(p *Plan, ranks int) *Injector {
	if ranks <= 0 {
		panic(fmt.Sprintf("fault: injector over %d ranks", ranks))
	}
	in := &Injector{
		ranks:  ranks,
		crash:  make([]float64, ranks),
		stalls: make([][]Stall, ranks),
	}
	for r := range in.crash {
		in.crash[r] = math.Inf(1)
	}
	if p == nil {
		return in
	}
	for _, c := range p.Crashes {
		if c.Rank < 0 || c.Rank >= ranks {
			panic(fmt.Sprintf("fault: crash rank %d out of %d", c.Rank, ranks))
		}
		if c.At < in.crash[c.Rank] {
			in.crash[c.Rank] = math.Max(c.At, 0)
		}
	}
	for _, s := range p.Stalls {
		if s.Rank < 0 || s.Rank >= ranks {
			panic(fmt.Sprintf("fault: stall rank %d out of %d", s.Rank, ranks))
		}
		if s.Duration > 0 {
			in.stalls[s.Rank] = append(in.stalls[s.Rank], s)
		}
	}
	for r := range in.stalls {
		sort.Slice(in.stalls[r], func(i, j int) bool {
			return in.stalls[r][i].At < in.stalls[r][j].At
		})
	}
	if p.Links.enabled() {
		in.links = &LinkFilter{LinkFaults: p.Links}
	}
	return in
}

// CrashTime returns when rank r fail-stops (+Inf if it never does).
func (in *Injector) CrashTime(r int) float64 { return in.crash[r] }

// AliveAt reports whether rank r has not yet crashed at time t.
func (in *Injector) AliveAt(r int, t float64) bool { return t < in.crash[r] }

// NumCrashes returns how many ranks the plan fail-stops.
func (in *Injector) NumCrashes() int {
	n := 0
	for _, c := range in.crash {
		if !math.IsInf(c, 1) {
			n++
		}
	}
	return n
}

// StallEnd returns the time rank r can next make progress from t: if t
// falls inside a stall window the end of that window (chaining through
// back-to-back windows), otherwise t itself.
func (in *Injector) StallEnd(r int, t float64) float64 {
	for _, s := range in.stalls[r] {
		if s.At <= t && t < s.At+s.Duration {
			t = s.At + s.Duration
		}
	}
	return t
}

// ExtendForStalls stretches an execution interval [start, end) by every
// stall window opening inside it: the rank freezes mid-task and resumes,
// so the work finishes late by the summed stall durations. Callers align
// start with StallEnd first so start itself is never inside a window.
func (in *Injector) ExtendForStalls(r int, start, end float64) float64 {
	for _, s := range in.stalls[r] {
		if s.At >= start && s.At < end {
			end += s.Duration
		}
	}
	return end
}

// Links returns the per-message fault filter, or nil when the plan has no
// link faults. A nil *LinkFilter is valid: its methods report clean
// delivery.
func (in *Injector) Links() *LinkFilter { return in.links }

// Verdict is the fate of one message.
type Verdict int

const (
	// Deliver: the message arrives normally.
	Deliver Verdict = iota
	// Drop: the message is silently lost.
	Drop
	// Duplicate: the message arrives twice.
	Duplicate
	// Delayed: the message arrives late by DelayTime.
	Delayed
)

// String renders the verdict.
func (v Verdict) String() string {
	switch v {
	case Drop:
		return "drop"
	case Duplicate:
		return "duplicate"
	case Delayed:
		return "delayed"
	}
	return "deliver"
}

// LinkFilter classifies messages. The fate of the seq-th message on the
// directed link src→dst is a pure hash of (seed, src, dst, seq) — no
// mutable stream — so concurrent runtimes (internal/mp) and sequential
// simulators draw identical verdicts for the same message identity
// regardless of arrival order.
type LinkFilter struct {
	LinkFaults
}

// Fate classifies the seq-th message from src to dst. Nil-safe.
func (f *LinkFilter) Fate(src, dst, seq int) Verdict {
	if f == nil || !f.enabled() {
		return Deliver
	}
	u := f.uniform(src, dst, seq, 0)
	switch {
	case u < f.Drop:
		return Drop
	case u < f.Drop+f.Duplicate:
		return Duplicate
	case u < f.Drop+f.Duplicate+f.Delay:
		return Delayed
	}
	return Deliver
}

// DelayTime returns the extra latency of a delayed message: exponential
// with mean DelayMean, drawn from an independent hash stream so it never
// correlates with the fate draw.
func (f *LinkFilter) DelayTime(src, dst, seq int) float64 {
	if f == nil || f.DelayMean <= 0 {
		return 0
	}
	u := f.uniform(src, dst, seq, 1)
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -math.Log(1-u) * f.DelayMean
}

// uniform hashes (seed, src, dst, seq, stream) to [0,1) — the same
// splitmix-style mix the cluster throttling model uses.
func (f *LinkFilter) uniform(src, dst, seq, stream int) float64 {
	h := uint64(f.Seed)*0x9e3779b97f4a7c15 +
		uint64(src)*0xbf58476d1ce4e5b9 +
		uint64(dst)*0x94d049bb133111eb +
		uint64(seq)*0x2545f4914f6cdd1d +
		uint64(stream)*0xff51afd7ed558ccd
	h ^= h >> 31
	h *= 0xd6e8feb86659fd93
	h ^= h >> 27
	h *= 0xc2b2ae3d27d4eb4f
	h ^= h >> 33
	return float64(h>>11) / float64(1<<53)
}
