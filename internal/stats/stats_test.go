package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("%+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(1.25)) > 1e-12 {
		t.Fatalf("Std = %v", s.Std)
	}
	if s.MaxOverMean != 1.6 {
		t.Fatalf("MaxOverMean = %v", s.MaxOverMean)
	}
}

func TestSummarizeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Summarize(nil)
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if p := Percentile(xs, 50); p != 3 {
		t.Fatalf("P50 = %v", p)
	}
	if p := Percentile(xs, 0); p != 1 {
		t.Fatalf("P0 = %v", p)
	}
	if p := Percentile(xs, 100); p != 5 {
		t.Fatalf("P100 = %v", p)
	}
	if p := Percentile(xs, 25); p != 2 {
		t.Fatalf("P25 = %v", p)
	}
	if p := Percentile([]float64{1, 2}, 50); p != 1.5 {
		t.Fatalf("interpolated P50 = %v", p)
	}
}

func TestPercentileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+rng.Intn(50))
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 10 {
			v := Percentile(xs, p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGini(t *testing.T) {
	if g := Gini([]float64{1, 1, 1, 1}); math.Abs(g) > 1e-12 {
		t.Fatalf("equal sample Gini = %v", g)
	}
	// One has everything (n=4): Gini = (n-1)/n = 0.75.
	if g := Gini([]float64{0, 0, 0, 8}); math.Abs(g-0.75) > 1e-12 {
		t.Fatalf("concentrated Gini = %v", g)
	}
	if g := Gini([]float64{0, 0}); g != 0 {
		t.Fatalf("zero-total Gini = %v", g)
	}
}

func TestGiniInvariantToScale(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 2+rng.Intn(30))
		for i := range xs {
			xs[i] = rng.Float64() * 10
		}
		g1 := Gini(xs)
		scaled := make([]float64, len(xs))
		for i := range xs {
			scaled[i] = xs[i] * 7.5
		}
		return math.Abs(g1-Gini(scaled)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLoadImbalance(t *testing.T) {
	if li := LoadImbalance([]float64{2, 2, 2}); li != 1 {
		t.Fatalf("balanced = %v", li)
	}
	if li := LoadImbalance([]float64{4, 1, 1}); li != 2 {
		t.Fatalf("imbalanced = %v", li)
	}
	if li := LoadImbalance([]float64{0, 0}); li != 0 {
		t.Fatalf("all-zero = %v", li)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{1, 10, 100, 1000}
	h := Histogram(xs, 3)
	if len(h) != 3 {
		t.Fatalf("%d buckets", len(h))
	}
	var total int
	for _, b := range h {
		total += b.Count
		if b.Hi < b.Lo {
			t.Fatalf("inverted bucket %+v", b)
		}
	}
	if total != len(xs) {
		t.Fatalf("histogram lost values: %d", total)
	}
}

func TestHistogramSingleValue(t *testing.T) {
	h := Histogram([]float64{5, 5, 5}, 4)
	if len(h) != 1 || h[0].Count != 3 {
		t.Fatalf("%+v", h)
	}
}

func TestHistogramRejectsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Histogram([]float64{1, -1}, 2)
}

func TestHistogramCoversAll(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+rng.Intn(200))
		for i := range xs {
			xs[i] = math.Exp(rng.NormFloat64() * 2)
		}
		nb := 1 + rng.Intn(20)
		var total int
		for _, b := range Histogram(xs, nb) {
			total += b.Count
		}
		return total == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJainFairness(t *testing.T) {
	if j := JainFairness([]float64{2, 2, 2, 2}); math.Abs(j-1) > 1e-12 {
		t.Fatalf("even = %v", j)
	}
	if j := JainFairness([]float64{8, 0, 0, 0}); math.Abs(j-0.25) > 1e-12 {
		t.Fatalf("concentrated = %v, want 1/n", j)
	}
	if j := JainFairness([]float64{0, 0}); j != 1 {
		t.Fatalf("all-zero = %v", j)
	}
}

func TestJainBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+rng.Intn(30))
		for i := range xs {
			xs[i] = rng.Float64() * 10
		}
		j := JainFairness(xs)
		return j >= 1/float64(len(xs))-1e-12 && j <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUtilization(t *testing.T) {
	// Two ranks, horizon 10, 2 buckets. Rank A busy 0-10, rank B busy 0-5.
	starts := []float64{0, 0}
	ends := []float64{10, 5}
	u := Utilization(starts, ends, 2, 10, 2)
	if math.Abs(u[0]-1.0) > 1e-12 {
		t.Fatalf("first half utilization %v, want 1.0", u[0])
	}
	if math.Abs(u[1]-0.5) > 1e-12 {
		t.Fatalf("second half utilization %v, want 0.5", u[1])
	}
}

func TestUtilizationClipsToHorizon(t *testing.T) {
	u := Utilization([]float64{0}, []float64{20}, 1, 10, 5)
	for b, v := range u {
		if math.Abs(v-1) > 1e-12 {
			t.Fatalf("bucket %d = %v", b, v)
		}
	}
}

func TestUtilizationBadInputPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Utilization([]float64{0}, []float64{1}, 1, 0, 2)
}

func TestSpeedup(t *testing.T) {
	s := Speedup(10, []float64{10, 5, 2.5, 0})
	want := []float64{1, 2, 4, 0}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("Speedup = %v", s)
		}
	}
}

// --- edge cases: empty, single-sample, and NaN-freedom guarantees ---

// TestEmptyInputsPanic pins down the contract that every sample-taking
// entry point rejects an empty sample loudly instead of returning NaNs
// that would silently poison a results table.
func TestEmptyInputsPanic(t *testing.T) {
	cases := map[string]func(){
		"Percentile":    func() { Percentile(nil, 50) },
		"Gini":          func() { Gini(nil) },
		"LoadImbalance": func() { LoadImbalance(nil) },
		"JainFairness":  func() { JainFairness(nil) },
		"Histogram":     func() { Histogram(nil, 4) },
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s(empty) did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestSingleSample checks the n=1 degenerate cases: percentiles collapse
// to the value, spread metrics to zero, fairness to perfect.
func TestSingleSample(t *testing.T) {
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.Min != 7 || s.Max != 7 {
		t.Fatalf("Summarize([7]) = %+v", s)
	}
	if s.Std != 0 || s.CoefficientOfVar != 0 || s.Gini != 0 {
		t.Fatalf("single sample has nonzero spread: %+v", s)
	}
	if s.P50 != 7 || s.P90 != 7 || s.P99 != 7 {
		t.Fatalf("single-sample percentiles: %+v", s)
	}
	if got := Percentile([]float64{7}, 0); got != 7 {
		t.Fatalf("P0 of [7] = %v", got)
	}
	if got := Percentile([]float64{7}, 100); got != 7 {
		t.Fatalf("P100 of [7] = %v", got)
	}
	if got := LoadImbalance([]float64{7}); got != 1 {
		t.Fatalf("LoadImbalance of one rank = %v, want 1", got)
	}
	if got := JainFairness([]float64{7}); got != 1 {
		t.Fatalf("JainFairness of one rank = %v, want 1", got)
	}
}

// TestZeroSamplesNaNFree checks the all-zero guards: idle-rank metric
// vectors (all busy times zero) must yield defined values, never NaN
// from 0/0.
func TestZeroSamplesNaNFree(t *testing.T) {
	zeros := []float64{0, 0, 0, 0}
	s := Summarize(zeros)
	if s.Mean != 0 || s.MaxOverMean != 0 || s.CoefficientOfVar != 0 || s.Gini != 0 {
		t.Fatalf("Summarize(zeros) = %+v", s)
	}
	if got := LoadImbalance(zeros); got != 0 {
		t.Fatalf("LoadImbalance(zeros) = %v", got)
	}
	if got := JainFairness(zeros); got != 1 {
		t.Fatalf("JainFairness(zeros) = %v, want 1 (vacuously fair)", got)
	}
	if got := Gini(zeros); got != 0 {
		t.Fatalf("Gini(zeros) = %v", got)
	}
}

// TestPercentileEdgeTable pins the edge behavior of Percentile: p at and
// beyond the [0, 100] bounds clamps to the sample min/max (for n ≥ 1,
// including n = 1), an empty sample panics, and a NaN p panics instead of
// indexing the sample with int(NaN), whose value is platform-dependent.
func TestPercentileEdgeTable(t *testing.T) {
	cases := []struct {
		name   string
		xs     []float64
		p      float64
		want   float64 // ignored when panics
		panics bool
	}{
		{name: "p0 clamps to min", xs: []float64{3, 1, 2}, p: 0, want: 1},
		{name: "p100 clamps to max", xs: []float64{3, 1, 2}, p: 100, want: 3},
		{name: "negative p clamps to min", xs: []float64{3, 1, 2}, p: -10, want: 1},
		{name: "p over 100 clamps to max", xs: []float64{3, 1, 2}, p: 150, want: 3},
		{name: "n=1 p0", xs: []float64{42}, p: 0, want: 42},
		{name: "n=1 p50", xs: []float64{42}, p: 50, want: 42},
		{name: "n=1 p100", xs: []float64{42}, p: 100, want: 42},
		{name: "n=0 panics", xs: nil, p: 50, panics: true},
		{name: "NaN p panics", xs: []float64{1, 2, 3}, p: math.NaN(), panics: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); (r != nil) != tc.panics {
					t.Fatalf("panic = %v, want panics = %v", r, tc.panics)
				}
			}()
			got := Percentile(tc.xs, tc.p)
			if tc.panics {
				t.Fatalf("Percentile returned %v, want panic", got)
			}
			if got != tc.want {
				t.Fatalf("Percentile(%v, %v) = %v, want %v", tc.xs, tc.p, got, tc.want)
			}
		})
	}
}

// TestSummarizeNaNFreeProperty fuzzes Summarize over random non-negative
// samples (the domain our per-rank metrics live in) and asserts no field
// ever comes back NaN or infinite.
func TestSummarizeNaNFreeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			if rng.Intn(4) == 0 {
				xs[i] = 0 // sprinkle exact zeros: idle ranks are common
			} else {
				xs[i] = math.Exp(rng.NormFloat64() * 3)
			}
		}
		s := Summarize(xs)
		for name, v := range map[string]float64{
			"Mean": s.Mean, "Std": s.Std, "Min": s.Min, "Max": s.Max,
			"P50": s.P50, "P90": s.P90, "P99": s.P99,
			"MaxOverMean": s.MaxOverMean, "CoV": s.CoefficientOfVar, "Gini": s.Gini,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("trial %d: %s = %v for %v", trial, name, v, xs)
			}
		}
	}
}
