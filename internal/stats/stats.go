// Package stats provides the summary statistics, histograms and
// load-balance metrics used to report the experiments.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N                int
	Mean, Std        float64
	Min, Max         float64
	P50, P90, P99    float64
	MaxOverMean      float64 // load-imbalance style ratio
	CoefficientOfVar float64 // Std/Mean
	Gini             float64 // inequality of the sample
}

// Summarize computes a Summary of xs. It panics on an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.Std = math.Sqrt(ss / float64(len(xs)))
	s.P50 = Percentile(xs, 50)
	s.P90 = Percentile(xs, 90)
	s.P99 = Percentile(xs, 99)
	if s.Mean != 0 {
		s.MaxOverMean = s.Max / s.Mean
		s.CoefficientOfVar = s.Std / s.Mean
	}
	s.Gini = Gini(xs)
	return s
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between order statistics. p outside [0, 100] clamps to
// the sample min/max; a NaN p panics (it would otherwise fall through
// every comparison and index the sample with int(NaN), whose value is
// platform-dependent).
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	if math.IsNaN(p) {
		panic("stats: Percentile p must not be NaN")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Gini returns the Gini coefficient of the (non-negative) sample: 0 for
// perfectly equal values, → 1 for extreme inequality.
func Gini(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		panic("stats: empty sample")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var cum, total float64
	for i, x := range sorted {
		cum += float64(i+1) * x
		total += x
	}
	if total == 0 {
		return 0
	}
	return (2*cum)/(float64(n)*total) - (float64(n)+1)/float64(n)
}

// LoadImbalance returns max/mean of the per-rank values (the paper's
// standard λ metric); 1.0 means perfectly balanced.
func LoadImbalance(perRank []float64) float64 {
	if len(perRank) == 0 {
		panic("stats: empty sample")
	}
	var sum, mx float64
	for _, x := range perRank {
		sum += x
		if x > mx {
			mx = x
		}
	}
	if sum == 0 {
		return 0
	}
	return mx / (sum / float64(len(perRank)))
}

// Bucket is one histogram bin.
type Bucket struct {
	Lo, Hi float64
	Count  int
}

// Histogram builds nb log-spaced buckets over xs (all values must be
// positive). Log spacing matches the heavy-tailed task-cost distributions
// under study.
func Histogram(xs []float64, nb int) []Bucket {
	if len(xs) == 0 || nb < 1 {
		panic("stats: bad histogram input")
	}
	mn, mx := math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: Histogram needs positive values, got %v", x))
		}
		mn = math.Min(mn, x)
		mx = math.Max(mx, x)
	}
	if mn == mx {
		return []Bucket{{Lo: mn, Hi: mx, Count: len(xs)}}
	}
	lmn, lmx := math.Log(mn), math.Log(mx)
	buckets := make([]Bucket, nb)
	for i := range buckets {
		buckets[i].Lo = math.Exp(lmn + (lmx-lmn)*float64(i)/float64(nb))
		buckets[i].Hi = math.Exp(lmn + (lmx-lmn)*float64(i+1)/float64(nb))
	}
	for _, x := range xs {
		idx := int(float64(nb) * (math.Log(x) - lmn) / (lmx - lmn))
		if idx >= nb {
			idx = nb - 1
		}
		buckets[idx].Count++
	}
	return buckets
}

// JainFairness returns Jain's fairness index (Σx)²/(n·Σx²) of the
// per-rank values: 1.0 for perfectly even, 1/n when one rank has
// everything. A complement to the max/mean imbalance metric that weighs
// the whole distribution rather than just the maximum.
func JainFairness(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// Utilization buckets the trace-like busy intervals into nb equal time
// windows over [0, end] and returns the fraction of rank-time spent busy
// in each window — the utilization timeline of a run.
func Utilization(busyStart, busyEnd []float64, ranks int, end float64, nb int) []float64 {
	if len(busyStart) != len(busyEnd) {
		panic("stats: interval slice mismatch")
	}
	if nb < 1 || end <= 0 || ranks < 1 {
		panic("stats: bad utilization parameters")
	}
	out := make([]float64, nb)
	width := end / float64(nb)
	for i := range busyStart {
		s, e := busyStart[i], busyEnd[i]
		if e > end {
			e = end
		}
		for b := int(s / width); b < nb && float64(b)*width < e; b++ {
			lo := math.Max(s, float64(b)*width)
			hi := math.Min(e, float64(b+1)*width)
			if hi > lo {
				out[b] += hi - lo
			}
		}
	}
	capacity := width * float64(ranks)
	for b := range out {
		out[b] /= capacity
	}
	return out
}

// Speedup returns t1/tp for each entry of tp.
func Speedup(t1 float64, tp []float64) []float64 {
	out := make([]float64, len(tp))
	for i, t := range tp {
		if t > 0 {
			out[i] = t1 / t
		}
	}
	return out
}
