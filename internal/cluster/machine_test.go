package cluster

import (
	"math"
	"testing"
)

func TestNewDefaults(t *testing.T) {
	m := New(Config{Ranks: 4})
	if m.P != 4 {
		t.Fatalf("P = %d", m.P)
	}
	for r := 0; r < 4; r++ {
		if m.Speed(r) != 1e9 {
			t.Fatalf("default speed = %v", m.Speed(r))
		}
	}
	if m.Cfg.Latency != 1e-6 || m.Cfg.Bandwidth != 5e9 {
		t.Fatalf("defaults not applied: %+v", m.Cfg)
	}
}

func TestNewZeroRanks(t *testing.T) {
	if m := New(Config{}); m.P != 1 {
		t.Fatalf("zero ranks should default to 1, got %d", m.P)
	}
}

func TestHeterogeneitySpread(t *testing.T) {
	m := New(Config{Ranks: 200, Heterogeneity: 0.3, Seed: 1})
	lo, hi := math.Inf(1), math.Inf(-1)
	for r := 0; r < m.P; r++ {
		s := m.Speed(r) / 1e9
		lo = math.Min(lo, s)
		hi = math.Max(hi, s)
		if s < 0.7-1e-12 || s > 1.3+1e-12 {
			t.Fatalf("speed %v outside [0.7, 1.3]", s)
		}
	}
	if hi-lo < 0.3 {
		t.Fatalf("spread %v too small for h=0.3 over 200 ranks", hi-lo)
	}
}

func TestHeterogeneityOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Ranks: 2, Heterogeneity: 1})
}

func TestTaskTimeDeterministicNoNoise(t *testing.T) {
	m := New(Config{Ranks: 2, Seed: 3})
	t1 := m.TaskTime(0, 1e9)
	t2 := m.TaskTime(0, 1e9)
	if t1 != t2 {
		t.Fatal("noise-free TaskTime not deterministic")
	}
	want := 1.0 + m.Cfg.TaskOverhead
	if math.Abs(t1-want) > 1e-15 {
		t.Fatalf("TaskTime = %v, want %v", t1, want)
	}
}

func TestTaskTimeNoiseOnlySlows(t *testing.T) {
	m := New(Config{Ranks: 1, NoiseSigma: 0.5, Seed: 7})
	base := 1.0 + m.Cfg.TaskOverhead
	for i := 0; i < 1000; i++ {
		if tt := m.TaskTime(0, 1e9); tt < base-1e-12 {
			t.Fatalf("noise sped a task up: %v < %v", tt, base)
		}
	}
}

func TestTaskTimeNoiseReproducible(t *testing.T) {
	m1 := New(Config{Ranks: 1, NoiseSigma: 0.2, Seed: 5})
	m2 := New(Config{Ranks: 1, NoiseSigma: 0.2, Seed: 5})
	for i := 0; i < 100; i++ {
		if m1.TaskTime(0, 1e6) != m2.TaskTime(0, 1e6) {
			t.Fatal("same seed diverged")
		}
	}
}

func TestResetReseeds(t *testing.T) {
	m := New(Config{Ranks: 1, NoiseSigma: 0.2, Seed: 5})
	a := m.TaskTime(0, 1e6)
	m.Reset(5)
	// New(5) consumed no normals before the first TaskTime (no
	// heterogeneity draws with h=0), so the streams must match.
	if b := m.TaskTime(0, 1e6); a != b {
		t.Fatalf("Reset(5) stream differs: %v vs %v", a, b)
	}
}

func TestXferAndRoundTrip(t *testing.T) {
	m := New(Config{Ranks: 2, Latency: 1e-6, Bandwidth: 1e9})
	if got := m.XferTime(1000); math.Abs(got-(1e-6+1e-6)) > 1e-18 {
		t.Fatalf("XferTime = %v", got)
	}
	if got := m.RoundTrip(); got != 2e-6 {
		t.Fatalf("RoundTrip = %v", got)
	}
}

func TestIdealTime(t *testing.T) {
	m := New(Config{Ranks: 4, Speed: 2})
	if got := m.IdealTime(16); math.Abs(got-2) > 1e-12 {
		t.Fatalf("IdealTime = %v, want 2", got)
	}
	if got := m.MeanSpeed(); got != 2 {
		t.Fatalf("MeanSpeed = %v", got)
	}
}

func TestCounterAgentSerializes(t *testing.T) {
	m := New(Config{Ranks: 4, Latency: 1e-6, CounterService: 1e-6})
	c := NewCounterAgent(m)
	// Two requests arriving at the same time: the second must queue.
	v1, d1 := c.FetchAdd(0, 1)
	v2, d2 := c.FetchAdd(0, 1)
	if v1 != 0 || v2 != 1 {
		t.Fatalf("values %d %d", v1, v2)
	}
	// First: arrive at 1µs, served to 2µs, response at 3µs.
	if math.Abs(d1-3e-6) > 1e-18 {
		t.Fatalf("d1 = %v", d1)
	}
	// Second: arrive 1µs, start 2µs, done 3µs, response 4µs.
	if math.Abs(d2-4e-6) > 1e-18 {
		t.Fatalf("d2 = %v", d2)
	}
	if c.TotalWait() <= 0 {
		t.Fatal("expected queueing wait")
	}
	if c.Ops() != 2 || c.Value() != 2 {
		t.Fatalf("ops=%d value=%d", c.Ops(), c.Value())
	}
}

func TestCounterAgentNoContention(t *testing.T) {
	m := New(Config{Ranks: 2, Latency: 1e-6, CounterService: 1e-7})
	c := NewCounterAgent(m)
	_, d1 := c.FetchAdd(0, 1)
	_, d2 := c.FetchAdd(d1, 1) // well after the first completes
	if c.TotalWait() != 0 {
		t.Fatalf("unexpected wait %v", c.TotalWait())
	}
	if d2 <= d1 {
		t.Fatal("time must advance")
	}
}

func TestTraceBusyTime(t *testing.T) {
	var tr Trace
	tr.Record(Interval{Rank: 0, Start: 0, End: 2, TaskID: 1, Activity: "task"})
	tr.Record(Interval{Rank: 0, Start: 2, End: 3, TaskID: -1, Activity: "steal"})
	tr.Record(Interval{Rank: 1, Start: 0, End: 5, TaskID: 2, Activity: "task"})
	busy := tr.BusyTime(2)
	if busy[0] != 2 || busy[1] != 5 {
		t.Fatalf("busy = %v", busy)
	}
}

func TestNilTraceSafe(t *testing.T) {
	var tr *Trace
	tr.Record(Interval{}) // must not panic
	if b := tr.BusyTime(3); len(b) != 3 {
		t.Fatal("nil trace BusyTime")
	}
}
