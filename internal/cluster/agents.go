package cluster

// CounterAgent models the network agent at the home rank of a shared
// atomic counter (the Global Arrays NXTVAL pattern). Remote fetch-and-add
// requests are serialized: each occupies the agent for the configured
// service time, so under contention requests queue and the counter becomes
// the scalability bottleneck the paper's dynamic model exhibits.
type CounterAgent struct {
	m      *Machine
	freeAt float64 // when the agent can start the next request
	value  int64
	ops    int64
	wait   float64 // total time requests spent queued (excluding service)
}

// NewCounterAgent returns a counter homed on machine m with initial value 0.
func NewCounterAgent(m *Machine) *CounterAgent {
	return &CounterAgent{m: m}
}

// FetchAdd performs value += delta at simulated time `at` on behalf of a
// remote rank. It returns the pre-increment value and the time at which
// the response reaches the requester.
func (c *CounterAgent) FetchAdd(at float64, delta int64) (old int64, done float64) {
	arrive := at + c.m.Cfg.Latency
	start := arrive
	if c.freeAt > start {
		c.wait += c.freeAt - start
		start = c.freeAt
	}
	c.freeAt = start + c.m.Cfg.CounterService
	old = c.value
	c.value += delta
	c.ops++
	return old, c.freeAt + c.m.Cfg.Latency
}

// Ops returns the number of operations served.
func (c *CounterAgent) Ops() int64 { return c.ops }

// TotalWait returns the cumulative queueing delay across all requests, a
// direct measure of counter contention.
func (c *CounterAgent) TotalWait() float64 { return c.wait }

// Value returns the current counter value.
func (c *CounterAgent) Value() int64 { return c.value }
