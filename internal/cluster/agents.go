package cluster

import (
	"bytes"
	"fmt"
	"math"
	"strings"
)

// CounterAgent models the network agent at the home rank of a shared
// atomic counter (the Global Arrays NXTVAL pattern). Remote fetch-and-add
// requests are serialized: each occupies the agent for the configured
// service time, so under contention requests queue and the counter becomes
// the scalability bottleneck the paper's dynamic model exhibits.
type CounterAgent struct {
	m      *Machine
	freeAt float64 // when the agent can start the next request
	value  int64
	ops    int64
	wait   float64 // total time requests spent queued (excluding service)
}

// NewCounterAgent returns a counter homed on machine m with initial value 0.
func NewCounterAgent(m *Machine) *CounterAgent {
	return &CounterAgent{m: m}
}

// FetchAdd performs value += delta at simulated time `at` on behalf of a
// remote rank. It returns the pre-increment value and the time at which
// the response reaches the requester.
func (c *CounterAgent) FetchAdd(at float64, delta int64) (old int64, done float64) {
	arrive := at + c.m.Cfg.Latency
	start := arrive
	if c.freeAt > start {
		c.wait += c.freeAt - start
		start = c.freeAt
	}
	c.freeAt = start + c.m.Cfg.CounterService
	old = c.value
	c.value += delta
	c.ops++
	return old, c.freeAt + c.m.Cfg.Latency
}

// Ops returns the number of operations served.
func (c *CounterAgent) Ops() int64 { return c.ops }

// TotalWait returns the cumulative queueing delay across all requests, a
// direct measure of counter contention.
func (c *CounterAgent) TotalWait() float64 { return c.wait }

// Value returns the current counter value.
func (c *CounterAgent) Value() int64 { return c.value }

// Interval is one contiguous span of rank activity, for traces.
type Interval struct {
	Rank     int
	Start    float64
	End      float64
	TaskID   int    // -1 for non-task activity
	Activity string // "task", "steal", "counter", "comm", "stall", "recover", "idle"
}

// Trace records what each rank did when. It is optional: executors accept
// a nil *Trace.
type Trace struct {
	Intervals []Interval
}

// Record appends an interval; it is a no-op on a nil trace.
func (t *Trace) Record(iv Interval) {
	if t == nil {
		return
	}
	t.Intervals = append(t.Intervals, iv)
}

// BusyTime returns per-rank total time spent in "task" activity.
func (t *Trace) BusyTime(ranks int) []float64 {
	busy := make([]float64, ranks)
	if t == nil {
		return busy
	}
	for _, iv := range t.Intervals {
		if iv.Activity == "task" {
			busy[iv.Rank] += iv.End - iv.Start
		}
	}
	return busy
}

// ActivityTotals returns the summed duration per activity kind.
func (t *Trace) ActivityTotals() map[string]float64 {
	out := map[string]float64{}
	if t == nil {
		return out
	}
	for _, iv := range t.Intervals {
		out[iv.Activity] += iv.End - iv.Start
	}
	return out
}

// Span returns the earliest start and latest end across all intervals.
func (t *Trace) Span() (start, end float64) {
	if t == nil || len(t.Intervals) == 0 {
		return 0, 0
	}
	start = math.Inf(1)
	for _, iv := range t.Intervals {
		start = math.Min(start, iv.Start)
		end = math.Max(end, iv.End)
	}
	return start, end
}

// Gantt renders a width-character per-rank timeline: '#' task execution,
// 's' steal protocol, 'c' counter wait, '~' communication, '.' idle.
// Later intervals overwrite earlier ones in a cell; tasks win over
// everything so short runtime ops never mask useful work.
func (t *Trace) Gantt(ranks, width int) string {
	if width < 1 {
		width = 80
	}
	start, end := t.Span()
	if end <= start {
		return ""
	}
	rows := make([][]byte, ranks)
	for r := range rows {
		rows[r] = bytes.Repeat([]byte{'.'}, width)
	}
	scale := float64(width) / (end - start)
	glyph := map[string]byte{"task": '#', "steal": 's', "counter": 'c', "comm": '~', "stall": 'z', "recover": 'r'}
	// Paint non-task activities first, then tasks on top.
	for pass := 0; pass < 2; pass++ {
		for _, iv := range t.Intervals {
			isTask := iv.Activity == "task"
			if (pass == 1) != isTask {
				continue
			}
			g, ok := glyph[iv.Activity]
			if !ok {
				g = '?'
			}
			lo := int((iv.Start - start) * scale)
			hi := int((iv.End - start) * scale)
			if hi >= width {
				hi = width - 1
			}
			for c := lo; c <= hi; c++ {
				rows[iv.Rank][c] = g
			}
		}
	}
	var b strings.Builder
	for r, row := range rows {
		fmt.Fprintf(&b, "rank %3d |%s|\n", r, row)
	}
	b.WriteString("          # task   s steal   c counter   ~ comm   z stall   r recover   . idle\n")
	return b.String()
}
