package cluster

import "fmt"

// Preset returns a ready-made Config for a named machine class, with the
// given rank count and seed. Presets pin the network and overhead
// parameters; callers may still adjust heterogeneity/noise afterwards.
//
//	rdma      - Infiniband-class: 1 µs latency, 5 GB/s (the default elsewhere)
//	ethernet  - commodity 10GbE: 30 µs latency, 1 GB/s
//	numa      - single big shared-memory node: 0.1 µs, 20 GB/s
//	multicore - nodes of 8 cores with an rdma network between them
func Preset(name string, ranks int, seed int64) (Config, error) {
	base := Config{Ranks: ranks, Seed: seed}
	switch name {
	case "rdma":
		base.Latency = 1e-6
		base.Bandwidth = 5e9
		base.CounterService = 2e-7
	case "ethernet":
		base.Latency = 30e-6
		base.Bandwidth = 1e9
		base.CounterService = 2e-6
		base.TaskOverhead = 2e-6
	case "numa":
		base.Latency = 1e-7
		base.Bandwidth = 2e10
		base.CounterService = 5e-8
	case "multicore":
		base.Latency = 1e-6
		base.Bandwidth = 5e9
		base.CounterService = 2e-7
		base.CoresPerNode = 8
	default:
		return Config{}, fmt.Errorf("cluster: unknown preset %q (rdma|ethernet|numa|multicore)", name)
	}
	return base, nil
}

// PresetNames lists the available machine presets.
func PresetNames() []string { return []string{"rdma", "ethernet", "numa", "multicore"} }
