package cluster

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestWriteChromeTrace(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(events) != len(tr.Intervals) {
		t.Fatalf("%d events for %d intervals", len(events), len(tr.Intervals))
	}
	e := events[0]
	if e["ph"] != "X" || e["name"] != "task" {
		t.Fatalf("event %v", e)
	}
	// First interval: rank 0, 0..4 s → ts 0, dur 4e6 µs.
	if e["dur"].(float64) != 4e6 || e["tid"].(float64) != 0 {
		t.Fatalf("timing wrong: %v", e)
	}
	// Task IDs propagate into args.
	if args, ok := e["args"].(map[string]any); !ok || args["task"] != "1" {
		t.Fatalf("args %v", e["args"])
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	var tr Trace
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil || len(events) != 0 {
		t.Fatalf("empty trace render: %q err %v", buf.String(), err)
	}
}
