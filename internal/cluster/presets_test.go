package cluster

import "testing"

func TestPresets(t *testing.T) {
	for _, name := range PresetNames() {
		cfg, err := Preset(name, 8, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if cfg.Ranks != 8 || cfg.Seed != 1 {
			t.Fatalf("%s: ranks/seed not applied: %+v", name, cfg)
		}
		m := New(cfg)
		if m.P != 8 {
			t.Fatalf("%s: machine not buildable", name)
		}
	}
}

func TestPresetOrdering(t *testing.T) {
	rdma, _ := Preset("rdma", 4, 1)
	eth, _ := Preset("ethernet", 4, 1)
	numa, _ := Preset("numa", 4, 1)
	if !(numa.Latency < rdma.Latency && rdma.Latency < eth.Latency) {
		t.Fatalf("latency ordering wrong: %v %v %v", numa.Latency, rdma.Latency, eth.Latency)
	}
	mc, _ := Preset("multicore", 16, 1)
	if mc.CoresPerNode != 8 {
		t.Fatalf("multicore CoresPerNode = %d", mc.CoresPerNode)
	}
	m := New(mc)
	if m.NodeOf(7) != 0 || m.NodeOf(8) != 1 {
		t.Fatal("multicore topology wrong")
	}
}

func TestPresetUnknown(t *testing.T) {
	if _, err := Preset("quantum", 2, 1); err == nil {
		t.Fatal("expected error")
	}
}
