package cluster

import (
	"math"

	"execmodels/internal/fault"
)

// Fault-injection hooks on the machine's rank clocks. Every method is
// nil-safe with respect to m.Faults: an un-faulted machine behaves
// exactly as before, so executors can call these unconditionally.

// CrashTime returns when rank r permanently fail-stops (+Inf if never).
func (m *Machine) CrashTime(r int) float64 {
	if m.Faults == nil {
		return math.Inf(1)
	}
	return m.Faults.CrashTime(r)
}

// Alive reports whether rank r has not crashed by simulated time t.
func (m *Machine) Alive(r int, t float64) bool { return t < m.CrashTime(r) }

// StallEnd returns the time rank r can next make progress from t,
// skipping over any transient stall window(s) covering t.
func (m *Machine) StallEnd(r int, t float64) float64 {
	if m.Faults == nil {
		return t
	}
	return m.Faults.StallEnd(r, t)
}

// TaskTimeFaulty executes a task of the given cost on rank r's clock
// starting at `at`, under the machine's fault plan: the start is pushed
// past any stall window, stalls opening mid-task freeze and stretch the
// execution, and a crash interrupts it. It returns the time the rank's
// clock reaches and whether the task completed; on an interrupt the
// returned time is the crash instant and the work is lost.
func (m *Machine) TaskTimeFaulty(r int, cost, at float64) (end float64, completed bool) {
	crash := m.CrashTime(r)
	if at >= crash {
		return crash, false
	}
	start := m.StallEnd(r, at)
	if start >= crash {
		return crash, false
	}
	end = start + m.TaskTimeAt(r, cost, start)
	if m.Faults != nil {
		end = m.Faults.ExtendForStalls(r, start, end)
	}
	if end > crash {
		return crash, false
	}
	return end, true
}

// LinkFilter returns the machine's per-message fault filter, or nil when
// no message faults are configured (a nil filter reports clean delivery).
func (m *Machine) LinkFilter() *fault.LinkFilter {
	if m.Faults == nil {
		return nil
	}
	return m.Faults.Links()
}
