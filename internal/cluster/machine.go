// Package cluster models the HPC platform the execution-model study runs
// on: a set of ranks with (possibly heterogeneous and noisy) speeds,
// connected by an α–β network, with virtual per-rank clocks.
//
// The paper ran on a real Infiniband cluster; this simulator substitutes a
// deterministic machine whose key properties — irregular task costs meet
// communication overheads and speed variability — are first-class,
// controllable parameters. Absolute times are meaningless; relative
// behaviour of the execution models is the object of study.
package cluster

import (
	"fmt"
	"math"
	"math/rand"

	"execmodels/internal/fault"
)

// Config describes a simulated machine.
type Config struct {
	Ranks int // number of ranks (processes)

	// Speed is the baseline execution rate in work units (flops) per
	// simulated second. Default 1e9.
	Speed float64

	// Heterogeneity is the relative spread of static per-rank speeds:
	// rank speeds are drawn uniformly from [1-h, 1+h] × Speed. 0 gives a
	// homogeneous machine.
	Heterogeneity float64

	// NoiseSigma is the per-task multiplicative speed noise: each task
	// execution is slowed by a factor exp(|N(0, σ)|) (one-sided: noise
	// only ever slows a rank down, modelling OS jitter, DVFS throttling
	// and other energy-induced variability). 0 disables noise.
	NoiseSigma float64

	// Latency is the one-way network latency in simulated seconds
	// (default 1e-6, a typical RDMA network).
	Latency float64

	// Bandwidth is the network bandwidth in bytes per simulated second
	// (default 5e9).
	Bandwidth float64

	// CounterService is the serialization time of one remote atomic op at
	// its home rank's network agent (default 2e-7). This is what makes a
	// centralized task counter a contention point at scale.
	CounterService float64

	// CoresPerNode groups consecutive ranks into shared-memory nodes.
	// Transfers between ranks on the same node use IntraLatency and
	// IntraBandwidth instead of the network parameters. 0 or 1 disables
	// the hierarchy (every rank is its own node).
	CoresPerNode   int
	IntraLatency   float64 // same-node latency (default Latency/10)
	IntraBandwidth float64 // same-node bandwidth (default 4x Bandwidth)

	// TaskOverhead is the fixed per-task runtime bookkeeping cost in
	// simulated seconds (default 5e-7).
	TaskOverhead float64

	// ThrottleProb, ThrottleWindow and ThrottleFactor configure dynamic
	// DVFS-style throttling episodes: in each ThrottleWindow-second time
	// window (default 10 ms), each rank is independently slowed to
	// ThrottleFactor of its speed (default 0.5) with probability
	// ThrottleProb. Zero ThrottleProb disables episodes. See throttle.go.
	ThrottleProb   float64
	ThrottleWindow float64
	ThrottleFactor float64

	// Seed makes all stochastic machine behaviour reproducible.
	Seed int64
}

func (c *Config) setDefaults() {
	if c.Ranks <= 0 {
		c.Ranks = 1
	}
	if c.Speed == 0 {
		c.Speed = 1e9
	}
	if c.Latency == 0 {
		c.Latency = 1e-6
	}
	if c.Bandwidth == 0 {
		c.Bandwidth = 5e9
	}
	if c.CounterService == 0 {
		c.CounterService = 2e-7
	}
	if c.TaskOverhead == 0 {
		c.TaskOverhead = 5e-7
	}
}

// Machine is an instantiated simulated platform.
type Machine struct {
	Cfg    Config
	P      int
	speeds []float64 // static per-rank speed (work units per second)
	rng    *rand.Rand

	// Trace, when non-nil, receives an Interval for every task execution
	// and runtime operation the executors perform. Set a fresh Trace
	// before a run to capture it; leave nil to skip the overhead.
	Trace *Trace

	// Faults, when non-nil, injects the compiled fault plan — rank
	// crashes, stalls and message faults — into the run. Nil means a
	// reliable machine; see faults.go for the query surface executors use.
	Faults *fault.Injector
}

// New builds a machine from cfg.
func New(cfg Config) *Machine {
	cfg.setDefaults()
	if cfg.Heterogeneity < 0 || cfg.Heterogeneity >= 1 {
		panic(fmt.Sprintf("cluster: Heterogeneity must be in [0,1), got %v", cfg.Heterogeneity))
	}
	m := &Machine{
		Cfg:    cfg,
		P:      cfg.Ranks,
		speeds: make([]float64, cfg.Ranks),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}
	for r := range m.speeds {
		f := 1.0
		if cfg.Heterogeneity > 0 {
			f = 1 - cfg.Heterogeneity + 2*cfg.Heterogeneity*m.rng.Float64()
		}
		m.speeds[r] = cfg.Speed * f
	}
	return m
}

// Reset reseeds the machine's noise stream so that repeated runs over the
// same machine are independent but reproducible.
func (m *Machine) Reset(seed int64) {
	m.rng = rand.New(rand.NewSource(seed))
}

// Speed returns rank r's static speed in work units per second.
func (m *Machine) Speed(r int) float64 { return m.speeds[r] }

// TaskTime returns the simulated execution time of a task of the given
// cost (work units) on rank r, including per-task multiplicative noise and
// the fixed per-task overhead. It ignores throttling episodes; executors
// that track per-rank clocks use TaskTimeAt instead.
func (m *Machine) TaskTime(r int, cost float64) float64 {
	t := cost / m.speeds[r]
	if m.Cfg.NoiseSigma > 0 {
		t *= m.noiseFactor()
	}
	return t + m.Cfg.TaskOverhead
}

// noiseFactor draws one one-sided lognormal slowdown factor.
func (m *Machine) noiseFactor() float64 {
	return math.Exp(math.Abs(m.rng.NormFloat64()) * m.Cfg.NoiseSigma)
}

// XferTime returns the simulated time to move n bytes between two ranks
// over the network: one latency plus serialization at the bandwidth.
func (m *Machine) XferTime(bytes int) float64 {
	return m.Cfg.Latency + float64(bytes)/m.Cfg.Bandwidth
}

// RoundTrip returns the time of an empty request/response exchange over
// the network.
func (m *Machine) RoundTrip() float64 { return 2 * m.Cfg.Latency }

// NodeOf returns the shared-memory node index of a rank.
func (m *Machine) NodeOf(r int) int {
	if m.Cfg.CoresPerNode <= 1 {
		return r
	}
	return r / m.Cfg.CoresPerNode
}

// SameNode reports whether two ranks share a node.
func (m *Machine) SameNode(a, b int) bool { return m.NodeOf(a) == m.NodeOf(b) }

// intraLatency returns the same-node latency.
func (m *Machine) intraLatency() float64 {
	if m.Cfg.IntraLatency > 0 {
		return m.Cfg.IntraLatency
	}
	return m.Cfg.Latency / 10
}

// intraBandwidth returns the same-node bandwidth.
func (m *Machine) intraBandwidth() float64 {
	if m.Cfg.IntraBandwidth > 0 {
		return m.Cfg.IntraBandwidth
	}
	return 4 * m.Cfg.Bandwidth
}

// XferTimeBetween returns the time to move bytes from rank src to rank
// dst, using the cheap intra-node path when both share a node.
func (m *Machine) XferTimeBetween(src, dst, bytes int) float64 {
	if src == dst {
		return 0
	}
	if m.SameNode(src, dst) {
		return m.intraLatency() + float64(bytes)/m.intraBandwidth()
	}
	return m.XferTime(bytes)
}

// RoundTripBetween returns an empty request/response time between two
// ranks, topology-aware.
func (m *Machine) RoundTripBetween(a, b int) float64 {
	if m.SameNode(a, b) {
		return 2 * m.intraLatency()
	}
	return m.RoundTrip()
}

// AllReduceTime models a binomial-tree allreduce of the given payload
// across all ranks: 2·log2(P) network latencies plus bandwidth terms.
// Used by the distributed SCF phase model for convergence checks and
// density broadcasts.
func (m *Machine) AllReduceTime(bytes int) float64 {
	if m.P <= 1 {
		return 0
	}
	steps := 0
	for 1<<steps < m.P {
		steps++
	}
	return 2 * float64(steps) * (m.Cfg.Latency + float64(bytes)/m.Cfg.Bandwidth)
}

// MeanSpeed returns the average static rank speed.
func (m *Machine) MeanSpeed() float64 {
	var s float64
	for _, v := range m.speeds {
		s += v
	}
	return s / float64(len(m.speeds))
}

// IdealTime returns the perfectly-balanced, zero-overhead lower bound for
// executing totalCost work units on this machine: totalCost divided by the
// aggregate speed.
func (m *Machine) IdealTime(totalCost float64) float64 {
	var agg float64
	for _, v := range m.speeds {
		agg += v
	}
	return totalCost / agg
}
