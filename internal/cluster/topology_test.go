package cluster

import (
	"math"
	"testing"
)

func TestNodeOfFlat(t *testing.T) {
	m := New(Config{Ranks: 4})
	for r := 0; r < 4; r++ {
		if m.NodeOf(r) != r {
			t.Fatalf("flat machine: NodeOf(%d) = %d", r, m.NodeOf(r))
		}
	}
}

func TestNodeOfGrouped(t *testing.T) {
	m := New(Config{Ranks: 8, CoresPerNode: 4})
	want := []int{0, 0, 0, 0, 1, 1, 1, 1}
	for r, w := range want {
		if m.NodeOf(r) != w {
			t.Fatalf("NodeOf(%d) = %d, want %d", r, m.NodeOf(r), w)
		}
	}
	if !m.SameNode(0, 3) || m.SameNode(3, 4) {
		t.Fatal("SameNode wrong")
	}
}

func TestXferTimeBetween(t *testing.T) {
	m := New(Config{Ranks: 8, CoresPerNode: 4, Latency: 1e-6, Bandwidth: 1e9})
	if got := m.XferTimeBetween(0, 0, 1000); got != 0 {
		t.Fatalf("self transfer = %v", got)
	}
	intra := m.XferTimeBetween(0, 1, 1000)
	inter := m.XferTimeBetween(0, 5, 1000)
	if intra >= inter {
		t.Fatalf("intra %v not cheaper than inter %v", intra, inter)
	}
	// Defaults: latency/10 + bytes/(4*bw).
	want := 1e-7 + 1000/4e9
	if math.Abs(intra-want) > 1e-18 {
		t.Fatalf("intra = %v, want %v", intra, want)
	}
	if inter != m.XferTime(1000) {
		t.Fatalf("inter %v != network %v", inter, m.XferTime(1000))
	}
}

func TestRoundTripBetween(t *testing.T) {
	m := New(Config{Ranks: 4, CoresPerNode: 2, Latency: 1e-6})
	if got := m.RoundTripBetween(0, 1); got != 2e-7 {
		t.Fatalf("intra round trip %v", got)
	}
	if got := m.RoundTripBetween(0, 2); got != 2e-6 {
		t.Fatalf("inter round trip %v", got)
	}
}

func TestCustomIntraParams(t *testing.T) {
	m := New(Config{Ranks: 4, CoresPerNode: 2, IntraLatency: 5e-8, IntraBandwidth: 1e10})
	got := m.XferTimeBetween(0, 1, 10000)
	want := 5e-8 + 10000/1e10
	if math.Abs(got-want) > 1e-18 {
		t.Fatalf("custom intra = %v, want %v", got, want)
	}
}

func TestAllReduceTime(t *testing.T) {
	m1 := New(Config{Ranks: 1})
	if m1.AllReduceTime(1000) != 0 {
		t.Fatal("allreduce on 1 rank should be free")
	}
	m8 := New(Config{Ranks: 8, Latency: 1e-6, Bandwidth: 1e9})
	// log2(8)=3 steps, 2 phases: 6 * (1µs + 1µs).
	want := 6 * (1e-6 + 1000/1e9)
	if got := m8.AllReduceTime(1000); math.Abs(got-want) > 1e-15 {
		t.Fatalf("allreduce = %v, want %v", got, want)
	}
	// Non-power-of-two rounds up.
	m5 := New(Config{Ranks: 5, Latency: 1e-6, Bandwidth: 1e9})
	if m5.AllReduceTime(0) != m8.AllReduceTime(0) {
		t.Fatal("P=5 should use ceil(log2)=3 steps like P=8")
	}
}
