package cluster

import (
	"math"
	"testing"
)

func TestThrottleDisabledByDefault(t *testing.T) {
	m := New(Config{Ranks: 2, Seed: 1})
	if m.SpeedAt(0, 0.123) != m.Speed(0) {
		t.Fatal("throttling active with ThrottleProb = 0")
	}
	if got, want := m.TaskTimeAt(0, 1e6, 5.0), m.TaskTime(0, 1e6); got != want {
		t.Fatalf("TaskTimeAt %v != TaskTime %v without throttling", got, want)
	}
}

func TestThrottleDeterministic(t *testing.T) {
	m1 := New(Config{Ranks: 4, ThrottleProb: 0.3, Seed: 9})
	m2 := New(Config{Ranks: 4, ThrottleProb: 0.3, Seed: 9})
	for r := 0; r < 4; r++ {
		for i := 0; i < 100; i++ {
			tt := float64(i) * 0.003
			if m1.SpeedAt(r, tt) != m2.SpeedAt(r, tt) {
				t.Fatalf("nondeterministic throttle at rank %d t=%v", r, tt)
			}
		}
	}
}

func TestThrottleFrequencyMatchesProb(t *testing.T) {
	m := New(Config{Ranks: 8, ThrottleProb: 0.25, ThrottleWindow: 0.01, Seed: 3})
	var throttled, total int
	for r := 0; r < 8; r++ {
		for w := 0; w < 500; w++ {
			total++
			if m.SpeedAt(r, float64(w)*0.01+0.005) < m.Speed(r) {
				throttled++
			}
		}
	}
	frac := float64(throttled) / float64(total)
	if math.Abs(frac-0.25) > 0.03 {
		t.Fatalf("throttle fraction %v, want ≈ 0.25", frac)
	}
}

func TestThrottleSlowsBySetFactor(t *testing.T) {
	m := New(Config{Ranks: 1, ThrottleProb: 1, ThrottleFactor: 0.25, Seed: 1})
	if got, want := m.SpeedAt(0, 0.5), 0.25*m.Speed(0); got != want {
		t.Fatalf("SpeedAt = %v, want %v", got, want)
	}
	// Fully throttled: a task takes 4x as long (plus overhead).
	base := 1e6/m.Speed(0) + m.Cfg.TaskOverhead
	got := m.TaskTimeAt(0, 1e6, 0)
	want := 4*(base-m.Cfg.TaskOverhead) + m.Cfg.TaskOverhead
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("TaskTimeAt = %v, want %v", got, want)
	}
}

// Work must be conserved across window boundaries: a task spanning a
// throttled and an unthrottled window takes intermediate time.
func TestThrottleIntegratesAcrossWindows(t *testing.T) {
	// Hunt for a boundary where throttle state flips.
	m := New(Config{Ranks: 1, ThrottleProb: 0.5, ThrottleWindow: 0.01, ThrottleFactor: 0.5, Seed: 2})
	var at float64 = -1
	for w := 0; w < 1000; w++ {
		t0 := float64(w) * 0.01
		if m.throttled(0, t0) != m.throttled(0, t0+0.01) {
			at = t0 + 0.005 // start mid-window, spanning the flip
			break
		}
	}
	if at < 0 {
		t.Skip("no flip found")
	}
	// A task of exactly one window's full-speed work, started mid-window.
	cost := 0.01 * m.Speed(0)
	dt := m.TaskTimeAt(0, cost, at) - m.Cfg.TaskOverhead
	fast := 0.01       // all unthrottled
	slow := 0.01 * 2.0 // all throttled
	if dt <= fast || dt >= slow {
		t.Fatalf("spanning task time %v not strictly between %v and %v", dt, fast, slow)
	}
}

// Long tasks under heavy throttling must terminate (iteration guard).
func TestThrottleLongTaskTerminates(t *testing.T) {
	m := New(Config{Ranks: 1, ThrottleProb: 0.9, ThrottleFactor: 0.1, Seed: 4})
	dt := m.TaskTimeAt(0, 1e9, 0) // ~1 s of work, windows of 10 ms
	if dt <= 1.0 || math.IsNaN(dt) || math.IsInf(dt, 0) {
		t.Fatalf("implausible time %v", dt)
	}
}
