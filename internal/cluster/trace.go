package cluster

import "execmodels/internal/obs"

// Interval and Trace are aliases of the observability layer's span types:
// tracing logic (recording, activity totals, Gantt rendering, the Chrome
// trace-event and OpenMetrics exporters) lives in internal/obs, while the
// executors keep their historical cluster.Interval/cluster.Trace spelling.
type (
	// Interval is one contiguous span of rank activity, for traces.
	Interval = obs.Span
	// Trace records what each rank did when. It is optional: executors
	// accept a nil *Trace.
	Trace = obs.Trace
)
