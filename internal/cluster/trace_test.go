package cluster

import (
	"strings"
	"testing"
)

func sampleTrace() *Trace {
	tr := &Trace{}
	tr.Record(Interval{Rank: 0, Start: 0, End: 4, TaskID: 1, Activity: "task"})
	tr.Record(Interval{Rank: 0, Start: 4, End: 5, TaskID: -1, Activity: "comm"})
	tr.Record(Interval{Rank: 1, Start: 0, End: 1, TaskID: -1, Activity: "steal"})
	tr.Record(Interval{Rank: 1, Start: 1, End: 5, TaskID: 2, Activity: "task"})
	tr.Record(Interval{Rank: 1, Start: 5, End: 5.5, TaskID: -1, Activity: "counter"})
	return tr
}

func TestActivityTotals(t *testing.T) {
	tot := sampleTrace().ActivityTotals()
	if tot["task"] != 8 || tot["comm"] != 1 || tot["steal"] != 1 || tot["counter"] != 0.5 {
		t.Fatalf("totals %v", tot)
	}
	var nilTrace *Trace
	if len(nilTrace.ActivityTotals()) != 0 {
		t.Fatal("nil trace totals")
	}
}

func TestSpanAndBusy(t *testing.T) {
	tr := sampleTrace()
	s, e := tr.Span()
	if s != 0 || e != 5.5 {
		t.Fatalf("span %v..%v", s, e)
	}
	busy := tr.BusyTime(2)
	if busy[0] != 4 || busy[1] != 4 {
		t.Fatalf("busy %v", busy)
	}
	var nilTrace *Trace
	if s, e := nilTrace.Span(); s != 0 || e != 0 {
		t.Fatal("nil span")
	}
}

func TestGanttGlyphs(t *testing.T) {
	g := sampleTrace().Gantt(2, 44)
	lines := strings.Split(strings.TrimRight(g, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines:\n%s", len(lines), g)
	}
	for _, glyph := range []string{"#", "~", "s", "c"} {
		if !strings.Contains(g, glyph) {
			t.Errorf("missing glyph %q:\n%s", glyph, g)
		}
	}
	// Rank 1 idles after 5.5? No — trace ends at 5.5; rank 0 idles from
	// 5.0 to 5.5, so '.' must appear in row 0.
	if !strings.Contains(lines[0], ".") {
		t.Errorf("no idle glyph in row 0: %s", lines[0])
	}
}

func TestGanttWidthDefault(t *testing.T) {
	g := sampleTrace().Gantt(2, 0)
	if !strings.Contains(g, "rank   0 |") {
		t.Fatal("default width render failed")
	}
}

func TestGanttUnknownActivity(t *testing.T) {
	tr := &Trace{}
	tr.Record(Interval{Rank: 0, Start: 0, End: 1, Activity: "mystery"})
	if g := tr.Gantt(1, 10); !strings.Contains(g, "?") {
		t.Fatalf("unknown activity not rendered as '?':\n%s", g)
	}
}
