package cluster

// Throttling episodes model the *dynamic* side of energy-induced
// performance variability: power capping and thermal DVFS slow a rank
// down for a while, then release it. Episodes are a pure function of
// (seed, rank, time window) — no mutable state — so any executor can
// query SpeedAt for any (rank, time) without ordering or reset concerns.
//
// Time is divided into windows of ThrottleWindow seconds; within each
// window a rank is independently throttled to ThrottleFactor of its
// static speed with probability ThrottleProb.

// throttled reports whether rank r is throttled during the window
// containing time t.
func (m *Machine) throttled(r int, t float64) bool {
	if t < 0 {
		return false
	}
	return m.throttledWin(r, int64(t/m.throttleWindow()))
}

// throttledWin reports whether rank r is throttled during window index
// win, as a pure deterministic hash of (seed, rank, window).
func (m *Machine) throttledWin(r int, win int64) bool {
	p := m.Cfg.ThrottleProb
	if p <= 0 {
		return false
	}
	h := uint64(m.Cfg.Seed)*0x9e3779b97f4a7c15 + uint64(r)*0xbf58476d1ce4e5b9 + uint64(win)*0x94d049bb133111eb
	h ^= h >> 31
	h *= 0xd6e8feb86659fd93
	h ^= h >> 27
	u := float64(h>>11) / float64(1<<53)
	return u < p
}

func (m *Machine) throttleWindow() float64 {
	if m.Cfg.ThrottleWindow > 0 {
		return m.Cfg.ThrottleWindow
	}
	return 0.01 // 10 ms default episode granularity
}

func (m *Machine) throttleFactor() float64 {
	if m.Cfg.ThrottleFactor > 0 {
		return m.Cfg.ThrottleFactor
	}
	return 0.5
}

// SpeedAt returns rank r's effective speed at simulated time t,
// accounting for throttling episodes.
func (m *Machine) SpeedAt(r int, t float64) float64 {
	s := m.speeds[r]
	if m.throttled(r, t) {
		s *= m.throttleFactor()
	}
	return s
}

// TaskTimeAt returns the execution time of a task of the given cost
// starting at simulated time `at` on rank r, integrating the work across
// throttle windows. Without throttling it reduces to TaskTime.
func (m *Machine) TaskTimeAt(r int, cost, at float64) float64 {
	if m.Cfg.ThrottleProb <= 0 {
		return m.TaskTime(r, cost)
	}
	if m.Cfg.NoiseSigma > 0 {
		// Apply per-task noise as extra work, as in TaskTime.
		cost *= m.noiseFactor()
	}
	w := m.throttleWindow()
	// Walk whole windows by integer index so a segment can never collapse
	// to zero length from floating-point boundary error.
	k := int64(at / w)
	t := at
	remaining := cost
	for remaining > 0 {
		sp := m.speeds[r]
		if m.throttledWin(r, k) {
			sp *= m.throttleFactor()
		}
		wEnd := float64(k+1) * w
		seg := wEnd - t
		if seg <= 0 {
			k++
			continue
		}
		if capacity := seg * sp; capacity >= remaining {
			t += remaining / sp
			break
		} else {
			remaining -= capacity
		}
		t = wEnd
		k++
	}
	return t - at + m.Cfg.TaskOverhead
}
