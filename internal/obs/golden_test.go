package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// Golden-file tests for the three exporters. The fixture under testdata/
// is the contract: any byte of drift in the Chrome trace JSON, the
// OpenMetrics dump or the Gantt rendering fails here. Regenerate
// intentionally with:
//
//	go test ./internal/obs -run TestGolden -update

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// goldenTrace builds a small fixed trace exercising every span flavour:
// tasks, a counter wait, a message with src/dst/bytes, a steal, a stall,
// a recovery and a checkpoint.
func goldenTrace() *Trace {
	tr := &Trace{}
	tr.Record(Span{Rank: 0, Start: 0, End: 0.4, TaskID: 0, Activity: "task"})
	tr.Record(Span{Rank: 0, Start: 0.4, End: 0.5, TaskID: -1, Activity: "comm", Src: 1, Dst: 0, Bytes: 4096})
	tr.Record(Span{Rank: 0, Start: 0.5, End: 0.9, TaskID: 2, Activity: "task"})
	tr.Record(Span{Rank: 0, Start: 0.9, End: 1.0, TaskID: -1, Activity: "checkpoint"})
	tr.Record(Span{Rank: 1, Start: 0, End: 0.1, TaskID: -1, Activity: "counter"})
	tr.Record(Span{Rank: 1, Start: 0.1, End: 0.6, TaskID: 1, Activity: "task"})
	tr.Record(Span{Rank: 1, Start: 0.6, End: 0.65, TaskID: -1, Activity: "steal"})
	tr.Record(Span{Rank: 1, Start: 0.65, End: 0.8, TaskID: 3, Activity: "task"})
	tr.Record(Span{Rank: 2, Start: 0, End: 0.3, TaskID: 4, Activity: "task"})
	tr.Record(Span{Rank: 2, Start: 0.3, End: 0.5, TaskID: -1, Activity: "stall"})
	tr.Record(Span{Rank: 2, Start: 0.5, End: 0.7, TaskID: -1, Activity: "recover"})
	tr.Record(Span{Rank: 2, Start: 0.7, End: 1.0, TaskID: 5, Activity: "task"})
	return tr
}

// goldenRegistry builds a small fixed registry with every metric kind.
func goldenRegistry() *Registry {
	r := NewRegistry(3)
	r.Count(CTasks, 0, 2)
	r.Count(CTasks, 1, 3)
	r.Count(CTasks, 2, 2)
	r.Count(CSteals, 1, 1)
	r.Count(CCommBytes, 0, 4096)
	r.Add(MBusy, 0, 0.8)
	r.Add(MBusy, 1, 0.65)
	r.Add(MBusy, 2, 0.5)
	r.Set(MFinish, 0, 1.0)
	r.Set(MFinish, 1, 0.8)
	r.Set(MFinish, 2, 1.0)
	r.Observe(HTask, 0, 0.4)
	r.Observe(HTask, 0, 0.4)
	r.Observe(HTask, 1, 0.5)
	r.Observe(HTask, 1, 0.05)
	r.Observe(HTask, 1, 0.15)
	r.Observe(HTask, 2, 0.3)
	r.Observe(HTask, 2, 0.3)
	return r
}

// checkGolden compares got against testdata/<name>, rewriting the fixture
// under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from its golden file.\n--- got ---\n%s\n--- want ---\n%s\nRegenerate intentionally with -update.", name, got, want)
	}
}

func TestGoldenChromeTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTrace().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "trace.chrome.json", buf.Bytes())
}

func TestGoldenOpenMetrics(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteOpenMetrics(&buf, goldenRegistry(), map[string]string{"model": "golden"}); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "registry.om.txt", buf.Bytes())
}

func TestGoldenGantt(t *testing.T) {
	checkGolden(t, "trace.gantt.txt", []byte(goldenTrace().Gantt(3, 40)))
}

// TestGoldenDeterminism double-renders each exporter: byte-identical
// output is the layer's core promise, independent of the fixtures.
func TestGoldenDeterminism(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteOpenMetrics(&a, goldenRegistry(), nil); err != nil {
		t.Fatal(err)
	}
	if err := WriteOpenMetrics(&b, goldenRegistry(), nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("WriteOpenMetrics is not deterministic")
	}

	a.Reset()
	b.Reset()
	if err := goldenTrace().WriteChromeTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := goldenTrace().WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("WriteChromeTrace is not deterministic")
	}
}
