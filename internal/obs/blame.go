package obs

import (
	"fmt"
	"strings"
)

// blameComponents lists the registry gauges that partition a rank's
// timeline, in report order. Executors charge these for pairwise-disjoint
// windows; whatever they leave uncharged is idle (starvation, barrier
// waits, backoff gaps). The blame identity
//
//	makespan × ranks = Σ_components + Σ_r idle_r
//
// holds exactly (to float rounding) because each rank's charges are
// disjoint sub-intervals of [0, makespan].
var blameComponents = []struct{ Key, Metric string }{
	{"compute", MBusy},
	{"comm", MComm},
	{"counter", MCounter},
	{"steal", MSteal},
	{"stall", MStall},
	{"recover", MRecover},
	{"checkpoint", MCheckpoint},
	{"dead", MDead},
}

// Segment is one activity class on the critical rank's timeline.
type Segment struct {
	Activity string  `json:"activity"`
	Seconds  float64 `json:"seconds"`
	Spans    int     `json:"spans"`
}

// Blame is the makespan decomposition of one run: where every one of the
// makespan × ranks rank-seconds went, which rank set the makespan and
// what that rank spent its time on, and the heaviest single task (the
// granularity floor no schedule can beat).
type Blame struct {
	Model    string  `json:"model"`
	Ranks    int     `json:"ranks"`
	Makespan float64 `json:"makespan_seconds"`

	// Components maps component name → summed rank-seconds; includes the
	// derived "idle" remainder. Total() == Makespan × Ranks.
	Components map[string]float64 `json:"components_rank_seconds"`
	// IdleByRank is each rank's uncharged remainder.
	IdleByRank []float64 `json:"idle_by_rank_seconds"`

	// CriticalRank is the rank whose finish time equals the makespan
	// (lowest rank on ties); its recorded spans form the critical path.
	CriticalRank        int       `json:"critical_rank"`
	CriticalPathSeconds float64   `json:"critical_path_seconds"`
	CriticalSegments    []Segment `json:"critical_segments,omitempty"`

	// HeaviestTask is the longest single task execution seen in the trace
	// (-1 if no trace was captured).
	HeaviestTask        int     `json:"heaviest_task"`
	HeaviestTaskSeconds float64 `json:"heaviest_task_seconds"`
}

// AnalyzeBlame decomposes makespan × ranks into the blame components
// recorded in reg, attributing each rank's uncharged remainder to idle.
// The trace is optional (nil skips the critical-path and heaviest-task
// sections); the registry is the source of truth for the decomposition,
// so blame is exact even for untraced runs.
func AnalyzeBlame(reg *Registry, trace *Trace, model string, ranks int, makespan float64) *Blame {
	b := &Blame{
		Model:        model,
		Ranks:        ranks,
		Makespan:     makespan,
		Components:   map[string]float64{},
		IdleByRank:   make([]float64, ranks),
		HeaviestTask: -1,
	}
	charged := make([]float64, ranks)
	for _, c := range blameComponents {
		vec := reg.GaugeVec(c.Metric)
		var tot float64
		for r := 0; r < ranks && r < len(vec); r++ {
			tot += vec[r]
			charged[r] += vec[r]
		}
		b.Components[c.Key] = tot
	}
	var idle float64
	for r := 0; r < ranks; r++ {
		b.IdleByRank[r] = makespan - charged[r]
		idle += b.IdleByRank[r]
	}
	b.Components["idle"] = idle

	// Critical rank: the one whose finish time set the makespan.
	finish := reg.GaugeVec(MFinish)
	b.CriticalRank = 0
	best := -1.0
	for r := 0; r < ranks && r < len(finish); r++ {
		if finish[r] > best {
			best, b.CriticalRank = finish[r], r
		}
	}

	if trace != nil {
		segs := map[string]*Segment{}
		for _, iv := range trace.Intervals {
			if iv.Activity == "task" && iv.End-iv.Start > b.HeaviestTaskSeconds {
				b.HeaviestTaskSeconds = iv.End - iv.Start
				b.HeaviestTask = iv.TaskID
			}
			if iv.Rank != b.CriticalRank {
				continue
			}
			s := segs[iv.Activity]
			if s == nil {
				s = &Segment{Activity: iv.Activity}
				segs[iv.Activity] = s
			}
			s.Seconds += iv.End - iv.Start
			s.Spans++
			if iv.End > b.CriticalPathSeconds {
				b.CriticalPathSeconds = iv.End
			}
		}
		for _, name := range sortedKeys(segs) {
			b.CriticalSegments = append(b.CriticalSegments, *segs[name])
		}
	}
	return b
}

// Total returns the summed rank-seconds over all components including
// idle; by construction it equals Makespan × Ranks up to float rounding.
// Summation follows the fixed component order: float addition does not
// associate, so summing in map order would make the low bits of the
// total depend on iteration order.
func (b *Blame) Total() float64 {
	var s float64
	for _, key := range sortedKeys(b.Components) {
		s += b.Components[key]
	}
	return s
}

// ComponentOrder returns the report order of the decomposition
// components, idle last.
func ComponentOrder() []string {
	out := make([]string, 0, len(blameComponents)+1)
	for _, c := range blameComponents {
		out = append(out, c.Key)
	}
	return append(out, "idle")
}

// Table renders the decomposition as an aligned, deterministic text
// table.
func (b *Blame) Table() string {
	var sb strings.Builder
	total := b.Makespan * float64(b.Ranks)
	fmt.Fprintf(&sb, "blame: %-18s P=%-3d makespan=%.6gs  rank-seconds=%.6g\n", b.Model, b.Ranks, b.Makespan, total)
	fmt.Fprintf(&sb, "  %-11s %14s %8s\n", "component", "rank-seconds", "share")
	for _, key := range ComponentOrder() {
		v := b.Components[key]
		share := 0.0
		if total > 0 {
			share = 100 * v / total
		}
		fmt.Fprintf(&sb, "  %-11s %14.6g %7.2f%%\n", key, v, share)
	}
	fmt.Fprintf(&sb, "  critical rank %d: path %.6gs over %d spans", b.CriticalRank, b.CriticalPathSeconds, countSpans(b.CriticalSegments))
	for _, s := range b.CriticalSegments {
		fmt.Fprintf(&sb, "  %s=%.4g", s.Activity, s.Seconds)
	}
	sb.WriteString("\n")
	if b.HeaviestTask >= 0 {
		fmt.Fprintf(&sb, "  heaviest task: id %d, %.6gs\n", b.HeaviestTask, b.HeaviestTaskSeconds)
	}
	return sb.String()
}

func countSpans(segs []Segment) int {
	n := 0
	for _, s := range segs {
		n += s.Spans
	}
	return n
}
