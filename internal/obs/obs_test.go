package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry(4)
	if r.Ranks() != 4 {
		t.Fatalf("Ranks() = %d, want 4", r.Ranks())
	}

	r.Count(CTasks, 0, 3)
	r.Count(CTasks, 2, 1)
	r.Add(MBusy, 1, 0.5)
	r.Add(MBusy, 1, 0.25)
	r.Set(MFinish, 3, 2.0)
	r.Set(MFinish, 3, 1.5) // Set overwrites

	if got := r.CounterTotal(CTasks); got != 4 {
		t.Errorf("CounterTotal = %d, want 4", got)
	}
	if got := r.GaugeTotal(MBusy); got != 0.75 {
		t.Errorf("GaugeTotal = %g, want 0.75", got)
	}
	if vec := r.GaugeVec(MFinish); vec[3] != 1.5 {
		t.Errorf("Set did not overwrite: %v", vec)
	}

	// Out-of-range ranks and unknown names are silently absorbed.
	r.Count(CTasks, -1, 1)
	r.Count(CTasks, 99, 1)
	r.Add(MBusy, -5, 1)
	if got := r.CounterTotal(CTasks); got != 4 {
		t.Errorf("out-of-range rank leaked into totals: %d", got)
	}
	if got := r.CounterTotal("never_touched"); got != 0 {
		t.Errorf("unknown counter total = %d", got)
	}
	if names := r.CounterNames(); len(names) != 1 || names[0] != CTasks {
		t.Errorf("CounterNames = %v", names)
	}

	// Nil registry: every method is a no-op, never a panic.
	var nilReg *Registry
	nilReg.Count(CTasks, 0, 1)
	nilReg.Add(MBusy, 0, 1)
	nilReg.Set(MFinish, 0, 1)
	nilReg.Observe(HTask, 0, 1)
	if nilReg.Ranks() != 0 {
		t.Error("nil registry has ranks")
	}
	if v := nilReg.CounterVec(CTasks); len(v) != 0 {
		t.Errorf("nil CounterVec = %v", v)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry(2)
	r.Observe(HTask, 0, 5e-7) // second bucket (1e-7, 1e-6]
	r.Observe(HTask, 0, 0.5)  // (0.1, 1]
	r.Observe(HTask, 1, 100)  // above the last bound → +Inf bucket
	bounds, counts, sum, n := r.HistSnapshot(HTask, 0)
	if len(counts) != len(bounds)+1 {
		t.Fatalf("counts %d vs bounds %d: want one extra +Inf bucket", len(counts), len(bounds))
	}
	if n != 2 || sum != 0.5+5e-7 {
		t.Errorf("rank 0: n=%d sum=%g", n, sum)
	}
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total != 2 {
		t.Errorf("bucket counts sum to %d, want 2", total)
	}
	_, counts1, _, n1 := r.HistSnapshot(HTask, 1)
	if n1 != 1 || counts1[len(counts1)-1] != 1 {
		t.Errorf("overflow observation not in +Inf bucket: n=%d counts=%v", n1, counts1)
	}
	if names := r.HistNames(); len(names) != 1 || names[0] != HTask {
		t.Errorf("HistNames = %v", names)
	}
}

func TestTraceHelpers(t *testing.T) {
	tr := goldenTrace()
	busy := tr.BusyTime(3)
	if math.Abs(busy[0]-0.8) > 1e-12 || math.Abs(busy[1]-0.65) > 1e-12 {
		t.Errorf("BusyTime = %v", busy)
	}
	totals := tr.ActivityTotals()
	if math.Abs(totals["stall"]-0.2) > 1e-12 || math.Abs(totals["checkpoint"]-0.1) > 1e-12 {
		t.Errorf("ActivityTotals = %v", totals)
	}
	if start, end := tr.Span(); start != 0 || end != 1.0 {
		t.Errorf("Span = (%g, %g)", start, end)
	}
	if by := tr.ByRank(3); len(by[2]) != 4 {
		t.Errorf("ByRank[2] has %d spans, want 4", len(by[2]))
	}

	tr.Reset()
	if len(tr.Intervals) != 0 {
		t.Error("Reset left spans behind")
	}

	var nilTrace *Trace
	nilTrace.Record(Span{})
	nilTrace.Reset()
	if b := nilTrace.BusyTime(2); b[0] != 0 {
		t.Error("nil trace busy time")
	}
	if s, e := nilTrace.Span(); s != 0 || e != 0 {
		t.Error("nil trace span")
	}
	nilTrace.ActivityTotals()
	nilTrace.ByRank(2)
}

// blameFixture builds a registry + trace whose decomposition is exact by
// construction: rank 0 fully busy, rank 1 part busy/steal/idle.
func blameFixture() (*Registry, *Trace, float64) {
	const makespan = 1.0
	r := NewRegistry(2)
	r.Add(MBusy, 0, 1.0)
	r.Set(MFinish, 0, 1.0)
	r.Add(MBusy, 1, 0.6)
	r.Add(MSteal, 1, 0.1)
	r.Set(MFinish, 1, 0.7)

	tr := &Trace{}
	tr.Record(Span{Rank: 0, Start: 0, End: 1.0, TaskID: 7, Activity: "task"})
	tr.Record(Span{Rank: 1, Start: 0, End: 0.6, TaskID: 8, Activity: "task"})
	tr.Record(Span{Rank: 1, Start: 0.6, End: 0.7, TaskID: -1, Activity: "steal"})
	return r, tr, makespan
}

func TestAnalyzeBlame(t *testing.T) {
	r, tr, makespan := blameFixture()
	b := AnalyzeBlame(r, tr, "unit", 2, makespan)

	if got := b.Total(); math.Abs(got-makespan*2) > 1e-12 {
		t.Errorf("Total = %g, want %g", got, makespan*2)
	}
	if b.Components["compute"] != 1.6 || b.Components["steal"] != 0.1 {
		t.Errorf("components = %v", b.Components)
	}
	if math.Abs(b.Components["idle"]-0.3) > 1e-12 {
		t.Errorf("idle = %g, want 0.3", b.Components["idle"])
	}
	if b.CriticalRank != 0 || b.CriticalPathSeconds != 1.0 {
		t.Errorf("critical rank %d path %g, want rank 0 path 1.0", b.CriticalRank, b.CriticalPathSeconds)
	}
	if b.HeaviestTask != 7 || b.HeaviestTaskSeconds != 1.0 {
		t.Errorf("heaviest task %d (%gs), want 7 (1.0s)", b.HeaviestTask, b.HeaviestTaskSeconds)
	}

	tbl := b.Table()
	for _, want := range []string{"blame: unit", "compute", "idle", "critical rank 0", "heaviest task"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("Table() missing %q:\n%s", want, tbl)
		}
	}
	if b.Table() != tbl {
		t.Error("Table() is not deterministic")
	}

	// Without a trace, the decomposition still works; only the
	// trace-derived sections are absent.
	nb := AnalyzeBlame(r, nil, "unit", 2, makespan)
	if math.Abs(nb.Total()-makespan*2) > 1e-12 {
		t.Errorf("nil-trace Total = %g", nb.Total())
	}
	if nb.HeaviestTask != -1 {
		t.Errorf("nil-trace heaviest task = %d, want -1", nb.HeaviestTask)
	}

	order := ComponentOrder()
	if order[0] != "compute" || order[len(order)-1] != "idle" {
		t.Errorf("ComponentOrder = %v", order)
	}
}

func TestSummaryJSON(t *testing.T) {
	r, tr, makespan := blameFixture()
	r.Count(CTasks, 0, 1)
	r.Count(CTasks, 1, 1)
	b := AnalyzeBlame(r, tr, "unit", 2, makespan)
	s := NewSummary(r, b, "unit", 2, makespan)

	var buf1, buf2 bytes.Buffer
	if err := s.WriteJSON(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := NewSummary(r, b, "unit", 2, makespan).WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Error("summary JSON is not deterministic")
	}
	for _, want := range []string{`"model": "unit"`, `"tasks_total": 2`, `"blame"`, `"critical_rank": 0`} {
		if !strings.Contains(buf1.String(), want) {
			t.Errorf("summary JSON missing %s:\n%s", want, buf1.String())
		}
	}
}
