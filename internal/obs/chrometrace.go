package obs

import (
	"encoding/json"
	"io"
	"strconv"
)

// chromeEvent is one complete event ("ph":"X") in the Chrome trace-event
// format (the JSON understood by chrome://tracing and Perfetto).
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace renders the trace in the Chrome trace-event JSON array
// format, one complete event per interval: rank = tid, simulated seconds
// scaled to microseconds. Message spans carry src/dst/bytes args. Load the
// output in chrome://tracing or Perfetto to inspect an execution visually.
// Output is deterministic: encoding/json sorts map keys.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	events := make([]chromeEvent, 0, len(t.Intervals))
	for _, iv := range t.Intervals {
		name := iv.Activity
		args := map[string]string{}
		if iv.TaskID >= 0 {
			args["task"] = strconv.Itoa(iv.TaskID)
		}
		if iv.Bytes > 0 {
			args["src"] = strconv.Itoa(iv.Src)
			args["dst"] = strconv.Itoa(iv.Dst)
			args["bytes"] = strconv.Itoa(iv.Bytes)
		}
		events = append(events, chromeEvent{
			Name: name,
			Cat:  iv.Activity,
			Ph:   "X",
			Ts:   iv.Start * 1e6,
			Dur:  (iv.End - iv.Start) * 1e6,
			Pid:  0,
			Tid:  iv.Rank,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}
