package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// TaskCost is one task's entry in a CostProfile: the scheduler-visible
// estimate it was seeded with and the (blended) measured cost that
// replaced it.
type TaskCost struct {
	// Key is the task's stable identity (hash of its content), the same
	// key the feedback schedulers store history under.
	Key uint64 `json:"key"`
	// Est is the a-priori cost estimate (NBF⁴-style flops for Fock
	// tasks, EstCost for simulator workloads).
	Est float64 `json:"est"`
	// Measured is the latest blended measurement, in Unit.
	Measured float64 `json:"measured"`
}

// CostProfile is the exportable snapshot of a measured-cost model — the
// obs side of the obs→scheduler feedback loop. Producers emit entries
// sorted by Key so the export is a pure function of the model state;
// consumers (the W3 experiment, offline tooling) get one row per task
// identity.
type CostProfile struct {
	// Source names the producer (model or builder name).
	Source string `json:"source"`
	// Unit is the measurement unit: "sim_seconds" for simulator runs,
	// "wall_seconds" for the wall-clock backend.
	Unit  string     `json:"unit"`
	Tasks []TaskCost `json:"tasks"`
}

// Sort orders the entries by key (ascending), the canonical export
// order.
func (p *CostProfile) Sort() {
	sort.Slice(p.Tasks, func(i, j int) bool { return p.Tasks[i].Key < p.Tasks[j].Key })
}

// TotalMeasured returns the summed measured cost.
func (p *CostProfile) TotalMeasured() float64 {
	var s float64
	for _, t := range p.Tasks {
		s += t.Measured
	}
	return s
}

// Calibration returns Σmeasured/Σest — the global scale factor between
// the estimate units and the measured units (0 when undefined).
func (p *CostProfile) Calibration() float64 {
	var est, meas float64
	for _, t := range p.Tasks {
		est += t.Est
		meas += t.Measured
	}
	if est <= 0 {
		return 0
	}
	return meas / est
}

// WriteCostProfile writes the profile as indented JSON. The entries are
// sorted first, so two writes of the same model state are
// byte-identical.
func WriteCostProfile(w io.Writer, p *CostProfile) error {
	if p == nil {
		return fmt.Errorf("obs: nil cost profile")
	}
	p.Sort()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// ReadCostProfile decodes a profile written by WriteCostProfile.
func ReadCostProfile(r io.Reader) (*CostProfile, error) {
	var p CostProfile
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("obs: decoding cost profile: %w", err)
	}
	return &p, nil
}
