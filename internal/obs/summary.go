package obs

import (
	"encoding/json"
	"io"
)

// Summary is the machine-readable JSON view of one run: totals of every
// counter, totals and per-rank vectors of every gauge, and the blame
// decomposition. Like every obs artifact it is a pure function of the run
// configuration; encoding/json sorts map keys, so the bytes are
// deterministic too.
type Summary struct {
	Model    string  `json:"model"`
	Ranks    int     `json:"ranks"`
	Makespan float64 `json:"makespan_seconds"`

	Counters    map[string]int64     `json:"counters,omitempty"`
	GaugeTotals map[string]float64   `json:"gauge_totals,omitempty"`
	PerRank     map[string][]float64 `json:"per_rank,omitempty"`

	Blame *Blame `json:"blame,omitempty"`
}

// NewSummary snapshots the registry (and optional blame) for export.
func NewSummary(reg *Registry, b *Blame, model string, ranks int, makespan float64) *Summary {
	s := &Summary{
		Model:       model,
		Ranks:       ranks,
		Makespan:    makespan,
		Counters:    map[string]int64{},
		GaugeTotals: map[string]float64{},
		PerRank:     map[string][]float64{},
		Blame:       b,
	}
	for _, name := range reg.CounterNames() {
		s.Counters[name] = reg.CounterTotal(name)
	}
	for _, name := range reg.GaugeNames() {
		s.GaugeTotals[name] = reg.GaugeTotal(name)
		s.PerRank[name] = reg.GaugeVec(name)
	}
	return s
}

// WriteJSON writes the summary as indented JSON.
func (s *Summary) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
