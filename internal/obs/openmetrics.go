package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WriteOpenMetrics dumps the registry in the OpenMetrics text exposition
// format (the Prometheus dialect), one series per (metric, rank), with
// the given constant labels on every series. Metric names are prefixed
// "execmodels_". The dump is deterministic: metric names and label keys
// are emitted in sorted order, values formatted with strconv's shortest
// round-trip representation. Metrics never touched during the run are
// omitted.
func WriteOpenMetrics(w io.Writer, r *Registry, constLabels map[string]string) error {
	if r == nil {
		_, err := io.WriteString(w, "# EOF\n")
		return err
	}
	keys := make([]string, 0, len(constLabels))
	for k := range constLabels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	labels := func(rank int) string {
		s := "{"
		for _, k := range keys {
			s += k + "=" + strconv.Quote(constLabels[k]) + ","
		}
		return s + `rank="` + strconv.Itoa(rank) + `"}`
	}
	fnum := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

	for _, name := range r.CounterNames() {
		// OpenMetrics: the metric family drops the _total suffix; the
		// sample keeps it.
		family := "execmodels_" + name
		if n := len(family); n > 6 && family[n-6:] == "_total" {
			family = family[:n-6]
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", family); err != nil {
			return err
		}
		for rank, v := range r.CounterVec(name) {
			if _, err := fmt.Fprintf(w, "%s_total%s %d\n", family, labels(rank), v); err != nil {
				return err
			}
		}
	}
	for _, name := range r.GaugeNames() {
		full := "execmodels_" + name
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", full); err != nil {
			return err
		}
		for rank, v := range r.GaugeVec(name) {
			if _, err := fmt.Fprintf(w, "%s%s %s\n", full, labels(rank), fnum(v)); err != nil {
				return err
			}
		}
	}
	for _, name := range r.HistNames() {
		full := "execmodels_" + name
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", full); err != nil {
			return err
		}
		for rank := 0; rank < r.Ranks(); rank++ {
			bounds, counts, sum, n := r.HistSnapshot(name, rank)
			if n == 0 {
				continue // skip empty per-rank histograms: they dominate the dump
			}
			l := labels(rank)
			cum := uint64(0)
			for i, ub := range bounds {
				cum += counts[i]
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", full, bucketLabels(l, fnum(ub)), cum); err != nil {
					return err
				}
			}
			cum += counts[len(bounds)]
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", full, bucketLabels(l, "+Inf"), cum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n", full, l, fnum(sum), full, l, n); err != nil {
				return err
			}
		}
	}
	_, err := io.WriteString(w, "# EOF\n")
	return err
}

// bucketLabels splices an le="..." label into a rendered label set.
func bucketLabels(labels, le string) string {
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}
