// Package obs is the deterministic observability layer of the simulator:
// a typed metric registry (counters, gauges, log-bucket histograms keyed
// by metric name and rank), span-based structured tracing, exporters
// (Chrome trace-event JSON, OpenMetrics text, JSON summary), and a blame
// analysis that decomposes makespan × ranks exactly into per-component
// rank-seconds.
//
// Everything in this package is fed from the executors' virtual clocks,
// so every exported artifact is a pure function of (workload, machine,
// seed, fault plan) — two runs of the same configuration produce
// byte-identical dumps. Real wall-clock quantities (Result.ScheduleCost)
// deliberately never enter the registry.
package obs

import (
	"sort"
	"sync"
)

// Metric names shared by the executors, exporters and the blame analysis.
// Gauges hold per-rank simulated seconds; counters hold per-rank event
// counts. The *_seconds gauges that form the blame decomposition must be
// charged for pairwise-disjoint windows of a rank's timeline — the blame
// analysis attributes everything uncharged to idle.
const (
	MBusy        = "busy_seconds"         // executing task bodies
	MComm        = "comm_seconds"         // moving data blocks
	MCounter     = "counter_seconds"      // shared-counter round-trips incl. queueing
	MSteal       = "steal_seconds"        // steal protocol (probes, transfers, backoff)
	MStall       = "stall_seconds"        // frozen in an injected stall window
	MRecover     = "recover_seconds"      // detecting crashes and reclaiming lost work
	MCheckpoint  = "checkpoint_seconds"   // writing and restoring checkpoints
	MDead        = "dead_seconds"         // crashed: from rank death to end of run
	MFinish      = "finish_seconds"       // per-rank completion time (not a blame term)
	MCounterWait = "counter_wait_seconds" // queueing delay at the counter home
	MDetect      = "detect_latency_seconds"

	CTasks        = "tasks_total"
	CSteals       = "steals_total"
	CRemoteSteals = "remote_steals_total"
	CFailedSteals = "failed_steals_total"
	CCounterOps   = "counter_ops_total"
	CCommBytes    = "comm_bytes_total"
	CCrashes      = "crashes_total"
	CLostTasks    = "lost_tasks_total"
	CReExecuted   = "reexecuted_total"
	CRetransmits  = "retransmits_total"

	HTask = "task_runtime_seconds" // histogram of individual task durations
)

// Message-passing layer metrics (internal/mp).
const (
	CMpMessages    = "mp_messages_total"
	CMpBytes       = "mp_bytes_total"
	CMpAcks        = "mp_acks_total"
	CMpDuplicates  = "mp_duplicates_total"
	CMpRetransmits = "mp_retransmits_total"
	HMpAttempts    = "mp_send_attempts" // histogram of reliable-send attempt counts
)

// defaultBuckets are the log-scale histogram upper bounds (seconds-ish
// decades); one extra +Inf bucket is implicit. Fixed at construction so
// exported histograms are comparable across runs and models.
var defaultBuckets = []float64{1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}

type histVec struct {
	counts [][]uint64 // per rank, len(defaultBuckets)+1
	sums   []float64
	ns     []uint64
}

// Registry holds all metrics of one run, keyed by (name, rank). It is
// allocation-light: each metric name owns one slice indexed by rank,
// created on first touch. All methods are nil-safe no-ops so executors
// can charge metrics unconditionally, and mutex-protected so concurrent
// layers (internal/mp) can feed the same registry.
type Registry struct {
	mu       sync.Mutex
	ranks    int
	counters map[string][]int64   // guarded by mu
	gauges   map[string][]float64 // guarded by mu
	hists    map[string]*histVec  // guarded by mu
}

// NewRegistry creates a registry for a run over the given rank count.
func NewRegistry(ranks int) *Registry {
	if ranks < 1 {
		ranks = 1
	}
	return &Registry{
		ranks:    ranks,
		counters: map[string][]int64{},
		gauges:   map[string][]float64{},
		hists:    map[string]*histVec{},
	}
}

// Ranks returns the rank count the registry was built for.
func (r *Registry) Ranks() int {
	if r == nil {
		return 0
	}
	return r.ranks
}

// Count adds delta to the counter (name, rank).
func (r *Registry) Count(name string, rank int, delta int64) {
	if r == nil || rank < 0 || rank >= r.ranks {
		return
	}
	r.mu.Lock()
	v := r.counters[name]
	if v == nil {
		v = make([]int64, r.ranks)
		r.counters[name] = v
	}
	v[rank] += delta
	r.mu.Unlock()
}

// Add adds dt to the gauge (name, rank). Gauges accumulate simulated
// seconds; Set overwrites instead.
func (r *Registry) Add(name string, rank int, dt float64) {
	if r == nil || rank < 0 || rank >= r.ranks {
		return
	}
	r.mu.Lock()
	r.gaugeLocked(name)[rank] += dt
	r.mu.Unlock()
}

// Set overwrites the gauge (name, rank).
func (r *Registry) Set(name string, rank int, v float64) {
	if r == nil || rank < 0 || rank >= r.ranks {
		return
	}
	r.mu.Lock()
	r.gaugeLocked(name)[rank] = v
	r.mu.Unlock()
}

func (r *Registry) gaugeLocked(name string) []float64 {
	v := r.gauges[name]
	if v == nil {
		v = make([]float64, r.ranks)
		r.gauges[name] = v
	}
	return v
}

// Observe records one sample in the histogram (name, rank).
func (r *Registry) Observe(name string, rank int, sample float64) {
	if r == nil || rank < 0 || rank >= r.ranks {
		return
	}
	r.mu.Lock()
	h := r.hists[name]
	if h == nil {
		h = &histVec{
			counts: make([][]uint64, r.ranks),
			sums:   make([]float64, r.ranks),
			ns:     make([]uint64, r.ranks),
		}
		for i := range h.counts {
			h.counts[i] = make([]uint64, len(defaultBuckets)+1)
		}
		r.hists[name] = h
	}
	b := len(defaultBuckets) // +Inf bucket
	for i, ub := range defaultBuckets {
		if sample <= ub {
			b = i
			break
		}
	}
	h.counts[rank][b]++
	h.sums[rank] += sample
	h.ns[rank]++
	r.mu.Unlock()
}

// CounterVec returns a copy of the per-rank counter vector (all zeros if
// the metric was never touched).
func (r *Registry) CounterVec(name string) []int64 {
	out := make([]int64, r.Ranks())
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	copy(out, r.counters[name])
	return out
}

// GaugeVec returns a copy of the per-rank gauge vector.
func (r *Registry) GaugeVec(name string) []float64 {
	out := make([]float64, r.Ranks())
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	copy(out, r.gauges[name])
	return out
}

// CounterTotal returns the counter summed over ranks.
func (r *Registry) CounterTotal(name string) int64 {
	var s int64
	for _, v := range r.CounterVec(name) {
		s += v
	}
	return s
}

// GaugeTotal returns the gauge summed over ranks.
func (r *Registry) GaugeTotal(name string) float64 {
	var s float64
	for _, v := range r.GaugeVec(name) {
		s += v
	}
	return s
}

// CounterNames returns the sorted names of all touched counters.
func (r *Registry) CounterNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return sortedKeys(r.counters)
}

// GaugeNames returns the sorted names of all touched gauges.
func (r *Registry) GaugeNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return sortedKeys(r.gauges)
}

// HistNames returns the sorted names of all touched histograms.
func (r *Registry) HistNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return sortedKeys(r.hists)
}

// HistSnapshot returns the bucket upper bounds and, for one rank, the
// bucket counts (last bucket is +Inf), sample sum and sample count.
func (r *Registry) HistSnapshot(name string, rank int) (bounds []float64, counts []uint64, sum float64, n uint64) {
	bounds = append([]float64(nil), defaultBuckets...)
	if r == nil || rank < 0 || rank >= r.ranks {
		return bounds, make([]uint64, len(defaultBuckets)+1), 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		return bounds, make([]uint64, len(defaultBuckets)+1), 0, 0
	}
	return bounds, append([]uint64(nil), h.counts[rank]...), h.sums[rank], h.ns[rank]
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
