package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func testProfile() *CostProfile {
	return &CostProfile{
		Source: "persistence-feedback",
		Unit:   "wall_seconds",
		Tasks: []TaskCost{
			{Key: 9, Est: 30, Measured: 3},
			{Key: 2, Est: 10, Measured: 1},
			{Key: 5, Est: 60, Measured: 4},
		},
	}
}

func TestCostProfileRoundTrip(t *testing.T) {
	p := testProfile()
	var buf bytes.Buffer
	if err := WriteCostProfile(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCostProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Source != p.Source || got.Unit != p.Unit || len(got.Tasks) != 3 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	// The writer sorts by key, so the decoded order is canonical.
	for i := 1; i < len(got.Tasks); i++ {
		if got.Tasks[i].Key <= got.Tasks[i-1].Key {
			t.Fatalf("decoded entries not key-sorted: %+v", got.Tasks)
		}
	}
}

func TestCostProfileWriteDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteCostProfile(&a, testProfile()); err != nil {
		t.Fatal(err)
	}
	if err := WriteCostProfile(&b, testProfile()); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("two writes of the same model state differ")
	}
	if err := WriteCostProfile(&a, nil); err == nil {
		t.Error("nil profile accepted")
	}
}

func TestCostProfileAggregates(t *testing.T) {
	p := testProfile()
	if got := p.TotalMeasured(); got != 8 {
		t.Errorf("TotalMeasured = %g, want 8", got)
	}
	if got := p.Calibration(); math.Abs(got-0.08) > 1e-12 {
		t.Errorf("Calibration = %g, want 0.08 (8/100)", got)
	}
	empty := &CostProfile{}
	if got := empty.Calibration(); got != 0 {
		t.Errorf("empty calibration = %g, want 0", got)
	}
}

func TestReadCostProfileBadInput(t *testing.T) {
	if _, err := ReadCostProfile(strings.NewReader("{not json")); err == nil {
		t.Error("malformed input accepted")
	}
}
