package obs

import (
	"bytes"
	"fmt"
	"math"
	"strings"
)

// Span is one contiguous span of rank activity. Task spans carry TaskID;
// message spans carry Src/Dst/Bytes; everything else leaves the extras at
// their zero values. cluster.Interval is an alias of this type, so the
// executors' existing literals keep working.
type Span struct {
	Rank     int
	Start    float64
	End      float64
	TaskID   int    // -1 for non-task activity
	Activity string // "task", "steal", "counter", "comm", "stall", "recover", "checkpoint", "idle"
	Src      int    // message source rank (comm spans; 0 otherwise)
	Dst      int    // message destination rank (comm spans; 0 otherwise)
	Bytes    int    // payload size (comm spans; 0 otherwise)
}

// Trace records what each rank did when. It is optional: executors accept
// a nil *Trace and all methods are nil-safe.
type Trace struct {
	Intervals []Span
}

// Record appends a span; it is a no-op on a nil trace.
func (t *Trace) Record(iv Span) {
	if t == nil {
		return
	}
	t.Intervals = append(t.Intervals, iv)
}

// Reset drops all recorded spans, keeping the backing array. Iterative
// executors that rewind their per-rank clocks between iterations call it
// so the trace describes the same iteration the Result does.
func (t *Trace) Reset() {
	if t == nil {
		return
	}
	t.Intervals = t.Intervals[:0]
}

// BusyTime returns per-rank total time spent in "task" activity.
func (t *Trace) BusyTime(ranks int) []float64 {
	busy := make([]float64, ranks)
	if t == nil {
		return busy
	}
	for _, iv := range t.Intervals {
		if iv.Activity == "task" {
			busy[iv.Rank] += iv.End - iv.Start
		}
	}
	return busy
}

// ActivityTotals returns the summed duration per activity kind.
func (t *Trace) ActivityTotals() map[string]float64 {
	out := map[string]float64{}
	if t == nil {
		return out
	}
	for _, iv := range t.Intervals {
		out[iv.Activity] += iv.End - iv.Start
	}
	return out
}

// Span returns the earliest start and latest end across all intervals.
func (t *Trace) Span() (start, end float64) {
	if t == nil || len(t.Intervals) == 0 {
		return 0, 0
	}
	start = math.Inf(1)
	for _, iv := range t.Intervals {
		start = math.Min(start, iv.Start)
		end = math.Max(end, iv.End)
	}
	return start, end
}

// ByRank returns each rank's spans in recorded order.
func (t *Trace) ByRank(ranks int) [][]Span {
	out := make([][]Span, ranks)
	if t == nil {
		return out
	}
	for _, iv := range t.Intervals {
		if iv.Rank >= 0 && iv.Rank < ranks {
			out[iv.Rank] = append(out[iv.Rank], iv)
		}
	}
	return out
}

// Gantt renders a width-character per-rank timeline: '#' task execution,
// 's' steal protocol, 'c' counter wait, '~' communication, '.' idle.
// Later intervals overwrite earlier ones in a cell; tasks win over
// everything so short runtime ops never mask useful work.
func (t *Trace) Gantt(ranks, width int) string {
	if width < 1 {
		width = 80
	}
	start, end := t.Span()
	if end <= start {
		return ""
	}
	rows := make([][]byte, ranks)
	for r := range rows {
		rows[r] = bytes.Repeat([]byte{'.'}, width)
	}
	scale := float64(width) / (end - start)
	glyph := map[string]byte{"task": '#', "steal": 's', "counter": 'c', "comm": '~', "stall": 'z', "recover": 'r', "checkpoint": 'k'}
	// Paint non-task activities first, then tasks on top.
	for pass := 0; pass < 2; pass++ {
		for _, iv := range t.Intervals {
			isTask := iv.Activity == "task"
			if (pass == 1) != isTask {
				continue
			}
			g, ok := glyph[iv.Activity]
			if !ok {
				g = '?'
			}
			lo := int((iv.Start - start) * scale)
			hi := int((iv.End - start) * scale)
			if hi >= width {
				hi = width - 1
			}
			for c := lo; c <= hi; c++ {
				rows[iv.Rank][c] = g
			}
		}
	}
	var b strings.Builder
	for r, row := range rows {
		fmt.Fprintf(&b, "rank %3d |%s|\n", r, row)
	}
	b.WriteString("          # task   s steal   c counter   ~ comm   z stall   r recover   k ckpt   . idle\n")
	return b.String()
}
