package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strconv"
)

// Determinism enforces the repository's reproducibility policy inside the
// simulation packages: every run must be a pure function of (workload,
// machine, seed). Two things break that silently:
//
//   - the global math/rand convenience functions (rand.Intn, rand.Float64,
//     rand.Shuffle, ...) draw from a process-wide source that other code
//     and test ordering perturb — schedules stop being replayable;
//   - time.Now / time.Since consulted by scheduling code make decisions
//     depend on the host clock.
//
// Wall-clock *measurement* is legitimate (the paper reports real speedups)
// but must flow through the allowlisted timing wrappers so that the
// boundary between "measures time" and "decides based on time" stays
// auditable.
type Determinism struct {
	// Packages are import-path suffixes the check applies to.
	Packages []string
	// AllowTimeFuncs names functions (or methods, by bare name) that may
	// call time.Now/Since/Until — the sanctioned timing wrappers.
	AllowTimeFuncs map[string]bool
}

// NewDeterminism returns the analyzer with the repository defaults.
func NewDeterminism() *Determinism {
	return &Determinism{
		Packages: []string{
			"internal/core",
			"internal/fault",
			"internal/ga",
			"internal/mp",
			"internal/deque",
			"internal/hypergraph",
			"internal/semimatching",
			"internal/obs",
			// The serving layer legitimately runs on the real clock, but
			// every wall-clock read must flow through serve's single
			// suppressed now() helper so the boundary stays auditable.
			"internal/serve",
		},
		AllowTimeFuncs: map[string]bool{
			"startStopwatch": true, // internal/core stopwatch constructor
			"elapsed":        true, // stopwatch.elapsed
		},
	}
}

// Name implements Analyzer.
func (*Determinism) Name() string { return "determinism" }

// Doc implements Analyzer.
func (*Determinism) Doc() string {
	return "forbid global math/rand and bare wall-clock reads in simulation packages"
}

// AppliesTo implements Analyzer.
func (d *Determinism) AppliesTo(pkgPath string) bool {
	for _, suffix := range d.Packages {
		if hasSuffixPath(pkgPath, suffix) {
			return true
		}
	}
	return false
}

// globalRandFuncs are the math/rand (and math/rand/v2) package-level
// functions that consume the shared global source. Constructors like
// rand.New and rand.NewSource are fine — they are how seeded streams are
// built.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "IntN": true, "Int31": true, "Int31n": true,
	"Int32": true, "Int32N": true, "Int63": true, "Int63n": true,
	"Int64": true, "Int64N": true, "Uint": true, "UintN": true,
	"Uint32": true, "Uint32N": true, "Uint64": true, "Uint64N": true,
	"Float32": true, "Float64": true, "NormFloat64": true,
	"ExpFloat64": true, "Perm": true, "Shuffle": true, "Seed": true,
	"Read": true, "N": true,
}

var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// Run implements Analyzer.
func (d *Determinism) Run(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		imports := importAliases(file)
		var stack []string // enclosing named functions, innermost last
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				name := ""
				if n.Name != nil {
					name = n.Name.Name
				}
				stack = append(stack, name)
				if n.Body != nil {
					ast.Inspect(n.Body, walk)
				}
				stack = stack[:len(stack)-1]
				return false
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				path, ok := resolvePkg(pkg, imports, sel)
				if !ok {
					return true
				}
				fn := sel.Sel.Name
				switch {
				case (path == "math/rand" || path == "math/rand/v2") && globalRandFuncs[fn]:
					out = append(out, Finding{
						Pos:     pkg.Fset.Position(n.Pos()),
						Check:   d.Name(),
						Message: fmt.Sprintf("global rand.%s draws from the shared process-wide source; plumb a seeded *rand.Rand so runs replay from a seed", fn),
					})
				case path == "time" && wallClockFuncs[fn]:
					if len(stack) > 0 && d.AllowTimeFuncs[stack[len(stack)-1]] {
						return true
					}
					out = append(out, Finding{
						Pos:     pkg.Fset.Position(n.Pos()),
						Check:   d.Name(),
						Message: fmt.Sprintf("bare time.%s in a simulation package; route timing through the allowlisted stopwatch wrapper", fn),
					})
				}
			}
			return true
		}
		ast.Inspect(file, walk)
	}
	return out
}

// importAliases maps local package names to import paths for one file.
func importAliases(file *ast.File) map[string]string {
	m := map[string]string{}
	for _, imp := range file.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		name := path
		if i := lastSlash(path); i >= 0 {
			name = path[i+1:]
		}
		// Version suffixes like math/rand/v2 keep the previous component
		// as the package name.
		if len(name) >= 2 && name[0] == 'v' && isDigits(name[1:]) {
			trimmed := path[:len(path)-len(name)-1]
			if i := lastSlash(trimmed); i >= 0 {
				name = trimmed[i+1:]
			} else {
				name = trimmed
			}
		}
		if imp.Name != nil {
			name = imp.Name.Name
		}
		m[name] = path
	}
	return m
}

func isDigits(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return len(s) > 0
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return -1
}

// resolvePkg reports the import path of the package a selector's base
// identifier refers to. Type information is authoritative when available
// (it sees through shadowing); the import table is the fallback.
func resolvePkg(pkg *Package, imports map[string]string, sel *ast.SelectorExpr) (string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	if pkg.Info != nil {
		if obj, ok := pkg.Info.Uses[id]; ok {
			if pn, ok := obj.(*types.PkgName); ok {
				return pn.Imported().Path(), true
			}
			return "", false // a variable or type, not a package
		}
	}
	path, ok := imports[id.Name]
	return path, ok
}
