package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"execmodels/internal/lint/dataflow"
)

// MapOrder flags `range` over a map whose loop body makes the iteration
// order observable — the canonical Go nondeterminism source, and the one
// that silently breaks this repository's byte-identical-output guarantee.
// A body (directly or through calls, via the dataflow effect summaries)
// is order-observable when it
//
//   - appends to a slice that outlives the loop (unless that slice is
//     sorted later in the same function — the sortedKeys idiom),
//   - writes an io.Writer or other exporter-shaped destination,
//   - charges the obs metric registry, or
//   - accumulates into a float that outlives the loop (float addition
//     does not associate, so even a "sum" depends on visit order).
//
// Findings are reported at the range statement, so a single
// //lint:ignore maporder <reason> covers the whole loop; the message
// names the effect site (and call chain, for effects inside helpers).
type MapOrder struct {
	// Packages are import-path suffixes the check applies to.
	Packages []string
}

// NewMapOrder returns the analyzer with the repository defaults.
func NewMapOrder() *MapOrder {
	return &MapOrder{Packages: simPackages()}
}

// Name implements Analyzer.
func (*MapOrder) Name() string { return "maporder" }

// Doc implements Analyzer.
func (*MapOrder) Doc() string {
	return "map iteration feeding slices, writers, registry charges or float sums must sort keys first"
}

// AppliesTo implements Analyzer.
func (m *MapOrder) AppliesTo(pkgPath string) bool {
	for _, suffix := range m.Packages {
		if hasSuffixPath(pkgPath, suffix) {
			return true
		}
	}
	return false
}

// Run implements Analyzer on a single package (fixture tests).
func (m *MapOrder) Run(pkg *Package) []Finding {
	return m.RunProgram([]*Package{pkg})
}

// RunProgram implements ProgramAnalyzer.
func (m *MapOrder) RunProgram(pkgs []*Package) []Finding {
	dfp := dataflowPkgs(pkgs)
	eng := dataflow.New(dfp)
	espec := dataflow.EffectSpec{IsCharge: isRegistryCharge}
	sums := eng.Effects(espec)

	var out []Finding
	for i, pkg := range pkgs {
		if !m.AppliesTo(pkg.Path) {
			continue
		}
		dp := dfp[i]
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				sorted := sortedRoots(pkg, fd.Body)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					rs, ok := n.(*ast.RangeStmt)
					if !ok || !isMapRange(pkg, rs) {
						return true
					}
					out = append(out, m.checkRange(pkg, dp, eng, espec, sums, fd, rs, sorted)...)
					return true
				})
			}
		}
	}
	return out
}

// checkRange reports the order-observable effects of one map range.
func (m *MapOrder) checkRange(pkg *Package, dp *dataflow.Pkg, eng *dataflow.Engine, espec dataflow.EffectSpec, sums map[string][]dataflow.Effect, fd *ast.FuncDecl, rs *ast.RangeStmt, sorted map[types.Object]bool) []Finding {
	pos := pkg.Fset.Position(rs.Pos())
	var out []Finding
	seen := map[string]bool{}
	report := func(what string, via dataflow.Path) {
		if seen[what] {
			return
		}
		seen[what] = true
		out = append(out, Finding{
			Pos:     pos,
			Check:   m.Name(),
			Message: fmt.Sprintf("map iteration order is observable: %s; sort the keys and iterate the sorted slice", what),
			Path:    via,
		})
	}

	for _, ef := range eng.DirectEffects(dp, fd, rs.Body, espec, sums) {
		// Effects on state that dies inside the loop are harmless.
		if dataflow.IsLocalRoot(ef.Root) && ef.RootObj != nil && within(rs.Body, ef.RootObj.Pos()) {
			continue
		}
		where := fmt.Sprintf("%s (%s:%d)", ef.Desc, ef.Pos.Filename, ef.Pos.Line)
		switch ef.Kind {
		case dataflow.EffectAppend:
			// The sortedKeys idiom: collect-then-sort is order-safe.
			if ef.RootObj != nil && sorted[ef.RootObj] {
				continue
			}
			report("unsorted "+where, ef.Via)
		case dataflow.EffectWrite, dataflow.EffectCharge:
			report(where, ef.Via)
		}
	}

	// Float accumulation into state that outlives the loop: the sum's
	// low-order bits depend on visit order.
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || (as.Tok != token.ADD_ASSIGN && as.Tok != token.SUB_ASSIGN) {
			return true
		}
		for _, lhs := range as.Lhs {
			if !isFloatExpr(pkg, lhs) {
				continue
			}
			obj := baseObject(pkg, lhs)
			if obj != nil && within(rs.Body, obj.Pos()) {
				continue
			}
			p := pkg.Fset.Position(as.Pos())
			report(fmt.Sprintf("float accumulation %s (%s:%d) — addition order changes the rounding", exprText(lhs), p.Filename, p.Line), nil)
		}
		return true
	})
	return out
}

// isMapRange reports whether the range statement iterates a map.
func isMapRange(pkg *Package, rs *ast.RangeStmt) bool {
	if pkg.Info == nil {
		return false
	}
	tv, ok := pkg.Info.Types[rs.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// sortedRoots collects the base objects of slices passed to sort.* /
// slices.Sort* anywhere in the body — appends into these are considered
// order-safe (collect-then-sort).
func sortedRoots(pkg *Package, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	if pkg.Info == nil {
		return out
	}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pkg.Info.Uses[id].(*types.PkgName)
		if !ok {
			return true
		}
		switch pn.Imported().Path() {
		case "sort", "slices":
		default:
			return true
		}
		if obj := baseObject(pkg, call.Args[0]); obj != nil {
			out[obj] = true
		}
		return true
	})
	return out
}

// baseObject walks an expression to its base identifier's object.
func baseObject(pkg *Package, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.Ident:
			if pkg.Info == nil {
				return nil
			}
			if obj := pkg.Info.Uses[x]; obj != nil {
				return obj
			}
			return pkg.Info.Defs[x]
		default:
			return nil
		}
	}
}

// within reports whether pos falls inside node's extent.
func within(node ast.Node, pos token.Pos) bool {
	return node.Pos() <= pos && pos < node.End()
}

// isFloatExpr reports whether the expression has a floating-point type.
func isFloatExpr(pkg *Package, e ast.Expr) bool {
	if pkg.Info == nil {
		return false
	}
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// exprText renders a small lvalue for diagnostics.
func exprText(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprText(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprText(x.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprText(x.X)
	case *ast.ParenExpr:
		return exprText(x.X)
	}
	return "value"
}
