package lint

import (
	"go/types"

	"execmodels/internal/lint/dataflow"
)

// A ProgramAnalyzer is an analyzer that needs the whole loaded program at
// once — the interprocedural checks built on internal/lint/dataflow
// compute call-graph-wide function summaries, so running them one package
// at a time would miss taint laundered through helpers in another
// package. The driver calls RunProgram exactly once with every loaded
// package; Run (from Analyzer) remains usable on a single package, which
// is how fixture tests exercise these analyzers.
type ProgramAnalyzer interface {
	Analyzer
	// RunProgram analyzes all packages together. Implementations scope
	// their findings with AppliesTo themselves; the driver only applies
	// //lint:ignore suppressions.
	RunProgram(pkgs []*Package) []Finding
}

// dataflowPkgs converts the loader's package representation into the
// engine's. The slices are parallel: dataflowPkgs(pkgs)[i] corresponds to
// pkgs[i].
func dataflowPkgs(pkgs []*Package) []*dataflow.Pkg {
	out := make([]*dataflow.Pkg, len(pkgs))
	for i, p := range pkgs {
		out[i] = &dataflow.Pkg{Path: p.Path, Fset: p.Fset, Files: p.Files, Info: p.Info}
	}
	return out
}

// chargeMethods are the obs.Registry methods that mutate metric state.
// Their call order is observable in exported output (gauge adds are
// float additions, which do not associate).
var chargeMethods = map[string]bool{
	"Count": true, "Add": true, "Set": true, "Observe": true,
}

// isRegistryCharge reports whether fn is a metric-charging method of
// obs.Registry.
func isRegistryCharge(fn *types.Func) bool {
	if fn == nil || !chargeMethods[fn.Name()] {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Registry" {
		return false
	}
	return named.Obj().Pkg() != nil && hasSuffixPath(named.Obj().Pkg().Path(), "internal/obs")
}

// simPackages is the default scope of the interprocedural checks: every
// package whose state feeds the deterministic, byte-identical outputs.
func simPackages() []string {
	return []string{
		"internal/core",
		"internal/fault",
		"internal/ga",
		"internal/mp",
		"internal/deque",
		"internal/hypergraph",
		"internal/semimatching",
		"internal/obs",
		"internal/cluster",
		"internal/bench",
	}
}
