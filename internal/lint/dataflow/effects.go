package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// EffectKind classifies an order-sensitive effect: something whose
// observable outcome depends on the order the effect sites execute in —
// exactly what iterating a Go map randomizes.
type EffectKind string

const (
	// EffectAppend: appends to a slice the caller can see (receiver
	// field, pointed-to parameter, package variable).
	EffectAppend EffectKind = "append"
	// EffectWrite: writes an io.Writer-shaped destination.
	EffectWrite EffectKind = "write"
	// EffectCharge: charges the metric registry (per the configured
	// matcher). Gauge charges are float adds, and float addition does
	// not associate — charge order changes the exported bytes.
	EffectCharge EffectKind = "charge"
)

// Effect is one order-sensitive effect of a function, as seen by its
// callers.
type Effect struct {
	Kind EffectKind
	Desc string
	Pos  token.Position
	// Root is the parameter index whose state the effect mutates
	// (recvParam for the receiver, globalRoot for package state).
	// Summary-level effects never have local roots — a function
	// mutating only its own locals is order-safe to call.
	Root int
	Via  Path // call chain from the summarized function to the effect
}

// EffectSpec configures effect detection.
type EffectSpec struct {
	// IsCharge classifies a resolved callee as a metric-registry charge
	// (e.g. obs.Registry.Add/Set/Count/Observe).
	IsCharge func(fn *types.Func) bool
}

// Effects computes order-effect summaries for every indexed function by
// bottom-up fixpoint: a function has an effect if its body performs one
// directly on caller-visible state, or calls a function whose effect is
// rooted at an argument that is itself caller-visible.
func (e *Engine) Effects(spec EffectSpec) map[string][]Effect {
	sums := map[string][]Effect{}
	for iter := 0; iter < 64; iter++ {
		changed := false
		for _, id := range e.ids {
			f := e.funcs[id]
			next := e.analyzeEffects(f, spec, sums)
			if len(next) > len(sums[id]) {
				sums[id] = next
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return sums
}

// effectKey dedups effects within one summary.
func effectKey(ef Effect) string {
	return string(ef.Kind) + "|" + ef.Pos.String() + "|" + ef.Desc
}

// analyzeEffects collects one function's caller-visible effects given
// current callee summaries.
func (e *Engine) analyzeEffects(f *Func, spec EffectSpec, sums map[string][]Effect) []Effect {
	params, _, _ := paramObjects(f.Pkg, f.Decl)
	var out []Effect
	seen := map[string]bool{}
	add := func(ef Effect) {
		k := effectKey(ef)
		if !seen[k] {
			seen[k] = true
			out = append(out, ef)
		}
	}
	for _, ef := range e.directEffects(f.Pkg, params, f.Decl.Body, spec, sums, nil) {
		if ef.Root != localRoot {
			add(ef)
		}
	}
	sort.Slice(out, func(i, j int) bool { return effectKey(out[i]) < effectKey(out[j]) })
	return out
}

// DirectEffects returns the order-sensitive effects of one statement
// subtree, including those reached through calls into summarized
// functions. Effects rooted at local variables are included with their
// declaring object recorded via declPos — the maporder analyzer decides
// whether a local outlives the loop. summaries may be nil for purely
// syntactic use.
func (e *Engine) DirectEffects(pkg *Pkg, fd *ast.FuncDecl, body ast.Node, spec EffectSpec, summaries map[string][]Effect) []SiteEffect {
	params, _, _ := paramObjects(pkg, fd)
	var out []SiteEffect
	e.directEffectsInto(pkg, params, body, spec, summaries, &out)
	return out
}

// SiteEffect is an effect observed at a concrete site inside a body,
// with the variable object rooting it (nil for globals).
type SiteEffect struct {
	Effect
	RootObj types.Object
}

func (e *Engine) directEffects(pkg *Pkg, params map[types.Object]int, body ast.Node, spec EffectSpec, sums map[string][]Effect, _ []Effect) []Effect {
	var sites []SiteEffect
	e.directEffectsInto(pkg, params, body, spec, sums, &sites)
	out := make([]Effect, 0, len(sites))
	for _, s := range sites {
		out = append(out, s.Effect)
	}
	return out
}

func (e *Engine) directEffectsInto(pkg *Pkg, params map[types.Object]int, body ast.Node, spec EffectSpec, sums map[string][]Effect, out *[]SiteEffect) {
	if body == nil {
		return
	}
	pos := func(n ast.Node) token.Position { return pkg.Fset.Position(n.Pos()) }
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			// x = append(x, ...) and other append-shaped stores.
			for i, rhs := range s.Rhs {
				call, ok := unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pkg, call) || i >= len(s.Lhs) {
					continue
				}
				root, obj, ok := rootOf(pkg, params, s.Lhs[i])
				if !ok {
					continue
				}
				*out = append(*out, SiteEffect{
					Effect:  Effect{Kind: EffectAppend, Desc: "append to " + exprString(s.Lhs[i]), Pos: pos(call), Root: root},
					RootObj: obj,
				})
			}
		case *ast.CallExpr:
			e.callEffects(pkg, params, s, spec, sums, out)
		}
		return true
	})
}

// callEffects classifies one call: a direct write/charge, or a call into
// a summarized function with effects.
func (e *Engine) callEffects(pkg *Pkg, params map[types.Object]int, call *ast.CallExpr, spec EffectSpec, sums map[string][]Effect, out *[]SiteEffect) {
	obj, callee, recv := e.Callee(pkg, call)
	pos := pkg.Fset.Position(call.Pos())

	rootAt := func(expr ast.Expr) (int, types.Object, bool) {
		return rootOf(pkg, params, expr)
	}

	if obj != nil {
		// Registry charge.
		if spec.IsCharge != nil && spec.IsCharge(obj) {
			root, rObj := globalRoot, types.Object(nil)
			if recv != nil {
				if r, o, ok := rootAt(recv); ok {
					root, rObj = r, o
				}
			}
			*out = append(*out, SiteEffect{
				Effect:  Effect{Kind: EffectCharge, Desc: callDesc(call) + " charges the metric registry", Pos: pos, Root: root},
				RootObj: rObj,
			})
			return
		}
		// Writer-shaped destinations: an io.Writer-like argument, a
		// Write*-named method, or the fmt print family (implicit
		// os.Stdout).
		if wIdx, ok := writerParam(obj); ok {
			args := call.Args
			if wIdx < len(args) {
				root, rObj, okRoot := rootAt(args[wIdx])
				if !okRoot {
					root, rObj = globalRoot, nil
				}
				*out = append(*out, SiteEffect{
					Effect:  Effect{Kind: EffectWrite, Desc: callDesc(call) + " writes " + exprString(args[wIdx]), Pos: pos, Root: root},
					RootObj: rObj,
				})
				return
			}
		}
		if recv != nil && isWriterMethod(obj) {
			root, rObj, okRoot := rootAt(recv)
			if !okRoot {
				root, rObj = globalRoot, nil
			}
			*out = append(*out, SiteEffect{
				Effect:  Effect{Kind: EffectWrite, Desc: callDesc(call) + " writes " + exprString(recv), Pos: pos, Root: root},
				RootObj: rObj,
			})
			return
		}
		if isFmtPrint(obj) {
			*out = append(*out, SiteEffect{
				Effect: Effect{Kind: EffectWrite, Desc: callDesc(call) + " writes os.Stdout", Pos: pos, Root: globalRoot},
			})
			return
		}
	}

	// Effects through a summarized callee: re-root each effect at the
	// corresponding argument.
	if callee == nil || sums == nil {
		return
	}
	for _, ef := range sums[callee.ID] {
		var root int
		var rObj types.Object
		switch ef.Root {
		case globalRoot:
			root, rObj = globalRoot, nil
		case recvParam:
			if recv == nil {
				continue
			}
			r, o, ok := rootAt(recv)
			if !ok {
				continue
			}
			root, rObj = r, o
		default:
			if ef.Root < 0 || ef.Root >= len(call.Args) {
				continue
			}
			r, o, ok := rootAt(call.Args[ef.Root])
			if !ok {
				continue
			}
			root, rObj = r, o
		}
		via := extend(Path{{pos, "calls " + callee.name()}}, Step{ef.Pos, ef.Desc})
		if len(ef.Via) > 0 {
			via = Path{{pos, "calls " + callee.name()}}
			for _, s := range ef.Via {
				via = extend(via, s)
			}
		}
		*out = append(*out, SiteEffect{
			Effect:  Effect{Kind: ef.Kind, Desc: ef.Desc, Pos: ef.Pos, Root: root, Via: via},
			RootObj: rObj,
		})
	}
}

// isBuiltinAppend reports whether the call is the append builtin.
func isBuiltinAppend(pkg *Pkg, call *ast.CallExpr) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if pkg.Info != nil {
		if obj := pkg.Info.Uses[id]; obj != nil {
			_, isBuiltin := obj.(*types.Builtin)
			return isBuiltin
		}
	}
	return true
}

// WriterParam returns the index of the first parameter whose type is an
// interface with a Write method — how analyzers recognize exporter-shaped
// functions.
func WriterParam(fn *types.Func) (int, bool) { return writerParam(fn) }

// writerParam returns the index of the first parameter whose type is an
// interface with a Write method (io.Writer and friends).
func writerParam(fn *types.Func) (int, bool) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return 0, false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		t := sig.Params().At(i).Type()
		if s, isSlice := t.(*types.Slice); isSlice && sig.Variadic() && i == sig.Params().Len()-1 {
			t = s.Elem()
		}
		iface, isIface := t.Underlying().(*types.Interface)
		if !isIface {
			continue
		}
		for m := 0; m < iface.NumMethods(); m++ {
			if iface.Method(m).Name() == "Write" {
				return i, true
			}
		}
	}
	return 0, false
}

// isWriterMethod reports whether fn is a Write-family method on a
// concrete writer (bytes.Buffer, strings.Builder, csv.Writer, ...).
func isWriterMethod(fn *types.Func) bool {
	switch fn.Name() {
	case "Write", "WriteString", "WriteByte", "WriteRune":
	default:
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// isFmtPrint reports fmt.Print/Printf/Println (implicit stdout).
func isFmtPrint(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return false
	}
	switch fn.Name() {
	case "Print", "Printf", "Println":
		return true
	}
	return false
}

// exprString renders a small expression for diagnostics.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	case *ast.ParenExpr:
		return exprString(x.X)
	case *ast.UnaryExpr:
		return x.Op.String() + exprString(x.X)
	case *ast.CallExpr:
		return exprString(x.Fun) + "(...)"
	}
	return "expr"
}

// IsLocalRoot reports whether a root index means function-local state.
func IsLocalRoot(root int) bool { return root == localRoot }

// IsGlobalRoot reports whether a root index means package-level state.
func IsGlobalRoot(root int) bool { return root == globalRoot }
