package dataflow

import "go/types"

// layoutSizes is the size model for padcheck. Hot-path padding targets
// the production platform (linux/amd64, 8-byte words, 64-byte cache
// lines); the analyzer states a fact about that layout regardless of
// the host the linter runs on.
var layoutSizes = types.SizesFor("gc", "amd64")

// CacheLine is the cache-line granularity the padding checks assume.
const CacheLine = 64

// FieldFact is one field of an analyzed struct layout.
type FieldFact struct {
	Name   string
	Offset int64
	Size   int64
	Atomic bool // declared type lives in sync/atomic
	Blank  bool // padding field "_"
}

// StructLayout computes the gc/amd64 size and field offsets of a
// struct.
func StructLayout(st *types.Struct) (size int64, fields []FieldFact) {
	n := st.NumFields()
	vars := make([]*types.Var, n)
	for i := 0; i < n; i++ {
		vars[i] = st.Field(i)
	}
	offsets := layoutSizes.Offsetsof(vars)
	for i, v := range vars {
		fields = append(fields, FieldFact{
			Name:   v.Name(),
			Offset: offsets[i],
			Size:   layoutSizes.Sizeof(v.Type()),
			Atomic: isAtomicType(v.Type()),
			Blank:  v.Name() == "_",
		})
	}
	return layoutSizes.Sizeof(st), fields
}

// isAtomicType reports whether t (or its element for arrays) is a named
// type from sync/atomic — atomic.Int64, atomic.Bool, atomic.Pointer[T],
// and friends.
func isAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		if alias, isAlias := t.(*types.Alias); isAlias {
			return isAtomicType(types.Unalias(alias))
		}
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync/atomic"
}
