package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// TaintSpec configures one taint analysis: what creates taint, what
// consumes it, and where findings may be reported. Interprocedural facts
// flow through every loaded package regardless of ReportIn; only the
// final source-meets-sink report is scoped.
type TaintSpec struct {
	// Source classifies a resolved callee as a taint source (e.g.
	// time.Now); desc names it in rendered paths.
	Source func(fn *types.Func) (desc string, ok bool)

	// SinkStore classifies an assignment target as a sink (e.g. a field
	// of core.Result). Called with the left-hand side of assignments.
	SinkStore func(pkg *Pkg, lhs ast.Expr) (desc string, ok bool)

	// SinkArg classifies argument arg (0-based, after flattening
	// variadic calls) of a resolved call as a sink (e.g. the arguments
	// of obs.Registry.Add, or non-writer arguments of a function taking
	// an io.Writer).
	SinkArg func(pkg *Pkg, call *ast.CallExpr, fn *types.Func, arg int) (desc string, ok bool)

	// ReportIn scopes findings to packages satisfying the predicate
	// (nil: report everywhere).
	ReportIn func(pkgPath string) bool
}

// TaintFinding is one source-to-sink flow. Path begins at the source and
// ends with the sink step; Pos is the sink position (where a
// //lint:ignore suppression belongs).
type TaintFinding struct {
	Pos  token.Position
	Sink string
	Path Path
}

// value is the taint lattice element for one variable or expression:
// optionally tainted by a concrete source (with the path that got it
// there), and/or derived from enclosing-function parameters (with the
// route taken, for summary facts).
type value struct {
	src    Path
	params map[int]Path
}

func (v value) tainted() bool { return v.src != nil || len(v.params) > 0 }

// join merges o into v, reporting whether v grew. First-found paths win,
// which is deterministic because analysis order is deterministic.
func (v *value) join(o value) bool {
	changed := false
	if v.src == nil && o.src != nil {
		v.src = o.src
		changed = true
	}
	for p, route := range o.params {
		if v.params == nil {
			v.params = map[int]Path{}
		}
		if _, ok := v.params[p]; !ok {
			v.params[p] = route
			changed = true
		}
	}
	return changed
}

// step returns a copy of v with s appended to every carried path.
func (v value) step(s Step) value {
	out := value{}
	if v.src != nil {
		out.src = extend(v.src, s)
	}
	if len(v.params) > 0 {
		out.params = make(map[int]Path, len(v.params))
		for p, route := range v.params {
			out.params[p] = extend(route, s)
		}
	}
	return out
}

// sinkFact records that a parameter reaches a sink inside a function
// (directly or through deeper callees).
type sinkFact struct {
	desc string
	pos  token.Position
	path Path // route from the parameter to the sink, ending at the sink step
}

// taintSummary is one function's transfer summary.
type taintSummary struct {
	resultSrc map[int]Path         // result index → source path (tainted regardless of arguments)
	flow      map[int]map[int]Path // param index → result index → route
	sinkParam map[int]sinkFact     // param index → sink reached inside
}

func newTaintSummary() *taintSummary {
	return &taintSummary{
		resultSrc: map[int]Path{},
		flow:      map[int]map[int]Path{},
		sinkParam: map[int]sinkFact{},
	}
}

// covers reports whether s already contains every fact of o — the
// fixpoint's monotone "no change" test (paths are not compared).
func (s *taintSummary) covers(o *taintSummary) bool {
	if s == nil {
		return o == nil || (len(o.resultSrc) == 0 && len(o.flow) == 0 && len(o.sinkParam) == 0)
	}
	for i := range o.resultSrc {
		if _, ok := s.resultSrc[i]; !ok {
			return false
		}
	}
	for p, results := range o.flow {
		have := s.flow[p]
		for r := range results {
			if _, ok := have[r]; !ok {
				return false
			}
		}
	}
	for p := range o.sinkParam {
		if _, ok := s.sinkParam[p]; !ok {
			return false
		}
	}
	return true
}

// Taint runs the bottom-up summary fixpoint and returns every
// source-to-sink flow in ReportIn scope, sorted by position then sink.
func (e *Engine) Taint(spec TaintSpec) []TaintFinding {
	sums := map[string]*taintSummary{}
	// The summary lattice is finite (indices bounded by arity), so the
	// fixpoint terminates; the iteration cap is a safety net only.
	for iter := 0; iter < 64; iter++ {
		changed := false
		for _, id := range e.ids {
			f := e.funcs[id]
			ns, _ := e.analyzeTaint(f, spec, sums, false)
			if !covers(sums[id], ns) {
				sums[id] = ns
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	var out []TaintFinding
	seen := map[string]bool{}
	for _, id := range e.ids {
		f := e.funcs[id]
		if spec.ReportIn != nil && !spec.ReportIn(f.Pkg.Path) {
			continue
		}
		_, findings := e.analyzeTaint(f, spec, sums, true)
		for _, tf := range findings {
			key := tf.Pos.String() + "|" + tf.Sink
			if !seen[key] {
				seen[key] = true
				out = append(out, tf)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Sink < b.Sink
	})
	return out
}

func covers(have, next *taintSummary) bool { return have != nil && have.covers(next) }

// ParamFlows returns, for every function ID, which parameter indices may
// flow into which result indices (receiver = -1). Computed once with an
// empty spec and cached; lockset uses it to see through identity-shaped
// helpers.
func (e *Engine) ParamFlows() map[string]map[int]map[int]bool {
	if e.flows != nil {
		return e.flows
	}
	sums := map[string]*taintSummary{}
	spec := TaintSpec{}
	for iter := 0; iter < 64; iter++ {
		changed := false
		for _, id := range e.ids {
			ns, _ := e.analyzeTaint(e.funcs[id], spec, sums, false)
			if !covers(sums[id], ns) {
				sums[id] = ns
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	e.flows = map[string]map[int]map[int]bool{}
	for id, s := range sums {
		m := map[int]map[int]bool{}
		for p, results := range s.flow {
			m[p] = map[int]bool{}
			for r := range results {
				m[p][r] = true
			}
		}
		e.flows[id] = m
	}
	return e.flows
}

// taintFrame is the per-function analysis state.
type taintFrame struct {
	e       *Engine
	pkg     *Pkg
	fn      *Func
	spec    TaintSpec
	sums    map[string]*taintSummary
	report  bool
	params  map[types.Object]int
	results map[types.Object]int
	env     map[types.Object]*value
	sum     *taintSummary
	finds   []TaintFinding
	changed bool
}

// analyzeTaint computes one function's summary given the current callee
// summaries. With report set it also emits findings for source-tainted
// values meeting sinks.
func (e *Engine) analyzeTaint(f *Func, spec TaintSpec, sums map[string]*taintSummary, report bool) (*taintSummary, []TaintFinding) {
	fr := &taintFrame{
		e: e, pkg: f.Pkg, fn: f, spec: spec, sums: sums, report: report,
		env: map[types.Object]*value{},
		sum: newTaintSummary(),
	}
	fr.params, fr.results, _ = paramObjects(f.Pkg, f.Decl)

	// Iterate the body until the local environment stabilizes so
	// loop-carried taint converges; facts and findings recorded on the
	// last pass are complete.
	for pass := 0; pass < 12; pass++ {
		fr.finds = nil
		fr.sum = newTaintSummary()
		if !fr.walkBody(f.Decl.Body) {
			break
		}
	}
	return fr.sum, fr.finds
}

// walkBody walks the whole body once; reports whether env changed.
func (fr *taintFrame) walkBody(body *ast.BlockStmt) bool {
	fr.changed = false
	fr.walkStmts(body, false)
	return fr.changed
}

// walkStmts visits statements. inLit marks function-literal bodies:
// their statements share the enclosing environment (captures work) but
// their return statements do not feed the enclosing function's results.
func (fr *taintFrame) walkStmts(n ast.Node, inLit bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(node ast.Node) bool {
		switch s := node.(type) {
		case *ast.FuncLit:
			fr.walkStmts(s.Body, true)
			return false
		case *ast.AssignStmt:
			fr.assign(s)
			return true
		case *ast.RangeStmt:
			fr.rangeStmt(s)
			return true
		case *ast.ReturnStmt:
			if !inLit {
				fr.returnStmt(s)
			}
			return true
		case *ast.CallExpr:
			fr.checkCallSinks(s)
			return true
		}
		return true
	})
}

// assign handles = and := statements: environment updates, sink-store
// checks and weak base taint for field stores.
func (fr *taintFrame) assign(s *ast.AssignStmt) {
	var vals []value
	if len(s.Lhs) > 1 && len(s.Rhs) == 1 {
		vals = fr.evalMulti(s.Rhs[0], len(s.Lhs))
	} else {
		for i := range s.Lhs {
			if i < len(s.Rhs) {
				vals = append(vals, fr.eval(s.Rhs[i]))
			} else {
				vals = append(vals, value{})
			}
		}
	}
	for i, lhs := range s.Lhs {
		v := vals[i]
		// Compound assignment (+=, |=, ...) keeps the old taint too.
		if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
			v.join(fr.eval(lhs))
		}
		if !v.tainted() {
			continue
		}
		switch l := unparen(lhs).(type) {
		case *ast.Ident:
			fr.taintObj(fr.lookupObj(l), v)
		default:
			// Sink check on non-identifier targets.
			if fr.spec.SinkStore != nil {
				if desc, ok := fr.spec.SinkStore(fr.pkg, lhs); ok {
					fr.hitSink(desc, fr.pos(lhs), v, Step{fr.pos(lhs), "stored to " + desc})
				}
			}
			// Weak update: storing into x.f or x[i] taints x itself, so
			// a struct carrying a tainted field stays visible.
			if root, obj, ok := rootOf(fr.pkg, fr.params, l); ok && root == localRoot {
				fr.taintObj(obj, v)
			}
		}
	}
}

func (fr *taintFrame) rangeStmt(s *ast.RangeStmt) {
	v := fr.eval(s.X)
	if !v.tainted() {
		return
	}
	for _, k := range []ast.Expr{s.Key, s.Value} {
		if id, ok := k.(*ast.Ident); ok && id.Name != "_" {
			fr.taintObj(fr.lookupObj(id), v)
		}
	}
}

func (fr *taintFrame) returnStmt(s *ast.ReturnStmt) {
	record := func(i int, v value) {
		if v.src != nil {
			if _, ok := fr.sum.resultSrc[i]; !ok {
				fr.sum.resultSrc[i] = v.src
			}
		}
		for p, route := range v.params {
			m := fr.sum.flow[p]
			if m == nil {
				m = map[int]Path{}
				fr.sum.flow[p] = m
			}
			if _, ok := m[i]; !ok {
				m[i] = route
			}
		}
	}
	if len(s.Results) == 0 {
		// Naked return: named results carry the value.
		for obj, i := range fr.results {
			if v := fr.env[obj]; v != nil {
				record(i, *v)
			}
		}
		return
	}
	if len(s.Results) == 1 {
		for i, v := range fr.evalMulti(s.Results[0], -1) {
			record(i, v)
		}
		return
	}
	for i, r := range s.Results {
		record(i, fr.eval(r))
	}
}

// checkCallSinks applies SinkArg specs and callee sink-param summaries
// to one call's arguments.
func (fr *taintFrame) checkCallSinks(call *ast.CallExpr) {
	obj, callee, recv := fr.e.Callee(fr.pkg, call)
	if fr.spec.SinkArg != nil && obj != nil {
		for i, arg := range call.Args {
			desc, ok := fr.spec.SinkArg(fr.pkg, call, obj, i)
			if !ok {
				continue
			}
			v := fr.eval(arg)
			if !v.tainted() {
				continue
			}
			fr.hitSink(desc, fr.pos(call), v, Step{fr.pos(arg), "passed to " + desc})
		}
	}
	if callee != nil {
		if sum := fr.sums[callee.ID]; sum != nil && len(sum.sinkParam) > 0 {
			for p, fact := range sum.sinkParam {
				var v value
				if p == recvParam {
					if recv == nil {
						continue
					}
					v = fr.eval(recv)
				} else if p >= 0 && p < len(call.Args) {
					v = fr.eval(call.Args[p])
				} else {
					continue
				}
				if !v.tainted() {
					continue
				}
				v = v.step(Step{fr.pos(call), "passed to " + callee.name()})
				fr.hitSinkAt(fact.desc, fact.pos, v, fact.path)
			}
		}
	}
}

// hitSink records a sink hit whose sink step is the final one.
func (fr *taintFrame) hitSink(desc string, pos token.Position, v value, sinkStep Step) {
	fr.hitSinkAt(desc, pos, v, Path{sinkStep})
}

// hitSinkAt records a sink hit at pos with the given remaining route to
// the sink: source-tainted values become findings (report mode),
// parameter-tainted values become summary sink facts.
func (fr *taintFrame) hitSinkAt(desc string, pos token.Position, v value, route Path) {
	if v.src != nil && fr.report {
		p := v.src
		for _, s := range route {
			p = extend(p, s)
		}
		fr.finds = append(fr.finds, TaintFinding{Pos: pos, Sink: desc, Path: p})
	}
	for param, pre := range v.params {
		if _, ok := fr.sum.sinkParam[param]; ok {
			continue
		}
		p := pre
		for _, s := range route {
			p = extend(p, s)
		}
		fr.sum.sinkParam[param] = sinkFact{desc: desc, pos: pos, path: p}
	}
}

// eval returns the taint of an expression, unioning multi-values.
func (fr *taintFrame) eval(e ast.Expr) value {
	var out value
	for _, v := range fr.evalMulti(e, -1) {
		out.join(v)
	}
	return out
}

// evalMulti evaluates an expression in a multi-value context. want is
// the expected arity (-1: whatever the expression yields).
func (fr *taintFrame) evalMulti(e ast.Expr, want int) []value {
	single := func(v value) []value {
		if want <= 1 {
			return []value{v}
		}
		out := make([]value, want)
		for i := range out {
			out[i] = v
		}
		return out
	}
	switch x := e.(type) {
	case nil:
		return single(value{})
	case *ast.BasicLit, *ast.FuncLit:
		return single(value{})
	case *ast.Ident:
		if v := fr.env[fr.lookupObj(x)]; v != nil {
			return single(*v)
		}
		if obj := fr.lookupObj(x); obj != nil {
			if p, ok := fr.params[obj]; ok {
				return single(value{params: map[int]Path{p: nil}})
			}
		}
		return single(value{})
	case *ast.ParenExpr:
		return fr.evalMulti(x.X, want)
	case *ast.StarExpr:
		return single(fr.eval(x.X))
	case *ast.UnaryExpr:
		return single(fr.eval(x.X))
	case *ast.BinaryExpr:
		v := fr.eval(x.X)
		v.join(fr.eval(x.Y))
		return single(v)
	case *ast.SelectorExpr:
		// Package-qualified name or field read: a field read of a
		// tainted base is tainted; package-level vars are clean.
		if id, ok := x.X.(*ast.Ident); ok && fr.pkg.Info != nil {
			if _, isPkg := fr.pkg.Info.Uses[id].(*types.PkgName); isPkg {
				return single(value{})
			}
		}
		return single(fr.eval(x.X))
	case *ast.IndexExpr:
		v := fr.eval(x.X)
		v.join(fr.eval(x.Index))
		return single(v)
	case *ast.IndexListExpr:
		return single(fr.eval(x.X))
	case *ast.SliceExpr:
		return single(fr.eval(x.X))
	case *ast.TypeAssertExpr:
		return single(fr.eval(x.X))
	case *ast.CompositeLit:
		var v value
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				v.join(fr.eval(kv.Value))
			} else {
				v.join(fr.eval(el))
			}
		}
		return single(v)
	case *ast.CallExpr:
		return fr.evalCall(x, want)
	}
	return single(value{})
}

// evalCall computes the taint of a call's results.
func (fr *taintFrame) evalCall(call *ast.CallExpr, want int) []value {
	obj, callee, recv := fr.e.Callee(fr.pkg, call)

	n := want
	if n < 1 {
		n = 1
		if obj != nil {
			if sig, ok := obj.Type().(*types.Signature); ok && sig.Results().Len() > 1 {
				n = sig.Results().Len()
			}
		}
	}
	out := make([]value, n)
	pos := fr.pos(call)

	// Intrinsic sources.
	if obj != nil && fr.spec.Source != nil {
		if desc, ok := fr.spec.Source(obj); ok {
			p := Path{{pos, desc}}
			for i := range out {
				out[i] = value{src: p}
			}
			return out
		}
	}
	// //lint:source annotated declarations.
	if callee != nil && callee.Source {
		p := Path{{fr.posOf(callee.Decl.Name.Pos(), callee.Pkg), callee.SourceDesc}, {pos, "called here"}}
		for i := range out {
			out[i] = value{src: p}
		}
		return out
	}

	argVal := func(p int) (value, bool) {
		if p == recvParam {
			if recv == nil {
				return value{}, false
			}
			return fr.eval(recv), true
		}
		if p >= 0 && p < len(call.Args) {
			return fr.eval(call.Args[p]), true
		}
		return value{}, false
	}

	if callee != nil {
		sum := fr.sums[callee.ID]
		if sum != nil {
			for i, p := range sum.resultSrc {
				if i < n {
					out[i].join(value{src: extend(p, Step{pos, "returned by " + callee.name()})})
				}
			}
			for p, results := range sum.flow {
				v, ok := argVal(p)
				if !ok || !v.tainted() {
					continue
				}
				stepped := v.step(Step{pos, "through " + callee.name()})
				for i := range results {
					if i < n {
						out[i].join(stepped)
					}
				}
			}
		}
		return out
	}

	// Opaque call (stdlib leaf, function value, interface method,
	// conversion, builtin): conservative argument-to-result flow.
	var v value
	if recv != nil {
		v.join(fr.eval(recv))
	}
	for _, arg := range call.Args {
		v.join(fr.eval(arg))
	}
	if v.tainted() {
		v = v.step(Step{pos, "through " + callDesc(call)})
	}
	for i := range out {
		out[i].join(v)
	}
	return out
}

// callDesc renders an opaque callee for path steps.
func callDesc(call *ast.CallExpr) string {
	switch f := unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		if id, ok := f.X.(*ast.Ident); ok {
			return id.Name + "." + f.Sel.Name
		}
		return f.Sel.Name
	}
	return "call"
}

func (fr *taintFrame) lookupObj(id *ast.Ident) types.Object {
	if fr.pkg.Info == nil {
		return nil
	}
	if obj := fr.pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return fr.pkg.Info.Defs[id]
}

func (fr *taintFrame) taintObj(obj types.Object, v value) {
	if obj == nil || !v.tainted() {
		return
	}
	cur := fr.env[obj]
	if cur == nil {
		cur = &value{}
		fr.env[obj] = cur
	}
	if cur.join(v) {
		fr.changed = true
	}
}

func (fr *taintFrame) pos(n ast.Node) token.Position {
	return fr.pkg.Fset.Position(n.Pos())
}

func (fr *taintFrame) posOf(p token.Pos, pkg *Pkg) token.Position {
	return pkg.Fset.Position(p)
}
