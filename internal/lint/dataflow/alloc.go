package dataflow

import (
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// AllocKind classifies one heap-allocation site (or a call the analyzer
// cannot see through, which on a hot path is the same failure: the
// allocation-freedom of the function can no longer be proved).
type AllocKind string

const (
	// AllocMake: make of a slice, map or channel.
	AllocMake AllocKind = "make"
	// AllocNew: new(T).
	AllocNew AllocKind = "new"
	// AllocComposite: slice/map composite literal or &T{...}.
	AllocComposite AllocKind = "composite"
	// AllocAppend: append may grow the backing array.
	AllocAppend AllocKind = "append"
	// AllocString: string concatenation or []byte/[]rune↔string
	// conversion.
	AllocString AllocKind = "string"
	// AllocBox: a non-pointer-shaped concrete value converted to an
	// interface (call argument, assignment, return, conversion).
	AllocBox AllocKind = "box"
	// AllocClosure: a function literal that captures variables and
	// escapes its defining scope (passed, returned, stored, launched).
	AllocClosure AllocKind = "closure"
	// AllocVariadic: an unexpanded variadic call packs its trailing
	// arguments into a fresh slice.
	AllocVariadic AllocKind = "variadic"
	// AllocMapWrite: writing a map key may grow the map.
	AllocMapWrite AllocKind = "mapwrite"
	// AllocGo: a go statement allocates a goroutine.
	AllocGo AllocKind = "go"
	// AllocIndirect: a call through a function value or interface method
	// — the engine cannot see the callee, so allocation-freedom is
	// unprovable.
	AllocIndirect AllocKind = "indirect"
	// AllocOpaque: a call into a function outside the analyzed program
	// that is not on the allowlist.
	AllocOpaque AllocKind = "opaque"
)

// AllocSite is one allocation (or unprovable call) found directly in a
// function body.
type AllocSite struct {
	Kind AllocKind
	Desc string
	Pos  token.Position
}

// AllocCall is one statically resolved call edge into the analyzed
// program.
type AllocCall struct {
	Pos    token.Position
	Callee *Func
}

// AllocFacts walks one function body and returns its direct allocation
// sites plus its static call edges into the program, both in source
// order. allow reports whether an out-of-program callee is known not to
// allocate (math.Sqrt, atomic ops, ...); callees that are neither
// indexed nor allowed become AllocOpaque sites.
//
// Deliberate precision limits, shared with the taint engine: function
// literals assigned to a local variable and only invoked are treated as
// non-escaping even if the variable is later passed elsewhere, and defer
// is not charged (Go open-codes defers outside loops). The compiler
// escape-analysis golden test in internal/lint backstops these on the
// real hot path.
func (e *Engine) AllocFacts(f *Func, allow func(*types.Func) bool) (sites []AllocSite, calls []AllocCall) {
	pkg := f.Pkg
	body := f.Decl.Body
	if body == nil {
		return nil, nil
	}
	pos := func(n ast.Node) token.Position { return pkg.Fset.Position(n.Pos()) }
	addSite := func(n ast.Node, kind AllocKind, desc string) {
		sites = append(sites, AllocSite{Kind: kind, Desc: desc, Pos: pos(n)})
	}

	calm, locals := e.calmFuncLits(pkg, body)
	lits := funcLitsIn(body)

	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			e.allocCall(f, x, allow, locals, addSite, &calls)
		case *ast.FuncLit:
			if !calm[x] && capturesOuter(pkg, x) {
				addSite(x, AllocClosure, "closure captures variables and escapes")
			}
		case *ast.CompositeLit:
			if t := typeOf(pkg, x); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					addSite(x, AllocComposite, "slice literal allocates its backing array")
				case *types.Map:
					addSite(x, AllocComposite, "map literal allocates")
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, isLit := unparen(x.X).(*ast.CompositeLit); isLit {
					addSite(x, AllocComposite, srcString(pkg, x)+" escapes to the heap")
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD {
				if tv, ok := pkg.Info.Types[x]; ok && tv.Value == nil {
					if b, isBasic := tv.Type.Underlying().(*types.Basic); isBasic && b.Info()&types.IsString != 0 {
						addSite(x, AllocString, "string concatenation allocates")
					}
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if idx, ok := unparen(lhs).(*ast.IndexExpr); ok {
					if t := typeOf(pkg, idx.X); t != nil {
						if _, isMap := t.Underlying().(*types.Map); isMap {
							addSite(lhs, AllocMapWrite, "map write to "+exprString(idx.X)+" may allocate")
						}
					}
				}
				boxOnStore(pkg, lhs, rhsFor(x, lhs), addSite)
			}
		case *ast.IncDecStmt:
			if idx, ok := unparen(x.X).(*ast.IndexExpr); ok {
				if t := typeOf(pkg, idx.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						addSite(x, AllocMapWrite, "map write to "+exprString(idx.X)+" may allocate")
					}
				}
			}
		case *ast.GoStmt:
			addSite(x, AllocGo, "go statement allocates a goroutine")
		case *ast.ReturnStmt:
			ft := enclosingFuncType(f.Decl, lits, x)
			boxOnReturn(pkg, ft, x, addSite)
		}
		return true
	})
	return sites, calls
}

// srcString renders a node as source text for diagnostics — allocation
// findings quote the offending expression verbatim so the triage step
// does not need the file open. Long or multi-line renderings are elided.
func srcString(pkg *Pkg, n ast.Node) string {
	var b strings.Builder
	if err := printer.Fprint(&b, pkg.Fset, n); err != nil {
		return "expr"
	}
	s := b.String()
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i] + "…"
	}
	if len(s) > 60 {
		s = s[:60] + "…"
	}
	return s
}

// rhsFor pairs an assignment LHS with its RHS expression (nil for
// multi-value forms like x, y = f()).
func rhsFor(a *ast.AssignStmt, lhs ast.Expr) ast.Expr {
	if len(a.Lhs) != len(a.Rhs) {
		return nil
	}
	for i := range a.Lhs {
		if a.Lhs[i] == lhs {
			return a.Rhs[i]
		}
	}
	return nil
}

// allocCall classifies one call expression: builtin allocators, string
// conversions, interface boxing of arguments, variadic packing, static
// edges into the program, and opaque/indirect calls.
func (e *Engine) allocCall(f *Func, call *ast.CallExpr, allow func(*types.Func) bool, locals map[types.Object]localClosure, addSite func(ast.Node, AllocKind, string), calls *[]AllocCall) {
	pkg := f.Pkg

	// Conversion, not a call: T(x).
	if tv, ok := pkg.Info.Types[unparen(call.Fun)]; ok && tv.IsType() && len(call.Args) == 1 {
		classifyConversion(pkg, tv.Type, call, addSite)
		return
	}

	// Builtins.
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if obj := pkg.Info.Uses[id]; obj != nil {
			if _, isBuiltin := obj.(*types.Builtin); isBuiltin {
				switch id.Name {
				case "make":
					addSite(call, AllocMake, srcString(pkg, call)+" allocates")
				case "new":
					addSite(call, AllocNew, srcString(pkg, call)+" allocates")
				case "append":
					addSite(call, AllocAppend, "append may grow and reallocate "+exprString(call.Args[0]))
				case "panic":
					if len(call.Args) == 1 {
						boxValue(pkg, nil, call.Args[0], "panic argument", addSite)
					}
				}
				return
			}
		}
	}

	obj, callee, _ := e.Callee(pkg, call)

	// Boxing and variadic packing happen at the call site regardless of
	// who the callee is, whenever the signature is known.
	if obj != nil {
		if sig, ok := obj.Type().(*types.Signature); ok {
			boxArgs(pkg, sig, call, addSite)
			if sig.Variadic() && !call.Ellipsis.IsValid() && len(call.Args) >= sig.Params().Len() {
				addSite(call, AllocVariadic, srcString(pkg, call)+" packs variadic arguments into a slice")
			}
		}
	}

	switch {
	case callee != nil:
		*calls = append(*calls, AllocCall{Pos: pkg.Fset.Position(call.Pos()), Callee: callee})
	case obj != nil:
		if allow == nil || !allow(obj) {
			addSite(call, AllocOpaque, srcString(pkg, call)+" calls into unanalyzed code — cannot prove allocation-free")
		}
	default:
		// A directly invoked literal (IIFE), or a call through a local
		// variable bound exactly once to a function literal, is a call
		// into that literal — and literals are analyzed in the enclosing
		// frame, so their sites are already collected. Anything else is
		// unprovable.
		switch fun := unparen(call.Fun).(type) {
		case *ast.FuncLit:
			return
		case *ast.Ident:
			if o := identObj(pkg, fun); o != nil {
				if lc, known := locals[o]; known && lc.binds == 1 && lc.lit != nil {
					return
				}
			}
		}
		addSite(call, AllocIndirect, callDesc(call)+" is an indirect call (function value or interface method) — cannot prove allocation-free")
	}
}

// classifyConversion flags allocating conversions: string↔[]byte/[]rune
// and concrete→interface.
func classifyConversion(pkg *Pkg, target types.Type, call *ast.CallExpr, addSite func(ast.Node, AllocKind, string)) {
	arg := call.Args[0]
	src := typeOf(pkg, arg)
	if src == nil {
		return
	}
	if isString(target) && isByteOrRuneSlice(src) {
		addSite(call, AllocString, "[]byte/[]rune→string conversion allocates")
		return
	}
	if isByteOrRuneSlice(target) && isString(src) {
		addSite(call, AllocString, "string→[]byte/[]rune conversion allocates")
		return
	}
	if _, isIface := target.Underlying().(*types.Interface); isIface {
		boxValue(pkg, target, arg, "conversion to "+types.TypeString(target, shortQualifier), addSite)
	}
}

// boxArgs flags non-pointer-shaped concrete values passed to interface
// parameters (including the flattened variadic element type).
func boxArgs(pkg *Pkg, sig *types.Signature, call *ast.CallExpr, addSite func(ast.Node, AllocKind, string)) {
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < np-1 || (!sig.Variadic() && i < np):
			pt = sig.Params().At(i).Type()
		case sig.Variadic() && !call.Ellipsis.IsValid():
			if s, ok := sig.Params().At(np - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case sig.Variadic() && i == np-1:
			pt = sig.Params().At(np - 1).Type() // f(xs...)
		}
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); isIface {
			boxValue(pkg, pt, arg, "argument "+exprString(arg), addSite)
		}
	}
}

// boxOnStore flags assignments of concrete values into interface-typed
// destinations.
func boxOnStore(pkg *Pkg, lhs, rhs ast.Expr, addSite func(ast.Node, AllocKind, string)) {
	if rhs == nil {
		return
	}
	lt := typeOf(pkg, lhs)
	if lt == nil {
		return
	}
	if _, isIface := lt.Underlying().(*types.Interface); isIface {
		boxValue(pkg, lt, rhs, "assignment to "+exprString(lhs), addSite)
	}
}

// boxOnReturn flags concrete values returned through interface results.
func boxOnReturn(pkg *Pkg, ft *ast.FuncType, ret *ast.ReturnStmt, addSite func(ast.Node, AllocKind, string)) {
	if ft == nil || ft.Results == nil {
		return
	}
	var resultTypes []ast.Expr
	for _, field := range ft.Results.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			resultTypes = append(resultTypes, field.Type)
		}
	}
	if len(ret.Results) != len(resultTypes) {
		return // naked return or multi-value call
	}
	for i, r := range ret.Results {
		rt := typeOf(pkg, resultTypes[i])
		if rt == nil {
			continue
		}
		if _, isIface := rt.Underlying().(*types.Interface); isIface {
			boxValue(pkg, rt, r, "return value", addSite)
		}
	}
}

// boxValue reports a boxing allocation unless the value is already an
// interface, pointer-shaped (interface data word holds the pointer
// directly), nil, or a constant (the compiler backs boxed constants with
// static data).
func boxValue(pkg *Pkg, target types.Type, val ast.Expr, where string, addSite func(ast.Node, AllocKind, string)) {
	tv, ok := pkg.Info.Types[val]
	if !ok || tv.IsNil() || tv.Value != nil {
		return
	}
	vt := tv.Type
	if vt == nil {
		return
	}
	switch vt.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return
	}
	if b, isBasic := vt.Underlying().(*types.Basic); isBasic && b.Kind() == types.UnsafePointer {
		return
	}
	addSite(val, AllocBox, exprString(val)+" boxed into interface at "+where)
}

// localClosure tracks a function-typed local: how many times it is
// (re)bound in the body and the single literal it is bound to, if any.
type localClosure struct {
	binds int
	lit   *ast.FuncLit
}

// calmFuncLits returns the function literals that provably do not
// escape — those directly invoked (IIFE) and those assigned or bound to
// a local identifier — plus, per local object, its closure binding so
// calls through the local can be resolved. Everything else — passed as
// an argument, returned, stored into a field/index/global, launched
// with go/defer, sent on a channel — escapes.
func (e *Engine) calmFuncLits(pkg *Pkg, body ast.Node) (map[*ast.FuncLit]bool, map[types.Object]localClosure) {
	calm := map[*ast.FuncLit]bool{}
	locals := map[types.Object]localClosure{}
	bind := func(id *ast.Ident, lit *ast.FuncLit) {
		obj := identObj(pkg, id)
		if obj == nil {
			return
		}
		v, isVar := obj.(*types.Var)
		if !isVar || v.Parent() == nil || v.Parent().Parent() == types.Universe {
			return
		}
		lc := locals[obj]
		lc.binds++
		lc.lit = lit
		locals[obj] = lc
		if lit != nil {
			calm[lit] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if lit, ok := unparen(x.Fun).(*ast.FuncLit); ok {
				calm[lit] = true
			}
		case *ast.AssignStmt:
			if len(x.Lhs) != len(x.Rhs) {
				break
			}
			for i, rhs := range x.Rhs {
				id, isIdent := unparen(x.Lhs[i]).(*ast.Ident)
				if !isIdent {
					continue
				}
				if lit, ok := unparen(rhs).(*ast.FuncLit); ok {
					bind(id, lit)
				} else if isFuncType(pkg, x.Lhs[i]) {
					bind(id, nil) // rebound to something other than a literal
				}
			}
		case *ast.ValueSpec:
			for i, rhs := range x.Values {
				if lit, ok := unparen(rhs).(*ast.FuncLit); ok {
					if i < len(x.Names) {
						bind(x.Names[i], lit)
					} else {
						calm[lit] = true
					}
				}
			}
		}
		return true
	})
	return calm, locals
}

// isFuncType reports whether the expression has function type.
func isFuncType(pkg *Pkg, e ast.Expr) bool {
	t := typeOf(pkg, e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Signature)
	return ok
}

// capturesOuter reports whether the literal references any variable
// declared outside its own body (a closure with no free variables is a
// static func value — no allocation).
func capturesOuter(pkg *Pkg, lit *ast.FuncLit) bool {
	captures := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captures {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, isVar := pkg.Info.Uses[id].(*types.Var)
		if !isVar || v.IsField() {
			return true
		}
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true // package-level variable, not a capture
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captures = true
		}
		return true
	})
	return captures
}

// funcLitsIn collects every function literal under body.
func funcLitsIn(body ast.Node) []*ast.FuncLit {
	var lits []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			lits = append(lits, lit)
		}
		return true
	})
	return lits
}

// enclosingFuncType returns the signature a return statement returns
// through: the innermost containing function literal, or the declaration
// itself.
func enclosingFuncType(fd *ast.FuncDecl, lits []*ast.FuncLit, ret *ast.ReturnStmt) *ast.FuncType {
	var best *ast.FuncLit
	for _, lit := range lits {
		if lit.Body.Pos() <= ret.Pos() && ret.End() <= lit.Body.End() {
			if best == nil || (best.Body.Pos() <= lit.Body.Pos() && lit.Body.End() <= best.Body.End()) {
				best = lit
			}
		}
	}
	if best != nil {
		return best.Type
	}
	return fd.Type
}

// typeOf returns the type of an expression, or nil without type info.
func typeOf(pkg *Pkg, e ast.Expr) types.Type {
	if pkg.Info == nil {
		return nil
	}
	if tv, ok := pkg.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// identObj resolves an identifier to its object (use or def).
func identObj(pkg *Pkg, id *ast.Ident) types.Object {
	if pkg.Info == nil {
		return nil
	}
	if o := pkg.Info.Uses[id]; o != nil {
		return o
	}
	return pkg.Info.Defs[id]
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

// shortQualifier renders package names without import paths in type
// strings used for diagnostics.
func shortQualifier(p *types.Package) string { return p.Name() }
