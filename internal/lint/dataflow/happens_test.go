package dataflow

import (
	"testing"
)

// spawnSrc models the wall-clock worker pattern with channels only (the
// synthetic loader is import-free): loop-spawned workers, a
// channel-mediated join, a spawn helper that hides the go statement one
// call deep, and a recursive spawner the fixpoint must terminate on.
const spawnSrc = `package p

type slot struct{ n int64 }

// fan loop-spawns one worker per slot; each signals completion by
// sending on done.
func fan(slots []slot, done chan int) {
	for wk := 0; wk < len(slots); wk++ {
		go func(wk int) {
			slots[wk].n++
			done <- wk
		}(wk)
	}
}

// join drains one completion per slot.
func join(slots []slot, done chan int) {
	for range slots {
		<-done
	}
}

// run composes them: fan, join, merge.
func run(slots []slot, done chan int) int64 {
	fan(slots, done)
	join(slots, done)
	var total int64
	for i := range slots {
		total += slots[i].n
	}
	return total
}

// respawn spawns itself: the spawn-summary fixpoint must converge.
func respawn(depth int, done chan int) {
	if depth == 0 {
		done <- 0
		return
	}
	go respawn(depth-1, done)
}
`

func lookupFunc(t *testing.T, eng *Engine, name string) *Func {
	t.Helper()
	for _, id := range eng.ids {
		f := eng.funcs[id]
		if f.Decl.Name.Name == name {
			return f
		}
	}
	t.Fatalf("function %s not indexed", name)
	return nil
}

func TestSpawnSummariesChannelJoin(t *testing.T) {
	eng := New([]*Pkg{loadSrc(t, spawnSrc)})
	comps := eng.Completions()
	spawns := eng.SpawnSummaries(comps)

	fan := lookupFunc(t, eng, "fan")
	fs := spawns[fan.ID]
	if len(fs) != 1 {
		t.Fatalf("fan: %d spawn summaries, want 1: %+v", len(fs), fs)
	}
	// Both parameters escape into the goroutine: slots is written, done
	// is sent on.
	if len(fs[0].Roots) != 2 || fs[0].Roots[0] != 0 || fs[0].Roots[1] != 1 {
		t.Errorf("fan spawn roots = %v, want [0 1]", fs[0].Roots)
	}
	var hasSend bool
	for _, c := range fs[0].Completions {
		if c.Kind == CompleteSend {
			hasSend = true
		}
	}
	if !hasSend {
		t.Errorf("fan spawn completions lack the done-channel send: %+v", fs[0].Completions)
	}

	// run inherits fan's spawn re-rooted at its own parameters.
	run := lookupFunc(t, eng, "run")
	rs := spawns[run.ID]
	if len(rs) != 1 {
		t.Fatalf("run: %d spawn summaries, want 1: %+v", len(rs), rs)
	}
	if len(rs[0].Roots) != 2 {
		t.Errorf("run inherited spawn roots = %v, want both params", rs[0].Roots)
	}

	// respawn's recursive spawn converges to a single deduplicated entry.
	respawn := lookupFunc(t, eng, "respawn")
	if got := len(spawns[respawn.ID]); got != 1 {
		t.Errorf("respawn: %d spawn summaries, want 1 (fixpoint dedupe)", got)
	}
}

func TestBodySpawnsSiteForm(t *testing.T) {
	pkg := loadSrc(t, spawnSrc)
	eng := New([]*Pkg{pkg})
	comps := eng.Completions()
	spawns := eng.SpawnSummaries(comps)

	run := lookupFunc(t, eng, "run")
	params := ParamsOf(run.Pkg, run.Decl)
	sites := eng.BodySpawns(run.Pkg, params, run.Decl.Body, spawns, comps)
	if len(sites) != 1 {
		t.Fatalf("run body: %d site spawns, want 1 (the fan call): %+v", len(sites), sites)
	}
	ss := sites[0]
	if ss.Stmt != nil || ss.Lit != nil {
		t.Errorf("propagated spawn must not carry a direct Stmt/Lit")
	}
	// At/End span the fan(...) call so analyzers can order accesses
	// lexically against it.
	if ss.At >= ss.End {
		t.Errorf("site extent [%v, %v) is empty", ss.At, ss.End)
	}
	// The re-rooted ownership domain is run's own slots and done vars.
	if len(ss.RootObjs) != 2 {
		t.Fatalf("re-rooted RootObjs = %v, want 2", ss.RootObjs)
	}
	for _, o := range ss.RootObjs {
		if _, isParam := params[o]; !isParam {
			t.Errorf("re-rooted object %v is not one of run's parameters", o)
		}
	}

	// Direct spawns in fan carry the GoStmt, the literal, and the captured
	// outer variables (slots and done — wk is the literal's own param).
	fan := lookupFunc(t, eng, "fan")
	fparams := ParamsOf(fan.Pkg, fan.Decl)
	fsites := eng.BodySpawns(fan.Pkg, fparams, fan.Decl.Body, spawns, comps)
	if len(fsites) != 1 {
		t.Fatalf("fan body: %d site spawns, want 1: %+v", len(fsites), fsites)
	}
	ds := fsites[0]
	if ds.Stmt == nil || ds.Lit == nil {
		t.Fatalf("direct literal spawn must carry Stmt and Lit")
	}
	litParams := LitParams(fan.Pkg, ds.Lit)
	if len(litParams) != 1 {
		t.Errorf("literal params = %v, want the single wk", litParams)
	}
	names := map[string]bool{}
	for _, o := range ds.RootObjs {
		names[o.Name()] = true
	}
	// The loop variable wk (outer) is captured as the spawn argument;
	// the literal's own wk parameter is declared inside and excluded.
	for _, want := range []string{"slots", "done", "wk"} {
		if !names[want] {
			t.Errorf("captured vars = %v, missing %q", names, want)
		}
	}
	for _, o := range ds.RootObjs {
		if !ds.Captures(o) {
			t.Errorf("Captures(%v) = false for its own root", o)
		}
	}
}

func TestOrderingsPropagateThroughHelper(t *testing.T) {
	eng := New([]*Pkg{loadSrc(t, spawnSrc)})
	ords := eng.Orderings()

	// join performs a receive rooted at its done parameter.
	join := lookupFunc(t, eng, "join")
	js := ords[join.ID]
	if len(js) != 1 || js[0].Kind != OrderRecv {
		t.Fatalf("join orderings = %+v, want one recv", js)
	}
	if js[0].Root != 1 {
		t.Errorf("join recv root = %d, want param 1 (done)", js[0].Root)
	}

	// run inherits the edge through the join(slots, done) call; at the
	// body level it re-roots to run's own done variable.
	run := lookupFunc(t, eng, "run")
	params := ParamsOf(run.Pkg, run.Decl)
	sites := eng.BodyOrderings(run.Pkg, params, run.Decl.Body, ords)
	var recvs []SiteOrdering
	for _, so := range sites {
		if so.Kind == OrderRecv {
			recvs = append(recvs, so)
		}
	}
	if len(recvs) != 1 {
		t.Fatalf("run body recv orderings = %+v, want 1 (via join)", recvs)
	}
	if recvs[0].RootObj == nil || recvs[0].RootObj.Name() != "done" {
		t.Errorf("inherited recv roots at %v, want run's done param", recvs[0].RootObj)
	}
	// The inherited edge's At is the call site inside run's body, so
	// lexical spawn → access → join ordering works across helpers.
	if recvs[0].At < run.Decl.Body.Pos() || recvs[0].At > run.Decl.Body.End() {
		t.Errorf("inherited ordering At=%v outside run's body", recvs[0].At)
	}
}

func TestOrderingsDeterministic(t *testing.T) {
	render := func() []string {
		eng := New([]*Pkg{loadSrc(t, spawnSrc)})
		comps := eng.Completions()
		var out []string
		for id, os := range eng.Orderings() {
			for _, o := range os {
				out = append(out, id+"|"+string(o.Kind)+"|"+o.Desc)
			}
		}
		for id, ss := range eng.SpawnSummaries(comps) {
			for _, s := range ss {
				out = append(out, id+"|spawn|"+s.Desc)
			}
		}
		return out
	}
	a, b := render(), render()
	if len(a) != len(b) {
		t.Fatalf("summary counts differ across runs: %d vs %d", len(a), len(b))
	}
	seen := map[string]bool{}
	for _, s := range a {
		seen[s] = true
	}
	for _, s := range b {
		if !seen[s] {
			t.Errorf("summary %q present in run 2 only", s)
		}
	}
}
