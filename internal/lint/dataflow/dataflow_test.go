package dataflow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// loadSrc type-checks one synthetic import-free source file into a Pkg.
func loadSrc(t *testing.T, src string) *Pkg {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Types:      map[ast.Expr]types.TypeAndValue{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return &Pkg{Path: "p", Fset: fset, Files: []*ast.File{file}, Info: info}
}

const recursiveSrc = `package p

//lint:source synthetic entropy
func entropy() float64 { return 1 }

func passthru(x float64) float64 { return x }

func launder(x float64) float64 { return passthru(x) }

// descend recurses; its second parameter flows to its result both
// directly (base case) and through the recursive call.
func descend(n int, acc float64) float64 {
	if n == 0 {
		return acc
	}
	return descend(n-1, acc)
}

// even/odd are mutually recursive with no parameter-to-result flow —
// every return path ends in a constant.
func even(n int) bool {
	if n == 0 {
		return true
	}
	return odd(n - 1)
}

func odd(n int) bool {
	if n == 0 {
		return false
	}
	return even(n - 1)
}

type Res struct{ V float64 }

func store(r *Res) {
	r.V = descend(3, launder(entropy()))
}

func storeClean(r *Res) {
	r.V = descend(3, 1.5)
}
`

func TestParamFlowsOnRecursion(t *testing.T) {
	eng := New([]*Pkg{loadSrc(t, recursiveSrc)})
	flows := eng.ParamFlows()

	if !flows["p.descend"][1][0] {
		t.Errorf("descend: acc (param 1) should flow to result 0; got %v", flows["p.descend"])
	}
	if len(flows["p.descend"][0]) != 0 {
		t.Errorf("descend: n (param 0) should not flow to the result; got %v", flows["p.descend"][0])
	}
	if !flows["p.launder"][0][0] {
		t.Errorf("launder: param 0 should flow to result 0 through passthru; got %v", flows["p.launder"])
	}
	// The mutually recursive pair must terminate with empty flows: every
	// return path bottoms out in a constant.
	for _, id := range []string{"p.even", "p.odd"} {
		for p, rs := range flows[id] {
			if len(rs) > 0 {
				t.Errorf("%s: unexpected flow from param %d: %v", id, p, rs)
			}
		}
	}
}

func TestTaintThroughRecursiveChain(t *testing.T) {
	eng := New([]*Pkg{loadSrc(t, recursiveSrc)})
	spec := TaintSpec{
		SinkStore: func(pkg *Pkg, lhs ast.Expr) (string, bool) {
			sel, ok := lhs.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "V" {
				return "", false
			}
			return "Res.V", true
		},
	}
	findings := eng.Taint(spec)
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1 (store, not storeClean): %+v", len(findings), findings)
	}
	f := findings[0]
	if f.Sink != "Res.V" {
		t.Errorf("sink = %q, want Res.V", f.Sink)
	}
	rendered := f.Path.String()
	for _, sub := range []string{"//lint:source", "p.launder", "p.descend", "stored to Res.V"} {
		if !strings.Contains(rendered, sub) {
			t.Errorf("path missing %q: %s", sub, rendered)
		}
	}
	// Source first, sink last.
	if !strings.HasPrefix(f.Path[0].Desc, "p.entropy") {
		t.Errorf("path should start at the source, got %q", f.Path[0].Desc)
	}
	if got := f.Path[len(f.Path)-1].Desc; got != "stored to Res.V" {
		t.Errorf("path should end at the sink, got %q", got)
	}
}

func TestTaintDeterministicAcrossRuns(t *testing.T) {
	render := func() string {
		eng := New([]*Pkg{loadSrc(t, recursiveSrc)})
		spec := TaintSpec{
			SinkStore: func(pkg *Pkg, lhs ast.Expr) (string, bool) {
				if sel, ok := lhs.(*ast.SelectorExpr); ok && sel.Sel.Name == "V" {
					return "Res.V", true
				}
				return "", false
			},
		}
		var b strings.Builder
		for _, f := range eng.Taint(spec) {
			b.WriteString(f.Pos.String() + " " + f.Sink + " " + f.Path.String() + "\n")
		}
		return b.String()
	}
	first := render()
	for i := 0; i < 5; i++ {
		if got := render(); got != first {
			t.Fatalf("run %d differs:\n%s\nvs\n%s", i, got, first)
		}
	}
}

const effectSrc = `package p

func sink(out *[]string, s string) {
	*out = append(*out, s)
}

func local(s string) {
	var tmp []string
	tmp = append(tmp, s)
	_ = tmp
}

var global []string

func leak(s string) {
	global = append(global, s)
}

func relay(out *[]string, s string) {
	sink(out, s)
}
`

func TestEffectSummaries(t *testing.T) {
	eng := New([]*Pkg{loadSrc(t, effectSrc)})
	sums := eng.Effects(EffectSpec{})

	find := func(id string, kind EffectKind) []Effect {
		var out []Effect
		for _, ef := range sums[id] {
			if ef.Kind == kind {
				out = append(out, ef)
			}
		}
		return out
	}

	if efs := find("p.sink", EffectAppend); len(efs) != 1 || efs[0].Root != 0 {
		t.Errorf("sink: want one append rooted at param 0, got %+v", sums["p.sink"])
	}
	if efs := sums["p.local"]; len(efs) != 0 {
		t.Errorf("local: purely local append must not appear in the summary, got %+v", efs)
	}
	if efs := find("p.leak", EffectAppend); len(efs) != 1 || !IsGlobalRoot(efs[0].Root) {
		t.Errorf("leak: want one append rooted at the global, got %+v", sums["p.leak"])
	}
	// relay's effect is inherited from sink and re-rooted at relay's own
	// out parameter.
	if efs := find("p.relay", EffectAppend); len(efs) != 1 || efs[0].Root != 0 {
		t.Errorf("relay: want sink's append re-rooted at param 0, got %+v", sums["p.relay"])
	}
}

func TestPathExtendCap(t *testing.T) {
	var p Path
	for i := 0; i < 3*maxPathSteps; i++ {
		p = extend(p, Step{Desc: "hop"})
	}
	if len(p) > maxPathSteps+1 {
		t.Errorf("path grew to %d steps, cap is %d", len(p), maxPathSteps)
	}
	if !strings.Contains(p.String(), "hop") {
		t.Errorf("rendering lost content: %s", p.String())
	}
}

func TestFuncIDStability(t *testing.T) {
	// Two independent type-checks of the same source must yield the same
	// IDs — the loader type-checks packages twice (import vs analyzed),
	// so object identity is unreliable and the engine keys summaries by
	// symbolic ID instead.
	a := New([]*Pkg{loadSrc(t, recursiveSrc)})
	b := New([]*Pkg{loadSrc(t, recursiveSrc)})
	if a.Funcs() != b.Funcs() || a.Funcs() == 0 {
		t.Fatalf("func counts differ: %d vs %d", a.Funcs(), b.Funcs())
	}
	for id := range a.funcs {
		if _, ok := b.funcs[id]; !ok {
			t.Errorf("ID %q missing from second engine", id)
		}
	}
}

const completionSrc = `package p

// spinA and spinB are mutually recursive: the close propagates through
// the cycle, and the summary must converge instead of growing a longer
// re-rooted entry every fixpoint round.
func spinA(ch chan int, n int) {
	if n == 0 {
		close(ch)
		return
	}
	spinB(ch, n-1)
}

func spinB(ch chan int, n int) {
	spinA(ch, n)
}

// selfDone recurses directly while sending.
func selfDone(out chan int, n int) {
	if n > 0 {
		out <- n
		selfDone(out, n-1)
	}
}
`

func TestCompletionsRecursionTerminates(t *testing.T) {
	eng := New([]*Pkg{loadSrc(t, completionSrc)})
	sums := eng.Completions() // must not hit the iteration cap or grow unboundedly
	for _, id := range []string{"p.spinA", "p.spinB"} {
		comps := sums[id]
		if len(comps) != 1 {
			t.Fatalf("%s: %d completion entries, want 1 (the propagated close): %v", id, len(comps), comps)
		}
		if comps[0].Kind != CompleteClose {
			t.Errorf("%s: kind = %q, want %q", id, comps[0].Kind, CompleteClose)
		}
		if comps[0].Root != 0 {
			t.Errorf("%s: root = %d, want parameter 0", id, comps[0].Root)
		}
	}
	if got := sums["p.selfDone"]; len(got) != 1 || got[0].Kind != CompleteSend {
		t.Errorf("p.selfDone: %v, want a single send entry", got)
	}
}
