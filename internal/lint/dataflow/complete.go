package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// CompletionKind classifies a goroutine-completion edge: an operation
// that lets the rest of the program observe (or force) the goroutine's
// termination.
type CompletionKind string

const (
	// CompleteDone: sync.WaitGroup.Done.
	CompleteDone CompletionKind = "wg.Done"
	// CompleteClose: close(ch).
	CompleteClose CompletionKind = "close"
	// CompleteSend: a channel send.
	CompleteSend CompletionKind = "send"
	// CompleteRecv: a channel receive, including range-over-channel and
	// <-ctx.Done() — the goroutine's loop is bounded by someone closing
	// or draining the channel.
	CompleteRecv CompletionKind = "recv"
)

// Completion is one completion edge a function performs, as seen by its
// callers. Root is the parameter index carrying the WaitGroup/channel
// (recvParam, globalRoot, or localRoot when the function completes
// through its own state).
type Completion struct {
	Kind CompletionKind
	Desc string
	Pos  token.Position
	Root int
}

// SiteCompletion is a completion edge observed inside a concrete body,
// with the variable object rooting it (nil when the root is not a
// single variable).
type SiteCompletion struct {
	Completion
	RootObj types.Object
}

// Completions computes completion summaries for every indexed function
// by bottom-up fixpoint, so `go worker(&wg)` and a wg.Done three helpers
// deep both count.
func (e *Engine) Completions() map[string][]Completion {
	sums := map[string][]Completion{}
	for iter := 0; iter < 64; iter++ {
		changed := false
		for _, id := range e.ids {
			f := e.funcs[id]
			params, _, _ := paramObjects(f.Pkg, f.Decl)
			var next []Completion
			seen := map[string]bool{}
			for _, sc := range e.BodyCompletions(f.Pkg, params, f.Decl.Body, sums) {
				k := string(sc.Kind) + "|" + sc.Pos.String() + "|" + sc.Desc
				if !seen[k] {
					seen[k] = true
					next = append(next, sc.Completion)
				}
			}
			sort.Slice(next, func(i, j int) bool {
				if next[i].Pos.Offset != next[j].Pos.Offset {
					return next[i].Pos.Offset < next[j].Pos.Offset
				}
				return next[i].Desc < next[j].Desc
			})
			if len(next) > len(sums[id]) {
				sums[id] = next
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return sums
}

// ParamsOf exposes the parameter-object map for a declaration so
// analyzers can call BodyCompletions on sub-bodies (goroutine literals)
// of a function.
func ParamsOf(pkg *Pkg, fd *ast.FuncDecl) map[types.Object]int {
	params, _, _ := paramObjects(pkg, fd)
	return params
}

// BodyCompletions returns the completion edges of one statement subtree,
// including those reached through calls into summarized functions.
func (e *Engine) BodyCompletions(pkg *Pkg, params map[types.Object]int, body ast.Node, sums map[string][]Completion) []SiteCompletion {
	var out []SiteCompletion
	if body == nil {
		return nil
	}
	add := func(at token.Position, kind CompletionKind, desc string, rootExpr ast.Expr) {
		root, obj := localRoot, types.Object(nil)
		if rootExpr != nil {
			if r, o, ok := rootOf(pkg, params, rootExpr); ok {
				root, obj = r, o
			}
		}
		out = append(out, SiteCompletion{
			Completion: Completion{Kind: kind, Desc: desc, Pos: at, Root: root},
			RootObj:    obj,
		})
	}
	pos := func(n ast.Node) token.Position { return pkg.Fset.Position(n.Pos()) }
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SendStmt:
			add(pos(x), CompleteSend, "sends on "+exprString(x.Chan), x.Chan)
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				add(pos(x), CompleteRecv, "receives from "+exprString(x.X), x.X)
			}
		case *ast.RangeStmt:
			if t := typeOf(pkg, x.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					add(pos(x), CompleteRecv, "ranges over channel "+exprString(x.X), x.X)
				}
			}
		case *ast.CallExpr:
			e.callCompletions(pkg, params, x, sums, add)
		}
		return true
	})
	return out
}

// callCompletions classifies one call: close(ch), wg.Done(), or a call
// into a summarized function whose edges re-root at the arguments.
func (e *Engine) callCompletions(pkg *Pkg, params map[types.Object]int, call *ast.CallExpr, sums map[string][]Completion, add func(token.Position, CompletionKind, string, ast.Expr)) {
	if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "close" && len(call.Args) == 1 {
		if obj := pkg.Info.Uses[id]; obj != nil {
			if _, isBuiltin := obj.(*types.Builtin); isBuiltin {
				add(pkg.Fset.Position(call.Pos()), CompleteClose, "closes "+exprString(call.Args[0]), call.Args[0])
				return
			}
		}
	}
	obj, callee, recv := e.Callee(pkg, call)
	if obj != nil && isWaitGroupDone(obj) {
		add(pkg.Fset.Position(call.Pos()), CompleteDone, exprString(recv)+".Done()", recv)
		return
	}
	if callee == nil || sums == nil {
		return
	}
	// Propagated edges keep the original site's Pos and Desc so the
	// fixpoint rederives identical facts each round (recursion would
	// otherwise grow summaries without bound); only the root is
	// re-resolved at this call's arguments.
	for _, c := range sums[callee.ID] {
		var rootExpr ast.Expr
		switch c.Root {
		case recvParam:
			rootExpr = recv
		case globalRoot, localRoot:
			rootExpr = nil
		default:
			if c.Root >= 0 && c.Root < len(call.Args) {
				rootExpr = call.Args[c.Root]
			}
		}
		add(c.Pos, c.Kind, c.Desc, rootExpr)
	}
}

// isWaitGroupDone reports sync.WaitGroup.Done.
func isWaitGroupDone(fn *types.Func) bool {
	return fn.Name() == "Done" && isWaitGroupMethod(fn)
}

// IsWaitGroupAdd reports sync.WaitGroup.Add — the analyzer uses it to
// pair Done edges with a dominating Add.
func IsWaitGroupAdd(fn *types.Func) bool {
	return fn.Name() == "Add" && isWaitGroupMethod(fn)
}

func isWaitGroupMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "WaitGroup" {
		return false
	}
	return named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync"
}
